// Package lrseluge is the public API of this repository: a from-scratch Go
// implementation and evaluation harness for LR-Seluge — loss-resilient and
// secure code dissemination in wireless sensor networks (Zhang & Zhang,
// ICDCS 2011) — together with its baselines Deluge and Seluge, the discrete
// event network simulator they run on, and the paper's full experiment
// suite.
//
// # Quick start
//
//	res, err := lrseluge.Run(lrseluge.Scenario{
//		Protocol:  lrseluge.LRSeluge,
//		ImageSize: 20 * 1024,
//		Receivers: 20,
//		LossP:     0.1,
//		Seed:      1,
//	})
//
// runs a full authenticated dissemination of a 20 KB image to 20 one-hop
// receivers with 10% packet loss and reports the paper's metrics (data,
// SNACK and advertisement packets, total bytes, latency, security counters).
//
// # Structure
//
//   - Scenario/Run/RunAvg: end-to-end simulations (internal/experiment).
//   - Fig3LossSweep .. MultiHopComparison: regenerate every figure and
//     table of the paper's evaluation.
//   - AttackResilience: the adversarial experiments backing the paper's
//     security claims (§IV-E).
//   - SelugeExpectedDataTx / ACKLRExpectedDataTx: the closed-form models of
//     §V used by Fig. 3.
//
// The protocol implementations themselves live under internal/: the shared
// MAINTAIN/RX/TX engine (internal/dissem), Deluge (internal/deluge), Seluge
// (internal/seluge) and LR-Seluge (internal/core), on top of Reed-Solomon
// erasure coding (internal/erasure), Merkle trees, truncated hash images,
// message-specific puzzles (internal/crypt) and a deterministic
// discrete-event radio simulation (internal/sim, internal/radio,
// internal/topo).
package lrseluge

import (
	"io"

	"lrseluge/internal/analysis"
	"lrseluge/internal/experiment"
	"lrseluge/internal/fault"
	"lrseluge/internal/image"
	"lrseluge/internal/radio"
	"lrseluge/internal/runstore"
	"lrseluge/internal/scale"
	"lrseluge/internal/sim"
	"lrseluge/internal/topo"
	"lrseluge/internal/trace"
)

// Protocol selects the dissemination scheme under test.
type Protocol = experiment.Protocol

// The three implemented protocols.
const (
	// Deluge is the non-secure ARQ baseline.
	Deluge = experiment.Deluge
	// Seluge is the secure ARQ baseline (immediate authentication, no
	// loss resilience).
	Seluge = experiment.Seluge
	// LRSeluge is the paper's contribution: erasure-coded pages with
	// immediate per-packet authentication.
	LRSeluge = experiment.LRSeluge
	// RatelessDeluge is the loss-resilient-but-insecure related-work
	// baseline (LT-coded pages, no authentication).
	RatelessDeluge = experiment.RatelessDeluge
)

// Params fixes the shared packet/coding geometry: payload bytes per packet,
// k source blocks per page and n encoded packets per page.
type Params = image.Params

// DefaultParams returns the evaluation defaults (72 B payload, k=32, n=48).
func DefaultParams() Params { return image.DefaultParams() }

// Scenario describes one simulation run; zero-valued fields get paper
// defaults (20 KB image, 20 receivers, one-hop complete topology).
type Scenario = experiment.Scenario

// Result carries the metrics the paper reports for one run.
type Result = experiment.Result

// AvgResult is a Result averaged over several seeds.
type AvgResult = experiment.AvgResult

// Run executes one scenario end to end and verifies that every completed
// node reconstructed the exact image bytes.
func Run(s Scenario) (Result, error) { return experiment.Run(s) }

// RunAvg executes a scenario `runs` times under distinct seeds and averages
// the metrics; runs fan out across a GOMAXPROCS-wide worker pool
// (internal/harness) with results merged in deterministic run order.
func RunAvg(s Scenario, runs int) (AvgResult, error) { return experiment.RunAvg(s, runs) }

// RunAvgParallel is RunAvg with an explicit harness worker count
// (0 = GOMAXPROCS, 1 = serial). The averages are bit-identical for any
// worker count.
func RunAvgParallel(s Scenario, runs, workers int) (AvgResult, error) {
	return experiment.RunAvgParallel(s, runs, workers)
}

// Time is the simulator's virtual time (nanoseconds).
type Time = sim.Time

// Topology constructors.

// Graph is an immutable network topology; node 0 is the base station.
type Graph = topo.Graph

// GridDensity selects tight (high-density) or medium (low-density) grids.
type GridDensity = topo.GridDensity

// Grid densities mirroring the paper's two 15x15 mica2 topologies.
const (
	Tight  = topo.Tight
	Medium = topo.Medium
)

// OneHop returns a fully-connected neighborhood of n nodes.
func OneHop(n int) (*Graph, error) { return topo.Complete(n) }

// Grid returns a rows x cols lattice at the given density.
func Grid(rows, cols int, density GridDensity) (*Graph, error) {
	return topo.Grid(rows, cols, density)
}

// RandomTopology scatters n nodes over a side x side square.
func RandomTopology(n int, side float64, seed int64) (*Graph, error) {
	return topo.RandomDisk(n, side, seed)
}

// LossModel decides per-delivery packet drops.
type LossModel = radio.LossModel

// BernoulliLoss drops every packet independently with probability P at each
// receiver (the paper's one-hop loss emulation).
func BernoulliLoss(p float64) LossModel { return radio.Bernoulli{P: p} }

// HeavyNoise returns a bursty Gilbert-Elliott channel, the stand-in for the
// paper's meyer-heavy.txt multi-hop noise trace.
func HeavyNoise() LossModel { return radio.HeavyNoise() }

// Fault injection (Scenario.Faults).

// FaultPlan is a validated, time-ordered fault scenario: node crashes and
// reboots with flash-vs-RAM mote semantics, link outage windows, network
// partitions and adversary-intensity ramps. Assign one to Scenario.Faults.
type FaultPlan = fault.Plan

// FaultEvent is one scheduled fault in a plan.
type FaultEvent = fault.Event

// ChurnSpec parameterizes RandomChurn: exponential up/down times per node
// drawn from a dedicated seeded stream.
type ChurnSpec = fault.ChurnSpec

// LoadFaultPlan reads and validates a JSON fault-plan file (see
// examples/faults/).
func LoadFaultPlan(path string) (*FaultPlan, error) { return fault.LoadPlan(path) }

// RandomChurn draws a deterministic crash/reboot plan from the spec's seed;
// the same spec always yields the same plan.
func RandomChurn(spec ChurnSpec) (*FaultPlan, error) { return fault.RandomChurn(spec) }

// ChurnComparison sweeps completion latency and overhead versus node crash
// rate (crashes/hour) for LR-Seluge against Seluge.
func ChurnComparison(params Params, imageSize, receivers int, rates []float64, p float64, horizon Time, runs int, seed int64) ([]ComparisonPoint, error) {
	return experiment.ChurnComparison(params, imageSize, receivers, rates, p, horizon, runs, seed)
}

// OutageComparison sweeps the same metrics versus link outage duty-cycle on
// the base station's links.
func OutageComparison(params Params, imageSize, receivers int, duties []float64, period Time, p float64, horizon Time, runs int, seed int64) ([]ComparisonPoint, error) {
	return experiment.OutageComparison(params, imageSize, receivers, duties, period, p, horizon, runs, seed)
}

// Protocol tracing (Scenario.Trace; analyzed offline by cmd/lrtrace).

// TraceSink receives the structured protocol event stream of a traced run
// (packet lifecycle, state transitions, unit milestones, faults), stamped on
// the virtual clock. Same-seed runs produce identical event sequences.
type TraceSink = trace.Sink

// TraceEvent is one structured protocol event.
type TraceEvent = trace.Event

// TraceRing is a bounded in-memory trace sink keeping the newest events.
type TraceRing = trace.Ring

// NewTraceJSONL returns a sink encoding one JSON line per event to w; assign
// it to Scenario.Trace. Run flushes the sink before returning.
func NewTraceJSONL(w io.Writer) TraceSink { return trace.NewJSONLSink(w) }

// NewTraceRing returns a drop-oldest in-memory sink retaining at most
// capacity events.
func NewTraceRing(capacity int) *TraceRing { return trace.NewRing(capacity) }

// ReadTrace decodes a JSONL trace stream back into events, rejecting unknown
// schemas and vocabulary.
func ReadTrace(r io.Reader) ([]TraceEvent, error) { return trace.ReadAll(r) }

// Closed-form models (paper §V).

// SelugeExpectedDataTx returns the expected data-packet transmissions to
// deliver one k-packet page to `receivers` one-hop neighbors under
// per-packet loss p with Seluge's SNACK ARQ.
func SelugeExpectedDataTx(k, receivers int, p float64) (float64, error) {
	return analysis.SelugeDataTx(k, receivers, p)
}

// ACKLRExpectedDataTx returns the ACK-based LR-Seluge upper bound on
// data-packet transmissions per page (rounds of n encoded packets until
// every receiver holds k').
func ACKLRExpectedDataTx(k, n, kprime, receivers int, p float64) (float64, error) {
	return analysis.ACKBasedLRDataTx(k, n, kprime, receivers, p)
}

// Evaluation sweeps: one function per paper artifact.

// Fig3Point is one x-position of Fig. 3.
type Fig3Point = experiment.Fig3Point

// ComparisonPoint is one x-position of Figs. 4-5.
type ComparisonPoint = experiment.ComparisonPoint

// RatePoint is one (n, p) cell of Fig. 6.
type RatePoint = experiment.RatePoint

// AttackReport summarizes the adversarial experiments.
type AttackReport = experiment.AttackReport

// Fig3LossSweep regenerates Fig. 3(a).
func Fig3LossSweep(params Params, receivers int, ps []float64, runs int, seed int64) ([]Fig3Point, error) {
	return experiment.Fig3LossSweep(params, receivers, ps, runs, seed)
}

// Fig3ReceiverSweep regenerates Fig. 3(b).
func Fig3ReceiverSweep(params Params, ns []int, p float64, runs int, seed int64) ([]Fig3Point, error) {
	return experiment.Fig3ReceiverSweep(params, ns, p, runs, seed)
}

// Fig4LossImpact regenerates Fig. 4(a)-(e).
func Fig4LossImpact(params Params, imageSize, receivers int, ps []float64, runs int, seed int64) ([]ComparisonPoint, error) {
	return experiment.Fig4LossImpact(params, imageSize, receivers, ps, runs, seed)
}

// Fig5DensityImpact regenerates Fig. 5(a)-(e).
func Fig5DensityImpact(params Params, imageSize int, receivers []int, p float64, runs int, seed int64) ([]ComparisonPoint, error) {
	return experiment.Fig5DensityImpact(params, imageSize, receivers, p, runs, seed)
}

// Fig6RateImpact regenerates Fig. 6(a)-(e).
func Fig6RateImpact(payload, k, imageSize, receivers int, ns []int, ps []float64, runs int, seed int64) ([]RatePoint, error) {
	return experiment.Fig6RateImpact(payload, k, imageSize, receivers, ns, ps, runs, seed)
}

// MultiHopComparison regenerates Tables II/III on a rows x cols grid.
func MultiHopComparison(params Params, imageSize int, density GridDensity, rows, cols, runs int, seed int64) (seluge, lr AvgResult, err error) {
	return experiment.MultiHopComparison(params, imageSize, density, rows, cols, runs, seed)
}

// AttackResilience runs the forged-data, signature-flood and
// denial-of-receipt experiments against LR-Seluge.
func AttackResilience(params Params, imageSize, receivers int, lossP float64, seed int64) (AttackReport, error) {
	return experiment.AttackResilience(params, imageSize, receivers, lossP, seed)
}

// SchedPolicy selects LR-Seluge's transmission scheduling policy, for the
// ablation of the paper's greedy round-robin scheduler.
type SchedPolicy = experiment.LRPolicy

// LR-Seluge scheduling policies.
const (
	// GreedyRR is the paper's greedy round-robin tracking-table scheduler.
	GreedyRR = experiment.GreedyRR
	// UnionBits is the Deluge/Seluge union-of-requests policy.
	UnionBits = experiment.UnionBits
	// FreshRR is the rateless-style fresh-packet policy.
	FreshRR = experiment.FreshRR
)

// SchedulerAblationRun compares the three scheduling policies on the same
// LR-Seluge scenario.
func SchedulerAblationRun(params Params, imageSize, receivers int, p float64, runs int, seed int64) (map[SchedPolicy]AvgResult, error) {
	return experiment.SchedulerAblation(params, imageSize, receivers, p, runs, seed)
}

// UpgradeResult reports a secure version-upgrade experiment.
type UpgradeResult = experiment.UpgradeResult

// VersionUpgrade disseminates version 1, then reprograms the whole network
// to version 2: stale nodes discard state only after the newer version's
// signature (bound through the puzzle key chain) verifies.
func VersionUpgrade(params Params, imageSize, receivers int, lossP float64, seed int64) (UpgradeResult, error) {
	return experiment.VersionUpgrade(params, imageSize, receivers, lossP, seed)
}

// --- Result serving: content-addressed run store (DESIGN.md §13) ---

// RunSpec is the serializable description of one averaged experiment — the
// request body of lrserved's POST /v1/runs and the input of
// content-addressed run keys. Determinism makes a spec's key a complete
// identity for its result.
type RunSpec = experiment.Spec

// TopoGridSpec is RunSpec's serializable grid-topology form.
type TopoGridSpec = experiment.GridSpec

// DecodeRunSpec parses a RunSpec from JSON, rejecting unknown fields.
func DecodeRunSpec(data []byte) (RunSpec, error) { return experiment.DecodeSpec(data) }

// RunStore is a content-addressed, file-backed store of averaged results:
// CRC-checked gzip values written atomically, a self-healing index, and
// LRU eviction under an optional byte cap. It backs the lrserved daemon
// and lrsweep's -store incremental mode.
type RunStore = runstore.Store

// RunStoreOptions tunes a RunStore.
type RunStoreOptions = runstore.Options

// OpenRunStore opens (or creates) a run store rooted at dir.
func OpenRunStore(dir string, opts RunStoreOptions) (*RunStore, error) {
	return runstore.Open(dir, opts)
}

// --- Large-scale simulation (DESIGN.md §14) ---

// QueueKind selects the event-queue implementation backing a simulation
// engine: the reference binary heap or the O(1)-amortized calendar queue
// used for large runs. Both produce byte-identical event orderings.
type QueueKind = sim.QueueKind

// Event queue implementations.
const (
	// HeapQueue is the reference binary-heap event queue.
	HeapQueue = sim.HeapQueue
	// CalendarQueue is the bucketed O(1)-amortized event queue.
	CalendarQueue = sim.CalendarQueue
)

// ScaleConfig parameterizes one large-scale LR-Seluge run (up to 100k nodes
// on a random-disk multi-hop graph).
type ScaleConfig = scale.Config

// ScaleReport carries the throughput and memory figures of one large run.
type ScaleReport = scale.Report

// ScaleSnapshot is one incremental progress observation streamed during a
// large run.
type ScaleSnapshot = scale.Snapshot

// RunScale executes one large-scale LR-Seluge dissemination and reports
// engine throughput (events/sec), communication cost per node, and peak
// RSS. See cmd/lrscale for the benchmark artifact around it.
func RunScale(cfg ScaleConfig) (ScaleReport, error) { return scale.Run(cfg) }
