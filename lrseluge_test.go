package lrseluge

import (
	"math"
	"testing"
)

func TestFacadeRun(t *testing.T) {
	res, err := Run(Scenario{
		Protocol:  LRSeluge,
		ImageSize: 4 * 1024,
		Receivers: 5,
		LossP:     0.1,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Nodes || !res.ImagesOK {
		t.Fatalf("facade run failed: %+v", res)
	}
}

func TestFacadeDefaults(t *testing.T) {
	p := DefaultParams()
	if p.K != 32 || p.N != 48 || p.PacketPayload != 72 {
		t.Fatalf("defaults changed unexpectedly: %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeTopologies(t *testing.T) {
	if g, err := OneHop(5); err != nil || g.NumNodes() != 5 {
		t.Fatalf("OneHop: %v", err)
	}
	if g, err := Grid(4, 4, Medium); err != nil || g.NumNodes() != 16 {
		t.Fatalf("Grid: %v", err)
	}
	if g, err := RandomTopology(10, 50, 1); err != nil || g.NumNodes() != 10 {
		t.Fatalf("RandomTopology: %v", err)
	}
}

func TestFacadeAnalysis(t *testing.T) {
	s, err := SelugeExpectedDataTx(32, 20, 0)
	if err != nil || s != 32 {
		t.Fatalf("SelugeExpectedDataTx: %f %v", s, err)
	}
	l, err := ACKLRExpectedDataTx(32, 48, 32, 20, 0)
	if err != nil || l != 48 {
		t.Fatalf("ACKLRExpectedDataTx: %f %v", l, err)
	}
	// In the lossy regime the erasure-coded bound must win.
	s, _ = SelugeExpectedDataTx(32, 20, 0.25)
	l, _ = ACKLRExpectedDataTx(32, 48, 32, 20, 0.25)
	if l >= s {
		t.Fatalf("expected ACK-LR (%f) < Seluge (%f) at p=0.25", l, s)
	}
	if math.IsNaN(s) || math.IsNaN(l) {
		t.Fatal("NaN from analysis")
	}
}

func TestFacadeLossModels(t *testing.T) {
	if BernoulliLoss(0.5) == nil || HeavyNoise() == nil {
		t.Fatal("nil loss models")
	}
}

func TestProtocolNames(t *testing.T) {
	if Deluge.String() != "Deluge" || Seluge.String() != "Seluge" || LRSeluge.String() != "LR-Seluge" {
		t.Fatal("protocol names wrong")
	}
	if GreedyRR.String() != "greedy-rr" || UnionBits.String() != "union" || FreshRR.String() != "fresh-rr" {
		t.Fatal("policy names wrong")
	}
}
