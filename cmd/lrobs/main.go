// Command lrobs renders the observability artifacts produced by instrumented
// runs: wall-time attribution tables (lrscale -obs-dir, Report.Obs) and
// runtime snapshot series (the obs sampler's JSONL). Output is a
// deterministic function of the input bytes.
//
// Subcommands:
//
//	lrobs attr [-json] attr.json            attribution table, aligned text
//	lrobs snapshots [-json] run.snapshots.jsonl   snapshot series as a table
//
// Exit codes: 0 success, 1 I/O or decode errors, 2 usage errors.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"lrseluge/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func usage() int {
	fmt.Fprint(os.Stderr, `usage: lrobs <command> [flags] <file>

commands:
  attr       [-json] attr.json             render a wall-time attribution table
  snapshots  [-json] run.snapshots.jsonl   render a runtime snapshot series
`)
	return 2
}

func run(args []string) int {
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "attr":
		return cmdAttr(args[1:])
	case "snapshots":
		return cmdSnapshots(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "lrobs: unknown command %q\n", args[0])
		return usage()
	}
}

// parseOne splits args into an optional leading -json flag and exactly one
// input path ("-" = stdin).
func parseOne(cmd string, args []string) (path string, asJSON bool, ok bool) {
	for _, a := range args {
		switch {
		case a == "-json":
			asJSON = true
		case path == "":
			path = a
		default:
			fmt.Fprintf(os.Stderr, "lrobs %s: unexpected argument %q\n", cmd, a)
			return "", false, false
		}
	}
	if path == "" {
		fmt.Fprintf(os.Stderr, "lrobs %s: an input file is required ('-' = stdin)\n", cmd)
		return "", false, false
	}
	return path, asJSON, true
}

// open returns the input stream for path ("-" = stdin).
func open(path string) (io.ReadCloser, error) {
	if path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

func fail(err error) int {
	fmt.Fprintf(os.Stderr, "lrobs: %v\n", err)
	return 1
}

func cmdAttr(args []string) int {
	path, asJSON, ok := parseOne("attr", args)
	if !ok {
		return 2
	}
	r, err := open(path)
	if err != nil {
		return fail(err)
	}
	defer r.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		return fail(err)
	}
	a, err := obs.DecodeAttribution(data)
	if err != nil {
		return fail(err)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(a); err != nil {
			return fail(err)
		}
		return 0
	}
	if err := a.WriteText(os.Stdout); err != nil {
		return fail(err)
	}
	return 0
}

func cmdSnapshots(args []string) int {
	path, asJSON, ok := parseOne("snapshots", args)
	if !ok {
		return 2
	}
	r, err := open(path)
	if err != nil {
		return fail(err)
	}
	defer r.Close()
	snaps, err := obs.ReadSnapshots(r)
	if err != nil {
		return fail(err)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snaps); err != nil {
			return fail(err)
		}
		return 0
	}
	if err := obs.WriteSnapshotText(os.Stdout, snaps); err != nil {
		return fail(err)
	}
	return 0
}
