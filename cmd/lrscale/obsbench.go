package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"lrseluge/internal/obs"
	"lrseluge/internal/scale"
	"lrseluge/internal/sim"
)

// obsBenchReport is the BENCH_obs.json schema. Mirrors BENCH_trace.json's
// methodology: enabled overhead from paired timed runs, disabled overhead
// from a nil-receiver microbenchmark scaled by the run's region count.
type obsBenchReport struct {
	Nodes   int   `json:"nodes"`
	ImageKB int   `json:"image_kb"`
	Seed    int64 `json:"seed"`

	// BaseWallMS is the faster of two obs-off runs; ObsWallMS the faster of
	// two obs-on runs of the same seeded configuration.
	BaseWallMS int64 `json:"base_wall_ms"`
	ObsWallMS  int64 `json:"obs_wall_ms"`
	// EnabledOverheadFrac is ObsWall/BaseWall - 1 (clamped at 0).
	EnabledOverheadFrac float64 `json:"enabled_overhead_frac"`

	// Regions is the number of phase regions the obs-on run opened;
	// NilPairNS is the measured cost of one disabled Start/End pair.
	// DisabledOverheadFrac = Regions * NilPairNS / BaseWallNS.
	Regions              uint64  `json:"regions"`
	NilPairNS            float64 `json:"nil_pair_ns"`
	DisabledOverheadFrac float64 `json:"disabled_overhead_frac"`

	// CoveredFrac is the obs-on run's attribution coverage: the fraction of
	// wall time the instrumented subsystems account for.
	CoveredFrac float64 `json:"covered_frac"`

	// TraceIdentical pins the determinism contract: every run above hashed
	// its transmission trace and all hashes matched.
	TraceIdentical bool   `json:"trace_identical"`
	TraceHash      string `json:"trace_hash"`
}

// runObsbench measures obs instrumentation overhead and writes BENCH_obs.json.
func runObsbench(nodes, kb int, seed int64, degree float64, out string, quiet bool) error {
	mk := func(withObs bool) scale.Config {
		cfg := scale.Config{
			Nodes:        nodes,
			TargetDegree: degree,
			ImageKB:      kb,
			Seed:         seed,
			Queue:        sim.CalendarQueue,
			CompactRNG:   true,
			TraceHash:    true,
		}
		if withObs {
			cfg.Obs = obs.NewTimers()
		}
		return cfg
	}

	rep := obsBenchReport{Nodes: nodes, ImageKB: kb, Seed: seed, TraceIdentical: true}

	var baseWall, obsWall int64
	var attr *obs.Attribution
	for pass := 0; pass < 4; pass++ {
		withObs := pass >= 2
		r, err := scale.Run(mk(withObs))
		if err != nil {
			return err
		}
		if rep.TraceHash == "" {
			rep.TraceHash = r.TraceHash
		} else if r.TraceHash != rep.TraceHash {
			rep.TraceIdentical = false
		}
		if withObs {
			if obsWall == 0 || r.WallMS < obsWall {
				obsWall = r.WallMS
				attr = r.Obs
			}
		} else {
			if baseWall == 0 || r.WallMS < baseWall {
				baseWall = r.WallMS
			}
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "lrscale: obsbench pass %d obs=%v wall=%dms hash=%s\n",
				pass+1, withObs, r.WallMS, r.TraceHash[:16])
		}
	}
	rep.BaseWallMS = baseWall
	rep.ObsWallMS = obsWall
	if baseWall > 0 && obsWall > baseWall {
		rep.EnabledOverheadFrac = float64(obsWall)/float64(baseWall) - 1
	}
	if attr != nil {
		rep.CoveredFrac = attr.CoveredFrac
		var n uint64
		for _, row := range attr.Phases {
			n += row.Calls
		}
		rep.Regions = n
	}
	rep.NilPairNS = nilPairNS()
	if baseWall > 0 {
		rep.DisabledOverheadFrac = float64(rep.Regions) * rep.NilPairNS / (float64(baseWall) * 1e6)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	if !rep.TraceIdentical {
		return fmt.Errorf("obsbench: trace hash diverged across obs on/off runs (determinism contract broken)")
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "lrscale: obsbench: enabled %.2f%%, disabled %.4f%% (%d regions at %.1fns/pair), covered %.1f%% -> %s\n",
			100*rep.EnabledOverheadFrac, 100*rep.DisabledOverheadFrac, rep.Regions, rep.NilPairNS, 100*rep.CoveredFrac, out)
	}
	return nil
}

// nilPairNS measures the cost of one disabled (nil-receiver) Start/End pair
// the same way lrsweep's tracebench measures nil tracer calls.
//
//lrlint:effects(wallclock) microbenchmark: wall time is the measurement itself
func nilPairNS() float64 {
	var nilTimers *obs.Timers
	const iters = 20_000_000
	start := time.Now()
	for i := 0; i < iters; i++ {
		nilTimers.Start(obs.PhaseDispatch)
		nilTimers.End(obs.PhaseDispatch)
	}
	return float64(time.Since(start).Nanoseconds()) / iters
}
