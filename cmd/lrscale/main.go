// Command lrscale benchmarks LR-Seluge dissemination at large network
// sizes and writes the BENCH_scale.json artifact consumed by check.sh.
//
// Default mode runs one dissemination per requested network size (node 0
// preloaded, everyone else fetching over a random-disk multi-hop graph) and
// reports wall time, engine throughput (events/sec), communication cost per
// node, and peak RSS per row. The flat events_per_sec_10k field mirrors the
// n=10000 row so the shell gate can extract it with sed.
//
// The -identity flag instead runs the heap-vs-calendar byte-identity smoke:
// the same seeded run under both event-queue implementations must produce
// identical transmission-trace hashes and metrics. It exits non-zero on any
// divergence, making it suitable as a CI gate.
//
// Observability: -obs installs internal/obs phase timers and prints each
// run's wall-time attribution table (also embedded in the JSON row); -obs-dir
// additionally writes per-size attribution JSON and runtime-snapshot JSONL
// artifacts for cmd/lrobs; -http serves live pprof//metrics//progress while
// runs execute; -obsbench measures obs overhead into BENCH_obs.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"lrseluge/internal/obs"
	"lrseluge/internal/scale"
	"lrseluge/internal/sim"
)

type benchFile struct {
	Queue        string         `json:"queue"`
	ImageKB      int            `json:"image_kb"`
	TargetDegree float64        `json:"target_degree"`
	Seed         int64          `json:"seed"`
	Rows         []scale.Report `json:"rows"`
	// EventsPerSec10k mirrors the n=10000 row (zero when that size was not
	// run); the shell regression gate extracts this flat field.
	EventsPerSec10k float64 `json:"events_per_sec_10k"`
}

func main() {
	var (
		nodesFlag = flag.String("nodes", "1000,10000,100000", "comma-separated network sizes to run")
		queueFlag = flag.String("queue", "calendar", "event queue implementation: heap or calendar")
		kb        = flag.Int("kb", 8, "image size in KiB")
		seed      = flag.Int64("seed", 1, "base seed for all random streams")
		degree    = flag.Float64("degree", 16, "target average node degree")
		out       = flag.String("o", "BENCH_scale.json", "output JSON path")
		identity  = flag.Bool("identity", false, "run the heap-vs-calendar byte-identity smoke and exit")
		idNodes   = flag.Int("identity-nodes", 200, "network size for the -identity smoke")
		quiet     = flag.Bool("q", false, "suppress progress output")
		obsOn     = flag.Bool("obs", false, "install phase timers and print per-run wall-time attribution")
		obsDir    = flag.String("obs-dir", "", "directory for per-size attribution JSON + snapshot JSONL artifacts (implies -obs)")
		httpAddr  = flag.String("http", "", "serve live pprof//metrics//progress on this address while runs execute")
		obsbench  = flag.Bool("obsbench", false, "measure obs overhead (disabled + enabled) and exit")
		obsbOut   = flag.String("obsbench-o", "BENCH_obs.json", "output path for -obsbench")
		obsbNodes = flag.Int("obsbench-nodes", 2000, "network size for -obsbench")
	)
	flag.Parse()

	if *identity {
		if err := runIdentity(*idNodes, *kb, *seed, *degree, *quiet); err != nil {
			fmt.Fprintln(os.Stderr, "lrscale:", err)
			os.Exit(1)
		}
		return
	}
	if *obsbench {
		if err := runObsbench(*obsbNodes, *kb, *seed, *degree, *obsbOut, *quiet); err != nil {
			fmt.Fprintln(os.Stderr, "lrscale:", err)
			os.Exit(1)
		}
		return
	}
	if *obsDir != "" {
		*obsOn = true
		if err := os.MkdirAll(*obsDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "lrscale:", err)
			os.Exit(1)
		}
	}

	var board *obs.Board
	if *httpAddr != "" {
		board = &obs.Board{}
		addr, shutdown, err := obs.Serve(*httpAddr, obs.ServeOptions{Progress: board})
		if err != nil {
			fmt.Fprintln(os.Stderr, "lrscale:", err)
			os.Exit(1)
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "lrscale: live telemetry on http://%s (pprof /debug/pprof/, /metrics, /progress)\n", addr)
	}

	queue, err := sim.ParseQueueKind(*queueFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lrscale:", err)
		os.Exit(1)
	}
	sizes, err := parseSizes(*nodesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lrscale:", err)
		os.Exit(1)
	}

	bf := benchFile{
		Queue:        queue.String(),
		ImageKB:      *kb,
		TargetDegree: *degree,
		Seed:         *seed,
	}
	for _, n := range sizes {
		cfg := scale.Config{
			Nodes:        n,
			TargetDegree: *degree,
			ImageKB:      *kb,
			Seed:         *seed,
			Queue:        queue,
			CompactRNG:   true,
			Board:        board,
		}
		if *obsOn {
			cfg.Obs = obs.NewTimers()
		}
		var snapFile *os.File
		if *obsDir != "" {
			f, err := os.Create(filepath.Join(*obsDir, fmt.Sprintf("n%d.snapshots.jsonl", n)))
			if err != nil {
				fmt.Fprintln(os.Stderr, "lrscale:", err)
				os.Exit(1)
			}
			snapFile = f
			cfg.Sampler = obs.NewSampler(f)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "lrscale: n=%d queue=%s ...\n", n, queue)
			cfg.Progress = func(s scale.Snapshot) {
				fmt.Fprintf(os.Stderr, "  t=%v completed=%d events=%d wall=%v\n",
					s.Now, s.Completed, s.Events, s.WallElapsed.Round(1000000))
			}
		}
		rep, err := scale.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lrscale:", err)
			os.Exit(1)
		}
		if snapFile != nil {
			if err := cfg.Sampler.Flush(); err == nil {
				err = snapFile.Close()
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "lrscale: snapshots:", err)
				os.Exit(1)
			}
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "lrscale: n=%d done: completed=%d/%d wall=%dms events/sec=%.0f bytes/node=%.0f rss=%dKB\n",
				n, rep.Completed, rep.Nodes, rep.WallMS, rep.EventsPerSec, rep.BytesPerNode, rep.PeakRSSKB)
		}
		// An incomplete run is never silent, -q or not: a benchmark row
		// where nodes missed the image is a different experiment.
		if rep.Incomplete > 0 {
			fmt.Fprintf(os.Stderr, "lrscale: WARNING: n=%d run incomplete: %d of %d nodes missing the image at the horizon\n",
				n, rep.Incomplete, rep.Nodes)
		}
		if rep.Obs != nil {
			if err := rep.Obs.WriteText(os.Stderr); err != nil {
				fmt.Fprintln(os.Stderr, "lrscale:", err)
				os.Exit(1)
			}
			if *obsDir != "" {
				data, err := json.MarshalIndent(rep.Obs, "", "  ")
				if err == nil {
					data = append(data, '\n')
					err = os.WriteFile(filepath.Join(*obsDir, fmt.Sprintf("n%d.attr.json", n)), data, 0o644)
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "lrscale: attribution:", err)
					os.Exit(1)
				}
			}
		}
		bf.Rows = append(bf.Rows, rep)
		if n == 10000 {
			bf.EventsPerSec10k = rep.EventsPerSec
		}
	}

	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "lrscale:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "lrscale:", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "lrscale: wrote %s\n", *out)
	}
}

// runIdentity executes the same seeded run under both queue kinds and fails
// on any divergence in trace hash or metrics.
func runIdentity(nodes, kb int, seed int64, degree float64, quiet bool) error {
	mk := func(q sim.QueueKind) scale.Config {
		return scale.Config{
			Nodes:        nodes,
			TargetDegree: degree,
			ImageKB:      kb,
			Seed:         seed,
			Queue:        q,
			CompactRNG:   true,
			TraceHash:    true,
		}
	}
	heap, err := scale.Run(mk(sim.HeapQueue))
	if err != nil {
		return err
	}
	cal, err := scale.Run(mk(sim.CalendarQueue))
	if err != nil {
		return err
	}
	if heap.TraceHash == "" || heap.TraceHash != cal.TraceHash {
		return fmt.Errorf("identity: trace hash mismatch: heap %s calendar %s", heap.TraceHash, cal.TraceHash)
	}
	if heap.Events != cal.Events || heap.Completed != cal.Completed ||
		heap.LatencySec != cal.LatencySec || heap.TotalBytes != cal.TotalBytes {
		return fmt.Errorf("identity: metrics mismatch:\n heap     %+v\n calendar %+v", heap, cal)
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "lrscale: identity OK at n=%d (hash %s, %d events, %d completed)\n",
			nodes, heap.TraceHash[:16], heap.Events, heap.Completed)
	}
	return nil
}

func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	sizes := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("invalid node count %q", p)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}
