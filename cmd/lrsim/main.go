// Command lrsim runs a single code-dissemination simulation and prints the
// paper's metrics. It is the interactive companion to cmd/figures: one
// scenario, fully parameterized from the command line.
//
// Examples:
//
//	lrsim -proto lr-seluge -kb 20 -receivers 20 -loss 0.1
//	lrsim -proto seluge -topology grid -rows 15 -cols 15 -density medium -noise heavy
//	lrsim -proto lr-seluge -k 32 -n 64 -loss 0.3 -policy fresh-rr
//	lrsim -proto lr-seluge -kb 4 -receivers 5 -faults examples/faults/churn.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"lrseluge"
	"lrseluge/internal/experiment"
	"lrseluge/internal/image"
)

func main() {
	var (
		proto     = flag.String("proto", "lr-seluge", "protocol: deluge, seluge, lr-seluge, rateless")
		kb        = flag.Int("kb", 20, "code image size in KiB")
		receivers = flag.Int("receivers", 20, "one-hop receivers (ignored for grid topologies)")
		loss      = flag.Float64("loss", 0.1, "iid packet-loss probability at each receiver")
		noise     = flag.String("noise", "", "channel model override: '' or 'bernoulli' (iid via -loss), 'heavy' (bursty Gilbert-Elliott)")
		topology  = flag.String("topology", "onehop", "topology: onehop, grid, random")
		rows      = flag.Int("rows", 15, "grid rows")
		cols      = flag.Int("cols", 15, "grid cols")
		density   = flag.String("density", "tight", "grid density: tight, medium")
		side      = flag.Float64("side", 100, "random topology square side")
		nodes     = flag.Int("nodes", 50, "random topology node count")
		payload   = flag.Int("payload", 72, "packet payload bytes")
		k         = flag.Int("k", 32, "source blocks per page")
		n         = flag.Int("n", 48, "encoded packets per page (LR-Seluge)")
		policy    = flag.String("policy", "greedy-rr", "LR-Seluge TX policy: greedy-rr, union, fresh-rr")
		faults    = flag.String("faults", "", "JSON fault-plan file (node churn, link outages, partitions)")
		seed      = flag.Int64("seed", 1, "RNG seed")
		runs      = flag.Int("runs", 1, "runs to average")
		parallel  = flag.Int("parallel", 0, "harness workers for multi-run averaging (0 = GOMAXPROCS, 1 = serial)")
		traceOut  = flag.String("trace", "", "write a JSONL protocol trace to this path (requires -runs 1; analyze with lrtrace)")
	)
	flag.Parse()

	s := lrseluge.Scenario{
		ImageSize: *kb * 1024,
		Params:    image.Params{PacketPayload: *payload, K: *k, N: *n},
		Receivers: *receivers,
		Seed:      *seed,
	}

	switch *proto {
	case "deluge":
		s.Protocol = lrseluge.Deluge
	case "seluge":
		s.Protocol = lrseluge.Seluge
	case "lr-seluge":
		s.Protocol = lrseluge.LRSeluge
	case "rateless":
		s.Protocol = lrseluge.RatelessDeluge
	default:
		fmt.Fprintf(os.Stderr, "lrsim: unknown protocol %q\n", *proto)
		os.Exit(2)
	}

	switch *policy {
	case "greedy-rr":
		s.LRPolicy = experiment.GreedyRR
	case "union":
		s.LRPolicy = experiment.UnionBits
	case "fresh-rr":
		s.LRPolicy = experiment.FreshRR
	default:
		fmt.Fprintf(os.Stderr, "lrsim: unknown policy %q\n", *policy)
		os.Exit(2)
	}

	switch *topology {
	case "onehop":
		s.LossP = *loss
	case "grid":
		d := lrseluge.Tight
		if *density == "medium" {
			d = lrseluge.Medium
		}
		g, err := lrseluge.Grid(*rows, *cols, d)
		if err != nil {
			log.Fatal(err)
		}
		s.Graph = g
	case "random":
		g, err := lrseluge.RandomTopology(*nodes, *side, *seed)
		if err != nil {
			log.Fatal(err)
		}
		s.Graph = g
	default:
		fmt.Fprintf(os.Stderr, "lrsim: unknown topology %q\n", *topology)
		os.Exit(2)
	}
	switch *noise {
	case "", "bernoulli":
		// iid losses via -loss (already configured above).
	case "heavy":
		s.LossFactory = func() lrseluge.LossModel { return lrseluge.HeavyNoise() }
	default:
		fmt.Fprintf(os.Stderr, "lrsim: unknown noise model %q (want '', 'bernoulli' or 'heavy')\n", *noise)
		os.Exit(2)
	}

	if *faults != "" {
		plan, err := lrseluge.LoadFaultPlan(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lrsim: %v\n", err)
			os.Exit(2)
		}
		s.Faults = plan
	}

	var traceFile *os.File
	if *traceOut != "" {
		// A trace is the event stream of ONE simulation; averaging several
		// runs into a single file would interleave unrelated runs.
		if *runs != 1 {
			fmt.Fprintf(os.Stderr, "lrsim: -trace requires -runs 1 (got -runs %d)\n", *runs)
			os.Exit(2)
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lrsim: %v\n", err)
			os.Exit(1)
		}
		traceFile = f
		s.Trace = lrseluge.NewTraceJSONL(f)
	}

	res, err := lrseluge.RunAvgParallel(s, *runs, *parallel)
	if err != nil {
		log.Fatal(err)
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("protocol:          %v\n", s.Protocol)
	fmt.Printf("image:             %d KiB (k=%d, n=%d, payload=%d B)\n", *kb, *k, *n, *payload)
	fmt.Printf("runs averaged:     %d\n", *runs)
	fmt.Printf("completed:         %.0f%% of nodes\n", 100*res.Completed)
	fmt.Printf("images verified:   %v\n", res.ImagesOK)
	fmt.Printf("data packets:      %.0f\n", res.DataPkts)
	fmt.Printf("SNACK packets:     %.0f\n", res.SnackPkts)
	fmt.Printf("adv packets:       %.0f\n", res.AdvPkts)
	fmt.Printf("signature packets: %.0f\n", res.SigPkts)
	fmt.Printf("total bytes:       %.0f\n", res.TotalBytes)
	fmt.Printf("latency:           %.1f s\n", res.LatencySec)
	if *faults != "" {
		fmt.Printf("crashes:           %.1f\n", res.Crashes)
		fmt.Printf("node downtime:     %.1f s\n", res.Downtime)
		fmt.Printf("recovery latency:  %.1f s\n", res.Recovery)
		fmt.Printf("re-fetched pkts:   %.1f\n", res.Refetched)
		fmt.Printf("fault drops:       %.1f\n", res.FaultDrops)
	}
}
