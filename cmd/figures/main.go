// Command figures regenerates every table and figure of the paper's
// evaluation (§V-VI): Fig. 3 (analysis vs simulation, one page), Figs. 4-6
// (one-hop sweeps over loss rate, receiver count and erasure-coding rate),
// and Tables II-III (multi-hop grids). Output is textual series matching the
// paper's axes; EXPERIMENTS.md records the comparison with the paper.
//
// Usage:
//
//	figures [-fig 3a|3b|4|5|6|table2|table3|all] [-runs N] [-seed S] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"lrseluge/internal/experiment"
	"lrseluge/internal/image"
	"lrseluge/internal/topo"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "which artifact to regenerate: 3a, 3b, 4, 5, 6, table2, table3, attacks, ablation, upgrade, all")
		runs     = flag.Int("runs", 3, "simulation runs to average per data point")
		seed     = flag.Int64("seed", 1, "base RNG seed")
		quick    = flag.Bool("quick", false, "smaller image and sweeps for a fast pass")
		parallel = flag.Int("parallel", 0, "cap on concurrent simulation runs (0 = all cores); output is identical for any value")
	)
	flag.Parse()
	if *parallel > 0 {
		// Sweeps fan out on GOMAXPROCS-wide harness pools; capping
		// GOMAXPROCS caps the sweep concurrency.
		runtime.GOMAXPROCS(*parallel)
	}

	cfg := sweepConfig{runs: *runs, seed: *seed, quick: *quick}
	artifacts := map[string]func(sweepConfig) error{
		"3a":     fig3a,
		"3b":     fig3b,
		"4":      fig4,
		"5":      fig5,
		"6":      fig6,
		"table2": func(c sweepConfig) error { return multihop(c, topo.Tight, "Table II (15x15 tight grid, high density)") },
		"table3": func(c sweepConfig) error {
			return multihop(c, topo.Medium, "Table III (15x15 medium grid, low density)")
		},
		"attacks": func(c sweepConfig) error {
			return attacks(c)
		},
		"ablation": ablation,
		"upgrade":  upgrade,
	}
	order := []string{"3a", "3b", "4", "5", "6", "table2", "table3", "attacks", "ablation", "upgrade"}

	run := func(name string) {
		if err := artifacts[name](cfg); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	if *fig == "all" {
		for _, name := range order {
			run(name)
		}
		return
	}
	if _, ok := artifacts[*fig]; !ok {
		fmt.Fprintf(os.Stderr, "figures: unknown artifact %q\n", *fig)
		os.Exit(2)
	}
	run(*fig)
}

type sweepConfig struct {
	runs  int
	seed  int64
	quick bool
}

func (c sweepConfig) imageSize() int {
	if c.quick {
		return 4 * 1024
	}
	return 20 * 1024
}

func (c sweepConfig) params() image.Params { return image.DefaultParams() }

func fig3a(c sweepConfig) error {
	fmt.Println("=== Fig. 3(a): data packets for one page vs packet-loss rate (N=10 receivers) ===")
	ps := []float64{0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5}
	if c.quick {
		ps = []float64{0, 0.1, 0.2, 0.3, 0.4}
	}
	pts, err := experiment.Fig3LossSweep(c.params(), 10, ps, c.runs, c.seed)
	if err != nil {
		return err
	}
	fmt.Printf("%8s %16s %16s %12s %12s\n", "p", "Seluge(analysis)", "ACK-LR(analysis)", "Seluge(sim)", "LR(sim)")
	for _, pt := range pts {
		fmt.Printf("%8.2f %16.1f %16.1f %12.1f %12.1f\n", pt.X, pt.SelugeAnalysis, pt.ACKLRAnalysis, pt.SelugeSim, pt.LRSim)
	}
	fmt.Println()
	return nil
}

func fig3b(c sweepConfig) error {
	fmt.Println("=== Fig. 3(b): data packets for one page vs number of receivers (p=0.2) ===")
	ns := []int{2, 5, 10, 15, 20, 25, 30, 35, 40}
	if c.quick {
		ns = []int{2, 10, 20, 40}
	}
	pts, err := experiment.Fig3ReceiverSweep(c.params(), ns, 0.2, c.runs, c.seed)
	if err != nil {
		return err
	}
	fmt.Printf("%8s %16s %16s %12s %12s\n", "N", "Seluge(analysis)", "ACK-LR(analysis)", "Seluge(sim)", "LR(sim)")
	for _, pt := range pts {
		fmt.Printf("%8.0f %16.1f %16.1f %12.1f %12.1f\n", pt.X, pt.SelugeAnalysis, pt.ACKLRAnalysis, pt.SelugeSim, pt.LRSim)
	}
	fmt.Println()
	return nil
}

func printComparison(pts []experiment.ComparisonPoint, xLabel string) {
	fmt.Printf("%8s | %10s %10s | %10s %10s | %9s %9s | %12s %12s | %10s %10s\n",
		xLabel, "S:data", "LR:data", "S:snack", "LR:snack", "S:adv", "LR:adv", "S:bytes", "LR:bytes", "S:lat(s)", "LR:lat(s)")
	for _, pt := range pts {
		fmt.Printf("%8.2f | %10.0f %10.0f | %10.0f %10.0f | %9.0f %9.0f | %12.0f %12.0f | %10.1f %10.1f\n",
			pt.X,
			pt.Seluge.DataPkts, pt.LR.DataPkts,
			pt.Seluge.SnackPkts, pt.LR.SnackPkts,
			pt.Seluge.AdvPkts, pt.LR.AdvPkts,
			pt.Seluge.TotalBytes, pt.LR.TotalBytes,
			pt.Seluge.LatencySec, pt.LR.LatencySec)
	}
	fmt.Println()
}

func fig4(c sweepConfig) error {
	fmt.Printf("=== Fig. 4(a)-(e): impact of packet-loss rate (N=20, %d KB image) ===\n", c.imageSize()/1024)
	ps := []float64{0, 0.01, 0.05, 0.1, 0.2, 0.3, 0.4}
	if c.quick {
		ps = []float64{0, 0.1, 0.3, 0.4}
	}
	pts, err := experiment.Fig4LossImpact(c.params(), c.imageSize(), 20, ps, c.runs, c.seed)
	if err != nil {
		return err
	}
	printComparison(pts, "p")
	return nil
}

func fig5(c sweepConfig) error {
	fmt.Printf("=== Fig. 5(a)-(e): impact of receiver count (p=0.1, %d KB image) ===\n", c.imageSize()/1024)
	ns := []int{5, 10, 20, 30, 40}
	if c.quick {
		ns = []int{5, 20, 40}
	}
	pts, err := experiment.Fig5DensityImpact(c.params(), c.imageSize(), ns, 0.1, c.runs, c.seed)
	if err != nil {
		return err
	}
	printComparison(pts, "N")
	return nil
}

func fig6(c sweepConfig) error {
	fmt.Printf("=== Fig. 6(a)-(e): impact of erasure-coding rate n/k (k=32, N=20, %d KB image) ===\n", c.imageSize()/1024)
	ns := []int{32, 40, 48, 56, 64, 72}
	ps := []float64{0.05, 0.1, 0.2}
	if c.quick {
		ns = []int{32, 48, 64}
		ps = []float64{0.1}
	}
	pts, err := experiment.Fig6RateImpact(c.params().PacketPayload, 32, c.imageSize(), 20, ns, ps, c.runs, c.seed)
	if err != nil {
		return err
	}
	fmt.Printf("%6s %6s %6s | %10s %10s %9s %12s %10s\n", "p", "n", "n/k", "data", "snack", "adv", "bytes", "lat(s)")
	for _, pt := range pts {
		fmt.Printf("%6.2f %6d %6.2f | %10.0f %10.0f %9.0f %12.0f %10.1f\n",
			pt.P, pt.N, pt.Rate, pt.LR.DataPkts, pt.LR.SnackPkts, pt.LR.AdvPkts, pt.LR.TotalBytes, pt.LR.LatencySec)
	}
	fmt.Println()
	return nil
}

func multihop(c sweepConfig, density topo.GridDensity, title string) error {
	fmt.Printf("=== %s ===\n", title)
	rows, cols := 15, 15
	if c.quick {
		rows, cols = 7, 7
	}
	sel, lr, err := experiment.MultiHopComparison(c.params(), c.imageSize(), density, rows, cols, c.runs, c.seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %10s %10s %9s %12s %10s %10s\n", "scheme", "data", "snack", "adv", "bytes", "lat(s)", "done")
	fmt.Printf("%-12s %10.0f %10.0f %9.0f %12.0f %10.1f %9.0f%%\n", "Seluge",
		sel.DataPkts, sel.SnackPkts, sel.AdvPkts, sel.TotalBytes, sel.LatencySec, 100*sel.Completed)
	fmt.Printf("%-12s %10.0f %10.0f %9.0f %12.0f %10.1f %9.0f%%\n", "LR-Seluge",
		lr.DataPkts, lr.SnackPkts, lr.AdvPkts, lr.TotalBytes, lr.LatencySec, 100*lr.Completed)
	fmt.Println()
	return nil
}

func attacks(c sweepConfig) error {
	fmt.Println("=== Attack resilience (§IV-E): forged data / signature flood / denial of receipt ===")
	res, err := experiment.AttackResilience(c.params(), c.imageSize()/4, 10, 0.1, c.seed)
	if err != nil {
		return err
	}
	fmt.Printf("forged-data injection: authDrops=%d forgedAccepted=%d completed=%d/%d imagesOK=%v\n",
		res.Injection.AuthDrops, res.Injection.ForgedAccepted, res.Injection.Completed, res.Injection.Nodes, res.Injection.ImagesOK)
	fmt.Printf("signature flooding:    puzzleRejects=%d sigVerifications=%d completed=%d/%d\n",
		res.SigFlood.PuzzleRejects, res.SigFlood.SigVerifications, res.SigFlood.Completed, res.SigFlood.Nodes)
	fmt.Printf("denial of receipt:     victimTx(no defense)=%d victimTx(defense)=%d\n",
		res.DoRVictimTxNoDefense, res.DoRVictimTxDefense)
	fmt.Println()
	return nil
}

func ablation(c sweepConfig) error {
	fmt.Println("=== Scheduler ablation (§IV-D.3): greedy-RR vs union vs fresh-RR ===")
	res, err := experiment.SchedulerAblation(c.params(), c.imageSize()/2, 20, 0.2, c.runs, c.seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %10s %10s %12s %10s\n", "policy", "data", "snack", "bytes", "lat(s)")
	for _, policy := range []experiment.LRPolicy{experiment.GreedyRR, experiment.UnionBits, experiment.FreshRR} {
		r := res[policy]
		fmt.Printf("%-10s %10.0f %10.0f %12.0f %10.1f\n", policy, r.DataPkts, r.SnackPkts, r.TotalBytes, r.LatencySec)
	}
	fmt.Println()
	return nil
}

func upgrade(c sweepConfig) error {
	fmt.Println("=== Secure version upgrade: v1 network reprogrammed to v2 ===")
	res, err := experiment.VersionUpgrade(c.params(), c.imageSize()/2, 10, 0.1, c.seed)
	if err != nil {
		return err
	}
	fmt.Printf("v1 latency=%.1fs  upgrade latency=%.1fs  upgrade bytes=%d  upgraded=%d/%d  imagesOK=%v\n",
		res.V1Latency.Seconds(), res.UpgradeLatency.Seconds(), res.UpgradeBytes, res.Upgraded, res.Nodes, res.ImagesOK)
	fmt.Println()
	return nil
}
