// Command lrserved serves simulation results over HTTP from a
// content-addressed run store: POST a scenario spec and get its averaged
// result — computed on the first request, served from the store on every
// later one, across restarts. See internal/served for the endpoints and
// internal/runstore for the on-disk format.
//
// Examples:
//
//	lrserved -store /var/lib/lrseluge -addr :8080 -code-version v7
//	lrserved -store /tmp/rs -max-store-bytes 104857600 -workers 4
//	lrserved -smoke
//	lrserved -selfbench BENCH_served.json
//
// Exit codes: 0 success (including clean shutdown on SIGINT/SIGTERM),
// 1 runtime failure, 2 usage errors.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"lrseluge/internal/runstore"
	"lrseluge/internal/served"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 = ephemeral)")
		storeDir    = flag.String("store", "", "run-store directory (required for serving; smoke/selfbench default to a temp dir)")
		workers     = flag.Int("workers", 0, "compute pool width per request (0 = GOMAXPROCS)")
		maxBytes    = flag.Int64("max-store-bytes", 0, "store size cap in bytes; LRU-evict past it (0 = unbounded)")
		codeVersion = flag.String("code-version", "dev", "code-version stamp mixed into every run key")
		smoke       = flag.Bool("smoke", false, "self-test mode: start on an ephemeral port, drive miss->hit->restart->warm-hit over real HTTP, exit")
		selfbench   = flag.String("selfbench", "", "benchmark mode: measure cold-miss vs cache-hit latency under concurrent clients, write timings to this JSON file, exit")
	)
	flag.Parse()

	if *smoke || *selfbench != "" {
		dir := *storeDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "lrserved-*")
			if err != nil {
				fmt.Fprintf(os.Stderr, "lrserved: %v\n", err)
				return 1
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		var err error
		if *smoke {
			err = runSmoke(dir, *workers, *maxBytes, *codeVersion)
		} else {
			err = runSelfbench(*selfbench, dir, *workers, *maxBytes, *codeVersion)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "lrserved: %v\n", err)
			return 1
		}
		return 0
	}

	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "lrserved: -store is required (the run-store directory)")
		return 2
	}
	hs, ln, err := startServer(*addr, *storeDir, *workers, *maxBytes, *codeVersion)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lrserved: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "lrserved: listening on %s (store %s, code-version %s)\n",
		ln.Addr(), *storeDir, *codeVersion)

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "lrserved: %v, shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "lrserved: shutdown: %v\n", err)
			return 1
		}
		return 0
	case err := <-serveErr:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "lrserved: %v\n", err)
			return 1
		}
		return 0
	}
}

// startServer opens the store, mounts the served handler and starts
// listening (without serving yet — the caller drives Serve).
func startServer(addr, storeDir string, workers int, maxBytes int64, codeVersion string) (*http.Server, net.Listener, error) {
	store, err := runstore.Open(storeDir, runstore.Options{MaxBytes: maxBytes})
	if err != nil {
		return nil, nil, err
	}
	srv, err := served.New(served.Config{
		Store:       store,
		CodeVersion: codeVersion,
		Workers:     workers,
	})
	if err != nil {
		return nil, nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	return &http.Server{Handler: srv.Handler()}, ln, nil
}

// startEphemeral boots a server on an ephemeral loopback port and begins
// serving; it returns the base URL and a stop function.
func startEphemeral(storeDir string, workers int, maxBytes int64, codeVersion string) (string, func() error, error) {
	hs, ln, err := startServer("127.0.0.1:0", storeDir, workers, maxBytes, codeVersion)
	if err != nil {
		return "", nil, err
	}
	go hs.Serve(ln)
	stop := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return hs.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// smokeSpec is the tiny scenario the smoke mode exercises: small
// enough to compute in well under a second, real enough to run the full
// simulator, spelled with shuffled field order so the canonicalization path
// is exercised over real HTTP too.
const smokeSpec = `{"seed": 1, "receivers": 3, "protocol": "lr-seluge", "image_size": 2048}`

// benchSpec is the -selfbench workload: heavy enough that the cold compute
// dominates (a multi-hop 4x4 grid under bursty noise, two seeds averaged),
// which is exactly the regime the cache exists for. The hit path's cost is
// independent of the spec, so the cold/hit ratio reported is a lower bound
// for real sweep cells.
const benchSpec = `{"seed": 1, "protocol": "lr-seluge", "grid": {"rows": 6, "cols": 6}, "noise": "heavy", "image_size": 20480, "runs": 2}`

// postRun POSTs a spec body and returns the response body, cache
// disposition, and key header.
func postRun(client *http.Client, base, spec string) ([]byte, string, string, error) {
	resp, err := client.Post(base+"/v1/runs", "application/json", strings.NewReader(spec))
	if err != nil {
		return nil, "", "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", "", fmt.Errorf("POST /v1/runs: %d: %s", resp.StatusCode, body)
	}
	return body, resp.Header.Get("X-Lrserved-Cache"), resp.Header.Get("X-Lrserved-Key"), nil
}

// runSmoke drives the daemon's core contract over real loopback HTTP:
// healthz, a cold miss, a warm hit with a byte-identical body, a GET by key,
// then a full restart over the same store directory and a warm hit from the
// reopened store.
func runSmoke(dir string, workers int, maxBytes int64, codeVersion string) error {
	base, stop, err := startEphemeral(dir, workers, maxBytes, codeVersion)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 60 * time.Second}

	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: %d", resp.StatusCode)
	}

	cold, disp, key, err := postRun(client, base, smokeSpec)
	if err != nil {
		return err
	}
	if disp != "miss" {
		return fmt.Errorf("first POST disposition %q, want miss", disp)
	}
	warm, disp, _, err := postRun(client, base, smokeSpec)
	if err != nil {
		return err
	}
	if disp != "hit" {
		return fmt.Errorf("second POST disposition %q, want hit", disp)
	}
	if !bytes.Equal(cold, warm) {
		return fmt.Errorf("hit body differs from miss body")
	}

	getResp, err := client.Get(base + "/v1/runs/" + key)
	if err != nil {
		return err
	}
	byKey, err := io.ReadAll(getResp.Body)
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusOK || !bytes.Equal(byKey, cold) {
		return fmt.Errorf("GET by key: %d, identical=%v", getResp.StatusCode, bytes.Equal(byKey, cold))
	}

	if err := stop(); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}

	// Restart over the same store directory: the result must survive as a
	// warm hit with the same bytes.
	base2, stop2, err := startEphemeral(dir, workers, maxBytes, codeVersion)
	if err != nil {
		return err
	}
	defer stop2()
	restarted, disp, _, err := postRun(client, base2, smokeSpec)
	if err != nil {
		return err
	}
	if disp != "hit" {
		return fmt.Errorf("post-restart POST disposition %q, want warm hit", disp)
	}
	if !bytes.Equal(cold, restarted) {
		return fmt.Errorf("post-restart body differs from original")
	}
	fmt.Fprintf(os.Stderr, "lrserved: smoke OK: miss -> hit -> restart -> warm hit, byte-identical (key %s)\n", key)
	return nil
}

// servedBenchReport is the schema of the -selfbench JSON artifact
// (BENCH_served.json in check.sh).
type servedBenchReport struct {
	Cores             int `json:"cores"`
	Clients           int `json:"clients"`
	RequestsPerClient int `json:"requests_per_client"`

	// ColdMissSec is the first-request latency: full simulation plus store
	// write. Hit latencies cover the cached path under concurrency.
	ColdMissSec float64 `json:"cold_miss_sec"`
	HitMeanSec  float64 `json:"hit_mean_sec"`
	HitP50Sec   float64 `json:"hit_p50_sec"`
	HitP99Sec   float64 `json:"hit_p99_sec"`
	HitMaxSec   float64 `json:"hit_max_sec"`
	// HitThroughputRPS is hits served per wall-clock second across clients.
	HitThroughputRPS float64 `json:"hit_throughput_rps"`
	// ColdToHitP99 is the economics headline: how many times faster the
	// cached path is than recomputing (cold_miss_sec / hit_p99_sec).
	ColdToHitP99 float64 `json:"cold_to_hit_p99"`
	// Identical is true when every hit body matched the cold body byte for
	// byte.
	Identical bool `json:"identical"`
}

// runSelfbench measures the cold-miss vs cache-hit latency split over real
// loopback HTTP: one cold POST computes and stores the spec, then concurrent
// clients hammer the hit path.
func runSelfbench(path, dir string, workers int, maxBytes int64, codeVersion string) error {
	base, stop, err := startEphemeral(dir, workers, maxBytes, codeVersion)
	if err != nil {
		return err
	}
	defer stop()
	client := &http.Client{Timeout: 120 * time.Second}

	start := time.Now()
	cold, disp, _, err := postRun(client, base, benchSpec)
	if err != nil {
		return err
	}
	coldSec := time.Since(start).Seconds()
	if disp != "miss" {
		return fmt.Errorf("cold POST disposition %q, want miss (store dir not fresh?)", disp)
	}

	clients := runtime.NumCPU()
	if clients > 8 {
		clients = 8
	}
	if clients < 2 {
		clients = 2
	}
	const perClient = 50
	lats := make([][]float64, clients)
	identical := true
	var mu sync.Mutex
	var wg sync.WaitGroup
	hammerStart := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mine := make([]float64, 0, perClient)
			for j := 0; j < perClient; j++ {
				t0 := time.Now()
				body, disp, _, err := postRun(client, base, benchSpec)
				sec := time.Since(t0).Seconds()
				if err != nil || disp != "hit" || !bytes.Equal(body, cold) {
					mu.Lock()
					identical = false
					mu.Unlock()
					return
				}
				mine = append(mine, sec)
			}
			mu.Lock()
			lats[i] = mine
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	hammerSec := time.Since(hammerStart).Seconds()

	var all []float64
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) != clients*perClient || !identical {
		return fmt.Errorf("hit hammer failed: %d/%d hits, identical=%v", len(all), clients*perClient, identical)
	}
	sort.Float64s(all)
	mean := 0.0
	for _, v := range all {
		mean += v
	}
	mean /= float64(len(all))
	rep := servedBenchReport{
		Cores:             runtime.NumCPU(),
		Clients:           clients,
		RequestsPerClient: perClient,
		ColdMissSec:       coldSec,
		HitMeanSec:        mean,
		HitP50Sec:         percentile(all, 0.50),
		HitP99Sec:         percentile(all, 0.99),
		HitMaxSec:         all[len(all)-1],
		HitThroughputRPS:  float64(len(all)) / hammerSec,
		ColdToHitP99:      coldSec / percentile(all, 0.99),
		Identical:         identical,
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "lrserved: selfbench: cold miss %.3fs, hit p50 %.2fms p99 %.2fms (%.0f rps, %d clients), cold/hit-p99 %.0fx -> %s\n",
		coldSec, 1e3*rep.HitP50Sec, 1e3*rep.HitP99Sec, rep.HitThroughputRPS, clients, rep.ColdToHitP99, path)
	return nil
}

// percentile reads the q-quantile from sorted data by nearest-rank.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
