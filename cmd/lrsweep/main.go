// Command lrsweep runs a named experiment sweep from the catalog through the
// internal/harness worker pool and writes one JSONL record per simulation
// run. Output is byte-identical for any -parallel value: the harness merges
// results in job order regardless of goroutine scheduling.
//
// Examples:
//
//	lrsweep -list
//	lrsweep -sweep multihop -quick -runs 8 -parallel 8 -o multihop.jsonl
//	lrsweep -sweep fig4 -runs 3 -csv fig4.csv -o fig4.jsonl -progress
//	lrsweep -sweep smoke -runs 4 -selfbench BENCH_sweep.json
//	lrsweep -sweep smoke -quick -runs 2 -trace-dir traces/ -o smoke.jsonl
//	lrsweep -sweep fig4 -runs 3 -timeout 5m -flight-dir flight/ -o fig4.jsonl
//	lrsweep -sweep smoke -quick -runs 2 -tracebench BENCH_trace.json
//	lrsweep -sweep fig4 -runs 3 -store results/ -code-version v7 -o fig4-cells.jsonl
//
// With -store, the sweep runs incrementally against a content-addressed run
// store (shared with the lrserved daemon): cells whose keys are already
// stored are served from it, only the missing cells are simulated, and the
// output is one JSONL line per cell (aggregates, not per-run records). The
// output bytes are identical whether a cell was computed or cached, so a
// warm rerun reproduces the cold run's file exactly.
//
// Exit codes: 0 success, 1 a run failed (panic/timeout/error; all other
// records are still written), 2 usage errors such as an unknown sweep or
// noise model.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"lrseluge/internal/experiment"
	"lrseluge/internal/harness"
	"lrseluge/internal/obs"
	"lrseluge/internal/runstore"
	"lrseluge/internal/served"
	"lrseluge/internal/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		sweep      = flag.String("sweep", "", "named sweep to run (see -list)")
		list       = flag.Bool("list", false, "list available sweeps and exit")
		runs       = flag.Int("runs", 3, "seeds averaged per grid entry")
		seed       = flag.Int64("seed", 1, "base RNG seed")
		quick      = flag.Bool("quick", false, "smaller images/grids/axes for a fast pass")
		parallel   = flag.Int("parallel", 0, "worker-pool width (0 = GOMAXPROCS, 1 = serial)")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget per run (0 = none); timed-out runs become failed records")
		out        = flag.String("o", "", "JSONL output path ('' or '-' = stdout)")
		csvPath    = flag.String("csv", "", "also write a CSV table to this path")
		progress   = flag.Bool("progress", false, "report per-run progress on stderr")
		selfbench  = flag.String("selfbench", "", "benchmark mode: run the sweep serially then with -parallel workers, verify byte-identical JSONL, write timings to this JSON file")
		traceDir   = flag.String("trace-dir", "", "write one JSONL protocol trace per run into this directory (analyze with lrtrace)")
		flightDir  = flag.String("flight-dir", "", "keep a bounded flight record per run; when a run panics or times out, dump its last trace events and state into this directory")
		tracebench = flag.String("tracebench", "", "benchmark mode: run the sweep untraced twice then traced, verify identical metrics, write tracer-overhead timings to this JSON file")
		storeDir   = flag.String("store", "", "incremental mode: consult this run-store directory per cell, compute only the misses, and emit one JSONL line per cell (see lrserved)")
		codeVer    = flag.String("code-version", "dev", "code-version stamp mixed into store keys (with -store)")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this path")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this path at exit")
		httpAddr   = flag.String("http", "", "serve live telemetry (pprof, /metrics, /progress) on this address while the sweep runs")
	)
	flag.Parse()

	if *list {
		fmt.Println("available sweeps:")
		for _, name := range experiment.SweepNames() {
			fmt.Printf("  %-16s %s\n", name, experiment.SweepDescription(name))
		}
		return 0
	}
	if *sweep == "" {
		fmt.Fprintf(os.Stderr, "lrsweep: -sweep is required (one of %s); see -list\n", strings.Join(experiment.SweepNames(), ", "))
		return 2
	}
	entries, err := experiment.NamedSweep(*sweep, experiment.SweepSpec{Runs: *runs, Seed: *seed, Quick: *quick})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lrsweep: %v\n", err)
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lrsweep: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "lrsweep: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer writeMemProfile(*memprofile)
	}

	if *storeDir != "" {
		if *csvPath != "" || *traceDir != "" || *flightDir != "" || *selfbench != "" || *tracebench != "" {
			fmt.Fprintln(os.Stderr, "lrsweep: -store is incompatible with -csv, -trace-dir, -flight-dir, -selfbench and -tracebench")
			return 2
		}
		spec := experiment.SweepSpec{Runs: *runs, Seed: *seed, Quick: *quick}
		if err := runIncremental(*storeDir, *sweep, spec, *codeVer, *out,
			harness.Config{Workers: *parallel, Timeout: *timeout}); err != nil {
			fmt.Fprintf(os.Stderr, "lrsweep: %v\n", err)
			return 1
		}
		return 0
	}

	if *selfbench != "" {
		if err := runSelfbench(*selfbench, *sweep, entries, *parallel, *timeout); err != nil {
			fmt.Fprintf(os.Stderr, "lrsweep: %v\n", err)
			return 1
		}
		return 0
	}
	if *tracebench != "" {
		if err := runTracebench(*tracebench, *sweep, entries, *timeout); err != nil {
			fmt.Fprintf(os.Stderr, "lrsweep: %v\n", err)
			return 1
		}
		return 0
	}

	jsonlOut := io.Writer(os.Stdout)
	if *out != "" && *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lrsweep: %v\n", err)
			return 1
		}
		defer f.Close()
		jsonlOut = f
	}
	sinks := []harness.Sink{harness.NewJSONLSink(jsonlOut)}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lrsweep: %v\n", err)
			return 1
		}
		defer f.Close()
		sinks = append(sinks, harness.NewCSVSink(f, experiment.MetricNames()))
	}

	jobs := sweepJobs(*sweep, entries)
	runFn := experiment.GridRunFunc

	// With -flight-dir, every job gets a bounded flight recorder fed from its
	// trace stream. Recorders are created up front on this goroutine (indexed
	// by job position, which harness.Run assigns as Job.Index) so the
	// harness's dump-on-timeout path never races recorder creation.
	var flightRecs []*obs.FlightRecorder
	if *flightDir != "" {
		if err := os.MkdirAll(*flightDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "lrsweep: %v\n", err)
			return 1
		}
		flightRecs = make([]*obs.FlightRecorder, len(jobs))
		for i, j := range jobs {
			fr := obs.NewFlightRecorder(flightRingCap)
			fr.SetOutput(filepath.Join(*flightDir, flightFileName(i, j.Name)))
			fr.SetState("job", j.Name)
			for _, p := range j.Params {
				fr.SetState(p.Key, p.Value)
			}
			flightRecs[i] = fr
		}
	}

	if *traceDir != "" || flightRecs != nil {
		if *traceDir != "" {
			if err := os.MkdirAll(*traceDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "lrsweep: %v\n", err)
				return 1
			}
		}
		tdir := *traceDir
		// One file per job, named by job index: every run owns its file, so
		// the trace bytes stay worker-count invariant. The flight sink rides
		// the same per-job stream, teed when both are requested.
		runFn = experiment.TracedRunFunc(func(j harness.Job) (trace.Sink, func() error, error) {
			var sinks []trace.Sink
			var closeFn func() error
			if tdir != "" {
				f, err := os.Create(filepath.Join(tdir, traceFileName(j)))
				if err != nil {
					return nil, nil, err
				}
				sinks = append(sinks, trace.NewJSONLSink(f))
				closeFn = f.Close
			}
			if flightRecs != nil {
				sinks = append(sinks, trace.NewFlightSink(flightRecs[j.Index]))
			}
			if len(sinks) == 1 {
				return sinks[0], closeFn, nil
			}
			return trace.NewTee(sinks...), closeFn, nil
		})
	}

	cfg := harness.Config{Workers: *parallel, Timeout: *timeout}
	if flightRecs != nil {
		cfg.Flight = func(j harness.Job) harness.FlightDumper {
			if fr := flightRecs[j.Index]; fr != nil {
				return fr
			}
			return nil
		}
	}
	start := time.Now()
	if *progress {
		cfg.OnRecord = func(done, total int, r harness.Record) {
			status := "ok"
			if r.Failed() {
				status = "FAILED: " + r.Err
			}
			fmt.Fprintf(os.Stderr, "lrsweep: [%d/%d] %s %s (%.1fs elapsed)\n",
				done, total, r.Job.Name, status, time.Since(start).Seconds())
		}
	}
	if *httpAddr != "" {
		board := &obs.Board{}
		bound, shutdown, err := obs.Serve(*httpAddr, obs.ServeOptions{Progress: board})
		if err != nil {
			fmt.Fprintf(os.Stderr, "lrsweep: %v\n", err)
			return 1
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "lrsweep: live telemetry on http://%s\n", bound)
		failedSoFar := 0
		prev := cfg.OnRecord
		// OnRecord runs on the merging goroutine, so the counter and board
		// need no locking.
		cfg.OnRecord = func(done, total int, r harness.Record) {
			if r.Failed() {
				failedSoFar++
			}
			board.Publish(sweepProgress{
				Done: done, Total: total, Failed: failedSoFar,
				LastJob: r.Job.Name, ElapsedSec: time.Since(start).Seconds(),
			})
			if prev != nil {
				prev(done, total, r)
			}
		}
	}
	recs, err := harness.Run(jobs, runFn, cfg, sinks...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lrsweep: %v\n", err)
		return 1
	}
	failed := 0
	for _, r := range recs {
		if r.Failed() {
			failed++
			fmt.Fprintf(os.Stderr, "lrsweep: %s failed: %s\n", r.Job.Name, r.Err)
		}
	}
	fmt.Fprintf(os.Stderr, "lrsweep: %s: %d runs (%d failed) in %.1fs on %d workers\n",
		*sweep, len(recs), failed, time.Since(start).Seconds(), effectiveWorkers(*parallel, len(recs)))
	if failed > 0 {
		return 1
	}
	return 0
}

// cellLine is the JSONL schema of -store mode: one line per sweep cell,
// aggregate result included, cache provenance deliberately excluded — hit
// and miss counts go to stderr instead, so a warm rerun's output is
// byte-identical to the cold run's.
type cellLine struct {
	Sweep  string               `json:"sweep"`
	Index  int                  `json:"index"`
	Name   string               `json:"name"`
	Proto  string               `json:"proto"`
	Params []harness.Param      `json:"params,omitempty"`
	Key    string               `json:"key"`
	Runs   int                  `json:"runs"`
	Result experiment.AvgResult `json:"result"`
}

// runIncremental runs the sweep against a content-addressed store: cells
// already present are served from it, only the misses are computed (and
// stored), and one JSONL line per cell goes to outPath.
func runIncremental(storeDir, sweep string, spec experiment.SweepSpec, codeVersion, outPath string, cfg harness.Config) error {
	store, err := runstore.Open(storeDir, runstore.Options{})
	if err != nil {
		return err
	}
	start := time.Now()
	outs, hits, misses, err := served.RunSweep(store, sweep, spec, codeVersion, cfg)
	if err != nil {
		return err
	}

	w := io.Writer(os.Stdout)
	if outPath != "" && outPath != "-" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	for _, o := range outs {
		line := cellLine{
			Sweep:  o.Sweep,
			Index:  o.Index,
			Name:   o.Name,
			Proto:  o.Proto,
			Params: o.Params,
			Key:    o.Key,
			Runs:   o.Runs,
			Result: o.Result,
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "lrsweep: %s: %d cells (%d cached, %d computed) in %.1fs (store %s, code-version %s)\n",
		sweep, len(outs), hits, misses, time.Since(start).Seconds(), storeDir, codeVersion)
	return nil
}

// sweepProgress is the /progress JSON published while a sweep runs.
type sweepProgress struct {
	Done       int     `json:"done"`
	Total      int     `json:"total"`
	Failed     int     `json:"failed"`
	LastJob    string  `json:"last_job"`
	ElapsedSec float64 `json:"elapsed_sec"`
}

// flightRingCap bounds each job's flight recorder: enough trace tail to see
// what the run was doing when it died, small enough that a wide sweep keeps
// thousands of recorders resident without noticeable memory cost.
const flightRingCap = 512

// traceFileName maps a job onto its trace file: the job index keeps names
// unique and sorted in job order, the sanitized job name keeps them readable.
func traceFileName(j harness.Job) string {
	return fmt.Sprintf("%04d-%s.jsonl", j.Index, sanitizeJobName(j.Name))
}

// flightFileName is the post-mortem dump path for one job, mirroring the
// trace naming scheme.
func flightFileName(index int, name string) string {
	return fmt.Sprintf("%04d-%s.flight.txt", index, sanitizeJobName(name))
}

func sanitizeJobName(jobName string) string {
	name := make([]byte, 0, len(jobName))
	for i := 0; i < len(jobName); i++ {
		c := jobName[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '=', c == '-':
			name = append(name, c)
		default:
			name = append(name, '-')
		}
	}
	return string(name)
}

// writeMemProfile snapshots the heap after a final GC.
func writeMemProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lrsweep: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "lrsweep: %v\n", err)
	}
}

// sweepJobs expands grid entries into harness jobs via the experiment glue.
func sweepJobs(sweep string, entries []experiment.GridEntry) []harness.Job {
	return experiment.GridJobs(sweep, entries)
}

// effectiveWorkers mirrors the harness pool-sizing rule for reporting.
func effectiveWorkers(parallel, jobs int) int {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > jobs {
		parallel = jobs
	}
	return parallel
}

// benchReport is the schema of the -selfbench JSON artifact.
type benchReport struct {
	Sweep          string  `json:"sweep"`
	Jobs           int     `json:"jobs"`
	RunsPerEntry   int     `json:"runs_per_entry"`
	Cores          int     `json:"cores"`
	Workers        int     `json:"workers"`
	SerialSec      float64 `json:"serial_sec"`
	ParallelSec    float64 `json:"parallel_sec"`
	Speedup        float64 `json:"speedup"`
	SerialSHA256   string  `json:"serial_sha256"`
	ParallelSHA256 string  `json:"parallel_sha256"`
	Identical      bool    `json:"identical"`

	// Completion-latency summary over the sweep's runs (virtual seconds),
	// so the bench artifact doubles as a coarse regression check on the
	// simulated protocol, not just on harness wall-clock.
	LatencyMeanSec float64 `json:"latency_mean_sec"`
	LatencyMinSec  float64 `json:"latency_min_sec"`
	LatencyMaxSec  float64 `json:"latency_max_sec"`
}

// runSelfbench executes the sweep twice — 1 worker, then `parallel` workers
// (default GOMAXPROCS) — hashing the JSONL each produces, and records
// wall-clock timings plus the byte-identity verdict.
func runSelfbench(path, sweep string, entries []experiment.GridEntry, parallel int, timeout time.Duration) error {
	if len(entries) == 0 {
		return fmt.Errorf("sweep %q has no entries", sweep)
	}
	once := func(workers int) (float64, string, []harness.Record, error) {
		h := sha256.New()
		sink := harness.NewJSONLSink(h)
		start := time.Now()
		recs, err := harness.Run(sweepJobs(sweep, entries), experiment.GridRunFunc,
			harness.Config{Workers: workers, Timeout: timeout}, sink)
		elapsed := time.Since(start).Seconds()
		if err != nil {
			return 0, "", nil, err
		}
		for _, r := range recs {
			if r.Failed() {
				return 0, "", nil, fmt.Errorf("%s failed: %s", r.Job.Name, r.Err)
			}
		}
		return elapsed, fmt.Sprintf("%x", h.Sum(nil)), recs, nil
	}

	jobs := sweepJobs(sweep, entries)
	workers := effectiveWorkers(parallel, len(jobs))
	serialSec, serialSum, _, err := once(1)
	if err != nil {
		return err
	}
	parallelSec, parallelSum, recs, err := once(workers)
	if err != nil {
		return err
	}
	latMean, latMin, latMax := latencySummary(recs)
	rep := benchReport{
		Sweep:          sweep,
		Jobs:           len(jobs),
		RunsPerEntry:   entries[0].Runs,
		Cores:          runtime.NumCPU(),
		Workers:        workers,
		SerialSec:      serialSec,
		ParallelSec:    parallelSec,
		Speedup:        serialSec / parallelSec,
		SerialSHA256:   serialSum,
		ParallelSHA256: parallelSum,
		Identical:      serialSum == parallelSum,
		LatencyMeanSec: latMean,
		LatencyMinSec:  latMin,
		LatencyMaxSec:  latMax,
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "lrsweep: selfbench %s: serial %.2fs, %d-worker %.2fs (%.2fx), identical=%v -> %s\n",
		sweep, serialSec, workers, parallelSec, rep.Speedup, rep.Identical, path)
	if !rep.Identical {
		return fmt.Errorf("selfbench: serial and parallel JSONL differ (%s vs %s)", serialSum, parallelSum)
	}
	return nil
}

// traceBenchReport is the schema of the -tracebench JSON artifact
// (BENCH_trace.json in check.sh).
type traceBenchReport struct {
	Sweep string `json:"sweep"`
	Jobs  int    `json:"jobs"`
	Cores int    `json:"cores"`

	// Two serial untraced passes bound the wall-clock noise floor, then one
	// serial traced pass (counting sink) measures the tracer's full cost:
	// event construction + emission, no I/O.
	UntracedSec  [2]float64 `json:"untraced_sec"`
	TracedSec    float64    `json:"traced_sec"`
	NoiseFrac    float64    `json:"noise_frac"`
	EventsTotal  uint64     `json:"events_total"`
	EventsPerSec float64    `json:"events_per_sec"`
	// TracedOverheadFrac is tracer-on vs tracer-off: traced/min(untraced)-1.
	TracedOverheadFrac float64 `json:"traced_overhead_frac"`

	// DisabledNsPerSite is the measured cost of one nil-tracer call (the
	// price every event site pays when tracing is off), and
	// DisabledOverheadFrac scales it by the run's event volume — the
	// fraction of untraced wall-clock spent on disabled instrumentation.
	DisabledNsPerSite    float64 `json:"disabled_ns_per_site"`
	DisabledOverheadFrac float64 `json:"disabled_overhead_frac"`

	// MetricsIdentical is true when all three passes produced byte-identical
	// metrics JSONL: tracing must never change simulation results.
	MetricsIdentical bool `json:"metrics_identical"`
}

// runTracebench measures the tracer's overhead on a real sweep: two serial
// untraced passes, one serial traced pass, and a nil-call microbenchmark,
// verifying along the way that tracing leaves the metrics byte-identical.
func runTracebench(path, sweep string, entries []experiment.GridEntry, timeout time.Duration) error {
	if len(entries) == 0 {
		return fmt.Errorf("sweep %q has no entries", sweep)
	}
	jobs := sweepJobs(sweep, entries)
	once := func(runFn harness.RunFunc) (float64, string, error) {
		h := sha256.New()
		sink := harness.NewJSONLSink(h)
		start := time.Now()
		recs, err := harness.Run(jobs, runFn, harness.Config{Workers: 1, Timeout: timeout}, sink)
		elapsed := time.Since(start).Seconds()
		if err != nil {
			return 0, "", err
		}
		for _, r := range recs {
			if r.Failed() {
				return 0, "", fmt.Errorf("%s failed: %s", r.Job.Name, r.Err)
			}
		}
		return elapsed, fmt.Sprintf("%x", h.Sum(nil)), nil
	}

	u1, sum1, err := once(experiment.GridRunFunc)
	if err != nil {
		return err
	}
	u2, sum2, err := once(experiment.GridRunFunc)
	if err != nil {
		return err
	}
	var events uint64
	traced := experiment.TracedRunFunc(func(harness.Job) (trace.Sink, func() error, error) {
		c := &trace.Count{}
		// Serial pass (workers=1): the close funcs never run concurrently.
		return c, func() error { events += c.Total(); return nil }, nil
	})
	t, sum3, err := once(traced)
	if err != nil {
		return err
	}

	minU := u1
	if u2 < minU {
		minU = u2
	}
	nilNs := nilCallNs()
	rep := traceBenchReport{
		Sweep:                sweep,
		Jobs:                 len(jobs),
		Cores:                runtime.NumCPU(),
		UntracedSec:          [2]float64{u1, u2},
		TracedSec:            t,
		NoiseFrac:            (u1 + u2 - 2*minU) / minU,
		EventsTotal:          events,
		EventsPerSec:         float64(events) / t,
		TracedOverheadFrac:   t/minU - 1,
		DisabledNsPerSite:    nilNs,
		DisabledOverheadFrac: nilNs * float64(events) / (minU * 1e9),
		MetricsIdentical:     sum1 == sum2 && sum2 == sum3,
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "lrsweep: tracebench %s: untraced %.2fs/%.2fs, traced %.2fs (+%.1f%%), %d events (%.0f/s), disabled site %.2fns (%.4f%% of run), identical=%v -> %s\n",
		sweep, u1, u2, t, 100*rep.TracedOverheadFrac, events, rep.EventsPerSec,
		nilNs, 100*rep.DisabledOverheadFrac, rep.MetricsIdentical, path)
	if !rep.MetricsIdentical {
		return fmt.Errorf("tracebench: tracing changed the metrics JSONL (%s / %s / %s)", sum1, sum2, sum3)
	}
	return nil
}

// nilCallNs times one disabled-tracer call: the per-site cost instrumented
// protocol code pays when tracing is off.
func nilCallNs() float64 {
	var tr *trace.Tracer
	const iters = 20_000_000
	start := time.Now()
	for i := 0; i < iters; i++ {
		tr.Fault("", i, i, 0)
	}
	return float64(time.Since(start).Nanoseconds()) / iters
}

// latencySummary reduces the per-run completion latencies to mean/min/max
// virtual seconds.
func latencySummary(recs []harness.Record) (mean, min, max float64) {
	if len(recs) == 0 {
		return 0, 0, 0
	}
	sum := 0.0
	for i, r := range recs {
		v := r.Metric(experiment.MetricLatencySec)
		sum += v
		if i == 0 || v < min {
			min = v
		}
		if i == 0 || v > max {
			max = v
		}
	}
	return sum / float64(len(recs)), min, max
}
