// Command lrsweep runs a named experiment sweep from the catalog through the
// internal/harness worker pool and writes one JSONL record per simulation
// run. Output is byte-identical for any -parallel value: the harness merges
// results in job order regardless of goroutine scheduling.
//
// Examples:
//
//	lrsweep -list
//	lrsweep -sweep multihop -quick -runs 8 -parallel 8 -o multihop.jsonl
//	lrsweep -sweep fig4 -runs 3 -csv fig4.csv -o fig4.jsonl -progress
//	lrsweep -sweep smoke -runs 4 -selfbench BENCH_sweep.json
//
// Exit codes: 0 success, 1 a run failed (panic/timeout/error; all other
// records are still written), 2 usage errors such as an unknown sweep or
// noise model.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"lrseluge/internal/experiment"
	"lrseluge/internal/harness"
)

func main() {
	var (
		sweep     = flag.String("sweep", "", "named sweep to run (see -list)")
		list      = flag.Bool("list", false, "list available sweeps and exit")
		runs      = flag.Int("runs", 3, "seeds averaged per grid entry")
		seed      = flag.Int64("seed", 1, "base RNG seed")
		quick     = flag.Bool("quick", false, "smaller images/grids/axes for a fast pass")
		parallel  = flag.Int("parallel", 0, "worker-pool width (0 = GOMAXPROCS, 1 = serial)")
		timeout   = flag.Duration("timeout", 0, "wall-clock budget per run (0 = none); timed-out runs become failed records")
		out       = flag.String("o", "", "JSONL output path ('' or '-' = stdout)")
		csvPath   = flag.String("csv", "", "also write a CSV table to this path")
		progress  = flag.Bool("progress", false, "report per-run progress on stderr")
		selfbench = flag.String("selfbench", "", "benchmark mode: run the sweep serially then with -parallel workers, verify byte-identical JSONL, write timings to this JSON file")
	)
	flag.Parse()

	if *list {
		fmt.Println("available sweeps:")
		for _, name := range experiment.SweepNames() {
			fmt.Printf("  %-16s %s\n", name, experiment.SweepDescription(name))
		}
		return
	}
	if *sweep == "" {
		fmt.Fprintf(os.Stderr, "lrsweep: -sweep is required (one of %s); see -list\n", strings.Join(experiment.SweepNames(), ", "))
		os.Exit(2)
	}
	entries, err := experiment.NamedSweep(*sweep, experiment.SweepSpec{Runs: *runs, Seed: *seed, Quick: *quick})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lrsweep: %v\n", err)
		os.Exit(2)
	}

	if *selfbench != "" {
		if err := runSelfbench(*selfbench, *sweep, entries, *parallel, *timeout); err != nil {
			fmt.Fprintf(os.Stderr, "lrsweep: %v\n", err)
			os.Exit(1)
		}
		return
	}

	jsonlOut := io.Writer(os.Stdout)
	if *out != "" && *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lrsweep: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		jsonlOut = f
	}
	sinks := []harness.Sink{harness.NewJSONLSink(jsonlOut)}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lrsweep: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		sinks = append(sinks, harness.NewCSVSink(f, experiment.MetricNames()))
	}

	cfg := harness.Config{Workers: *parallel, Timeout: *timeout}
	start := time.Now()
	if *progress {
		cfg.OnRecord = func(done, total int, r harness.Record) {
			status := "ok"
			if r.Failed() {
				status = "FAILED: " + r.Err
			}
			fmt.Fprintf(os.Stderr, "lrsweep: [%d/%d] %s %s (%.1fs elapsed)\n",
				done, total, r.Job.Name, status, time.Since(start).Seconds())
		}
	}
	recs, err := harness.Run(sweepJobs(*sweep, entries), experiment.GridRunFunc, cfg, sinks...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lrsweep: %v\n", err)
		os.Exit(1)
	}
	failed := 0
	for _, r := range recs {
		if r.Failed() {
			failed++
			fmt.Fprintf(os.Stderr, "lrsweep: %s failed: %s\n", r.Job.Name, r.Err)
		}
	}
	fmt.Fprintf(os.Stderr, "lrsweep: %s: %d runs (%d failed) in %.1fs on %d workers\n",
		*sweep, len(recs), failed, time.Since(start).Seconds(), effectiveWorkers(*parallel, len(recs)))
	if failed > 0 {
		os.Exit(1)
	}
}

// sweepJobs expands grid entries into harness jobs via the experiment glue.
func sweepJobs(sweep string, entries []experiment.GridEntry) []harness.Job {
	return experiment.GridJobs(sweep, entries)
}

// effectiveWorkers mirrors the harness pool-sizing rule for reporting.
func effectiveWorkers(parallel, jobs int) int {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > jobs {
		parallel = jobs
	}
	return parallel
}

// benchReport is the schema of the -selfbench JSON artifact.
type benchReport struct {
	Sweep          string  `json:"sweep"`
	Jobs           int     `json:"jobs"`
	RunsPerEntry   int     `json:"runs_per_entry"`
	Cores          int     `json:"cores"`
	Workers        int     `json:"workers"`
	SerialSec      float64 `json:"serial_sec"`
	ParallelSec    float64 `json:"parallel_sec"`
	Speedup        float64 `json:"speedup"`
	SerialSHA256   string  `json:"serial_sha256"`
	ParallelSHA256 string  `json:"parallel_sha256"`
	Identical      bool    `json:"identical"`

	// Completion-latency summary over the sweep's runs (virtual seconds),
	// so the bench artifact doubles as a coarse regression check on the
	// simulated protocol, not just on harness wall-clock.
	LatencyMeanSec float64 `json:"latency_mean_sec"`
	LatencyMinSec  float64 `json:"latency_min_sec"`
	LatencyMaxSec  float64 `json:"latency_max_sec"`
}

// runSelfbench executes the sweep twice — 1 worker, then `parallel` workers
// (default GOMAXPROCS) — hashing the JSONL each produces, and records
// wall-clock timings plus the byte-identity verdict.
func runSelfbench(path, sweep string, entries []experiment.GridEntry, parallel int, timeout time.Duration) error {
	if len(entries) == 0 {
		return fmt.Errorf("sweep %q has no entries", sweep)
	}
	once := func(workers int) (float64, string, []harness.Record, error) {
		h := sha256.New()
		sink := harness.NewJSONLSink(h)
		start := time.Now()
		recs, err := harness.Run(sweepJobs(sweep, entries), experiment.GridRunFunc,
			harness.Config{Workers: workers, Timeout: timeout}, sink)
		elapsed := time.Since(start).Seconds()
		if err != nil {
			return 0, "", nil, err
		}
		for _, r := range recs {
			if r.Failed() {
				return 0, "", nil, fmt.Errorf("%s failed: %s", r.Job.Name, r.Err)
			}
		}
		return elapsed, fmt.Sprintf("%x", h.Sum(nil)), recs, nil
	}

	jobs := sweepJobs(sweep, entries)
	workers := effectiveWorkers(parallel, len(jobs))
	serialSec, serialSum, _, err := once(1)
	if err != nil {
		return err
	}
	parallelSec, parallelSum, recs, err := once(workers)
	if err != nil {
		return err
	}
	latMean, latMin, latMax := latencySummary(recs)
	rep := benchReport{
		Sweep:          sweep,
		Jobs:           len(jobs),
		RunsPerEntry:   entries[0].Runs,
		Cores:          runtime.NumCPU(),
		Workers:        workers,
		SerialSec:      serialSec,
		ParallelSec:    parallelSec,
		Speedup:        serialSec / parallelSec,
		SerialSHA256:   serialSum,
		ParallelSHA256: parallelSum,
		Identical:      serialSum == parallelSum,
		LatencyMeanSec: latMean,
		LatencyMinSec:  latMin,
		LatencyMaxSec:  latMax,
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "lrsweep: selfbench %s: serial %.2fs, %d-worker %.2fs (%.2fx), identical=%v -> %s\n",
		sweep, serialSec, workers, parallelSec, rep.Speedup, rep.Identical, path)
	if !rep.Identical {
		return fmt.Errorf("selfbench: serial and parallel JSONL differ (%s vs %s)", serialSum, parallelSum)
	}
	return nil
}

// latencySummary reduces the per-run completion latencies to mean/min/max
// virtual seconds.
func latencySummary(recs []harness.Record) (mean, min, max float64) {
	if len(recs) == 0 {
		return 0, 0, 0
	}
	sum := 0.0
	for i, r := range recs {
		v := r.Metric(experiment.MetricLatencySec)
		sum += v
		if i == 0 || v < min {
			min = v
		}
		if i == 0 || v > max {
			max = v
		}
	}
	return sum / float64(len(recs)), min, max
}
