// Command lrtrace analyzes JSONL protocol traces produced by the simulator
// (lrsim -trace, lrsweep -trace-dir, Scenario.Trace). All output is a
// deterministic function of the input bytes, so every rendering can be
// pinned against goldens.
//
// Subcommands:
//
//	lrtrace summary [-json] trace.jsonl        event counts + drop histogram
//	lrtrace timeline [-node N] trace.jsonl     human-readable event log
//	lrtrace latency [-csv out.csv] trace.jsonl completion CDF + fetch latencies
//	lrtrace convert -chrome [-o out.json] trace.jsonl  Perfetto/Chrome export
//	lrtrace diff a.jsonl b.jsonl               count/latency deltas
//
// Exit codes: 0 success, 1 I/O or decode errors, 2 usage errors.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"lrseluge/internal/sim"
	"lrseluge/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func usage() int {
	fmt.Fprint(os.Stderr, `usage: lrtrace <command> [flags] <trace.jsonl>

commands:
  summary   [-json] trace.jsonl          event counts and drop-reason histogram
  timeline  [-node N] trace.jsonl        human-readable per-event log
  latency   [-csv out.csv] trace.jsonl   completion CDF; page-fetch latency CSV
  convert   -chrome [-o out] trace.jsonl Chrome trace_event JSON (Perfetto)
  diff      a.jsonl b.jsonl              event-count and latency deltas
`)
	return 2
}

func run(args []string) int {
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "summary":
		return cmdSummary(args[1:])
	case "timeline":
		return cmdTimeline(args[1:])
	case "latency":
		return cmdLatency(args[1:])
	case "convert":
		return cmdConvert(args[1:])
	case "diff":
		return cmdDiff(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "lrtrace: unknown command %q\n", args[0])
		return usage()
	}
}

// load reads and decodes one trace file ("-" = stdin).
func load(path string) ([]trace.Event, error) {
	r := io.Reader(os.Stdin)
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	events, err := trace.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return events, nil
}

// fail prints err and returns the error exit code.
func fail(err error) int {
	fmt.Fprintf(os.Stderr, "lrtrace: %v\n", err)
	return 1
}

func cmdSummary(args []string) int {
	fs := flag.NewFlagSet("summary", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the deterministic JSON rendering")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return usage()
	}
	events, err := load(fs.Arg(0))
	if err != nil {
		return fail(err)
	}
	s := trace.Summarize(events)
	if *asJSON {
		os.Stdout.Write(append(s.AppendJSON(nil), '\n'))
		return 0
	}
	fmt.Printf("schema:      %d\n", s.SchemaV)
	fmt.Printf("events:      %d\n", s.Events)
	fmt.Printf("nodes:       %d\n", len(s.Nodes))
	fmt.Printf("span:        %.3fs .. %.3fs\n", s.FirstAt.Seconds(), s.LastAt.Seconds())
	fmt.Printf("completions: %d\n", s.Completions)
	fmt.Printf("faults:      %d\n", s.Faults)
	fmt.Println("kinds:")
	for _, kc := range s.Kinds {
		fmt.Printf("  %-16s %d\n", kc.Kind, kc.N)
	}
	if len(s.Drops) > 0 {
		fmt.Println("drops:")
		for _, rc := range s.Drops {
			fmt.Printf("  %-16s %d\n", rc.Reason, rc.N)
		}
	}
	return 0
}

func cmdTimeline(args []string) int {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	node := fs.Int("node", trace.NoNode, "only events touching this node (as subject or peer)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return usage()
	}
	events, err := load(fs.Arg(0))
	if err != nil {
		return fail(err)
	}
	if *node != trace.NoNode {
		events = trace.FilterNode(events, *node)
	}
	w := bufio.NewWriter(os.Stdout)
	for _, e := range events {
		fmt.Fprintf(w, "%12.6fs  %-14s %s\n", e.At.Seconds(), e.Kind, describe(e))
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	return 0
}

// describe renders the kind-specific fields of one event.
func describe(e trace.Event) string {
	pkt := func() string {
		s := e.Pkt.String()
		if e.Unit != trace.NoUnit {
			s += fmt.Sprintf(" u%d", e.Unit)
			if e.Index != trace.NoUnit {
				s += fmt.Sprintf(".%d", e.Index)
			}
		}
		return s
	}
	switch e.Kind {
	case trace.KindTx:
		return fmt.Sprintf("n%d -> *    %s", e.Node, pkt())
	case trace.KindRx:
		return fmt.Sprintf("n%d <- n%d  %s", e.Node, e.Peer, pkt())
	case trace.KindDrop:
		return fmt.Sprintf("n%d <- n%d  %s  reason=%s", e.Node, e.Peer, pkt(), e.Reason)
	case trace.KindState:
		return fmt.Sprintf("n%d %s: %s -> %s", e.Node, e.Name, e.From, e.To)
	case trace.KindUnitFirst, trace.KindUnitDecodable, trace.KindUnitVerified, trace.KindUnitFlashed:
		return fmt.Sprintf("n%d u%d", e.Node, e.Unit)
	case trace.KindSigAccept, trace.KindSigReject:
		return fmt.Sprintf("n%d <- n%d", e.Node, e.Peer)
	case trace.KindComplete:
		return fmt.Sprintf("n%d", e.Node)
	case trace.KindFault:
		s := e.Name
		if e.Node != trace.NoNode {
			s += fmt.Sprintf(" n%d", e.Node)
		}
		if e.Peer != trace.NoNode {
			s += fmt.Sprintf("->n%d", e.Peer)
		}
		if e.Value != 0 {
			s += " value=" + strconv.FormatFloat(e.Value, 'g', -1, 64)
		}
		return s
	case trace.KindSpanBegin, trace.KindSpanEnd:
		s := fmt.Sprintf("n%d %s #%d", e.Node, e.Name, e.Span)
		if e.Unit != trace.NoUnit {
			s += fmt.Sprintf(" u%d", e.Unit)
		}
		return s
	default:
		return ""
	}
}

func cmdLatency(args []string) int {
	fs := flag.NewFlagSet("latency", flag.ExitOnError)
	csvPath := fs.String("csv", "", "write per-page fetch latencies as CSV to this path")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return usage()
	}
	events, err := load(fs.Arg(0))
	if err != nil {
		return fail(err)
	}
	comps := trace.Completions(events)
	fmt.Println("completion CDF (time_sec frac node):")
	for i, c := range comps {
		fmt.Printf("%.6f %s %d\n", c.At.Seconds(),
			formatFloat(float64(i+1)/float64(len(comps))), c.Node)
	}
	if len(comps) == 0 {
		fmt.Println("(no completions)")
	}
	fetches := trace.Spans(events, "page-fetch")
	if len(fetches) > 0 {
		var total sim.Time
		for _, f := range fetches {
			total += f.Duration()
		}
		fmt.Printf("page fetches: %d, mean %.6fs\n",
			len(fetches), total.Seconds()/float64(len(fetches)))
	}
	if *csvPath != "" {
		if err := writeFetchCSV(*csvPath, fetches); err != nil {
			return fail(err)
		}
	}
	return 0
}

// writeFetchCSV emits node,unit,start_sec,end_sec,duration_sec rows, one per
// completed page fetch, in span-begin order.
func writeFetchCSV(path string, fetches []trace.Fetch) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "node,unit,start_sec,end_sec,duration_sec")
	for _, ft := range fetches {
		fmt.Fprintf(w, "%d,%d,%s,%s,%s\n", ft.Node, ft.Unit,
			formatFloat(ft.Start.Seconds()), formatFloat(ft.End.Seconds()),
			formatFloat(ft.Duration().Seconds()))
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// formatFloat is the repository's deterministic float rendering (shortest
// round-trip form, matching the harness sinks).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func cmdConvert(args []string) int {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	chrome := fs.Bool("chrome", false, "emit Chrome trace_event JSON (open in Perfetto / chrome://tracing)")
	out := fs.String("o", "-", "output path ('-' = stdout)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return usage()
	}
	if !*chrome {
		fmt.Fprintln(os.Stderr, "lrtrace: convert requires an output format flag (-chrome)")
		return 2
	}
	events, err := load(fs.Arg(0))
	if err != nil {
		return fail(err)
	}
	w := io.Writer(os.Stdout)
	var f *os.File
	if *out != "-" {
		f, err = os.Create(*out)
		if err != nil {
			return fail(err)
		}
		w = f
	}
	bw := bufio.NewWriter(w)
	if err := trace.WriteChrome(bw, events); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if f != nil {
		if err := f.Close(); err != nil {
			return fail(err)
		}
	}
	return 0
}

func cmdDiff(args []string) int {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		return usage()
	}
	a, err := load(fs.Arg(0))
	if err != nil {
		return fail(err)
	}
	b, err := load(fs.Arg(1))
	if err != nil {
		return fail(err)
	}
	d := trace.DiffTraces(a, b)
	fmt.Printf("events: %+d\n", d.EventsDelta)
	for _, kc := range d.Kinds {
		fmt.Printf("  %-16s %+d\n", kc.Kind, kc.N)
	}
	if len(d.Drops) > 0 {
		fmt.Println("drops:")
		for _, rc := range d.Drops {
			fmt.Printf("  %-16s %+d\n", rc.Reason, rc.N)
		}
	}
	fmt.Printf("last completion: %+.6fs\n", d.LastCompletionDelta.Seconds())
	return 0
}
