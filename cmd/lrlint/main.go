// Command lrlint runs the repo's determinism and safety analyzer suite over
// the module. It exits non-zero when any finding survives, making it
// suitable as a CI gate:
//
//	go run ./cmd/lrlint ./...
//
// The argument may be ./... (whole module, the default) or a directory
// inside the module; either way the whole module containing it is loaded so
// cross-package types resolve. Rules and the //lrlint:ignore escape hatch
// are documented in internal/lint.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"lrseluge/internal/lint"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lrlint:", err)
		os.Exit(2)
	}
}

func run(args []string) error {
	dir := "."
	for _, a := range args {
		if a == "./..." || a == "" {
			continue
		}
		dir = strings.TrimSuffix(a, "/...")
	}
	if dir != "." {
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			return fmt.Errorf("%s is not a directory in this module", dir)
		}
	}
	root, err := findModuleRoot(dir)
	if err != nil {
		return err
	}
	pkgs, modPath, err := lint.LoadModule(root)
	if err != nil {
		return err
	}
	cfg := lint.DefaultConfig(modPath)
	if wd, err := os.Getwd(); err == nil {
		cfg.TrimPrefix = wd
	}
	diags := lint.Run(pkgs, cfg)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lrlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
	return nil
}

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}
