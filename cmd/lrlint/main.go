// Command lrlint runs the repo's determinism and safety analyzer suite over
// the module. It exits non-zero when any finding survives, making it
// suitable as a CI gate:
//
//	go run ./cmd/lrlint ./...
//	go run ./cmd/lrlint -json ./... > lint.json
//	go run ./cmd/lrlint -rules verify-before-use,rng-stream-discipline ./...
//	go run ./cmd/lrlint -selfbench BENCH_lint.json ./...
//	go run ./cmd/lrlint -baseline lint-baseline.json ./...
//	go run ./cmd/lrlint -sarif lint.sarif ./...
//
// The positional argument may be ./... (whole module, the default) or a
// directory inside the module; either way the whole module containing it is
// loaded so cross-package types resolve. Rules and the //lrlint:ignore
// escape hatch are documented in internal/lint.
//
// -json emits the diagnostic artifact (internal/lint.Report) on stdout
// instead of the human-readable lines; scripts/check.sh diffs it against a
// committed golden so the clean state is pinned byte-for-byte. -rules
// restricts the run to a comma-separated subset of the catalog. -selfbench
// times the load, the serial-vs-parallel analysis, and each pass in
// isolation, and writes the result to the given JSON file (wall-clock use is
// fine here: lrlint is tooling, not simulation, and lives outside
// internal/).
//
// -baseline subtracts a committed lint-baseline.json from the findings so
// only DRIFT — findings the baseline has never accepted — fails the gate;
// -write-baseline snapshots the current findings into that artifact. -sarif
// additionally writes the surviving findings as a SARIF 2.1.0 log ("-" for
// stdout) for code-scanning UIs. -unused-ignores (default true) controls the
// stale-directive pass.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"lrseluge/internal/lint"
)

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "lrlint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string) (int, error) {
	fs := flag.NewFlagSet("lrlint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit the diagnostic report as JSON on stdout")
	rulesFlag := fs.String("rules", "", "comma-separated rule names to run (default: all)")
	selfbench := fs.String("selfbench", "", "write a load/analyze timing benchmark to this JSON file")
	baselinePath := fs.String("baseline", "", "subtract this accepted-findings baseline; only drift fails")
	writeBaseline := fs.String("write-baseline", "", "snapshot the current findings to this baseline file and exit 0")
	sarifPath := fs.String("sarif", "", "also write surviving findings as SARIF 2.1.0 to this file (\"-\" for stdout)")
	unusedIgnores := fs.Bool("unused-ignores", true, "flag //lrlint:ignore directives that suppress nothing")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}

	dir := "."
	for _, a := range fs.Args() {
		if a == "./..." || a == "" {
			continue
		}
		dir = strings.TrimSuffix(a, "/...")
	}
	if dir != "." {
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			return 0, fmt.Errorf("%s is not a directory in this module", dir)
		}
	}
	root, err := findModuleRoot(dir)
	if err != nil {
		return 0, err
	}

	var rules []string
	if *rulesFlag != "" {
		for _, r := range strings.Split(*rulesFlag, ",") {
			r = strings.TrimSpace(r)
			if r == "" {
				continue
			}
			if !knownRule(r) {
				return 0, fmt.Errorf("unknown rule %q (catalog: %s)", r, strings.Join(lint.AllRules, ", "))
			}
			rules = append(rules, r)
		}
	}

	loadStart := time.Now()
	pkgs, modPath, err := lint.LoadModule(root)
	if err != nil {
		return 0, err
	}
	loadDur := time.Since(loadStart)

	cfg := lint.DefaultConfig(modPath)
	cfg.Rules = rules
	cfg.UnusedIgnores = *unusedIgnores
	if wd, err := os.Getwd(); err == nil {
		cfg.TrimPrefix = wd
	}

	analyzeStart := time.Now()
	diags := lint.Run(pkgs, cfg)
	analyzeDur := time.Since(analyzeStart)

	if *selfbench != "" {
		if err := writeSelfbench(*selfbench, modPath, pkgs, cfg, loadDur, analyzeDur, len(diags)); err != nil {
			return 0, err
		}
	}

	if *writeBaseline != "" {
		if err := lint.NewBaseline(diags).WriteFile(*writeBaseline); err != nil {
			return 0, err
		}
		fmt.Fprintf(os.Stderr, "lrlint: wrote baseline with %d finding(s) to %s\n", len(diags), *writeBaseline)
		return 0, nil
	}
	if *baselinePath != "" {
		base, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			return 0, err
		}
		before := len(diags)
		diags = base.Subtract(diags)
		if absorbed := before - len(diags); absorbed > 0 {
			fmt.Fprintf(os.Stderr, "lrlint: baseline absorbed %d finding(s)\n", absorbed)
		}
	}

	if *sarifPath != "" {
		b, err := lint.ToSARIF(diags)
		if err != nil {
			return 0, err
		}
		if *sarifPath == "-" {
			os.Stdout.Write(b)
		} else if err := os.WriteFile(*sarifPath, b, 0o644); err != nil {
			return 0, err
		}
	}

	if *jsonOut {
		rep := lint.NewReport(modPath, rules, diags)
		b, err := rep.MarshalIndent()
		if err != nil {
			return 0, err
		}
		os.Stdout.Write(b)
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lrlint: %d finding(s)\n", len(diags))
		return 1, nil
	}
	return 0, nil
}

func knownRule(name string) bool {
	for _, r := range lint.AllRules {
		if r == name {
			return true
		}
	}
	return false
}

// selfbenchReport is the BENCH_lint.json schema: module-scale numbers, the
// serial-vs-parallel analysis comparison that justifies the concurrent
// driver, per-pass wall times, and the total gate cost (load + analyze) that
// scripts/check.sh guards against regression.
type selfbenchReport struct {
	Module            string             `json:"module"`
	Packages          int                `json:"packages"`
	Findings          int                `json:"findings"`
	Workers           int                `json:"workers"`
	LoadMs            float64            `json:"load_ms"`
	AnalyzeParallelMs float64            `json:"analyze_parallel_ms"`
	AnalyzeSerialMs   float64            `json:"analyze_serial_ms"`
	Speedup           float64            `json:"speedup"`
	GateTotalMs       float64            `json:"gate_total_ms"`
	PassMs            map[string]float64 `json:"pass_ms"`
}

// writeSelfbench re-runs the analysis one package at a time to get the
// serial baseline, times each pass in isolation via the Rules filter, and
// records everything.
func writeSelfbench(path, modPath string, pkgs []*lint.Package, cfg lint.Config, loadDur, parallelDur time.Duration, findings int) error {
	serialStart := time.Now()
	for _, pkg := range pkgs {
		lint.Run([]*lint.Package{pkg}, cfg)
	}
	serialDur := time.Since(serialStart)
	speedup := 0.0
	if parallelDur > 0 {
		speedup = float64(serialDur) / float64(parallelDur)
	}

	ruleSet := cfg.Rules
	if len(ruleSet) == 0 {
		ruleSet = lint.AllRules
	}
	passMs := make(map[string]float64, len(ruleSet))
	for _, rule := range ruleSet {
		passCfg := cfg
		passCfg.Rules = []string{rule}
		start := time.Now()
		lint.Run(pkgs, passCfg)
		passMs[rule] = float64(time.Since(start).Microseconds()) / 1000
	}

	rep := selfbenchReport{
		Module:            modPath,
		Packages:          len(pkgs),
		Findings:          findings,
		Workers:           runtime.GOMAXPROCS(0),
		LoadMs:            float64(loadDur.Microseconds()) / 1000,
		AnalyzeParallelMs: float64(parallelDur.Microseconds()) / 1000,
		AnalyzeSerialMs:   float64(serialDur.Microseconds()) / 1000,
		Speedup:           speedup,
		GateTotalMs:       float64((loadDur + parallelDur).Microseconds()) / 1000,
		PassMs:            passMs,
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}
