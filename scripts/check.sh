#!/usr/bin/env sh
# Expanded tier-1 gate: formatting, vet, build, lrlint, race-enabled tests,
# lrsweep golden-JSONL diff, and the serial-vs-parallel sweep bench.
# Run from anywhere inside the repository; exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> lrlint ./..."
go run ./cmd/lrlint ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> lrsweep smoke sweep vs golden"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
go run ./cmd/lrsweep -sweep smoke -runs 2 -seed 1 -parallel 2 -o "$tmpdir/smoke.jsonl"
diff -u cmd/lrsweep/testdata/smoke_sweep.golden.jsonl "$tmpdir/smoke.jsonl"

echo "==> lrsweep selfbench (serial vs parallel wall-clock -> BENCH_sweep.json)"
go run ./cmd/lrsweep -sweep multihop -quick -runs 8 -parallel 8 -selfbench BENCH_sweep.json

echo "OK"
