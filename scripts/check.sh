#!/usr/bin/env sh
# Expanded tier-1 gate: formatting, vet, build, lrlint (the JSON diagnostic
# artifact is the gate — diffed against its committed golden, so any new
# finding shows up in the diff — filtered through the committed
# lint-baseline.json so only drift fails, with stale-directive detection on,
# a SARIF 2.1.0 artifact smoke-checked, the analyzer selfbench written to
# BENCH_lint.json with per-pass timings and a <2x gate-cost regression check,
# and scratch-module probes proving a fresh hot-path allocation and a fresh
# O(nodes) per-event scan still fail through the baseline), race-enabled
# tests, lrsweep golden-JSONL diff, the
# serial-vs-parallel sweep bench, the churn-sweep fault-injection bench
# (BENCH_fault.json), and the tracing gates: traced-sweep metrics must stay
# byte-equal to the untraced golden, per-run trace directories must be
# worker-invariant, lrtrace must reproduce its committed summary golden on
# a churn-fault run, and the tracer overhead bench (BENCH_trace.json) must
# keep the disabled-tracer cost under 2%. The result-serving gates: the
# lrserved smoke (miss -> hit -> restart -> warm hit over real HTTP, bodies
# byte-identical), the lrsweep incremental-store rerun (warm pass all-cached
# and byte-identical to the cold pass), and the lrserved load bench
# (BENCH_served.json), whose cache-hit p99 must sit at least 100x below the
# cold-miss compute time. The scale gates: the lrscale -identity smoke (one
# seeded run under the heap and calendar event queues must produce identical
# transmission-trace hashes and metrics) and an n=10k benchmark rerun whose
# events/sec must not regress below half the committed BENCH_scale.json
# figure. The observability gates: lrscale -obsbench (BENCH_obs.json) must
# keep the nil-timer (disabled) overhead under 1% and the fully-instrumented
# (enabled) overhead under 10%, attribute at least 80% of wall time to the
# instrumented subsystems, and leave same-seed trace hashes byte-identical
# with obs on; internal/obs runs under -race with the other
# concurrency-sensitive packages.
# Run from anywhere inside the repository; exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> lrlint -json artifact vs golden (baseline-filtered, selfbench -> BENCH_lint.json, SARIF smoke)"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
# Remember the committed gate cost before the selfbench overwrites it; the
# regression gate below compares the fresh run against it.
prev_gate_ms=$(sed -n 's/.*"gate_total_ms": \([0-9.eE+-]*\),*/\1/p' BENCH_lint.json 2>/dev/null || true)
# `|| true`: when findings exist the diff below fails with the findings
# visible in context, which is a more useful gate report than the bare exit.
go run ./cmd/lrlint -json -unused-ignores -baseline lint-baseline.json \
    -sarif "$tmpdir/lint.sarif" -selfbench BENCH_lint.json ./... > "$tmpdir/lint.json" || true
diff -u cmd/lrlint/testdata/lint_clean.golden.json "$tmpdir/lint.json"

echo "==> lrlint SARIF artifact structure"
grep -q '"\$schema": "https://json.schemastore.org/sarif-2.1.0.json"' "$tmpdir/lint.sarif"
grep -q '"version": "2.1.0"' "$tmpdir/lint.sarif"
grep -q '"name": "lrlint"' "$tmpdir/lint.sarif"
grep -q '"id": "alloc-hotpath"' "$tmpdir/lint.sarif"
grep -q '"id": "effect-purity"' "$tmpdir/lint.sarif"
grep -q '"id": "scan-complexity"' "$tmpdir/lint.sarif"

echo "==> lrlint selfbench regression gate (gate_total_ms < 2x committed)"
new_gate_ms=$(sed -n 's/.*"gate_total_ms": \([0-9.eE+-]*\),*/\1/p' BENCH_lint.json)
grep -q '"alloc-hotpath"' BENCH_lint.json  # pass_ms must carry the new passes
awk -v prev="$prev_gate_ms" -v new="$new_gate_ms" 'BEGIN {
    if (new == "") { print "selfbench gate: missing gate_total_ms"; exit 1 }
    if (prev != "" && new + 0 > 2 * (prev + 0)) {
        print "selfbench gate: gate_total_ms regressed " new " vs committed " prev; exit 1
    }
}'

echo "==> lrlint baseline-drift probe (scratch hot-path alloc must fail the gate)"
mkdir -p "$tmpdir/probe"
printf 'module probe\n\ngo 1.22\n' > "$tmpdir/probe/go.mod"
cat > "$tmpdir/probe/probe.go" <<'EOF'
package probe

//lrlint:hotpath
func Encode(blocks [][]byte) [][]byte {
	var out [][]byte
	for _, b := range blocks {
		shard := make([]byte, len(b))
		copy(shard, b)
		out = append(out, shard)
	}
	return out
}
EOF
if go run ./cmd/lrlint -baseline lint-baseline.json "$tmpdir/probe" > /dev/null 2>&1; then
    echo "baseline-drift gate failed: scratch hot-path allocation was not caught" >&2
    exit 1
fi
# And the inverse: a baseline written from the probe findings absorbs them.
go run ./cmd/lrlint -write-baseline "$tmpdir/probe-baseline.json" "$tmpdir/probe" 2> /dev/null
go run ./cmd/lrlint -baseline "$tmpdir/probe-baseline.json" "$tmpdir/probe" > /dev/null 2> /dev/null

echo "==> lrlint scan-complexity probe (scratch O(nodes) scan in an event root must fail the gate)"
mkdir -p "$tmpdir/scanprobe"
printf 'module scanprobe\n\ngo 1.22\n' > "$tmpdir/scanprobe/go.mod"
cat > "$tmpdir/scanprobe/scan.go" <<'EOF'
package scanprobe

//lrlint:population nodes
type NodeID uint16

//lrlint:eventroot probe
func Deliver(tbl map[NodeID]int) int {
	t := 0
	for id := range tbl {
		t += tbl[id]
	}
	return t
}
EOF
if go run ./cmd/lrlint -baseline lint-baseline.json "$tmpdir/scanprobe" > /dev/null 2>&1; then
    echo "scan-complexity gate failed: scratch O(nodes) event scan was not caught" >&2
    exit 1
fi
# The write-baseline round trip must absorb scan findings too.
go run ./cmd/lrlint -write-baseline "$tmpdir/scanprobe-baseline.json" "$tmpdir/scanprobe" 2> /dev/null
go run ./cmd/lrlint -baseline "$tmpdir/scanprobe-baseline.json" "$tmpdir/scanprobe" > /dev/null 2> /dev/null

echo "==> go test -race ./..."
go test -race ./...

echo "==> go test -race ./internal/harness/... ./internal/fault/... ./internal/trace/... ./internal/obs/... (concurrency-sensitive packages, verbose gate)"
go test -race -count=1 ./internal/harness/... ./internal/fault/... ./internal/trace/... ./internal/obs/...

echo "==> lrsweep smoke sweep vs golden"
go run ./cmd/lrsweep -sweep smoke -runs 2 -seed 1 -parallel 2 -o "$tmpdir/smoke.jsonl"
diff -u cmd/lrsweep/testdata/smoke_sweep.golden.jsonl "$tmpdir/smoke.jsonl"

echo "==> lrsweep selfbench (serial vs parallel wall-clock -> BENCH_sweep.json)"
go run ./cmd/lrsweep -sweep multihop -quick -runs 8 -parallel 8 -selfbench BENCH_sweep.json

echo "==> lrsweep churn-sweep selfbench (fault subsystem -> BENCH_fault.json)"
go run ./cmd/lrsweep -sweep churn -quick -runs 4 -parallel 4 -selfbench BENCH_fault.json

echo "==> traced smoke sweep: metrics byte-equal to the untraced golden, trace dirs worker-invariant"
go run ./cmd/lrsweep -sweep smoke -runs 2 -seed 1 -parallel 1 -trace-dir "$tmpdir/tr1" -o "$tmpdir/smoke_traced.jsonl"
diff -u cmd/lrsweep/testdata/smoke_sweep.golden.jsonl "$tmpdir/smoke_traced.jsonl"
go run ./cmd/lrsweep -sweep smoke -runs 2 -seed 1 -parallel 4 -trace-dir "$tmpdir/tr4" -o "$tmpdir/smoke_traced_p4.jsonl"
diff -r "$tmpdir/tr1" "$tmpdir/tr4"

echo "==> lrtrace on a churn-fault run (summary golden + every subcommand)"
go run ./cmd/lrsim -proto lr-seluge -kb 4 -receivers 5 -seed 1 -runs 1 \
    -trace "$tmpdir/base.jsonl" > /dev/null
go run ./cmd/lrsim -proto lr-seluge -kb 4 -receivers 5 -seed 1 -runs 1 \
    -faults examples/faults/churn.json -trace "$tmpdir/churn.jsonl" > /dev/null
go run ./cmd/lrtrace summary -json "$tmpdir/churn.jsonl" > "$tmpdir/churn_summary.json"
diff -u cmd/lrtrace/testdata/churn_summary.golden.json "$tmpdir/churn_summary.json"
go run ./cmd/lrtrace summary "$tmpdir/churn.jsonl" > /dev/null
go run ./cmd/lrtrace timeline -node 2 "$tmpdir/churn.jsonl" > /dev/null
go run ./cmd/lrtrace latency -csv "$tmpdir/fetch.csv" "$tmpdir/churn.jsonl" > /dev/null
go run ./cmd/lrtrace convert -chrome -o "$tmpdir/churn.trace.json" "$tmpdir/churn.jsonl"
go run ./cmd/lrtrace diff "$tmpdir/base.jsonl" "$tmpdir/churn.jsonl" > /dev/null

echo "==> lrsweep tracebench (tracer overhead -> BENCH_trace.json, disabled overhead < 2%)"
go run ./cmd/lrsweep -sweep smoke -runs 2 -seed 1 -tracebench BENCH_trace.json
frac=$(sed -n 's/.*"disabled_overhead_frac": \([0-9.eE+-]*\),*/\1/p' BENCH_trace.json)
awk -v f="$frac" 'BEGIN { if (f == "" || f >= 0.02) { print "disabled_overhead_frac gate failed: " f; exit 1 } }'

echo "==> lrserved smoke (ephemeral port: miss -> hit -> restart -> warm hit, byte-identical)"
go run ./cmd/lrserved -smoke

echo "==> lrsweep incremental store (cold vs warm cell JSONL byte-identical, warm all-cached)"
go run ./cmd/lrsweep -sweep smoke -quick -runs 2 -seed 1 -store "$tmpdir/rs" -code-version check \
    -o "$tmpdir/cells_cold.jsonl"
go run ./cmd/lrsweep -sweep smoke -quick -runs 2 -seed 1 -store "$tmpdir/rs" -code-version check \
    -o "$tmpdir/cells_warm.jsonl" 2> "$tmpdir/cells_warm.err"
cmp "$tmpdir/cells_cold.jsonl" "$tmpdir/cells_warm.jsonl"
grep -q '0 computed' "$tmpdir/cells_warm.err"

echo "==> lrserved selfbench (cold-miss vs hit latency -> BENCH_served.json, hit p99 >= 100x below cold)"
go run ./cmd/lrserved -selfbench BENCH_served.json
ratio=$(sed -n 's/.*"cold_to_hit_p99": \([0-9.eE+-]*\),*/\1/p' BENCH_served.json)
ident=$(sed -n 's/.*"identical": \([a-z]*\).*/\1/p' BENCH_served.json)
awk -v r="$ratio" -v id="$ident" 'BEGIN {
    if (r == "" || r + 0 < 100) { print "served gate: cold_to_hit_p99 " r " < 100"; exit 1 }
    if (id != "true") { print "served gate: hit bodies not byte-identical"; exit 1 }
}'

echo "==> lrscale identity smoke (heap vs calendar queue, byte-identical run)"
go run ./cmd/lrscale -identity

echo "==> lrscale n=10k regression gate (events/sec >= half the committed figure)"
prev_eps=$(sed -n 's/.*"events_per_sec_10k": \([0-9.eE+-]*\),*/\1/p' BENCH_scale.json 2>/dev/null || true)
go run ./cmd/lrscale -nodes 10000 -q -o "$tmpdir/scale.json"
new_eps=$(sed -n 's/.*"events_per_sec_10k": \([0-9.eE+-]*\),*/\1/p' "$tmpdir/scale.json")
awk -v prev="$prev_eps" -v new="$new_eps" 'BEGIN {
    if (new == "" || new + 0 <= 0) { print "scale gate: missing events_per_sec_10k"; exit 1 }
    if (prev != "" && new + 0 < (prev + 0) / 2) {
        print "scale gate: events/sec regressed to " new " vs committed " prev; exit 1
    }
}'

echo "==> lrscale obsbench (obs overhead -> BENCH_obs.json: disabled < 1%, enabled < 10%, coverage >= 80%)"
go run ./cmd/lrscale -obsbench -obsbench-o BENCH_obs.json
dfrac=$(sed -n 's/.*"disabled_overhead_frac": \([0-9.eE+-]*\),*/\1/p' BENCH_obs.json)
efrac=$(sed -n 's/.*"enabled_overhead_frac": \([0-9.eE+-]*\),*/\1/p' BENCH_obs.json)
cfrac=$(sed -n 's/.*"covered_frac": \([0-9.eE+-]*\),*/\1/p' BENCH_obs.json)
oident=$(sed -n 's/.*"trace_identical": \([a-z]*\).*/\1/p' BENCH_obs.json)
awk -v d="$dfrac" -v e="$efrac" -v c="$cfrac" -v id="$oident" 'BEGIN {
    if (d == "" || d + 0 >= 0.01) { print "obs gate: disabled_overhead_frac " d " >= 1%"; exit 1 }
    if (e == "" || e + 0 >= 0.10) { print "obs gate: enabled_overhead_frac " e " >= 10%"; exit 1 }
    if (c == "" || c + 0 < 0.8) { print "obs gate: covered_frac " c " < 80%"; exit 1 }
    if (id != "true") { print "obs gate: same-seed trace hashes differ with obs enabled"; exit 1 }
}'

echo "OK"
