#!/usr/bin/env sh
# Expanded tier-1 gate: formatting, vet, build, lrlint, race-enabled tests.
# Run from anywhere inside the repository; exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> lrlint ./..."
go run ./cmd/lrlint ./...

echo "==> go test -race ./..."
go test -race ./...

echo "OK"
