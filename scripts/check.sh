#!/usr/bin/env sh
# Expanded tier-1 gate: formatting, vet, build, lrlint (the JSON diagnostic
# artifact is the gate — diffed against its committed golden, so any new
# finding shows up in the diff — with the analyzer selfbench written to
# BENCH_lint.json), race-enabled tests, lrsweep golden-JSONL diff, the
# serial-vs-parallel sweep bench, the churn-sweep fault-injection bench
# (BENCH_fault.json), and the tracing gates: traced-sweep metrics must stay
# byte-equal to the untraced golden, per-run trace directories must be
# worker-invariant, lrtrace must reproduce its committed summary golden on
# a churn-fault run, and the tracer overhead bench (BENCH_trace.json) must
# keep the disabled-tracer cost under 2%.
# Run from anywhere inside the repository; exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> lrlint -json artifact vs golden (and selfbench -> BENCH_lint.json)"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
# `|| true`: when findings exist the diff below fails with the findings
# visible in context, which is a more useful gate report than the bare exit.
go run ./cmd/lrlint -json -selfbench BENCH_lint.json ./... > "$tmpdir/lint.json" || true
diff -u cmd/lrlint/testdata/lint_clean.golden.json "$tmpdir/lint.json"

echo "==> go test -race ./..."
go test -race ./...

echo "==> go test -race ./internal/harness/... ./internal/fault/... ./internal/trace/... (concurrency-sensitive packages, verbose gate)"
go test -race -count=1 ./internal/harness/... ./internal/fault/... ./internal/trace/...

echo "==> lrsweep smoke sweep vs golden"
go run ./cmd/lrsweep -sweep smoke -runs 2 -seed 1 -parallel 2 -o "$tmpdir/smoke.jsonl"
diff -u cmd/lrsweep/testdata/smoke_sweep.golden.jsonl "$tmpdir/smoke.jsonl"

echo "==> lrsweep selfbench (serial vs parallel wall-clock -> BENCH_sweep.json)"
go run ./cmd/lrsweep -sweep multihop -quick -runs 8 -parallel 8 -selfbench BENCH_sweep.json

echo "==> lrsweep churn-sweep selfbench (fault subsystem -> BENCH_fault.json)"
go run ./cmd/lrsweep -sweep churn -quick -runs 4 -parallel 4 -selfbench BENCH_fault.json

echo "==> traced smoke sweep: metrics byte-equal to the untraced golden, trace dirs worker-invariant"
go run ./cmd/lrsweep -sweep smoke -runs 2 -seed 1 -parallel 1 -trace-dir "$tmpdir/tr1" -o "$tmpdir/smoke_traced.jsonl"
diff -u cmd/lrsweep/testdata/smoke_sweep.golden.jsonl "$tmpdir/smoke_traced.jsonl"
go run ./cmd/lrsweep -sweep smoke -runs 2 -seed 1 -parallel 4 -trace-dir "$tmpdir/tr4" -o "$tmpdir/smoke_traced_p4.jsonl"
diff -r "$tmpdir/tr1" "$tmpdir/tr4"

echo "==> lrtrace on a churn-fault run (summary golden + every subcommand)"
go run ./cmd/lrsim -proto lr-seluge -kb 4 -receivers 5 -seed 1 -runs 1 \
    -trace "$tmpdir/base.jsonl" > /dev/null
go run ./cmd/lrsim -proto lr-seluge -kb 4 -receivers 5 -seed 1 -runs 1 \
    -faults examples/faults/churn.json -trace "$tmpdir/churn.jsonl" > /dev/null
go run ./cmd/lrtrace summary -json "$tmpdir/churn.jsonl" > "$tmpdir/churn_summary.json"
diff -u cmd/lrtrace/testdata/churn_summary.golden.json "$tmpdir/churn_summary.json"
go run ./cmd/lrtrace summary "$tmpdir/churn.jsonl" > /dev/null
go run ./cmd/lrtrace timeline -node 2 "$tmpdir/churn.jsonl" > /dev/null
go run ./cmd/lrtrace latency -csv "$tmpdir/fetch.csv" "$tmpdir/churn.jsonl" > /dev/null
go run ./cmd/lrtrace convert -chrome -o "$tmpdir/churn.trace.json" "$tmpdir/churn.jsonl"
go run ./cmd/lrtrace diff "$tmpdir/base.jsonl" "$tmpdir/churn.jsonl" > /dev/null

echo "==> lrsweep tracebench (tracer overhead -> BENCH_trace.json, disabled overhead < 2%)"
go run ./cmd/lrsweep -sweep smoke -runs 2 -seed 1 -tracebench BENCH_trace.json
frac=$(sed -n 's/.*"disabled_overhead_frac": \([0-9.eE+-]*\),*/\1/p' BENCH_trace.json)
awk -v f="$frac" 'BEGIN { if (f == "" || f >= 0.02) { print "disabled_overhead_frac gate failed: " f; exit 1 } }'

echo "OK"
