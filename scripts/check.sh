#!/usr/bin/env sh
# Expanded tier-1 gate: formatting, vet, build, lrlint (the JSON diagnostic
# artifact is the gate — diffed against its committed golden, so any new
# finding shows up in the diff — with the analyzer selfbench written to
# BENCH_lint.json), race-enabled tests, lrsweep golden-JSONL diff, the
# serial-vs-parallel sweep bench, and the churn-sweep fault-injection bench
# (BENCH_fault.json).
# Run from anywhere inside the repository; exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> lrlint -json artifact vs golden (and selfbench -> BENCH_lint.json)"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
# `|| true`: when findings exist the diff below fails with the findings
# visible in context, which is a more useful gate report than the bare exit.
go run ./cmd/lrlint -json -selfbench BENCH_lint.json ./... > "$tmpdir/lint.json" || true
diff -u cmd/lrlint/testdata/lint_clean.golden.json "$tmpdir/lint.json"

echo "==> go test -race ./..."
go test -race ./...

echo "==> go test -race ./internal/harness/... ./internal/fault/... (concurrency-sensitive packages, verbose gate)"
go test -race -count=1 ./internal/harness/... ./internal/fault/...

echo "==> lrsweep smoke sweep vs golden"
go run ./cmd/lrsweep -sweep smoke -runs 2 -seed 1 -parallel 2 -o "$tmpdir/smoke.jsonl"
diff -u cmd/lrsweep/testdata/smoke_sweep.golden.jsonl "$tmpdir/smoke.jsonl"

echo "==> lrsweep selfbench (serial vs parallel wall-clock -> BENCH_sweep.json)"
go run ./cmd/lrsweep -sweep multihop -quick -runs 8 -parallel 8 -selfbench BENCH_sweep.json

echo "==> lrsweep churn-sweep selfbench (fault subsystem -> BENCH_fault.json)"
go run ./cmd/lrsweep -sweep churn -quick -runs 4 -parallel 4 -selfbench BENCH_fault.json

echo "OK"
