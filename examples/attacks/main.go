// Attacks: demonstrate LR-Seluge's attack resilience (paper §IV-E) against
// three adversaries — forged data injection, signature-packet flooding
// (with and without brute-forced weak authenticators), and the
// denial-of-receipt SNACK flood, with and without the serve-limit defense.
package main

import (
	"fmt"
	"log"

	"lrseluge"
)

func main() {
	params := lrseluge.DefaultParams()
	fmt.Println("Running adversarial scenarios against LR-Seluge (10 receivers, p=0.1)...")
	fmt.Println()

	report, err := lrseluge.AttackResilience(params, 8*1024, 10, 0.1, 7)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("1. Forged data injection (structurally perfect packets, garbage bytes)")
	fmt.Printf("   forged packets sent:     %d\n", report.InjectionForged)
	fmt.Printf("   accepted by any node:    %d   <- must be 0: code-image integrity\n", report.Injection.ForgedAccepted)
	fmt.Printf("   dropped by per-packet authentication: %d\n", report.Injection.AuthDrops)
	fmt.Printf("   dissemination completed: %d/%d nodes, images intact: %v\n",
		report.Injection.Completed, report.Injection.Nodes, report.Injection.ImagesOK)
	fmt.Println()

	fmt.Println("2. Signature flooding without valid puzzles")
	fmt.Printf("   forged signature packets sent: %d\n", report.SigFloodSent)
	fmt.Printf("   filtered by one-hash weak authenticator: %d\n", report.SigFlood.PuzzleRejects)
	fmt.Printf("   expensive signature verifications performed: %d (≈ one per node)\n",
		report.SigFlood.SigVerifications)
	fmt.Println()

	fmt.Println("3. Signature flooding WITH brute-forced puzzles (strongest attacker)")
	fmt.Printf("   forged signature packets sent: %d (each cost the attacker a search)\n", report.SigFloodStrongSent)
	fmt.Printf("   verifications forced: %d — but zero forgeries accepted, image disseminated: %v\n",
		report.SigFloodStrong.SigVerifications, report.SigFloodStrong.ImagesOK)
	fmt.Println()

	fmt.Println("4. Denial of receipt (SNACK flood denying all receipt)")
	fmt.Printf("   victim transmissions without defense: %d\n", report.DoRVictimTxNoDefense)
	fmt.Printf("   victim transmissions with serve-limit defense: %d\n", report.DoRVictimTxDefense)
	saved := report.DoRVictimTxNoDefense - report.DoRVictimTxDefense
	fmt.Printf("   defense saved %d transmissions of victim energy\n", saved)
}
