// Quickstart: disseminate a 20 KB code image to 20 one-hop receivers over a
// 10%-lossy channel with LR-Seluge, and compare against Seluge on the same
// scenario — the paper's headline setting (§VI-B).
package main

import (
	"fmt"
	"log"

	"lrseluge"
)

func main() {
	base := lrseluge.Scenario{
		ImageSize: 20 * 1024,
		Receivers: 20,
		LossP:     0.1,
		Seed:      1,
	}

	fmt.Println("Disseminating a 20 KB image to 20 receivers at 10% packet loss...")
	fmt.Println()
	fmt.Printf("%-16s %8s %8s %6s %10s %9s %7s %9s\n",
		"scheme", "data", "snack", "adv", "bytes", "latency", "done", "imagesOK")

	for _, proto := range []lrseluge.Protocol{lrseluge.Seluge, lrseluge.LRSeluge, lrseluge.RatelessDeluge} {
		s := base
		s.Protocol = proto
		res, err := lrseluge.Run(s)
		if err != nil {
			log.Fatalf("%v: %v", proto, err)
		}
		fmt.Printf("%-16s %8d %8d %6d %10d %8.1fs %4d/%-2d %9v\n",
			proto, res.DataPkts, res.SnackPkts, res.AdvPkts, res.TotalBytes,
			res.Latency.Seconds(), res.Completed, res.Nodes, res.ImagesOK)
	}

	fmt.Println()
	fmt.Println("LR-Seluge needs fewer transmissions than Seluge because each page is")
	fmt.Println("erasure-coded: any k' of its n encoded packets reconstruct the page,")
	fmt.Println("so a lost packet is replaced by ANY other packet instead of a specific")
	fmt.Println("retransmission — while every packet still authenticates on arrival.")
	fmt.Println("Rateless-Deluge is similarly loss-resilient but accepts ANY bytes:")
	fmt.Println("a single forged packet can poison a page (no authentication at all).")
}
