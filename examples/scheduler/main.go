// Scheduler: a step-by-step walkthrough of LR-Seluge's greedy round-robin
// transmission scheduler (paper §IV-D.3 and Table I).
//
// Three neighbors request packets of a page that was erasure-coded into
// n = 4 packets with k' = 3 needed. The server's tracking table holds each
// requester's wanted-bit vector and its distance d = q + k' - n; every
// transmission picks the most popular packet (ties broken round-robin to
// the right) and decrements the distance of everyone who wanted it.
package main

import (
	"fmt"
	"sort"

	"lrseluge/internal/core"
	"lrseluge/internal/packet"
)

func bits(s string) packet.BitVector {
	v := packet.NewBitVector(len(s))
	for i, c := range s {
		v.Set(i, c == '1')
	}
	return v
}

func printTable(s *core.Scheduler) {
	bitsByNode, distByNode := s.Tracking(0)
	if len(bitsByNode) == 0 {
		fmt.Println("   tracking table: empty")
		return
	}
	ids := make([]int, 0, len(bitsByNode))
	for id := range bitsByNode {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	fmt.Println("   node | P1 P2 P3 P4 | distance")
	for _, id := range ids {
		b := bitsByNode[packet.NodeID(id)]
		fmt.Printf("   v%-3d |  %c  %c  %c  %c | %d\n", id, b[0], b[1], b[2], b[3], distByNode[packet.NodeID(id)])
	}
}

func main() {
	// n = 4 encoded packets per page, k' = 3 suffice to decode.
	sched := core.NewScheduler(
		func(int) int { return 4 },
		func(int) int { return 3 },
	)

	fmt.Println("SNACKs arrive from three neighbors (wanted packets P1..P4):")
	fmt.Println("   v1 wants P1,P2,P4  -> q=3, d = 3+3-4 = 2")
	fmt.Println("   v2 wants P1,P2     -> q=2, d = 2+3-4 = 1")
	fmt.Println("   v3 wants P2,P4     -> q=2, d = 2+3-4 = 1")
	sched.OnSNACK(1, 0, bits("1101"))
	sched.OnSNACK(2, 0, bits("1100"))
	sched.OnSNACK(3, 0, bits("0101"))
	fmt.Println()
	printTable(sched)

	step := 1
	for {
		_, idx, ok := sched.Next()
		if !ok {
			break
		}
		fmt.Printf("\nTransmission %d: P%d (highest popularity, round-robin tie-break)\n", step, idx+1)
		printTable(sched)
		step++
	}
	fmt.Println("\nEvery neighbor reached distance zero: the page is recoverable")
	fmt.Println("everywhere after only", step-1, "transmissions, versus the 4 a")
	fmt.Println("union-of-requests policy (Deluge/Seluge) would have sent.")
}
