// Largescale: disseminate an image to a 10,000-node random-disk network —
// two orders of magnitude beyond the paper's 15x15 grids — using the
// large-run machinery: the calendar event queue, compact per-node RNG
// state, and dense node-indexed metrics.
//
// Progress streams every simulated minute so the multi-hop wavefront is
// visible: completions ripple outward from the base station at the field
// center-left, and the run ends when the last node at the far corner
// verifies its final page.
//
// Usage: largescale [-nodes N] [-kb N] [-degree D] [-queue heap|calendar]
package main

import (
	"flag"
	"fmt"
	"log"

	"lrseluge"
)

func main() {
	var (
		nodes  = flag.Int("nodes", 10000, "network size (node 0 is the base station)")
		kb     = flag.Int("kb", 8, "image size in KiB")
		degree = flag.Float64("degree", 16, "target average node degree")
		queue  = flag.String("queue", "calendar", "event queue: heap or calendar")
		seed   = flag.Int64("seed", 1, "RNG seed")
	)
	flag.Parse()

	q := lrseluge.CalendarQueue
	if *queue == "heap" {
		q = lrseluge.HeapQueue
	}

	fmt.Printf("LR-Seluge on a %d-node random-disk network (target degree %.0f), %d KiB image, %s queue\n\n",
		*nodes, *degree, *kb, q)

	rep, err := lrseluge.RunScale(lrseluge.ScaleConfig{
		Nodes:        *nodes,
		TargetDegree: *degree,
		ImageKB:      *kb,
		Seed:         *seed,
		Queue:        q,
		CompactRNG:   true,
		Progress: func(s lrseluge.ScaleSnapshot) {
			fmt.Printf("  t=%10.0fs  completed %6d  events %9d  (wall %v)\n",
				s.Now.Seconds(), s.Completed, s.Events, s.WallElapsed.Round(1000000))
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %v\n", "completed", rep.Completed)
	fmt.Printf("%-22s %.1f s (virtual)\n", "dissemination latency", rep.LatencySec)
	fmt.Printf("%-22s %.1f\n", "avg degree", rep.AvgDegree)
	fmt.Printf("%-22s %d ms (real)\n", "wall time", rep.WallMS)
	fmt.Printf("%-22s %.0f\n", "events/sec", rep.EventsPerSec)
	fmt.Printf("%-22s %.0f B\n", "bytes/node", rep.BytesPerNode)
	if rep.PeakRSSKB > 0 {
		fmt.Printf("%-22s %.1f MiB\n", "peak RSS", float64(rep.PeakRSSKB)/1024)
	}
}
