// Upgrade: the paper's whole point is over-the-air REprogramming — this
// example shows a network running version 1 being securely upgraded to
// version 2.
//
// The version number is bound into both the signature and the puzzle key
// chain (key K_v hashes to the preloaded commitment in exactly v steps), so
// a node discards its old image only after cryptographic proof that a newer
// genuine version exists. An attacker advertising "version 99" achieves
// nothing.
package main

import (
	"fmt"
	"log"

	"lrseluge"
)

func main() {
	fmt.Println("Phase 1: disseminate version 1 to 10 receivers at 10% loss.")
	fmt.Println("Phase 2: inject version 2 at the base station; nodes verify the new")
	fmt.Println("signature against the key chain before discarding their state.")
	fmt.Println()

	res, err := lrseluge.VersionUpgrade(lrseluge.DefaultParams(), 8*1024, 10, 0.1, 42)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("version-1 dissemination latency: %.1f s\n", res.V1Latency.Seconds())
	fmt.Printf("upgrade latency (inject -> all on v2): %.1f s\n", res.UpgradeLatency.Seconds())
	fmt.Printf("upgrade communication: %d bytes\n", res.UpgradeBytes)
	fmt.Printf("nodes upgraded: %d/%d\n", res.Upgraded, res.Nodes)
	fmt.Printf("version-2 images verified byte-exact: %v\n", res.ImagesOK)
	fmt.Printf("signature verifications across both versions: %d\n", res.SigVerifications)
}
