// Multihop: reproduce the structure of the paper's Tables II/III — Seluge
// versus LR-Seluge disseminating over a multi-hop grid with heavy, bursty
// RF noise (Gilbert-Elliott channel standing in for TOSSIM's
// meyer-heavy.txt trace).
//
// Usage: multihop [-rows N] [-cols N] [-density tight|medium] [-kb N]
package main

import (
	"flag"
	"fmt"
	"log"

	"lrseluge"
)

func main() {
	var (
		rows    = flag.Int("rows", 7, "grid rows (paper: 15)")
		cols    = flag.Int("cols", 7, "grid cols (paper: 15)")
		density = flag.String("density", "tight", "grid density: tight or medium")
		kb      = flag.Int("kb", 8, "image size in KiB (paper: 20)")
		seed    = flag.Int64("seed", 1, "RNG seed")
	)
	flag.Parse()

	d := lrseluge.Tight
	if *density == "medium" {
		d = lrseluge.Medium
	}

	fmt.Printf("Seluge vs LR-Seluge on a %dx%d %s grid, %d KiB image, heavy bursty noise\n\n",
		*rows, *cols, d, *kb)

	sel, lr, err := lrseluge.MultiHopComparison(lrseluge.DefaultParams(), *kb*1024, d, *rows, *cols, 1, *seed)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %9s %9s %7s %11s %9s %6s\n", "scheme", "data", "snack", "adv", "bytes", "latency", "done")
	for _, row := range []struct {
		name string
		r    lrseluge.AvgResult
	}{{"Seluge", sel}, {"LR-Seluge", lr}} {
		fmt.Printf("%-10s %9.0f %9.0f %7.0f %11.0f %8.1fs %5.0f%%\n",
			row.name, row.r.DataPkts, row.r.SnackPkts, row.r.AdvPkts,
			row.r.TotalBytes, row.r.LatencySec, 100*row.r.Completed)
	}

	if lr.TotalBytes < sel.TotalBytes {
		fmt.Printf("\nLR-Seluge saves %.0f%% total communication on this grid.\n",
			100*(sel.TotalBytes-lr.TotalBytes)/sel.TotalBytes)
	}
}
