module lrseluge

go 1.22
