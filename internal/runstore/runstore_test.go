package runstore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tkey builds a distinct valid (64 hex char) key from an integer.
func tkey(i int) string {
	return fmt.Sprintf("%064x", i+1)
}

type payload struct {
	Name  string    `json:"name"`
	Vals  []float64 `json:"vals"`
	Count int       `json:"count"`
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetHasRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	in := payload{Name: "cell", Vals: []float64{1.5, 2.5}, Count: 3}
	key := tkey(0)
	if s.Has(key) {
		t.Fatal("empty store has key")
	}
	var miss payload
	if ok, err := s.Get(key, &miss); err != nil || ok {
		t.Fatalf("get on empty store: ok=%v err=%v", ok, err)
	}
	if err := s.Put(key, in); err != nil {
		t.Fatal(err)
	}
	if !s.Has(key) {
		t.Fatal("Has false after Put")
	}
	var out payload
	ok, err := s.Get(key, &out)
	if err != nil || !ok {
		t.Fatalf("get after put: ok=%v err=%v", ok, err)
	}
	if out.Name != in.Name || out.Count != in.Count || len(out.Vals) != 2 || out.Vals[1] != 2.5 {
		t.Fatalf("round trip changed value: %+v", out)
	}
	st := s.Stats()
	if st.Entries != 1 || st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Bytes <= 0 {
		t.Fatalf("stats %+v", st)
	}
	// No stray temp files after atomic writes.
	des, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if strings.HasPrefix(de.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", de.Name())
		}
	}
}

func TestInvalidKeyRejected(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	for _, key := range []string{"", "short", strings.Repeat("Z", 64), "../" + strings.Repeat("a", 61)} {
		if err := s.Put(key, 1); err == nil {
			t.Errorf("Put accepted invalid key %q", key)
		}
		var v int
		if _, err := s.Get(key, &v); err == nil {
			t.Errorf("Get accepted invalid key %q", key)
		}
	}
}

// TestReopenWarm: a new Store over the same directory serves the old values
// (the daemon-restart warm-hit path).
func TestReopenWarm(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := s.Put(tkey(i), payload{Count: i}); err != nil {
			t.Fatal(err)
		}
	}
	s2 := mustOpen(t, dir, Options{})
	for i := 0; i < 5; i++ {
		var out payload
		ok, err := s2.Get(tkey(i), &out)
		if err != nil || !ok || out.Count != i {
			t.Fatalf("key %d after reopen: ok=%v err=%v out=%+v", i, ok, err, out)
		}
	}
}

// TestCorruptValueIsMissAndRepaired: flipping payload bytes must fail the
// CRC; the store turns that into a miss and deletes the bad file.
func TestCorruptValueIsMissAndRepaired(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	key := tkey(0)
	if err := s.Put(key, payload{Name: "good"}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Dir(), key+valueExt)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	ok, err := s.Get(key, &out)
	if err != nil {
		t.Fatalf("corrupt value returned error: %v", err)
	}
	if ok {
		t.Fatal("corrupt value served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt value file not removed")
	}
	if s.Has(key) {
		t.Fatal("corrupt key still indexed")
	}
	st := s.Stats()
	if st.Corrupt != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
	// The repaired slot accepts a fresh Put.
	if err := s.Put(key, payload{Name: "fresh"}); err != nil {
		t.Fatal(err)
	}
	if ok, _ := s.Get(key, &out); !ok || out.Name != "fresh" {
		t.Fatalf("repaired slot: ok=%v out=%+v", ok, out)
	}
}

// TestTruncatedValueIsMiss covers a torn write surviving as a short file.
func TestTruncatedValueIsMiss(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	key := tkey(0)
	if err := s.Put(key, payload{Name: "whole"}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Dir(), key+valueExt)
	buf, _ := os.ReadFile(path)
	if err := os.WriteFile(path, buf[:len(buf)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// Reopen so the index size check does not pre-empt the CRC path; a
	// rebuilt index adopts the file and the read detects the truncation.
	os.Remove(filepath.Join(s.Dir(), indexName))
	s2 := mustOpen(t, s.Dir(), Options{})
	var out payload
	if ok, err := s2.Get(key, &out); err != nil || ok {
		t.Fatalf("truncated value: ok=%v err=%v", ok, err)
	}
}

// TestTruncatedIndexRecovery: a damaged index must not lose the values.
func TestTruncatedIndexRecovery(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 4; i++ {
		if err := s.Put(tkey(i), payload{Count: i}); err != nil {
			t.Fatal(err)
		}
	}
	idxPath := filepath.Join(dir, indexName)
	buf, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string][]byte{
		"truncated": buf[:len(buf)/3],
		"garbage":   []byte("{not json"),
		"empty":     {},
	} {
		if err := os.WriteFile(idxPath, mutate, 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("%s index: open failed: %v", name, err)
		}
		for i := 0; i < 4; i++ {
			var out payload
			ok, err := s2.Get(tkey(i), &out)
			if err != nil || !ok || out.Count != i {
				t.Fatalf("%s index: key %d lost: ok=%v err=%v", name, i, ok, err)
			}
		}
	}
	// A missing index rebuilds too, and stale temp files are swept.
	os.Remove(idxPath)
	if err := os.WriteFile(filepath.Join(dir, ".tmp-stale"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s3.Keys()); got != 4 {
		t.Fatalf("rebuilt store has %d keys, want 4", got)
	}
	if _, err := os.Stat(filepath.Join(dir, ".tmp-stale")); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived rebuild")
	}
}

// TestEvictionLRU: pushing past the byte cap evicts least-recently-used
// values first, and a Get refreshes recency.
func TestEvictionLRU(t *testing.T) {
	dir := t.TempDir()
	probe := mustOpen(t, dir, Options{})
	if err := probe.Put(tkey(0), payload{Name: "probe"}); err != nil {
		t.Fatal(err)
	}
	one := probe.Stats().Bytes
	if one <= 0 {
		t.Fatal("probe value has no size")
	}

	s := mustOpen(t, t.TempDir(), Options{MaxBytes: 3 * one})
	for i := 0; i < 3; i++ {
		if err := s.Put(tkey(i), payload{Name: "probe"}); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Entries != 3 || st.Evictions != 0 {
		t.Fatalf("under cap evicted: %+v", st)
	}
	// Touch key 0 so key 1 is now the LRU, then overflow.
	var out payload
	if ok, _ := s.Get(tkey(0), &out); !ok {
		t.Fatal("touch miss")
	}
	if err := s.Put(tkey(3), payload{Name: "probe"}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("overflow stats %+v", st)
	}
	if s.Has(tkey(1)) {
		t.Fatal("LRU key 1 survived eviction")
	}
	for _, i := range []int{0, 2, 3} {
		if !s.Has(tkey(i)) {
			t.Fatalf("key %d evicted out of LRU order", i)
		}
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("bytes %d over cap %d", st.Bytes, st.MaxBytes)
	}
}

// TestEvictionOversizedValue: a single value larger than the cap cannot be
// retained; the store stays under the cap rather than wedging above it.
func TestEvictionOversizedValue(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{MaxBytes: 16})
	if err := s.Put(tkey(0), payload{Name: strings.Repeat("x", 4096)}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Bytes > st.MaxBytes {
		t.Fatalf("store wedged over cap: %+v", st)
	}
	if st.Evictions == 0 {
		t.Fatalf("oversized value not evicted: %+v", st)
	}
}

// TestOverwriteRefreshesValue: Put on an existing key replaces the value
// without double-counting bytes.
func TestOverwriteRefreshesValue(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	key := tkey(0)
	if err := s.Put(key, payload{Name: "v1"}); err != nil {
		t.Fatal(err)
	}
	b1 := s.Stats().Bytes
	if err := s.Put(key, payload{Name: "v2"}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Entries != 1 {
		t.Fatalf("overwrite duplicated entry: %+v", st)
	}
	if st.Bytes > 2*b1 {
		t.Fatalf("overwrite double-counted bytes: %d vs single %d", st.Bytes, b1)
	}
	var out payload
	if ok, _ := s.Get(key, &out); !ok || out.Name != "v2" {
		t.Fatalf("overwrite not visible: %+v", out)
	}
}

// TestConcurrentHammer: many goroutines, mixed put/get/has/stats over a
// capped store. Run under -race in check.sh; invariants checked at the end.
func TestConcurrentHammer(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{MaxBytes: 64 * 1024})
	const (
		goroutines = 8
		opsPerG    = 200
		keySpace   = 32
	)
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			var err error
			defer func() { errCh <- err }()
			for i := 0; i < opsPerG; i++ {
				key := tkey((g*opsPerG + i*7) % keySpace)
				switch i % 4 {
				case 0, 1:
					if perr := s.Put(key, payload{Name: key, Count: i}); perr != nil {
						err = perr
						return
					}
				case 2:
					var out payload
					ok, gerr := s.Get(key, &out)
					if gerr != nil {
						err = gerr
						return
					}
					if ok && out.Name != key {
						err = fmt.Errorf("key %s returned value named %s", key, out.Name)
						return
					}
				case 3:
					s.Has(key)
					s.Stats()
				}
			}
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Bytes > st.MaxBytes {
		t.Fatalf("hammer left store over cap: %+v", st)
	}
	if st.Corrupt != 0 {
		t.Fatalf("hammer produced corruption: %+v", st)
	}
	// The store must still be fully consistent: reopen and read every key.
	s2 := mustOpen(t, s.Dir(), Options{})
	for _, key := range s2.Keys() {
		var out payload
		if ok, err := s2.Get(key, &out); err != nil || !ok {
			t.Fatalf("post-hammer reopen: key %s ok=%v err=%v", key, ok, err)
		}
	}
}
