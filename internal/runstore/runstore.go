// Package runstore is a content-addressed, file-backed result store: values
// are stored under caller-derived hex keys (see experiment.Spec.Key /
// experiment.Cell.Key) as gzip-compressed JSON with an explicit CRC, written
// atomically (temp file + rename) and read back with integrity checking. An
// index file caches sizes and LRU ordering; if it is missing, truncated or
// corrupt the store rebuilds it by scanning the value files, so the values
// themselves are the source of truth.
//
// The store is the persistence layer of lrserved's "compute once, serve
// forever" economics: the simulator is deterministic, so identical
// (spec, seed, runs, code-version) keys always denote identical results and
// a stored value never goes stale under its key. Eviction is therefore pure
// capacity management (least-recently-used under a byte cap), never
// invalidation.
//
// All methods are safe for concurrent use. Recency is tracked with a logical
// access counter, not wall-clock time: the package stays inside the repo's
// no-wallclock discipline and eviction order is deterministic for a given
// operation sequence.
package runstore

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"lrseluge/internal/detmap"
)

// valueMagic heads every value file; the trailing byte is the format
// version. A file without it is garbage regardless of its CRC bytes.
var valueMagic = []byte("LRRS\x01")

// valueExt is the extension of value files inside the store directory.
const valueExt = ".val"

// indexName is the index file inside the store directory.
const indexName = "index.json"

// Stats is a point-in-time snapshot of store contents and traffic counters.
type Stats struct {
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// MaxBytes is the configured cap (0 = unbounded).
	MaxBytes int64 `json:"max_bytes"`

	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Puts      int64 `json:"puts"`
	Evictions int64 `json:"evictions"`
	// Corrupt counts value files rejected (and removed) by the CRC or
	// format check — each also counted as a miss.
	Corrupt int64 `json:"corrupt"`
}

// entry is the in-memory index record of one stored value.
type entry struct {
	Size int64 `json:"size"`
	// Seq is the logical access stamp driving LRU eviction: larger = more
	// recently used.
	Seq uint64 `json:"seq"`
}

// indexFile is the on-disk schema of index.json.
type indexFile struct {
	Version int              `json:"version"`
	Seq     uint64           `json:"seq"`
	Entries map[string]entry `json:"entries"`
}

// Store is a content-addressed result store rooted at one directory.
type Store struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	entries map[string]entry
	bytes   int64
	seq     uint64
	stats   Stats
}

// Options tunes a Store.
type Options struct {
	// MaxBytes caps the total size of stored values; <= 0 means unbounded.
	// When a Put pushes the total past the cap, least-recently-used values
	// are evicted until it fits again.
	MaxBytes int64
}

// Open opens (or creates) a store rooted at dir. A missing, truncated or
// corrupt index is rebuilt by scanning the value files; scan order is
// sorted, so the rebuilt LRU order is deterministic.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	s := &Store{
		dir:      dir,
		maxBytes: opts.MaxBytes,
		entries:  make(map[string]entry),
	}
	if err := s.loadIndex(); err != nil {
		if err := s.rebuildIndex(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// loadIndex reads index.json and verifies every referenced value file still
// exists with the recorded size; any disagreement fails the load so the
// caller falls back to a full rebuild.
func (s *Store) loadIndex() error {
	buf, err := os.ReadFile(filepath.Join(s.dir, indexName))
	if err != nil {
		return err
	}
	var idx indexFile
	if err := json.Unmarshal(buf, &idx); err != nil {
		return fmt.Errorf("runstore: corrupt index: %w", err)
	}
	if idx.Version != 1 || idx.Entries == nil {
		return fmt.Errorf("runstore: index version %d unsupported", idx.Version)
	}
	var total int64
	for _, key := range detmap.SortedKeys(idx.Entries) {
		if !validKey(key) {
			return fmt.Errorf("runstore: index references invalid key %q", key)
		}
		e := idx.Entries[key]
		fi, err := os.Stat(s.valuePath(key))
		if err != nil || fi.Size() != e.Size {
			return fmt.Errorf("runstore: index out of sync for %s", key)
		}
		total += e.Size
	}
	s.entries = idx.Entries
	s.bytes = total
	s.seq = idx.Seq
	return nil
}

// rebuildIndex reconstructs the index from the value files on disk: every
// *.val whose name is a valid key is adopted (its CRC is checked lazily on
// first Get), everything else is ignored. Stale temp files from interrupted
// writes are removed.
func (s *Store) rebuildIndex() error {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	s.entries = make(map[string]entry)
	s.bytes = 0
	s.seq = 0
	var keys []string
	for _, de := range names {
		name := de.Name()
		if strings.HasPrefix(name, ".tmp-") {
			os.Remove(filepath.Join(s.dir, name)) // interrupted atomic write
			continue
		}
		key, ok := strings.CutSuffix(name, valueExt)
		if !ok || !validKey(key) {
			continue
		}
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		fi, err := os.Stat(s.valuePath(key))
		if err != nil {
			continue
		}
		s.seq++
		s.entries[key] = entry{Size: fi.Size(), Seq: s.seq}
		s.bytes += fi.Size()
	}
	return s.writeIndexLocked()
}

// validKey accepts lowercase-hex keys of SHA-256 length — the only keys the
// derivation layer produces. Rejecting everything else keeps file names safe
// and makes index/scan agreement trivial.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) valuePath(key string) string {
	return filepath.Join(s.dir, key+valueExt)
}

// encodeValue renders the stored file bytes: magic, big-endian CRC-32 (IEEE)
// and length of the gzip payload, then the payload (gzip-compressed JSON of
// v). The explicit CRC makes corruption detection independent of the gzip
// framing, so even a torn header is diagnosed as corruption, not a decode
// error.
func encodeValue(v any) ([]byte, error) {
	var payload bytes.Buffer
	zw := gzip.NewWriter(&payload)
	enc := json.NewEncoder(zw)
	if err := enc.Encode(v); err != nil {
		return nil, fmt.Errorf("runstore: encode value: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("runstore: compress value: %w", err)
	}
	buf := make([]byte, 0, len(valueMagic)+8+payload.Len())
	buf = append(buf, valueMagic...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload.Bytes()))
	buf = binary.BigEndian.AppendUint32(buf, uint32(payload.Len()))
	buf = append(buf, payload.Bytes()...)
	return buf, nil
}

// decodeValue verifies the container and unmarshals the payload into out.
func decodeValue(buf []byte, out any) error {
	if len(buf) < len(valueMagic)+8 || !bytes.Equal(buf[:len(valueMagic)], valueMagic) {
		return fmt.Errorf("runstore: value file too short or bad magic")
	}
	rest := buf[len(valueMagic):]
	wantCRC := binary.BigEndian.Uint32(rest[:4])
	wantLen := binary.BigEndian.Uint32(rest[4:8])
	payload := rest[8:]
	if uint32(len(payload)) != wantLen {
		return fmt.Errorf("runstore: value payload truncated: %d bytes, header says %d", len(payload), wantLen)
	}
	if crc := crc32.ChecksumIEEE(payload); crc != wantCRC {
		return fmt.Errorf("runstore: value CRC mismatch: %08x, header says %08x", crc, wantCRC)
	}
	zr, err := gzip.NewReader(bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("runstore: decompress value: %w", err)
	}
	dec := json.NewDecoder(zr)
	dec.DisallowUnknownFields()
	if err := dec.Decode(out); err != nil {
		return fmt.Errorf("runstore: decode value: %w", err)
	}
	if _, err := io.Copy(io.Discard, zr); err != nil {
		return fmt.Errorf("runstore: decompress value: %w", err)
	}
	return zr.Close()
}

// Put stores v under key, JSON-encoded and gzip-compressed, atomically:
// the bytes land in a temp file first and are renamed into place, so
// readers (and a daemon restarted after a crash) never observe a partial
// value. Storing an existing key overwrites it and refreshes its recency.
func (s *Store) Put(key string, v any) error {
	if !validKey(key) {
		return fmt.Errorf("runstore: invalid key %q", key)
	}
	buf, err := encodeValue(v)
	if err != nil {
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("runstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.valuePath(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runstore: %w", err)
	}
	if old, ok := s.entries[key]; ok {
		s.bytes -= old.Size
	}
	s.seq++
	s.entries[key] = entry{Size: int64(len(buf)), Seq: s.seq}
	s.bytes += int64(len(buf))
	s.stats.Puts++
	s.evictLocked()
	return s.writeIndexLocked()
}

// Get loads the value stored under key into out (a pointer). ok is false on
// a clean miss. A value file that fails the magic/CRC/decode check is
// removed — the store repairs itself by turning corruption into a miss the
// caller recomputes — and reported in Stats.Corrupt.
func (s *Store) Get(key string, out any) (ok bool, err error) {
	if !validKey(key) {
		return false, fmt.Errorf("runstore: invalid key %q", key)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.entries[key]; !exists {
		s.stats.Misses++
		return false, nil
	}
	buf, err := os.ReadFile(s.valuePath(key))
	if err != nil {
		// Index said present but the file is gone: treat as corruption,
		// drop the entry and miss.
		s.dropCorruptLocked(key)
		return false, nil
	}
	if err := decodeValue(buf, out); err != nil {
		s.dropCorruptLocked(key)
		return false, nil
	}
	s.seq++
	e := s.entries[key]
	e.Seq = s.seq
	s.entries[key] = e
	s.stats.Hits++
	return true, nil
}

// Has reports whether key is present without reading or validating the
// value and without perturbing LRU order or hit/miss counters.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// Keys returns every stored key in sorted order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return detmap.SortedKeys(s.entries)
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	st.Bytes = s.bytes
	st.MaxBytes = s.maxBytes
	return st
}

// dropCorruptLocked removes a value that failed validation and accounts the
// repair: the caller sees a miss and recomputes; the bad bytes are gone.
func (s *Store) dropCorruptLocked(key string) {
	if e, ok := s.entries[key]; ok {
		s.bytes -= e.Size
		delete(s.entries, key)
	}
	os.Remove(s.valuePath(key))
	s.stats.Corrupt++
	s.stats.Misses++
	// Index write errors here are not fatal: the index self-heals on the
	// next successful mutation or reopen.
	_ = s.writeIndexLocked()
}

// evictLocked enforces the byte cap by removing least-recently-used entries
// (smallest Seq first; key order breaks ties deterministically, though Seq
// values are unique in practice).
func (s *Store) evictLocked() {
	if s.maxBytes <= 0 || s.bytes <= s.maxBytes {
		return
	}
	// Sorted keys first (deterministic tie-break), then stable-sort by
	// access stamp so the least recently used come first.
	keys := detmap.SortedKeys(s.entries)
	sort.SliceStable(keys, func(i, j int) bool {
		return s.entries[keys[i]].Seq < s.entries[keys[j]].Seq
	})
	for _, key := range keys {
		if s.bytes <= s.maxBytes {
			break
		}
		os.Remove(s.valuePath(key))
		s.bytes -= s.entries[key].Size
		delete(s.entries, key)
		s.stats.Evictions++
	}
}

// writeIndexLocked persists the index atomically. The index is a cache of
// metadata, not the source of truth, but keeping it fresh makes reopening
// O(1) instead of a directory scan.
func (s *Store) writeIndexLocked() error {
	idx := indexFile{Version: 1, Seq: s.seq, Entries: s.entries}
	buf, err := json.Marshal(idx)
	if err != nil {
		return fmt.Errorf("runstore: encode index: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("runstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, indexName)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runstore: %w", err)
	}
	return nil
}
