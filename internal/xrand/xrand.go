// Package xrand provides a compact deterministic random source for
// large-scale simulations.
//
// math/rand's default lagged-Fibonacci source carries ~4.9 KB of state; with
// one independent stream per node, a 100k-node run would spend ~500 MB on
// RNG state alone. SplitMix64 (Steele, Lea & Flood, OOPSLA 2013 — the
// java.util.SplittableRandom finalizer) carries 8 bytes, passes BigCrush,
// and is more than adequate for protocol jitter and server selection.
//
// The stream differs from math/rand's default source, so compact mode is an
// explicit opt-in (scale.Config / dissem.Config.CompactRNG) and never flips
// under the byte-identity goldens, which all pin the default source.
package xrand

// SplitMix is a rand.Source64 implementing SplitMix64.
type SplitMix struct {
	state uint64
}

// NewSplitMix returns a SplitMix64 source seeded with seed.
func NewSplitMix(seed int64) *SplitMix {
	return &SplitMix{state: uint64(seed)}
}

// Seed implements rand.Source.
func (s *SplitMix) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 implements rand.Source64.
func (s *SplitMix) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *SplitMix) Int63() int64 { return int64(s.Uint64() >> 1) }
