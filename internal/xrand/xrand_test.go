package xrand

import (
	"math/rand"
	"testing"
)

// The compile-time interface check lives here rather than in the package
// body so no package-level variable holds RNG state (rng-stream-discipline).
var _ rand.Source64 = (*SplitMix)(nil)

func TestSplitMixDeterministic(t *testing.T) {
	a, b := NewSplitMix(42), NewSplitMix(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSplitMixKnownVector(t *testing.T) {
	// Pinned SplitMix64 output for seed 1234567; any change to the mixing
	// constants or shift structure breaks run reproducibility at scale.
	s := NewSplitMix(1234567)
	want := []uint64{0x599ed017fb08fc85, 0x2c73f08458540fa5, 0x883ebce5a3f27c77}
	for i, w := range want {
		if v := s.Uint64(); v != w {
			t.Fatalf("draw %d: got %#x, want %#x", i, v, w)
		}
	}
}

func TestSplitMixSeedResets(t *testing.T) {
	s := NewSplitMix(7)
	first := s.Uint64()
	s.Uint64()
	s.Seed(7)
	if v := s.Uint64(); v != first {
		t.Fatalf("Seed did not reset the stream: %#x != %#x", v, first)
	}
}

func TestSplitMixInt63NonNegative(t *testing.T) {
	s := NewSplitMix(-9)
	for i := 0; i < 1000; i++ {
		if v := s.Int63(); v < 0 {
			t.Fatalf("Int63 returned negative %d", v)
		}
	}
}
