package lint

import (
	"encoding/json"
)

// Report is the machine-readable form of one lrlint run, emitted by
// `lrlint -json` and archived by scripts/check.sh as the CI diagnostic
// artifact. The schema is deliberately small and stable: CI diffs the
// serialized bytes against a golden file, so field order, indentation, and
// the empty-slice (never null) conventions below are all part of the
// contract.
type Report struct {
	// Module is the module path the run analyzed.
	Module string `json:"module"`
	// Rules lists the rules that were enabled, in catalog order.
	Rules []string `json:"rules"`
	// Findings holds the surviving diagnostics in position order. Always a
	// JSON array, never null.
	Findings []JSONFinding `json:"findings"`
	// Count duplicates len(findings) so shell gates can read it without a
	// JSON parser.
	Count int `json:"count"`
}

// JSONFinding is one diagnostic in the report.
type JSONFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

// NewReport assembles a Report from a finished run. An empty rules filter
// means the full catalog ran.
func NewReport(modPath string, rules []string, diags []Diagnostic) Report {
	if len(rules) == 0 {
		rules = AllRules
	}
	findings := make([]JSONFinding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, JSONFinding{
			File: d.Pos.Filename,
			Line: d.Pos.Line,
			Col:  d.Pos.Column,
			Rule: d.Rule,
			Msg:  d.Msg,
		})
	}
	return Report{
		Module:   modPath,
		Rules:    append([]string(nil), rules...),
		Findings: findings,
		Count:    len(findings),
	}
}

// MarshalIndent renders the report in the canonical on-disk form: two-space
// indent, trailing newline. Diffable byte-for-byte.
func (r Report) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
