package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hashIface is a structural copy of hash.Hash, synthesized so the pass can
// exempt its implementations without importing the hash package into every
// analyzed fixture: hash.Hash.Write is documented to never return an error,
// so dropping it is the universal Go idiom rather than a swallowed failure.
var hashIface = makeHashIface()

func makeHashIface() *types.Interface {
	byteSlice := types.NewSlice(types.Typ[types.Byte])
	errType := types.Universe.Lookup("error").Type()
	intType := types.Typ[types.Int]
	param := func(t types.Type) *types.Var { return types.NewVar(token.NoPos, nil, "", t) }
	sig := func(params, results []*types.Var) *types.Signature {
		return types.NewSignatureType(nil, nil, nil, types.NewTuple(params...), types.NewTuple(results...), false)
	}
	methods := []*types.Func{
		types.NewFunc(token.NoPos, nil, "Write", sig([]*types.Var{param(byteSlice)}, []*types.Var{param(intType), param(errType)})),
		types.NewFunc(token.NoPos, nil, "Sum", sig([]*types.Var{param(byteSlice)}, []*types.Var{param(byteSlice)})),
		types.NewFunc(token.NoPos, nil, "Reset", sig(nil, nil)),
		types.NewFunc(token.NoPos, nil, "Size", sig(nil, []*types.Var{param(intType)})),
		types.NewFunc(token.NoPos, nil, "BlockSize", sig(nil, []*types.Var{param(intType)})),
	}
	iface := types.NewInterfaceType(methods, nil)
	iface.Complete()
	return iface
}

// checkErrors implements the unchecked-errors pass: in error-critical
// packages, a call whose error result is discarded — as a bare expression
// statement, via go/defer, or assigned to the blank identifier — is a
// finding. Here a swallowed error means a forged or corrupt packet is
// silently accepted as valid.
func checkErrors(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	flag := func(call *ast.CallExpr, how string) {
		diags = append(diags, Diagnostic{
			Pos:  pkg.Fset.Position(call.Pos()),
			Rule: RuleErrcheck,
			Msg:  "error result of " + callName(call) + " is " + how + "; a dropped error here accepts forged or corrupt data",
		})
	}
	walkNonTest(pkg, func(_ *ast.File, n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && returnsError(pkg, call) && !exemptCall(pkg, call) {
				flag(call, "discarded")
			}
		case *ast.GoStmt:
			if returnsError(pkg, s.Call) && !exemptCall(pkg, s.Call) {
				flag(s.Call, "discarded")
			}
		case *ast.DeferStmt:
			if returnsError(pkg, s.Call) && !exemptCall(pkg, s.Call) {
				flag(s.Call, "discarded")
			}
		case *ast.AssignStmt:
			if len(s.Rhs) != 1 {
				return true
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok || exemptCall(pkg, call) {
				return true
			}
			res := resultTuple(pkg, call)
			if res == nil || len(s.Lhs) != res.Len() {
				return true
			}
			for i := 0; i < res.Len(); i++ {
				if !isErrorType(res.At(i).Type()) {
					continue
				}
				if id, ok := s.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
					flag(call, "assigned to _")
					break
				}
			}
		}
		return true
	})
	return diags
}

// callName renders a compact name for the called function.
func callName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	default:
		return "call"
	}
}

// resultTuple returns the call's result tuple, or nil for conversions,
// builtins, and untyped expressions.
func resultTuple(pkg *Package, call *ast.CallExpr) *types.Tuple {
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return nil
	}
	return sig.Results()
}

// returnsError reports whether any result of the call has type error.
func returnsError(pkg *Package, call *ast.CallExpr) bool {
	res := resultTuple(pkg, call)
	if res == nil {
		return false
	}
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// exemptCall reports whether the call is a method on a hash.Hash
// implementation, whose Write contract guarantees a nil error.
func exemptCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection, ok := pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	recv := selection.Recv()
	return types.Implements(recv, hashIface) ||
		types.Implements(types.NewPointer(recv), hashIface)
}
