package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file implements the verify-before-use pass, the dataflow analysis that
// machine-checks LR-Seluge's headline security invariant: every radio-receive
// payload is authenticated immediately on arrival — BEFORE it is buffered in
// node state or fed to an erasure decoder (paper §IV-E). The
// decode-before-verify ordering this rules out is exactly the bug class that
// creeps into coding-layer protocol stacks as they grow.
//
// The analysis is intra-procedural and modular over the ObjectHandler
// contract: each function that receives a packet parameter is checked on its
// own, and passing a still-unverified packet to another function (e.g.
// Node.handleData calling handler.Ingest) is NOT a sink — the callee is
// itself analyzed with its own tainted parameter. Only the two operations
// that actually commit unauthenticated bytes are sinks:
//
//   - storing taint-derived, data-bearing values into state that outlives
//     the call (struct fields, package variables, dereferenced pointers);
//   - passing taint-derived values to an internal/erasure decoder entry
//     point (Decode, AddSeed).
//
// Taint sources are parameters (and method receivers) whose type is the
// module's packet.Data or packet.Sig (by pointer or value), plus results of
// packet.Unmarshal. Taint propagates through assignments, conversions,
// composite literals, unary/binary expressions, and calls that take a
// tainted argument.
//
// A tainted origin becomes VERIFIED when control flow passes a verification
// event that covers it:
//
//   - a call to a function in the module's internal/crypt tree whose name
//     begins with "Verify" (merkle.Verify, puzzle.Verify, puzzle.VerifyKey,
//     sign.PublicKey.Verify, ...) taking a taint-derived argument;
//   - an == or != comparison in which one side is a call into internal/crypt
//     (hashx.Sum over the packet's AuthBody) on a taint-derived argument;
//   - a call to one of the named in-module verification wrappers
//     (SigContext.WeakCheck / FullVerify, ObjectHandler.Authentic /
//     PreVerifySig) with a taint-derived argument.
//
// Verification events are recognized inside `if` conditions. The common
// early-exit shape
//
//	if !merkle.Verify(root, d.Payload, idx, d.Proof) {
//	    return Rejected
//	}
//	h.buf[idx] = append([]byte(nil), d.Payload...)   // OK: verified
//
// marks the origin verified after the if when the guarded branch diverges
// (return / panic / continue / break), and inside both branches otherwise.
// The analysis does not track the polarity of the condition — it proves "a
// verification call dominates the sink", not that the sink sits on the
// success arm; the fixture tests pin this approximation.
//
// Intentionally unauthenticated baselines (Deluge, Rateless Deluge) carry
// `//lrlint:ignore verify-before-use <reason>` directives at their sinks;
// the inventory lives in DESIGN.md §10.

// verifierWrapperNames are in-module methods that perform verification on
// behalf of the crypt packages (they wrap hash/puzzle/signature checks).
var verifierWrapperNames = map[string]bool{
	"WeakCheck":    true,
	"FullVerify":   true,
	"Authentic":    true,
	"PreVerifySig": true,
}

// decoderEntryNames are the internal/erasure entry points that consume
// possibly-corrupt shards; feeding them unverified bytes is a sink.
var decoderEntryNames = map[string]bool{
	"Decode":  true,
	"AddSeed": true,
}

// checkTaint implements verify-before-use for every function of the package.
func checkTaint(pkg *Package, cfg Config) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a := newTaintAnalysis(pkg, cfg)
			a.seedParams(fd)
			a.walkStmt(fd.Body)
			diags = append(diags, a.diags...)
		}
	}
	return diags
}

// taintAnalysis carries the per-function dataflow state.
type taintAnalysis struct {
	pkg   *Package
	cfg   Config
	diags []Diagnostic

	// origin maps a variable object to the origin parameter object its value
	// derives from. Origins map to themselves.
	origin map[types.Object]types.Object
	// verified holds the origins whose data has passed a verification event
	// on the current path.
	verified map[types.Object]bool
}

func newTaintAnalysis(pkg *Package, cfg Config) *taintAnalysis {
	return &taintAnalysis{
		pkg:      pkg,
		cfg:      cfg,
		origin:   make(map[types.Object]types.Object),
		verified: make(map[types.Object]bool),
	}
}

// seedParams marks the function's packet-typed parameters and receiver as
// taint origins.
func (a *taintAnalysis) seedParams(fd *ast.FuncDecl) {
	seed := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, field := range fields.List {
			for _, name := range field.Names {
				obj := a.pkg.Info.Defs[name]
				if obj != nil && a.isPacketType(obj.Type()) {
					a.origin[obj] = obj
				}
			}
		}
	}
	seed(fd.Recv)
	seed(fd.Type.Params)
}

// isPacketType reports whether t is the module's packet.Data or packet.Sig
// (by value or pointer), identified by package-path suffix so fixture modules
// exercise the pass without importing the real tree.
func (a *taintAnalysis) isPacketType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !pathInModuleTree(a.cfg.ModulePath, obj.Pkg().Path(), "internal/packet") {
		return false
	}
	return obj.Name() == "Data" || obj.Name() == "Sig"
}

// pathInModuleTree reports whether pkgPath is modPath/prefix or below it.
func pathInModuleTree(modPath, pkgPath, prefix string) bool {
	full := modPath + "/" + prefix
	return pkgPath == full || strings.HasPrefix(pkgPath, full+"/")
}

// exprOrigins returns the set of taint origins the expression derives from.
func (a *taintAnalysis) exprOrigins(e ast.Expr) map[types.Object]bool {
	out := make(map[types.Object]bool)
	a.collectOrigins(e, out)
	return out
}

func (a *taintAnalysis) collectOrigins(e ast.Expr, out map[types.Object]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			obj := a.pkg.Info.Uses[n]
			if obj == nil {
				obj = a.pkg.Info.Defs[n]
			}
			if obj == nil {
				return true
			}
			if org, ok := a.origin[obj]; ok {
				out[org] = true
			}
		case *ast.CallExpr:
			// packet.Unmarshal results are sources in their own right: the
			// Unmarshal *types.Func serves as the origin object, so the
			// verification machinery tracks it like any parameter.
			if fn := a.calleeFunc(n); fn != nil && fn.Pkg() != nil &&
				pathInModuleTree(a.cfg.ModulePath, fn.Pkg().Path(), "internal/packet") &&
				fn.Name() == "Unmarshal" {
				out[fn] = true
			}
		}
		return true
	})
}

// unverified filters origins down to the ones not yet verified.
func (a *taintAnalysis) unverified(origins map[types.Object]bool) []types.Object {
	var out []types.Object
	for org := range origins {
		if !a.verified[org] {
			out = append(out, org)
		}
	}
	return out
}

// walkStmt processes one statement, updating taint and verification state
// and recording sink findings.
func (a *taintAnalysis) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			a.walkStmt(st)
		}
	case *ast.IfStmt:
		a.walkStmt(s.Init)
		verifiedByCond := a.verifierEvents(s.Cond)
		a.checkExprSinks(s.Cond)
		// Walk the guarded branch with the verification event in force (it
		// only executes after the verifier call ran), snapshotting state so
		// branch-local propagation does not leak.
		saved := a.snapshot()
		a.markVerified(verifiedByCond)
		a.walkStmt(s.Body)
		a.restore(saved)
		if s.Else != nil {
			saved := a.snapshot()
			a.markVerified(verifiedByCond)
			a.walkStmt(s.Else)
			a.restore(saved)
		}
		// The verifier call sits in the CONDITION, so it has executed on
		// every path that reaches the statements after the if — it dominates
		// the remainder of the function regardless of which arm ran.
		// (Short-circuit caveats are accepted: in `a && verify(b)` the call
		// may be skipped; the fixtures pin this approximation.)
		a.markVerified(verifiedByCond)
	case *ast.ExprStmt:
		a.checkExprSinks(s.X)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			a.checkExprSinks(rhs)
		}
		a.processAssign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					a.checkExprSinks(v)
				}
				a.processVarSpec(vs)
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			a.checkExprSinks(r)
		}
	case *ast.RangeStmt:
		a.checkExprSinks(s.X)
		a.walkStmt(s.Body)
	case *ast.ForStmt:
		a.walkStmt(s.Init)
		a.checkExprSinks(s.Cond)
		a.walkStmt(s.Post)
		a.walkStmt(s.Body)
	case *ast.SwitchStmt:
		a.walkStmt(s.Init)
		a.checkExprSinks(s.Tag)
		saved := a.snapshot()
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				a.checkExprSinks(e)
			}
			for _, st := range cc.Body {
				a.walkStmt(st)
			}
			a.restore(saved)
		}
	case *ast.TypeSwitchStmt:
		a.walkStmt(s.Init)
		a.walkStmt(s.Assign)
		saved := a.snapshot()
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, st := range cc.Body {
				a.walkStmt(st)
			}
			a.restore(saved)
		}
	case *ast.GoStmt:
		a.walkCallStmt(s.Call)
	case *ast.DeferStmt:
		a.walkCallStmt(s.Call)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			comm := c.(*ast.CommClause)
			a.walkStmt(comm.Comm)
			for _, st := range comm.Body {
				a.walkStmt(st)
			}
		}
	case *ast.SendStmt:
		a.checkExprSinks(s.Chan)
		a.checkExprSinks(s.Value)
	case *ast.LabeledStmt:
		a.walkStmt(s.Stmt)
	case *ast.IncDecStmt:
		a.checkExprSinks(s.X)
	}
}

// walkCallStmt handles go/defer calls: the call itself is checked for sinks,
// and a function-literal callee's body is walked with the current state (the
// closure may run later, when verification state can only have grown, so the
// current state is the conservative choice).
func (a *taintAnalysis) walkCallStmt(call *ast.CallExpr) {
	a.checkExprSinks(call)
}

// snapshot/restore copy the mutable maps so branch walks stay isolated.
type taintSnapshot struct {
	origin   map[types.Object]types.Object
	verified map[types.Object]bool
}

func (a *taintAnalysis) snapshot() taintSnapshot {
	o := make(map[types.Object]types.Object, len(a.origin))
	for k, v := range a.origin {
		o[k] = v
	}
	ver := make(map[types.Object]bool, len(a.verified))
	for k, v := range a.verified {
		ver[k] = v
	}
	return taintSnapshot{origin: o, verified: ver}
}

func (a *taintAnalysis) restore(s taintSnapshot) {
	a.origin = s.origin
	a.verified = s.verified
}

func (a *taintAnalysis) markVerified(origins []types.Object) {
	for _, org := range origins {
		a.verified[org] = true
	}
}

// processAssign propagates taint through an assignment and flags escaping
// stores of unverified data.
func (a *taintAnalysis) processAssign(s *ast.AssignStmt) {
	// Propagation: only the 1:1 form is tracked precisely; for the
	// multi-value form (x, err := f(tainted)) every LHS inherits the union.
	var rhsOrigins map[types.Object]bool
	if len(s.Lhs) == len(s.Rhs) {
		rhsOrigins = nil // computed per position below
	} else {
		rhsOrigins = make(map[types.Object]bool)
		for _, rhs := range s.Rhs {
			a.collectOrigins(rhs, rhsOrigins)
		}
	}
	for i, lhs := range s.Lhs {
		origins := rhsOrigins
		if origins == nil {
			origins = a.exprOrigins(s.Rhs[i])
		}
		a.flagStore(lhs, origins, s.Pos())
		a.propagate(lhs, origins)
	}
}

func (a *taintAnalysis) processVarSpec(vs *ast.ValueSpec) {
	if len(vs.Values) == 0 {
		return
	}
	union := make(map[types.Object]bool)
	for _, v := range vs.Values {
		a.collectOrigins(v, union)
	}
	for _, name := range vs.Names {
		if obj := a.pkg.Info.Defs[name]; obj != nil {
			a.setOrigins(obj, union)
		}
	}
}

// propagate updates the origin map for a plain identifier target.
func (a *taintAnalysis) propagate(lhs ast.Expr, origins map[types.Object]bool) {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := a.pkg.Info.Defs[id]
	if obj == nil {
		obj = a.pkg.Info.Uses[id]
	}
	if obj == nil {
		return
	}
	a.setOrigins(obj, origins)
}

func (a *taintAnalysis) setOrigins(obj types.Object, origins map[types.Object]bool) {
	delete(a.origin, obj)
	for org := range origins {
		// A variable deriving from several origins is attributed to one of
		// them per map entry; findings fire per unverified origin anyway.
		a.origin[obj] = org
	}
}

// flagStore reports a finding when unverified taint-derived data of a
// data-bearing type is written to a location that outlives the call.
func (a *taintAnalysis) flagStore(lhs ast.Expr, origins map[types.Object]bool, pos token.Pos) {
	if len(origins) == 0 || !a.escapingTarget(lhs) {
		return
	}
	if !dataBearing(a.pkg.Info.TypeOf(lhs)) {
		return
	}
	for _, org := range a.unverified(origins) {
		a.report(pos, "unverified data derived from %q is stored in %s before any internal/crypt verification; authenticate on arrival (verify-before-use, paper §IV-E)", org.Name(), types.ExprString(lhs))
		return // one finding per store statement
	}
}

// escapingTarget reports whether the lvalue outlives the function call:
// struct fields, element writes through fields, package-level variables, and
// stores through dereferenced pointers. Writes to function-local variables
// (including named locals holding slices) stay local until themselves stored,
// so they are not sinks.
func (a *taintAnalysis) escapingTarget(lhs ast.Expr) bool {
	switch l := lhs.(type) {
	case *ast.SelectorExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.IndexExpr:
		return a.escapingTarget(l.X)
	case *ast.Ident:
		obj := a.pkg.Info.Uses[l]
		if obj == nil {
			return false
		}
		// Package-level variable: its scope parent is the package scope.
		v, ok := obj.(*types.Var)
		if !ok {
			return false
		}
		return v.Parent() == a.pkg.Types.Scope()
	default:
		return false
	}
}

// dataBearing reports whether the stored type can carry payload bytes worth
// authenticating: anything but a plain basic scalar (ints, bools, strings,
// floats). Counters and flags derived from header fields are not sinks.
func dataBearing(t types.Type) bool {
	if t == nil {
		return false
	}
	_, basic := t.Underlying().(*types.Basic)
	return !basic
}

// checkExprSinks scans an expression for decoder-entry calls with unverified
// taint-derived arguments, walks nested function literals, and propagates
// verification events that occur outside if-conditions (a bare
// `ok := merkle.Verify(...)` does NOT verify — only branching on it does, so
// plain expressions yield no events here).
func (a *taintAnalysis) checkExprSinks(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// The closure body executes with at least the current
			// verification state.
			a.walkStmt(n.Body)
			return false
		case *ast.CallExpr:
			a.checkDecoderSink(n)
		}
		return true
	})
}

// checkDecoderSink flags internal/erasure Decode/AddSeed calls that consume
// unverified taint-derived arguments.
func (a *taintAnalysis) checkDecoderSink(call *ast.CallExpr) {
	fn := a.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if !pathInModuleTree(a.cfg.ModulePath, fn.Pkg().Path(), "internal/erasure") || !decoderEntryNames[fn.Name()] {
		return
	}
	for _, arg := range call.Args {
		origins := a.exprOrigins(arg)
		for _, org := range a.unverified(origins) {
			a.report(call.Pos(), "unverified data derived from %q reaches erasure decoder %s; authenticate every packet before decoding (verify-before-use, paper §IV-E)", org.Name(), fn.Name())
			return
		}
	}
}

// calleeFunc resolves the called function object, if any.
func (a *taintAnalysis) calleeFunc(call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := a.pkg.Info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := a.pkg.Info.Uses[f.Sel].(*types.Func)
		return fn
	default:
		return nil
	}
}

// verifierEvents scans a condition expression for verification events and
// returns the origins they cover.
func (a *taintAnalysis) verifierEvents(cond ast.Expr) []types.Object {
	if cond == nil {
		return nil
	}
	covered := make(map[types.Object]bool)
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if a.isVerifierCall(n) {
				for _, arg := range n.Args {
					for org := range a.exprOrigins(arg) {
						covered[org] = true
					}
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				for _, side := range []ast.Expr{n.X, n.Y} {
					if call, ok := ast.Unparen(side).(*ast.CallExpr); ok && a.isCryptCall(call) {
						for _, arg := range call.Args {
							for org := range a.exprOrigins(arg) {
								covered[org] = true
							}
						}
					}
				}
			}
		}
		return true
	})
	out := make([]types.Object, 0, len(covered))
	for org := range covered {
		out = append(out, org)
	}
	return out
}

// isVerifierCall recognizes calls that constitute a verification event: a
// Verify* function from internal/crypt, or a named in-module wrapper.
func (a *taintAnalysis) isVerifierCall(call *ast.CallExpr) bool {
	fn := a.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if pathInModuleTree(a.cfg.ModulePath, fn.Pkg().Path(), "internal/crypt") && strings.HasPrefix(fn.Name(), "Verify") {
		return true
	}
	// In-module wrapper methods (SigContext.FullVerify, Handler.Authentic...).
	if strings.HasPrefix(fn.Pkg().Path(), a.cfg.ModulePath) && verifierWrapperNames[fn.Name()] {
		return true
	}
	return false
}

// isCryptCall reports whether the call targets any function of the module's
// internal/crypt tree (hashx.Sum in a comparison is the canonical case).
func (a *taintAnalysis) isCryptCall(call *ast.CallExpr) bool {
	fn := a.calleeFunc(call)
	return fn != nil && fn.Pkg() != nil && pathInModuleTree(a.cfg.ModulePath, fn.Pkg().Path(), "internal/crypt")
}

func (a *taintAnalysis) report(pos token.Pos, format string, args ...any) {
	a.diags = append(a.diags, Diagnostic{
		Pos:  a.pkg.Fset.Position(pos),
		Rule: RuleTaint,
		Msg:  fmt.Sprintf(format, args...),
	})
}
