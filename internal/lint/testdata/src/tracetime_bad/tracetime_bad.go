// Package tracetime_bad seeds every trace-sim-time violation class for the
// lrlint fixture tests: wall-clock time.Time smuggled into trace records and
// recording signatures.
package tracetime_bad

import "time"

// Record is a trace event struct with a wall-clock timestamp field.
type Record struct {
	At   time.Time // flagged: struct field
	Kind int
}

// Batch aggregates records keyed by a wall timestamp.
type Batch struct {
	ByTime map[time.Time][]Record // flagged: struct field (map key)
}

// Emit takes a pre-read wall timestamp from the caller.
func Emit(at time.Time, kind int) {
	_ = at
	_ = kind
}

// Stamp returns a wall timestamp pointer for later recording.
func Stamp() *time.Time {
	return nil
}
