// Package maprange_clean exercises every loop shape the map-range pass must
// accept: provably order-insensitive bodies and the directive escape hatch.
package maprange_clean

// Count accumulates an integer — commutative, auto-accepted.
func Count(m map[int]bool) int {
	n := 0
	for _, v := range m {
		if v {
			n++
		}
	}
	return n
}

// AnyNegative is an existence check returning a constant.
func AnyNegative(m map[int]int) bool {
	for _, v := range m {
		if v < 0 {
			return true
		}
	}
	return false
}

// DecrementAll updates and deletes only at the current key.
func DecrementAll(m map[int]int) {
	for k := range m {
		m[k]--
		if m[k] <= 0 {
			delete(m, k)
		}
	}
}

// CopyInto writes a distinct destination key per iteration.
func CopyInto(dst, src map[int]int) {
	for k, v := range src {
		dst[k] = v
	}
}

// Locals may be assigned freely: each iteration gets a fresh binding.
func SumCapped(m map[int]int, limit int) int {
	total := 0
	for _, v := range m {
		c := v
		if c > limit {
			c = limit
		}
		total += c
	}
	return total
}

// Justified demonstrates the escape hatch: the callback is known
// order-insensitive at this call site, recorded in the directive.
func Justified(m map[int]int, add func(int)) {
	//lrlint:ignore effect-purity add is a commutative accumulator at every call site
	for k := range m {
		add(k)
	}
}

// SliceRange is not a map range at all.
func SliceRange(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
