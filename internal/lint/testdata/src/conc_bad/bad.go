// Package concbad holds the harness-concurrency violations: worker-pool
// goroutines writing captured shared state without a mutex.
package concbad

import "sync"

// Results demonstrates the classic fan-out race: every worker writes the
// captured slice, counter, and map directly.
func Results(jobs []int) ([]int, int) {
	out := make([]int, len(jobs))
	seen := make(map[int]bool)
	total := 0
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i, j int) {
			defer wg.Done()
			out[i] = j * j // want: write through captured slice
			total += j     // want: captured counter
			seen[j] = true // want: write through captured map
		}(i, j)
	}
	wg.Wait()
	return out, total
}

// Latest demonstrates the ASSIGN-form range clause writing a captured
// variable on every iteration.
func Latest(ch chan int) int {
	last := 0
	done := make(chan struct{})
	go func() {
		for last = range ch { // want: ASSIGN-form range write
		}
		close(done)
	}()
	<-done
	return last
}
