// Package wallclock_clean uses only the legal, conversion-and-formatting
// surface of package time; the no-wallclock pass must stay silent.
package wallclock_clean

import "time"

// Tick is a virtual timestamp, not a wall-clock read.
const Tick = 10 * time.Millisecond

// Format renders a virtual duration.
func Format(d time.Duration) string { return d.String() }

// Scale converts a duration to nanoseconds.
func Scale(d time.Duration) int64 { return d.Nanoseconds() }
