// Package prov_bad holds streams the provenance trace cannot root in a
// seeded construction: every consumption here must be a finding.
package prov_bad

import "math/rand"

// pool fabricates streams behind an index expression, which the trace
// cannot see through.
func pool() []*rand.Rand {
	return make([]*rand.Rand, 4)
}

// leak returns an untraceable stream: its return expression is an element
// of a slice, not a rand.New construction.
func leak() *rand.Rand {
	return pool()[0]
}

// ConsumeLocal draws from a local whose single origin is untraceable.
func ConsumeLocal(n int) int {
	r := leak()
	return r.Intn(n)
}

// pickFrom consumes a parameter; the only call site passes an untraceable
// argument, so the parameter's origin set contains unknown.
func pickFrom(r *rand.Rand, n int) int64 {
	return r.Int63n(int64(n))
}

// CallWithLeak feeds the untraceable stream into pickFrom.
func CallWithLeak(n int) int {
	return int(pickFrom(leak(), n))
}

type holder struct {
	rng *rand.Rand
}

// ConsumeField draws from a field whose recorded assignment is untraceable.
func ConsumeField(n int) int {
	h := &holder{rng: leak()}
	return h.rng.Intn(n)
}
