// Package prov_clean holds stream shapes the provenance trace must accept:
// constructor-returned streams, locals, and fields filled from seeded calls.
package prov_clean

import "math/rand"

// newStream derives a stream from a seed; callers' consumptions trace
// through this function's return statement.
func newStream(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Draw consumes a stream obtained from a traced constructor call.
func Draw(seed int64, n int) int {
	r := newStream(seed)
	return r.Intn(n)
}

type comp struct {
	rng *rand.Rand
}

func newComp(seed int64) *comp {
	return &comp{rng: newStream(seed)}
}

// Sample consumes a component-owned stream; the field traces through the
// composite literal in newComp.
func Sample(seed int64) float64 {
	c := newComp(seed)
	return c.rng.Float64()
}

// pick consumes a parameter; both call sites below pass seeded streams.
func pick(r *rand.Rand, n int) int {
	return r.Intn(n)
}

// UseBoth exercises the parameter trace through two call sites.
func UseBoth(seed int64) int {
	a := pick(newStream(seed), 10)
	b := pick(rand.New(rand.NewSource(seed+1)), 10)
	return a + b
}
