// Package radio mirrors the production shape the provenance pass must prove
// clean: a component-owned stream constructed from a seed, consumed behind a
// module-declared interface.
package radio

import "math/rand"

// Loss decides packet drops; implementations draw from the stream handed in.
type Loss interface {
	Drop(quality float64, rng *rand.Rand) bool
}

// Bernoulli drops independently with probability 1-quality.
type Bernoulli struct{}

// Drop implements Loss. The rng parameter resolves through the interface
// call in Network.Deliver back to Network.rng and its seeded construction.
func (Bernoulli) Drop(quality float64, rng *rand.Rand) bool {
	return rng.Float64() > quality
}

// Network owns the channel stream.
type Network struct {
	rng  *rand.Rand
	loss Loss
}

// New seeds the network stream from the scenario seed.
func New(seed int64) *Network {
	return &Network{
		rng:  rand.New(rand.NewSource(seed)),
		loss: Bernoulli{},
	}
}

// Deliver consults the loss model with the network's own stream.
func (nw *Network) Deliver(quality float64) bool {
	return nw.loss.Drop(quality, nw.rng)
}
