module prov

go 1.22
