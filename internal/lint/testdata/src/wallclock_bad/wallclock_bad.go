// Package wallclock_bad seeds every no-wallclock violation class for the
// lrlint fixture tests.
package wallclock_bad

import "time"

// Violations consults the wall clock five different ways.
func Violations() time.Duration {
	start := time.Now()
	time.Sleep(time.Millisecond)
	<-time.After(time.Millisecond)
	t := time.NewTimer(time.Second)
	defer t.Stop()
	return time.Since(start)
}

// FuncValue leaks a wall-clock function as a value.
var FuncValue = time.Now
