// Package unusedignore_bad exercises the directive-hygiene findings: stale
// suppressions, unknown rule names, and unattached hotpath markers.
package unusedignore_bad

// Sum no longer ranges a map, so the directive below suppresses nothing and
// must be reported as stale.
func Sum(vals []int) int {
	total := 0
	//lrlint:ignore effect-purity iteration order does not matter here
	for _, v := range vals {
		total += v
	}
	return total
}

//lrlint:ignore no-such-rule the catalog has no rule by this name
func Unknown() int { return 1 }

// The marker below attaches to nothing: there is a blank line between it and
// the next declaration.
//lrlint:hotpath

var count int
