// Package lockdisc_bad exercises the CFG-level lock-discipline violations:
// writes not dominated by the owning mutex acquire.
package lockdisc_bad

import "sync"

// State is shared worker state with a declared owning mutex.
type State struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	count int
	last  int
}

// BranchyLock locks on only one branch: the write after the join is not
// dominated by the acquire.
func BranchyLock(s *State, cond bool, done chan struct{}) {
	go func() {
		if cond {
			s.mu.Lock()
		}
		s.count++ // held on one path only: must-analysis rejects
		if cond {
			s.mu.Unlock()
		}
		close(done)
	}()
}

// UnlockThenWrite releases before the write.
func UnlockThenWrite(s *State, done chan struct{}) {
	go func() {
		s.mu.Lock()
		s.count++
		s.mu.Unlock()
		s.last = s.count // after Unlock: lockset is empty again
		close(done)
	}()
}

// ReadLockWrite writes under an RLock; a read lock never justifies a write.
func ReadLockWrite(s *State, done chan struct{}) {
	go func() {
		s.rw.RLock()
		s.last++ // RLock held, but writes need the write lock
		s.rw.RUnlock()
		close(done)
	}()
}

// WrongMutex holds a different variable's lock than the one owning the
// written field.
func WrongMutex(a, b *State, done chan struct{}) {
	go func() {
		b.mu.Lock()
		a.count = 1 // a's owning mutex is a.mu, not b.mu
		b.mu.Unlock()
		close(done)
	}()
}

// LoopRelease acquires before the loop but releases inside it, so from the
// second iteration on the write is unprotected.
func LoopRelease(s *State, n int, done chan struct{}) {
	go func() {
		s.mu.Lock()
		for i := 0; i < n; i++ {
			s.count += i // not held on the back-edge path
			s.mu.Unlock()
		}
		close(done)
	}()
}

// PlainCaptured writes a captured local with no lock at all (the classic
// harness race the old syntactic pass caught).
func PlainCaptured(n int) int {
	total := 0
	done := make(chan struct{})
	go func() {
		for i := 0; i < n; i++ {
			total += i // captured, no mutex held anywhere
		}
		close(done)
	}()
	<-done
	return total
}
