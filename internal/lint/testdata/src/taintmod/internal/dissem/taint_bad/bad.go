// Package taintbad holds the verify-before-use violations the pass must
// catch. Each function is one bug shape; the golden expect.txt pins the
// findings.
package taintbad

import (
	"fix/internal/crypt/hashx"
	"fix/internal/crypt/merkle"
	"fix/internal/dissem"
	"fix/internal/erasure"
	"fix/internal/packet"
)

// Handler mirrors the production page-assembly state.
type Handler struct {
	root  [32]byte
	want  [32]byte
	buf   [][]byte
	pages [][]byte
	codec *erasure.Codec
}

// IngestNever stores the payload with no verification at all.
func (h *Handler) IngestNever(d *packet.Data) dissem.IngestResult {
	h.buf[int(d.Index)] = d.Payload // want: unverified store
	return dissem.Stored
}

// IngestLate buffers first and verifies after — the store has already
// committed unauthenticated bytes by the time Verify runs.
func (h *Handler) IngestLate(d *packet.Data) dissem.IngestResult {
	idx := int(d.Index)
	h.buf[idx] = append([]byte(nil), d.Payload...) // want: store before verify
	if !merkle.Verify(h.root, d.Payload, idx, d.Proof) {
		return dissem.Rejected
	}
	return dissem.Stored
}

// IngestDecode feeds unverified symbols straight into the erasure decoder —
// the decode-before-verify bug the pass exists to catch: a flood of forged
// symbols costs a decode each even though the hash check afterwards rejects
// the result.
func (h *Handler) IngestDecode(d *packet.Data) dissem.IngestResult {
	shards := [][]byte{d.Payload}
	page, err := h.codec.Decode(shards) // want: decode before verify
	if err != nil {
		return dissem.Rejected
	}
	if hashx.Sum(page) != h.want {
		return dissem.Rejected
	}
	h.pages = append(h.pages, page) // verified by the hash compare above: no finding
	return dissem.UnitComplete
}

// IngestRaw derives its data from packet.Unmarshal rather than a parameter;
// the result is just as much a receive-path source.
func (h *Handler) IngestRaw(frame []byte) dissem.IngestResult {
	d, err := packet.Unmarshal(frame)
	if err != nil {
		return dissem.Rejected
	}
	h.buf[0] = d.Payload // want: unverified store of Unmarshal result
	return dissem.Stored
}
