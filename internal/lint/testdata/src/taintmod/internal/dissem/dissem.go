// Package dissem is the fixture protocol-core package: ingest result codes
// and the signature-verification wrapper whose method names (FullVerify,
// WeakCheck, ...) the taint pass recognizes as verification events.
package dissem

import (
	"fix/internal/crypt/hashx"
	"fix/internal/packet"
)

// IngestResult mirrors the production ingest outcome enum.
type IngestResult int

// Ingest outcomes.
const (
	Rejected IngestResult = iota
	Stored
	UnitComplete
)

// SigContext wraps signature verification state.
type SigContext struct {
	pub [32]byte
}

// FullVerify checks a signature packet (toy logic — fixture only).
func (c *SigContext) FullVerify(s *packet.Sig) bool {
	return hashx.Sum(s.Raw) == c.pub
}
