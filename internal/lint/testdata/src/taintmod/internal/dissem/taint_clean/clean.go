// Package taintclean holds the blessed verify-then-use shapes: every path to
// a store or decode passes a verification event first, plus one documented
// //lrlint:ignore exception. The pass must stay silent here.
package taintclean

import (
	"fix/internal/crypt/hashx"
	"fix/internal/crypt/merkle"
	"fix/internal/dissem"
	"fix/internal/erasure"
	"fix/internal/packet"
)

// Handler mirrors the production page-assembly state.
type Handler struct {
	root   [32]byte
	want   [32]byte
	buf    [][]byte
	pages  [][]byte
	codec  *erasure.Codec
	sigCtx *dissem.SigContext
}

// IngestM0 is the early-exit Merkle guard: verify, reject, then store.
func (h *Handler) IngestM0(d *packet.Data) dissem.IngestResult {
	idx := int(d.Index)
	if !merkle.Verify(h.root, d.Payload, idx, d.Proof) {
		return dissem.Rejected
	}
	h.buf[idx] = append([]byte(nil), d.Payload...)
	return dissem.Stored
}

// IngestPage is the hash-compare verifier form.
func (h *Handler) IngestPage(d *packet.Data) dissem.IngestResult {
	if hashx.Sum(d.Payload) != h.want {
		return dissem.Rejected
	}
	h.buf[int(d.Index)] = d.Payload
	return dissem.Stored
}

// IngestSig goes through the in-module wrapper (FullVerify) before storing
// non-scalar signature state.
func (h *Handler) IngestSig(s *packet.Sig) dissem.IngestResult {
	if !h.sigCtx.FullVerify(s) {
		return dissem.Rejected
	}
	h.root = s.Root
	return dissem.Stored
}

// IngestDecode verifies the symbol BEFORE it reaches the decoder.
func (h *Handler) IngestDecode(d *packet.Data) dissem.IngestResult {
	idx := int(d.Index)
	if !merkle.Verify(h.root, d.Payload, idx, d.Proof) {
		return dissem.Rejected
	}
	page, err := h.codec.Decode([][]byte{d.Payload})
	if err != nil {
		return dissem.Rejected
	}
	h.pages = append(h.pages, page)
	return dissem.UnitComplete
}

// IngestBaseline is the documented exception: an intentionally
// unauthenticated store behind a justified directive, mirroring the Deluge
// baseline in the production tree.
func (h *Handler) IngestBaseline(d *packet.Data) dissem.IngestResult {
	//lrlint:ignore verify-before-use fixture baseline is intentionally unauthenticated, mirroring Deluge
	h.buf[0] = d.Payload
	return dissem.Stored
}
