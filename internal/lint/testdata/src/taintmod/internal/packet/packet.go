// Package packet is the fixture stand-in for the real wire-format package:
// the taint pass identifies receive-path sources by the internal/packet path
// suffix and the Data/Sig type names, so this mini-module exercises it
// without importing the production tree.
package packet

import "errors"

// Data is one received data packet.
type Data struct {
	Unit    uint16
	Index   uint16
	Payload []byte
	Proof   [][32]byte
}

// Sig is one received signature packet.
type Sig struct {
	Root  [32]byte
	Pages uint16
	Raw   []byte
}

// Unmarshal parses a received frame; its result is a taint source.
func Unmarshal(b []byte) (*Data, error) {
	if len(b) < 4 {
		return nil, errors.New("short packet")
	}
	return &Data{
		Unit:    uint16(b[0])<<8 | uint16(b[1]),
		Index:   uint16(b[2])<<8 | uint16(b[3]),
		Payload: b[4:],
	}, nil
}
