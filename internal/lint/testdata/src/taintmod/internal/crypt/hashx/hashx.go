// Package hashx is the fixture hash package; a comparison against its Sum
// output is a verification event for the taint pass.
package hashx

// Sum is a toy digest (NOT cryptographic — fixture only).
func Sum(b []byte) [32]byte {
	var out [32]byte
	for i, c := range b {
		out[i%32] ^= c
	}
	return out
}
