// Package merkle is the fixture Merkle package; its Verify call is a
// verification event for the taint pass.
package merkle

import "fix/internal/crypt/hashx"

// Verify checks a leaf against the root (toy logic — fixture only).
func Verify(root [32]byte, leaf []byte, idx int, proof [][32]byte) bool {
	h := hashx.Sum(leaf)
	for _, p := range proof {
		for i := range h {
			h[i] ^= p[i]
		}
	}
	return h == root && idx >= 0
}
