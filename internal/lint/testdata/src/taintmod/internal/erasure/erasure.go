// Package erasure is the fixture decoder; feeding its Decode entry point
// unverified packet-derived data is a taint-pass sink.
package erasure

import "errors"

// Codec is a toy k-of-k "code" (fixture only).
type Codec struct {
	k int
}

// New returns a codec expecting k shards.
func New(k int) *Codec { return &Codec{k: k} }

// Decode concatenates the shards; nil shards are an error.
func (c *Codec) Decode(shards [][]byte) ([]byte, error) {
	if len(shards) != c.k {
		return nil, errors.New("wrong shard count")
	}
	var out []byte
	for _, s := range shards {
		if s == nil {
			return nil, errors.New("missing shard")
		}
		out = append(out, s...)
	}
	return out, nil
}
