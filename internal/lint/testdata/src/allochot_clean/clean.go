// Package allochot_clean holds the allocation shapes alloc-hotpath must NOT
// flag: preallocated appends, pre-header range expressions, cold subtrees,
// pointer-shaped interface arguments, and cold functions entirely.
package allochot_clean

import (
	"errors"
	"fmt"
)

// Sink abstracts the output; Put takes a pointer, which never boxes.
type Sink interface {
	Put(s *Shard)
}

// Shard is one encoded block.
type Shard struct {
	Data []byte
}

//lrlint:hotpath
func EncodeAll(blocks [][]byte, sink Sink) ([][]byte, error) {
	if len(blocks) == 0 {
		return nil, errors.New("no blocks") // cold: errors call outside loop
	}
	out := make([][]byte, 0, len(blocks)) // make with capacity, outside loop
	buf := make([]byte, len(blocks)*8)
	scratch := buf[0:0:8] // full-slice expression pins capacity
	sh := &Shard{}        // hoisted record, reused every iteration
	for i, b := range blocks {
		if len(b) == 0 {
			// Cold subtrees: failure formatting and panic arguments.
			panic(fmt.Sprintf("empty block %d", i))
		}
		out = append(out, b)            // append into preallocated slice
		scratch = append(scratch, b[0]) // full-slice base is preallocated
		sh.Data = b
		sink.Put(sh) // pointer arg: no boxing
	}
	return out, nil
}

//lrlint:hotpath
func SumRows(table map[string][]int) int {
	total := 0
	// The range expression evaluates once, in the loop pre-header: the
	// conversion below must not be treated as per-iteration.
	for _, c := range []byte(keyOf(table)) {
		total += int(c)
	}
	return total
}

func keyOf(map[string][]int) string { return "k" }

// coldSetup is NOT reachable from any hot root or marker: its loop
// allocations are fine.
func coldSetup(n int) [][]byte {
	var out [][]byte
	for i := 0; i < n; i++ {
		out = append(out, make([]byte, n))
	}
	return out
}
