// Package rngclean holds the blessed RNG ownership idiom: each component
// privately owns one stream constructed from a seed that flowed in as a
// parameter, constructors may return the owning component (not the stream),
// and streams are handed DOWN through parameters at construction time. The
// rng-stream-discipline pass must stay silent here.
package rngclean

import "math/rand"

// Node privately owns its stream — the unexported field is the ownership
// record.
type Node struct {
	id  int
	rng *rand.Rand
}

// NewNode derives the node's stream from the scenario seed chain. Returning
// *Node is fine: the component owns a stream, it does not surface one.
func NewNode(id int, seed int64) *Node {
	return &Node{
		id:  id,
		rng: rand.New(rand.NewSource(seed ^ (int64(id)*0x9e3779b9 + 1))),
	}
}

// Jitter consumes the node's own stream.
func (n *Node) Jitter(max int) int {
	if max <= 0 {
		return 0
	}
	return n.rng.Intn(max)
}

// timer receives a stream as a parameter — the blessed hand-DOWN idiom used
// by trickle.New(eng, rng, ...).
type timer struct {
	rng *rand.Rand
}

// newTimer takes ownership of the stream its caller derived.
func newTimer(rng *rand.Rand) *timer {
	return &timer{rng: rng}
}

// Pair derives two INDEPENDENT streams from two sources.
func Pair(seed int64) (a, b int) {
	r1 := rand.New(rand.NewSource(seed))
	r2 := rand.New(rand.NewSource(seed + 1))
	t := newTimer(r2)
	return r1.Intn(10), t.rng.Intn(10)
}
