// Package errcheck_bad seeds unchecked-error violations: every dropped
// error below would silently accept forged or corrupt data.
package errcheck_bad

import "errors"

var errForged = errors.New("forged packet")

func verify() error { return errForged }

func decode() (int, error) { return 0, errForged }

// Violations drops errors four different ways.
func Violations() int {
	verify()
	n, _ := decode()
	defer verify()
	go verify()
	return n
}
