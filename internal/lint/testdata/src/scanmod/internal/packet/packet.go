// Package packet mirrors the real module's internal/packet so the NodeID
// population binding of DefaultConfig applies to this fixture module too.
package packet

// NodeID is classified `nodes` through Config.PopulationTypes.
type NodeID uint16
