// Package ev exercises the scan-complexity pass: Deliver and Tick are
// per-event roots via //lrlint:eventroot, population classes come from both
// the config binding on packet.NodeID and the //lrlint:population directives
// below, and the helpers pin the interprocedural parameter and struct-field
// propagation.
package ev

import "scanmod/internal/packet"

// Cluster is a plain int slice bound to the nodes class by directive.
//
//lrlint:population nodes
type Cluster []int

// Ring is degree-bounded; loops over it are fine inside event code.
//
//lrlint:population neighbors
type Ring []int

// state.dist is a plain []int; only the field fixpoint (its size comes from
// a nodes-classified slice at construction) can classify it.
type state struct {
	dist []int
}

// NewState sizes dist by the node count.
func NewState(ids []packet.NodeID) *state {
	return &state{dist: make([]int, len(ids))}
}

// Deliver is the per-event entry point of the fixture.
//
//lrlint:eventroot fixture pins the directive-marked root path
func Deliver(tbl map[packet.NodeID]int, s *state, ring Ring) int {
	t := 0
	for id := range tbl {
		t += tbl[id]
	}
	t += scanAll(s.dist)
	for _, v := range ring {
		t += v
	}
	for i := 0; i < 16; i++ {
		t += i
	}
	t += justified(tbl)
	return t
}

// scanAll's parameter is classified nodes through the Deliver call site.
func scanAll(d []int) int {
	t := 0
	for i := 0; i < len(d); i++ {
		t += d[i]
	}
	return t
}

// justified documents why its scan is acceptable; the directive suppresses
// the finding.
func justified(tbl map[packet.NodeID]int) int {
	n := 0
	//lrlint:ignore scan-complexity fixture pins the justified-scan path
	for range tbl {
		n++
	}
	return n
}

// Tick's loop is classified nodes through the Cluster type directive.
//
//lrlint:eventroot fixture pins the population directive on a named type
func Tick(c Cluster) int {
	t := 0
	for _, v := range c {
		t += v
	}
	return t
}

// Pairwise is not event-reachable: the inner scan is a finding purely for
// being an O(nodes) loop nested inside another one.
func Pairwise(ids []packet.NodeID) int {
	c := 0
	for range ids {
		for range ids {
			c++
		}
	}
	return c
}
