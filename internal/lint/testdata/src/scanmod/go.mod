module scanmod

go 1.22
