// Package directivespan is the regression fixture for directive statement-
// span coverage: the //lrlint:ignore sits on the line above a MULTI-LINE
// statement, while the flagged call is on a continuation line further down.
// Before the span fix only findings on the directive's line or the next line
// were suppressed, so this leaked a no-wallclock finding.
package directivespan

import "time"

// Deadline stamps orchestration metadata; the wall-clock read is a
// documented exception wrapped across several lines.
func Deadline(budget time.Duration) time.Time {
	//lrlint:ignore effect-purity fixture pins directive coverage across a wrapped multi-line statement
	deadline := at(
		time.Now(),
		budget,
	)
	return deadline
}

func at(t time.Time, d time.Duration) time.Time {
	return t.Add(d)
}
