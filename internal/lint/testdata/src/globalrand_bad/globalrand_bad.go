// Package globalrand_bad seeds no-global-rand violations for the lrlint
// fixture tests: every draw below consumes the process-global source.
package globalrand_bad

import "math/rand"

// Violations draws from the global math/rand source four ways.
func Violations() float64 {
	n := rand.Intn(10)
	f := rand.Float64()
	rand.Shuffle(n, func(i, j int) {})
	return f + float64(rand.Int63())
}

// FuncValue leaks a global-source function as a value.
var FuncValue = rand.Perm
