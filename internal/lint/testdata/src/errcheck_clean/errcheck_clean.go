// Package errcheck_clean handles every error and exercises the hash.Hash
// exemption: Write on a hash implementation is specified to never fail, so
// the idiomatic bare call must not be flagged.
package errcheck_clean

import "errors"

var errCorrupt = errors.New("corrupt packet")

func verify() error { return errCorrupt }

func decode() (int, error) { return 0, errCorrupt }

// Checked consumes every error result.
func Checked() (int, error) {
	if err := verify(); err != nil {
		return 0, err
	}
	n, err := decode()
	if err != nil {
		return 0, err
	}
	return n, nil
}

// fakeHash satisfies the hash.Hash method set structurally.
type fakeHash struct{ n int }

func (h *fakeHash) Write(p []byte) (int, error) { h.n += len(p); return len(p), nil }
func (h *fakeHash) Sum(b []byte) []byte         { return append(b, byte(h.n)) }
func (h *fakeHash) Reset()                      { h.n = 0 }
func (h *fakeHash) Size() int                   { return 1 }
func (h *fakeHash) BlockSize() int              { return 64 }

// Digest drops Write's error, which is exempt for hash.Hash implementers.
func Digest(data []byte) []byte {
	h := &fakeHash{}
	h.Write(data)
	return h.Sum(nil)
}
