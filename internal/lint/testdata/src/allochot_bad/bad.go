// Package allochot_bad exercises every alloc-hotpath finding shape. The
// package sits under fix/internal/erasure so findings are reportable; the
// roots are declared with //lrlint:hotpath markers.
package allochot_bad

import "io"

// Sink abstracts the output; Emit's any parameter boxes value arguments.
type Sink interface {
	Emit(v any)
}

// Symbol is a small value type; passing it to Emit boxes it.
type Symbol struct {
	Index int
	Data  []byte
}

//lrlint:hotpath
func EncodeAll(blocks [][]byte, sink Sink) [][]byte {
	var out [][]byte
	for _, b := range blocks {
		shard := make([]byte, len(b)) // make in loop
		copy(shard, b)
		out = append(out, shard)         // append growth, no visible capacity
		sink.Emit(Symbol{Index: len(b)}) // interface boxing (also in loop)
		hdr := []byte("hdr")             // conversion in loop
		_ = hdr
		tmp := []int{1, 2, 3} // slice composite literal in loop
		_ = tmp
		cfg := &Symbol{Index: 1} // &composite in loop
		_ = cfg
	}
	return helper(out)
}

// helper is reachable from EncodeAll, so its loops are hot too.
func helper(blocks [][]byte) [][]byte {
	for range blocks {
		defer release() // defer in loop
		f := func() int { return 1 }
		_ = f() // closure allocated per iteration
	}
	return blocks
}

//lrlint:hotpath
func WriteAll(w io.Writer, rows [][]byte) {
	for _, r := range rows {
		variadicJoin(r, r) // variadic call materializes a slice per iteration
	}
}

func variadicJoin(parts ...[]byte) []byte {
	var out []byte
	for _, p := range parts {
		out = append(out, p...) // append growth inside a hot callee
	}
	return out
}

func release() {}
