// Package lockdisc_clean holds the goroutine shapes lock-discipline must
// accept: writes dominated by the owning mutex on every path, deferred
// unlocks, channel-only communication, and goroutine-local state.
package lockdisc_clean

import "sync"

// State is shared worker state with a declared owning mutex.
type State struct {
	mu    sync.Mutex
	count int
	last  int
}

// BothBranches acquires on every path before the write after the join.
func BothBranches(s *State, cond bool, done chan struct{}) {
	go func() {
		if cond {
			s.mu.Lock()
		} else {
			s.mu.Lock()
		}
		s.count++ // held on both join predecessors
		s.mu.Unlock()
		close(done)
	}()
}

// DeferUnlock holds the lock to the end of the goroutine; a deferred Unlock
// releases nothing at the defer statement itself.
func DeferUnlock(s *State, n int, done chan struct{}) {
	go func() {
		defer close(done)
		s.mu.Lock()
		defer s.mu.Unlock()
		for i := 0; i < n; i++ {
			s.count += i // still held on the back edge
		}
		s.last = s.count
	}()
}

// Channels communicates over a channel and keeps all mutation goroutine-local
// — the harness's preferred shape.
func Channels(jobs []int) []int {
	results := make(chan int, len(jobs))
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			local := v * v // goroutine-local: declared inside the literal
			local++
			results <- local
		}(j)
	}
	wg.Wait()
	close(results)
	out := make([]int, 0, len(jobs))
	for r := range results {
		out = append(out, r)
	}
	return out
}

// NestedSameGoroutine: a non-go nested literal runs on the same goroutine
// and inherits the lockset live at its position.
func NestedSameGoroutine(s *State, apply func(func()), done chan struct{}) {
	go func() {
		s.mu.Lock()
		apply(func() {
			s.count++ // the outer Lock is still held here
		})
		s.mu.Unlock()
		close(done)
	}()
}
