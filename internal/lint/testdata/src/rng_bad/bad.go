// Package rngbad holds the rng-stream-discipline violations: package-level
// stream state, exported stream surfaces, a shared source feeding two
// streams, and a constant seed.
package rngbad

import "math/rand"

// want: package-level variable holds an RNG stream
var sharedRNG *rand.Rand

// want: package-level struct var transitively owning a stream is still
// package state
var defaultDraws = struct {
	r *rand.Rand
	n int
}{}

// Component exposes its stream through an exported field. want finding.
type Component struct {
	Stream *rand.Rand // want: exported field exposes a stream
	seed   int64
}

// StreamOf leaks the internal stream to arbitrary callers. want finding.
func StreamOf(c *Component) *rand.Rand {
	return c.stream()
}

func (c *Component) stream() *rand.Rand {
	return rand.New(rand.NewSource(c.seed))
}

// Entangled feeds one source into two rand.New streams; their draws
// interleave and become schedule-order-sensitive. want finding on the second
// rand.New.
func Entangled(seed int64) (a, b float64) {
	src := rand.NewSource(seed)
	r1 := rand.New(src)
	r2 := rand.New(src) // want: shared source
	return r1.Float64(), r2.Float64()
}

// FixedSeed constructs a stream that ignores the scenario seed. want finding.
func FixedSeed() float64 {
	r := rand.New(rand.NewSource(42)) // want: constant seed
	return r.Float64()
}
