// Package concclean holds the blessed concurrency shapes: channel-mediated
// results merged on the caller's goroutine, mutex-guarded shared writes, and
// goroutine-local state. The harness-concurrency pass must stay silent here.
package concclean

import "sync"

// Results is the ordered-merge discipline the production harness uses:
// workers only SEND; the caller's goroutine owns the output slice.
func Results(jobs []int) []int {
	type res struct{ i, v int }
	resCh := make(chan res)
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i, j int) {
			defer wg.Done()
			v := j * j // goroutine-local
			resCh <- res{i: i, v: v}
		}(i, j)
	}
	go func() {
		wg.Wait()
		close(resCh)
	}()
	out := make([]int, len(jobs))
	for r := range resCh {
		out[r.i] = r.v // merge on the caller's goroutine
	}
	return out
}

// Guarded shows a mutex-held shared write, which the pass accepts.
func Guarded(jobs []int) int {
	var mu sync.Mutex
	total := 0
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			mu.Lock()
			total += j
			mu.Unlock()
		}(j)
	}
	wg.Wait()
	return total
}

// DeferGuarded holds the lock via defer for the goroutine's whole body.
func DeferGuarded(jobs []int, state map[int]int) {
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			mu.Lock()
			defer mu.Unlock()
			state[j] = j * j
		}(j)
	}
	wg.Wait()
}
