// Package maprange_bad seeds map-range-determinism violations: each loop
// below leaks map iteration order into program state.
package maprange_bad

type entry struct{ weight int }

// Keys appends map keys in iteration order — the canonical leak.
func Keys(m map[int]*entry) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SumFloats accumulates float64, whose addition is not associative, so even
// a "pure sum" depends on iteration order.
func SumFloats(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}

// Visit calls out to an arbitrary function, which may observe order.
func Visit(m map[int]*entry, f func(int)) {
	for k := range m {
		f(k)
	}
}

// EvictOther deletes a key other than the current one from the ranged map;
// whether the range still produces that entry depends on order.
func EvictOther(m map[int]bool, victim int) {
	for k := range m {
		if k != victim {
			delete(m, victim)
		}
	}
}

// Unjustified carries a malformed directive (missing the reason), which is
// itself a finding and does not suppress the map-range finding.
func Unjustified(m map[int]int, f func(int)) {
	//lrlint:ignore map-range
	for k := range m {
		f(k)
	}
}
