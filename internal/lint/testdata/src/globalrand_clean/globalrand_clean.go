// Package globalrand_clean threads an explicitly seeded stream, the pattern
// the no-global-rand pass requires.
package globalrand_clean

import "math/rand"

// Draw samples from a stream fully determined by seed.
func Draw(seed int64) (int, float64) {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10), rng.Float64()
}

// Shuffled permutes a copy of xs deterministically.
func Shuffled(xs []int, rng *rand.Rand) []int {
	out := append([]int(nil), xs...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
