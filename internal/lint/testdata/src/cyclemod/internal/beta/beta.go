// Package beta completes the import cycle with alpha.
package beta

import "cyc/internal/alpha"

func B() int { return alpha.A() }
