// Package alpha imports beta, which imports alpha back: the loader must
// reject the cycle up front instead of deadlocking the Once-based parallel
// type-check.
package alpha

import "cyc/internal/beta"

func A() int { return beta.B() }
