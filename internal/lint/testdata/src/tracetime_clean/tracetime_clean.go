// Package tracetime_clean holds the legal counterparts of the
// tracetime_bad fixture: virtual int64-nanosecond timestamps and pure
// durations, which carry no clock reading.
package tracetime_clean

import "time"

// SimTime mirrors the simulator's virtual clock type.
type SimTime int64

// Record is a trace event stamped on the virtual clock.
type Record struct {
	At   SimTime
	Kind int
}

// Emit records one event at a virtual timestamp.
func Emit(at SimTime, kind int) {
	_ = at
	_ = kind
}

// Budget is a pure duration — legal, it carries no clock reading.
func Budget(d time.Duration) time.Duration {
	return 2 * d
}
