// Package util sits outside internal/, so the legacy per-package wallclock
// scope does not apply here: every wallclock/fs/net/spawn finding in this
// file must come from reachability off the experiment roots. The global-rand
// draw is the exception — its scope is the whole module.
package util

import (
	"math/rand"
	"net/http"
	"os"
	"time"
)

// WallDelay is reached by a direct call from experiment.Run.
func WallDelay() { time.Sleep(time.Millisecond) }

// Timestamp declares its effect: no finding here, and none at its callers —
// the declaration is a justified boundary for the whole subtree.
//
//lrlint:effects(wallclock) fixture pins the declared-boundary path
func Timestamp() int64 { return time.Now().UnixNano() }

// Recurse and helper are mutually recursive, so they form one SCC; the go
// statement inside the cycle must still surface at the root.
func Recurse(n int) {
	if n > 0 {
		helper(n - 1)
	}
}

func helper(n int) {
	go Recurse(n)
}

// NetHandler is reached from experiment.Run only through interface dispatch.
type NetHandler struct{}

func (NetHandler) Handle(int) {
	resp, err := http.Get("http://example.invalid/")
	if err == nil {
		resp.Body.Close()
	}
}

// TouchDisk is reached from experiment.Run only as a function value handed
// to a scheduler, exercising the reference edges of the flow graph.
func TouchDisk() {
	if b, err := os.ReadFile("state"); err == nil {
		_ = b
	}
}

// Tally's map walk is order-sensitive (string concatenation); util is not an
// OrderedPackages member, so the finding must come from the RunGrid root.
func Tally(m map[int]int) int {
	s := ""
	for k := range m {
		s += string(rune(k))
	}
	return len(s)
}

// Seed is unreachable from any root; the global-source draw is still a
// finding because the rand scope covers the whole module.
func Seed() int { return rand.Int() }

// Stale declares an effect neither it nor anything it calls produces; the
// declaration itself is the finding.
//
//lrlint:effects(fs) fixture pins the stale-declaration check
func Stale() int { return 7 }
