// Package experiment mirrors the real module's deterministic entry points:
// its Run and RunGrid match the internal/experiment EffectRoots of
// DefaultConfig, so everything reachable from them must be effect-free up to
// declared boundaries.
package experiment

import "effmod/util"

type handler interface{ Handle(int) }

// Run is a deterministic root. Each call below pins one propagation path of
// the effect-purity pass: a direct call, a declared boundary, an SCC, an
// interface dispatch, and a function-value reference.
func Run(hs []handler) {
	util.WallDelay()
	util.Timestamp()
	util.Recurse(3)
	for _, h := range hs {
		h.Handle(1)
	}
	schedule(util.TouchDisk)
}

func schedule(f func()) { f() }

// RunGrid is the second root; it reaches the order-sensitive map walk.
func RunGrid() int { return util.Tally(map[int]int{1: 1}) }
