module effmod

go 1.22
