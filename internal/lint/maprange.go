package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file holds the order-insensitivity proof behind the maporder effect
// (effects.go): a map range whose body provably commutes across iteration
// orders is not an effect at all. It survives from the retired standalone
// map-range pass, whose per-package scope the effect-purity pass now covers.

// orderInsensitive reports whether the final program state after running the
// loop body once per map entry is provably independent of entry order. The
// analysis is deliberately conservative: it accepts only a small grammar of
// commutative statements —
//
//   - delete(m, k), as long as m is not the ranged map itself or k is
//     exactly the loop key (deleting other keys of the ranged map changes
//     which entries the range produces);
//   - integer accumulation: ++/-- and the commutative-and-associative
//     op-assignments += -= |= &= ^= on integer lvalues (float addition is
//     not associative and is rejected);
//   - writes keyed by the loop key: m2[k] = pureExpr and slice[k] = pureExpr
//     hit a distinct location per iteration;
//   - writes to variables declared inside the loop body (fresh per
//     iteration);
//   - min/max folds: `if x > best { best = x }` and its orientations —
//     min and max are commutative and associative over every ordered type
//     (floats included), so the fold's result is order-independent;
//   - `return` of constants only (existence checks like `return true`);
//   - `continue`, `if` with pure conditions, and nested loops over non-map
//     operands whose bodies satisfy the same rules.
//
// Any function or method call other than the builtins len/cap/min/max,
// delete, or a type conversion defeats the analysis: calls may observe
// global state, so ordering could be visible through them.
func orderInsensitive(rs *ast.RangeStmt, info *types.Info) bool {
	a := &orderAnalysis{
		info:      info,
		rangedMap: types.ExprString(rs.X),
		keyObj:    rangeVarObj(rs.Key, info),
		bodyPos:   rs.Body.Pos(),
		bodyEnd:   rs.Body.End(),
	}
	return a.stmtOK(rs.Body)
}

type orderAnalysis struct {
	info      *types.Info
	rangedMap string // types.ExprString of the ranged operand
	keyObj    types.Object
	bodyPos   token.Pos
	bodyEnd   token.Pos
}

// rangeVarObj resolves the object bound by a range clause variable.
func rangeVarObj(e ast.Expr, info *types.Info) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

func (a *orderAnalysis) stmtOK(s ast.Stmt) bool {
	switch s := s.(type) {
	case nil:
		return true
	case *ast.BlockStmt:
		for _, st := range s.List {
			if !a.stmtOK(st) {
				return false
			}
		}
		return true
	case *ast.IfStmt:
		if a.minMaxFoldOK(s) {
			return true
		}
		return a.stmtOK(s.Init) && a.pureExpr(s.Cond) && a.stmtOK(s.Body) && a.stmtOK(s.Else)
	case *ast.ExprStmt:
		return a.deleteCallOK(s.X)
	case *ast.IncDecStmt:
		return a.integerLvalue(s.X) && a.commutativeTarget(s.X)
	case *ast.AssignStmt:
		return a.assignOK(s)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				return false
			}
			for _, v := range vs.Values {
				if !a.pureExpr(v) {
					return false
				}
			}
		}
		return true
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			tv, ok := a.info.Types[r]
			if !ok || tv.Value == nil {
				return false // non-constant result leaks iteration order
			}
		}
		return true
	case *ast.BranchStmt:
		// break/goto make how much of the map gets processed depend on
		// order; continue merely skips one independent iteration.
		return s.Tok == token.CONTINUE && s.Label == nil
	case *ast.RangeStmt:
		t := a.info.TypeOf(s.X)
		if t == nil {
			return false
		}
		if _, isMap := t.Underlying().(*types.Map); isMap {
			return false // nested map range is its own finding
		}
		return a.pureExpr(s.X) && a.stmtOK(s.Body)
	case *ast.ForStmt:
		return a.stmtOK(s.Init) && (s.Cond == nil || a.pureExpr(s.Cond)) && a.stmtOK(s.Post) && a.stmtOK(s.Body)
	default:
		return false
	}
}

// minMaxFoldOK accepts the running-extremum idiom: an if statement whose
// condition compares two pure expressions with an ordering operator and
// whose body is exactly one assignment copying one side of the comparison
// into the other. Whatever the orientation, the accumulator ends up holding
// the minimum or maximum over all iterations, and min/max are commutative
// and associative over every ordered type — floats included, unlike float
// addition — so the final state is iteration-order-independent.
func (a *orderAnalysis) minMaxFoldOK(s *ast.IfStmt) bool {
	if s.Init != nil || s.Else != nil || len(s.Body.List) != 1 {
		return false
	}
	cond, ok := s.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch cond.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ:
	default:
		return false
	}
	if !a.pureExpr(cond.X) || !a.pureExpr(cond.Y) {
		return false
	}
	asn, ok := s.Body.List[0].(*ast.AssignStmt)
	if !ok || asn.Tok != token.ASSIGN || len(asn.Lhs) != 1 || len(asn.Rhs) != 1 {
		return false
	}
	lhs, rhs := types.ExprString(asn.Lhs[0]), types.ExprString(asn.Rhs[0])
	x, y := types.ExprString(cond.X), types.ExprString(cond.Y)
	if !(lhs == x && rhs == y) && !(lhs == y && rhs == x) {
		return false
	}
	// The accumulator must be a commutative-safe target (not an arbitrary
	// entry of the ranged map).
	switch l := asn.Lhs[0].(type) {
	case *ast.Ident:
		return l.Name != "_"
	case *ast.SelectorExpr:
		return a.pureExpr(l)
	case *ast.IndexExpr:
		return a.pureExpr(l) && a.rangedMapIndexOK(l)
	default:
		return false
	}
}

// assignOK accepts commutative integer op-assignments and plain writes whose
// targets are per-iteration distinct (keyed by the loop key or declared
// inside the body).
func (a *orderAnalysis) assignOK(s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		for _, lhs := range s.Lhs {
			if !a.integerLvalue(lhs) || !a.commutativeTarget(lhs) {
				return false
			}
		}
	case token.ASSIGN, token.DEFINE:
		for _, lhs := range s.Lhs {
			if !a.distinctTarget(lhs, s.Tok) {
				return false
			}
		}
	default:
		return false
	}
	for _, rhs := range s.Rhs {
		if !a.pureExpr(rhs) {
			return false
		}
	}
	return true
}

// commutativeTarget accepts lvalues whose accumulation commutes: any
// variable or field, or an index expression with pure parts. Touching the
// ranged map itself is allowed only at the current key — updating other
// entries mid-iteration is visible to iterations that read them.
func (a *orderAnalysis) commutativeTarget(lhs ast.Expr) bool {
	switch l := lhs.(type) {
	case *ast.Ident:
		return l.Name != "_"
	case *ast.SelectorExpr:
		return a.pureExpr(l)
	case *ast.IndexExpr:
		return a.pureExpr(l) && a.rangedMapIndexOK(l)
	default:
		return false
	}
}

// rangedMapIndexOK reports whether an index expression either leaves the
// ranged map alone or addresses exactly the current key.
func (a *orderAnalysis) rangedMapIndexOK(l *ast.IndexExpr) bool {
	if types.ExprString(l.X) != a.rangedMap {
		return true
	}
	keyID, ok := l.Index.(*ast.Ident)
	return ok && a.keyObj != nil && a.info.Uses[keyID] == a.keyObj
}

// distinctTarget accepts plain-assignment targets that touch a distinct
// location each iteration: blanks, body-local variables, and container
// writes indexed by the loop key.
func (a *orderAnalysis) distinctTarget(lhs ast.Expr, tok token.Token) bool {
	switch l := lhs.(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return true
		}
		if tok == token.DEFINE {
			if obj := a.info.Defs[l]; obj != nil {
				return true // fresh per-iteration binding
			}
		}
		obj := a.info.Uses[l]
		if obj == nil {
			obj = a.info.Defs[l]
		}
		return obj != nil && obj.Pos() >= a.bodyPos && obj.Pos() < a.bodyEnd
	case *ast.IndexExpr:
		if !a.pureExpr(l.X) || !a.pureExpr(l.Index) {
			return false
		}
		return a.rangedMapIndexOK(l) && a.mentionsKey(l.Index)
	default:
		return false
	}
}

// mentionsKey reports whether the expression references the loop key
// variable, making container writes land on per-iteration distinct keys.
func (a *orderAnalysis) mentionsKey(e ast.Expr) bool {
	if a.keyObj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && a.info.Uses[id] == a.keyObj {
			found = true
		}
		return !found
	})
	return found
}

// integerLvalue reports whether the expression has integer type (the only
// type whose + and ^ accumulations are associative and commutative exactly).
func (a *orderAnalysis) integerLvalue(e ast.Expr) bool {
	t := a.info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// deleteCallOK accepts the builtin delete, guarding against deleting keys
// other than the current one from the ranged map.
func (a *orderAnalysis) deleteCallOK(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if _, isBuiltin := a.info.Uses[id].(*types.Builtin); !isBuiltin || id.Name != "delete" {
		return false
	}
	if len(call.Args) != 2 || !a.pureExpr(call.Args[0]) || !a.pureExpr(call.Args[1]) {
		return false
	}
	if types.ExprString(call.Args[0]) == a.rangedMap {
		keyID, ok := call.Args[1].(*ast.Ident)
		if !ok || a.keyObj == nil || a.info.Uses[keyID] != a.keyObj {
			return false
		}
	}
	return true
}

// pureExpr reports whether evaluating the expression cannot observe or
// mutate state outside the loop iteration: no calls except len/cap/min/max
// and type conversions.
func (a *orderAnalysis) pureExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case nil:
		return true
	case *ast.Ident, *ast.BasicLit:
		return true
	case *ast.ParenExpr:
		return a.pureExpr(e.X)
	case *ast.SelectorExpr:
		return a.pureExpr(e.X)
	case *ast.IndexExpr:
		return a.pureExpr(e.X) && a.pureExpr(e.Index)
	case *ast.SliceExpr:
		return a.pureExpr(e.X) && a.pureExpr(e.Low) && a.pureExpr(e.High) && a.pureExpr(e.Max)
	case *ast.StarExpr:
		return a.pureExpr(e.X)
	case *ast.UnaryExpr:
		return a.pureExpr(e.X)
	case *ast.BinaryExpr:
		return a.pureExpr(e.X) && a.pureExpr(e.Y)
	case *ast.TypeAssertExpr:
		return e.Type != nil && a.pureExpr(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if !a.pureExpr(el) {
				return false
			}
		}
		return true
	case *ast.KeyValueExpr:
		return a.pureExpr(e.Key) && a.pureExpr(e.Value)
	case *ast.CallExpr:
		if tv, ok := a.info.Types[e.Fun]; ok && tv.IsType() {
			return len(e.Args) == 1 && a.pureExpr(e.Args[0]) // conversion
		}
		id, ok := e.Fun.(*ast.Ident)
		if !ok {
			return false
		}
		if _, isBuiltin := a.info.Uses[id].(*types.Builtin); !isBuiltin {
			return false
		}
		switch id.Name {
		case "len", "cap", "min", "max":
		default:
			return false
		}
		for _, arg := range e.Args {
			if !a.pureExpr(arg) {
				return false
			}
		}
		return true
	default:
		return false
	}
}
