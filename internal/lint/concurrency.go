package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// This file implements the harness-concurrency pass. PR 2 introduced real
// goroutine concurrency into internal/harness (the worker pool behind
// parallel sweeps), and internal/experiment sits directly on top of it. The
// race detector only catches a data race when a schedule happens to exhibit
// it under -race; this pass statically enforces the discipline the harness
// design promises instead:
//
//	workers communicate with the rest of the pool EXCLUSIVELY over
//	channels; all result merging and sink I/O happens on the single
//	ordered-merge goroutine (the caller's).
//
// Concretely, inside every function literal launched via `go`, a write to a
// variable captured from an enclosing function is flagged unless it is
// mutex-guarded at the write site. Covered write forms:
//
//   - captured = v, captured op= v, captured++/--
//   - captured[k] = v, *captured = v (writes THROUGH a captured container
//     or pointer — the usual "collect results into a shared slice" race)
//   - captured.field = v
//
// Channel sends, channel receives, and method calls on captured values
// (wg.Done, mu.Lock) are not writes and stay legal, as are writes to the
// goroutine's own locals and parameters.
//
// Mutex guarding is recognized by a linear scan: between `mu.Lock()` /
// `mu.RLock()` and the matching `mu.Unlock()` / `mu.RUnlock()` on a
// sync.Mutex / sync.RWMutex / sync.Locker-typed receiver the lock depth is
// positive and writes are accepted. `defer mu.Unlock()` does not decrement
// (the lock is then held to the end of the function). This deliberately does
// not prove that every reader takes the SAME mutex — it enforces the
// cheaper, reviewable invariant that shared writes are at least lock-guarded
// or channel-mediated.
func checkConcurrency(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	walkNonTest(pkg, func(f *ast.File, n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		c := &concAnalysis{pkg: pkg, lit: lit}
		c.walk(lit.Body)
		diags = append(diags, c.diags...)
		return true
	})
	return diags
}

type concAnalysis struct {
	pkg   *Package
	lit   *ast.FuncLit
	depth int // current mutex lock depth at the walk position
	diags []Diagnostic
}

// captured reports whether the object is declared OUTSIDE the goroutine's
// function literal (and is a variable — captured constants and functions are
// immutable). Parameters and locals of the literal, including locals of
// nested literals, are declared inside its source span.
func (c *concAnalysis) captured(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	// Package-level variables have no enclosing literal but are just as
	// shared; they count as captured too.
	return v.Pos() < c.lit.Pos() || v.Pos() > c.lit.End()
}

// rootObj digs to the base object a write lands on: for `out[i] = v` and
// `*p = v` and `rec.Field = v` that is out / p / rec.
func (c *concAnalysis) rootObj(e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := c.pkg.Info.Uses[x]; obj != nil {
				return obj
			}
			return c.pkg.Info.Defs[x]
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// walk scans statements in order, tracking mutex depth and flagging captured
// writes. Nested function literals (e.g. a deferred closure) run on the same
// goroutine, so their bodies are walked with the same capture frame.
func (c *concAnalysis) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				// `x := v` declares a goroutine-local; only writes to
				// pre-existing objects can race.
				if n.Tok == token.DEFINE {
					if id, ok := lhs.(*ast.Ident); ok && c.pkg.Info.Defs[id] != nil {
						continue
					}
				}
				c.flagWrite(lhs, n.Pos())
			}
		case *ast.IncDecStmt:
			c.flagWrite(n.X, n.Pos())
		case *ast.RangeStmt:
			// `for k = range ch` (ASSIGN form) writes pre-existing k per
			// iteration; the usual `:=` form declares goroutine-locals.
			if n.Tok == token.ASSIGN {
				if n.Key != nil {
					c.flagWrite(n.Key, n.Pos())
				}
				if n.Value != nil {
					c.flagWrite(n.Value, n.Pos())
				}
			}
		case *ast.CallExpr:
			c.trackMutex(n)
		case *ast.DeferStmt:
			// A deferred Unlock keeps the lock held for the rest of the
			// function body: walk the deferred call for nested literals but
			// do not let its Unlock decrement the live depth.
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				c.walk(lit.Body)
			}
			return false
		}
		return true
	})
}

// flagWrite reports a finding when the write's root object is captured and
// no mutex is held.
func (c *concAnalysis) flagWrite(lhs ast.Expr, pos token.Pos) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
		return
	}
	obj := c.rootObj(lhs)
	if obj == nil || !c.captured(obj) || c.depth > 0 {
		return
	}
	c.diags = append(c.diags, Diagnostic{
		Pos:  c.pkg.Fset.Position(pos),
		Rule: RuleConcurrency,
		Msg: fmt.Sprintf("goroutine writes captured variable %q without holding a mutex; workers must communicate over channels and leave merging to the ordered-merge goroutine",
			obj.Name()),
	})
}

// trackMutex adjusts lock depth for Lock/Unlock calls on sync primitives.
func (c *concAnalysis) trackMutex(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, _ := c.pkg.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return
	}
	switch fn.Name() {
	case "Lock", "RLock":
		c.depth++
	case "Unlock", "RUnlock":
		if c.depth > 0 {
			c.depth--
		}
	}
}
