package lint

import (
	"encoding/json"
	"path/filepath"
)

// SARIF 2.1.0 output, the interchange format CI code-scanning surfaces
// ingest. The mapping is deliberately minimal: one run, one tool, the full
// rule catalog as reportingDescriptors (so a viewer can show rule help even
// for rules with zero results), and one result per diagnostic with a
// physical location. Only fields the schema requires or a viewer renders are
// emitted; everything else is omitted rather than stubbed.

const (
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// ruleSummaries gives each catalog rule the one-line description SARIF
// viewers display next to results.
var ruleSummaries = map[string]string{
	RuleEffectPurity:   "functions reachable from the deterministic entry points must be effect-free (wallclock, rand, maporder, fs, net, spawn) up to declared boundaries",
	RuleScanComplexity: "per-event code must not scan O(nodes) collections; nested O(nodes) scans are O(nodes^2)",
	RuleErrcheck:       "errors from crypto and erasure primitives must be checked",
	RuleTaint:          "received payloads must be hash-verified before use",
	RuleLockDiscipline: "harness goroutine writes to shared state must be dominated by the owning mutex",
	RuleRNG:            "RNG streams must stay package-internal and be derived per purpose",
	RuleTraceTime:      "trace records must carry simulated time, not host time",
	RuleAllocHot:       "hot-path functions must not allocate per iteration",
	RuleRNGProv:        "consumed RNG streams must trace to a seeded rand.New construction",
	RuleUnusedIgnore:   "lrlint:ignore directives must suppress a live finding; lrlint:effects declarations must name real effects",
	RuleDirective:      "lrlint directives must be well-formed and attached",
}

// ToSARIF renders diagnostics as a SARIF 2.1.0 log. Filenames are emitted
// with forward slashes as SARIF URIs require.
func ToSARIF(diags []Diagnostic) ([]byte, error) {
	rules := make([]sarifRule, 0, len(AllRules))
	for _, r := range AllRules {
		rules = append(rules, sarifRule{
			ID:               r,
			ShortDescription: sarifMessage{Text: ruleSummaries[r]},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Rule,
			Level:   "error",
			Message: sarifMessage{Text: d.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "lrlint", Rules: rules}},
			Results: results,
		}},
	}
	out, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
