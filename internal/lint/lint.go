// Package lint implements lrlint, a from-scratch static-analysis suite that
// machine-checks the determinism, safety and hot-path performance invariants
// the simulator's claims rest on. It is built only on the standard library
// (go/ast, go/parser, go/token, go/types) per the repo's stdlib-only rule;
// the flow-sensitive passes run over an in-tree SSA-lite IR (statement-level
// CFGs with dominance and natural-loop analysis, see cfg.go / dom.go) plus a
// module-wide call/field/implements index (modindex.go).
//
// Eleven analyzer passes run over every non-test file of the module:
//
//   - effect-purity: a summary-based interprocedural effect analysis. Every
//     function gets an effect set over {wallclock, rand, maporder, fs, net,
//     spawn} as a lattice fixpoint over the module flow graph (static calls,
//     function-value references, interface dispatch) with SCC condensation
//     for recursion. It subsumes the old pattern-scoped no-wallclock /
//     no-global-rand / map-range passes (their per-package scopes are kept
//     as scope findings) and additionally certifies every function reachable
//     from the deterministic entry points (Config.EffectRoots: sim.Engine.Run
//     and the experiment runners) free of all six effects. Justified
//     boundaries declare their effects with //lrlint:effects(...); the
//     declaration masks the effect for the function and its callers.
//     See effects.go.
//
//   - scan-complexity: classifies loop trip counts over the population
//     lattice {const < packets < pages < neighbors < nodes} by binding
//     collection types and producer calls (Config.PopulationTypes/Calls,
//     //lrlint:population), interprocedurally through parameters and struct
//     fields. O(nodes) loops reachable from the per-event roots
//     (Config.EventRoots, //lrlint:eventroot) and O(nodes) loops nested in
//     O(nodes) loops are findings — the static gate for the 100k-node scale
//     work. See scancomplexity.go.
//
//   - unchecked-errors: in internal/crypt/... and internal/erasure/... a
//     dropped error return means silently accepting a forged or corrupt
//     packet, so every error must be consumed. Methods on values
//     implementing hash.Hash are exempt (Write is specified to never return
//     an error).
//
//   - verify-before-use: in the protocol packages, data tainted by a
//     received packet must pass an internal/crypt verification on every path
//     before it is stored in node state or fed to an internal/erasure
//     decoder. Intra-procedural dataflow over go/types; see taint.go.
//
//   - lock-discipline: in internal/harness and internal/experiment, every
//     goroutine write to captured shared state must be dominated by the
//     acquire of the owning mutex — a CFG-level must-held lockset analysis
//     replacing the earlier syntactic captured-write scan. Results still
//     flow over channels to the ordered-merge goroutine. See
//     lockdiscipline.go.
//
//   - rng-stream-discipline: *rand.Rand / rand.Source values must not live
//     in package-level variables, leak through exported fields or results,
//     feed two streams from one source, or be constructed from constant
//     seeds. See rng.go.
//
//   - trace-sim-time: in the trace packages, event structs and recording
//     signatures must carry virtual sim.Time timestamps, never wall-clock
//     time.Time — a pre-read wall timestamp smuggled in from outside the
//     no-wallclock scope would still tie trace bytes to the host. See
//     tracetime.go.
//
//   - alloc-hotpath: functions reachable from the declared hot roots (GF(256)
//     multiply-accumulate, RS encode/decode, packet marshal/unmarshal, radio
//     delivery, crypt verification) or carrying a //lrlint:hotpath marker
//     must not allocate per loop iteration, grow unpreallocated appends in
//     loops, box concrete values into interface parameters, build closures or
//     defers per iteration, or call variadic functions inside loops. See
//     allochot.go.
//
//   - rng-provenance: every *rand.Rand consumed in sim code must provably
//     originate from a seeded rand.New construction, traced cross-package
//     through locals, struct fields, parameters and interface dispatch —
//     closing the intra-package gap left by rng-stream-discipline. See
//     provenance.go.
//
//   - unused-ignore: an //lrlint:ignore directive that suppresses no finding
//     of an enabled rule is itself a finding (opt-in via Config.UnusedIgnores;
//     on in check.sh), so justifications cannot outlive the code they excuse.
//
// A finding may be suppressed with a directive on the same line, on the line
// immediately above, or on the line immediately above the statement the
// finding sits in (so a directive above a multi-line statement covers the
// whole statement):
//
//	//lrlint:ignore <rule> <reason>
//
// The rule must name a catalog entry and the reason is mandatory; a directive
// missing either is itself a finding. The other directive forms attach to
// declarations (doc comment or the line immediately above):
//
//	//lrlint:hotpath [reason]
//
// marks a function an alloc-hotpath root in addition to the configured ones;
//
//	//lrlint:effects(<effect>[,<effect>...]) <reason>
//
// declares a function a justified effect boundary (the reason is mandatory,
// and a declared effect the function does not actually have is an
// unused-ignore finding);
//
//	//lrlint:eventroot [reason]
//
// marks a function a per-event root for scan-complexity; and
//
//	//lrlint:population <class>
//
// on a type declaration binds that type to a population-lattice class
// (const, packets, pages, neighbors, nodes).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the finding as "file:line:col rule: message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Rule names, used in output and in //lrlint:ignore directives.
const (
	RuleEffectPurity   = "effect-purity"
	RuleScanComplexity = "scan-complexity"
	RuleErrcheck       = "unchecked-error"
	RuleTaint          = "verify-before-use"
	RuleLockDiscipline = "lock-discipline"
	RuleRNG            = "rng-stream-discipline"
	RuleTraceTime      = "trace-sim-time"
	RuleAllocHot       = "alloc-hotpath"
	RuleRNGProv        = "rng-provenance"
	RuleUnusedIgnore   = "unused-ignore"
	RuleDirective      = "directive"
)

// AllRules lists every rule name in catalog order.
var AllRules = []string{
	RuleEffectPurity,
	RuleScanComplexity,
	RuleErrcheck,
	RuleTaint,
	RuleLockDiscipline,
	RuleRNG,
	RuleTraceTime,
	RuleAllocHot,
	RuleRNGProv,
	RuleUnusedIgnore,
	RuleDirective,
}

// KnownRule reports whether name is in the rule catalog.
func KnownRule(name string) bool {
	for _, r := range AllRules {
		if r == name {
			return true
		}
	}
	return false
}

// Config scopes the passes to package trees. Paths are module-relative
// prefixes: an entry "internal/core" covers the package at that path and
// everything below it.
type Config struct {
	// ModulePath is the module's import-path prefix (from go.mod).
	ModulePath string
	// OrderedPackages lists the packages whose event scheduling or packet
	// emission makes map-iteration order observable; map-range-determinism
	// applies there.
	OrderedPackages []string
	// ErrorCriticalPackages lists the packages where a swallowed error means
	// accepting forged or corrupt data; unchecked-errors applies there.
	ErrorCriticalPackages []string
	// TaintPackages lists the protocol packages where received-packet data
	// must be verified before it is stored or decoded; verify-before-use
	// applies there.
	TaintPackages []string
	// ConcurrencyPackages lists the packages with real goroutine concurrency;
	// lock-discipline applies there.
	ConcurrencyPackages []string
	// TracePackages lists the packages defining trace records and recording
	// APIs; trace-sim-time applies there: event structs and recording
	// signatures must carry sim.Time, never wall-clock time.Time.
	TracePackages []string
	// HotPathPackages lists the package trees whose hot-reachable functions
	// alloc-hotpath reports on. Functions outside these trees are still
	// traversed for reachability but only report when they carry a
	// //lrlint:hotpath marker themselves.
	HotPathPackages []string
	// HotRoots names the hot-path entry points as module-relative qualified
	// names: "pkg/path.Func" or "pkg/path.Recv.Method" (pointer receivers
	// written without the star). Everything statically reachable from a root
	// is hot.
	HotRoots []string
	// EffectRoots names the deterministic entry points for effect-purity:
	// everything reachable from them over the flow graph must be free of
	// all six effects, up to declared //lrlint:effects boundaries.
	EffectRoots []string
	// EventRoots names the per-event entry points for scan-complexity:
	// O(nodes) loops reachable from them are findings.
	EventRoots []string
	// PopulationTypes binds named types (module-relative "pkg/path.Type")
	// to population classes: a map keyed by — or a slice of — a bound type
	// is a collection of that class.
	PopulationTypes map[string]string
	// PopulationCalls binds producer functions to the class of their result
	// ("internal/topo.Graph.Neighbors" -> "neighbors").
	PopulationCalls map[string]string
	// PopulationPropagate lists transparent wrappers whose result class is
	// the join of their argument classes (detmap.SortedKeys).
	PopulationPropagate []string
	// Rules, when non-empty, restricts the run to the named rules (the
	// directive pass always runs, so malformed directives never go dark).
	Rules []string
	// UnusedIgnores enables the unused-ignore pass: directives naming an
	// enabled rule that suppress no finding become findings themselves.
	UnusedIgnores bool
	// TrimPrefix, when non-empty, is stripped from diagnostic file names so
	// output and golden files are stable across checkouts.
	TrimPrefix string
}

// ruleEnabled applies the Rules filter.
func (c Config) ruleEnabled(rule string) bool {
	if len(c.Rules) == 0 {
		return true
	}
	for _, r := range c.Rules {
		if r == rule {
			return true
		}
	}
	return false
}

// DefaultConfig returns the repo's production scoping: the packages that
// schedule events, emit packets or merge experiment records, the
// crypto/erasure trees, and the hot-path roots of the per-packet pipeline.
func DefaultConfig(modulePath string) Config {
	return Config{
		ModulePath:    modulePath,
		UnusedIgnores: true,
		OrderedPackages: []string{
			"internal/sim",
			"internal/core",
			"internal/dissem",
			"internal/deluge",
			"internal/seluge",
			"internal/radio",
			"internal/trickle",
			"internal/harness",
			"internal/trace",
			"internal/runstore",
			"internal/served",
		},
		ErrorCriticalPackages: []string{
			"internal/crypt",
			"internal/erasure",
		},
		TaintPackages: []string{
			"internal/seluge",
			"internal/core",
			"internal/dissem",
			"internal/deluge",
			"internal/rateless",
			"internal/packet",
		},
		ConcurrencyPackages: []string{
			"internal/harness",
			"internal/experiment",
			"internal/obs",
			"internal/runstore",
			"internal/served",
		},
		TracePackages: []string{
			"internal/trace",
		},
		HotPathPackages: []string{
			"internal/erasure",
			"internal/packet",
			"internal/crypt",
			"internal/obs",
			"internal/radio",
		},
		HotRoots: []string{
			"internal/erasure/gf256.MulSlice",
			"internal/erasure/rs.Code.Encode",
			"internal/erasure/rs.Code.EncodeInto",
			"internal/erasure/rs.Code.Decode",
			"internal/erasure/rs.Code.DecodeInto",
			"internal/packet.Adv.Marshal",
			"internal/packet.SNACK.Marshal",
			"internal/packet.Data.Marshal",
			"internal/packet.Sig.Marshal",
			"internal/packet.Unmarshal",
			"internal/radio.Network.deliver",
			"internal/crypt/sign.PublicKey.Verify",
			"internal/crypt/puzzle.Verify",
			"internal/crypt/puzzle.VerifyKey",
			"internal/crypt/merkle.Verify",
		},
		EffectRoots: []string{
			"internal/sim.Engine.Run",
			"internal/experiment.Run",
			"internal/experiment.RunGrid",
		},
		EventRoots: []string{
			"internal/radio.Network.Broadcast",
			"internal/radio.Network.deliver",
			"internal/fault.Engine.apply",
			"internal/trickle.Trickle.beginInterval",
		},
		PopulationTypes: map[string]string{
			"internal/packet.NodeID":  "nodes",
			"internal/radio.Receiver": "nodes",
			"internal/topo.Point":     "nodes",
			"internal/topo.Link":      "neighbors",
		},
		PopulationCalls: map[string]string{
			"internal/topo.Graph.NumNodes":         "nodes",
			"internal/radio.Network.NumNodes":      "nodes",
			"internal/radio.FaultOverlay.NumNodes": "nodes",
			"internal/topo.Graph.Neighbors":        "neighbors",
			"internal/radio.Network.Neighbors":     "neighbors",
		},
		PopulationPropagate: []string{
			"internal/detmap.SortedKeys",
		},
	}
}

// inScope reports whether the package import path falls under one of the
// module-relative prefixes.
func (c Config) inScope(pkgPath string, prefixes []string) bool {
	for _, p := range prefixes {
		full := c.ModulePath + "/" + p
		if pkgPath == full || strings.HasPrefix(pkgPath, full+"/") {
			return true
		}
	}
	return false
}

// isInternal reports whether the package lives under an internal/ tree.
func isInternal(pkgPath string) bool {
	return strings.Contains(pkgPath, "/internal/") || strings.HasSuffix(pkgPath, "/internal")
}

// Run applies every pass to every package and returns the surviving
// findings sorted by position. Directive-suppressed findings are removed;
// malformed directives are reported; with Config.UnusedIgnores, so are
// directives that suppressed nothing. Per-package passes run concurrently —
// each only reads its own package's immutable AST and type info — then the
// module-level passes (alloc-hotpath, rng-provenance) run over a shared
// module index, and the final position sort makes the output order
// deterministic regardless of scheduling.
func Run(pkgs []*Package, cfg Config) []Diagnostic {
	type pkgResult struct {
		dirs       directiveIndex
		markers    map[*ast.FuncDecl]bool
		effects    map[*ast.FuncDecl]*effectDecl
		eventRoots map[*ast.FuncDecl]bool
		popTypes   map[*types.TypeName]popClass
		raw        []Diagnostic // pre-suppression findings
		bad        []Diagnostic // malformed directives; never suppressible
	}
	results := make([]pkgResult, len(pkgs))
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			r := &results[i]
			r.dirs, r.bad = collectDirectives(pkg)
			var badDirs []Diagnostic
			r.markers, badDirs = collectHotMarkers(pkg)
			r.bad = append(r.bad, badDirs...)
			r.effects, badDirs = collectEffectDecls(pkg)
			r.bad = append(r.bad, badDirs...)
			r.eventRoots, badDirs = collectEventRoots(pkg)
			r.bad = append(r.bad, badDirs...)
			r.popTypes, badDirs = collectPopDirectives(pkg)
			r.bad = append(r.bad, badDirs...)
			r.raw = runPackage(pkg, cfg)
		}(i, pkg)
	}
	wg.Wait()

	// Merge the per-package directive indexes; file names are absolute and
	// unique per package, so this is a disjoint union.
	merged := make(directiveIndex)
	markers := make(map[*ast.FuncDecl]bool)
	effDecls := make(map[*ast.FuncDecl]*effectDecl)
	eventRoots := make(map[*ast.FuncDecl]bool)
	popTypes := make(map[*types.TypeName]popClass)
	var raw, bad []Diagnostic
	for _, r := range results {
		for file, lines := range r.dirs {
			merged[file] = lines
		}
		for d := range r.markers {
			markers[d] = true
		}
		for d, ed := range r.effects {
			effDecls[d] = ed
		}
		for d := range r.eventRoots {
			eventRoots[d] = true
		}
		for tn, cls := range r.popTypes {
			popTypes[tn] = cls
		}
		raw = append(raw, r.raw...)
		bad = append(bad, r.bad...)
	}

	needIndex := cfg.ruleEnabled(RuleAllocHot) || cfg.ruleEnabled(RuleRNGProv) ||
		cfg.ruleEnabled(RuleEffectPurity) || cfg.ruleEnabled(RuleScanComplexity)
	if needIndex {
		idx := buildModIndex(pkgs, cfg, markers)
		if cfg.ruleEnabled(RuleAllocHot) {
			raw = append(raw, checkAllocHot(idx)...)
		}
		if cfg.ruleEnabled(RuleRNGProv) {
			raw = append(raw, checkProvenance(idx)...)
		}
		if cfg.ruleEnabled(RuleEffectPurity) {
			raw = append(raw, checkEffects(idx, effDecls)...)
		}
		if cfg.ruleEnabled(RuleScanComplexity) {
			raw = append(raw, checkScanComplexity(idx, eventRoots, popTypes)...)
		}
	}

	diags := bad
	for _, d := range raw {
		if !merged.suppresses(d) {
			diags = append(diags, d)
		}
	}
	if cfg.UnusedIgnores && cfg.ruleEnabled(RuleUnusedIgnore) {
		diags = append(diags, unusedIgnoreFindings(merged, cfg)...)
	}

	for i := range diags {
		if cfg.TrimPrefix != "" {
			if rel, err := filepath.Rel(cfg.TrimPrefix, diags[i].Pos.Filename); err == nil {
				diags[i].Pos.Filename = rel
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags
}

// runPackage applies the scoped, rule-filtered per-package passes and
// returns raw findings (unsuppressed, unsorted, untrimmed).
func runPackage(pkg *Package, cfg Config) []Diagnostic {
	var raw []Diagnostic
	if cfg.ruleEnabled(RuleErrcheck) && cfg.inScope(pkg.ImportPath, cfg.ErrorCriticalPackages) {
		raw = append(raw, checkErrors(pkg)...)
	}
	if cfg.ruleEnabled(RuleTaint) && cfg.inScope(pkg.ImportPath, cfg.TaintPackages) {
		raw = append(raw, checkTaint(pkg, cfg)...)
	}
	if cfg.ruleEnabled(RuleLockDiscipline) && cfg.inScope(pkg.ImportPath, cfg.ConcurrencyPackages) {
		raw = append(raw, checkLockDiscipline(pkg)...)
	}
	if cfg.ruleEnabled(RuleRNG) {
		raw = append(raw, checkRNG(pkg)...)
	}
	if cfg.ruleEnabled(RuleTraceTime) && cfg.inScope(pkg.ImportPath, cfg.TracePackages) {
		raw = append(raw, checkTraceTime(pkg)...)
	}
	return raw
}

// directive is one parsed //lrlint:ignore comment. expandSpans copies the
// record onto every line a covered multi-line statement spans; the copies
// share the used flag so one suppression anywhere marks the directive live.
type directive struct {
	rule string
	pos  token.Position // the comment's own position, for unused-ignore
	used *bool
}

// directiveIndex maps file -> line -> directives in force on that line.
type directiveIndex map[string]map[int][]directive

// suppresses reports whether a directive for the finding's rule is in force
// on the finding's line or the line immediately above it, marking the
// matching directive used. Directives written above a multi-line statement
// are propagated onto every line of that statement by expandSpans, so they
// reach findings anywhere inside it.
func (idx directiveIndex) suppresses(d Diagnostic) bool {
	lines := idx[d.Pos.Filename]
	for _, ln := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, dir := range lines[ln] {
			if dir.rule == d.Rule {
				*dir.used = true
				return true
			}
		}
	}
	return false
}

// unusedIgnoreFindings reports every directive whose rule was enabled in
// this run but which suppressed nothing. Directives for disabled rules are
// skipped — a rule-filtered run must not declare the other rules'
// justifications stale.
func unusedIgnoreFindings(idx directiveIndex, cfg Config) []Diagnostic {
	seen := make(map[token.Position]bool)
	var out []Diagnostic
	for _, lines := range idx {
		for _, dirs := range lines {
			for _, dir := range dirs {
				if *dir.used || seen[dir.pos] || !cfg.ruleEnabled(dir.rule) {
					continue
				}
				seen[dir.pos] = true
				out = append(out, Diagnostic{
					Pos:  dir.pos,
					Rule: RuleUnusedIgnore,
					Msg:  fmt.Sprintf("directive suppresses no %s finding; remove it or restore the justification it excused", dir.rule),
				})
			}
		}
	}
	return out
}

const (
	directivePrefix  = "//lrlint:ignore"
	hotpathPrefix    = "//lrlint:hotpath"
	effectsPrefix    = "//lrlint:effects"
	eventrootPrefix  = "//lrlint:eventroot"
	populationPrefix = "//lrlint:population"
)

// collectDirectives scans every comment in the package for ignore
// directives, returning the index plus findings for malformed ones. A
// directive must name a catalog rule and give a reason; anything else is a
// finding rather than a silent no-op.
func collectDirectives(pkg *Package) (directiveIndex, []Diagnostic) {
	idx := make(directiveIndex)
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(c.Text, directivePrefix))
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:  pos,
						Rule: RuleDirective,
						Msg:  "malformed directive: want //lrlint:ignore <rule> <reason>",
					})
					continue
				}
				if !KnownRule(fields[0]) {
					bad = append(bad, Diagnostic{
						Pos:  pos,
						Rule: RuleDirective,
						Msg:  fmt.Sprintf("directive names unknown rule %q; catalog: %s", fields[0], strings.Join(AllRules, ", ")),
					})
					continue
				}
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int][]directive)
					idx[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], directive{rule: fields[0], pos: pos, used: new(bool)})
			}
		}
	}
	idx.expandSpans(pkg)
	return idx, bad
}

// declMarker is one prefix-matched comment resolved to the function
// declaration it annotates (decl nil when attached to nothing).
type declMarker struct {
	decl *ast.FuncDecl
	c    *ast.Comment
	pos  token.Position
}

// declMarkers scans for comments with the given prefix and resolves each to
// the function declaration it annotates: the comment must sit in the
// function's doc comment or on the line immediately above the declaration.
// Unattached markers come back with a nil decl so callers can report them —
// a floating marker would otherwise silently configure nothing.
func declMarkers(pkg *Package, prefix string) []declMarker {
	var out []declMarker
	for _, f := range pkg.Files {
		// Map each declaration's doc span and start line once per file.
		type declSpan struct {
			decl      *ast.FuncDecl
			docStart  token.Pos
			docEnd    token.Pos
			startLine int
		}
		var decls []declSpan
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			ds := declSpan{decl: fd, startLine: pkg.Fset.Position(fd.Pos()).Line}
			if fd.Doc != nil {
				ds.docStart, ds.docEnd = fd.Doc.Pos(), fd.Doc.End()
			}
			decls = append(decls, ds)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, prefix) {
					continue
				}
				m := declMarker{c: c, pos: pkg.Fset.Position(c.Pos())}
				for _, ds := range decls {
					inDoc := ds.docStart != token.NoPos && c.Pos() >= ds.docStart && c.End() <= ds.docEnd
					if inDoc || m.pos.Line == ds.startLine-1 {
						m.decl = ds.decl
						break
					}
				}
				out = append(out, m)
			}
		}
	}
	return out
}

// collectHotMarkers resolves //lrlint:hotpath markers to the declarations
// they root.
func collectHotMarkers(pkg *Package) (map[*ast.FuncDecl]bool, []Diagnostic) {
	marked := make(map[*ast.FuncDecl]bool)
	var bad []Diagnostic
	for _, m := range declMarkers(pkg, hotpathPrefix) {
		if m.decl == nil {
			bad = append(bad, Diagnostic{
				Pos:  m.pos,
				Rule: RuleDirective,
				Msg:  "//lrlint:hotpath marker is not attached to a function declaration",
			})
			continue
		}
		marked[m.decl] = true
	}
	return marked, bad
}

// collectEffectDecls parses //lrlint:effects(e1,e2) <reason> directives.
// The effect list and the reason are both mandatory; unknown effect names
// and unattached directives are findings.
func collectEffectDecls(pkg *Package) (map[*ast.FuncDecl]*effectDecl, []Diagnostic) {
	decls := make(map[*ast.FuncDecl]*effectDecl)
	var bad []Diagnostic
	for _, m := range declMarkers(pkg, effectsPrefix) {
		rest := strings.TrimPrefix(m.c.Text, effectsPrefix)
		paren := strings.Index(rest, ")")
		if !strings.HasPrefix(rest, "(") || paren < 0 || strings.TrimSpace(rest[paren+1:]) == "" {
			bad = append(bad, Diagnostic{
				Pos:  m.pos,
				Rule: RuleDirective,
				Msg:  "malformed directive: want //lrlint:effects(<effect>[,<effect>...]) <reason>",
			})
			continue
		}
		var mask effectSet
		valid := true
		for _, name := range strings.Split(rest[1:paren], ",") {
			e, ok := effectByName[strings.TrimSpace(name)]
			if !ok {
				bad = append(bad, Diagnostic{
					Pos:  m.pos,
					Rule: RuleDirective,
					Msg:  fmt.Sprintf("directive names unknown effect %q; effects: %s", strings.TrimSpace(name), allEffects.String()),
				})
				valid = false
				break
			}
			mask = mask.with(e)
		}
		if !valid {
			continue
		}
		if m.decl == nil {
			bad = append(bad, Diagnostic{
				Pos:  m.pos,
				Rule: RuleDirective,
				Msg:  "//lrlint:effects directive is not attached to a function declaration",
			})
			continue
		}
		if prev := decls[m.decl]; prev != nil {
			prev.mask |= mask
		} else {
			decls[m.decl] = &effectDecl{mask: mask, pos: m.pos}
		}
	}
	return decls, bad
}

// collectEventRoots resolves //lrlint:eventroot markers to the declarations
// they root for scan-complexity.
func collectEventRoots(pkg *Package) (map[*ast.FuncDecl]bool, []Diagnostic) {
	roots := make(map[*ast.FuncDecl]bool)
	var bad []Diagnostic
	for _, m := range declMarkers(pkg, eventrootPrefix) {
		if m.decl == nil {
			bad = append(bad, Diagnostic{
				Pos:  m.pos,
				Rule: RuleDirective,
				Msg:  "//lrlint:eventroot marker is not attached to a function declaration",
			})
			continue
		}
		roots[m.decl] = true
	}
	return roots, bad
}

// collectPopDirectives parses //lrlint:population <class> directives on type
// declarations: the comment must sit in the type's doc comment (or the
// GenDecl's) or on the line immediately above it.
func collectPopDirectives(pkg *Package) (map[*types.TypeName]popClass, []Diagnostic) {
	bound := make(map[*types.TypeName]popClass)
	var bad []Diagnostic
	for _, f := range pkg.Files {
		type typeSpan struct {
			obj       *types.TypeName
			docStart  token.Pos
			docEnd    token.Pos
			startLine int
		}
		var specs []typeSpan
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[ts.Name].(*types.TypeName)
				if obj == nil {
					continue
				}
				tsp := typeSpan{obj: obj, startLine: pkg.Fset.Position(gd.Pos()).Line}
				if gd.Doc != nil {
					tsp.docStart, tsp.docEnd = gd.Doc.Pos(), gd.Doc.End()
				}
				if ts.Doc != nil {
					if tsp.docStart == token.NoPos || ts.Doc.Pos() < tsp.docStart {
						tsp.docStart = ts.Doc.Pos()
					}
					if ts.Doc.End() > tsp.docEnd {
						tsp.docEnd = ts.Doc.End()
					}
					tsp.startLine = pkg.Fset.Position(ts.Pos()).Line
				}
				specs = append(specs, tsp)
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, populationPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(c.Text, populationPrefix))
				if len(fields) != 1 {
					bad = append(bad, Diagnostic{
						Pos:  pos,
						Rule: RuleDirective,
						Msg:  "malformed directive: want //lrlint:population <class>",
					})
					continue
				}
				cls, ok := popClassNames[fields[0]]
				if !ok {
					bad = append(bad, Diagnostic{
						Pos:  pos,
						Rule: RuleDirective,
						Msg:  fmt.Sprintf("directive names unknown population class %q; classes: const, packets, pages, neighbors, nodes", fields[0]),
					})
					continue
				}
				attached := false
				for _, tsp := range specs {
					inDoc := tsp.docStart != token.NoPos && c.Pos() >= tsp.docStart && c.End() <= tsp.docEnd
					if inDoc || pos.Line == tsp.startLine-1 {
						bound[tsp.obj] = cls
						attached = true
						break
					}
				}
				if !attached {
					bad = append(bad, Diagnostic{
						Pos:  pos,
						Rule: RuleDirective,
						Msg:  "//lrlint:population directive is not attached to a type declaration",
					})
				}
			}
		}
	}
	return bound, bad
}

// expandSpans propagates a directive written on (or immediately above) the
// first line of a multi-line SIMPLE statement onto every line the statement
// spans, so a finding positioned on a continuation line — e.g. an argument
// of a wrapped call — is still covered. Compound statements (if/for/switch
// and friends) are deliberately excluded: a directive above an if must not
// silence the whole body. Go-statement spans ARE covered, so one directive
// can bless a whole `go func() { ... }()` worker when justified.
func (idx directiveIndex) expandSpans(pkg *Package) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.AssignStmt, *ast.ExprStmt, *ast.DeclStmt, *ast.ReturnStmt,
				*ast.SendStmt, *ast.IncDecStmt, *ast.GoStmt, *ast.DeferStmt,
				*ast.ValueSpec:
			default:
				return true
			}
			start := pkg.Fset.Position(n.Pos())
			end := pkg.Fset.Position(n.End())
			if end.Line <= start.Line {
				return true
			}
			lines := idx[start.Filename]
			if lines == nil {
				return true
			}
			var covering []directive
			covering = append(covering, lines[start.Line]...)
			covering = append(covering, lines[start.Line-1]...)
			if len(covering) == 0 {
				return true
			}
			for ln := start.Line + 1; ln <= end.Line; ln++ {
				lines[ln] = append(lines[ln], covering...)
			}
			return true
		})
	}
}

// walkNonTest visits every AST node of the package's (non-test) files.
func walkNonTest(pkg *Package, visit func(f *ast.File, n ast.Node) bool) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			return visit(f, n)
		})
	}
}
