// Package lint implements lrlint, a from-scratch static-analysis suite that
// machine-checks the determinism and safety invariants the simulator's
// reproducibility claims rest on. It is built only on the standard library
// (go/ast, go/parser, go/token, go/types) per the repo's stdlib-only rule.
//
// Eight analyzer passes run over every non-test file of the module:
//
//   - no-wallclock: internal/ packages must never consult the wall clock
//     (time.Now, time.Sleep, time.After, time.Tick, timers). Protocol code
//     runs on virtual sim.Time only; a single wall-clock read would tie run
//     results to the host machine.
//
//   - no-global-rand: the process-global math/rand source (rand.Intn,
//     rand.Float64, rand.Shuffle, ...) is forbidden everywhere. All
//     randomness must flow from explicitly seeded rand.New(rand.NewSource(s))
//     streams so a scenario seed pins every random draw.
//
//   - map-range-determinism: packages that schedule events or emit packets
//     must not iterate Go maps directly — iteration order is randomized by
//     the runtime. Loops are accepted only when a conservative structural
//     analysis proves the body order-insensitive, or when the site carries an
//     explicit justified directive. The blessed fix is
//     detmap.SortedKeys (internal/detmap).
//
//   - unchecked-errors: in internal/crypt/... and internal/erasure/... a
//     dropped error return means silently accepting a forged or corrupt
//     packet, so every error must be consumed. Methods on values
//     implementing hash.Hash are exempt (Write is specified to never return
//     an error).
//
//   - verify-before-use: in the protocol packages, data tainted by a
//     received packet must pass an internal/crypt verification on every path
//     before it is stored in node state or fed to an internal/erasure
//     decoder. Intra-procedural dataflow over go/types; see taint.go.
//
//   - harness-concurrency: in internal/harness and internal/experiment,
//     goroutines must not write captured shared variables unless
//     mutex-guarded; results flow over channels to the ordered-merge
//     goroutine. See concurrency.go.
//
//   - rng-stream-discipline: *rand.Rand / rand.Source values must not live
//     in package-level variables, leak through exported fields or results,
//     feed two streams from one source, or be constructed from constant
//     seeds. See rng.go.
//
//   - trace-sim-time: in the trace packages, event structs and recording
//     signatures must carry virtual sim.Time timestamps, never wall-clock
//     time.Time — a pre-read wall timestamp smuggled in from outside the
//     no-wallclock scope would still tie trace bytes to the host. See
//     tracetime.go.
//
// A finding may be suppressed with a directive on the same line, on the line
// immediately above, or on the line immediately above the statement the
// finding sits in (so a directive above a multi-line statement covers the
// whole statement):
//
//	//lrlint:ignore <rule> <reason>
//
// The reason is mandatory; a directive without one is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the finding as "file:line:col rule: message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Rule names, used in output and in //lrlint:ignore directives.
const (
	RuleWallclock   = "no-wallclock"
	RuleGlobalRand  = "no-global-rand"
	RuleMapRange    = "map-range"
	RuleErrcheck    = "unchecked-error"
	RuleTaint       = "verify-before-use"
	RuleConcurrency = "harness-concurrency"
	RuleRNG         = "rng-stream-discipline"
	RuleTraceTime   = "trace-sim-time"
	RuleDirective   = "directive"
)

// AllRules lists every rule name in catalog order.
var AllRules = []string{
	RuleWallclock,
	RuleGlobalRand,
	RuleMapRange,
	RuleErrcheck,
	RuleTaint,
	RuleConcurrency,
	RuleRNG,
	RuleTraceTime,
	RuleDirective,
}

// Config scopes the passes to package trees. Paths are module-relative
// prefixes: an entry "internal/core" covers the package at that path and
// everything below it.
type Config struct {
	// ModulePath is the module's import-path prefix (from go.mod).
	ModulePath string
	// OrderedPackages lists the packages whose event scheduling or packet
	// emission makes map-iteration order observable; map-range-determinism
	// applies there.
	OrderedPackages []string
	// ErrorCriticalPackages lists the packages where a swallowed error means
	// accepting forged or corrupt data; unchecked-errors applies there.
	ErrorCriticalPackages []string
	// TaintPackages lists the protocol packages where received-packet data
	// must be verified before it is stored or decoded; verify-before-use
	// applies there.
	TaintPackages []string
	// ConcurrencyPackages lists the packages with real goroutine concurrency;
	// harness-concurrency applies there.
	ConcurrencyPackages []string
	// TracePackages lists the packages defining trace records and recording
	// APIs; trace-sim-time applies there: event structs and recording
	// signatures must carry sim.Time, never wall-clock time.Time.
	TracePackages []string
	// Rules, when non-empty, restricts the run to the named rules (the
	// directive pass always runs, so malformed directives never go dark).
	Rules []string
	// TrimPrefix, when non-empty, is stripped from diagnostic file names so
	// output and golden files are stable across checkouts.
	TrimPrefix string
}

// ruleEnabled applies the Rules filter.
func (c Config) ruleEnabled(rule string) bool {
	if len(c.Rules) == 0 {
		return true
	}
	for _, r := range c.Rules {
		if r == rule {
			return true
		}
	}
	return false
}

// DefaultConfig returns the repo's production scoping: the packages that
// schedule events, emit packets or merge experiment records, and the
// crypto/erasure trees.
func DefaultConfig(modulePath string) Config {
	return Config{
		ModulePath: modulePath,
		OrderedPackages: []string{
			"internal/sim",
			"internal/core",
			"internal/dissem",
			"internal/deluge",
			"internal/seluge",
			"internal/radio",
			"internal/trickle",
			"internal/harness",
			"internal/trace",
		},
		ErrorCriticalPackages: []string{
			"internal/crypt",
			"internal/erasure",
		},
		TaintPackages: []string{
			"internal/seluge",
			"internal/core",
			"internal/dissem",
			"internal/deluge",
			"internal/rateless",
			"internal/packet",
		},
		ConcurrencyPackages: []string{
			"internal/harness",
			"internal/experiment",
		},
		TracePackages: []string{
			"internal/trace",
		},
	}
}

// inScope reports whether the package import path falls under one of the
// module-relative prefixes.
func (c Config) inScope(pkgPath string, prefixes []string) bool {
	for _, p := range prefixes {
		full := c.ModulePath + "/" + p
		if pkgPath == full || strings.HasPrefix(pkgPath, full+"/") {
			return true
		}
	}
	return false
}

// isInternal reports whether the package lives under an internal/ tree.
func isInternal(pkgPath string) bool {
	return strings.Contains(pkgPath, "/internal/") || strings.HasSuffix(pkgPath, "/internal")
}

// Run applies every pass to every package and returns the surviving
// findings sorted by position. Directive-suppressed findings are removed;
// malformed directives are reported. Packages are analyzed concurrently —
// each pass only reads its own package's immutable AST and type info — and
// the final position sort makes the output order deterministic regardless of
// scheduling.
func Run(pkgs []*Package, cfg Config) []Diagnostic {
	perPkg := make([][]Diagnostic, len(pkgs))
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			perPkg[i] = runPackage(pkg, cfg)
		}(i, pkg)
	}
	wg.Wait()
	var diags []Diagnostic
	for _, d := range perPkg {
		diags = append(diags, d...)
	}
	for i := range diags {
		if cfg.TrimPrefix != "" {
			if rel, err := filepath.Rel(cfg.TrimPrefix, diags[i].Pos.Filename); err == nil {
				diags[i].Pos.Filename = rel
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags
}

// runPackage applies the scoped, rule-filtered passes to one package and
// returns its surviving findings (unsorted, untrimmed).
func runPackage(pkg *Package, cfg Config) []Diagnostic {
	dirs, bad := collectDirectives(pkg)
	var raw []Diagnostic
	if cfg.ruleEnabled(RuleWallclock) && isInternal(pkg.ImportPath) {
		raw = append(raw, checkWallclock(pkg)...)
	}
	if cfg.ruleEnabled(RuleGlobalRand) {
		raw = append(raw, checkGlobalRand(pkg)...)
	}
	if cfg.ruleEnabled(RuleMapRange) && cfg.inScope(pkg.ImportPath, cfg.OrderedPackages) {
		raw = append(raw, checkMapRange(pkg)...)
	}
	if cfg.ruleEnabled(RuleErrcheck) && cfg.inScope(pkg.ImportPath, cfg.ErrorCriticalPackages) {
		raw = append(raw, checkErrors(pkg)...)
	}
	if cfg.ruleEnabled(RuleTaint) && cfg.inScope(pkg.ImportPath, cfg.TaintPackages) {
		raw = append(raw, checkTaint(pkg, cfg)...)
	}
	if cfg.ruleEnabled(RuleConcurrency) && cfg.inScope(pkg.ImportPath, cfg.ConcurrencyPackages) {
		raw = append(raw, checkConcurrency(pkg)...)
	}
	if cfg.ruleEnabled(RuleRNG) {
		raw = append(raw, checkRNG(pkg)...)
	}
	if cfg.ruleEnabled(RuleTraceTime) && cfg.inScope(pkg.ImportPath, cfg.TracePackages) {
		raw = append(raw, checkTraceTime(pkg)...)
	}
	diags := bad
	for _, d := range raw {
		if !dirs.suppresses(d) {
			diags = append(diags, d)
		}
	}
	return diags
}

// directive is one parsed //lrlint:ignore comment.
type directive struct {
	rule string
}

// directiveIndex maps file -> line -> directives in force on that line.
type directiveIndex map[string]map[int][]directive

// suppresses reports whether a directive for the finding's rule is in force
// on the finding's line or the line immediately above it. Directives written
// above a multi-line statement are propagated onto every line of that
// statement by expandSpans, so they reach findings anywhere inside it.
func (idx directiveIndex) suppresses(d Diagnostic) bool {
	lines := idx[d.Pos.Filename]
	for _, ln := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, dir := range lines[ln] {
			if dir.rule == d.Rule {
				return true
			}
		}
	}
	return false
}

const directivePrefix = "//lrlint:ignore"

// collectDirectives scans every comment in the package for lrlint
// directives, returning the index plus findings for malformed ones.
func collectDirectives(pkg *Package) (directiveIndex, []Diagnostic) {
	idx := make(directiveIndex)
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(c.Text, directivePrefix))
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:  pos,
						Rule: RuleDirective,
						Msg:  "malformed directive: want //lrlint:ignore <rule> <reason>",
					})
					continue
				}
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int][]directive)
					idx[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], directive{rule: fields[0]})
			}
		}
	}
	idx.expandSpans(pkg)
	return idx, bad
}

// expandSpans propagates a directive written on (or immediately above) the
// first line of a multi-line SIMPLE statement onto every line the statement
// spans, so a finding positioned on a continuation line — e.g. an argument
// of a wrapped call — is still covered. Compound statements (if/for/switch
// and friends) are deliberately excluded: a directive above an if must not
// silence the whole body. Go-statement spans ARE covered, so one directive
// can bless a whole `go func() { ... }()` worker when justified.
func (idx directiveIndex) expandSpans(pkg *Package) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.AssignStmt, *ast.ExprStmt, *ast.DeclStmt, *ast.ReturnStmt,
				*ast.SendStmt, *ast.IncDecStmt, *ast.GoStmt, *ast.DeferStmt,
				*ast.ValueSpec:
			default:
				return true
			}
			start := pkg.Fset.Position(n.Pos())
			end := pkg.Fset.Position(n.End())
			if end.Line <= start.Line {
				return true
			}
			lines := idx[start.Filename]
			if lines == nil {
				return true
			}
			var covering []directive
			covering = append(covering, lines[start.Line]...)
			covering = append(covering, lines[start.Line-1]...)
			if len(covering) == 0 {
				return true
			}
			for ln := start.Line + 1; ln <= end.Line; ln++ {
				lines[ln] = append(lines[ln], covering...)
			}
			return true
		})
	}
}

// walkNonTest visits every AST node of the package's (non-test) files.
func walkNonTest(pkg *Package, visit func(f *ast.File, n ast.Node) bool) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			return visit(f, n)
		})
	}
}
