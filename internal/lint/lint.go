// Package lint implements lrlint, a from-scratch static-analysis suite that
// machine-checks the determinism and safety invariants the simulator's
// reproducibility claims rest on. It is built only on the standard library
// (go/ast, go/parser, go/token, go/types) per the repo's stdlib-only rule.
//
// Four analyzer passes run over every non-test file of the module:
//
//   - no-wallclock: internal/ packages must never consult the wall clock
//     (time.Now, time.Sleep, time.After, time.Tick, timers). Protocol code
//     runs on virtual sim.Time only; a single wall-clock read would tie run
//     results to the host machine.
//
//   - no-global-rand: the process-global math/rand source (rand.Intn,
//     rand.Float64, rand.Shuffle, ...) is forbidden everywhere. All
//     randomness must flow from explicitly seeded rand.New(rand.NewSource(s))
//     streams so a scenario seed pins every random draw.
//
//   - map-range-determinism: packages that schedule events or emit packets
//     must not iterate Go maps directly — iteration order is randomized by
//     the runtime. Loops are accepted only when a conservative structural
//     analysis proves the body order-insensitive, or when the site carries an
//     explicit justified directive. The blessed fix is
//     detmap.SortedKeys (internal/detmap).
//
//   - unchecked-errors: in internal/crypt/... and internal/erasure/... a
//     dropped error return means silently accepting a forged or corrupt
//     packet, so every error must be consumed. Methods on values
//     implementing hash.Hash are exempt (Write is specified to never return
//     an error).
//
// A finding may be suppressed with a directive on the same line or the line
// immediately above:
//
//	//lrlint:ignore <rule> <reason>
//
// The reason is mandatory; a directive without one is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the finding as "file:line:col rule: message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Rule names, used in output and in //lrlint:ignore directives.
const (
	RuleWallclock  = "no-wallclock"
	RuleGlobalRand = "no-global-rand"
	RuleMapRange   = "map-range"
	RuleErrcheck   = "unchecked-error"
	RuleDirective  = "directive"
)

// Config scopes the passes to package trees. Paths are module-relative
// prefixes: an entry "internal/core" covers the package at that path and
// everything below it.
type Config struct {
	// ModulePath is the module's import-path prefix (from go.mod).
	ModulePath string
	// OrderedPackages lists the packages whose event scheduling or packet
	// emission makes map-iteration order observable; map-range-determinism
	// applies there.
	OrderedPackages []string
	// ErrorCriticalPackages lists the packages where a swallowed error means
	// accepting forged or corrupt data; unchecked-errors applies there.
	ErrorCriticalPackages []string
	// TrimPrefix, when non-empty, is stripped from diagnostic file names so
	// output and golden files are stable across checkouts.
	TrimPrefix string
}

// DefaultConfig returns the repo's production scoping: the packages that
// schedule events, emit packets or merge experiment records, and the
// crypto/erasure trees.
func DefaultConfig(modulePath string) Config {
	return Config{
		ModulePath: modulePath,
		OrderedPackages: []string{
			"internal/sim",
			"internal/core",
			"internal/dissem",
			"internal/deluge",
			"internal/seluge",
			"internal/radio",
			"internal/trickle",
			"internal/harness",
		},
		ErrorCriticalPackages: []string{
			"internal/crypt",
			"internal/erasure",
		},
	}
}

// inScope reports whether the package import path falls under one of the
// module-relative prefixes.
func (c Config) inScope(pkgPath string, prefixes []string) bool {
	for _, p := range prefixes {
		full := c.ModulePath + "/" + p
		if pkgPath == full || strings.HasPrefix(pkgPath, full+"/") {
			return true
		}
	}
	return false
}

// isInternal reports whether the package lives under an internal/ tree.
func isInternal(pkgPath string) bool {
	return strings.Contains(pkgPath, "/internal/") || strings.HasSuffix(pkgPath, "/internal")
}

// Run applies every pass to every package and returns the surviving
// findings sorted by position. Directive-suppressed findings are removed;
// malformed directives are reported.
func Run(pkgs []*Package, cfg Config) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		dirs, bad := collectDirectives(pkg)
		var raw []Diagnostic
		if isInternal(pkg.ImportPath) {
			raw = append(raw, checkWallclock(pkg)...)
		}
		raw = append(raw, checkGlobalRand(pkg)...)
		if cfg.inScope(pkg.ImportPath, cfg.OrderedPackages) {
			raw = append(raw, checkMapRange(pkg)...)
		}
		if cfg.inScope(pkg.ImportPath, cfg.ErrorCriticalPackages) {
			raw = append(raw, checkErrors(pkg)...)
		}
		for _, d := range raw {
			if !dirs.suppresses(d) {
				diags = append(diags, d)
			}
		}
		diags = append(diags, bad...)
	}
	for i := range diags {
		if cfg.TrimPrefix != "" {
			if rel, err := filepath.Rel(cfg.TrimPrefix, diags[i].Pos.Filename); err == nil {
				diags[i].Pos.Filename = rel
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags
}

// directive is one parsed //lrlint:ignore comment.
type directive struct {
	rule string
}

// directiveIndex maps file -> line -> directives in force on that line.
type directiveIndex map[string]map[int][]directive

// suppresses reports whether a directive for the finding's rule sits on the
// finding's line or the line immediately above it.
func (idx directiveIndex) suppresses(d Diagnostic) bool {
	lines := idx[d.Pos.Filename]
	for _, ln := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, dir := range lines[ln] {
			if dir.rule == d.Rule {
				return true
			}
		}
	}
	return false
}

const directivePrefix = "//lrlint:ignore"

// collectDirectives scans every comment in the package for lrlint
// directives, returning the index plus findings for malformed ones.
func collectDirectives(pkg *Package) (directiveIndex, []Diagnostic) {
	idx := make(directiveIndex)
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(c.Text, directivePrefix))
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:  pos,
						Rule: RuleDirective,
						Msg:  "malformed directive: want //lrlint:ignore <rule> <reason>",
					})
					continue
				}
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int][]directive)
					idx[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], directive{rule: fields[0]})
			}
		}
	}
	return idx, bad
}

// walkNonTest visits every AST node of the package's (non-test) files.
func walkNonTest(pkg *Package, visit func(f *ast.File, n ast.Node) bool) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			return visit(f, n)
		})
	}
}
