package lint

// The effect-purity pass: a summary-based interprocedural effect analysis
// that replaces the pattern-scoped no-wallclock / no-global-rand / map-range
// passes of earlier lrlint versions with one whole-program guarantee.
//
// Every declared function gets an effect set over the six-element lattice
//
//	{wallclock, rand, maporder, fs, net, spawn}
//
// computed in two layers:
//
//   - intrinsic effects are syntactic facts of the body itself (a time.Now
//     reference, a go statement, a map range whose body fails the
//     order-insensitivity proof in maprange.go, ...), collected once per
//     package and cached — the same packages are re-analyzed a dozen times
//     by the selfbench harness;
//
//   - the summary is the least fixpoint of
//     summary(F) = (intrinsic(F) ∪ ⋃ summary(callee)) &^ declared(F)
//     over the module flow graph (static calls, function-value references,
//     interface dispatch expanded through the implementers table), computed
//     SCC by SCC in reverse topological order so recursion converges.
//
// declared(F) is the mask of a //lrlint:effects(e1,e2) <reason> directive on
// F's declaration: a justified boundary. Masking applies to the summary, so
// a declared effect is excused for F *and* for everything F's callers reach
// only through F — the harness can declare its timeout timer once instead of
// every caller re-justifying it.
//
// Findings come from two sources, deduplicated by construction:
//
//   - scope findings preserve the old passes' coverage exactly: a wallclock
//     intrinsic in an internal/ package, a global-rand intrinsic anywhere,
//     an order-sensitive map range in an OrderedPackages package — reported
//     at the offending expression unless the enclosing function declares the
//     effect;
//
//   - rooted findings certify the deterministic core: a forward propagation
//     from Config.EffectRoots (sim.Engine.Run and the experiment entry
//     points) carries the set of still-denied effects through the flow
//     graph, stopping per effect at declaring boundaries; any reachable
//     function whose unmasked intrinsics intersect the live set is a
//     finding, positioned at the intrinsic site — skipped when a scope
//     finding already covers that (effect, package), so nothing is reported
//     twice.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"sync"
)

// effect is one element of the effect lattice.
type effect uint8

const (
	effWallclock effect = iota
	effRand
	effMapOrder
	effFS
	effNet
	effSpawn
	numEffects
)

// effectNames maps effects to the names used in //lrlint:effects(...)
// directives and findings, in canonical (bit) order.
var effectNames = [numEffects]string{
	"wallclock", "rand", "maporder", "fs", "net", "spawn",
}

// effectByName is the inverse of effectNames.
var effectByName = func() map[string]effect {
	m := make(map[string]effect, numEffects)
	for e, name := range effectNames {
		m[name] = effect(e)
	}
	return m
}()

// effectSet is a bitset over the effect lattice; join is bitwise or.
type effectSet uint16

const allEffects = effectSet(1<<numEffects) - 1

func (s effectSet) has(e effect) bool       { return s&(1<<e) != 0 }
func (s effectSet) with(e effect) effectSet { return s | 1<<e }

// String renders the set in canonical order, for directives and messages.
func (s effectSet) String() string {
	var names []string
	for e := effect(0); e < numEffects; e++ {
		if s.has(e) {
			names = append(names, effectNames[e])
		}
	}
	return strings.Join(names, ",")
}

// effectDecl is one parsed //lrlint:effects(...) directive attached to a
// function declaration.
type effectDecl struct {
	mask effectSet
	pos  token.Position
}

// effectSite is one intrinsic-effect occurrence in source.
type effectSite struct {
	eff  effect
	pos  token.Position
	what string // "time.Now reads the wall clock", for messages
}

// pkgIntrinsics holds a package's intrinsic effect facts: sites grouped by
// enclosing declared function, plus loose sites in package-level
// initializers. The contents depend only on the package's AST and types, so
// they are cached across Run calls (the selfbench harness re-runs the
// analyzer once per rule over the same packages).
type pkgIntrinsics struct {
	byFunc map[*ast.FuncDecl][]effectSite
	loose  []effectSite
}

var intrinsicCache sync.Map // *Package -> *pkgIntrinsics

// wallclockFuncs are the package time functions that read or wait on the
// wall clock. Pure conversions and formatting (time.Duration,
// Duration.String, ...) stay legal.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"AfterFunc": true,
	"Since":     true,
	"Until":     true,
}

// globalRandAllowed are the package-level math/rand functions that do NOT
// draw from the process-global source: constructors for explicitly seeded
// streams. Everything else at package level (rand.Intn, rand.Float64,
// rand.Shuffle, rand.Perm, ...) consumes the global source, whose state is
// shared across the process and seeded differently every run.
var globalRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true, // takes a *Rand argument; no global state
	// math/rand/v2 constructors.
	"NewPCG":     true,
	"NewChaCha8": true,
}

// fsFuncs are the package os functions that touch the filesystem. Process
// metadata reads (os.Getenv, os.Args) are left out: they are stable within
// a run.
var fsFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true,
	"Remove": true, "RemoveAll": true, "Rename": true, "Truncate": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"Stat": true, "Lstat": true, "Chmod": true, "Chtimes": true,
	"Symlink": true, "Link": true, "Getwd": true, "TempDir": true,
	"UserHomeDir": true,
}

// intrinsicsOf computes (or fetches) the package's intrinsic effect sites.
func intrinsicsOf(pkg *Package) *pkgIntrinsics {
	if v, ok := intrinsicCache.Load(pkg); ok {
		return v.(*pkgIntrinsics)
	}
	pin := &pkgIntrinsics{byFunc: make(map[*ast.FuncDecl][]effectSite)}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, _ := decl.(*ast.FuncDecl)
			record := func(s effectSite) {
				if fd != nil {
					pin.byFunc[fd] = append(pin.byFunc[fd], s)
				} else {
					pin.loose = append(pin.loose, s)
				}
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					if s, ok := selectorEffect(pkg, n); ok {
						record(s)
					}
				case *ast.GoStmt:
					record(effectSite{
						eff:  effSpawn,
						pos:  pkg.Fset.Position(n.Pos()),
						what: "go statement forks execution off the deterministic event loop",
					})
				case *ast.RangeStmt:
					t := pkg.Info.TypeOf(n.X)
					if t == nil {
						return true
					}
					if _, isMap := t.Underlying().(*types.Map); !isMap {
						return true
					}
					if orderInsensitive(n, pkg.Info) {
						return true
					}
					record(effectSite{
						eff:  effMapOrder,
						pos:  pkg.Fset.Position(n.Pos()),
						what: "map iteration order is randomized",
					})
				}
				return true
			})
		}
	}
	actual, _ := intrinsicCache.LoadOrStore(pkg, pin)
	return actual.(*pkgIntrinsics)
}

// selectorEffect classifies a selector reference to an external function as
// an intrinsic effect: wall-clock reads, global-rand draws, crypto/rand
// entropy, filesystem and network touches.
func selectorEffect(pkg *Package, sel *ast.SelectorExpr) (effectSite, bool) {
	if v, ok := pkg.Info.Uses[sel.Sel].(*types.Var); ok {
		// crypto/rand.Reader is a package variable, not a function, but
		// handing it to a signer draws fresh entropy all the same.
		if v.Pkg() != nil && v.Pkg().Path() == "crypto/rand" && v.Name() == "Reader" {
			return effectSite{
				eff:  effRand,
				pos:  pkg.Fset.Position(sel.Pos()),
				what: "crypto/rand.Reader draws fresh entropy",
			}, true
		}
		return effectSite{}, false
	}
	obj, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return effectSite{}, false
	}
	path := obj.Pkg().Path()
	pos := pkg.Fset.Position(sel.Pos())
	switch {
	case path == "time" && wallclockFuncs[obj.Name()]:
		return effectSite{
			eff:  effWallclock,
			pos:  pos,
			what: "time." + obj.Name() + " reads the wall clock",
		}, true
	case path == "math/rand" || path == "math/rand/v2":
		// Methods (receiver non-nil) operate on an explicit stream.
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			return effectSite{}, false
		}
		if globalRandAllowed[obj.Name()] {
			return effectSite{}, false
		}
		return effectSite{
			eff:  effRand,
			pos:  pos,
			what: "rand." + obj.Name() + " uses the process-global source",
		}, true
	case path == "crypto/rand":
		return effectSite{
			eff:  effRand,
			pos:  pos,
			what: "crypto/rand." + obj.Name() + " draws fresh entropy",
		}, true
	case path == "os" && fsFuncs[obj.Name()]:
		return effectSite{
			eff:  effFS,
			pos:  pos,
			what: "os." + obj.Name() + " touches the filesystem",
		}, true
	case path == "net" || path == "net/http":
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			return effectSite{}, false
		}
		return effectSite{
			eff:  effNet,
			pos:  pos,
			what: path + "." + obj.Name() + " performs real network I/O",
		}, true
	}
	return effectSite{}, false
}

// scopeCovered reports whether the effect falls under the legacy per-package
// scope policy, in which case a scope finding is emitted at every intrinsic
// site and the rooted reporter stays quiet for that (effect, package).
func scopeCovered(cfg Config, e effect, pkgPath string) bool {
	switch e {
	case effWallclock:
		return isInternal(pkgPath)
	case effRand:
		return true
	case effMapOrder:
		return cfg.inScope(pkgPath, cfg.OrderedPackages)
	default:
		return false
	}
}

// scopeMsg renders a scope finding's message for the given intrinsic site.
func scopeMsg(s effectSite) string {
	switch s.eff {
	case effWallclock:
		return s.what + "; simulated code must use virtual sim.Time"
	case effRand:
		return s.what + "; thread an explicitly seeded rand.New(rand.NewSource(seed)) stream instead"
	case effMapOrder:
		return s.what + "; iterate detmap.SortedKeys or justify with //lrlint:ignore " + RuleEffectPurity + " <reason>"
	default:
		return s.what
	}
}

// effectFacts is the per-function result of the interprocedural analysis.
type effectFacts struct {
	intrinsic effectSet // unmasked own effects
	declared  effectSet // //lrlint:effects mask, zero without a directive
	full      effectSet // intrinsic ∪ callee summaries, before masking
	summary   effectSet // full &^ declared; what callers inherit
	live      effectSet // denied effects still live here from a root
	via       string    // root that first reached this function
}

// checkEffects runs the effect-purity pass over the module index.
func checkEffects(idx *modIndex, decls map[*ast.FuncDecl]*effectDecl) []Diagnostic {
	facts := make(map[*funcInfo]*effectFacts, len(idx.order))
	for _, fi := range idx.order {
		f := &effectFacts{}
		for _, s := range intrinsicsOf(fi.pkg).byFunc[fi.decl] {
			f.intrinsic = f.intrinsic.with(s.eff)
		}
		if d := decls[fi.decl]; d != nil {
			f.declared = d.mask
		}
		facts[fi] = f
	}

	computeSummaries(idx, facts)
	propagateLive(idx, facts)

	var diags []Diagnostic

	// Scope findings: legacy per-package coverage, at every intrinsic site,
	// unless the enclosing function declares the effect. Loose sites
	// (package-level initializers) have no declaration to consult.
	for _, pkg := range idx.pkgs {
		pin := intrinsicsOf(pkg)
		for _, s := range pin.loose {
			if scopeCovered(idx.cfg, s.eff, pkg.ImportPath) {
				diags = append(diags, Diagnostic{Pos: s.pos, Rule: RuleEffectPurity, Msg: scopeMsg(s)})
			}
		}
	}
	for _, fi := range idx.order {
		f := facts[fi]
		for _, s := range intrinsicsOf(fi.pkg).byFunc[fi.decl] {
			if f.declared.has(s.eff) {
				continue
			}
			if scopeCovered(idx.cfg, s.eff, fi.pkg.ImportPath) {
				diags = append(diags, Diagnostic{Pos: s.pos, Rule: RuleEffectPurity, Msg: scopeMsg(s)})
			}
		}
	}

	// Rooted findings: reachable unmasked intrinsics outside the scope
	// policy, positioned at the first site of each offending effect.
	for _, fi := range idx.order {
		f := facts[fi]
		bad := f.live & f.intrinsic &^ f.declared
		if bad == 0 {
			continue
		}
		reported := effectSet(0)
		for _, s := range intrinsicsOf(fi.pkg).byFunc[fi.decl] {
			if !bad.has(s.eff) || reported.has(s.eff) || scopeCovered(idx.cfg, s.eff, fi.pkg.ImportPath) {
				continue
			}
			reported = reported.with(s.eff)
			diags = append(diags, Diagnostic{
				Pos:  s.pos,
				Rule: RuleEffectPurity,
				Msg: fmt.Sprintf("%s in %s, which is reachable from deterministic root %s; make it pure or declare //lrlint:effects(%s) <reason> on the justified boundary",
					s.what, fi.qname, f.via, effectNames[s.eff]),
			})
		}
	}

	// A declared effect that neither the function nor anything it reaches
	// produces is stale, exactly like an unused ignore directive.
	if idx.cfg.UnusedIgnores && idx.cfg.ruleEnabled(RuleUnusedIgnore) {
		for _, fi := range idx.order {
			d := decls[fi.decl]
			if d == nil {
				continue
			}
			unused := d.mask &^ facts[fi].full
			for e := effect(0); e < numEffects; e++ {
				if unused.has(e) {
					diags = append(diags, Diagnostic{
						Pos:  d.pos,
						Rule: RuleUnusedIgnore,
						Msg:  fmt.Sprintf("directive declares effect %q that neither this function nor its callees produce; remove it", effectNames[e]),
					})
				}
			}
		}
	}
	return diags
}

// computeSummaries runs the lattice fixpoint: Tarjan SCC condensation of the
// flow graph, then one pass over the SCCs in the reverse-topological order
// Tarjan emits them (callees' components complete before callers'), with an
// inner iteration per component until recursion converges. Joins are
// monotone over a finite lattice, so the fixpoint is reached and is
// independent of visit order.
func computeSummaries(idx *modIndex, facts map[*funcInfo]*effectFacts) {
	sccs := condense(idx)
	for _, comp := range sccs {
		for changed := true; changed; {
			changed = false
			for _, fi := range comp {
				f := facts[fi]
				full := f.intrinsic
				for _, ci := range idx.flowEdges(fi) {
					full |= facts[ci].summary
				}
				if full != f.full {
					f.full = full
					f.summary = full &^ f.declared
					changed = true
				}
			}
		}
	}
}

// condense returns the strongly connected components of the module flow
// graph in reverse topological order (every cross-component edge points from
// a later component to an earlier one). Iterative Tarjan, so pathological
// call chains cannot overflow the goroutine stack.
func condense(idx *modIndex) [][]*funcInfo {
	type nodeState struct {
		index, lowlink int
		onStack        bool
	}
	state := make(map[*funcInfo]*nodeState, len(idx.order))
	var stack []*funcInfo
	var sccs [][]*funcInfo
	next := 1

	type frame struct {
		fi    *funcInfo
		edges []*funcInfo
		i     int
	}
	for _, root := range idx.order {
		if state[root] != nil {
			continue
		}
		work := []frame{{fi: root, edges: idx.flowEdges(root)}}
		st := &nodeState{index: next, lowlink: next}
		next++
		state[root] = st
		stack = append(stack, root)
		st.onStack = true
		for len(work) > 0 {
			fr := &work[len(work)-1]
			cur := state[fr.fi]
			advanced := false
			for fr.i < len(fr.edges) {
				e := fr.edges[fr.i]
				es := state[e]
				if es == nil {
					fr.i++ // return here to take e's lowlink after it pops
					es = &nodeState{index: next, lowlink: next}
					next++
					state[e] = es
					stack = append(stack, e)
					es.onStack = true
					work = append(work, frame{fi: e, edges: idx.flowEdges(e)})
					advanced = true
					break
				}
				if es.onStack {
					if es.index < cur.lowlink {
						cur.lowlink = es.index
					}
				}
				fr.i++
			}
			if advanced {
				continue
			}
			if cur.lowlink == cur.index {
				var comp []*funcInfo
				for {
					n := len(stack) - 1
					fi := stack[n]
					stack = stack[:n]
					state[fi].onStack = false
					comp = append(comp, fi)
					if fi == fr.fi {
						break
					}
				}
				sccs = append(sccs, comp)
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := state[work[len(work)-1].fi]
				if cur.lowlink < parent.lowlink {
					parent.lowlink = cur.lowlink
				}
			}
		}
	}
	return sccs
}

// propagateLive carries the denied-effect set forward from the configured
// roots through the flow graph, masking each declaring boundary's effects so
// a justified boundary excuses its whole subtree for those effects. BFS in
// root order keeps the attributed root deterministic.
func propagateLive(idx *modIndex, facts map[*funcInfo]*effectFacts) {
	var queue []*funcInfo
	for _, root := range idx.cfg.EffectRoots {
		fi := idx.byName[root]
		if fi == nil {
			continue
		}
		f := facts[fi]
		if f.live != allEffects {
			f.live = allEffects
			f.via = fi.qname
			queue = append(queue, fi)
		}
	}
	for len(queue) > 0 {
		fi := queue[0]
		queue = queue[1:]
		f := facts[fi]
		out := f.live &^ f.declared
		if out == 0 {
			continue
		}
		for _, ci := range idx.flowEdges(fi) {
			cf := facts[ci]
			if cf.live|out == cf.live {
				continue
			}
			if cf.live == 0 {
				cf.via = f.via
			}
			cf.live |= out
			queue = append(queue, ci)
		}
	}
}
