package lint

import (
	"go/ast"
	"go/types"
)

// wallclockFuncs are the package time functions that read or wait on the
// wall clock. internal/ code must use the virtual sim.Time clock instead;
// pure conversions and formatting (time.Duration, Duration.String, ...) stay
// legal.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"AfterFunc": true,
	"Since":     true,
	"Until":     true,
}

// checkWallclock implements the no-wallclock pass: any reference (call or
// function value) to a wall-clock function of package time is a finding.
func checkWallclock(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	walkNonTest(pkg, func(_ *ast.File, n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
			return true
		}
		if wallclockFuncs[obj.Name()] {
			diags = append(diags, Diagnostic{
				Pos:  pkg.Fset.Position(sel.Pos()),
				Rule: RuleWallclock,
				Msg:  "time." + obj.Name() + " reads the wall clock; simulated code must use virtual sim.Time",
			})
		}
		return true
	})
	return diags
}
