package lint

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestLoadModuleParseFailure pins the load-failure path: a module containing
// a file that does not parse must surface a parse error naming the file, not
// a panic or a silent skip.
func TestLoadModuleParseFailure(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "go.mod"), "module broken\n\ngo 1.22\n")
	writeFile(t, filepath.Join(root, "broken.go"), "package broken\n\nfunc Oops( {\n")
	if _, _, err := LoadModule(root); err == nil {
		t.Fatal("LoadModule accepted a module with a syntax error")
	} else if !strings.Contains(err.Error(), "parse") || !strings.Contains(err.Error(), "broken.go") {
		t.Fatalf("parse failure error does not name the file: %v", err)
	}
}

// TestLoadModuleMissingGoMod pins the error for a root with no go.mod and
// for a go.mod with no module directive.
func TestLoadModuleMissingGoMod(t *testing.T) {
	if _, _, err := LoadModule(t.TempDir()); err == nil {
		t.Fatal("LoadModule accepted a directory without go.mod")
	}
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "go.mod"), "go 1.22\n")
	if _, _, err := LoadModule(root); err == nil {
		t.Fatal("LoadModule accepted a go.mod without a module directive")
	} else if !strings.Contains(err.Error(), "module directive") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestLoadModuleCycle runs the loader over the committed cyclic fixture
// module: two packages importing each other must be rejected by the up-front
// cycle check (a deadlock here would hang the test, not fail it, so the
// error text is asserted too).
func TestLoadModuleCycle(t *testing.T) {
	_, _, err := LoadModule(filepath.Join("testdata", "src", "cyclemod"))
	if err == nil {
		t.Fatal("LoadModule accepted a module with an import cycle")
	}
	if !strings.Contains(err.Error(), "import cycle through cyc/internal/") {
		t.Fatalf("cycle error does not name a cycle member: %v", err)
	}
}

// TestLoadModuleDeterministicOrder pins the contract the parallel
// type-checker must preserve: repeated loads return the same packages in the
// same (sorted) order, and the analysis over them renders byte-identical
// output. The taint fixture module is used because it has real cross-package
// imports, so check order genuinely varies between goroutine schedules.
func TestLoadModuleDeterministicOrder(t *testing.T) {
	root := filepath.Join("testdata", "src", "taintmod")
	var prevPaths []string
	var prevOut string
	for i := 0; i < 3; i++ {
		pkgs, modPath, err := LoadModule(root)
		if err != nil {
			t.Fatalf("LoadModule: %v", err)
		}
		paths := make([]string, len(pkgs))
		for j, p := range pkgs {
			paths[j] = p.ImportPath
		}
		if !sort.StringsAreSorted(paths) {
			t.Fatalf("packages not sorted by import path: %v", paths)
		}
		var sb strings.Builder
		for _, d := range Run(pkgs, DefaultConfig(modPath)) {
			sb.WriteString(d.String())
			sb.WriteByte('\n')
		}
		out := sb.String()
		if i > 0 {
			if strings.Join(paths, ",") != strings.Join(prevPaths, ",") {
				t.Fatalf("load %d returned different package order:\n%v\nvs\n%v", i, paths, prevPaths)
			}
			if out != prevOut {
				t.Fatalf("load %d produced different diagnostics:\n%s\nvs\n%s", i, out, prevOut)
			}
		}
		prevPaths, prevOut = paths, out
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
