package lint

import (
	"go/ast"
	"go/types"
)

// checkTraceTime implements the trace-sim-time pass: in the trace packages,
// event structures and recording APIs must stamp with virtual sim.Time, never
// wall-clock time.Time. A time.Time smuggled into an event struct field or a
// recording function's signature would tie trace bytes to the host machine
// even if no pass of the no-wallclock rule fires (the value could arrive
// pre-read from a caller outside the scoped tree). Pure durations
// (time.Duration) stay legal — they carry no clock reading.
func checkTraceTime(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	flag := func(f *ast.Field, where string) {
		t := pkg.Info.Types[f.Type].Type
		if t == nil || !containsWallTime(t, 0) {
			return
		}
		diags = append(diags, Diagnostic{
			Pos:  pkg.Fset.Position(f.Type.Pos()),
			Rule: RuleTraceTime,
			Msg:  "time.Time in a trace " + where + "; trace records must carry virtual sim.Time",
		})
	}
	walkNonTest(pkg, func(_ *ast.File, n ast.Node) bool {
		switch v := n.(type) {
		case *ast.StructType:
			for _, f := range v.Fields.List {
				flag(f, "struct field")
			}
		case *ast.FuncType:
			if v.Params != nil {
				for _, f := range v.Params.List {
					flag(f, "parameter")
				}
			}
			if v.Results != nil {
				for _, f := range v.Results.List {
					flag(f, "result")
				}
			}
		}
		return true
	})
	return diags
}

// containsWallTime reports whether t is, or structurally contains, the
// wall-clock type time.Time (through pointers, slices, arrays, maps and
// channels). Named wrapper types are not unwrapped past a small depth — a
// type three layers deep is no longer "a trace field holding a timestamp".
func containsWallTime(t types.Type, depth int) bool {
	if depth > 3 {
		return false
	}
	switch v := t.(type) {
	case *types.Named:
		if obj := v.Obj(); obj != nil && obj.Pkg() != nil &&
			obj.Pkg().Path() == "time" && obj.Name() == "Time" {
			return true
		}
		return containsWallTime(v.Underlying(), depth+1)
	case *types.Pointer:
		return containsWallTime(v.Elem(), depth+1)
	case *types.Slice:
		return containsWallTime(v.Elem(), depth+1)
	case *types.Array:
		return containsWallTime(v.Elem(), depth+1)
	case *types.Map:
		return containsWallTime(v.Key(), depth+1) || containsWallTime(v.Elem(), depth+1)
	case *types.Chan:
		return containsWallTime(v.Elem(), depth+1)
	}
	return false
}
