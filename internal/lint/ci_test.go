package lint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func mkDiag(file, rule, msg string, line int) Diagnostic {
	d := Diagnostic{Rule: rule, Msg: msg}
	d.Pos.Filename = file
	d.Pos.Line = line
	d.Pos.Column = 3
	return d
}

// TestBaselineRoundTrip pins the artifact semantics: a snapshot absorbs
// exactly the findings it recorded, stays valid when lines move, and is
// count-aware for duplicate messages.
func TestBaselineRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		mkDiag("a.go", RuleAllocHot, "make in loop", 10),
		mkDiag("a.go", RuleAllocHot, "make in loop", 42),
		mkDiag("b.go", RuleEffectPurity, "map order leak", 7),
	}
	path := filepath.Join(t.TempDir(), "base.json")
	if err := NewBaseline(diags).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := base.Subtract(diags); len(got) != 0 {
		t.Fatalf("baseline did not absorb its own findings: %v", got)
	}

	// Line movement must not invalidate the baseline.
	moved := []Diagnostic{
		mkDiag("a.go", RuleAllocHot, "make in loop", 99),
		mkDiag("a.go", RuleAllocHot, "make in loop", 150),
		mkDiag("b.go", RuleEffectPurity, "map order leak", 1),
	}
	if got := base.Subtract(moved); len(got) != 0 {
		t.Fatalf("line movement invalidated the baseline: %v", got)
	}

	// A third copy of a twice-baselined finding is drift.
	extra := append(moved, mkDiag("a.go", RuleAllocHot, "make in loop", 200))
	got := base.Subtract(extra)
	if len(got) != 1 {
		t.Fatalf("count-aware subtract failed: got %d survivors, want 1", len(got))
	}

	// A finding the baseline never saw is drift.
	fresh := base.Subtract([]Diagnostic{mkDiag("c.go", RuleRNGProv, "untraceable stream", 5)})
	if len(fresh) != 1 {
		t.Fatalf("unknown finding was absorbed: got %d survivors, want 1", len(fresh))
	}
}

func TestBaselineVersionCheck(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(`{"version": 99, "findings": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Fatal("future-version baseline loaded without error")
	}
}

// TestSARIFStructure unmarshals the emitted log generically and asserts the
// shapes the SARIF 2.1.0 schema requires: $schema, version, one run with a
// named driver carrying the full rule catalog, and per-result physical
// locations.
func TestSARIFStructure(t *testing.T) {
	diags := []Diagnostic{
		mkDiag("internal/erasure/rs/rs.go", RuleAllocHot, "make in loop", 84),
		mkDiag("internal/harness/harness.go", RuleLockDiscipline, "unguarded write", 120),
	}
	out, err := ToSARIF(diags)
	if err != nil {
		t.Fatal(err)
	}
	var log map[string]any
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if got := log["$schema"]; got != "https://json.schemastore.org/sarif-2.1.0.json" {
		t.Errorf("$schema = %v", got)
	}
	if got := log["version"]; got != "2.1.0" {
		t.Errorf("version = %v", got)
	}
	runs, ok := log["runs"].([]any)
	if !ok || len(runs) != 1 {
		t.Fatalf("runs = %v", log["runs"])
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "lrlint" {
		t.Errorf("driver name = %v", driver["name"])
	}
	rules := driver["rules"].([]any)
	if len(rules) != len(AllRules) {
		t.Fatalf("driver carries %d rules, catalog has %d", len(rules), len(AllRules))
	}
	for i, r := range rules {
		rm := r.(map[string]any)
		if rm["id"] != AllRules[i] {
			t.Errorf("rule %d id = %v, want %s", i, rm["id"], AllRules[i])
		}
		desc := rm["shortDescription"].(map[string]any)
		if desc["text"] == "" {
			t.Errorf("rule %s has an empty shortDescription", AllRules[i])
		}
	}
	results := run["results"].([]any)
	if len(results) != len(diags) {
		t.Fatalf("results = %d, want %d", len(results), len(diags))
	}
	first := results[0].(map[string]any)
	if first["ruleId"] != RuleAllocHot {
		t.Errorf("ruleId = %v", first["ruleId"])
	}
	if first["level"] != "error" {
		t.Errorf("level = %v", first["level"])
	}
	if msg := first["message"].(map[string]any); msg["text"] != "make in loop" {
		t.Errorf("message.text = %v", msg["text"])
	}
	loc := first["locations"].([]any)[0].(map[string]any)
	phys := loc["physicalLocation"].(map[string]any)
	if uri := phys["artifactLocation"].(map[string]any)["uri"]; uri != "internal/erasure/rs/rs.go" {
		t.Errorf("artifact uri = %v", uri)
	}
	region := phys["region"].(map[string]any)
	if region["startLine"].(float64) != 84 || region["startColumn"].(float64) != 3 {
		t.Errorf("region = %v", region)
	}
}

// TestSARIFRuleSummariesComplete keeps the catalog and the SARIF summaries
// in lockstep: adding a rule without a summary is a test failure, not a
// silently blank row in the scanning UI.
func TestSARIFRuleSummariesComplete(t *testing.T) {
	for _, r := range AllRules {
		if ruleSummaries[r] == "" {
			t.Errorf("rule %s has no SARIF summary", r)
		}
	}
	for r := range ruleSummaries {
		if !KnownRule(r) {
			t.Errorf("summary for unknown rule %s", r)
		}
	}
}
