package lint

// This file builds the control-flow graphs the SSA-lite passes
// (lock-discipline, alloc-hotpath) analyze. golang.org/x/tools/go/ssa is
// deliberately not used — the repo's lint suite is stdlib-only — so this is a
// from-scratch statement-level CFG: basic blocks of ast.Stmt nodes connected
// by the edges if/for/range/switch/select/break/continue/return induce.
// It is not full SSA (no value numbering, no phi nodes); what the passes
// need is the *flow* structure — dominance, must-hold lock sets, and
// natural-loop membership — and a statement-level CFG carries exactly that.
//
// Simplifications, all conservative for the passes built on top:
//
//   - goto is treated as an opaque jump to the function exit (the module has
//     no goto in analyzed code; a goto-heavy function simply loses precision,
//     it never gains false "proven" facts for the must-analyses).
//   - panic calls do not terminate blocks; a lock "held" across a panic is
//     moot because the goroutine unwinds.
//   - Nested function literals are NOT inlined into the enclosing graph;
//     passes analyze them separately with their own CFG.

import (
	"go/ast"
	"go/token"
)

// cfgBlock is one basic block: a maximal run of statements with a single
// entry and the successor edges control flow can take afterwards.
type cfgBlock struct {
	index int
	nodes []ast.Node // statements in execution order
	succs []*cfgBlock
	preds []*cfgBlock
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock // every return/fallthrough-off-the-end edge lands here
	blocks []*cfgBlock

	// stmtBlock maps every recorded statement to its containing block.
	stmtBlock map[ast.Node]*cfgBlock
}

// cfgBuilder incrementally grows the graph. cur is the block under
// construction; a nil cur means the current position is unreachable (after a
// return or branch) and statements land in a fresh detached block.
type cfgBuilder struct {
	g   *funcCFG
	cur *cfgBlock

	// branch targets form a stack; label is empty for plain loops/switches.
	breaks    []branchTarget
	continues []branchTarget
}

type branchTarget struct {
	label string
	block *cfgBlock
}

// buildCFG constructs the CFG of one function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	g := &funcCFG{stmtBlock: make(map[ast.Node]*cfgBlock)}
	b := &cfgBuilder{g: g}
	g.entry = b.newBlock()
	g.exit = b.newBlock()
	b.cur = g.entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, g.exit)
	}
	return g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	from.succs = append(from.succs, to)
	to.preds = append(to.preds, from)
}

// startBlock begins a new block with an edge from cur (when reachable) and
// makes it current.
func (b *cfgBuilder) startBlock() *cfgBlock {
	blk := b.newBlock()
	if b.cur != nil {
		b.edge(b.cur, blk)
	}
	b.cur = blk
	return blk
}

// record appends a statement to the current block, materializing a detached
// block for unreachable code so every statement still has a home.
func (b *cfgBuilder) record(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.nodes = append(b.cur.nodes, n)
	b.g.stmtBlock[n] = b.cur
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt translates one statement. label is the name of an immediately
// enclosing LabeledStmt, consumed by loops and switches for labeled
// break/continue.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.LabeledStmt:
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.ReturnStmt:
		b.record(s)
		if b.cur != nil {
			b.edge(b.cur, b.g.exit)
		}
		b.cur = nil

	case *ast.BranchStmt:
		b.record(s)
		name := ""
		if s.Label != nil {
			name = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := findTarget(b.breaks, name); t != nil {
				b.edge(b.cur, t)
			}
		case token.CONTINUE:
			if t := findTarget(b.continues, name); t != nil {
				b.edge(b.cur, t)
			}
		case token.GOTO:
			b.edge(b.cur, b.g.exit) // opaque jump; see file comment
		}
		// FALLTHROUGH is wired by the switch builder.
		if s.Tok != token.FALLTHROUGH {
			b.cur = nil
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.record(s.Init)
		}
		b.record(s) // the condition evaluates in the block holding the If
		condBlk := b.cur
		b.startBlock()
		b.stmtList(s.Body.List)
		thenEnd := b.cur
		var elseEnd *cfgBlock
		if s.Else != nil {
			b.cur = condBlk
			b.startBlock()
			b.stmt(s.Else, "")
			elseEnd = b.cur
		}
		join := b.newBlock()
		if thenEnd != nil {
			b.edge(thenEnd, join)
		}
		if s.Else != nil {
			if elseEnd != nil {
				b.edge(elseEnd, join)
			}
		} else if condBlk != nil {
			b.edge(condBlk, join) // condition false skips the body
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.record(s.Init)
		}
		head := b.startBlock()
		if s.Cond != nil {
			b.g.stmtBlock[s.Cond] = head
			head.nodes = append(head.nodes, s.Cond)
		}
		after := b.newBlock()
		if s.Cond != nil {
			b.edge(head, after)
		}
		post := b.newBlock()
		b.pushLoop(label, after, post)
		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, post)
		}
		b.popLoop()
		if s.Post != nil {
			post.nodes = append(post.nodes, s.Post)
			b.g.stmtBlock[s.Post] = post
		}
		b.edge(post, head) // back edge
		b.cur = after

	case *ast.RangeStmt:
		// The range expression evaluates once, in the pre-header; the empty
		// head block carries the per-iteration dispatch so allocations in X
		// are not misattributed to the loop body.
		b.record(s)
		head := b.startBlock()
		after := b.newBlock()
		b.edge(head, after)
		b.pushLoop(label, after, head)
		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, head) // back edge
		}
		b.popLoop()
		b.cur = after

	case *ast.SwitchStmt:
		b.buildSwitch(s.Init, s, caseBodies(s.Body), label)

	case *ast.TypeSwitchStmt:
		b.buildSwitch(s.Init, s, caseBodies(s.Body), label)

	case *ast.SelectStmt:
		b.record(s)
		dispatch := b.cur
		after := b.newBlock()
		b.breaks = append(b.breaks, branchTarget{label: label, block: after})
		hasDefault := false
		for _, c := range s.Body.List {
			comm := c.(*ast.CommClause)
			if comm.Comm == nil {
				hasDefault = true
			}
			b.cur = dispatch
			b.startBlock()
			if comm.Comm != nil {
				b.record(comm.Comm)
			}
			b.stmtList(comm.Body)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		if len(s.Body.List) == 0 || (!hasDefault && false) {
			// An empty select blocks forever; keep after reachable only via
			// the (absent) clauses. Edge anyway so the graph stays connected.
			b.edge(dispatch, after)
		}
		b.cur = after

	default:
		// Assign, Decl, Expr, IncDec, Send, Go, Defer, Empty: straight-line.
		b.record(s)
	}
}

// buildSwitch wires a (type) switch: every case body branches from the
// dispatch block to the join; fallthrough chains into the next case body.
func (b *cfgBuilder) buildSwitch(init ast.Stmt, sw ast.Stmt, cases []*caseBody, label string) {
	if init != nil {
		b.record(init)
	}
	b.record(sw) // tag / assign evaluate in the dispatch block
	dispatch := b.cur
	after := b.newBlock()
	b.breaks = append(b.breaks, branchTarget{label: label, block: after})

	bodies := make([]*cfgBlock, len(cases))
	for i := range cases {
		bodies[i] = b.newBlock()
		if dispatch != nil {
			b.edge(dispatch, bodies[i])
		}
	}
	hasDefault := false
	for i, c := range cases {
		if c.isDefault {
			hasDefault = true
		}
		b.cur = bodies[i]
		b.stmtList(c.stmts)
		if b.cur != nil {
			if c.fallsThrough && i+1 < len(cases) {
				b.edge(b.cur, bodies[i+1])
			} else {
				b.edge(b.cur, after)
			}
		}
	}
	if !hasDefault && dispatch != nil {
		b.edge(dispatch, after)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

type caseBody struct {
	stmts        []ast.Stmt
	isDefault    bool
	fallsThrough bool
}

func caseBodies(body *ast.BlockStmt) []*caseBody {
	var out []*caseBody
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		cb := &caseBody{stmts: cc.Body, isDefault: cc.List == nil}
		if n := len(cc.Body); n > 0 {
			if br, ok := cc.Body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				cb.fallsThrough = true
			}
		}
		out = append(out, cb)
	}
	return out
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *cfgBlock) {
	b.breaks = append(b.breaks, branchTarget{label: label, block: brk})
	b.continues = append(b.continues, branchTarget{label: label, block: cont})
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// findTarget resolves a break/continue to the innermost matching target.
func findTarget(stack []branchTarget, label string) *cfgBlock {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}
