package lint

// The scan-complexity pass: a static gate on the asymptotics of per-event
// code, built for the ROADMAP's 100k–1M-node scale work. A loop whose trip
// count is proportional to the node population is fine in setup code but
// fatal inside the per-event path — every delivered packet would pay O(nodes)
// and a dissemination round O(nodes²).
//
// Loop trip counts are classified over the population lattice
//
//	unknown < const < packets < pages < neighbors < nodes
//
// by binding collection types and producer calls to classes:
//
//   - Config.PopulationTypes binds named types ("internal/packet.NodeID" →
//     nodes): a map keyed by a nodes-class type holds O(nodes) entries; a
//     slice of a nodes-class element is a node collection;
//   - Config.PopulationCalls binds producer functions ("topo.Graph.Neighbors"
//     → neighbors); Config.PopulationPropagate marks transparent wrappers
//     (detmap.SortedKeys) whose result class joins their argument classes;
//   - //lrlint:population <class> on a type declaration binds module types
//     without touching the analyzer's config (used by fixture modules and
//     the check.sh probe).
//
// Classification is interprocedural: parameter classes join over every call
// site's argument classes and struct-field classes join over every recorded
// assignment (both via the module index), iterated to a fixpoint — so
// `make([]int, graph.NumNodes())` stored in a field classifies loops over
// that field as nodes wherever they occur.
//
// Two findings are emitted:
//
//   - an O(nodes) loop in a function reachable from the per-event roots
//     (Config.EventRoots — radio delivery and broadcast, fault dispatch,
//     trickle timers — plus //lrlint:eventroot-marked declarations), over
//     the same flow graph the effect pass uses;
//   - an O(nodes) loop lexically nested inside another O(nodes) loop
//     anywhere — O(nodes²) blocks the scale work even in setup code.
//
// Suppression is the ordinary //lrlint:ignore scan-complexity <reason>
// directive, which is how degree-bounded maps (SNACK server candidates,
// per-neighbor tracking tables) carry their justification in source.

import (
	"fmt"
	"go/ast"
	"go/types"
)

// popClass is one element of the population lattice; join is max.
type popClass uint8

const (
	popUnknown popClass = iota
	popConst
	popPackets
	popPages
	popNeighbors
	popNodes
)

// popClassNames maps directive/config class names to lattice elements.
var popClassNames = map[string]popClass{
	"const":     popConst,
	"packets":   popPackets,
	"pages":     popPages,
	"neighbors": popNeighbors,
	"nodes":     popNodes,
}

// String renders the class for findings.
func (c popClass) String() string {
	for name, cls := range popClassNames {
		if cls == c {
			return name
		}
	}
	return "unknown"
}

func joinPop(a, b popClass) popClass {
	if a > b {
		return a
	}
	return b
}

// scanAnalysis holds the interprocedural classification state.
type scanAnalysis struct {
	idx *modIndex

	// popTypes binds module type objects via //lrlint:population directives.
	popTypes map[*types.TypeName]popClass

	paramClass map[*types.Var]popClass
	fieldClass map[*types.Var]popClass

	// assigns lazily caches, per function, the RHS expressions assigned to
	// each local variable.
	assigns map[*funcInfo]map[*types.Var][]ast.Expr
}

// checkScanComplexity runs the scan-complexity pass over the module index.
func checkScanComplexity(idx *modIndex, eventRoots map[*ast.FuncDecl]bool, popTypes map[*types.TypeName]popClass) []Diagnostic {
	sc := &scanAnalysis{
		idx:        idx,
		popTypes:   popTypes,
		paramClass: make(map[*types.Var]popClass),
		fieldClass: make(map[*types.Var]popClass),
		assigns:    make(map[*funcInfo]map[*types.Var][]ast.Expr),
	}
	sc.fixpoint()

	rooted, via := sc.eventReach(eventRoots)

	var diags []Diagnostic
	for _, fi := range idx.order {
		diags = append(diags, sc.scanFunc(fi, rooted[fi], via[fi])...)
	}
	return diags
}

// fixpoint iterates parameter and field classification to a fixed point.
// Joins are monotone over a finite lattice of height 5, so the loop
// terminates; the round cap is a safety net, not a correctness device.
func (sc *scanAnalysis) fixpoint() {
	for round := 0; round < 10; round++ {
		changed := false
		for _, fi := range sc.idx.order {
			sig, _ := fi.obj.Type().(*types.Signature)
			if sig == nil || sig.Params().Len() == 0 {
				continue
			}
			for _, site := range sc.idx.callSites[fi.obj] {
				if site.call.Ellipsis.IsValid() || len(site.call.Args) < sig.Params().Len() {
					continue
				}
				n := sig.Params().Len()
				if sig.Variadic() {
					n-- // variadic tail stays unclassified
				}
				for i := 0; i < n && i < len(site.call.Args); i++ {
					p := sig.Params().At(i)
					cls := sc.classOf(site.pkg, site.fn, site.call.Args[i], nil)
					if j := joinPop(sc.paramClass[p], cls); j != sc.paramClass[p] {
						sc.paramClass[p] = j
						changed = true
					}
				}
			}
		}
		for field, assigns := range sc.idx.fieldAssigns {
			cls := sc.fieldClass[field]
			for _, a := range assigns {
				cls = joinPop(cls, sc.classOf(a.pkg, a.fn, a.expr, nil))
			}
			if cls != sc.fieldClass[field] {
				sc.fieldClass[field] = cls
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// classOf computes the population class of an expression's value: for a
// collection, how many elements it holds; for an integer, how large it can
// grow. seen breaks assignment cycles between locals.
func (sc *scanAnalysis) classOf(pkg *Package, fn *funcInfo, e ast.Expr, seen map[*types.Var]bool) popClass {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return popConst
	case *ast.Ident:
		return sc.identClass(pkg, fn, e, seen)
	case *ast.SelectorExpr:
		obj := pkg.Info.Uses[e.Sel]
		if v, ok := obj.(*types.Var); ok {
			if cls := sc.typeClass(v.Type(), 0); cls != popUnknown {
				return cls
			}
			if v.IsField() {
				return sc.fieldClass[v]
			}
			return popUnknown
		}
		return sc.typeClassOfExpr(pkg, e)
	case *ast.UnaryExpr:
		return sc.classOf(pkg, fn, e.X, seen)
	case *ast.StarExpr:
		return sc.classOf(pkg, fn, e.X, seen)
	case *ast.BinaryExpr:
		return joinPop(sc.classOf(pkg, fn, e.X, seen), sc.classOf(pkg, fn, e.Y, seen))
	case *ast.IndexExpr:
		return sc.typeClassOfExpr(pkg, e)
	case *ast.SliceExpr:
		return sc.classOf(pkg, fn, e.X, seen)
	case *ast.CallExpr:
		return sc.callClass(pkg, fn, e, seen)
	default:
		return sc.typeClassOfExpr(pkg, e)
	}
}

// identClass resolves an identifier: constants are const-class, then the
// variable's own type binding, then parameter and local-assignment joins.
func (sc *scanAnalysis) identClass(pkg *Package, fn *funcInfo, id *ast.Ident, seen map[*types.Var]bool) popClass {
	obj := pkg.Info.Uses[id]
	if obj == nil {
		obj = pkg.Info.Defs[id]
	}
	switch v := obj.(type) {
	case *types.Const:
		return popConst
	case *types.Var:
		if cls := sc.typeClass(v.Type(), 0); cls != popUnknown {
			return cls
		}
		if seen[v] {
			return popUnknown
		}
		cls := sc.paramClass[v] // zero value popUnknown when not a parameter
		if v.IsField() {
			cls = joinPop(cls, sc.fieldClass[v])
		}
		if fn != nil {
			if seen == nil {
				seen = make(map[*types.Var]bool)
			}
			seen[v] = true
			for _, rhs := range sc.localAssigns(fn)[v] {
				cls = joinPop(cls, sc.classOf(pkg, fn, rhs, seen))
			}
			delete(seen, v)
		}
		return cls
	}
	return popUnknown
}

// localAssigns builds (once per function) the table of RHS expressions
// assigned to each variable in the body: plain and short-form assignments
// with matching arity, and var specs with initializers.
func (sc *scanAnalysis) localAssigns(fn *funcInfo) map[*types.Var][]ast.Expr {
	if t, ok := sc.assigns[fn]; ok {
		return t
	}
	t := make(map[*types.Var][]ast.Expr)
	info := fn.pkg.Info
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if v, ok := obj.(*types.Var); ok && !v.IsField() {
					t[v] = append(t[v], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) != len(n.Values) {
				return true
			}
			for i, id := range n.Names {
				if v, ok := info.Defs[id].(*types.Var); ok {
					t[v] = append(t[v], n.Values[i])
				}
			}
		}
		return true
	})
	sc.assigns[fn] = t
	return t
}

// callClass classifies call results: len/cap are transparent, make joins the
// made type with the size argument, bound producers take their configured
// class, propagate-marked wrappers join their arguments, and anything else
// falls back to the class of the call's result type.
func (sc *scanAnalysis) callClass(pkg *Package, fn *funcInfo, call *ast.CallExpr, seen map[*types.Var]bool) popClass {
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		cls := sc.typeClassOfExpr(pkg, call)
		if len(call.Args) == 1 {
			cls = joinPop(cls, sc.classOf(pkg, fn, call.Args[0], seen))
		}
		return cls
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "len", "cap":
				if len(call.Args) == 1 {
					return sc.classOf(pkg, fn, call.Args[0], seen)
				}
			case "make":
				cls := sc.typeClassOfExpr(pkg, call)
				if len(call.Args) >= 2 {
					cls = joinPop(cls, sc.classOf(pkg, fn, call.Args[1], seen))
				}
				return cls
			case "min", "max":
				cls := popUnknown
				for _, a := range call.Args {
					cls = joinPop(cls, sc.classOf(pkg, fn, a, seen))
				}
				return cls
			}
			return popUnknown
		}
	}
	if callee := calleeOf(pkg, call); callee != nil {
		qn := sc.funcQName(callee)
		if cls, ok := popClassNames[sc.idx.cfg.PopulationCalls[qn]]; ok {
			return cls
		}
		for _, p := range sc.idx.cfg.PopulationPropagate {
			if p == qn {
				cls := popUnknown
				for _, a := range call.Args {
					cls = joinPop(cls, sc.classOf(pkg, fn, a, seen))
				}
				return joinPop(cls, sc.typeClassOfExpr(pkg, call))
			}
		}
	}
	return sc.typeClassOfExpr(pkg, call)
}

// typeClassOfExpr classifies by the expression's static type alone.
func (sc *scanAnalysis) typeClassOfExpr(pkg *Package, e ast.Expr) popClass {
	t := pkg.Info.TypeOf(e)
	if t == nil {
		return popUnknown
	}
	return sc.typeClass(t, 0)
}

// typeClass maps a type to the population class of a collection of (or
// keyed by) that type: a named type bound by config or directive, a slice
// or array of a bound element, a map with a bound key.
func (sc *scanAnalysis) typeClass(t types.Type, depth int) popClass {
	if depth > 10 {
		return popUnknown
	}
	switch t := t.(type) {
	case *types.Named:
		tn := t.Obj()
		if cls, ok := sc.popTypes[tn]; ok {
			return cls
		}
		if cls := sc.typeBinding(tn); cls != popUnknown {
			return cls
		}
		return sc.typeClass(t.Underlying(), depth+1)
	case *types.Pointer:
		return sc.typeClass(t.Elem(), depth+1)
	case *types.Slice:
		return sc.typeClass(t.Elem(), depth+1)
	case *types.Array:
		return sc.typeClass(t.Elem(), depth+1)
	case *types.Map:
		return sc.typeClass(t.Key(), depth+1)
	}
	return popUnknown
}

// typeBinding resolves a named type against Config.PopulationTypes by its
// module-relative qualified name.
func (sc *scanAnalysis) typeBinding(tn *types.TypeName) popClass {
	if tn.Pkg() == nil {
		return popUnknown
	}
	qn := sc.relPath(tn.Pkg().Path()) + "." + tn.Name()
	return popClassNames[sc.idx.cfg.PopulationTypes[qn]]
}

// funcQName renders a module-relative qualified name for any function
// object, including interface methods and imported functions, matching the
// "pkg/path.Func" / "pkg/path.Recv.Method" form of Config keys.
func (sc *scanAnalysis) funcQName(obj *types.Func) string {
	if fi := sc.idx.funcs[obj]; fi != nil {
		return fi.qname
	}
	if obj.Pkg() == nil {
		return obj.Name()
	}
	name := obj.Name()
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		switch t := t.(type) {
		case *types.Named:
			name = t.Obj().Name() + "." + name
		case *types.Interface:
			// Embedded-interface receivers have no useful name; leave bare.
		}
	}
	return sc.relPath(obj.Pkg().Path()) + "." + name
}

// relPath strips the module prefix from an import path.
func (sc *scanAnalysis) relPath(path string) string {
	mod := sc.idx.cfg.ModulePath
	if mod != "" {
		if path == mod {
			return ""
		}
		if len(path) > len(mod) && path[:len(mod)] == mod && path[len(mod)] == '/' {
			return path[len(mod)+1:]
		}
	}
	return path
}

// eventReach marks every function reachable from the per-event roots over
// the flow graph, recording the root that first reached it.
func (sc *scanAnalysis) eventReach(marked map[*ast.FuncDecl]bool) (map[*funcInfo]bool, map[*funcInfo]string) {
	rooted := make(map[*funcInfo]bool)
	via := make(map[*funcInfo]string)
	var queue []*funcInfo
	add := func(fi *funcInfo, from string) {
		if fi == nil || rooted[fi] {
			return
		}
		rooted[fi] = true
		via[fi] = from
		queue = append(queue, fi)
	}
	for _, root := range sc.idx.cfg.EventRoots {
		if fi := sc.idx.byName[root]; fi != nil {
			add(fi, fi.qname)
		}
	}
	for _, fi := range sc.idx.order {
		if marked[fi.decl] {
			add(fi, fi.qname)
		}
	}
	for len(queue) > 0 {
		fi := queue[0]
		queue = queue[1:]
		for _, ci := range sc.idx.flowEdges(fi) {
			add(ci, via[fi])
		}
	}
	return rooted, via
}

// loopBoundClass classifies a loop statement's trip count: the ranged
// collection's class, or the bound side of a for-loop comparison.
func (sc *scanAnalysis) loopBoundClass(fi *funcInfo, n ast.Node) (popClass, bool) {
	switch l := n.(type) {
	case *ast.RangeStmt:
		return sc.classOf(fi.pkg, fi, l.X, nil), true
	case *ast.ForStmt:
		cond, ok := l.Cond.(*ast.BinaryExpr)
		if !ok {
			return popUnknown, true
		}
		switch cond.Op.String() {
		case "<", "<=":
			return sc.classOf(fi.pkg, fi, cond.Y, nil), true
		case ">", ">=":
			return sc.classOf(fi.pkg, fi, cond.X, nil), true
		}
		return popUnknown, true
	}
	return popUnknown, false
}

// scanFunc walks one function body tracking lexical nesting of nodes-class
// loops and emits the two finding kinds.
func (sc *scanAnalysis) scanFunc(fi *funcInfo, rooted bool, via string) []Diagnostic {
	var diags []Diagnostic
	var stack []ast.Node // enclosing nodes-class loops, pruned by position
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		for len(stack) > 0 && n.Pos() >= stack[len(stack)-1].End() {
			stack = stack[:len(stack)-1]
		}
		cls, isLoop := sc.loopBoundClass(fi, n)
		if !isLoop || cls != popNodes {
			return true
		}
		pos := fi.pkg.Fset.Position(n.Pos())
		switch {
		case len(stack) > 0:
			diags = append(diags, Diagnostic{
				Pos:  pos,
				Rule: RuleScanComplexity,
				Msg:  "O(nodes) scan nested inside an O(nodes) scan — O(nodes^2) total; build a spatial or per-neighbor index, or justify with //lrlint:ignore scan-complexity <reason>",
			})
		case rooted:
			diags = append(diags, Diagnostic{
				Pos:  pos,
				Rule: RuleScanComplexity,
				Msg: fmt.Sprintf("O(nodes) scan inside the per-event path (reachable from %s): O(nodes^2) work per round; restructure to O(neighbors)/O(1) or justify with //lrlint:ignore scan-complexity <reason>",
					via),
			})
		}
		stack = append(stack, n)
		return true
	})
	return diags
}
