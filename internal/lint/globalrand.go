package lint

import (
	"go/ast"
	"go/types"
)

// globalRandAllowed are the package-level math/rand functions that do NOT
// draw from the process-global source: constructors for explicitly seeded
// streams. Everything else at package level (rand.Intn, rand.Float64,
// rand.Shuffle, rand.Perm, ...) consumes the global source, whose state is
// shared across the process and seeded differently every run.
var globalRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true, // takes a *Rand argument; no global state
	// math/rand/v2 constructors.
	"NewPCG":     true,
	"NewChaCha8": true,
}

// checkGlobalRand implements the no-global-rand pass: any reference to a
// package-level math/rand (or math/rand/v2) function outside the allowed
// constructor set is a finding. Method calls on an explicit *rand.Rand are
// untouched.
func checkGlobalRand(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	walkNonTest(pkg, func(_ *ast.File, n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || obj.Pkg() == nil {
			return true
		}
		path := obj.Pkg().Path()
		if path != "math/rand" && path != "math/rand/v2" {
			return true
		}
		// Methods (receiver non-nil) operate on an explicit stream.
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			return true
		}
		if globalRandAllowed[obj.Name()] {
			return true
		}
		diags = append(diags, Diagnostic{
			Pos:  pkg.Fset.Position(sel.Pos()),
			Rule: RuleGlobalRand,
			Msg:  "rand." + obj.Name() + " uses the process-global source; thread an explicitly seeded rand.New(rand.NewSource(seed)) stream instead",
		})
		return true
	})
	return diags
}
