package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden expect.txt files")

// fixtureCases maps each fixture package to the import path it is loaded
// under; the path places it inside the pretend module "fix" so the
// production scoping of DefaultConfig applies (or deliberately does not).
var fixtureCases = []struct {
	dir        string
	importPath string
}{
	{"wallclock_bad", "fix/internal/wallclock_bad"},
	{"wallclock_clean", "fix/internal/wallclock_clean"},
	{"globalrand_bad", "fix/globalrand_bad"},
	{"globalrand_clean", "fix/globalrand_clean"},
	{"maprange_bad", "fix/internal/core/maprange_bad"},
	{"maprange_clean", "fix/internal/core/maprange_clean"},
	{"errcheck_bad", "fix/internal/crypt/errcheck_bad"},
	{"errcheck_clean", "fix/internal/crypt/errcheck_clean"},
	{"conc_bad", "fix/internal/harness/conc_bad"},
	{"conc_clean", "fix/internal/harness/conc_clean"},
	{"rng_bad", "fix/internal/rng_bad"},
	{"rng_clean", "fix/internal/rng_clean"},
	{"directive_span_clean", "fix/internal/directive_span_clean"},
	{"tracetime_bad", "fix/internal/trace/tracetime_bad"},
	{"tracetime_clean", "fix/internal/trace/tracetime_clean"},
	{"allochot_bad", "fix/internal/erasure/allochot_bad"},
	{"allochot_clean", "fix/internal/erasure/allochot_clean"},
	{"lockdisc_bad", "fix/internal/harness/lockdisc_bad"},
	{"lockdisc_clean", "fix/internal/harness/lockdisc_clean"},
	{"unusedignore_bad", "fix/internal/unusedignore_bad"},
}

// TestFixtures runs the full pass suite over each fixture package and
// compares the rendered diagnostics against the package's golden
// expect.txt. Regenerate with: go test ./internal/lint -run Fixtures -update
func TestFixtures(t *testing.T) {
	for _, tc := range fixtureCases {
		t.Run(tc.dir, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.dir)
			absDir, err := filepath.Abs(dir)
			if err != nil {
				t.Fatal(err)
			}
			pkg, err := LoadDir(dir, tc.importPath)
			if err != nil {
				t.Fatalf("LoadDir: %v", err)
			}
			cfg := DefaultConfig("fix")
			cfg.TrimPrefix = absDir
			var sb strings.Builder
			for _, d := range Run([]*Package{pkg}, cfg) {
				sb.WriteString(d.String())
				sb.WriteByte('\n')
			}
			got := sb.String()

			golden := filepath.Join(dir, "expect.txt")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			wantBytes, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if want := string(wantBytes); got != want {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
			if strings.HasSuffix(tc.dir, "_bad") && got == "" {
				t.Error("bad fixture produced no findings")
			}
			if strings.HasSuffix(tc.dir, "_clean") && got != "" {
				t.Errorf("clean fixture produced findings:\n%s", got)
			}
		})
	}
}

// TestTaintModuleFixtures exercises verify-before-use over the mini-module
// under testdata/src/taintmod: unlike the single-directory fixtures it needs
// real cross-package types (packet.Data sources, internal/crypt verifiers,
// an internal/erasure decoder sink), so the whole pretend module is loaded.
// All findings must land in taint_bad — taint_clean plus the support
// packages must stay silent — and the set is pinned by taintmod/expect.txt.
func TestTaintModuleFixtures(t *testing.T) {
	root := filepath.Join("testdata", "src", "taintmod")
	absRoot, err := filepath.Abs(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, modPath, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	cfg := DefaultConfig(modPath)
	cfg.TrimPrefix = absRoot
	diags := Run(pkgs, cfg)
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
		if d.Rule != RuleTaint {
			t.Errorf("non-taint finding in taint fixture module: %s", d)
		}
		if !strings.Contains(filepath.ToSlash(d.Pos.Filename), "taint_bad/") {
			t.Errorf("finding outside taint_bad: %s", d)
		}
	}
	got := sb.String()
	if !strings.Contains(got, "erasure decoder") {
		t.Error("decode-before-verify bug was not caught")
	}

	golden := filepath.Join(root, "expect.txt")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	wantBytes, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if want := string(wantBytes); got != want {
		t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestProvModuleFixtures exercises rng-provenance over the mini-module under
// testdata/src/provmod: the pass is cross-package by design (parameters
// resolve through call sites in other packages, fields through composite
// literals, interface methods through the implementers table), so the whole
// pretend module is loaded. All findings must be rng-provenance findings
// inside prov_bad; the radio and prov_clean packages must stay silent.
func TestProvModuleFixtures(t *testing.T) {
	root := filepath.Join("testdata", "src", "provmod")
	absRoot, err := filepath.Abs(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, modPath, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	cfg := DefaultConfig(modPath)
	cfg.TrimPrefix = absRoot
	diags := Run(pkgs, cfg)
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
		if d.Rule != RuleRNGProv {
			t.Errorf("non-provenance finding in provenance fixture module: %s", d)
		}
		if !strings.Contains(filepath.ToSlash(d.Pos.Filename), "prov_bad/") {
			t.Errorf("finding outside prov_bad: %s", d)
		}
	}
	got := sb.String()
	if got == "" {
		t.Fatal("provenance fixture module produced no findings")
	}

	golden := filepath.Join(root, "expect.txt")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	wantBytes, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if want := string(wantBytes); got != want {
		t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestEffectModuleFixtures exercises effect-purity over the mini-module
// under testdata/src/effectmod: the pass is interprocedural by design, so
// the whole pretend module is loaded and its experiment package stands in
// for the real EffectRoots. The golden pins one finding per propagation path
// (direct call, SCC, interface dispatch, reference edge, rooted maporder,
// module-wide rand scope, stale declaration) and the silence of the declared
// boundary.
func TestEffectModuleFixtures(t *testing.T) {
	root := filepath.Join("testdata", "src", "effectmod")
	absRoot, err := filepath.Abs(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, modPath, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	cfg := DefaultConfig(modPath)
	cfg.TrimPrefix = absRoot
	diags := Run(pkgs, cfg)
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
		if d.Rule != RuleEffectPurity && d.Rule != RuleUnusedIgnore {
			t.Errorf("unexpected rule in effect fixture module: %s", d)
		}
	}
	got := sb.String()
	for _, want := range []string{"reachable from deterministic root", "go statement", "network I/O", "filesystem", "map iteration order"} {
		if !strings.Contains(got, want) {
			t.Errorf("no finding mentions %q", want)
		}
	}
	if strings.Contains(got, "Timestamp") {
		t.Error("declared boundary still produced a finding")
	}

	golden := filepath.Join(root, "expect.txt")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	wantBytes, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if want := string(wantBytes); got != want {
		t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestScanModuleFixtures exercises scan-complexity over the mini-module
// under testdata/src/scanmod: population classes flow from the config
// binding on packet.NodeID, //lrlint:population directives, the
// interprocedural parameter fixpoint and the struct-field fixpoint; roots
// come from //lrlint:eventroot. The golden pins the findings; the
// neighbors-class, constant-bound and justified loops must stay silent.
func TestScanModuleFixtures(t *testing.T) {
	root := filepath.Join("testdata", "src", "scanmod")
	absRoot, err := filepath.Abs(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, modPath, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	cfg := DefaultConfig(modPath)
	cfg.TrimPrefix = absRoot
	diags := Run(pkgs, cfg)
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
		if d.Rule != RuleScanComplexity {
			t.Errorf("unexpected rule in scan fixture module: %s", d)
		}
	}
	got := sb.String()
	if !strings.Contains(got, "per-event path") {
		t.Error("no per-event finding")
	}
	if !strings.Contains(got, "nested inside") {
		t.Error("no nested-scan finding")
	}

	golden := filepath.Join(root, "expect.txt")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	wantBytes, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if want := string(wantBytes); got != want {
		t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRealModuleClean asserts the invariant the whole PR enforces: lrlint
// runs clean on the repository itself.
func TestRealModuleClean(t *testing.T) {
	pkgs, modPath, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; module walk is broken", len(pkgs))
	}
	for _, d := range Run(pkgs, DefaultConfig(modPath)) {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestDirectiveSuppression pins the directive semantics: same line or the
// line immediately above, with rule match required.
func TestDirectiveSuppression(t *testing.T) {
	idx := directiveIndex{
		"f.go": {10: []directive{{rule: RuleEffectPurity, used: new(bool)}}},
	}
	mk := func(line int, rule string) Diagnostic {
		d := Diagnostic{Rule: rule}
		d.Pos.Filename = "f.go"
		d.Pos.Line = line
		return d
	}
	if !idx.suppresses(mk(10, RuleEffectPurity)) {
		t.Error("same-line directive did not suppress")
	}
	if !idx.suppresses(mk(11, RuleEffectPurity)) {
		t.Error("line-above directive did not suppress")
	}
	if idx.suppresses(mk(12, RuleEffectPurity)) {
		t.Error("directive suppressed two lines below")
	}
	if idx.suppresses(mk(10, RuleErrcheck)) {
		t.Error("directive suppressed a different rule")
	}
}
