package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file implements the rng-provenance pass. The reproducibility rules so
// far are local: no-global-rand bans the process-global source at the call
// site, rng-stream-discipline polices where streams may be STORED. Neither
// proves the property the harness actually depends on — that every random
// draw in simulation code descends from the scenario seed. A stream can pass
// every local rule and still be rootless: constructed from a wall-clock seed
// three packages away and threaded down through constructors.
//
// This pass closes that gap with a cross-package demand-driven trace. Every
// method call on a *rand.Rand receiver in non-test code is a consumption
// site; the receiver expression is traced backwards to its constructions:
//
//   - rand.New(...) is the seeded origin (rng-const-seed separately polices
//     the seed expression itself);
//   - a local variable traces through its assignments in the enclosing body;
//   - a parameter traces through every static call site's argument — both
//     direct calls and, for methods behind a module-declared interface,
//     the call sites of the interface method, expanded via the implementers
//     table (this is what connects radio's loss models to Network.rng);
//   - a struct field traces through every assignment and composite literal
//     recorded for it anywhere in the module;
//   - a call of a module function traces through that function's return
//     statements.
//
// The trace is memoized per object and cut on cycles (a cycle means the
// stream circulates among already-visited holders, so it is justified by
// whatever non-cyclic origin feeds the cycle). A receiver with NO visible
// origin at all (never-assigned field, parameter of an uncalled exported
// hook) is vacuously accepted: consuming a nil Rand panics at runtime, so
// such code is dead or wired externally — flagging it would punish every
// library entry point. Anything that resolves to an origin the trace cannot
// classify (an external call, an element of a slice, a multi-value
// assignment) is a finding.
func checkProvenance(idx *modIndex) []Diagnostic {
	p := &provAnalysis{
		idx:     idx,
		ifaceOf: make(map[*types.Func][]*types.Func),
		memo:    make(map[types.Object]bool),
		active:  make(map[types.Object]bool),
	}
	for m, impls := range idx.implementers {
		for _, im := range impls {
			p.ifaceOf[im] = append(p.ifaceOf[im], m)
		}
	}
	for _, fi := range idx.order {
		if isTestFile(fi.pkg, fi.decl.Pos()) {
			continue
		}
		p.scanConsumption(fi)
	}
	return p.diags
}

type provAnalysis struct {
	idx *modIndex

	// ifaceOf maps a concrete module method to the module-declared interface
	// methods it satisfies (the reverse of modIndex.implementers).
	ifaceOf map[*types.Func][]*types.Func

	// memo caches the verdict per parameter/field/local object; active marks
	// objects currently on the trace stack, cutting cycles as seeded.
	memo   map[types.Object]bool
	active map[types.Object]bool

	diags []Diagnostic
}

// scanConsumption finds every method call on a Rand-typed receiver in one
// declared function (closures included) and traces the receiver.
func (p *provAnalysis) scanConsumption(fi *funcInfo) {
	done := make(map[string]bool)
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if !isRandRandType(fi.pkg.Info.TypeOf(sel.X)) {
			return true
		}
		key := types.ExprString(sel.X)
		if done[key] {
			return true
		}
		done[key] = true
		if !p.traceExpr(fi.pkg, fi, sel.X) {
			p.diags = append(p.diags, Diagnostic{
				Pos:  fi.pkg.Fset.Position(sel.X.Pos()),
				Rule: RuleRNGProv,
				Msg: fmt.Sprintf("rand stream %q cannot be traced to a seeded rand.New construction; derive it from the run's seed chain and thread it here explicitly",
					key),
			})
		}
		return true
	})
}

// traceExpr reports whether every origin of the expression is a seeded
// rand.New construction. fn is the declared function whose body contains the
// expression (nil for package-level contexts).
func (p *provAnalysis) traceExpr(pkg *Package, fn *funcInfo, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		callee := calleeOf(pkg, x)
		if callee == nil {
			return false
		}
		if isRandPkg(callee.Pkg()) && callee.Name() == "New" {
			return true
		}
		if ci := p.idx.funcs[callee]; ci != nil {
			return p.traceReturns(ci)
		}
		return false
	case *ast.Ident:
		obj := pkg.Info.Uses[x]
		if obj == nil {
			obj = pkg.Info.Defs[x]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return false
		}
		return p.traceVar(pkg, fn, v)
	case *ast.SelectorExpr:
		obj, _ := pkg.Info.Uses[x.Sel].(*types.Var)
		if obj == nil {
			return false
		}
		if obj.IsField() {
			return p.traceField(obj)
		}
		// Package-qualified variable: global stream state, separately banned
		// by rng-stream-discipline; untraceable here.
		return false
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return p.traceExpr(pkg, fn, x.X)
		}
		return false
	default:
		return false
	}
}

// traceVar dispatches a variable to the parameter or local trace, memoized.
func (p *provAnalysis) traceVar(pkg *Package, fn *funcInfo, v *types.Var) bool {
	if r, ok := p.memo[v]; ok {
		return r
	}
	if p.active[v] {
		return true // cycle: justified by whatever feeds the cycle
	}
	p.active[v] = true
	defer delete(p.active, v)

	r := p.traceVarUncached(pkg, fn, v)
	p.memo[v] = r
	return r
}

func (p *provAnalysis) traceVarUncached(pkg *Package, fn *funcInfo, v *types.Var) bool {
	if fn != nil {
		if i, ok := paramIndex(fn.obj, v); ok {
			return p.traceParam(fn, i)
		}
		origins, traceable := localOrigins(fn, v)
		if !traceable {
			return false
		}
		if v.Pos() >= fn.decl.Pos() && v.Pos() <= fn.decl.End() {
			// A local (or closure parameter) of this body: every assignment
			// must be seeded; a never-assigned local is nil and vacuous.
			for _, o := range origins {
				if !p.traceExpr(pkg, fn, o) {
					return false
				}
			}
			if len(origins) > 0 {
				return true
			}
			// Closure parameters have no assignments and no resolvable call
			// sites; they fall through to unknown below unless the literal
			// is invoked through nothing at all.
			if isClosureParam(fn, v) {
				return false
			}
			return true
		}
	}
	// Package-level or foreign variable: stream state outside any traced
	// body. rng-stream-discipline bans the storage; here it is untraceable.
	return false
}

// traceParam traces a declared function's parameter through every static
// call site of the function and of any module interface methods it stands
// behind. No call sites at all is vacuous (library entry point).
func (p *provAnalysis) traceParam(fn *funcInfo, i int) bool {
	targets := []*types.Func{fn.obj}
	targets = append(targets, p.ifaceOf[fn.obj]...)
	for _, t := range targets {
		for _, site := range p.idx.callSites[t] {
			if i >= len(site.call.Args) {
				return false // spread call or mismatched shape: untraceable
			}
			if !p.traceExpr(site.pkg, site.fn, site.call.Args[i]) {
				return false
			}
		}
	}
	return true
}

// traceField traces a struct field through every recorded assignment. A
// never-assigned field is nil at runtime and vacuously accepted.
func (p *provAnalysis) traceField(field *types.Var) bool {
	if r, ok := p.memo[field]; ok {
		return r
	}
	if p.active[field] {
		return true
	}
	p.active[field] = true
	defer delete(p.active, field)

	r := true
	for _, a := range p.idx.fieldAssigns[field] {
		if !p.traceExpr(a.pkg, a.fn, a.expr) {
			r = false
			break
		}
	}
	p.memo[field] = r
	return r
}

// traceReturns traces the Rand-typed result of a module function through its
// return statements.
func (p *provAnalysis) traceReturns(fn *funcInfo) bool {
	obj := types.Object(fn.obj)
	if r, ok := p.memo[obj]; ok {
		return r
	}
	if p.active[obj] {
		return true
	}
	p.active[obj] = true
	defer delete(p.active, obj)

	r := p.traceReturnsUncached(fn)
	p.memo[obj] = r
	return r
}

func (p *provAnalysis) traceReturnsUncached(fn *funcInfo) bool {
	sig, _ := fn.obj.Type().(*types.Signature)
	if sig == nil {
		return false
	}
	ri := -1
	for i := 0; i < sig.Results().Len(); i++ {
		if isRandRandType(sig.Results().At(i).Type()) {
			ri = i
			break
		}
	}
	if ri == -1 {
		return false
	}
	ok := true
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		if !ok {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // nested literals return from themselves
		}
		ret, isRet := n.(*ast.ReturnStmt)
		if !isRet {
			return true
		}
		if len(ret.Results) == 0 {
			ok = false // naked return of named results: untraceable
			return true
		}
		if ri >= len(ret.Results) {
			ok = false // single-call multi-value return: untraceable
			return true
		}
		if !p.traceExpr(fn.pkg, fn, ret.Results[ri]) {
			ok = false
		}
		return true
	})
	return ok
}

// paramIndex finds v among fn's declared parameters.
func paramIndex(fn *types.Func, v *types.Var) (int, bool) {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return 0, false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == v {
			return i, true
		}
	}
	return 0, false
}

// isClosureParam reports whether v is a parameter of some function literal
// nested in fn's body (its declaration position sits inside a FuncLit's
// parameter list).
func isClosureParam(fn *funcInfo, v *types.Var) bool {
	found := false
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok || found {
			return !found
		}
		if lit.Type.Params != nil && v.Pos() >= lit.Type.Params.Pos() && v.Pos() <= lit.Type.Params.End() {
			found = true
		}
		return !found
	})
	return found
}

// localOrigins collects the right-hand sides assigned to v anywhere in fn's
// body. traceable turns false on write forms the trace cannot follow
// (multi-value assignments, range clauses).
func localOrigins(fn *funcInfo, v *types.Var) (origins []ast.Expr, traceable bool) {
	traceable = true
	objOf := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := fn.pkg.Info.Defs[id]; obj != nil {
			return obj
		}
		return fn.pkg.Info.Uses[id]
	}
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if objOf(lhs) != v {
					continue
				}
				if len(n.Lhs) != len(n.Rhs) {
					traceable = false
					continue
				}
				origins = append(origins, n.Rhs[i])
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if fn.pkg.Info.Defs[name] != v {
					continue
				}
				if i < len(n.Values) {
					origins = append(origins, n.Values[i])
				}
			}
		case *ast.RangeStmt:
			if (n.Key != nil && objOf(n.Key) == v) || (n.Value != nil && objOf(n.Value) == v) {
				traceable = false
			}
		}
		return true
	})
	return origins, traceable
}

// isRandRandType reports whether t is rand.Rand or *rand.Rand from math/rand
// or math/rand/v2.
func isRandRandType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj() == nil {
		return false
	}
	return isRandPkg(n.Obj().Pkg()) && n.Obj().Name() == "Rand"
}

// isTestFile reports whether the position lies in a _test.go file.
func isTestFile(pkg *Package, pos token.Pos) bool {
	return strings.HasSuffix(pkg.Fset.Position(pos).Filename, "_test.go")
}
