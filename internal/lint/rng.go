package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// This file implements the rng-stream-discipline pass. The simulator's
// reproducibility contract is that every random draw derives from the
// scenario seed through an explicit chain of ownership: the scenario splits
// its seed per component (radio, per-node trickle, adversary, key
// generation), each component owns exactly one *rand.Rand constructed as
// rand.New(rand.NewSource(derivedSeed)), and streams never cross component
// boundaries — two consumers interleaving draws from one stream make both
// schedule-dependent.
//
// no-global-rand (PR 1) bans the process-global source; this pass closes the
// remaining leaks, module-wide in non-test code:
//
//   - rng-package-var: a package-level variable whose type contains a
//     *rand.Rand / rand.Source (directly or inside a struct/slice/map/...).
//     Package state outlives scenarios, so a stream stored there is shared
//     by construction and survives across runs, breaking same-seed identity.
//
//   - rng-exported-state: an exported struct field, or an exported
//     function/method RESULT, whose type contains an RNG stream. Exporting a
//     stream hands it to arbitrary consumers outside the owning component.
//     Parameters are deliberately allowed: passing a stream DOWN into a
//     constructor (dissem.NewNode -> trickle.New) is exactly how ownership
//     is transferred, and the unexported field it lands in is the ownership
//     record.
//
//   - rng-shared-source: the same rand.Source identifier passed to two or
//     more rand.New calls within one function. Each Rand advances the shared
//     source, so the two streams are entangled and order-sensitive.
//
//   - rng-const-seed: rand.NewSource / rand.NewPCG / rand.NewChaCha8 called
//     with all-constant arguments outside tests. A literal seed is a stream
//     that ignores the scenario seed entirely.
func checkRNG(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	report := func(n ast.Node, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:  pkg.Fset.Position(n.Pos()),
			Rule: RuleRNG,
			Msg:  fmt.Sprintf(format, args...),
		})
	}

	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					switch spec := spec.(type) {
					case *ast.ValueSpec: // package-level vars only reach here via f.Decls
						for _, name := range spec.Names {
							obj := pkg.Info.Defs[name]
							if obj == nil {
								continue
							}
							if _, isVar := obj.(*types.Var); isVar && typeContainsRand(obj.Type()) {
								report(name, "package-level variable %q holds an RNG stream; streams must be owned by a seeded component, not package state", name.Name)
							}
						}
					case *ast.TypeSpec:
						diags = append(diags, checkExportedRandFields(pkg, spec)...)
					}
				}
			case *ast.FuncDecl:
				if decl.Name.IsExported() && decl.Type.Results != nil {
					for _, res := range decl.Type.Results.List {
						if t := pkg.Info.TypeOf(res.Type); typeIsRandStream(t) {
							report(res.Type, "exported %s returns an RNG stream; streams must not leak across component boundaries", decl.Name.Name)
						}
					}
				}
				if decl.Body != nil {
					diags = append(diags, checkSharedSource(pkg, decl.Body)...)
				}
			}
		}
	}

	// rng-const-seed applies to every construction site, wherever nested.
	walkNonTest(pkg, func(f *ast.File, n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(pkg, call)
		if fn == nil || !isRandPkg(fn.Pkg()) {
			return true
		}
		switch fn.Name() {
		case "NewSource", "NewPCG", "NewChaCha8":
		default:
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		for _, arg := range call.Args {
			if tv, ok := pkg.Info.Types[arg]; !ok || tv.Value == nil {
				return true // at least one non-constant argument: seed flows in
			}
		}
		report(call, "rand.%s with a constant seed ignores the scenario seed; derive the seed from the run's seed chain", fn.Name())
		return true
	})
	return diags
}

// checkExportedRandFields flags exported struct fields of RNG-bearing type
// on exported struct types.
func checkExportedRandFields(pkg *Package, spec *ast.TypeSpec) []Diagnostic {
	st, ok := spec.Type.(*ast.StructType)
	if !ok {
		return nil
	}
	var diags []Diagnostic
	for _, field := range st.Fields.List {
		t := pkg.Info.TypeOf(field.Type)
		if !typeIsRandStream(t) {
			continue
		}
		for _, name := range field.Names {
			if !name.IsExported() {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos:  pkg.Fset.Position(name.Pos()),
				Rule: RuleRNG,
				Msg: fmt.Sprintf("exported field %s.%s exposes an RNG stream; keep streams unexported so ownership stays with the seeded component",
					spec.Name.Name, name.Name),
			})
		}
	}
	return diags
}

// checkSharedSource flags two rand.New calls fed by the same Source
// identifier within one function body.
func checkSharedSource(pkg *Package, body *ast.BlockStmt) []Diagnostic {
	var diags []Diagnostic
	seen := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(pkg, call)
		if fn == nil || !isRandPkg(fn.Pkg()) || fn.Name() != "New" || len(call.Args) == 0 {
			return true
		}
		id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			return true
		}
		obj := pkg.Info.Uses[id]
		if obj == nil {
			return true
		}
		if seen[obj] {
			diags = append(diags, Diagnostic{
				Pos:  pkg.Fset.Position(call.Pos()),
				Rule: RuleRNG,
				Msg: fmt.Sprintf("source %q feeds more than one rand.New stream; two Rands over one Source interleave draws and become order-sensitive",
					obj.Name()),
			})
		}
		seen[obj] = true
		return true
	})
	return diags
}

// calleeOf resolves the function object a call targets, if statically known.
func calleeOf(pkg *Package, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[f.Sel].(*types.Func)
		return fn
	default:
		return nil
	}
}

// isRandPkg reports whether p is math/rand or math/rand/v2.
func isRandPkg(p *types.Package) bool {
	if p == nil {
		return false
	}
	return p.Path() == "math/rand" || p.Path() == "math/rand/v2"
}

// randTypeNames are the stream/state types of math/rand and math/rand/v2.
var randTypeNames = map[string]bool{
	"Rand":     true,
	"Source":   true,
	"Source64": true,
	"PCG":      true,
	"ChaCha8":  true,
	"Zipf":     true,
}

// typeContainsRand reports whether t embeds an RNG stream anywhere in its
// structure, traversing into named types' underlying structs. Used for
// package-level variables, where transitively-owned stream state is still
// package state.
func typeContainsRand(t types.Type) bool {
	return containsRand(t, true, make(map[types.Type]bool))
}

// typeIsRandStream is the shallow form used for exported fields and results:
// it recognizes rand types reached through type constructors (pointer,
// slice, map, ...) but does NOT enter non-rand named types. A constructor
// returning *Node is handing over a component that privately OWNS a stream —
// that is the ownership idiom, not a leak; only surfacing the stream itself
// is.
func typeIsRandStream(t types.Type) bool {
	return containsRand(t, false, make(map[types.Type]bool))
}

func containsRand(t types.Type, deep bool, visited map[types.Type]bool) bool {
	if t == nil || visited[t] {
		return false
	}
	visited[t] = true
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		if obj != nil && isRandPkg(obj.Pkg()) && randTypeNames[obj.Name()] {
			return true
		}
		if !deep {
			return false
		}
		return containsRand(t.Underlying(), deep, visited)
	case *types.Pointer:
		return containsRand(t.Elem(), deep, visited)
	case *types.Slice:
		return containsRand(t.Elem(), deep, visited)
	case *types.Array:
		return containsRand(t.Elem(), deep, visited)
	case *types.Map:
		return containsRand(t.Key(), deep, visited) || containsRand(t.Elem(), deep, visited)
	case *types.Chan:
		return containsRand(t.Elem(), deep, visited)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if containsRand(t.Field(i).Type(), deep, visited) {
				return true
			}
		}
	case *types.Interface:
		// rand.Source is itself an interface (caught as Named above);
		// arbitrary interfaces are not streams.
	}
	return false
}
