package lint

// Module-wide index backing the cross-package passes. Where the per-package
// passes see one AST at a time, alloc-hotpath needs "which functions are
// reachable from the hot roots" and rng-provenance needs "who calls this
// function / who assigns this field / which concrete methods stand behind
// this interface method" — all module-level questions. buildModIndex answers
// them once per run from the type-checked packages.
//
// The call graph is static: direct calls and method calls with statically
// known receivers. Calls through function values, method values and closures
// are not edges, and interface calls are kept as edges to the *interface*
// method object (the provenance pass expands those through the implementers
// table; hot-path reachability deliberately does not — hot roots are declared
// explicitly or marked in source, never inferred through dynamic dispatch).

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// funcInfo is one declared function or method of the module.
type funcInfo struct {
	pkg  *Package
	decl *ast.FuncDecl
	obj  *types.Func

	// qname is the module-relative qualified name: "pkg/path.Func" or
	// "pkg/path.Recv.Method" with pointer receivers written plain.
	qname string

	// callees lists the statically resolved callee of every call in the
	// body, in source order (module-internal and external alike).
	callees []*types.Func

	// refs lists functions referenced as values rather than called —
	// method values handed to schedulers (eng.Schedule(d, n.sendSNACK)),
	// callbacks stored in struct fields, function arguments. The effect and
	// scan-complexity passes treat a reference as a potential call edge,
	// which is how reachability crosses the event system's stored-closure
	// boundary.
	refs []*types.Func

	// hot marks reachability from a hot root; hotVia names the root.
	hot    bool
	hotVia string

	// marked means the declaration carries //lrlint:hotpath.
	marked bool
}

// callSite is one static call of a declared function. fn is the declared
// function whose body contains the call (nil for package-level initializers).
type callSite struct {
	pkg  *Package
	fn   *funcInfo
	call *ast.CallExpr
}

// exprIn is an expression with the package and declared function it appears
// in (needed to resolve identifiers through that package's type info and to
// find local assignments in the enclosing body).
type exprIn struct {
	pkg  *Package
	fn   *funcInfo
	expr ast.Expr
}

type modIndex struct {
	cfg  Config
	pkgs []*Package

	funcs  map[*types.Func]*funcInfo
	order  []*funcInfo // deterministic (file, offset) order
	byName map[string]*funcInfo

	// callSites maps every declared or imported function object to the
	// static calls of it found anywhere in the module.
	callSites map[*types.Func][]callSite

	// implementers maps a module-declared interface method to the concrete
	// module methods satisfying it.
	implementers map[*types.Func][]*types.Func

	// fieldAssigns maps a struct field object to every expression the module
	// assigns to it, through plain assignment or composite literals.
	fieldAssigns map[*types.Var][]exprIn
}

// buildModIndex constructs the index and runs hot-root reachability.
// markers carries the //lrlint:hotpath-annotated declarations collected
// alongside the directive scan.
func buildModIndex(pkgs []*Package, cfg Config, markers map[*ast.FuncDecl]bool) *modIndex {
	idx := &modIndex{
		cfg:          cfg,
		pkgs:         pkgs,
		funcs:        make(map[*types.Func]*funcInfo),
		byName:       make(map[string]*funcInfo),
		callSites:    make(map[*types.Func][]callSite),
		implementers: make(map[*types.Func][]*types.Func),
		fieldAssigns: make(map[*types.Var][]exprIn),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				fi := &funcInfo{
					pkg:    pkg,
					decl:   fd,
					obj:    obj,
					qname:  qualifiedName(cfg, pkg, fd),
					marked: markers[fd],
				}
				idx.funcs[obj] = fi
				idx.order = append(idx.order, fi)
				idx.byName[fi.qname] = fi
			}
		}
		idx.scanPackage(pkg)
	}
	sort.Slice(idx.order, func(i, j int) bool {
		a := idx.order[i].pkg.Fset.Position(idx.order[i].decl.Pos())
		b := idx.order[j].pkg.Fset.Position(idx.order[j].decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	idx.buildImplementers()
	idx.markHot()
	return idx
}

// scanPackage records call sites, per-function callee lists and field
// assignments across the whole package (function bodies and package-level
// initializers alike).
func (idx *modIndex) scanPackage(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			var enclosing *funcInfo
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if obj, _ := pkg.Info.Defs[fd.Name].(*types.Func); obj != nil {
					enclosing = idx.funcs[obj]
				}
			}
			// Idents that name the callee of a call they appear in: those
			// are call edges, not value references. ast.Inspect visits a
			// CallExpr before its Fun child, so the set is filled in time.
			inCallPos := make(map[*ast.Ident]bool)
			ast.Inspect(decl, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					switch fun := ast.Unparen(n.Fun).(type) {
					case *ast.Ident:
						inCallPos[fun] = true
					case *ast.SelectorExpr:
						inCallPos[fun.Sel] = true
					}
					if callee := calleeOf(pkg, n); callee != nil {
						idx.callSites[callee] = append(idx.callSites[callee], callSite{pkg: pkg, fn: enclosing, call: n})
						if enclosing != nil {
							// Calls inside nested function literals are
							// attributed to the declared function — a
							// conservative over-approximation for hot
							// reachability.
							enclosing.callees = append(enclosing.callees, callee)
						}
					}
				case *ast.Ident:
					if enclosing == nil || inCallPos[n] {
						return true
					}
					if fn, _ := pkg.Info.Uses[n].(*types.Func); fn != nil {
						enclosing.refs = append(enclosing.refs, fn)
					}
				case *ast.AssignStmt:
					if len(n.Rhs) != len(n.Lhs) {
						// Multi-value rhs (x.f, y := g()) is untraceable and
						// stays out of the table; a consumer reached only
						// through it resolves to unknown, conservatively.
						return true
					}
					for i, lhs := range n.Lhs {
						sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
						if !ok {
							continue
						}
						field, _ := pkg.Info.Uses[sel.Sel].(*types.Var)
						if field == nil || !field.IsField() {
							continue
						}
						idx.fieldAssigns[field] = append(idx.fieldAssigns[field], exprIn{pkg: pkg, fn: enclosing, expr: n.Rhs[i]})
					}
				case *ast.CompositeLit:
					idx.scanCompositeLit(pkg, enclosing, n)
				}
				return true
			})
		}
	}
}

// scanCompositeLit records `T{Field: expr}` (and positional `T{expr, ...}`)
// as field assignments when T is a struct type.
func (idx *modIndex) scanCompositeLit(pkg *Package, enclosing *funcInfo, lit *ast.CompositeLit) {
	t := pkg.Info.TypeOf(lit)
	if t == nil {
		return
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			if field, _ := pkg.Info.Uses[key].(*types.Var); field != nil && field.IsField() {
				idx.fieldAssigns[field] = append(idx.fieldAssigns[field], exprIn{pkg: pkg, fn: enclosing, expr: kv.Value})
			}
			continue
		}
		if i < st.NumFields() {
			idx.fieldAssigns[st.Field(i)] = append(idx.fieldAssigns[st.Field(i)], exprIn{pkg: pkg, fn: enclosing, expr: elt})
		}
	}
}

// buildImplementers matches every module method against every
// module-declared interface, so interface calls can be expanded to the
// concrete methods possibly behind them.
func (idx *modIndex) buildImplementers() {
	type ifaceDecl struct {
		iface *types.Interface
	}
	var ifaces []ifaceDecl
	for _, pkg := range idx.pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					obj, _ := pkg.Info.Defs[ts.Name].(*types.TypeName)
					if obj == nil {
						continue
					}
					if iface, ok := obj.Type().Underlying().(*types.Interface); ok && iface.NumMethods() > 0 {
						ifaces = append(ifaces, ifaceDecl{iface: iface})
					}
				}
			}
		}
	}
	for _, fi := range idx.order {
		sig, _ := fi.obj.Type().(*types.Signature)
		if sig == nil || sig.Recv() == nil {
			continue
		}
		recv := sig.Recv().Type()
		for _, id := range ifaces {
			if !types.Implements(recv, id.iface) && !types.Implements(types.NewPointer(recv), id.iface) {
				continue
			}
			for i := 0; i < id.iface.NumMethods(); i++ {
				m := id.iface.Method(i)
				if m.Name() == fi.obj.Name() {
					idx.implementers[m] = append(idx.implementers[m], fi.obj)
				}
			}
		}
	}
}

// markHot runs BFS over static call edges from the configured roots and the
// //lrlint:hotpath-marked declarations.
func (idx *modIndex) markHot() {
	var queue []*funcInfo
	for _, root := range idx.cfg.HotRoots {
		if fi := idx.byName[root]; fi != nil && !fi.hot {
			fi.hot = true
			fi.hotVia = fi.qname
			queue = append(queue, fi)
		}
	}
	for _, fi := range idx.order {
		if fi.marked && !fi.hot {
			fi.hot = true
			fi.hotVia = fi.qname
			queue = append(queue, fi)
		}
	}
	for len(queue) > 0 {
		fi := queue[0]
		queue = queue[1:]
		for _, callee := range fi.callees {
			ci := idx.funcs[callee]
			if ci == nil || ci.hot {
				continue
			}
			ci.hot = true
			ci.hotVia = fi.hotVia
			queue = append(queue, ci)
		}
	}
}

// flowEdges returns the module functions control can flow into from fi: its
// static callees, the functions it references as values (stored callbacks
// and scheduled method values are eventually invoked), and — for interface
// methods in either set — every concrete module method that may stand
// behind the dispatch. The result is deduplicated and in deterministic
// (source, implementers-table) order.
func (idx *modIndex) flowEdges(fi *funcInfo) []*funcInfo {
	var out []*funcInfo
	seen := make(map[*funcInfo]bool)
	add := func(obj *types.Func) {
		if ci := idx.funcs[obj]; ci != nil && !seen[ci] {
			seen[ci] = true
			out = append(out, ci)
		}
		for _, impl := range idx.implementers[obj] {
			if ci := idx.funcs[impl]; ci != nil && !seen[ci] {
				seen[ci] = true
				out = append(out, ci)
			}
		}
	}
	for _, c := range fi.callees {
		add(c)
	}
	for _, r := range fi.refs {
		add(r)
	}
	return out
}

// reportable limits alloc-hotpath findings to the configured hot-path trees
// plus explicitly marked functions, so reachability through shared helpers
// (topo, metrics, trace) does not drag unrelated packages into the gate.
func (idx *modIndex) reportable(fi *funcInfo) bool {
	return fi.marked || idx.cfg.inScope(fi.pkg.ImportPath, idx.cfg.HotPathPackages)
}

// qualifiedName renders the module-relative qualified name used by
// Config.HotRoots: "pkg/path.Func" or "pkg/path.Recv.Method".
func qualifiedName(cfg Config, pkg *Package, decl *ast.FuncDecl) string {
	rel := pkg.ImportPath
	if cfg.ModulePath != "" {
		if rel == cfg.ModulePath {
			rel = ""
		} else {
			rel = strings.TrimPrefix(rel, cfg.ModulePath+"/")
		}
	}
	name := decl.Name.Name
	if decl.Recv != nil && len(decl.Recv.List) > 0 {
		if tn := recvTypeName(decl.Recv.List[0].Type); tn != "" {
			name = tn + "." + name
		}
	}
	if rel == "" {
		return name
	}
	return rel + "." + name
}

// recvTypeName extracts the receiver's type name, stripping pointers and
// type parameters.
func recvTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		return recvTypeName(e.X)
	case *ast.IndexListExpr:
		return recvTypeName(e.X)
	default:
		return ""
	}
}
