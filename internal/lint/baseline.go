package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baseline support: a committed snapshot of accepted findings, so CI fails
// only on DRIFT. A lint gate that requires zero findings forever forces every
// rule rollout to fix the whole backlog atomically; a baseline lets a new
// pass land with its existing debt recorded, while any NEW finding — or a
// regression of a fixed one — still fails the build.
//
// Entries are line-insensitive on purpose: a baseline keyed by line numbers
// churns on every unrelated edit above the finding. The key is
// (file, rule, msg), counted as a multiset — if a file has two accepted
// append-growth findings and an edit adds a third with the same message, the
// count rises and the gate fails.

// baselineVersion is the schema version of the baseline artifact.
const baselineVersion = 1

// BaselineFinding is one accepted finding, without position detail beyond
// the file.
type BaselineFinding struct {
	File string `json:"file"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

// Baseline is the committed artifact.
type Baseline struct {
	Version  int               `json:"version"`
	Findings []BaselineFinding `json:"findings"`
}

// NewBaseline snapshots the given findings, sorted for a stable artifact.
func NewBaseline(diags []Diagnostic) Baseline {
	b := Baseline{Version: baselineVersion, Findings: make([]BaselineFinding, 0, len(diags))}
	for _, d := range diags {
		b.Findings = append(b.Findings, BaselineFinding{File: d.Pos.Filename, Rule: d.Rule, Msg: d.Msg})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Rule != c.Rule {
			return a.Rule < c.Rule
		}
		return a.Msg < c.Msg
	})
	return b
}

// WriteFile writes the baseline as indented JSON with a trailing newline.
func (b Baseline) WriteFile(path string) error {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// LoadBaseline reads and validates a baseline artifact.
func LoadBaseline(path string) (Baseline, error) {
	var b Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("baseline %s: %w", path, err)
	}
	if b.Version != baselineVersion {
		return b, fmt.Errorf("baseline %s: version %d, this lrlint reads version %d", path, b.Version, baselineVersion)
	}
	return b, nil
}

// Subtract returns the findings NOT covered by the baseline, multiset-style:
// each baseline entry absorbs one finding with the same (file, rule, msg).
// Findings beyond the baselined count — and findings the baseline has never
// seen — survive and fail the gate.
func (b Baseline) Subtract(diags []Diagnostic) []Diagnostic {
	budget := make(map[BaselineFinding]int, len(b.Findings))
	for _, f := range b.Findings {
		budget[f]++
	}
	var out []Diagnostic
	for _, d := range diags {
		key := BaselineFinding{File: d.Pos.Filename, Rule: d.Rule, Msg: d.Msg}
		if budget[key] > 0 {
			budget[key]--
			continue
		}
		out = append(out, d)
	}
	return out
}
