package lint

// Dominance and natural-loop analysis over funcCFG. The alloc-hotpath pass
// asks "is this statement executed once per loop iteration?" (natural-loop
// membership) and the lock-discipline pass asks "is every path to this write
// through a Lock?" (a forward must-analysis whose correctness rests on the
// same reducible-flow structure). Both are classic iterative dataflow over
// the block graph; the CFGs here are tiny (one function body), so the simple
// O(blocks^2) fixpoint is far below measurement noise in the self-bench.

import "go/ast"

// domInfo holds the immediate-dominator tree and loop membership for one CFG.
type domInfo struct {
	g *funcCFG

	// idom[i] is the immediate dominator of block i; entry's idom is itself.
	// Blocks unreachable from entry have idom -1 and belong to no loop.
	idom []int

	// inLoop[i] reports that block i is inside at least one natural loop.
	inLoop []bool
}

// analyzeDom computes dominators (iterative algorithm over a reverse
// post-order) and marks the blocks of every natural loop.
func analyzeDom(g *funcCFG) *domInfo {
	n := len(g.blocks)
	d := &domInfo{g: g, idom: make([]int, n), inLoop: make([]bool, n)}
	for i := range d.idom {
		d.idom[i] = -1
	}

	rpo, rpoNum := reversePostorder(g)
	d.idom[g.entry.index] = g.entry.index

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == g.entry {
				continue
			}
			newIdom := -1
			for _, p := range b.preds {
				if d.idom[p.index] == -1 {
					continue // predecessor not yet processed / unreachable
				}
				if newIdom == -1 {
					newIdom = p.index
				} else {
					newIdom = d.intersect(newIdom, p.index, rpoNum)
				}
			}
			if newIdom != -1 && d.idom[b.index] != newIdom {
				d.idom[b.index] = newIdom
				changed = true
			}
		}
	}

	// Natural loops: for every back edge n->h (h dominates n), the loop body
	// is h plus everything that reaches n without passing through h.
	for _, b := range g.blocks {
		for _, s := range b.succs {
			if d.dominates(s.index, b.index) {
				d.markLoop(s, b)
			}
		}
	}
	return d
}

// intersect walks the two dominator-tree paths up to their common ancestor,
// comparing by reverse-post-order number.
func (d *domInfo) intersect(a, b int, rpoNum []int) int {
	for a != b {
		for rpoNum[a] > rpoNum[b] {
			a = d.idom[a]
		}
		for rpoNum[b] > rpoNum[a] {
			b = d.idom[b]
		}
	}
	return a
}

// dominates reports whether block a dominates block b (reflexive).
func (d *domInfo) dominates(a, b int) bool {
	for {
		if b == a {
			return true
		}
		next := d.idom[b]
		if next == -1 || next == b {
			return false
		}
		b = next
	}
}

// markLoop marks the natural loop of back edge tail->head: reverse-flow DFS
// from tail, stopping at head.
func (d *domInfo) markLoop(head, tail *cfgBlock) {
	d.inLoop[head.index] = true
	if head == tail {
		return
	}
	stack := []*cfgBlock{tail}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if d.inLoop[b.index] {
			continue
		}
		d.inLoop[b.index] = true
		for _, p := range b.preds {
			if !d.inLoop[p.index] {
				stack = append(stack, p)
			}
		}
	}
}

// stmtInLoop reports whether the given recorded statement sits inside a
// natural loop of the function.
func (d *domInfo) stmtInLoop(n ast.Node) bool {
	b, ok := d.g.stmtBlock[n]
	if !ok {
		return false
	}
	return d.inLoop[b.index]
}

// reversePostorder returns the blocks reachable from entry in reverse
// post-order plus each block's RPO number (unreachable blocks get number 0 —
// they are skipped by the dominator fixpoint via idom == -1).
func reversePostorder(g *funcCFG) ([]*cfgBlock, []int) {
	seen := make([]bool, len(g.blocks))
	var post []*cfgBlock
	var dfs func(b *cfgBlock)
	dfs = func(b *cfgBlock) {
		seen[b.index] = true
		for _, s := range b.succs {
			if !seen[s.index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.entry)
	rpo := make([]*cfgBlock, 0, len(post))
	rpoNum := make([]int, len(g.blocks))
	for i := len(post) - 1; i >= 0; i-- {
		rpoNum[post[i].index] = len(rpo)
		rpo = append(rpo, post[i])
	}
	return rpo, rpoNum
}
