package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file implements the lock-discipline pass, the SSA-lite successor of
// the syntactic harness-concurrency scan. The harness design promises that
// workers communicate with the pool EXCLUSIVELY over channels, with all
// merging on the single ordered-merge goroutine; where shared mutable state
// is genuinely needed, every write must be dominated by the acquire of the
// owning mutex.
//
// For every `go func() { ... }()` literal in a concurrency-scoped package
// the pass builds the body's CFG and runs a forward MUST-held lockset
// analysis: a lock is in the set at a program point only if it is held on
// EVERY path from the goroutine's entry. At each write to captured state:
//
//   - if the written object's selector chain passes through a struct that
//     declares a sync.Mutex/RWMutex field, that specific mutex (the owning
//     mutex, e.g. s.mu for a write to s.count) must be in the held set;
//
//   - otherwise any held lock is accepted, preserving the older pass's
//     cheaper invariant for plain shared variables.
//
// Semantics of the lockset: mu.Lock() adds mu's key; mu.Unlock() removes
// it; `defer mu.Unlock()` removes nothing (the lock is then held to the end
// of the body); RLock/RUnlock contribute nothing — a read lock never
// justifies a WRITE, which the old depth counter got wrong. A Lock on a
// receiver the analysis cannot name (e.g. locks[i].Lock()) adds a wildcard
// that satisfies any requirement, keeping the unknown case conservative
// toward silence. Joins intersect; loops reach a fixpoint, so a lock
// released on any path through a loop body is not considered held after it.
//
// Nested function literals run on the same goroutine and are analyzed with
// the lockset live at their syntactic position; nested `go` literals start
// fresh goroutines and are re-analyzed from an empty lockset with capture
// judged against the inner literal.
func checkLockDiscipline(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	walkNonTest(pkg, func(f *ast.File, n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		la := &lockAnalysis{pkg: pkg, lit: lit}
		la.analyze(lit.Body, nil)
		diags = append(diags, la.diags...)
		return false // nested go literals are re-analyzed recursively
	})
	return diags
}

type lockAnalysis struct {
	pkg   *Package
	lit   *ast.FuncLit // the goroutine body; capture is judged against it
	diags []Diagnostic
}

// event kinds, in per-block source order.
const (
	evLock = iota
	evUnlock
	evWrite
	evLit   // nested literal on the same goroutine
	evGoLit // nested literal starting a new goroutine
)

type lockEvent struct {
	kind int
	key  string       // evLock/evUnlock; "" means unknown receiver
	lhs  ast.Expr     // evWrite
	pos  token.Pos    // evWrite
	lit  *ast.FuncLit // evLit/evGoLit
}

// wildcardKey is the lockset entry for an acquire whose receiver could not
// be named; it satisfies every requirement.
const wildcardKey = "?"

// analyze runs the must-held fixpoint over one body and reports violating
// writes. entry is the lockset live at the body's entry (nil for a fresh
// goroutine).
func (la *lockAnalysis) analyze(body *ast.BlockStmt, entry map[string]bool) {
	g := buildCFG(body)

	goLits := make(map[*ast.FuncLit]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok {
			if l, ok := gs.Call.Fun.(*ast.FuncLit); ok {
				goLits[l] = true
			}
		}
		return true
	})

	events := make([][]lockEvent, len(g.blocks))
	universe := make(map[string]bool)
	for bi, blk := range g.blocks {
		for _, node := range blk.nodes {
			la.collect(node, &events[bi], goLits)
		}
		for _, ev := range events[bi] {
			if ev.kind == evLock {
				universe[ev.lockKeyOrWildcard()] = true
			}
		}
	}

	// Forward must-analysis: IN = ∩ preds' OUT, entry starts from the given
	// set, everything else from the full universe (so loops converge down).
	in := make([]map[string]bool, len(g.blocks))
	out := make([]map[string]bool, len(g.blocks))
	for i := range out {
		out[i] = copySet(universe)
	}
	out[g.entry.index] = applyEvents(copySet(entry), events[g.entry.index])
	rpo, _ := reversePostorder(g)
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			var s map[string]bool
			if b == g.entry {
				s = copySet(entry)
			} else {
				s = nil
				for _, p := range b.preds {
					if s == nil {
						s = copySet(out[p.index])
					} else {
						s = intersect(s, out[p.index])
					}
				}
				if s == nil {
					s = copySet(universe) // unreachable: stay vacuously safe
				}
			}
			in[b.index] = s
			ns := applyEvents(copySet(s), events[b.index])
			if !sameSet(ns, out[b.index]) {
				out[b.index] = ns
				changed = true
			}
		}
	}

	// Report pass: replay each block from its IN set.
	for bi, blk := range g.blocks {
		running := copySet(in[blk.index])
		if blk == g.entry {
			running = copySet(entry)
		}
		for _, ev := range events[bi] {
			switch ev.kind {
			case evLock, evUnlock:
				running = applyEvents(running, []lockEvent{ev})
			case evWrite:
				la.checkWrite(ev.lhs, ev.pos, running)
			case evLit:
				la.analyze(ev.lit.Body, copySet(running))
			case evGoLit:
				inner := &lockAnalysis{pkg: la.pkg, lit: ev.lit}
				inner.analyze(ev.lit.Body, nil)
				la.diags = append(la.diags, inner.diags...)
			}
		}
	}
}

func (ev lockEvent) lockKeyOrWildcard() string {
	if ev.key == "" {
		return wildcardKey
	}
	return ev.key
}

// collect turns one recorded CFG node into its ordered event list: lock
// operations and nested literals from the value-computation parts first,
// then the write targets (assignment stores after RHS evaluation).
func (la *lockAnalysis) collect(node ast.Node, evs *[]lockEvent, goLits map[*ast.FuncLit]bool) {
	_, isDefer := node.(*ast.DeferStmt)
	for _, part := range scanParts(node) {
		ast.Inspect(part, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				kind := evLit
				if goLits[n] {
					kind = evGoLit
				}
				*evs = append(*evs, lockEvent{kind: kind, lit: n})
				return false
			case *ast.CallExpr:
				if isDefer {
					return true // a deferred Unlock releases nothing yet
				}
				if kind, key, ok := la.lockOp(n); ok {
					*evs = append(*evs, lockEvent{kind: kind, key: key})
				}
			}
			return true
		})
	}
	switch n := node.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if n.Tok == token.DEFINE {
				if id, ok := lhs.(*ast.Ident); ok && la.pkg.Info.Defs[id] != nil {
					continue // declares a goroutine-local
				}
			}
			*evs = append(*evs, lockEvent{kind: evWrite, lhs: lhs, pos: n.Pos()})
		}
	case *ast.IncDecStmt:
		*evs = append(*evs, lockEvent{kind: evWrite, lhs: n.X, pos: n.Pos()})
	case *ast.RangeStmt:
		// ASSIGN-form range writes pre-existing variables per iteration; the
		// lockset checked is the one live at loop entry.
		if n.Tok == token.ASSIGN {
			if n.Key != nil {
				*evs = append(*evs, lockEvent{kind: evWrite, lhs: n.Key, pos: n.Pos()})
			}
			if n.Value != nil {
				*evs = append(*evs, lockEvent{kind: evWrite, lhs: n.Value, pos: n.Pos()})
			}
		}
	}
}

// lockOp recognizes Lock/Unlock calls on sync primitives and names the
// receiver. RLock/RUnlock are consumed (ok=true would be wrong — they must
// not reach the event stream) by returning ok=false, contributing nothing.
func (la *lockAnalysis) lockOp(call *ast.CallExpr) (kind int, key string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return 0, "", false
	}
	fn, _ := la.pkg.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return 0, "", false
	}
	switch fn.Name() {
	case "Lock":
		return evLock, la.lockKey(sel.X), true
	case "Unlock":
		return evUnlock, la.lockKey(sel.X), true
	}
	return 0, "", false
}

// lockKey renders a stable identity for a mutex expression: the root
// object's declaration position plus the selector path, so s.mu and s.mu
// written elsewhere agree and t.mu differs. Unresolvable shapes return "".
func (la *lockAnalysis) lockKey(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := la.pkg.Info.Uses[x]
		if obj == nil {
			obj = la.pkg.Info.Defs[x]
		}
		if obj == nil {
			return ""
		}
		return fmt.Sprintf("v%d", obj.Pos())
	case *ast.SelectorExpr:
		base := la.lockKey(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.StarExpr:
		return la.lockKey(x.X)
	default:
		return ""
	}
}

// captured reports whether the object is declared OUTSIDE the goroutine's
// function literal (and is a variable — captured constants and functions
// are immutable). Package-level variables have no enclosing literal but are
// just as shared; they count as captured too.
func (la *lockAnalysis) captured(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Pos() < la.lit.Pos() || v.Pos() > la.lit.End()
}

// rootObj digs to the base object a write lands on: for `out[i] = v` and
// `*p = v` and `rec.Field = v` that is out / p / rec.
func (la *lockAnalysis) rootObj(e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := la.pkg.Info.Uses[x]; obj != nil {
				return obj
			}
			return la.pkg.Info.Defs[x]
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// ownerReq is one mutex that would satisfy a write: its lockset key and a
// human-readable rendering for the message.
type ownerReq struct {
	key     string
	display string
}

// owners walks the write target's selector chain and collects the mutex
// fields of every struct it passes through — the candidate owning mutexes.
func (la *lockAnalysis) owners(lhs ast.Expr) []ownerReq {
	var reqs []ownerReq
	add := func(e ast.Expr) {
		t := la.pkg.Info.TypeOf(e)
		if t == nil {
			return
		}
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return
		}
		base := la.lockKey(e)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !isMutexType(f.Type()) {
				continue
			}
			req := ownerReq{display: types.ExprString(e) + "." + f.Name()}
			if base != "" {
				req.key = base + "." + f.Name()
			}
			reqs = append(reqs, req)
		}
	}
	e := lhs
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			add(x.X)
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			add(x)
			return dedupeOwners(reqs)
		default:
			return dedupeOwners(reqs)
		}
	}
}

func dedupeOwners(reqs []ownerReq) []ownerReq {
	seen := make(map[string]bool)
	out := reqs[:0]
	for _, r := range reqs {
		id := r.key + "|" + r.display
		if seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, r)
	}
	return out
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Pkg().Path() != "sync" {
		return false
	}
	name := n.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

// checkWrite reports a finding when the write's root object is captured and
// the held lockset does not satisfy the owning-mutex requirement.
func (la *lockAnalysis) checkWrite(lhs ast.Expr, pos token.Pos, held map[string]bool) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
		return
	}
	obj := la.rootObj(lhs)
	if obj == nil || !la.captured(obj) {
		return
	}
	reqs := la.owners(lhs)
	if len(reqs) == 0 {
		if len(held) > 0 {
			return
		}
		la.diags = append(la.diags, Diagnostic{
			Pos:  la.pkg.Fset.Position(pos),
			Rule: RuleLockDiscipline,
			Msg: fmt.Sprintf("goroutine writes captured variable %q without holding a mutex; workers must communicate over channels and leave merging to the ordered-merge goroutine",
				obj.Name()),
		})
		return
	}
	if held[wildcardKey] {
		return
	}
	var names []string
	for _, r := range reqs {
		if r.key != "" && held[r.key] {
			return
		}
		names = append(names, r.display)
	}
	sort.Strings(names)
	la.diags = append(la.diags, Diagnostic{
		Pos:  la.pkg.Fset.Position(pos),
		Rule: RuleLockDiscipline,
		Msg: fmt.Sprintf("goroutine write to %q is not dominated by its owning mutex (%s); acquire it on every path before the write",
			obj.Name(), strings.Join(names, " or ")),
	})
}

// --- small set helpers ---

func copySet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func intersect(a, b map[string]bool) map[string]bool {
	for k := range a {
		if !b[k] {
			delete(a, k)
		}
	}
	return a
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// applyEvents runs the lock transfer function over a set.
func applyEvents(s map[string]bool, evs []lockEvent) map[string]bool {
	for _, ev := range evs {
		switch ev.kind {
		case evLock:
			s[ev.lockKeyOrWildcard()] = true
		case evUnlock:
			if ev.key == "" {
				// Unlock of an unnamed receiver: assume it could release
				// anything, which is the safe direction for a must-analysis.
				for k := range s {
					delete(s, k)
				}
			} else {
				delete(s, ev.key)
			}
		}
	}
	return s
}
