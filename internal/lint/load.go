package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one parsed and type-checked package of the module under
// analysis. Test files (*_test.go) are excluded: every lrlint rule scopes to
// non-test code, and tests legitimately use wall-clock timeouts and ad-hoc
// randomness.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// loader parses and type-checks module packages. Parsing is embarrassingly
// parallel (token.FileSet is documented concurrency-safe); type-checking
// runs one goroutine per package over the import DAG, where each package's
// check is wrapped in a sync.Once that importers of the package block on.
// Imports outside the module (the standard library) are resolved from source
// via go/importer's "source" compiler, keeping the tool free of external
// dependencies and of compiled export data; that importer's thread-safety is
// not documented, so calls into it are serialized behind extMu.
type loader struct {
	fset    *token.FileSet
	ext     types.Importer
	extMu   sync.Mutex
	modPath string
	modRoot string
	srcs    map[string]*pkgSrc // fully built before any type-checking starts
	errMu   sync.Mutex
	typeErr []error
}

type pkgSrc struct {
	dir   string
	files []*ast.File
	once  sync.Once
	pkg   *Package
	err   error
}

// LoadModule parses and type-checks every non-test package under the module
// rooted at dir (the directory containing go.mod). Packages are returned
// sorted by import path.
func LoadModule(root string) ([]*Package, string, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, "", err
	}
	modPath, err := modulePath(filepath.Join(absRoot, "go.mod"))
	if err != nil {
		return nil, "", err
	}
	ld := newLoader(modPath, absRoot)
	if err := ld.discover(); err != nil {
		return nil, "", err
	}
	// Import cycles would deadlock the Once-based parallel check, so reject
	// them up front from the parsed import declarations.
	if err := ld.checkCycles(); err != nil {
		return nil, "", err
	}
	paths := make([]string, 0, len(ld.srcs))
	for p := range ld.srcs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var wg sync.WaitGroup
	for _, p := range paths {
		wg.Add(1)
		go func(p string) {
			defer wg.Done()
			// Results and errors are cached in the pkgSrc Once and re-read
			// below in sorted order, so first-error reporting stays
			// deterministic regardless of which goroutine checked first.
			_, _ = ld.check(p)
		}(p)
	}
	wg.Wait()
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := ld.check(p)
		if err != nil {
			return nil, "", err
		}
		out = append(out, pkg)
	}
	if len(ld.typeErr) > 0 {
		return nil, "", fmt.Errorf("lint: type errors in module: %w", errors.Join(ld.typeErr...))
	}
	return out, modPath, nil
}

// LoadDir parses and type-checks the single package in dir under the given
// import path, which controls rule scoping. It is used by fixture tests to
// place a directory anywhere in a pretend module layout.
func LoadDir(dir, importPath string) (*Package, error) {
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	ld := newLoader(importPath, absDir)
	files, err := ld.parseDir(absDir)
	if err != nil {
		return nil, err
	}
	ld.srcs[importPath] = &pkgSrc{dir: absDir, files: files}
	pkg, err := ld.check(importPath)
	if err != nil {
		return nil, err
	}
	if len(ld.typeErr) > 0 {
		return nil, fmt.Errorf("lint: type errors in %s: %w", dir, errors.Join(ld.typeErr...))
	}
	return pkg, nil
}

func newLoader(modPath, modRoot string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		ext:     importer.ForCompiler(fset, "source", nil),
		modPath: modPath,
		modRoot: modRoot,
		srcs:    make(map[string]*pkgSrc),
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: cannot read %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// discover walks the module tree collecting package directories, then parses
// them in parallel. testdata, vendor, and hidden directories are skipped, as
// is anything that is not a non-test .go file.
func (ld *loader) discover() error {
	type pkgDir struct{ dir, importPath string }
	var dirs []pkgDir
	err := filepath.WalkDir(ld.modRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != ld.modRoot && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(ld.modRoot, path)
		if err != nil {
			return err
		}
		ip := ld.modPath
		if rel != "." {
			ip = ld.modPath + "/" + filepath.ToSlash(rel)
		}
		dirs = append(dirs, pkgDir{dir: path, importPath: ip})
		return nil
	})
	if err != nil {
		return err
	}
	// Parallel parse, bounded by core count. Results land in a slice indexed
	// by position, then move into the srcs map on this goroutine.
	type parsed struct {
		files []*ast.File
		err   error
	}
	results := make([]parsed, len(dirs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, pd := range dirs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, dir string) {
			defer wg.Done()
			defer func() { <-sem }()
			files, err := ld.parseDir(dir)
			results[i] = parsed{files: files, err: err}
		}(i, pd.dir)
	}
	wg.Wait()
	for i, pd := range dirs {
		if results[i].err != nil {
			return results[i].err
		}
		if len(results[i].files) == 0 {
			continue
		}
		ld.srcs[pd.importPath] = &pkgSrc{dir: pd.dir, files: results[i].files}
	}
	return nil
}

// parseDir parses the non-test .go files of one directory.
func (ld *loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	return files, nil
}

// intraModuleImports reads a package's intra-module import paths from its
// parsed files.
func (ld *loader) intraModuleImports(src *pkgSrc) []string {
	var out []string
	for _, f := range src.files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p == ld.modPath || strings.HasPrefix(p, ld.modPath+"/") {
				out = append(out, p)
			}
		}
	}
	return out
}

// checkCycles rejects import cycles among the discovered packages with a
// three-color DFS over the parsed import declarations.
func (ld *loader) checkCycles() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var visit func(path string) error
	visit = func(path string) error {
		switch color[path] {
		case gray:
			return fmt.Errorf("lint: import cycle through %s", path)
		case black:
			return nil
		}
		color[path] = gray
		if src, ok := ld.srcs[path]; ok {
			for _, dep := range ld.intraModuleImports(src) {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		color[path] = black
		return nil
	}
	paths := make([]string, 0, len(ld.srcs))
	for p := range ld.srcs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return err
		}
	}
	return nil
}

// check type-checks one discovered package exactly once; concurrent callers
// (importers of the package running on other goroutines) block on the Once
// until the result is ready.
func (ld *loader) check(path string) (*Package, error) {
	src, ok := ld.srcs[path]
	if !ok {
		return nil, fmt.Errorf("lint: package %s not found in module %s", path, ld.modPath)
	}
	src.once.Do(func() {
		src.pkg, src.err = ld.typecheck(path, src)
	})
	return src.pkg, src.err
}

// typecheck runs the go/types checker over one package. Each invocation owns
// its types.Info and types.Config; the shared FileSet is concurrency-safe,
// and dependency packages are obtained through Import (below), which
// serializes on each dep's Once.
func (ld *loader) typecheck(path string, src *pkgSrc) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer:                 ld,
		Sizes:                    types.SizesFor("gc", runtime.GOARCH),
		FakeImportC:              true,
		DisableUnusedImportCheck: true,
		Error: func(err error) {
			ld.errMu.Lock()
			defer ld.errMu.Unlock()
			if len(ld.typeErr) < 20 {
				ld.typeErr = append(ld.typeErr, err)
			}
		},
	}
	tpkg, _ := conf.Check(path, ld.fset, src.files, info)
	return &Package{
		ImportPath: path,
		Dir:        src.dir,
		Fset:       ld.fset,
		Files:      src.files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// Import implements types.Importer: intra-module imports resolve through the
// loader's own Once-guarded cache; everything else falls through to the
// source importer, serialized because its internal caches are not documented
// as concurrency-safe.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == ld.modPath || strings.HasPrefix(path, ld.modPath+"/") {
		pkg, err := ld.check(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	ld.extMu.Lock()
	defer ld.extMu.Unlock()
	return ld.ext.Import(path)
}
