package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module under
// analysis. Test files (*_test.go) are excluded: every lrlint rule scopes to
// non-test code, and tests legitimately use wall-clock timeouts and ad-hoc
// randomness.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// loader type-checks module packages in dependency order. Imports outside
// the module (the standard library) are resolved from source via
// go/importer's "source" compiler, keeping the tool free of external
// dependencies and of compiled export data.
type loader struct {
	fset    *token.FileSet
	ext     types.Importer
	modPath string
	modRoot string
	srcs    map[string]*pkgSrc  // parsed but not yet checked, by import path
	pkgs    map[string]*Package // checked, by import path
	loading map[string]bool     // cycle guard
	typeErr []error
}

type pkgSrc struct {
	dir   string
	files []*ast.File
}

// LoadModule parses and type-checks every non-test package under the module
// rooted at dir (the directory containing go.mod). Packages are returned
// sorted by import path.
func LoadModule(root string) ([]*Package, string, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, "", err
	}
	modPath, err := modulePath(filepath.Join(absRoot, "go.mod"))
	if err != nil {
		return nil, "", err
	}
	ld := newLoader(modPath, absRoot)
	if err := ld.discover(); err != nil {
		return nil, "", err
	}
	paths := make([]string, 0, len(ld.srcs))
	for p := range ld.srcs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := ld.check(p)
		if err != nil {
			return nil, "", err
		}
		out = append(out, pkg)
	}
	if len(ld.typeErr) > 0 {
		return nil, "", fmt.Errorf("lint: type errors in module: %w", errors.Join(ld.typeErr...))
	}
	return out, modPath, nil
}

// LoadDir parses and type-checks the single package in dir under the given
// import path, which controls rule scoping. It is used by fixture tests to
// place a directory anywhere in a pretend module layout.
func LoadDir(dir, importPath string) (*Package, error) {
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	ld := newLoader(importPath, absDir)
	files, err := ld.parseDir(absDir)
	if err != nil {
		return nil, err
	}
	ld.srcs[importPath] = &pkgSrc{dir: absDir, files: files}
	pkg, err := ld.check(importPath)
	if err != nil {
		return nil, err
	}
	if len(ld.typeErr) > 0 {
		return nil, fmt.Errorf("lint: type errors in %s: %w", dir, errors.Join(ld.typeErr...))
	}
	return pkg, nil
}

func newLoader(modPath, modRoot string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		ext:     importer.ForCompiler(fset, "source", nil),
		modPath: modPath,
		modRoot: modRoot,
		srcs:    make(map[string]*pkgSrc),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: cannot read %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// discover walks the module tree, parsing every package directory. testdata,
// vendor, and hidden directories are skipped, as is anything that is not a
// non-test .go file.
func (ld *loader) discover() error {
	return filepath.WalkDir(ld.modRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != ld.modRoot && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := ld.parseDir(path)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(ld.modRoot, path)
		if err != nil {
			return err
		}
		ip := ld.modPath
		if rel != "." {
			ip = ld.modPath + "/" + filepath.ToSlash(rel)
		}
		ld.srcs[ip] = &pkgSrc{dir: path, files: files}
		return nil
	})
}

// parseDir parses the non-test .go files of one directory.
func (ld *loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks one discovered package (and, recursively, its
// intra-module dependencies).
func (ld *loader) check(path string) (*Package, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	src, ok := ld.srcs[path]
	if !ok {
		return nil, fmt.Errorf("lint: package %s not found in module %s", path, ld.modPath)
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer:                 ld,
		Sizes:                    types.SizesFor("gc", runtime.GOARCH),
		FakeImportC:              true,
		DisableUnusedImportCheck: true,
		Error: func(err error) {
			if len(ld.typeErr) < 20 {
				ld.typeErr = append(ld.typeErr, err)
			}
		},
	}
	tpkg, _ := conf.Check(path, ld.fset, src.files, info)
	pkg := &Package{
		ImportPath: path,
		Dir:        src.dir,
		Fset:       ld.fset,
		Files:      src.files,
		Types:      tpkg,
		Info:       info,
	}
	ld.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer: intra-module imports resolve through the
// loader's own cache; everything else falls through to the source importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == ld.modPath || strings.HasPrefix(path, ld.modPath+"/") {
		pkg, err := ld.check(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.ext.Import(path)
}
