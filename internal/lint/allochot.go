package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// This file implements the alloc-hotpath pass. The ROADMAP's scale goals
// (100k–1M nodes, crypto/codec paths "as fast as the hardware allows") die
// by a thousand small heap allocations: a make per RS shard, an interface
// box per trace call, a closure per delivery. This pass walks every function
// statically reachable from the declared hot roots (Config.HotRoots, plus
// any function carrying a //lrlint:hotpath marker) and flags the allocation
// shapes that go/types can prove without a full escape analysis:
//
//   - alloc-in-loop: make/new, &composite, slice/map composite literals, and
//     string<->[]byte conversions inside a natural loop of a hot function
//     allocate once per iteration.
//
//   - append-growth: append in a hot loop whose base slice has no visible
//     3-arg make in the same function grows by repeated reallocation.
//
//   - closure-in-loop / defer-in-loop: function literals and defer records
//     are heap-allocated per iteration.
//
//   - variadic-in-loop: calling a variadic function without an existing
//     slice (no ... spread) materializes the argument slice per call.
//
//   - interface boxing: passing a concrete non-pointer-shaped value (basic,
//     struct, array, slice) to an interface parameter boxes it — flagged
//     anywhere in a hot function, loops or not, because hot functions are
//     themselves called per packet or per symbol.
//
// Loop membership comes from the SSA-lite CFG (cfg.go) and its natural-loop
// analysis (dom.go); a range expression evaluates in the loop pre-header and
// is deliberately NOT treated as per-iteration. Cold subtrees are excluded:
// panic arguments and calls into fmt/errors (failure formatting runs once,
// on the way out).
//
// Findings are reported only for functions in Config.HotPathPackages or
// functions carrying the marker themselves; reachability still traverses
// shared helpers elsewhere, but those trees are policed by their own
// packages' rules, not this gate.
func checkAllocHot(idx *modIndex) []Diagnostic {
	var diags []Diagnostic
	for _, fi := range idx.order {
		if !fi.hot || !idx.reportable(fi) {
			continue
		}
		a := &hotAnalysis{idx: idx, fi: fi}
		a.analyzeBody(fi.decl.Body)
		diags = append(diags, a.diags...)
	}
	return diags
}

type hotAnalysis struct {
	idx   *modIndex
	fi    *funcInfo
	diags []Diagnostic
}

func (a *hotAnalysis) report(n ast.Node, format string, args ...any) {
	args = append(args, a.fi.qname, a.fi.hotVia)
	a.diags = append(a.diags, Diagnostic{
		Pos:  a.fi.pkg.Fset.Position(n.Pos()),
		Rule: RuleAllocHot,
		Msg:  fmt.Sprintf(format+" in hot function %s (reachable from %s)", args...),
	})
}

// analyzeBody builds the CFG of one function (or function-literal) body and
// scans each block. Nested literals are analyzed recursively with their own
// CFGs, attributed to the same hot function.
func (a *hotAnalysis) analyzeBody(body *ast.BlockStmt) {
	g := buildCFG(body)
	dom := analyzeDom(g)
	prealloc := preallocatedVars(a.fi.pkg, body)
	for _, blk := range g.blocks {
		inLoop := dom.inLoop[blk.index]
		for _, node := range blk.nodes {
			if ds, ok := node.(*ast.DeferStmt); ok && inLoop {
				a.report(ds, "defer allocates a record per loop iteration")
			}
			for _, part := range scanParts(node) {
				a.scanExpr(part, inLoop, prealloc)
			}
		}
	}
}

// scanExpr walks one block-local part, applying the loop-gated and
// everywhere checks. Cold subtrees (panic, fmt, errors) are skipped whole;
// function literals are collected for separate analysis.
func (a *hotAnalysis) scanExpr(root ast.Node, inLoop bool, prealloc map[types.Object]bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if inLoop {
				a.report(n, "function literal allocated per loop iteration; hoist it out of the loop")
			}
			a.analyzeBody(n.Body)
			return false
		case *ast.CompositeLit:
			if inLoop && allocatingComposite(a.fi.pkg, n) {
				a.report(n, "composite literal allocates per loop iteration; hoist or reuse a buffer")
			}
		case *ast.UnaryExpr:
			if inLoop && n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					a.report(n, "&composite allocates per loop iteration; hoist or reuse a buffer")
					return false
				}
			}
		case *ast.CallExpr:
			return a.scanCall(n, inLoop, prealloc)
		}
		return true
	})
}

// scanCall applies the call-shaped checks and reports whether the walk
// should descend into the call's subtree.
func (a *hotAnalysis) scanCall(call *ast.CallExpr, inLoop bool, prealloc map[types.Object]bool) bool {
	pkg := a.fi.pkg
	// Type conversions: only string<->byte/rune-slice conversions allocate.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if inLoop && len(call.Args) == 1 && allocatingConversion(tv.Type, pkg.Info.TypeOf(call.Args[0])) {
			a.report(call, "string/[]byte conversion copies per loop iteration")
		}
		return true
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "panic":
				return false // cold path: the goroutine is unwinding
			case "make", "new":
				if inLoop {
					a.report(call, "%s allocates per loop iteration; hoist or reuse a buffer", id.Name)
				}
			case "append":
				if inLoop && !a.appendPreallocated(call, prealloc) {
					a.report(call, "append grows an unpreallocated slice per loop iteration; make it with capacity before the loop")
				}
			}
			return true
		}
	}
	if callee := calleeOf(pkg, call); callee != nil && callee.Pkg() != nil {
		switch callee.Pkg().Path() {
		case "fmt", "errors":
			return false // failure formatting is cold
		}
	}
	sig, _ := pkg.Info.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return true
	}
	if inLoop && sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= sig.Params().Len() {
		a.report(call, "variadic call materializes its argument slice per loop iteration; pass an existing slice with ... or use a fixed-arity variant")
	}
	for i, arg := range call.Args {
		pi := i
		if pi >= sig.Params().Len() {
			if !sig.Variadic() {
				break
			}
			pi = sig.Params().Len() - 1
		}
		pt := sig.Params().At(pi).Type()
		if sig.Variadic() && pi == sig.Params().Len()-1 && !call.Ellipsis.IsValid() {
			if s, ok := pt.Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		}
		if isInterfaceType(pt) && boxes(pkg.Info.TypeOf(arg)) {
			a.report(arg, "passing a concrete value to interface parameter boxes it on the heap")
		}
	}
	return true
}

// appendPreallocated accepts append calls whose base is a plain variable
// with a visible 3-arg make (explicit capacity) in the same function body.
func (a *hotAnalysis) appendPreallocated(call *ast.CallExpr, prealloc map[types.Object]bool) bool {
	if len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return false
	}
	obj := a.fi.pkg.Info.Uses[id]
	if obj == nil {
		obj = a.fi.pkg.Info.Defs[id]
	}
	return obj != nil && prealloc[obj]
}

// preallocatedVars collects the variables assigned a 3-arg make (or a
// full-slice expression, which pins capacity the same way) anywhere in the
// body.
func preallocatedVars(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	record := func(lhs, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		capped := false
		switch r := ast.Unparen(rhs).(type) {
		case *ast.CallExpr:
			if f, ok := ast.Unparen(r.Fun).(*ast.Ident); ok && f.Name == "make" && len(r.Args) == 3 {
				if _, isBuiltin := pkg.Info.Uses[f].(*types.Builtin); isBuiltin {
					capped = true
				}
			}
		case *ast.SliceExpr:
			capped = r.Slice3
		}
		if !capped {
			return
		}
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id]
		}
		if obj != nil {
			out[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// allocatingComposite reports whether the composite literal heap-allocates:
// slice and map literals do; struct and array value literals live on the
// stack (taking their address is the &composite case).
func allocatingComposite(pkg *Package, lit *ast.CompositeLit) bool {
	t := pkg.Info.TypeOf(lit)
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// allocatingConversion reports whether a conversion from 'from' to 'to'
// copies its data: string <-> []byte / []rune in either direction.
func allocatingConversion(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteish := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		if !ok {
			return false
		}
		switch b.Kind() {
		case types.Uint8, types.Int32: // byte and rune respectively
			return true
		}
		return false
	}
	return (isStr(to) && isByteish(from)) || (isByteish(to) && isStr(from))
}

// isInterfaceType reports whether t's underlying type is a non-empty or
// empty interface.
func isInterfaceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// boxes reports whether passing a value of type t to an interface parameter
// stores it on the heap: basic values, structs, arrays, slices and strings
// do; pointers, maps, channels, funcs and existing interfaces are
// pointer-shaped and do not.
func boxes(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Basic, *types.Struct, *types.Array, *types.Slice:
		return true
	}
	return false
}

// scanParts returns the pieces of a recorded CFG node that execute in its
// block: compound statements contribute only their header expressions,
// because their bodies live in other blocks.
func scanParts(n ast.Node) []ast.Node {
	switch n := n.(type) {
	case *ast.IfStmt:
		return []ast.Node{n.Cond}
	case *ast.SwitchStmt:
		if n.Tag != nil {
			return []ast.Node{n.Tag}
		}
		return nil
	case *ast.TypeSwitchStmt:
		return []ast.Node{n.Assign}
	case *ast.RangeStmt:
		return []ast.Node{n.X}
	case *ast.SelectStmt:
		return nil
	default:
		return []ast.Node{n}
	}
}
