package lint

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// TestReportGolden pins the -json artifact schema byte-for-byte:
// scripts/check.sh diffs lrlint -json output against a committed golden, so
// field order, indentation, and empty-slice conventions are contractual.
// Regenerate with -update.
func TestReportGolden(t *testing.T) {
	diags := []Diagnostic{
		{
			Pos:  token.Position{Filename: "internal/deluge/deluge.go", Line: 148, Column: 2},
			Rule: RuleTaint,
			Msg:  "example finding",
		},
		{
			Pos:  token.Position{Filename: "internal/harness/harness.go", Line: 7, Column: 9},
			Rule: RuleLockDiscipline,
			Msg:  "second example",
		},
	}
	rep := NewReport("lrseluge", nil, diags)
	got, err := rep.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "report_golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("report mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestReportEmptyFindings pins the clean-run conventions the check.sh gate
// relies on: findings is [] (never null), count is 0, and the full rule
// catalog is listed when no filter was applied.
func TestReportEmptyFindings(t *testing.T) {
	rep := NewReport("lrseluge", nil, nil)
	b, err := rep.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	findings, ok := decoded["findings"].([]any)
	if !ok {
		t.Fatalf("findings is %T, want JSON array (never null)", decoded["findings"])
	}
	if len(findings) != 0 {
		t.Errorf("findings = %v, want empty", findings)
	}
	if decoded["count"].(float64) != 0 {
		t.Errorf("count = %v, want 0", decoded["count"])
	}
	rules, _ := decoded["rules"].([]any)
	if len(rules) != len(AllRules) {
		t.Errorf("rules lists %d entries, want the full catalog of %d", len(rules), len(AllRules))
	}
}

// TestReportRulesFilter verifies a -rules run records the subset it ran.
func TestReportRulesFilter(t *testing.T) {
	rep := NewReport("lrseluge", []string{RuleRNG}, nil)
	if len(rep.Rules) != 1 || rep.Rules[0] != RuleRNG {
		t.Errorf("rules = %v, want [%s]", rep.Rules, RuleRNG)
	}
}
