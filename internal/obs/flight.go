package obs

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// FlightRecorder keeps a bounded ring of recent record lines (typically
// trace-event JSONL) plus a small key/value state board, and renders both as
// a post-mortem dump when a run panics or times out.
//
// Unlike the phase timers, the recorder is mutex-guarded: the harness dumps
// it from its supervisor goroutine while a timed-out job's abandoned
// goroutine may still be appending lines.
type FlightRecorder struct {
	mu      sync.Mutex
	cap     int
	lines   [][]byte
	start   int
	n       int
	dropped uint64
	state   map[string]string
	path    string
}

// NewFlightRecorder returns a recorder retaining the most recent cap lines
// (minimum 1).
func NewFlightRecorder(cap int) *FlightRecorder {
	if cap < 1 {
		cap = 1
	}
	return &FlightRecorder{cap: cap, lines: make([][]byte, cap), state: make(map[string]string)}
}

// RecordLine appends one record, evicting the oldest when full. The line is
// copied, so callers may reuse their buffer. Safe for concurrent use.
func (f *FlightRecorder) RecordLine(line []byte) {
	if f == nil {
		return
	}
	cp := make([]byte, len(line))
	copy(cp, line)
	f.mu.Lock()
	if f.n == f.cap {
		f.lines[f.start] = cp
		f.start = (f.start + 1) % f.cap
		f.dropped++
	} else {
		f.lines[(f.start+f.n)%f.cap] = cp
		f.n++
	}
	f.mu.Unlock()
}

// SetState records a key/value on the dump's state board (e.g. job index,
// current virtual time, last completed node count). Safe for concurrent use.
func (f *FlightRecorder) SetState(key, val string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.state[key] = val
	f.mu.Unlock()
}

// SetOutput sets the file path Dump writes to.
func (f *FlightRecorder) SetOutput(path string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.path = path
	f.mu.Unlock()
}

// Len reports how many lines are currently retained.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Dropped reports how many lines were evicted from the ring.
func (f *FlightRecorder) Dropped() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// WriteDump renders the dump — a header with the reason, the sorted state
// board, then the retained lines oldest-first — to w. Safe for concurrent
// use with RecordLine/SetState.
//
//lrlint:effects(maporder) state keys are collected and sorted before rendering, so the dump bytes are iteration-order independent
func (f *FlightRecorder) WriteDump(w io.Writer, reason string) error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, err := fmt.Fprintf(w, "=== flight dump: %s ===\n", reason); err != nil {
		return err
	}
	keys := make([]string, 0, len(f.state))
	for k := range f.state {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "state %s=%s\n", k, f.state[k]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "--- last %d events (%d dropped) ---\n", f.n, f.dropped); err != nil {
		return err
	}
	for i := 0; i < f.n; i++ {
		line := f.lines[(f.start+i)%f.cap]
		if _, err := w.Write(line); err != nil {
			return err
		}
		if len(line) == 0 || line[len(line)-1] != '\n' {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

// Dump writes the dump to the path set by SetOutput. A recorder without an
// output path dumps nowhere and returns nil.
//
//lrlint:effects(fs) the post-mortem boundary: a panicking or timed-out job flushes its ring to disk for later diagnosis
func (f *FlightRecorder) Dump(reason string) error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	path := f.path
	f.mu.Unlock()
	if path == "" {
		return nil
	}
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := f.WriteDump(out, reason)
	cerr := out.Close()
	if werr != nil {
		return werr
	}
	return cerr
}
