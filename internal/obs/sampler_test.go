package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestSamplerJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewSampler(&buf)
	s.Sample(Gauges{SimNS: 1e9, Events: 100, Pending: 5, Completed: 1})
	s.Sample(Gauges{SimNS: 2e9, Events: 300, Pending: 7, Completed: 3})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.Samples(); got != 2 {
		t.Fatalf("Samples = %d, want 2", got)
	}
	snaps, err := ReadSnapshots(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("read %d snapshots, want 2", len(snaps))
	}
	if snaps[0].Events != 100 || snaps[1].Events != 300 {
		t.Fatalf("events = %d, %d", snaps[0].Events, snaps[1].Events)
	}
	if snaps[0].EventsPerSec != 0 {
		t.Fatalf("first sample events/sec = %v, want 0", snaps[0].EventsPerSec)
	}
	if snaps[1].SimNS != 2e9 || snaps[1].Pending != 7 || snaps[1].Completed != 3 {
		t.Fatalf("gauges lost: %+v", snaps[1])
	}
	if snaps[1].Runtime.HeapBytes == 0 {
		t.Fatal("runtime heap bytes not captured")
	}
	if snaps[1].Runtime.Goroutines <= 0 {
		t.Fatal("runtime goroutines not captured")
	}
}

func TestNilSamplerSafe(t *testing.T) {
	var s *Sampler
	snap := s.Sample(Gauges{Events: 1})
	if snap.Events != 0 {
		t.Fatalf("nil Sample returned %+v", snap)
	}
	if s.Samples() != 0 {
		t.Fatal("nil Samples != 0")
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("nil Flush = %v", err)
	}
}

func TestReadSnapshotsStrict(t *testing.T) {
	if _, err := ReadSnapshots(strings.NewReader(`{"v":1,"wall_ms":0,"sim_ns":0,"events":0,"events_per_sec":0,"pending":0,"completed":0,"runtime":{"heap_bytes":0,"total_alloc_bytes":0,"gc_cycles":0,"gc_pause_ns":0,"goroutines":0},"bogus":1}` + "\n")); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ReadSnapshots(strings.NewReader(`{"v":7,"wall_ms":0,"sim_ns":0,"events":0,"events_per_sec":0,"pending":0,"completed":0,"runtime":{"heap_bytes":0,"total_alloc_bytes":0,"gc_cycles":0,"gc_pause_ns":0,"goroutines":0}}` + "\n")); err == nil {
		t.Fatal("unknown schema accepted")
	}
	snaps, err := ReadSnapshots(strings.NewReader("\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 0 {
		t.Fatalf("blank stream read %d snapshots", len(snaps))
	}
}

func TestReadRuntime(t *testing.T) {
	r := ReadRuntime()
	if r.HeapBytes == 0 {
		t.Fatal("heap bytes = 0")
	}
	if r.TotalAllocBytes == 0 {
		t.Fatal("total alloc bytes = 0")
	}
	if r.Goroutines <= 0 {
		t.Fatalf("goroutines = %d", r.Goroutines)
	}
}

func TestWritePromRendersAllSeries(t *testing.T) {
	var buf bytes.Buffer
	RuntimeStats{
		HeapBytes:       10,
		TotalAllocBytes: 20,
		GCCycles:        3,
		GCPauseNS:       40,
		Goroutines:      5,
	}.WriteProm(&buf, "tst")
	out := buf.String()
	for _, want := range []string{
		"# TYPE tst_runtime_total_alloc_bytes counter\ntst_runtime_total_alloc_bytes 20\n",
		"# TYPE tst_runtime_gc_cycles_total counter\ntst_runtime_gc_cycles_total 3\n",
		"# TYPE tst_runtime_gc_pause_ns_total counter\ntst_runtime_gc_pause_ns_total 40\n",
		"# TYPE tst_runtime_heap_bytes gauge\ntst_runtime_heap_bytes 10\n",
		"# TYPE tst_runtime_goroutines gauge\ntst_runtime_goroutines 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom render missing %q:\n%s", want, out)
		}
	}
}

func TestWriteSnapshotText(t *testing.T) {
	var buf bytes.Buffer
	snaps := []Snapshot{{SchemaV: 1, WallMS: 12, SimNS: 3e9, Events: 500, EventsPerSec: 100, Pending: 2, Completed: 9}}
	if err := WriteSnapshotText(&buf, snaps); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"wall_ms", "events/s", "500", "3.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("snapshot table missing %q:\n%s", want, out)
		}
	}
}
