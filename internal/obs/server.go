package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
)

// Board is a lock-free publication point for the latest progress value: the
// run loop publishes, HTTP handlers load. The zero value is ready to use.
type Board struct {
	v atomic.Value
}

// Publish stores the latest progress value. Successive values must share one
// concrete type (atomic.Value's contract); obs callers publish Snapshot.
func (b *Board) Publish(v any) {
	if b == nil {
		return
	}
	b.v.Store(v)
}

// Load returns the latest published value, or nil before the first Publish.
func (b *Board) Load() any {
	if b == nil {
		return nil
	}
	return b.v.Load()
}

// ServeOptions configures the live export surface.
type ServeOptions struct {
	// Progress, when non-nil, backs GET /progress: the latest published
	// value rendered as JSON (404 before the first publish).
	Progress *Board
	// Metrics, when non-nil, backs GET /metrics with caller-rendered
	// Prometheus text; the process runtime gauges are appended after it.
	// When nil, /metrics serves the runtime gauges alone.
	Metrics func(w io.Writer)
}

// Serve starts the opt-in live export listener on addr: net/http/pprof under
// /debug/pprof/, Prometheus text on /metrics, the latest progress snapshot
// as JSON on /progress, and /healthz. It returns the bound address (so
// addr may use port 0) and a shutdown func that closes the listener.
//
// The surface is diagnostic and unauthenticated — bind loopback unless the
// host network is trusted.
//
//lrlint:effects(net,spawn) the opt-in live export boundary: serves pprof/metrics/progress over HTTP on a background goroutine; reporting-only
func Serve(addr string, opts ServeOptions) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if opts.Metrics != nil {
			opts.Metrics(w)
		}
		ReadRuntime().WriteProm(w, "lrobs")
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		v := opts.Progress.Load()
		if v == nil {
			http.Error(w, "no progress published yet", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), ln.Close, nil
}
