package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"runtime/metrics"
	"time"
)

// SnapshotSchema is the snapshot-JSONL schema version, encoded as "v" in
// every line; readers refuse schemas they do not know.
const SnapshotSchema = 1

// Gauges are the engine-side observations the caller feeds into each
// sample: obs cannot (and must not) reach into the simulation itself.
type Gauges struct {
	// SimNS is the virtual clock, in nanoseconds.
	SimNS int64
	// Events is the cumulative count of executed engine events.
	Events uint64
	// Pending is the number of live scheduled events.
	Pending int
	// Completed is how many nodes hold the full image.
	Completed int
}

// Snapshot is one schema'd runtime observation: engine gauges plus process
// runtime health, stamped with wall time since the sampler started.
type Snapshot struct {
	SchemaV int `json:"v"`
	// WallMS is wall milliseconds since the sampler was created.
	WallMS int64 `json:"wall_ms"`
	// SimNS is the virtual clock at the sample.
	SimNS int64 `json:"sim_ns"`
	// Events is the cumulative executed-event count.
	Events uint64 `json:"events"`
	// EventsPerSec is the throughput over the interval since the previous
	// sample (0 on the first sample).
	EventsPerSec float64 `json:"events_per_sec"`
	// Pending is the number of live scheduled events.
	Pending int `json:"pending"`
	// Completed is how many nodes hold the full image.
	Completed int `json:"completed"`
	// Runtime is the process runtime capture.
	Runtime RuntimeStats `json:"runtime"`
}

// RuntimeStats is a point-in-time capture of process-level runtime health,
// read from runtime/metrics (heap, allocation and scheduler gauges) plus the
// MemStats GC pause total.
type RuntimeStats struct {
	// HeapBytes is live heap memory occupied by objects
	// (/memory/classes/heap/objects:bytes).
	HeapBytes uint64 `json:"heap_bytes"`
	// TotalAllocBytes is cumulative bytes allocated (/gc/heap/allocs:bytes).
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	// GCCycles is the number of completed GC cycles
	// (/gc/cycles/total:gc-cycles).
	GCCycles uint64 `json:"gc_cycles"`
	// GCPauseNS is the cumulative stop-the-world pause time.
	GCPauseNS uint64 `json:"gc_pause_ns"`
	// Goroutines is the live goroutine count (/sched/goroutines:goroutines).
	Goroutines int `json:"goroutines"`
}

// runtimeSampleNames are the runtime/metrics series ReadRuntime captures, in
// the order of the samples slice below.
var runtimeSampleNames = []string{
	"/memory/classes/heap/objects:bytes",
	"/gc/heap/allocs:bytes",
	"/gc/cycles/total:gc-cycles",
	"/sched/goroutines:goroutines",
}

// ReadRuntime captures the process runtime gauges. Unknown series (older
// toolchains) read as zero rather than failing.
func ReadRuntime() RuntimeStats {
	samples := make([]metrics.Sample, len(runtimeSampleNames))
	for i, name := range runtimeSampleNames {
		samples[i].Name = name
	}
	metrics.Read(samples)
	u64 := func(i int) uint64 {
		if samples[i].Value.Kind() == metrics.KindUint64 {
			return samples[i].Value.Uint64()
		}
		return 0
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeStats{
		HeapBytes:       u64(0),
		TotalAllocBytes: u64(1),
		GCCycles:        u64(2),
		GCPauseNS:       ms.PauseTotalNs,
		Goroutines:      int(u64(3)),
	}
}

// WriteProm renders the runtime gauges in the Prometheus text exposition
// format under the given metric-name prefix (e.g. "lrserved" yields
// lrserved_runtime_heap_bytes). The rendering is append-only: callers tack
// it onto an existing exposition without disturbing earlier series.
func (r RuntimeStats) WriteProm(w io.Writer, prefix string) {
	counters := []struct {
		name string
		val  uint64
	}{
		{prefix + "_runtime_total_alloc_bytes", r.TotalAllocBytes},
		{prefix + "_runtime_gc_cycles_total", r.GCCycles},
		{prefix + "_runtime_gc_pause_ns_total", r.GCPauseNS},
	}
	for _, c := range counters {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", c.name, c.name, c.val)
	}
	gauges := []struct {
		name string
		val  uint64
	}{
		{prefix + "_runtime_heap_bytes", r.HeapBytes},
		{prefix + "_runtime_goroutines", uint64(r.Goroutines)},
	}
	for _, g := range gauges {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", g.name, g.name, g.val)
	}
}

// Sampler periodically captures Snapshots into a JSONL stream. It is driven
// by the caller (internal/scale wires it into its Progress slices); obs
// imposes no timer of its own. Not safe for concurrent use.
type Sampler struct {
	w     *bufio.Writer
	err   error
	start time.Time

	lastWall   time.Duration
	lastEvents uint64
	sampled    int
}

// NewSampler returns a sampler writing JSONL snapshots to w.
//
//lrlint:effects(wallclock) captures the wall-time origin snapshots are stamped against; sampling is reporting-only
func NewSampler(w io.Writer) *Sampler {
	return &Sampler{w: bufio.NewWriter(w), start: time.Now()}
}

// Sample captures one snapshot from the given engine gauges plus the process
// runtime, appends it to the stream, and returns it. Write errors are
// latched and surfaced by Flush.
//
//lrlint:effects(wallclock) the sampler boundary: wall time stamps snapshots and derives events/sec; measurements never feed back into simulation
func (s *Sampler) Sample(g Gauges) Snapshot {
	if s == nil {
		return Snapshot{}
	}
	wall := time.Since(s.start)
	snap := Snapshot{
		SchemaV:   SnapshotSchema,
		WallMS:    wall.Milliseconds(),
		SimNS:     g.SimNS,
		Events:    g.Events,
		Pending:   g.Pending,
		Completed: g.Completed,
		Runtime:   ReadRuntime(),
	}
	if s.sampled > 0 {
		if dt := (wall - s.lastWall).Seconds(); dt > 0 {
			snap.EventsPerSec = float64(g.Events-s.lastEvents) / dt
		}
	}
	s.lastWall = wall
	s.lastEvents = g.Events
	s.sampled++
	if s.err == nil {
		line, err := json.Marshal(snap)
		if err == nil {
			line = append(line, '\n')
			_, err = s.w.Write(line)
		}
		if err != nil {
			s.err = err
		}
	}
	return snap
}

// Samples returns how many snapshots were captured.
func (s *Sampler) Samples() int {
	if s == nil {
		return 0
	}
	return s.sampled
}

// Flush drains the buffered stream, reporting the first latched write error.
func (s *Sampler) Flush() error {
	if s == nil {
		return nil
	}
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// ReadSnapshots strictly parses a snapshot JSONL stream: unknown fields and
// unknown schema versions are errors, blank lines are skipped.
func ReadSnapshots(r io.Reader) ([]Snapshot, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []Snapshot
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		var snap Snapshot
		if err := dec.Decode(&snap); err != nil {
			return nil, fmt.Errorf("obs: snapshot line %d: %w", line, err)
		}
		if snap.SchemaV != SnapshotSchema {
			return nil, fmt.Errorf("obs: snapshot line %d: schema v%d unsupported (want v%d)", line, snap.SchemaV, SnapshotSchema)
		}
		out = append(out, snap)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: snapshots: %w", err)
	}
	return out, nil
}

// WriteSnapshotText renders a snapshot series as an aligned human-readable
// table (the lrobs snapshots subcommand).
func WriteSnapshotText(w io.Writer, snaps []Snapshot) error {
	if _, err := fmt.Fprintf(w, "%10s %12s %12s %12s %10s %10s %12s %6s %6s\n",
		"wall_ms", "sim_s", "events", "events/s", "pending", "completed", "heap_mb", "gc", "gor"); err != nil {
		return err
	}
	for _, s := range snaps {
		if _, err := fmt.Fprintf(w, "%10d %12.1f %12d %12.0f %10d %10d %12.2f %6d %6d\n",
			s.WallMS, float64(s.SimNS)/1e9, s.Events, s.EventsPerSec, s.Pending, s.Completed,
			float64(s.Runtime.HeapBytes)/(1024*1024), s.Runtime.GCCycles, s.Runtime.Goroutines); err != nil {
			return err
		}
	}
	return nil
}
