package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilTimersAreSafe(t *testing.T) {
	var tm *Timers
	if tm.Enabled() {
		t.Fatal("nil timers report enabled")
	}
	tm.Start(PhaseDispatch)
	tm.End(PhaseDispatch)
	if got := tm.Calls(PhaseDispatch); got != 0 {
		t.Fatalf("nil Calls = %d, want 0", got)
	}
	if got := tm.NS(PhaseDispatch); got != 0 {
		t.Fatalf("nil NS = %d, want 0", got)
	}
	if got := tm.Regions(); got != 0 {
		t.Fatalf("nil Regions = %d, want 0", got)
	}
	a := tm.Table(1000)
	if a.SchemaV != AttrSchema || len(a.Phases) != 0 {
		t.Fatalf("nil Table = %+v", a)
	}
}

func TestTimersCountsAndOrder(t *testing.T) {
	tm := NewTimers()
	if !tm.Enabled() {
		t.Fatal("enabled timers report disabled")
	}
	tm.Start(PhaseDispatch)
	tm.Start(PhaseRadioDeliver)
	tm.Start(PhaseSigVerify)
	tm.End(PhaseSigVerify)
	tm.End(PhaseRadioDeliver)
	tm.End(PhaseDispatch)
	tm.Start(PhaseQueuePop)
	tm.End(PhaseQueuePop)

	if got := tm.Calls(PhaseDispatch); got != 1 {
		t.Fatalf("dispatch calls = %d, want 1", got)
	}
	if got := tm.Regions(); got != 4 {
		t.Fatalf("regions = %d, want 4", got)
	}

	a := tm.Table(0)
	wantOrder := []string{"sim.queue.pop", "sim.dispatch", "radio.deliver", "crypt.sig-verify"}
	if len(a.Phases) != len(wantOrder) {
		t.Fatalf("rows = %d, want %d: %+v", len(a.Phases), len(wantOrder), a.Phases)
	}
	for i, row := range a.Phases {
		if row.Phase != wantOrder[i] {
			t.Fatalf("row %d phase = %q, want %q", i, row.Phase, wantOrder[i])
		}
	}
}

// Exclusive accounting: the sum of all phase times never exceeds the elapsed
// span covered by the outermost regions, and nested phases do not double
// count into their parents.
func TestTimersExclusiveAccounting(t *testing.T) {
	tm := NewTimers()
	tm.Start(PhaseDispatch)
	tm.Start(PhaseRadioDeliver)
	spin()
	tm.Start(PhaseHashVerify)
	spin()
	tm.End(PhaseHashVerify)
	tm.End(PhaseRadioDeliver)
	tm.End(PhaseDispatch)

	var sum int64
	for _, p := range Phases() {
		sum += tm.NS(p)
	}
	outer := tm.NS(PhaseDispatch) + tm.NS(PhaseRadioDeliver) + tm.NS(PhaseHashVerify)
	if sum != outer {
		t.Fatalf("phase sum %d != accounted %d", sum, outer)
	}
	if tm.NS(PhaseHashVerify) <= 0 || tm.NS(PhaseRadioDeliver) <= 0 {
		t.Fatalf("nested phases not attributed: hash=%d radio=%d", tm.NS(PhaseHashVerify), tm.NS(PhaseRadioDeliver))
	}
}

// spin burns a little CPU so regions have measurable width even on coarse
// clocks.
func spin() {
	x := 1
	for i := 0; i < 200000; i++ {
		x = x*31 + i
	}
	if x == 42 {
		panic("unreachable")
	}
}

func TestTimersDepthOverflow(t *testing.T) {
	tm := NewTimers()
	const over = 5
	for i := 0; i < maxDepth+over; i++ {
		tm.Start(PhaseDispatch)
	}
	for i := 0; i < maxDepth+over; i++ {
		tm.End(PhaseDispatch)
	}
	if got := tm.Calls(PhaseDispatch); got != maxDepth+over {
		t.Fatalf("calls = %d, want %d", got, maxDepth+over)
	}
	if tm.depth != 0 {
		t.Fatalf("depth = %d after balanced ends, want 0", tm.depth)
	}
	// Unbalanced End after drain is ignored.
	tm.End(PhaseDispatch)
	if tm.depth != 0 {
		t.Fatalf("depth = %d after extra end, want 0", tm.depth)
	}
}

func TestLeafSampling(t *testing.T) {
	tm := NewTimers()
	const calls = leafStride * 20
	for i := 0; i < calls; i++ {
		tm.StartLeaf(PhaseQueuePush)
		spin()
		tm.EndLeaf(PhaseQueuePush)
	}
	if got := tm.Calls(PhaseQueuePush); got != calls {
		t.Fatalf("calls = %d, want %d (every call counted, sampled or not)", got, calls)
	}
	// The scaled estimate should land near the true total: every call does
	// the same spin, so stride scaling is exact up to clock noise.
	est := tm.NS(PhaseQueuePush)
	if est <= 0 {
		t.Fatal("no time attributed to sampled leaf")
	}
	perCall := float64(est) / calls
	// One spin takes a measurable but bounded time; sanity-check the scale
	// rather than the exact value (shared-runner clocks are coarse).
	if perCall < 100 || perCall > 1e9 {
		t.Fatalf("estimated per-call ns = %v, implausible", perCall)
	}
}

func TestLeafSamplingCompensatesParent(t *testing.T) {
	tm := NewTimers()
	tm.Start(PhaseDispatch)
	for i := 0; i < leafStride; i++ {
		tm.StartLeaf(PhaseHashVerify)
		spin()
		tm.EndLeaf(PhaseHashVerify)
	}
	tm.End(PhaseDispatch)
	leaf := tm.NS(PhaseHashVerify)
	parent := tm.NS(PhaseDispatch)
	total := leaf + parent
	// The parent's interval spanned all leafStride spins; the leaf estimate
	// was deducted from it, so the combined total should be close to the
	// true elapsed span (within sampling error), not double it.
	if leaf <= 0 {
		t.Fatal("leaf got no time")
	}
	if float64(parent) > 0.75*float64(total) {
		t.Fatalf("parent kept %dns of %dns total: leaf estimate not deducted", parent, total)
	}
}

func TestSampledRegionCountsAndScale(t *testing.T) {
	tm := NewTimers()
	const calls = sampleStride * 20
	tm.Start(PhaseDispatch)
	for i := 0; i < calls; i++ {
		tm.StartSampled(PhaseRadioDeliver)
		spin()
		tm.EndSampled(PhaseRadioDeliver)
	}
	tm.End(PhaseDispatch)
	if got := tm.Calls(PhaseRadioDeliver); got != calls {
		t.Fatalf("calls = %d, want %d (every call counted, sampled or not)", got, calls)
	}
	if tm.depth != 0 {
		t.Fatalf("depth = %d after balanced region, want 0", tm.depth)
	}
	est := tm.NS(PhaseRadioDeliver)
	if est <= 0 {
		t.Fatal("no time attributed to sampled region")
	}
	// Every call does the same spin, so the scaled estimate should carry
	// most of the loop's span and the parent should keep little of it.
	parent := tm.NS(PhaseDispatch)
	if float64(parent) > 0.75*float64(est+parent) {
		t.Fatalf("parent kept %dns of %dns total: sampled estimate not deducted", parent, est+parent)
	}
}

// Phases nested inside a sampled region are timed exactly whether or not the
// enclosing call was sampled, and the sampled region's own estimate excludes
// them (exclusive accounting survives sampling).
func TestSampledRegionNesting(t *testing.T) {
	tm := NewTimers()
	tm.Start(PhaseDispatch)
	const calls = sampleStride * 4
	for i := 0; i < calls; i++ {
		tm.StartSampled(PhaseRadioDeliver)
		tm.Start(PhaseSigVerify)
		spin()
		tm.End(PhaseSigVerify)
		tm.EndSampled(PhaseRadioDeliver)
	}
	tm.End(PhaseDispatch)
	if got := tm.Calls(PhaseSigVerify); got != calls {
		t.Fatalf("nested calls = %d, want %d", got, calls)
	}
	sig := tm.NS(PhaseSigVerify)
	if sig <= 0 {
		t.Fatal("nested exact phase got no time inside sampled region")
	}
	// The spin runs inside sig-verify, so the sampled deliver estimate must
	// stay well below the nested phase's exact total.
	if del := tm.NS(PhaseRadioDeliver); del > sig {
		t.Fatalf("sampled region %dns exceeds nested exact phase %dns: nested time double-counted into the scaled estimate", del, sig)
	}
}

func TestSampledRegionOverflow(t *testing.T) {
	tm := NewTimers()
	for i := 0; i < maxDepth+3; i++ {
		tm.StartSampled(PhaseTrickle)
	}
	for i := 0; i < maxDepth+3; i++ {
		tm.EndSampled(PhaseTrickle)
	}
	if got := tm.Calls(PhaseTrickle); got != maxDepth+3 {
		t.Fatalf("calls = %d, want %d", got, maxDepth+3)
	}
	if tm.depth != 0 {
		t.Fatalf("depth = %d after balanced ends, want 0", tm.depth)
	}
	tm.EndSampled(PhaseTrickle)
	if tm.depth != 0 {
		t.Fatalf("depth = %d after extra end, want 0", tm.depth)
	}
}

func TestNilSampledSafe(t *testing.T) {
	var tm *Timers
	tm.StartSampled(PhaseRadioDeliver)
	tm.EndSampled(PhaseRadioDeliver)
	if tm.Regions() != 0 {
		t.Fatal("nil sampled region recorded")
	}
}

func TestNilLeafSafe(t *testing.T) {
	var tm *Timers
	tm.StartLeaf(PhaseQueuePop)
	tm.EndLeaf(PhaseQueuePop)
	if tm.Regions() != 0 {
		t.Fatal("nil leaf recorded")
	}
}

func TestAttributionRoundTrip(t *testing.T) {
	tm := NewTimers()
	tm.Start(PhaseRSDecode)
	spin()
	tm.End(PhaseRSDecode)
	a := tm.Table(tm.NS(PhaseRSDecode) * 2)
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeAttribution(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.CoveredNS != a.CoveredNS || len(back.Phases) != 1 || back.Phases[0].Phase != "erasure.rs-decode" {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, a)
	}
	if back.CoveredFrac < 0.49 || back.CoveredFrac > 0.51 {
		t.Fatalf("covered frac = %v, want ~0.5", back.CoveredFrac)
	}
}

func TestDecodeAttributionStrict(t *testing.T) {
	if _, err := DecodeAttribution([]byte(`{"v":1,"wall_ns":1,"covered_ns":0,"covered_frac":0,"phases":[],"bogus":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := DecodeAttribution([]byte(`{"v":99,"wall_ns":1,"covered_ns":0,"covered_frac":0,"phases":[]}`)); err == nil {
		t.Fatal("unknown schema accepted")
	}
}

func TestWriteText(t *testing.T) {
	tm := NewTimers()
	tm.Start(PhaseSigVerify)
	spin()
	tm.End(PhaseSigVerify)
	var buf bytes.Buffer
	if err := tm.Table(tm.NS(PhaseSigVerify)).WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"phase", "crypt.sig-verify", "total", "wall"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestPhaseStringStable(t *testing.T) {
	// The wire vocabulary is part of the artifact schema; renames break
	// downstream tooling.
	want := map[Phase]string{
		PhaseQueuePop:     "sim.queue.pop",
		PhaseQueuePush:    "sim.queue.push",
		PhaseDispatch:     "sim.dispatch",
		PhaseRadioDeliver: "radio.deliver",
		PhaseSigVerify:    "crypt.sig-verify",
		PhasePuzzle:       "crypt.puzzle",
		PhaseHashVerify:   "crypt.hash-verify",
		PhaseRSEncode:     "erasure.rs-encode",
		PhaseRSDecode:     "erasure.rs-decode",
		PhaseTrickle:      "trickle",
	}
	for p, s := range want {
		if p.String() != s {
			t.Fatalf("%d.String() = %q, want %q", p, p.String(), s)
		}
	}
	if got := Phase(200).String(); got != "phase(200)" {
		t.Fatalf("out-of-range String = %q", got)
	}
	if got := len(Phases()); got != len(want) {
		t.Fatalf("Phases() = %d entries, want %d", got, len(want))
	}
}
