package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeEndpoints(t *testing.T) {
	board := &Board{}
	addr, shutdown, err := Serve("127.0.0.1:0", ServeOptions{
		Progress: board,
		Metrics: func(w io.Writer) {
			fmt.Fprintln(w, "# TYPE custom_series counter")
			fmt.Fprintln(w, "custom_series 42")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	// /progress 404s before the first publish, then serves the latest value.
	if code, _ := get("/progress"); code != http.StatusNotFound {
		t.Fatalf("/progress before publish = %d, want 404", code)
	}
	board.Publish(Snapshot{SchemaV: SnapshotSchema, Events: 77, Completed: 3})
	code, body := get("/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/progress body: %v\n%s", err, body)
	}
	if snap.Events != 77 || snap.Completed != 3 {
		t.Fatalf("/progress snapshot = %+v", snap)
	}

	// /metrics serves the caller text followed by the runtime gauges.
	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	ic := strings.Index(body, "custom_series 42")
	ih := strings.Index(body, "lrobs_runtime_heap_bytes")
	if ic < 0 || ih < 0 || ic > ih {
		t.Fatalf("/metrics ordering wrong:\n%s", body)
	}

	// pprof index answers.
	if code, body := get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "profile") {
		t.Fatalf("/debug/pprof/ = %d %q", code, body)
	}
}

func TestNilBoardSafe(t *testing.T) {
	var b *Board
	b.Publish(1)
	if b.Load() != nil {
		t.Fatal("nil board loaded a value")
	}
}
