// Package obs is the runtime-telemetry subsystem: wall-clock attribution for
// simulation runs, periodic runtime snapshots, a post-mortem flight recorder,
// and an opt-in live HTTP export surface.
//
// Where internal/trace answers "what did the protocol do" on the virtual
// clock, obs answers "where did the real time go": phase timers installed
// through the engine, radio, crypto and codec layers roll a run's wall time
// up into a per-subsystem attribution table, and a sampler captures
// heap/GC/throughput gauges as the run progresses.
//
// Overhead contract (mirroring internal/trace): a nil *Timers is the
// disabled instrumentation. Every recording method nil-checks its receiver
// and returns immediately, so fully instrumented hot paths pay one
// predictable branch per region boundary when obs is off. BENCH_obs.json
// gates both the disabled and the enabled cost.
//
// Determinism contract: obs reads the monotonic clock but its measurements
// never feed back into simulation decisions — same-seed runs stay
// byte-identical in metrics and transmission-trace hashes with obs on or
// off (pinned by internal/scale tests and the lrscale obsbench).
package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// AttrSchema is the attribution-table schema version, encoded as "v" in the
// JSON artifact; lrobs refuses schemas it does not know.
const AttrSchema = 1

// Phase identifies one instrumented subsystem region. The string values are
// the attribution table's wire vocabulary and must stay stable.
type Phase uint8

// Instrumented phases, in catalog (render) order. The set is deliberately
// exclusive-by-construction: regions nest (a crypto verify runs inside a
// radio delivery inside an event dispatch), and the Timers stamp-stack
// attributes each nanosecond to the innermost open region only, so phase
// times sum to at most the run's wall time.
const (
	// PhaseQueuePop: event-queue PopLE calls in the engine run loop
	// (strided leaf sampling: every call counted, one in leafStride timed).
	PhaseQueuePop Phase = iota
	// PhaseQueuePush: event-queue Push calls (strided leaf sampling).
	PhaseQueuePush
	// PhaseDispatch: the engine run loop — event-callback execution and
	// loop bookkeeping, exclusive of every nested phase below. Opened once
	// per Run slice (ambient), not once per event, so its calls column
	// counts slices while its time column is the protocol logic itself.
	PhaseDispatch
	// PhaseRadioDeliver: transmission fan-out (loss model, fault overlay,
	// batch construction) and delivery-batch walking, exclusive of the
	// receiver handlers' own nested phases (stride-sampled stack region:
	// every call counted, one in sampleStride timed).
	PhaseRadioDeliver
	// PhaseSigVerify: expensive ECDSA signature verification.
	PhaseSigVerify
	// PhasePuzzle: weak-authenticator (puzzle) checks on signature packets.
	PhasePuzzle
	// PhaseHashVerify: per-packet SHA-256 work — hash-image comparison,
	// Merkle proof verification (strided leaf sampling at the per-packet
	// sites) and Merkle tree rebuilds (exact).
	PhaseHashVerify
	// PhaseRSEncode: Reed-Solomon encoding (serving and M0 regeneration).
	PhaseRSEncode
	// PhaseRSDecode: Reed-Solomon decoding (page and M0 recovery).
	PhaseRSDecode
	// PhaseTrickle: Trickle advertisement-timer callbacks (fire and
	// interval rollover), exclusive of the broadcast work they schedule
	// (stride-sampled stack region).
	PhaseTrickle

	numPhases
)

// phaseNames is the wire vocabulary, indexed by Phase.
var phaseNames = [numPhases]string{
	PhaseQueuePop:     "sim.queue.pop",
	PhaseQueuePush:    "sim.queue.push",
	PhaseDispatch:     "sim.dispatch",
	PhaseRadioDeliver: "radio.deliver",
	PhaseSigVerify:    "crypt.sig-verify",
	PhasePuzzle:       "crypt.puzzle",
	PhaseHashVerify:   "crypt.hash-verify",
	PhaseRSEncode:     "erasure.rs-encode",
	PhaseRSDecode:     "erasure.rs-decode",
	PhaseTrickle:      "trickle",
}

// String implements fmt.Stringer.
func (p Phase) String() string {
	if p < numPhases {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// Phases lists every phase in catalog order.
func Phases() []Phase {
	out := make([]Phase, 0, int(numPhases))
	for p := Phase(0); p < numPhases; p++ {
		out = append(out, p)
	}
	return out
}

// maxDepth bounds the region stack. Real nesting is three or four deep
// (dispatch > radio.deliver > crypt); boundaries past the bound are counted
// but not timed, so a pathological nest degrades accounting, never safety.
const maxDepth = 32

// slot is one open region on the stack. acc is the phase that boundary
// intervals accrue to while this slot is on top: the slot's own phase for
// timed regions, the nearest timed ancestor (or -1) for the untimed calls of
// a stride-sampled region.
type slot struct {
	acc     int8
	phase   int8
	timed   bool
	sampled bool
	cum0    int64 // cum[phase] at open, the scaling base for sampled regions
}

// Timers is one run's phase accounting. A nil *Timers is the disabled
// instrumentation: Start and End on it are nil-safe no-ops costing one
// branch. Not safe for concurrent use; like the tracer it lives inside the
// single-threaded simulation loop.
type Timers struct {
	base     time.Time
	stamp    int64 // monotonic ns of the most recent region boundary
	depth    int
	overflow int
	stack    [maxDepth]slot

	// Strided-leaf state (see StartLeaf): the clock stamp of the sampled
	// call in flight, or leafSkip when the current call is unsampled.
	leafStamp int64
	leafSkip  bool

	cum   [numPhases]int64
	calls [numPhases]uint64
}

// leafStride is the sampling stride for leaf regions: every call is counted,
// one in leafStride is timed and its span scaled by the stride. Regions too
// cheap to time exactly (a ~100 ns queue push costs more to clock than to
// run) stay attributed at a fraction of the instrumentation cost. Power of
// two.
const leafStride = 16

// sampleStride is the sampling stride for stride-sampled stack regions
// (StartSampled): high-frequency regions that, unlike leaves, have other
// phases nesting inside them. Power of two.
const sampleStride = 8

// NewTimers returns enabled phase timers with all counters at zero.
//
//lrlint:effects(wallclock) captures the monotonic base the region stamps are measured against; measurements never feed back into simulation
func NewTimers() *Timers {
	return &Timers{base: time.Now()}
}

// Enabled reports whether regions are being recorded.
func (t *Timers) Enabled() bool { return t != nil }

// Start opens a region for phase p. While p is open, elapsed time is
// attributed to p; an enclosing region's clock is paused (exclusive
// accounting). Every Start must be paired with an End on the same phase,
// in LIFO order.
//
//lrlint:effects(wallclock) region boundaries read the monotonic clock; the measurement is reporting-only and never feeds back into simulation
func (t *Timers) Start(p Phase) {
	if t == nil {
		return
	}
	t.calls[p]++
	if t.depth == maxDepth {
		t.overflow++
		return
	}
	now := int64(time.Since(t.base))
	if t.depth > 0 {
		if a := t.stack[t.depth-1].acc; a >= 0 {
			t.cum[a] += now - t.stamp
		}
	}
	t.stack[t.depth] = slot{acc: int8(p), phase: int8(p), timed: true}
	t.depth++
	t.stamp = now
}

// End closes the innermost open region, attributing the time since the last
// boundary to it. The phase argument documents the call site; an unbalanced
// End (no open region) is ignored.
//
//lrlint:effects(wallclock) region boundaries read the monotonic clock; the measurement is reporting-only and never feeds back into simulation
func (t *Timers) End(Phase) {
	if t == nil {
		return
	}
	if t.overflow > 0 {
		t.overflow--
		return
	}
	if t.depth == 0 {
		return
	}
	now := int64(time.Since(t.base))
	t.depth--
	if a := t.stack[t.depth].acc; a >= 0 {
		t.cum[a] += now - t.stamp
	}
	t.stamp = now
}

// StartSampled opens a stride-sampled stack region: every call increments the
// phase's call count, but only one call in sampleStride reads the clock and
// opens a real (timed) region; EndSampled scales the sampled call's exclusive
// time by the stride. Unlike a leaf, other phases may nest inside — during an
// unsampled call their boundaries accrue to the nearest timed ancestor, whose
// inflated share is repaid when a sampled call's scaled estimate is deducted
// from it. A sampled region must not nest inside another sampled region.
//
//lrlint:effects(wallclock) sampled region boundary reads the monotonic clock; reporting-only, never simulation input
func (t *Timers) StartSampled(p Phase) {
	if t == nil {
		return
	}
	t.calls[p]++
	if t.depth == maxDepth {
		t.overflow++
		return
	}
	if t.calls[p]&(sampleStride-1) != 1 {
		// Unsampled: push an untimed slot with no clock read. Boundaries of
		// phases nested inside accrue past it to the nearest timed ancestor.
		acc := int8(-1)
		if t.depth > 0 {
			acc = t.stack[t.depth-1].acc
		}
		t.stack[t.depth] = slot{acc: acc, phase: int8(p)}
		t.depth++
		return
	}
	now := int64(time.Since(t.base))
	if t.depth > 0 {
		if a := t.stack[t.depth-1].acc; a >= 0 {
			t.cum[a] += now - t.stamp
		}
	}
	t.stack[t.depth] = slot{acc: int8(p), phase: int8(p), timed: true, sampled: true, cum0: t.cum[p]}
	t.depth++
	t.stamp = now
}

// EndSampled closes a stride-sampled region opened by StartSampled on the
// same phase, scaling the sampled call's exclusive time by sampleStride and
// deducting the extrapolated remainder from the enclosing region — the same
// bargain as EndLeaf: individual parent intervals wobble, per-run totals
// converge.
//
//lrlint:effects(wallclock) sampled region boundary reads the monotonic clock; reporting-only, never simulation input
func (t *Timers) EndSampled(p Phase) {
	if t == nil {
		return
	}
	if t.overflow > 0 {
		t.overflow--
		return
	}
	if t.depth == 0 {
		return
	}
	t.depth--
	s := t.stack[t.depth]
	if !s.timed {
		return // unsampled call: no clock was read at either boundary
	}
	now := int64(time.Since(t.base))
	t.cum[p] += now - t.stamp
	t.stamp = now
	// Exclusive time of this one call (nested phases already deducted via
	// the stamp), scaled to estimate the stride's worth of calls.
	if excl := t.cum[p] - s.cum0; excl > 0 {
		extra := excl * (sampleStride - 1)
		t.cum[p] += extra
		if t.depth > 0 {
			t.stamp += extra
		}
	}
}

// StartLeaf opens a sampled leaf region: every call increments the phase's
// call count, but only one call in leafStride reads the clock; EndLeaf
// scales the sampled span by the stride. A leaf region must be flat — no
// Start/End/StartLeaf may run between StartLeaf and its EndLeaf — which is
// what lets the pair share one stamp field instead of the stack.
//
// Sampling keeps attribution honest in aggregate: EndLeaf credits the scaled
// estimate to the leaf phase and advances the enclosing region's stamp by
// the same amount, so the estimate is deducted from the parent rather than
// counted twice. Individual parent intervals can over- or under-shoot; the
// per-run totals converge.
//
//lrlint:effects(wallclock) sampled region boundary reads the monotonic clock; reporting-only, never simulation input
func (t *Timers) StartLeaf(p Phase) {
	if t == nil {
		return
	}
	t.calls[p]++
	if t.calls[p]&(leafStride-1) != 1 {
		t.leafSkip = true
		return
	}
	t.leafSkip = false
	t.leafStamp = int64(time.Since(t.base))
}

// EndLeaf closes a sampled leaf region opened by StartLeaf on the same
// phase.
//
//lrlint:effects(wallclock) sampled region boundary reads the monotonic clock; reporting-only, never simulation input
func (t *Timers) EndLeaf(p Phase) {
	if t == nil || t.leafSkip {
		return
	}
	t.leafSkip = true
	span := int64(time.Since(t.base)) - t.leafStamp
	est := span * leafStride
	t.cum[p] += est
	if t.depth > 0 {
		// Deduct the estimate from the enclosing region by moving its last
		// boundary forward. The stamp may transiently pass the clock; the
		// parent's next interval simply shrinks by the overshoot.
		t.stamp += est
	}
}

// Calls returns how many regions were opened for the phase.
func (t *Timers) Calls(p Phase) uint64 {
	if t == nil || p >= numPhases {
		return 0
	}
	return t.calls[p]
}

// NS returns the cumulative exclusive nanoseconds attributed to the phase.
func (t *Timers) NS(p Phase) int64 {
	if t == nil || p >= numPhases {
		return 0
	}
	return t.cum[p]
}

// Regions returns the total number of regions opened across all phases —
// the per-run boundary count the disabled-overhead gate scales by.
func (t *Timers) Regions() uint64 {
	if t == nil {
		return 0
	}
	var n uint64
	for p := Phase(0); p < numPhases; p++ {
		n += t.calls[p]
	}
	return n
}

// PhaseStat is one attribution-table row.
type PhaseStat struct {
	// Phase is the wire name (Phase.String).
	Phase string `json:"phase"`
	// NS is the cumulative exclusive time attributed to the phase.
	NS int64 `json:"ns"`
	// Calls is the number of regions opened.
	Calls uint64 `json:"calls"`
	// NSPerCall is NS/Calls.
	NSPerCall float64 `json:"ns_per_call"`
	// Frac is NS as a fraction of the run's wall time.
	Frac float64 `json:"frac"`
}

// Attribution is a per-run time-attribution table: subsystem phase rows plus
// the covered fraction of wall time. Phase accounting is exclusive, so
// CoveredFrac sits near (and never far above) 1 on fully instrumented runs;
// leaf-sampling estimation error can push it a percent or two past 1.
type Attribution struct {
	SchemaV int `json:"v"`
	// WallNS is the measured run wall time the fractions are relative to.
	WallNS int64 `json:"wall_ns"`
	// CoveredNS sums every phase's exclusive time.
	CoveredNS int64 `json:"covered_ns"`
	// CoveredFrac is CoveredNS/WallNS: how much of the run's wall time the
	// instrumented subsystems account for.
	CoveredFrac float64 `json:"covered_frac"`
	// Phases holds one row per phase with at least one call, catalog order.
	Phases []PhaseStat `json:"phases"`
}

// Table rolls the timers up into an attribution table against the given run
// wall time (nanoseconds). Phases that never opened a region are omitted.
func (t *Timers) Table(wallNS int64) Attribution {
	a := Attribution{SchemaV: AttrSchema, WallNS: wallNS}
	if t == nil {
		return a
	}
	for p := Phase(0); p < numPhases; p++ {
		if t.calls[p] == 0 {
			continue
		}
		row := PhaseStat{
			Phase:     p.String(),
			NS:        t.cum[p],
			Calls:     t.calls[p],
			NSPerCall: float64(t.cum[p]) / float64(t.calls[p]),
		}
		if wallNS > 0 {
			row.Frac = float64(t.cum[p]) / float64(wallNS)
		}
		a.CoveredNS += t.cum[p]
		a.Phases = append(a.Phases, row)
	}
	if wallNS > 0 {
		a.CoveredFrac = float64(a.CoveredNS) / float64(wallNS)
	}
	return a
}

// DecodeAttribution strictly parses an attribution JSON artifact, rejecting
// unknown fields and unknown schema versions.
func DecodeAttribution(data []byte) (Attribution, error) {
	var a Attribution
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&a); err != nil {
		return Attribution{}, fmt.Errorf("obs: attribution: %w", err)
	}
	if a.SchemaV != AttrSchema {
		return Attribution{}, fmt.Errorf("obs: attribution schema v%d unsupported (want v%d)", a.SchemaV, AttrSchema)
	}
	return a, nil
}

// WriteText renders the attribution table as aligned human-readable text,
// rows in catalog order followed by the covered-fraction summary line.
func (a Attribution) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-18s %12s %12s %12s %7s\n", "phase", "cum_ms", "calls", "ns/call", "frac"); err != nil {
		return err
	}
	for _, row := range a.Phases {
		if _, err := fmt.Fprintf(w, "%-18s %12.2f %12d %12.1f %6.1f%%\n",
			row.Phase, float64(row.NS)/1e6, row.Calls, row.NSPerCall, 100*row.Frac); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-18s %12.2f %38s %6.1f%% of %.2fms wall\n",
		"total", float64(a.CoveredNS)/1e6, "", 100*a.CoveredFrac, float64(a.WallNS)/1e6)
	return err
}
