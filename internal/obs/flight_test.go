package obs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestFlightRecorderRingEviction(t *testing.T) {
	f := NewFlightRecorder(3)
	for i := 0; i < 5; i++ {
		f.RecordLine([]byte(fmt.Sprintf("line-%d", i)))
	}
	if got := f.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	if got := f.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
	var buf bytes.Buffer
	if err := f.WriteDump(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Oldest-first, survivors only.
	i2 := strings.Index(out, "line-2")
	i3 := strings.Index(out, "line-3")
	i4 := strings.Index(out, "line-4")
	if i2 < 0 || i3 < 0 || i4 < 0 || !(i2 < i3 && i3 < i4) {
		t.Fatalf("survivor order wrong:\n%s", out)
	}
	if strings.Contains(out, "line-0") || strings.Contains(out, "line-1") {
		t.Fatalf("evicted lines present:\n%s", out)
	}
	if !strings.Contains(out, "(2 dropped)") {
		t.Fatalf("drop count missing:\n%s", out)
	}
}

func TestFlightRecorderStateBoardSorted(t *testing.T) {
	f := NewFlightRecorder(4)
	f.SetState("zeta", "1")
	f.SetState("alpha", "2")
	f.SetState("mid", "3")
	var buf bytes.Buffer
	if err := f.WriteDump(&buf, "why"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "=== flight dump: why ===") {
		t.Fatalf("header missing:\n%s", out)
	}
	ia := strings.Index(out, "state alpha=2")
	im := strings.Index(out, "state mid=3")
	iz := strings.Index(out, "state zeta=1")
	if ia < 0 || im < 0 || iz < 0 || !(ia < im && im < iz) {
		t.Fatalf("state board not sorted:\n%s", out)
	}
}

func TestFlightRecorderDumpToFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "job.flight.txt")
	f := NewFlightRecorder(8)
	f.SetOutput(path)
	f.SetState("job", "7")
	f.RecordLine([]byte("evt\n"))
	if err := f.Dump("panic: boom"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{"panic: boom", "state job=7", "evt"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestFlightRecorderNoOutputIsNoop(t *testing.T) {
	f := NewFlightRecorder(2)
	f.RecordLine([]byte("x"))
	if err := f.Dump("reason"); err != nil {
		t.Fatalf("pathless Dump = %v", err)
	}
}

func TestNilFlightRecorderSafe(t *testing.T) {
	var f *FlightRecorder
	f.RecordLine([]byte("x"))
	f.SetState("k", "v")
	f.SetOutput("/nowhere")
	if f.Len() != 0 || f.Dropped() != 0 {
		t.Fatal("nil recorder reports contents")
	}
	if err := f.Dump("r"); err != nil {
		t.Fatalf("nil Dump = %v", err)
	}
	if err := f.WriteDump(&bytes.Buffer{}, "r"); err != nil {
		t.Fatalf("nil WriteDump = %v", err)
	}
}

// Concurrent writers during a dump must not race (run under -race in CI):
// the harness dumps a timed-out job's recorder while the abandoned job
// goroutine may still be appending.
func TestFlightRecorderConcurrentDump(t *testing.T) {
	f := NewFlightRecorder(16)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			f.RecordLine([]byte(fmt.Sprintf("concurrent-%d", i)))
			f.SetState("i", fmt.Sprint(i))
			i++
		}
	}()
	for n := 0; n < 50; n++ {
		var buf bytes.Buffer
		if err := f.WriteDump(&buf, "concurrent"); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
