package rs

import (
	"math/rand"
	"testing"
)

func benchCode(b *testing.B, k, n, size int) (*Code, [][]byte) {
	b.Helper()
	c, err := New(k, n)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	return c, randBlocks(rng, k, size)
}

func BenchmarkEncode32_48(b *testing.B) {
	c, data := benchCode(b, 32, 48, 72)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeWorstCase32_48(b *testing.B) {
	// Worst case: no systematic shard survives; full matrix inversion.
	c, data := benchCode(b, 32, 48, 72)
	enc, err := c.Encode(data)
	if err != nil {
		b.Fatal(err)
	}
	shards := make([][]byte, 48)
	for i := 32; i < 48; i++ {
		shards[i] = enc[i]
	}
	for i := 0; i < 16; i++ {
		shards[i] = enc[i]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeDecodePage measures the full per-page hot path of the
// dissemination protocol: encode k data blocks into n shards and recover
// them from a worst-case loss pattern, all through the Into variants with
// recycled buffers, the way the simulator drives the codec per transmission.
func BenchmarkEncodeDecodePage(b *testing.B) {
	const k, n, size = 32, 48, 72
	c, data := benchCode(b, k, n, size)
	enc := make([][]byte, n)
	encBuf := make([]byte, n*size)
	for i := range enc {
		enc[i] = encBuf[i*size : (i+1)*size]
	}
	dec := make([][]byte, k)
	decBuf := make([]byte, k*size)
	for i := range dec {
		dec[i] = decBuf[i*size : (i+1)*size]
	}
	rx := make([][]byte, n)
	b.SetBytes(int64(k * size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.EncodeInto(data, enc); err != nil {
			b.Fatal(err)
		}
		// Worst case: half the systematic shards lost, parity fills in.
		for j := range rx {
			rx[j] = enc[j]
		}
		for j := 0; j < k/2; j++ {
			rx[j] = nil
		}
		if err := c.DecodeInto(rx, dec); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEncodeIntoAllocFree pins the alloc-hotpath contract the lint enforces
// statically: with caller-provided buffers, encoding allocates nothing.
func TestEncodeIntoAllocFree(t *testing.T) {
	const k, n, size = 32, 48, 72
	c, err := New(k, n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	data := randBlocks(rng, k, size)
	out := make([][]byte, n)
	buf := make([]byte, n*size)
	for i := range out {
		out[i] = buf[i*size : (i+1)*size]
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := c.EncodeInto(data, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("EncodeInto allocates %.1f objects per page, want 0", allocs)
	}
}

// TestDecodeIntoAllocBudget pins both decode paths: the systematic fast path
// must be allocation-free, and the inversion path may allocate only the
// decode matrix machinery (once per loss pattern), bounded well below
// one allocation per block.
func TestDecodeIntoAllocBudget(t *testing.T) {
	const k, n, size = 32, 48, 72
	c, err := New(k, n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	enc, err := c.Encode(randBlocks(rng, k, size))
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, k)
	buf := make([]byte, k*size)
	for i := range out {
		out[i] = buf[i*size : (i+1)*size]
	}

	systematic := make([][]byte, n)
	copy(systematic, enc[:k])
	if allocs := testing.AllocsPerRun(20, func() {
		if err := c.DecodeInto(systematic, out); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("systematic DecodeInto allocates %.1f objects, want 0", allocs)
	}

	lossy := make([][]byte, n)
	copy(lossy, enc)
	for i := 0; i < k/2; i++ {
		lossy[i] = nil
	}
	// Budget: present list + SelectRows + Invert scratch. The exact count is
	// an implementation detail; the invariant is that it stays O(1) per page
	// (independent of block count and block size), far under one alloc per
	// recovered block.
	if allocs := testing.AllocsPerRun(20, func() {
		if err := c.DecodeInto(lossy, out); err != nil {
			t.Fatal(err)
		}
	}); allocs > float64(k)/2 {
		t.Errorf("inversion-path DecodeInto allocates %.1f objects per page, budget %d", allocs, k/2)
	}
}

func BenchmarkDecodeSystematicFastPath(b *testing.B) {
	c, data := benchCode(b, 32, 48, 72)
	enc, err := c.Encode(data)
	if err != nil {
		b.Fatal(err)
	}
	shards := make([][]byte, 48)
	copy(shards, enc[:32])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(shards); err != nil {
			b.Fatal(err)
		}
	}
}
