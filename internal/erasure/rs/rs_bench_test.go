package rs

import (
	"math/rand"
	"testing"
)

func benchCode(b *testing.B, k, n, size int) (*Code, [][]byte) {
	b.Helper()
	c, err := New(k, n)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	return c, randBlocks(rng, k, size)
}

func BenchmarkEncode32_48(b *testing.B) {
	c, data := benchCode(b, 32, 48, 72)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeWorstCase32_48(b *testing.B) {
	// Worst case: no systematic shard survives; full matrix inversion.
	c, data := benchCode(b, 32, 48, 72)
	enc, err := c.Encode(data)
	if err != nil {
		b.Fatal(err)
	}
	shards := make([][]byte, 48)
	for i := 32; i < 48; i++ {
		shards[i] = enc[i]
	}
	for i := 0; i < 16; i++ {
		shards[i] = enc[i]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeSystematicFastPath(b *testing.B) {
	c, data := benchCode(b, 32, 48, 72)
	enc, err := c.Encode(data)
	if err != nil {
		b.Fatal(err)
	}
	shards := make([][]byte, 48)
	copy(shards, enc[:32])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(shards); err != nil {
			b.Fatal(err)
		}
	}
}
