// Package rs implements a systematic fixed-rate Reed-Solomon erasure code
// over GF(2^8).
//
// A Code with parameters (k, n) transforms k equal-length data blocks into n
// encoded blocks such that the originals can be recovered from ANY k of the
// n encoded blocks (k' = k, the information-theoretic optimum). The code is
// systematic: the first k encoded blocks are the data blocks themselves.
//
// The generator matrix is the k x k identity stacked on an (n-k) x k Cauchy
// matrix; every square submatrix of a Cauchy matrix is invertible, which
// guarantees the any-k-of-n recovery property.
package rs

import (
	"errors"
	"fmt"

	"lrseluge/internal/erasure/gf256"
)

// Limits on code parameters imposed by the GF(2^8) construction.
const (
	MaxShards = 256
)

// Common errors.
var (
	ErrShortData     = errors.New("rs: not enough shards to reconstruct")
	ErrShardSize     = errors.New("rs: shards must be non-empty and equal length")
	ErrShardCount    = errors.New("rs: wrong number of shards")
	ErrInvalidParams = errors.New("rs: invalid code parameters")
)

// Code is a (k, n) systematic Reed-Solomon erasure code. It is safe for
// concurrent use: all state is immutable after construction.
type Code struct {
	k, n int
	// gen is the full n x k generator matrix (identity on top of Cauchy).
	gen gf256.Matrix
}

// New constructs a (k, n) code. It requires 1 <= k <= n <= 256 and
// n + k <= 256+k (i.e., n <= 256).
func New(k, n int) (*Code, error) {
	if k < 1 || n < k || n > MaxShards {
		return nil, fmt.Errorf("%w: k=%d n=%d", ErrInvalidParams, k, n)
	}
	gen := gf256.NewMatrix(n, k)
	for i := 0; i < k; i++ {
		gen.Set(i, i, 1)
	}
	if n > k {
		cauchy := gf256.Cauchy(n-k, k)
		for i := 0; i < n-k; i++ {
			copy(gen.Row(k+i), cauchy.Row(i))
		}
	}
	return &Code{k: k, n: n, gen: gen}, nil
}

// K returns the number of data blocks per codeword.
func (c *Code) K() int { return c.k }

// N returns the total number of encoded blocks per codeword.
func (c *Code) N() int { return c.n }

// KPrime returns the number of encoded blocks sufficient for recovery. For
// Reed-Solomon this equals K.
func (c *Code) KPrime() int { return c.k }

// Encode expands k equal-length data blocks into n encoded blocks. The first
// k outputs alias fresh copies of the inputs (systematic part); the remaining
// n-k are parity. The inputs are not modified.
func (c *Code) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("%w: got %d data blocks, want %d", ErrShardCount, len(data), c.k)
	}
	size, err := checkSizes(data)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, c.n)
	for i := 0; i < c.k; i++ {
		out[i] = append([]byte(nil), data[i]...)
	}
	for i := c.k; i < c.n; i++ {
		row := c.gen.Row(i)
		shard := make([]byte, size)
		for j := 0; j < c.k; j++ {
			gf256.MulSlice(row[j], data[j], shard)
		}
		out[i] = shard
	}
	return out, nil
}

// Decode recovers the k original data blocks from a length-n slice of shards
// in which missing shards are nil. It succeeds whenever at least k shards are
// present. The input is not modified.
func (c *Code) Decode(shards [][]byte) ([][]byte, error) {
	if len(shards) != c.n {
		return nil, fmt.Errorf("%w: got %d shards, want %d", ErrShardCount, len(shards), c.n)
	}
	present := make([]int, 0, c.k)
	size := -1
	for i, s := range shards {
		if s == nil {
			continue
		}
		if size < 0 {
			size = len(s)
		} else if len(s) != size {
			return nil, ErrShardSize
		}
		if len(present) < c.k {
			present = append(present, i)
		}
	}
	if len(present) < c.k {
		return nil, fmt.Errorf("%w: have %d of %d required shards", ErrShortData, len(present), c.k)
	}
	if size <= 0 {
		return nil, ErrShardSize
	}

	// Fast path: all k systematic shards survived.
	systematic := true
	for i := 0; i < c.k; i++ {
		if shards[i] == nil {
			systematic = false
			break
		}
	}
	if systematic {
		out := make([][]byte, c.k)
		for i := 0; i < c.k; i++ {
			out[i] = append([]byte(nil), shards[i]...)
		}
		return out, nil
	}

	sub := c.gen.SelectRows(present)
	inv, err := sub.Invert()
	if err != nil {
		// Unreachable for a Cauchy-based generator; guard anyway.
		return nil, fmt.Errorf("rs: decode matrix inversion failed: %w", err)
	}
	out := make([][]byte, c.k)
	for r := 0; r < c.k; r++ {
		block := make([]byte, size)
		row := inv.Row(r)
		for j, idx := range present {
			gf256.MulSlice(row[j], shards[idx], block)
		}
		out[r] = block
	}
	return out, nil
}

// EncodeInto is like Encode but writes parity into caller-provided storage to
// avoid allocation in hot simulation loops. out must have length n; the first
// k entries are overwritten with references to copies of data.
func (c *Code) EncodeInto(data [][]byte, out [][]byte) error {
	enc, err := c.Encode(data)
	if err != nil {
		return err
	}
	copy(out, enc)
	return nil
}

func checkSizes(blocks [][]byte) (int, error) {
	if len(blocks) == 0 || len(blocks[0]) == 0 {
		return 0, ErrShardSize
	}
	size := len(blocks[0])
	for _, b := range blocks[1:] {
		if len(b) != size {
			return 0, ErrShardSize
		}
	}
	return size, nil
}
