// Package rs implements a systematic fixed-rate Reed-Solomon erasure code
// over GF(2^8).
//
// A Code with parameters (k, n) transforms k equal-length data blocks into n
// encoded blocks such that the originals can be recovered from ANY k of the
// n encoded blocks (k' = k, the information-theoretic optimum). The code is
// systematic: the first k encoded blocks are the data blocks themselves.
//
// The generator matrix is the k x k identity stacked on an (n-k) x k Cauchy
// matrix; every square submatrix of a Cauchy matrix is invertible, which
// guarantees the any-k-of-n recovery property.
package rs

import (
	"errors"
	"fmt"

	"lrseluge/internal/erasure/gf256"
)

// Limits on code parameters imposed by the GF(2^8) construction.
const (
	MaxShards = 256
)

// Common errors.
var (
	ErrShortData     = errors.New("rs: not enough shards to reconstruct")
	ErrShardSize     = errors.New("rs: shards must be non-empty and equal length")
	ErrShardCount    = errors.New("rs: wrong number of shards")
	ErrInvalidParams = errors.New("rs: invalid code parameters")
)

// Code is a (k, n) systematic Reed-Solomon erasure code. It is safe for
// concurrent use: all state is immutable after construction.
type Code struct {
	k, n int
	// gen is the full n x k generator matrix (identity on top of Cauchy).
	gen gf256.Matrix
}

// New constructs a (k, n) code. It requires 1 <= k <= n <= 256 and
// n + k <= 256+k (i.e., n <= 256).
func New(k, n int) (*Code, error) {
	if k < 1 || n < k || n > MaxShards {
		return nil, fmt.Errorf("%w: k=%d n=%d", ErrInvalidParams, k, n)
	}
	gen := gf256.NewMatrix(n, k)
	for i := 0; i < k; i++ {
		gen.Set(i, i, 1)
	}
	if n > k {
		cauchy := gf256.Cauchy(n-k, k)
		for i := 0; i < n-k; i++ {
			copy(gen.Row(k+i), cauchy.Row(i))
		}
	}
	return &Code{k: k, n: n, gen: gen}, nil
}

// K returns the number of data blocks per codeword.
func (c *Code) K() int { return c.k }

// N returns the total number of encoded blocks per codeword.
func (c *Code) N() int { return c.n }

// KPrime returns the number of encoded blocks sufficient for recovery. For
// Reed-Solomon this equals K.
func (c *Code) KPrime() int { return c.k }

// Encode expands k equal-length data blocks into n encoded blocks. The first
// k outputs are fresh copies of the inputs (systematic part); the remaining
// n-k are parity. The inputs are not modified. All n shards share one backing
// array: two allocations per codeword instead of n+1.
func (c *Code) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("%w: got %d data blocks, want %d", ErrShardCount, len(data), c.k)
	}
	size, err := checkSizes(data)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, c.n)
	buf := make([]byte, c.n*size)
	for i := range out {
		out[i] = buf[i*size : (i+1)*size : (i+1)*size]
	}
	if err := c.EncodeInto(data, out); err != nil {
		return nil, err
	}
	return out, nil
}

// EncodeInto encodes into caller-provided shard storage: out must hold n
// slices, each of the data blocks' common length. It allocates nothing, for
// callers that re-encode per simulated transmission and recycle buffers.
func (c *Code) EncodeInto(data, out [][]byte) error {
	if len(data) != c.k {
		return fmt.Errorf("%w: got %d data blocks, want %d", ErrShardCount, len(data), c.k)
	}
	size, err := checkSizes(data)
	if err != nil {
		return err
	}
	if len(out) != c.n {
		return fmt.Errorf("%w: got %d output shards, want %d", ErrShardCount, len(out), c.n)
	}
	for _, o := range out {
		if len(o) != size {
			return ErrShardSize
		}
	}
	for i := 0; i < c.k; i++ {
		copy(out[i], data[i])
	}
	for i := c.k; i < c.n; i++ {
		row := c.gen.Row(i)
		shard := out[i]
		clear(shard)
		for j := 0; j < c.k; j++ {
			gf256.MulSlice(row[j], data[j], shard)
		}
	}
	return nil
}

// Decode recovers the k original data blocks from a length-n slice of shards
// in which missing shards are nil. It succeeds whenever at least k shards are
// present. The input is not modified. The k outputs share one backing array.
func (c *Code) Decode(shards [][]byte) ([][]byte, error) {
	size, err := c.scanShards(shards)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, c.k)
	buf := make([]byte, c.k*size)
	for i := range out {
		out[i] = buf[i*size : (i+1)*size : (i+1)*size]
	}
	if err := c.DecodeInto(shards, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeInto decodes into caller-provided storage: out must hold k slices of
// the shards' common length. Beyond the decode matrix on the non-systematic
// path (built once per loss pattern, not per block), it allocates nothing.
func (c *Code) DecodeInto(shards, out [][]byte) error {
	size, err := c.scanShards(shards)
	if err != nil {
		return err
	}
	if len(out) != c.k {
		return fmt.Errorf("%w: got %d output blocks, want %d", ErrShardCount, len(out), c.k)
	}
	for _, o := range out {
		if len(o) != size {
			return ErrShardSize
		}
	}

	// Fast path: all k systematic shards survived.
	systematic := true
	for i := 0; i < c.k; i++ {
		if shards[i] == nil {
			systematic = false
			break
		}
	}
	if systematic {
		for i := 0; i < c.k; i++ {
			copy(out[i], shards[i])
		}
		return nil
	}

	present := make([]int, 0, c.k)
	for i, s := range shards {
		if s != nil && len(present) < c.k {
			present = append(present, i)
		}
	}
	sub := c.gen.SelectRows(present)
	inv, err := sub.Invert()
	if err != nil {
		// Unreachable for a Cauchy-based generator; guard anyway.
		return fmt.Errorf("rs: decode matrix inversion failed: %w", err)
	}
	for r := 0; r < c.k; r++ {
		block := out[r]
		clear(block)
		row := inv.Row(r)
		for j, idx := range present {
			gf256.MulSlice(row[j], shards[idx], block)
		}
	}
	return nil
}

// scanShards validates a decode input and returns the common shard length.
func (c *Code) scanShards(shards [][]byte) (int, error) {
	if len(shards) != c.n {
		return 0, fmt.Errorf("%w: got %d shards, want %d", ErrShardCount, len(shards), c.n)
	}
	size := -1
	have := 0
	for _, s := range shards {
		if s == nil {
			continue
		}
		if size < 0 {
			size = len(s)
		} else if len(s) != size {
			return 0, ErrShardSize
		}
		have++
	}
	if have < c.k {
		return 0, fmt.Errorf("%w: have %d of %d required shards", ErrShortData, have, c.k)
	}
	if size <= 0 {
		return 0, ErrShardSize
	}
	return size, nil
}

func checkSizes(blocks [][]byte) (int, error) {
	if len(blocks) == 0 || len(blocks[0]) == 0 {
		return 0, ErrShardSize
	}
	size := len(blocks[0])
	for _, b := range blocks[1:] {
		if len(b) != size {
			return 0, ErrShardSize
		}
	}
	return size, nil
}
