package rs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBlocks(rng *rand.Rand, k, size int) [][]byte {
	out := make([][]byte, k)
	for i := range out {
		out[i] = make([]byte, size)
		rng.Read(out[i])
	}
	return out
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		k, n int
		ok   bool
	}{
		{1, 1, true},
		{32, 48, true},
		{1, 256, true},
		{0, 4, false},
		{-1, 4, false},
		{5, 4, false},
		{4, 257, false},
	}
	for _, c := range cases {
		_, err := New(c.k, c.n)
		if (err == nil) != c.ok {
			t.Errorf("New(%d, %d): err=%v, want ok=%v", c.k, c.n, err, c.ok)
		}
	}
}

func TestSystematicEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c, err := New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	data := randBlocks(rng, 4, 32)
	enc, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != 8 {
		t.Fatalf("got %d shards, want 8", len(enc))
	}
	for i := 0; i < 4; i++ {
		if !bytes.Equal(enc[i], data[i]) {
			t.Fatalf("systematic shard %d differs from data", i)
		}
	}
}

func TestEncodeDoesNotAliasInput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c, _ := New(2, 4)
	data := randBlocks(rng, 2, 8)
	enc, _ := c.Encode(data)
	enc[0][0] ^= 0xff
	if data[0][0] == enc[0][0] {
		t.Fatal("Encode aliases caller data")
	}
}

func TestDecodeAllSubsets(t *testing.T) {
	// Exhaustive any-k-of-n check for a small code: every 3-subset of 6
	// shards must recover the data.
	rng := rand.New(rand.NewSource(3))
	c, err := New(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	data := randBlocks(rng, 3, 16)
	enc, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 6; a++ {
		for b := a + 1; b < 6; b++ {
			for d := b + 1; d < 6; d++ {
				shards := make([][]byte, 6)
				shards[a] = enc[a]
				shards[b] = enc[b]
				shards[d] = enc[d]
				got, err := c.Decode(shards)
				if err != nil {
					t.Fatalf("decode {%d,%d,%d}: %v", a, b, d, err)
				}
				for i := range data {
					if !bytes.Equal(got[i], data[i]) {
						t.Fatalf("decode {%d,%d,%d}: block %d mismatch", a, b, d, i)
					}
				}
			}
		}
	}
}

func TestDecodeRandomErasures(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(20)
		n := k + r.Intn(20)
		size := 1 + r.Intn(64)
		c, err := New(k, n)
		if err != nil {
			return false
		}
		data := randBlocks(r, k, size)
		enc, err := c.Encode(data)
		if err != nil {
			return false
		}
		// Keep a random k-subset.
		perm := r.Perm(n)
		shards := make([][]byte, n)
		for _, idx := range perm[:k] {
			shards[idx] = enc[idx]
		}
		got, err := c.Decode(shards)
		if err != nil {
			return false
		}
		for i := range data {
			if !bytes.Equal(got[i], data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeTooFewShards(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c, _ := New(4, 8)
	data := randBlocks(rng, 4, 8)
	enc, _ := c.Encode(data)
	shards := make([][]byte, 8)
	shards[0] = enc[0]
	shards[5] = enc[5]
	shards[7] = enc[7]
	if _, err := c.Decode(shards); !errors.Is(err, ErrShortData) {
		t.Fatalf("want ErrShortData, got %v", err)
	}
}

func TestDecodeWrongShardCount(t *testing.T) {
	c, _ := New(2, 4)
	if _, err := c.Decode(make([][]byte, 3)); !errors.Is(err, ErrShardCount) {
		t.Fatalf("want ErrShardCount, got %v", err)
	}
	if _, err := c.Encode(make([][]byte, 3)); !errors.Is(err, ErrShardCount) {
		t.Fatalf("want ErrShardCount, got %v", err)
	}
}

func TestUnevenShardSizes(t *testing.T) {
	c, _ := New(2, 4)
	if _, err := c.Encode([][]byte{make([]byte, 4), make([]byte, 5)}); !errors.Is(err, ErrShardSize) {
		t.Fatalf("want ErrShardSize, got %v", err)
	}
}

func TestKPrimeEqualsK(t *testing.T) {
	c, _ := New(10, 30)
	if c.KPrime() != c.K() || c.K() != 10 || c.N() != 30 {
		t.Fatalf("accessors wrong: k=%d n=%d k'=%d", c.K(), c.N(), c.KPrime())
	}
}

func TestRateOneCode(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c, err := New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	data := randBlocks(rng, 4, 8)
	enc, _ := c.Encode(data)
	got, err := c.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !bytes.Equal(got[i], data[i]) {
			t.Fatal("rate-1 code roundtrip failed")
		}
	}
}

func TestDecodePrefersSystematicFastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c, _ := New(3, 5)
	data := randBlocks(rng, 3, 8)
	enc, _ := c.Encode(data)
	shards := make([][]byte, 5)
	copy(shards, enc[:3]) // all systematic shards present
	shards[4] = enc[4]
	got, err := c.Decode(shards)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !bytes.Equal(got[i], data[i]) {
			t.Fatal("fast path wrong")
		}
	}
}
