// Package gf256 implements arithmetic over the finite field GF(2^8) together
// with the small dense-matrix routines needed by Reed-Solomon erasure coding.
//
// The field is constructed with the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the same polynomial used by most
// storage-oriented Reed-Solomon implementations.
package gf256

import "fmt"

// polynomial is the primitive reduction polynomial for the field.
const polynomial = 0x11d

// tables holds the exponential and logarithm tables for the field generator
// (alpha = 2, which is primitive for 0x11d).
type fieldTables struct {
	exp [512]byte // doubled so Mul can skip a modular reduction
	log [256]byte
}

var tables = buildTables()

func buildTables() *fieldTables {
	var t fieldTables
	x := 1
	for i := 0; i < 255; i++ {
		t.exp[i] = byte(x)
		t.log[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= polynomial
		}
	}
	for i := 255; i < 512; i++ {
		t.exp[i] = t.exp[i-255]
	}
	return &t
}

// Add returns a + b in GF(2^8). Addition and subtraction coincide (XOR).
func Add(a, b byte) byte { return a ^ b }

// Sub returns a - b in GF(2^8); identical to Add.
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a * b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return tables.exp[int(tables.log[a])+int(tables.log[b])]
}

// Div returns a / b in GF(2^8). It panics if b is zero.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := int(tables.log[a]) - int(tables.log[b])
	if d < 0 {
		d += 255
	}
	return tables.exp[d]
}

// Inv returns the multiplicative inverse of a. It panics if a is zero.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return tables.exp[255-int(tables.log[a])]
}

// Exp returns alpha^e where alpha = 2 is the field generator.
func Exp(e int) byte {
	e %= 255
	if e < 0 {
		e += 255
	}
	return tables.exp[e]
}

// Log returns the discrete logarithm of a to base alpha. It panics if a is
// zero.
func Log(a byte) int {
	if a == 0 {
		panic("gf256: log of zero")
	}
	return int(tables.log[a])
}

// MulSlice computes dst[i] ^= c * src[i] for every index, the inner loop of
// matrix-vector products over block data. dst and src must be equal length.
func MulSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: MulSlice length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	logC := int(tables.log[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= tables.exp[logC+int(tables.log[s])]
		}
	}
}

// Matrix is a dense row-major matrix over GF(2^8).
type Matrix struct {
	Rows, Cols int
	Data       []byte // len Rows*Cols
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("gf256: invalid matrix shape %dx%d", rows, cols))
	}
	return Matrix{Rows: rows, Cols: cols, Data: make([]byte, rows*cols)}
}

// Identity returns the n x n identity matrix.
func Identity(n int) Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (r, c).
func (m Matrix) At(r, c int) byte { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m Matrix) Set(r, c int, v byte) { m.Data[r*m.Cols+c] = v }

// Row returns a view of row r.
func (m Matrix) Row(r int) []byte { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m Matrix) Clone() Matrix {
	out := Matrix{Rows: m.Rows, Cols: m.Cols, Data: make([]byte, len(m.Data))}
	copy(out.Data, m.Data)
	return out
}

// Mul returns the matrix product m * other.
func (m Matrix) Mul(other Matrix) Matrix {
	if m.Cols != other.Rows {
		panic("gf256: matrix dimension mismatch")
	}
	out := NewMatrix(m.Rows, other.Cols)
	for r := 0; r < m.Rows; r++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(r, k)
			if a == 0 {
				continue
			}
			MulSlice(a, other.Row(k), out.Row(r))
		}
	}
	return out
}

// SubMatrix returns a copy of rows [r0,r1) and columns [c0,c1).
func (m Matrix) SubMatrix(r0, r1, c0, c1 int) Matrix {
	out := NewMatrix(r1-r0, c1-c0)
	for r := r0; r < r1; r++ {
		copy(out.Row(r-r0), m.Row(r)[c0:c1])
	}
	return out
}

// SelectRows returns a copy of the given rows, in order.
func (m Matrix) SelectRows(rows []int) Matrix {
	out := NewMatrix(len(rows), m.Cols)
	for i, r := range rows {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// Invert returns the inverse of a square matrix via Gauss-Jordan
// elimination. It returns an error if the matrix is singular.
func (m Matrix) Invert() (Matrix, error) {
	if m.Rows != m.Cols {
		return Matrix{}, fmt.Errorf("gf256: cannot invert %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	work := m.Clone()
	out := Identity(n)
	for col := 0; col < n; col++ {
		// Find a pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if work.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return Matrix{}, fmt.Errorf("gf256: singular matrix (column %d)", col)
		}
		if pivot != col {
			swapRows(work, pivot, col)
			swapRows(out, pivot, col)
		}
		// Normalize the pivot row.
		if v := work.At(col, col); v != 1 {
			inv := Inv(v)
			scaleRow(work.Row(col), inv)
			scaleRow(out.Row(col), inv)
		}
		// Eliminate the column from every other row.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := work.At(r, col)
			if f == 0 {
				continue
			}
			addScaledRow(work.Row(r), work.Row(col), f)
			addScaledRow(out.Row(r), out.Row(col), f)
		}
	}
	return out, nil
}

func swapRows(m Matrix, a, b int) {
	ra, rb := m.Row(a), m.Row(b)
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

func scaleRow(row []byte, c byte) {
	for i := range row {
		row[i] = Mul(row[i], c)
	}
}

// addScaledRow computes dst ^= c * src.
func addScaledRow(dst, src []byte, c byte) {
	MulSlice(c, src, dst)
}

// Cauchy returns an r x c Cauchy matrix with element (i, j) equal to
// 1/(x_i + y_j) where x_i = c + i and y_j = j. Every square submatrix of a
// Cauchy matrix is invertible, which is the property Reed-Solomon decoding
// relies on. It panics if r+c > 256 (the x and y values must be distinct
// field elements).
func Cauchy(r, c int) Matrix {
	if r+c > 256 {
		panic("gf256: Cauchy matrix too large for GF(2^8)")
	}
	m := NewMatrix(r, c)
	for i := 0; i < r; i++ {
		x := byte(c + i)
		for j := 0; j < c; j++ {
			m.Set(i, j, Inv(Add(x, byte(j))))
		}
	}
	return m
}

// Vandermonde returns an r x c Vandermonde matrix with element (i, j) equal
// to alpha^(i*j); used in tests as an alternative construction.
func Vandermonde(r, c int) Matrix {
	m := NewMatrix(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, Exp(i*j))
		}
	}
	return m
}
