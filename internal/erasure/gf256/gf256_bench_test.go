package gf256

import (
	"math/rand"
	"testing"
)

func BenchmarkMulSlice(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 72)
	dst := make([]byte, 72)
	rng.Read(src)
	b.SetBytes(72)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulSlice(byte(i)|1, src, dst)
	}
}

// TestMulSliceAllocFree pins the innermost hot loop of the codec: the
// multiply-accumulate over a shard must never touch the heap.
func TestMulSliceAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 72)
	dst := make([]byte, 72)
	rng.Read(src)
	allocs := testing.AllocsPerRun(100, func() {
		MulSlice(7, src, dst)
	})
	if allocs != 0 {
		t.Errorf("MulSlice allocates %.1f objects per call, want 0", allocs)
	}
}

func BenchmarkInvert32(b *testing.B) {
	m := Cauchy(32, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Invert(); err != nil {
			b.Fatal(err)
		}
	}
}
