package gf256

import (
	"math/rand"
	"testing"
)

func BenchmarkMulSlice(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 72)
	dst := make([]byte, 72)
	rng.Read(src)
	b.SetBytes(72)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulSlice(byte(i)|1, src, dst)
	}
}

func BenchmarkInvert32(b *testing.B) {
	m := Cauchy(32, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Invert(); err != nil {
			b.Fatal(err)
		}
	}
}
