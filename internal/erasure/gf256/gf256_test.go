package gf256

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFieldAxioms(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}

	t.Run("MulCommutative", func(t *testing.T) {
		if err := quick.Check(func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("MulAssociative", func(t *testing.T) {
		if err := quick.Check(func(a, b, c byte) bool {
			return Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("Distributive", func(t *testing.T) {
		if err := quick.Check(func(a, b, c byte) bool {
			return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
		}, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("MulIdentity", func(t *testing.T) {
		if err := quick.Check(func(a byte) bool { return Mul(a, 1) == a }, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("AddSelfInverse", func(t *testing.T) {
		if err := quick.Check(func(a byte) bool { return Add(a, a) == 0 }, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("MulInverse", func(t *testing.T) {
		for a := 1; a < 256; a++ {
			if Mul(byte(a), Inv(byte(a))) != 1 {
				t.Fatalf("a * a^-1 != 1 for a=%d", a)
			}
		}
	})
	t.Run("DivMulRoundTrip", func(t *testing.T) {
		if err := quick.Check(func(a, b byte) bool {
			if b == 0 {
				return true
			}
			return Mul(Div(a, b), b) == a
		}, cfg); err != nil {
			t.Error(err)
		}
	})
}

func TestExpLog(t *testing.T) {
	for a := 1; a < 256; a++ {
		if Exp(Log(byte(a))) != byte(a) {
			t.Fatalf("Exp(Log(%d)) != %d", a, a)
		}
	}
	if Exp(0) != 1 {
		t.Fatal("alpha^0 != 1")
	}
	if Exp(255) != Exp(0) {
		t.Fatal("exponent not periodic mod 255")
	}
	if Exp(-1) != Exp(254) {
		t.Fatal("negative exponent mishandled")
	}
}

func TestZeroDivisionPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Div": func() { Div(5, 0) },
		"Inv": func() { Inv(0) },
		"Log": func() { Log(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s by zero should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMulSliceMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		c := byte(rng.Intn(256))
		src := make([]byte, 64)
		dst := make([]byte, 64)
		want := make([]byte, 64)
		rng.Read(src)
		rng.Read(dst)
		copy(want, dst)
		for i := range src {
			want[i] = Add(want[i], Mul(c, src[i]))
		}
		MulSlice(c, src, dst)
		if !bytes.Equal(dst, want) {
			t.Fatalf("MulSlice mismatch for c=%d", c)
		}
	}
}

func TestMulSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MulSlice(3, make([]byte, 4), make([]byte, 5))
}

func TestMatrixIdentityInvert(t *testing.T) {
	id := Identity(8)
	inv, err := id.Invert()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(inv.Data, id.Data) {
		t.Fatal("identity inverse is not identity")
	}
}

func TestMatrixInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(12)
		// Cauchy matrices are always invertible.
		m := Cauchy(n, n)
		inv, err := m.Invert()
		if err != nil {
			t.Fatalf("Cauchy %dx%d reported singular: %v", n, n, err)
		}
		prod := m.Mul(inv)
		if !bytes.Equal(prod.Data, Identity(n).Data) {
			t.Fatalf("M * M^-1 != I for n=%d", n)
		}
	}
}

func TestSingularMatrixDetected(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 1)
	m.Set(1, 1, 2) // duplicate row
	if _, err := m.Invert(); err == nil {
		t.Fatal("singular matrix not detected")
	}
}

func TestCauchySubmatricesInvertible(t *testing.T) {
	// The MDS property of the RS construction: every square submatrix of a
	// Cauchy matrix is invertible.
	m := Cauchy(6, 6)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		size := 1 + rng.Intn(6)
		rows := rng.Perm(6)[:size]
		cols := rng.Perm(6)[:size]
		sub := NewMatrix(size, size)
		for i, r := range rows {
			for j, c := range cols {
				sub.Set(i, j, m.At(r, c))
			}
		}
		if _, err := sub.Invert(); err != nil {
			t.Fatalf("Cauchy submatrix rows=%v cols=%v singular: %v", rows, cols, err)
		}
	}
}

func TestMatrixMulDimensions(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(3, 4)
	prod := a.Mul(b)
	if prod.Rows != 2 || prod.Cols != 4 {
		t.Fatalf("product shape %dx%d, want 2x4", prod.Rows, prod.Cols)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch should panic")
		}
	}()
	b.Mul(a) // 3x4 * 2x3 is invalid
}

func TestSelectRows(t *testing.T) {
	m := Cauchy(4, 3)
	sel := m.SelectRows([]int{2, 0})
	if sel.Rows != 2 || !bytes.Equal(sel.Row(0), m.Row(2)) || !bytes.Equal(sel.Row(1), m.Row(0)) {
		t.Fatal("SelectRows wrong")
	}
}

func TestVandermonde(t *testing.T) {
	v := Vandermonde(3, 4)
	for j := 0; j < 4; j++ {
		if v.At(0, j) != 1 {
			t.Fatal("first Vandermonde row should be all ones")
		}
	}
	for i := 0; i < 3; i++ {
		if v.At(i, 0) != 1 {
			t.Fatal("first Vandermonde column should be all ones")
		}
	}
	if v.At(2, 2) != Exp(4) {
		t.Fatal("Vandermonde element wrong")
	}
}

func TestCauchyTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized Cauchy matrix")
		}
	}()
	Cauchy(200, 100)
}
