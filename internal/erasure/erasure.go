// Package erasure defines the fixed-rate erasure-code abstraction shared by
// the base station and sensor nodes in LR-Seluge.
//
// LR-Seluge (paper §IV-B) preloads every node with the same instance of a
// k-n-k' erasure code f and a k0-n0-k0' erasure code f0, so that any node can
// re-generate exactly the same n encoded blocks from the same k inputs. The
// Codec interface captures that contract; package rs provides the concrete
// Reed-Solomon implementation with k' = k.
package erasure

import (
	"fmt"

	"lrseluge/internal/erasure/rs"
)

// Codec is a fixed-rate k-n-k' erasure code: Encode expands k equal-length
// blocks into n, and Decode recovers the k originals from any KPrime of the
// n encoded blocks. Implementations must be deterministic (same inputs, same
// outputs on every node) and safe for concurrent use.
type Codec interface {
	// K is the number of source blocks per codeword.
	K() int
	// N is the number of encoded blocks per codeword.
	N() int
	// KPrime is the number of encoded blocks guaranteed to suffice for
	// recovery (k <= KPrime <= n).
	KPrime() int
	// Encode expands k data blocks into n encoded blocks.
	Encode(data [][]byte) ([][]byte, error)
	// Decode recovers the k data blocks from a length-n shard slice with
	// nil entries for missing shards.
	Decode(shards [][]byte) ([][]byte, error)
}

// NewReedSolomon returns the standard LR-Seluge codec: a systematic
// Reed-Solomon code with k' = k.
func NewReedSolomon(k, n int) (Codec, error) {
	c, err := rs.New(k, n)
	if err != nil {
		return nil, fmt.Errorf("erasure: %w", err)
	}
	return c, nil
}

// Identity returns a degenerate k-k-k "codec" that performs no coding. It is
// used to express Deluge/Seluge (no redundancy) through the same machinery.
func Identity(k int) Codec { return identityCodec{k: k} }

type identityCodec struct{ k int }

func (c identityCodec) K() int      { return c.k }
func (c identityCodec) N() int      { return c.k }
func (c identityCodec) KPrime() int { return c.k }

func (c identityCodec) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("erasure: identity codec got %d blocks, want %d", len(data), c.k)
	}
	out := make([][]byte, c.k)
	for i, b := range data {
		out[i] = append([]byte(nil), b...)
	}
	return out, nil
}

func (c identityCodec) Decode(shards [][]byte) ([][]byte, error) {
	if len(shards) != c.k {
		return nil, fmt.Errorf("erasure: identity codec got %d shards, want %d", len(shards), c.k)
	}
	out := make([][]byte, c.k)
	for i, b := range shards {
		if b == nil {
			return nil, fmt.Errorf("erasure: identity codec missing shard %d", i)
		}
		out[i] = append([]byte(nil), b...)
	}
	return out, nil
}
