package lt

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func sourceBlocks(k, size int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, k)
	for i := range out {
		out[i] = make([]byte, size)
		rng.Read(out[i])
	}
	return out
}

func TestEncoderValidation(t *testing.T) {
	if _, err := NewEncoder(nil, DefaultParams()); err == nil {
		t.Fatal("empty block set accepted")
	}
	if _, err := NewEncoder([][]byte{{}}, DefaultParams()); err == nil {
		t.Fatal("empty blocks accepted")
	}
	if _, err := NewEncoder([][]byte{{1}, {1, 2}}, DefaultParams()); err == nil {
		t.Fatal("unequal blocks accepted")
	}
}

func TestSymbolDeterministicAcrossEncoders(t *testing.T) {
	blocks := sourceBlocks(16, 24, 1)
	a, err := NewEncoder(blocks, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEncoder(blocks, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 50; seed++ {
		sa, sb := a.Symbol(seed), b.Symbol(seed)
		if !bytes.Equal(sa.Data, sb.Data) {
			t.Fatalf("seed %d: encoders disagree", seed)
		}
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	for _, k := range []int{1, 4, 16, 64} {
		blocks := sourceBlocks(k, 32, int64(k))
		enc, err := NewEncoder(blocks, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		dec, err := NewDecoder(k, 32, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		var used int
		for seed := int64(0); !dec.Complete(); seed++ {
			if seed > int64(20*k+100) {
				t.Fatalf("k=%d: decoder needed more than %d symbols", k, seed)
			}
			sym := enc.Symbol(seed)
			if _, err := dec.Add(sym); err != nil {
				t.Fatal(err)
			}
			used++
		}
		got, err := dec.Blocks()
		if err != nil {
			t.Fatal(err)
		}
		for i := range blocks {
			if !bytes.Equal(got[i], blocks[i]) {
				t.Fatalf("k=%d: block %d mismatch", k, i)
			}
		}
	}
}

func TestDecodeBySeedOnly(t *testing.T) {
	k := 24
	blocks := sourceBlocks(k, 20, 9)
	enc, _ := NewEncoder(blocks, DefaultParams())
	dec, _ := NewDecoder(k, 20, DefaultParams())
	for seed := int64(0); !dec.Complete() && seed < 2000; seed++ {
		sym := enc.Symbol(seed)
		// Wire format: seed + payload only; the decoder regenerates the
		// neighbor set.
		if _, err := dec.AddSeed(sym.Seed, sym.Data); err != nil {
			t.Fatal(err)
		}
	}
	if !dec.Complete() {
		t.Fatalf("decode incomplete: %d/%d", dec.Decoded(), k)
	}
	got, _ := dec.Blocks()
	for i := range blocks {
		if !bytes.Equal(got[i], blocks[i]) {
			t.Fatalf("block %d mismatch", i)
		}
	}
}

func TestDecodeUnderLoss(t *testing.T) {
	k := 32
	blocks := sourceBlocks(k, 16, 11)
	enc, _ := NewEncoder(blocks, DefaultParams())
	dec, _ := NewDecoder(k, 16, DefaultParams())
	rng := rand.New(rand.NewSource(12))
	for seed := int64(0); !dec.Complete() && seed < 5000; seed++ {
		if rng.Float64() < 0.4 {
			continue // lost symbol: rateless codes just use the next one
		}
		if _, err := dec.AddSeed(seed, enc.Symbol(seed).Data); err != nil {
			t.Fatal(err)
		}
	}
	if !dec.Complete() {
		t.Fatal("decode incomplete under loss")
	}
}

func TestOverheadIsModest(t *testing.T) {
	// Robust soliton overhead should be well under 2x for moderate k.
	k := 64
	blocks := sourceBlocks(k, 8, 13)
	enc, _ := NewEncoder(blocks, DefaultParams())
	totalSymbols := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		dec, _ := NewDecoder(k, 8, DefaultParams())
		count := 0
		for seed := int64(trial * 100000); !dec.Complete(); seed++ {
			if _, err := dec.AddSeed(seed, enc.Symbol(seed).Data); err != nil {
				t.Fatal(err)
			}
			count++
			if count > 5*k {
				t.Fatalf("trial %d: runaway symbol count", trial)
			}
		}
		totalSymbols += count
	}
	avg := float64(totalSymbols) / trials
	if avg > 2*float64(k) {
		t.Fatalf("average overhead too high: %.1f symbols for k=%d", avg, k)
	}
}

func TestDuplicateSymbolsIgnored(t *testing.T) {
	k := 8
	blocks := sourceBlocks(k, 8, 14)
	enc, _ := NewEncoder(blocks, DefaultParams())
	dec, _ := NewDecoder(k, 8, DefaultParams())
	before := dec.Decoded()
	for i := 0; i < 10; i++ {
		if _, err := dec.AddSeed(42, enc.Symbol(42).Data); err != nil {
			t.Fatal(err)
		}
	}
	if dec.Decoded() > before+1 {
		// A single degree-1 symbol can decode one block; duplicates must
		// not decode more.
		t.Fatal("duplicates advanced decoding repeatedly")
	}
}

func TestDecoderRejectsWrongSize(t *testing.T) {
	dec, _ := NewDecoder(4, 8, DefaultParams())
	if _, err := dec.AddSeed(1, make([]byte, 9)); err == nil {
		t.Fatal("wrong symbol size accepted")
	}
	if _, err := dec.Blocks(); err == nil {
		t.Fatal("incomplete Blocks() accepted")
	}
}

func TestRobustSolitonCDF(t *testing.T) {
	for _, k := range []int{1, 2, 10, 100} {
		cdf := robustSolitonCDF(k, DefaultParams())
		if len(cdf) != k+1 {
			t.Fatalf("k=%d: cdf length %d", k, len(cdf))
		}
		prev := 0.0
		for d := 1; d <= k; d++ {
			if cdf[d] < prev-1e-12 {
				t.Fatalf("k=%d: cdf not monotone at %d", k, d)
			}
			prev = cdf[d]
		}
		if math.Abs(cdf[k]-1) > 1e-9 {
			t.Fatalf("k=%d: cdf does not reach 1: %f", k, cdf[k])
		}
	}
}

func TestDegreeOneMassPresent(t *testing.T) {
	// The distribution must produce degree-1 symbols or peeling never
	// starts.
	cdf := robustSolitonCDF(64, DefaultParams())
	if cdf[1] <= 0 {
		t.Fatal("no degree-1 probability mass")
	}
}
