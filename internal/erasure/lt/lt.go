// Package lt implements LT (Luby Transform) rateless codes, the family of
// erasure codes used by the loss-resilient-but-insecure dissemination
// schemes the paper positions itself against (Rateless Deluge [2],
// SYNAPSE [6]).
//
// An LT encoder produces an unbounded stream of encoded symbols; each
// symbol XORs a random subset of the k source blocks, with the subset size
// drawn from a robust soliton distribution. A receiver decodes by belief
// propagation (the "peeling" decoder) once slightly more than k symbols
// arrive.
//
// LR-Seluge deliberately does NOT use rateless codes: because the symbol
// stream is unbounded, per-packet hash chaining cannot be precomputed
// (paper §I). This package exists to quantify that trade-off: the ablation
// benches compare the fixed-rate Reed-Solomon construction against LT
// overhead, and the decoder doubles as a reference for the rateless
// baselines' behavior.
package lt

import (
	"fmt"
	"math"
	"math/rand"
)

// Symbol is one encoded symbol: the XOR of the source blocks listed in
// Neighbors, identified by the Seed that generated them. Transmitting
// (Seed, Data) suffices: the receiver regenerates Neighbors from Seed.
type Symbol struct {
	Seed      int64
	Neighbors []int
	Data      []byte
}

// Params configures the robust soliton degree distribution.
type Params struct {
	// C is the robust soliton constant (typical 0.03..0.1).
	C float64
	// Delta is the decoder failure probability bound (typical 0.05..0.5).
	Delta float64
}

// DefaultParams returns commonly used robust soliton parameters.
func DefaultParams() Params { return Params{C: 0.05, Delta: 0.5} }

// Encoder produces LT symbols for k equal-length source blocks.
type Encoder struct {
	k      int
	size   int
	blocks [][]byte
	cdf    []float64
}

// NewEncoder builds an encoder over the source blocks.
func NewEncoder(blocks [][]byte, p Params) (*Encoder, error) {
	k := len(blocks)
	if k == 0 {
		return nil, fmt.Errorf("lt: no source blocks")
	}
	size := len(blocks[0])
	if size == 0 {
		return nil, fmt.Errorf("lt: empty source blocks")
	}
	for _, b := range blocks {
		if len(b) != size {
			return nil, fmt.Errorf("lt: unequal block sizes")
		}
	}
	cp := make([][]byte, k)
	for i, b := range blocks {
		cp[i] = append([]byte(nil), b...)
	}
	return &Encoder{k: k, size: size, blocks: cp, cdf: robustSolitonCDF(k, p)}, nil
}

// K returns the number of source blocks.
func (e *Encoder) K() int { return e.k }

// BlockSize returns the symbol payload size.
func (e *Encoder) BlockSize() int { return e.size }

// Symbol deterministically generates the symbol for a seed: the same seed
// produces the same symbol on every node (the property rateless
// dissemination schemes rely on to let any node serve fresh symbols).
func (e *Encoder) Symbol(seed int64) Symbol {
	neighbors := neighborsFor(seed, e.k, e.cdf)
	data := make([]byte, e.size)
	for _, idx := range neighbors {
		for j, v := range e.blocks[idx] {
			data[j] ^= v
		}
	}
	return Symbol{Seed: seed, Neighbors: neighbors, Data: data}
}

// neighborsFor derives the symbol's neighbor set from its seed.
func neighborsFor(seed int64, k int, cdf []float64) []int {
	rng := rand.New(rand.NewSource(seed))
	degree := sampleDegree(rng, cdf)
	perm := rng.Perm(k)
	neighbors := append([]int(nil), perm[:degree]...)
	return neighbors
}

func sampleDegree(rng *rand.Rand, cdf []float64) int {
	u := rng.Float64()
	for d := 1; d < len(cdf); d++ {
		if u <= cdf[d] {
			return d
		}
	}
	return len(cdf) - 1
}

// robustSolitonCDF computes the cumulative robust soliton distribution
// rho(d)+tau(d) normalized over degrees 1..k.
func robustSolitonCDF(k int, p Params) []float64 {
	if k == 1 {
		return []float64{0, 1}
	}
	r := p.C * math.Log(float64(k)/p.Delta) * math.Sqrt(float64(k))
	if r < 1 {
		r = 1
	}
	pivot := int(math.Floor(float64(k) / r))
	if pivot < 1 {
		pivot = 1
	}
	if pivot > k {
		pivot = k
	}
	weights := make([]float64, k+1)
	total := 0.0
	for d := 1; d <= k; d++ {
		// Ideal soliton rho.
		var rho float64
		if d == 1 {
			rho = 1 / float64(k)
		} else {
			rho = 1 / (float64(d) * float64(d-1))
		}
		// Robust addition tau.
		var tau float64
		switch {
		case d < pivot:
			tau = r / (float64(d) * float64(k))
		case d == pivot:
			tau = r * math.Log(r/p.Delta) / float64(k)
		}
		if tau < 0 {
			tau = 0
		}
		weights[d] = rho + tau
		total += weights[d]
	}
	cdf := make([]float64, k+1)
	acc := 0.0
	for d := 1; d <= k; d++ {
		acc += weights[d] / total
		cdf[d] = acc
	}
	cdf[k] = 1
	return cdf
}

// Decoder runs belief-propagation ("peeling") decoding.
type Decoder struct {
	k       int
	size    int
	cdf     []float64
	decoded [][]byte
	have    int
	// pending symbols still referencing undecoded blocks.
	pending []*pendingSymbol
	seen    map[int64]bool
}

type pendingSymbol struct {
	neighbors map[int]bool
	data      []byte
}

// NewDecoder builds a decoder expecting k blocks of the given size. Params
// must match the encoder's.
func NewDecoder(k, size int, p Params) (*Decoder, error) {
	if k < 1 || size < 1 {
		return nil, fmt.Errorf("lt: invalid decoder shape k=%d size=%d", k, size)
	}
	return &Decoder{
		k:       k,
		size:    size,
		cdf:     robustSolitonCDF(k, p),
		decoded: make([][]byte, k),
		seen:    make(map[int64]bool),
	}, nil
}

// AddSeed ingests a symbol by seed + payload, regenerating its neighbor set
// locally (the wire format of rateless dissemination). Returns true when
// decoding is complete.
func (d *Decoder) AddSeed(seed int64, data []byte) (bool, error) {
	if len(data) != d.size {
		return false, fmt.Errorf("lt: symbol size %d, want %d", len(data), d.size)
	}
	if d.seen[seed] {
		return d.Complete(), nil
	}
	d.seen[seed] = true
	return d.add(neighborsFor(seed, d.k, d.cdf), data)
}

// Add ingests a symbol with an explicit neighbor list.
func (d *Decoder) Add(sym Symbol) (bool, error) {
	if len(sym.Data) != d.size {
		return false, fmt.Errorf("lt: symbol size %d, want %d", len(sym.Data), d.size)
	}
	if d.seen[sym.Seed] {
		return d.Complete(), nil
	}
	d.seen[sym.Seed] = true
	return d.add(sym.Neighbors, sym.Data)
}

func (d *Decoder) add(neighbors []int, data []byte) (bool, error) {
	ps := &pendingSymbol{neighbors: make(map[int]bool, len(neighbors)), data: append([]byte(nil), data...)}
	for _, n := range neighbors {
		if n < 0 || n >= d.k {
			return false, fmt.Errorf("lt: neighbor %d out of range", n)
		}
		if d.decoded[n] != nil {
			xorInto(ps.data, d.decoded[n])
			continue
		}
		ps.neighbors[n] = true
	}
	if len(ps.neighbors) == 0 {
		return d.Complete(), nil // pure redundancy
	}
	d.pending = append(d.pending, ps)
	d.peel()
	return d.Complete(), nil
}

// peel repeatedly releases degree-one symbols.
func (d *Decoder) peel() {
	progress := true
	for progress {
		progress = false
		for _, ps := range d.pending {
			if len(ps.neighbors) != 1 {
				continue
			}
			var idx int
			//lrlint:ignore effect-purity the map has exactly one entry here; the loop extracts its only key
			for n := range ps.neighbors {
				idx = n
			}
			if d.decoded[idx] != nil {
				ps.neighbors = map[int]bool{}
				continue
			}
			d.decoded[idx] = append([]byte(nil), ps.data...)
			d.have++
			ps.neighbors = map[int]bool{}
			progress = true
			// Substitute into every pending symbol referencing idx.
			for _, other := range d.pending {
				if other.neighbors[idx] {
					xorInto(other.data, d.decoded[idx])
					delete(other.neighbors, idx)
				}
			}
		}
		if progress {
			d.compact()
		}
	}
}

func (d *Decoder) compact() {
	kept := d.pending[:0]
	for _, ps := range d.pending {
		if len(ps.neighbors) > 0 {
			kept = append(kept, ps)
		}
	}
	d.pending = kept
}

// Complete reports whether all k blocks are recovered.
func (d *Decoder) Complete() bool { return d.have == d.k }

// Decoded returns the count of recovered blocks.
func (d *Decoder) Decoded() int { return d.have }

// Blocks returns the recovered source blocks; only valid once Complete.
func (d *Decoder) Blocks() ([][]byte, error) {
	if !d.Complete() {
		return nil, fmt.Errorf("lt: decoding incomplete (%d/%d)", d.have, d.k)
	}
	out := make([][]byte, d.k)
	for i, b := range d.decoded {
		out[i] = append([]byte(nil), b...)
	}
	return out, nil
}

func xorInto(dst, src []byte) {
	for i, v := range src {
		dst[i] ^= v
	}
}
