package erasure

import (
	"bytes"
	"testing"
)

func TestNewReedSolomonAccessors(t *testing.T) {
	c, err := NewReedSolomon(8, 12)
	if err != nil {
		t.Fatal(err)
	}
	if c.K() != 8 || c.N() != 12 || c.KPrime() != 8 {
		t.Fatalf("accessors wrong: %d %d %d", c.K(), c.N(), c.KPrime())
	}
}

func TestNewReedSolomonRejectsBadParams(t *testing.T) {
	if _, err := NewReedSolomon(10, 5); err == nil {
		t.Fatal("n < k accepted")
	}
}

func TestIdentityCodecRoundTrip(t *testing.T) {
	c := Identity(3)
	if c.K() != 3 || c.N() != 3 || c.KPrime() != 3 {
		t.Fatal("identity codec shape wrong")
	}
	data := [][]byte{{1, 2}, {3, 4}, {5, 6}}
	enc, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !bytes.Equal(got[i], data[i]) {
			t.Fatal("identity roundtrip failed")
		}
	}
}

func TestIdentityCodecMissingShard(t *testing.T) {
	c := Identity(2)
	if _, err := c.Decode([][]byte{{1}, nil}); err == nil {
		t.Fatal("missing shard accepted by identity codec")
	}
	if _, err := c.Encode([][]byte{{1}}); err == nil {
		t.Fatal("wrong block count accepted")
	}
}

func TestIdentityCodecCopies(t *testing.T) {
	c := Identity(1)
	data := [][]byte{{9}}
	enc, _ := c.Encode(data)
	enc[0][0] = 1
	if data[0][0] != 9 {
		t.Fatal("identity Encode aliases input")
	}
}
