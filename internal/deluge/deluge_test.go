package deluge

import (
	"bytes"
	"testing"

	"lrseluge/internal/dissem"
	"lrseluge/internal/image"
	"lrseluge/internal/packet"
)

func testParams() image.Params {
	return image.Params{PacketPayload: 16, K: 4, N: 4}
}

func buildObject(t *testing.T, size int) (*Object, []byte) {
	t.Helper()
	data := image.Random(size, 1)
	obj, err := NewObject(1, data, testParams())
	if err != nil {
		t.Fatal(err)
	}
	return obj, data
}

func TestObjectPageCount(t *testing.T) {
	obj, _ := buildObject(t, 200) // page = 4*16 = 64 bytes -> 4 pages
	if obj.NumPages() != 4 || obj.ImageSize() != 200 || obj.Version() != 1 {
		t.Fatalf("object wrong: pages=%d size=%d", obj.NumPages(), obj.ImageSize())
	}
}

func TestObjectRejectsHugeImage(t *testing.T) {
	if _, err := NewObject(1, image.Random(64*251, 1), testParams()); err == nil {
		t.Fatal("oversized image accepted")
	}
}

func TestPreloadIsComplete(t *testing.T) {
	obj, data := buildObject(t, 200)
	h := Preload(obj)
	if h.CompleteUnits() != 4 || h.TotalUnits() != 4 {
		t.Fatalf("preload incomplete: %d/%d", h.CompleteUnits(), h.TotalUnits())
	}
	got, err := h.ReassembledImage(len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("preloaded image mismatch")
	}
}

func transferAll(t *testing.T, src, dst *Handler, pages int) {
	t.Helper()
	for u := 0; u < pages; u++ {
		for idx := 0; idx < testParams().K; idx++ {
			pkts, err := src.Packets(u, []int{idx}, 0)
			if err != nil {
				t.Fatal(err)
			}
			res := dst.Ingest(pkts[0])
			wantLast := idx == testParams().K-1
			if wantLast && res != dissem.UnitComplete {
				t.Fatalf("unit %d idx %d: result %v, want complete", u, idx, res)
			}
			if !wantLast && res != dissem.Stored {
				t.Fatalf("unit %d idx %d: result %v, want stored", u, idx, res)
			}
		}
	}
}

func TestEndToEndTransfer(t *testing.T) {
	obj, data := buildObject(t, 200)
	src := Preload(obj)
	dst, err := NewHandler(1, testParams())
	if err != nil {
		t.Fatal(err)
	}
	dst.LearnTotal(obj.NumPages())
	transferAll(t, src, dst, obj.NumPages())
	got, err := dst.ReassembledImage(len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("transferred image mismatch")
	}
}

func TestIngestRules(t *testing.T) {
	obj, _ := buildObject(t, 200)
	src := Preload(obj)
	dst, _ := NewHandler(1, testParams())
	dst.LearnTotal(4)

	pkts, _ := src.Packets(0, []int{0}, 0)
	if res := dst.Ingest(pkts[0]); res != dissem.Stored {
		t.Fatalf("first ingest: %v", res)
	}
	if res := dst.Ingest(pkts[0]); res != dissem.Duplicate {
		t.Fatalf("duplicate ingest: %v", res)
	}
	future, _ := src.Packets(2, []int{0}, 0)
	if res := dst.Ingest(future[0]); res != dissem.Stale {
		t.Fatalf("future-page ingest: %v", res)
	}
	short := &packet.Data{Version: 1, Unit: 0, Index: 1, Payload: []byte("short")}
	if res := dst.Ingest(short); res != dissem.Rejected {
		t.Fatalf("short payload ingest: %v", res)
	}
	badIdx, _ := src.Packets(0, []int{1}, 0)
	badIdx[0].Index = 200
	if res := dst.Ingest(badIdx[0]); res != dissem.Rejected {
		t.Fatalf("bad index ingest: %v", res)
	}
}

func TestHasPacketTracking(t *testing.T) {
	obj, _ := buildObject(t, 200)
	src := Preload(obj)
	dst, _ := NewHandler(1, testParams())
	dst.LearnTotal(4)
	if dst.HasPacket(0, 0) {
		t.Fatal("fresh handler claims a packet")
	}
	pkts, _ := src.Packets(0, []int{2}, 0)
	dst.Ingest(pkts[0])
	if !dst.HasPacket(0, 2) || dst.HasPacket(0, 1) {
		t.Fatal("HasPacket wrong for current page")
	}
	if dst.HasPacket(1, 0) {
		t.Fatal("future page reported held")
	}
}

func TestLearnTotalOnlyOnce(t *testing.T) {
	h, _ := NewHandler(1, testParams())
	h.LearnTotal(4)
	h.LearnTotal(9)
	if h.TotalUnits() != 4 {
		t.Fatalf("total %d, want first-learned 4", h.TotalUnits())
	}
}

func TestNoSignatureMachinery(t *testing.T) {
	h, _ := NewHandler(1, testParams())
	if h.WantsSig() || h.PreVerifySig(nil) || h.SigPacket(0) != nil {
		t.Fatal("deluge should have no signature machinery")
	}
	if h.IngestSig(&packet.Sig{}) != dissem.Stale {
		t.Fatal("IngestSig should be stale")
	}
	if h.NeededInUnit(0) != testParams().K || h.PacketsInUnit(0) != testParams().K {
		t.Fatal("unit sizing wrong")
	}
}

func TestPacketsErrors(t *testing.T) {
	obj, _ := buildObject(t, 200)
	src := Preload(obj)
	if _, err := src.Packets(9, []int{0}, 0); err == nil {
		t.Fatal("unheld unit served")
	}
	if _, err := src.Packets(0, []int{99}, 0); err == nil {
		t.Fatal("out-of-range index served")
	}
	empty, _ := NewHandler(1, testParams())
	if _, err := empty.Packets(0, []int{0}, 0); err == nil {
		t.Fatal("empty handler served a unit")
	}
}

func TestReassembleIncompleteFails(t *testing.T) {
	h, _ := NewHandler(1, testParams())
	if _, err := h.ReassembledImage(100); err == nil {
		t.Fatal("incomplete image reassembled")
	}
}
