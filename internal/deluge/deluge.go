// Package deluge implements the Deluge code-dissemination baseline (Hui &
// Culler), the de facto protocol Seluge and LR-Seluge build on: a code image
// split into fixed-size pages of k packets each, disseminated page-by-page
// with Trickle-paced advertisements and SNACK-based ARQ (paper §II-A).
//
// Deluge has no security: packets are stored as they arrive. Units are pages
// directly (unit u = page u+1 in paper numbering).
package deluge

import (
	"fmt"

	"lrseluge/internal/dissem"
	"lrseluge/internal/image"
	"lrseluge/internal/packet"
)

// Object is the base station's prepared code image: the pages every
// transmitting node serves.
type Object struct {
	version   uint16
	params    image.Params
	imageSize int
	pages     [][]byte // each k*payload bytes
}

// NewObject partitions a code image into Deluge pages.
func NewObject(version uint16, data []byte, p image.Params) (*Object, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	pages, err := image.Partition(data, p.DelugePageBytes())
	if err != nil {
		return nil, err
	}
	if len(pages) > 250 {
		return nil, fmt.Errorf("deluge: image needs %d pages, exceeding the unit space", len(pages))
	}
	return &Object{version: version, params: p, imageSize: len(data), pages: pages}, nil
}

// Version returns the object's code version.
func (o *Object) Version() uint16 { return o.version }

// NumPages returns g, the page count.
func (o *Object) NumPages() int { return len(o.pages) }

// ImageSize returns the original image length in bytes.
func (o *Object) ImageSize() int { return o.imageSize }

// Handler is a node's Deluge object state, implementing
// dissem.ObjectHandler. The zero value is not usable; use NewHandler or
// Preload.
type Handler struct {
	version uint16
	params  image.Params
	total   int // 0 until learned from an advertisement

	pages [][]byte // completed pages, in order

	// Current (next) page assembly state.
	have  []bool
	buf   [][]byte
	count int
}

var _ dissem.ObjectHandler = (*Handler)(nil)

// NewHandler creates an empty receiver-side handler for the given version.
func NewHandler(version uint16, p image.Params) (*Handler, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	h := &Handler{version: version, params: p}
	h.resetCurrent()
	return h, nil
}

// Preload creates a handler that already possesses the whole object (the
// base station).
func Preload(o *Object) *Handler {
	h := &Handler{
		version: o.version,
		params:  o.params,
		total:   len(o.pages),
		pages:   o.pages,
	}
	h.resetCurrent()
	return h
}

func (h *Handler) resetCurrent() {
	h.have = make([]bool, h.params.K)
	h.buf = make([][]byte, h.params.K)
	h.count = 0
}

// WipeVolatile implements dissem.ObjectHandler: a power loss discards the
// in-progress page's RAM buffer; completed pages (and the page count learned
// from advertisements, kept as image metadata) survive in flash.
func (h *Handler) WipeVolatile() {
	h.resetCurrent()
}

// Version implements dissem.ObjectHandler.
func (h *Handler) Version() uint16 { return h.version }

// TotalUnits implements dissem.ObjectHandler.
func (h *Handler) TotalUnits() int { return h.total }

// CompleteUnits implements dissem.ObjectHandler.
func (h *Handler) CompleteUnits() int { return len(h.pages) }

// PacketsInUnit implements dissem.ObjectHandler: every page has k packets.
func (h *Handler) PacketsInUnit(int) int { return h.params.K }

// NeededInUnit implements dissem.ObjectHandler: ARQ needs them all.
func (h *Handler) NeededInUnit(int) int { return h.params.K }

// HasPacket implements dissem.ObjectHandler.
func (h *Handler) HasPacket(u, idx int) bool {
	switch {
	case u < len(h.pages):
		return true
	case u == len(h.pages) && idx >= 0 && idx < len(h.have):
		return h.have[idx]
	default:
		return false
	}
}

// LearnTotal implements dissem.ObjectHandler. Deluge trusts object-size
// summaries from neighbors (it has no authentication at all).
func (h *Handler) LearnTotal(total int) {
	if h.total == 0 && total > 0 {
		h.total = total
	}
}

// Ingest implements dissem.ObjectHandler. No authentication: any well-formed
// packet for the current page is stored.
func (h *Handler) Ingest(d *packet.Data) dissem.IngestResult {
	u := int(d.Unit)
	if u != len(h.pages) {
		return dissem.Stale
	}
	idx := int(d.Index)
	if idx < 0 || idx >= h.params.K || len(d.Payload) != h.params.PacketPayload {
		return dissem.Rejected
	}
	if h.have[idx] {
		return dissem.Duplicate
	}
	h.have[idx] = true
	//lrlint:ignore verify-before-use Deluge is the intentionally unauthenticated baseline (paper §II); it buffers raw payloads so experiments can measure what LR-Seluge's per-packet authentication costs
	h.buf[idx] = append([]byte(nil), d.Payload...)
	h.count++
	if h.count < h.params.K {
		return dissem.Stored
	}
	h.pages = append(h.pages, image.Join(h.buf))
	h.resetCurrent()
	return dissem.UnitComplete
}

// Authentic implements dissem.ObjectHandler: Deluge performs no
// authentication whatsoever (which is exactly the weakness Seluge fixes),
// so every well-formed packet counts as genuine for suppression purposes.
func (h *Handler) Authentic(d *packet.Data) bool {
	return int(d.Index) < h.params.K && len(d.Payload) == h.params.PacketPayload
}

// WantsSig implements dissem.ObjectHandler: Deluge has no signature.
func (h *Handler) WantsSig() bool { return false }

// PreVerifySig implements dissem.ObjectHandler.
func (h *Handler) PreVerifySig(*packet.Sig) bool { return false }

// IngestSig implements dissem.ObjectHandler.
func (h *Handler) IngestSig(*packet.Sig) dissem.IngestResult { return dissem.Stale }

// SigPacket implements dissem.ObjectHandler.
func (h *Handler) SigPacket(packet.NodeID) *packet.Sig { return nil }

// Packets implements dissem.ObjectHandler: regenerate page packets by
// slicing the stored page.
func (h *Handler) Packets(u int, indices []int, src packet.NodeID) ([]*packet.Data, error) {
	if u < 0 || u >= len(h.pages) {
		return nil, fmt.Errorf("deluge: unit %d not held (have %d)", u, len(h.pages))
	}
	page := h.pages[u]
	out := make([]*packet.Data, 0, len(indices))
	for _, idx := range indices {
		if idx < 0 || idx >= h.params.K {
			return nil, fmt.Errorf("deluge: packet index %d out of range", idx)
		}
		out = append(out, &packet.Data{
			Src:     src,
			Version: h.version,
			Unit:    packet.Unit(u),
			Index:   uint8(idx),
			Payload: page[idx*h.params.PacketPayload : (idx+1)*h.params.PacketPayload],
		})
	}
	return out, nil
}

// ReassembledImage returns the received image trimmed to size, for
// end-to-end verification in tests and experiments.
func (h *Handler) ReassembledImage(size int) ([]byte, error) {
	if h.total == 0 || len(h.pages) < h.total {
		return nil, fmt.Errorf("deluge: object incomplete (%d/%d pages)", len(h.pages), h.total)
	}
	return image.Reassemble(h.pages, size)
}

// NewPolicy returns the Deluge transmission policy (union of SNACK bit
// vectors).
func NewPolicy(p image.Params) dissem.TxPolicy {
	return dissem.NewUnionPolicy(func(int) int { return p.K })
}
