package harness

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func sampleRecords() []Record {
	return []Record{
		{
			Job: Job{Index: 0, Name: "p=0.1/run=0", Params: []Param{
				{Key: "proto", Value: "Seluge"}, {Key: "seed", Value: "1"}}},
			Metrics: []Metric{{Name: "data_pkts", Value: 120}, {Name: "latency_sec", Value: 3.25}},
		},
		{
			Job: Job{Index: 1, Name: "p=0.1/run=1", Params: []Param{
				{Key: "proto", Value: "Seluge"}, {Key: "seed", Value: "1000004"}}},
			Metrics: []Metric{{Name: "data_pkts", Value: 130}, {Name: "latency_sec", Value: 3.75}},
		},
		{
			Job: Job{Index: 2, Name: "p=0.1/run=2", Params: []Param{
				{Key: "proto", Value: "Seluge"}, {Key: "seed", Value: "2000007"}}},
			Err:      "panic: poisoned",
			Panicked: true,
		},
	}
}

// TestJSONLSinkValidAndDeterministic checks every emitted line is valid
// JSON with the expected fields, and that two writes of the same records
// are byte-identical.
func TestJSONLSinkValidAndDeterministic(t *testing.T) {
	emit := func() []byte {
		var buf bytes.Buffer
		s := NewJSONLSink(&buf)
		for _, r := range sampleRecords() {
			if err := s.Write(r); err != nil {
				t.Fatalf("Write: %v", err)
			}
		}
		if err := s.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		return buf.Bytes()
	}
	out1, out2 := emit(), emit()
	if !bytes.Equal(out1, out2) {
		t.Fatal("two identical record streams serialized differently")
	}
	lines := strings.Split(strings.TrimRight(string(out1), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 is not valid JSON: %v\n%s", err, lines[0])
	}
	if first["index"] != float64(0) || first["proto"] != "Seluge" || first["data_pkts"] != float64(120) {
		t.Errorf("line 0 fields wrong: %v", first)
	}
	if first["err"] != "" || first["panic"] != false {
		t.Errorf("line 0 failure fields wrong: %v", first)
	}
	var failed map[string]any
	if err := json.Unmarshal([]byte(lines[2]), &failed); err != nil {
		t.Fatalf("line 2 is not valid JSON: %v", err)
	}
	if failed["err"] != "panic: poisoned" || failed["panic"] != true {
		t.Errorf("failed line fields wrong: %v", failed)
	}
	if _, ok := failed["data_pkts"]; ok {
		t.Errorf("failed line carries metrics: %v", failed)
	}
}

// TestJSONLSinkNonFinite checks NaN/Inf metrics degrade to null rather than
// emitting invalid JSON.
func TestJSONLSinkNonFinite(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	err := s.Write(Record{Job: Job{Name: "x"}, Metrics: []Metric{
		{Name: "nan", Value: math.NaN()}, {Name: "inf", Value: math.Inf(-1)}}})
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("non-finite metrics produced invalid JSON: %v\n%s", err, buf.String())
	}
	if m["nan"] != nil || m["inf"] != nil {
		t.Errorf("non-finite metrics not null: %v", m)
	}
}

// TestCSVSink checks header layout, row contents and empty metric cells for
// failed records.
func TestCSVSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewCSVSink(&buf, []string{"data_pkts", "latency_sec"})
	for _, r := range sampleRecords() {
		if err := s.Write(r); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("re-reading CSV: %v", err)
	}
	wantHdr := []string{"index", "job", "proto", "seed", "data_pkts", "latency_sec", "err", "panic"}
	if got := strings.Join(rows[0], ","); got != strings.Join(wantHdr, ",") {
		t.Errorf("header = %v, want %v", rows[0], wantHdr)
	}
	if got := strings.Join(rows[1], ","); got != "0,p=0.1/run=0,Seluge,1,120,3.25,,false" {
		t.Errorf("row 1 = %q", got)
	}
	if got := strings.Join(rows[3], ","); got != "2,p=0.1/run=2,Seluge,2000007,,,panic: poisoned,true" {
		t.Errorf("failed row = %q", got)
	}
}

// TestCSVSinkParamMismatch checks rows with drifting param keys are
// rejected rather than silently misaligned.
func TestCSVSinkParamMismatch(t *testing.T) {
	s := NewCSVSink(&bytes.Buffer{}, nil)
	if err := s.Write(Record{Job: Job{Params: []Param{{Key: "a", Value: "1"}}}}); err != nil {
		t.Fatalf("first Write: %v", err)
	}
	if err := s.Write(Record{Job: Job{Params: []Param{{Key: "b", Value: "2"}}}}); err == nil {
		t.Error("param-key mismatch not rejected")
	}
}

// TestAggregatorMath cross-checks mean/std/min against hand computation and
// the historical serial formula.
func TestAggregatorMath(t *testing.T) {
	a := NewAggregator()
	for i, v := range []float64{10, 20, 60} {
		rec := Record{Job: Job{Index: i}, Metrics: []Metric{{Name: "x", Value: v}}}
		if err := a.Write(rec); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if got := a.Mean("x"); got != 30 {
		t.Errorf("Mean = %v, want 30", got)
	}
	if got := a.Min("x"); got != 10 {
		t.Errorf("Min = %v, want 10", got)
	}
	want := math.Sqrt((400 + 100 + 900) / 2.0) // sample std around mean 30
	if got := a.Std("x"); math.Abs(got-want) > 1e-12 {
		t.Errorf("Std = %v, want %v", got, want)
	}
	if a.Count() != 3 {
		t.Errorf("Count = %d", a.Count())
	}
}

// TestAggregatorFailuresAndMismatch checks failed records are collected
// (not averaged) and metric-shape drift is rejected.
func TestAggregatorFailuresAndMismatch(t *testing.T) {
	a := NewAggregator()
	if err := a.Write(Record{Job: Job{Index: 0}, Err: "boom"}); err != nil {
		t.Fatalf("failed-record Write: %v", err)
	}
	if err := a.Write(Record{Job: Job{Index: 1}, Metrics: []Metric{{Name: "x", Value: 1}}}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if a.Count() != 1 || len(a.Failures()) != 1 {
		t.Errorf("Count=%d Failures=%d, want 1/1", a.Count(), len(a.Failures()))
	}
	if err := a.Write(Record{Job: Job{Index: 2}, Metrics: []Metric{{Name: "y", Value: 1}}}); err == nil {
		t.Error("metric-name drift not rejected")
	}
	if err := a.Write(Record{Job: Job{Index: 3}}); err == nil {
		t.Error("metric-count drift not rejected")
	}
}

// TestStdSingleRun confirms the Runs==1 convention: no deviation reported.
func TestStdSingleRun(t *testing.T) {
	a := NewAggregator()
	if err := a.Write(Record{Metrics: []Metric{{Name: "x", Value: 5}}}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if got := a.Std("x"); got != 0 {
		t.Errorf("Std of one sample = %v, want 0", got)
	}
}
