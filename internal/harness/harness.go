// Package harness is the parallel experiment orchestrator: it takes a
// declarative set of jobs (typically a scenario × seed grid built by
// internal/experiment), executes them concurrently across a worker pool, and
// merges the results in job order regardless of goroutine scheduling, so a
// sweep's output is byte-identical whether it ran on 1 worker or 64.
//
// The harness is the only layer of the repository allowed to consult the
// wall clock, and only for orchestration concerns: per-run timeouts and
// progress reporting. Simulated time stays virtual inside internal/sim; a
// run's *results* never depend on real time. Every wall-clock read below
// carries an //lrlint:ignore effect-purity directive documenting this
// boundary.
//
// Failure containment: a run that panics becomes a failed Record (with the
// panic message), not a dead sweep; a run that exceeds the configured
// timeout is abandoned and recorded as failed while the remaining jobs
// proceed.
package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Param is one ordered key/value label identifying a job (protocol, loss
// rate, seed, ...). Params are serialized into every record in slice order,
// which is why they are not a map.
type Param struct {
	Key, Value string
}

// Job is one unit of work: a named point of the sweep grid. Index is the
// job's position in the sweep and the canonical merge order; Run assigns it
// from slice position, so callers need not set it.
type Job struct {
	Index  int
	Name   string
	Params []Param

	// Payload carries caller data (e.g. the experiment scenario) to the
	// RunFunc. It is never serialized by sinks.
	Payload any
}

// Metric is one named numeric result of a run. Metrics are serialized in
// slice order.
type Metric struct {
	Name  string
	Value float64
}

// Record is the outcome of one job: its metrics on success, or a non-empty
// Err (with Panicked set when the failure was a recovered panic).
type Record struct {
	Job      Job
	Metrics  []Metric
	Err      string
	Panicked bool
}

// Failed reports whether the run produced no usable metrics.
func (r Record) Failed() bool { return r.Err != "" }

// Metric returns the named metric value, or 0 if absent.
func (r Record) Metric(name string) float64 {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m.Value
		}
	}
	return 0
}

// RunFunc executes one job and returns its metrics. It is called from
// multiple goroutines concurrently and must not share mutable state across
// jobs.
type RunFunc func(Job) ([]Metric, error)

// Config tunes the pool.
type Config struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS.
	Workers int

	// Timeout is the wall-clock budget for a single run; 0 means none. A
	// timed-out run is abandoned (its goroutine is leaked until it returns;
	// the simulator has no preemption points) and recorded as failed.
	Timeout time.Duration

	// OnRecord, when non-nil, is called once per job in merge (job) order
	// with the number of records emitted so far, the total job count, and
	// the record. It runs on the merging goroutine, so implementations need
	// no locking.
	OnRecord func(done, total int, r Record)

	// Flight, when non-nil, maps a job to its flight recorder (or nil for
	// none). When the job panics or times out, the harness dumps the
	// recorder so the failure is diagnosable after the fact. The recorder
	// must tolerate concurrent writes during the dump: a timed-out job's
	// abandoned goroutine keeps running while the dump is taken.
	Flight func(Job) FlightDumper
}

// FlightDumper is the dump side of a flight recorder (satisfied by
// *obs.FlightRecorder). Dump flushes the retained record to stable storage
// with the failure reason.
type FlightDumper interface {
	Dump(reason string) error
}

// Run executes every job through fn across the worker pool and returns the
// records in job order. Each record is streamed to every sink — and to
// cfg.OnRecord — in job order as soon as all of its predecessors have
// finished, so sink output is deterministic for any worker count. Sinks are
// flushed before returning; the first sink error aborts further sink writes
// and is returned (job execution still completes so the returned records are
// whole).
//
//lrlint:effects(spawn) worker-pool goroutines; results merge back in job order so output is schedule-independent
func Run(jobs []Job, fn RunFunc, cfg Config, sinks ...Sink) ([]Record, error) {
	for i := range jobs {
		jobs[i].Index = i
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	out := make([]Record, len(jobs))
	if len(jobs) == 0 {
		return out, flushAll(sinks)
	}

	jobCh := make(chan int)
	resCh := make(chan Record, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobCh {
				resCh <- execute(jobs[idx], fn, cfg)
			}
		}()
	}
	go func() {
		for i := range jobs {
			jobCh <- i
		}
		close(jobCh)
	}()
	go func() {
		wg.Wait()
		close(resCh)
	}()

	// Ordered merge: buffer out-of-order arrivals in the result slice and
	// emit the longest ready prefix after each arrival.
	var sinkErr error
	done := make([]bool, len(jobs))
	next := 0
	for r := range resCh {
		out[r.Job.Index] = r
		done[r.Job.Index] = true
		for next < len(jobs) && done[next] {
			rec := out[next]
			next++
			if sinkErr == nil {
				sinkErr = writeAll(sinks, rec)
			}
			if cfg.OnRecord != nil {
				cfg.OnRecord(next, len(jobs), rec)
			}
		}
	}
	if err := flushAll(sinks); sinkErr == nil {
		sinkErr = err
	}
	return out, sinkErr
}

// execute runs one job with panic capture and an optional wall-clock
// timeout. The run itself happens on a dedicated goroutine so that a
// timed-out run can be abandoned without taking the worker down with it.
//
//lrlint:effects(spawn) the run goroutine lets a timed-out job be abandoned; its sole result is consumed synchronously
func execute(job Job, fn RunFunc, cfg Config) Record {
	resCh := make(chan Record, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				resCh <- Record{Job: job, Err: fmt.Sprintf("panic: %v", p), Panicked: true}
			}
		}()
		rec := Record{Job: job}
		metrics, err := fn(job)
		if err != nil {
			rec.Err = err.Error()
		} else {
			rec.Metrics = metrics
		}
		resCh <- rec
	}()
	if cfg.Timeout <= 0 {
		rec := <-resCh
		if rec.Panicked {
			dumpFlight(cfg, job, rec.Err)
		}
		return rec
	}
	//lrlint:ignore effect-purity per-run timeouts are an orchestration concern; virtual time stays inside internal/sim
	timer := time.NewTimer(cfg.Timeout)
	defer timer.Stop()
	select {
	case rec := <-resCh:
		if rec.Panicked {
			dumpFlight(cfg, job, rec.Err)
		}
		return rec
	case <-timer.C:
		rec := Record{Job: job, Err: fmt.Sprintf("timeout: run exceeded %v of wall-clock time", cfg.Timeout)}
		// The abandoned goroutine may still be appending to the recorder;
		// FlightDumper implementations must take the dump under their own
		// synchronization.
		dumpFlight(cfg, job, rec.Err)
		return rec
	}
}

// dumpFlight flushes the job's flight recorder, if any, after a panic or
// timeout. Dump failures are deliberately swallowed: the record already
// carries the primary failure and a post-mortem write error must not mask
// it or abort the sweep.
func dumpFlight(cfg Config, job Job, reason string) {
	if cfg.Flight == nil {
		return
	}
	fr := cfg.Flight(job)
	if fr == nil {
		return
	}
	_ = fr.Dump(reason)
}

func writeAll(sinks []Sink, r Record) error {
	for _, s := range sinks {
		if err := s.Write(r); err != nil {
			return err
		}
	}
	return nil
}

func flushAll(sinks []Sink) error {
	var first error
	for _, s := range sinks {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
