package harness

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// echoJobs builds n jobs whose payload is their slice position.
func echoJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			Name:    fmt.Sprintf("job-%02d", i),
			Params:  []Param{{Key: "i", Value: fmt.Sprint(i)}},
			Payload: i,
		}
	}
	return jobs
}

// TestOrderedMergeUnderConcurrency proves the central contract: records come
// back in job order even when later jobs finish long before earlier ones.
func TestOrderedMergeUnderConcurrency(t *testing.T) {
	const n = 24
	fn := func(j Job) ([]Metric, error) {
		i := j.Payload.(int)
		// Earlier jobs sleep longer so completion order inverts job order.
		time.Sleep(time.Duration((n-i)%7) * time.Millisecond)
		return []Metric{{Name: "i", Value: float64(i)}}, nil
	}
	recs, err := Run(echoJobs(n), fn, Config{Workers: 8})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(recs) != n {
		t.Fatalf("got %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.Job.Index != i {
			t.Errorf("record %d has index %d", i, r.Job.Index)
		}
		if r.Failed() {
			t.Errorf("record %d failed: %s", i, r.Err)
		}
		if got := r.Metric("i"); got != float64(i) {
			t.Errorf("record %d carries metric %v", i, got)
		}
	}
}

// TestOnRecordOrder verifies the progress callback fires once per job, in
// job order, with a correct running count.
func TestOnRecordOrder(t *testing.T) {
	const n = 10
	var seen []int
	var counts []int
	cfg := Config{
		Workers: 4,
		OnRecord: func(done, total int, r Record) {
			if total != n {
				t.Errorf("total = %d, want %d", total, n)
			}
			seen = append(seen, r.Job.Index)
			counts = append(counts, done)
		},
	}
	fn := func(j Job) ([]Metric, error) {
		time.Sleep(time.Duration(j.Payload.(int)%3) * time.Millisecond)
		return nil, nil
	}
	if _, err := Run(echoJobs(n), fn, cfg); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(seen) != n {
		t.Fatalf("callback fired %d times, want %d", len(seen), n)
	}
	for i := range seen {
		if seen[i] != i {
			t.Errorf("callback %d saw job %d", i, seen[i])
		}
		if counts[i] != i+1 {
			t.Errorf("callback %d reported done=%d, want %d", i, counts[i], i+1)
		}
	}
}

// TestPanicInjection is the failure-containment contract: one poisoned run
// yields one failed record and N-1 successes, still in order.
func TestPanicInjection(t *testing.T) {
	const n, poisoned = 9, 3
	fn := func(j Job) ([]Metric, error) {
		if j.Payload.(int) == poisoned {
			panic("poisoned run")
		}
		return []Metric{{Name: "ok", Value: 1}}, nil
	}
	recs, err := Run(echoJobs(n), fn, Config{Workers: 4})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	failures := 0
	for i, r := range recs {
		if r.Job.Index != i {
			t.Errorf("record %d has index %d", i, r.Job.Index)
		}
		if i == poisoned {
			failures++
			if !r.Panicked {
				t.Errorf("poisoned record not marked panicked: %+v", r)
			}
			if !strings.Contains(r.Err, "poisoned run") {
				t.Errorf("poisoned record err = %q", r.Err)
			}
			if len(r.Metrics) != 0 {
				t.Errorf("poisoned record carries metrics: %+v", r.Metrics)
			}
			continue
		}
		if r.Failed() {
			t.Errorf("record %d unexpectedly failed: %s", i, r.Err)
		}
	}
	if failures != 1 {
		t.Errorf("got %d failed records, want 1", failures)
	}
}

// TestRunErrorBecomesRecord verifies plain errors (not just panics) turn
// into failed records.
func TestRunErrorBecomesRecord(t *testing.T) {
	fn := func(j Job) ([]Metric, error) {
		if j.Payload.(int) == 1 {
			return nil, fmt.Errorf("deliberate failure")
		}
		return nil, nil
	}
	recs, err := Run(echoJobs(3), fn, Config{Workers: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !recs[1].Failed() || recs[1].Panicked || !strings.Contains(recs[1].Err, "deliberate failure") {
		t.Errorf("record 1 = %+v, want non-panic failure", recs[1])
	}
	if recs[0].Failed() || recs[2].Failed() {
		t.Errorf("unexpected failures: %+v %+v", recs[0], recs[2])
	}
}

// TestTimeout verifies a run exceeding the wall-clock budget is abandoned
// and recorded as failed while the rest of the sweep completes.
func TestTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	fn := func(j Job) ([]Metric, error) {
		if j.Payload.(int) == 0 {
			<-release // hangs until the test ends
		}
		return []Metric{{Name: "ok", Value: 1}}, nil
	}
	recs, err := Run(echoJobs(4), fn, Config{Workers: 2, Timeout: 25 * time.Millisecond})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !recs[0].Failed() || !strings.Contains(recs[0].Err, "timeout") {
		t.Errorf("hung record = %+v, want timeout failure", recs[0])
	}
	for i := 1; i < 4; i++ {
		if recs[i].Failed() {
			t.Errorf("record %d unexpectedly failed: %s", i, recs[i].Err)
		}
	}
}

// failingSink errors on the Nth Write call; Flush errors too if failFlush.
type failingSink struct {
	failOn    int // 1-based Write call number that errors; 0 = never
	failFlush bool
	writes    int
	flushes   int
}

func (s *failingSink) Write(Record) error {
	s.writes++
	if s.failOn != 0 && s.writes == s.failOn {
		return fmt.Errorf("sink write failure on call %d", s.writes)
	}
	return nil
}

func (s *failingSink) Flush() error {
	s.flushes++
	if s.failFlush {
		return fmt.Errorf("sink flush failure")
	}
	return nil
}

// TestSinkErrorDuringPanickedSweep exercises the compound failure path: one
// run panics AND a sink errors mid-sweep. The sweep must still return the
// complete, ordered record set (panic contained as a failed record), report
// the sink error, and stop writing to the broken sink after the first error.
func TestSinkErrorDuringPanickedSweep(t *testing.T) {
	const n, poisoned = 8, 2
	fn := func(j Job) ([]Metric, error) {
		if j.Payload.(int) == poisoned {
			panic("poisoned run")
		}
		return []Metric{{Name: "ok", Value: 1}}, nil
	}
	sink := &failingSink{failOn: 4}
	recs, err := Run(echoJobs(n), fn, Config{Workers: 4}, sink)
	if err == nil || !strings.Contains(err.Error(), "sink write failure") {
		t.Fatalf("Run error = %v, want sink write failure", err)
	}
	if len(recs) != n {
		t.Fatalf("got %d records, want %d — sink failure must not truncate results", len(recs), n)
	}
	for i, r := range recs {
		if r.Job.Index != i {
			t.Errorf("record %d has index %d", i, r.Job.Index)
		}
		if i == poisoned {
			if !r.Panicked || !strings.Contains(r.Err, "poisoned run") {
				t.Errorf("poisoned record = %+v", r)
			}
		} else if r.Failed() {
			t.Errorf("record %d unexpectedly failed: %s", i, r.Err)
		}
	}
	if sink.writes != 4 {
		t.Errorf("sink saw %d writes, want 4 (writes stop after the first error)", sink.writes)
	}
	if sink.flushes != 1 {
		t.Errorf("sink flushed %d times, want 1 (flush still runs after a write error)", sink.flushes)
	}
}

// TestSinkFlushErrorReported verifies a flush-only failure also surfaces,
// without disturbing the records.
func TestSinkFlushErrorReported(t *testing.T) {
	sink := &failingSink{failFlush: true}
	recs, err := Run(echoJobs(3), func(Job) ([]Metric, error) { return nil, nil }, Config{Workers: 2}, sink)
	if err == nil || !strings.Contains(err.Error(), "sink flush failure") {
		t.Fatalf("Run error = %v, want flush failure", err)
	}
	if len(recs) != 3 || sink.writes != 3 {
		t.Fatalf("records/writes = %d/%d, want 3/3", len(recs), sink.writes)
	}
}

// TestEmptyJobs verifies the degenerate sweep.
func TestEmptyJobs(t *testing.T) {
	recs, err := Run(nil, func(Job) ([]Metric, error) { return nil, nil }, Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("got %d records, want 0", len(recs))
	}
}
