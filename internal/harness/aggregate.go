package harness

import (
	"fmt"
	"math"
)

// Aggregator is the in-memory sink behind multi-run averaging: it folds the
// record stream into per-metric mean, sample standard deviation and minimum.
// Accumulation happens in record (= job) order with the same operation order
// as a serial loop, so aggregate floats are bit-identical to a serial
// implementation for any worker count.
//
// Failed records are collected, not aggregated; callers decide whether a
// failure poisons the sweep (see Failures).
type Aggregator struct {
	count    int
	names    []string
	index    map[string]int // metric name -> position in names; lookup only, never ranged
	sums     []float64
	mins     []float64
	samples  [][]float64
	failures []Record
}

// NewAggregator returns an empty aggregator. The metric set is fixed by the
// first successful record; later records must carry the same metrics in the
// same order.
func NewAggregator() *Aggregator {
	return &Aggregator{index: make(map[string]int)}
}

// Write implements Sink.
func (a *Aggregator) Write(r Record) error {
	if r.Failed() {
		a.failures = append(a.failures, r)
		return nil
	}
	if a.count == 0 && len(a.names) == 0 {
		a.names = make([]string, len(r.Metrics))
		a.sums = make([]float64, len(r.Metrics))
		a.mins = make([]float64, len(r.Metrics))
		a.samples = make([][]float64, len(r.Metrics))
		for i, m := range r.Metrics {
			a.names[i] = m.Name
			a.index[m.Name] = i
			a.mins[i] = math.Inf(1)
		}
	}
	if len(r.Metrics) != len(a.names) {
		return fmt.Errorf("harness: aggregate: record %d has %d metrics, want %d", r.Job.Index, len(r.Metrics), len(a.names))
	}
	for i, m := range r.Metrics {
		if m.Name != a.names[i] {
			return fmt.Errorf("harness: aggregate: record %d metric %d is %q, want %q", r.Job.Index, i, m.Name, a.names[i])
		}
	}
	for i, m := range r.Metrics {
		a.sums[i] += m.Value
		if m.Value < a.mins[i] {
			a.mins[i] = m.Value
		}
		a.samples[i] = append(a.samples[i], m.Value)
	}
	a.count++
	return nil
}

// Flush implements Sink.
func (a *Aggregator) Flush() error { return nil }

// Count returns the number of successful records aggregated.
func (a *Aggregator) Count() int { return a.count }

// Failures returns the failed records in job order.
func (a *Aggregator) Failures() []Record { return a.failures }

// Mean returns the arithmetic mean of the named metric (0 when no records
// or unknown metric).
func (a *Aggregator) Mean(name string) float64 {
	i, ok := a.index[name]
	if !ok || a.count == 0 {
		return 0
	}
	return a.sums[i] / float64(a.count)
}

// Min returns the smallest observed value of the named metric (0 when no
// records or unknown metric).
func (a *Aggregator) Min(name string) float64 {
	i, ok := a.index[name]
	if !ok || a.count == 0 {
		return 0
	}
	return a.mins[i]
}

// Std returns the sample standard deviation of the named metric around its
// mean; zero with fewer than two records.
func (a *Aggregator) Std(name string) float64 {
	i, ok := a.index[name]
	if !ok || a.count == 0 {
		return 0
	}
	return sampleStd(a.samples[i], a.sums[i]/float64(a.count))
}

// sampleStd returns the sample standard deviation around a known mean.
func sampleStd(xs []float64, mean float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}
