package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"lrseluge/internal/obs"
)

// stubDumper records dump reasons; safe for the concurrent worker pool.
type stubDumper struct {
	mu      sync.Mutex
	reasons []string
}

func (d *stubDumper) Dump(reason string) error {
	d.mu.Lock()
	d.reasons = append(d.reasons, reason)
	d.mu.Unlock()
	return nil
}

func (d *stubDumper) dumped() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.reasons...)
}

// TestFlightDumpOnPanic verifies a panicking job triggers exactly its own
// flight dump, carrying the panic message, while healthy jobs dump nothing.
// Both execute paths (with and without a timeout budget) must dump.
func TestFlightDumpOnPanic(t *testing.T) {
	for _, timeout := range []time.Duration{0, time.Minute} {
		dumpers := make([]*stubDumper, 4)
		for i := range dumpers {
			dumpers[i] = &stubDumper{}
		}
		fn := func(j Job) ([]Metric, error) {
			if j.Payload.(int) == 2 {
				panic("boom")
			}
			return []Metric{{Name: "ok", Value: 1}}, nil
		}
		cfg := Config{
			Workers: 2,
			Timeout: timeout,
			Flight:  func(j Job) FlightDumper { return dumpers[j.Index] },
		}
		recs, err := Run(echoJobs(4), fn, cfg)
		if err != nil {
			t.Fatalf("timeout=%v: Run: %v", timeout, err)
		}
		if !recs[2].Panicked {
			t.Fatalf("timeout=%v: job 2 not recorded as panicked: %+v", timeout, recs[2])
		}
		got := dumpers[2].dumped()
		if len(got) != 1 || !strings.Contains(got[0], "panic: boom") {
			t.Errorf("timeout=%v: panicked job dumps = %q, want one panic reason", timeout, got)
		}
		for i, d := range dumpers {
			if i != 2 && len(d.dumped()) != 0 {
				t.Errorf("timeout=%v: healthy job %d dumped: %q", timeout, i, d.dumped())
			}
		}
	}
}

// TestFlightDumpOnTimeout is the post-mortem contract end to end with a real
// obs.FlightRecorder: the hung job's goroutine keeps appending to its
// recorder while the harness takes the dump, and the dump file lands on disk
// with the timeout reason, the job state, and recent events.
func TestFlightDumpOnTimeout(t *testing.T) {
	dir := t.TempDir()
	release := make(chan struct{})
	defer close(release)

	recs := make([]*obs.FlightRecorder, 3)
	for i := range recs {
		fr := obs.NewFlightRecorder(8)
		fr.SetOutput(filepath.Join(dir, fmt.Sprintf("job-%d.flight.txt", i)))
		fr.SetState("job", fmt.Sprintf("job-%02d", i))
		recs[i] = fr
	}
	fn := func(j Job) ([]Metric, error) {
		i := j.Payload.(int)
		if i == 1 {
			// Hammer the recorder until the test ends so the dump below is
			// taken while writes are in flight.
			for {
				select {
				case <-release:
					return nil, nil
				default:
					recs[1].RecordLine([]byte(`{"ev":"tick"}`))
				}
			}
		}
		return []Metric{{Name: "ok", Value: 1}}, nil
	}
	cfg := Config{
		Workers: 3,
		Timeout: 25 * time.Millisecond,
		Flight:  func(j Job) FlightDumper { return recs[j.Index] },
	}
	out, err := Run(echoJobs(3), fn, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !out[1].Failed() || !strings.Contains(out[1].Err, "timeout") {
		t.Fatalf("hung record = %+v, want timeout failure", out[1])
	}

	data, err := os.ReadFile(filepath.Join(dir, "job-1.flight.txt"))
	if err != nil {
		t.Fatalf("timed-out job left no dump: %v", err)
	}
	dump := string(data)
	for _, want := range []string{"flight dump", "timeout", "job=job-01", `{"ev":"tick"}`} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
	for i := 0; i < 3; i += 2 {
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("job-%d.flight.txt", i))); err == nil {
			t.Errorf("healthy job %d left a dump", i)
		}
	}
}

// TestFlightNilDumper verifies a Flight callback returning nil for some jobs
// disables dumping for them without breaking the sweep.
func TestFlightNilDumper(t *testing.T) {
	fn := func(j Job) ([]Metric, error) {
		panic("every job dies")
	}
	d := &stubDumper{}
	cfg := Config{
		Workers: 2,
		Flight: func(j Job) FlightDumper {
			if j.Index == 0 {
				return d
			}
			return nil
		},
	}
	out, err := Run(echoJobs(3), fn, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, r := range out {
		if !r.Panicked {
			t.Errorf("job %d not panicked: %+v", i, r)
		}
	}
	if got := d.dumped(); len(got) != 1 {
		t.Errorf("job 0 dumps = %q, want exactly one", got)
	}
}
