package harness

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Sink consumes the ordered record stream of a sweep. Write is called once
// per job in job order, from a single goroutine; Flush is called once after
// the last record.
type Sink interface {
	Write(Record) error
	Flush() error
}

// JSONLSink writes one flat JSON object per record, one record per line:
//
//	{"index":0,"job":"p=0.1/run=0","proto":"Seluge","seed":"1",...,
//	 "data_pkts":1234,...,"err":"","panic":false}
//
// Keys appear in a fixed order (index, job, params in param order, metrics
// in metric order, err, panic) and numbers are formatted with the shortest
// round-trip representation, so the byte stream is a deterministic function
// of the records alone. Param keys and metric names must not collide with
// each other or with the fixed keys; the caller owns the namespace.
type JSONLSink struct {
	w *bufio.Writer
}

// NewJSONLSink returns a sink writing JSON lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w)}
}

// Write implements Sink.
func (s *JSONLSink) Write(r Record) error {
	buf := make([]byte, 0, 256)
	buf = append(buf, `{"index":`...)
	buf = strconv.AppendInt(buf, int64(r.Job.Index), 10)
	buf = append(buf, `,"job":`...)
	buf = appendJSONString(buf, r.Job.Name)
	for _, p := range r.Job.Params {
		buf = append(buf, ',')
		buf = appendJSONString(buf, p.Key)
		buf = append(buf, ':')
		buf = appendJSONString(buf, p.Value)
	}
	for _, m := range r.Metrics {
		buf = append(buf, ',')
		buf = appendJSONString(buf, m.Name)
		buf = append(buf, ':')
		buf = appendJSONNumber(buf, m.Value)
	}
	buf = append(buf, `,"err":`...)
	buf = appendJSONString(buf, r.Err)
	buf = append(buf, `,"panic":`...)
	buf = strconv.AppendBool(buf, r.Panicked)
	buf = append(buf, '}', '\n')
	_, err := s.w.Write(buf)
	return err
}

// Flush implements Sink.
func (s *JSONLSink) Flush() error { return s.w.Flush() }

// appendJSONString appends the JSON encoding of v (delegated to
// encoding/json so escaping is spec-correct).
func appendJSONString(buf []byte, v string) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// Strings cannot fail to marshal; keep the sink total anyway.
		return append(buf, `""`...)
	}
	return append(buf, b...)
}

// appendJSONNumber appends v using the shortest representation that
// round-trips; non-finite values (not representable in JSON) become null.
func appendJSONNumber(buf []byte, v float64) []byte {
	b := strconv.AppendFloat(buf, v, 'g', -1, 64)
	for _, c := range b[len(buf):] {
		if c == 'N' || c == 'I' || c == 'n' || c == 'i' { // NaN, ±Inf
			return append(buf, "null"...)
		}
	}
	return b
}

// CSVSink writes one row per record with the fixed header
//
//	index,job,<param keys of the first record>,<metric names>,err,panic
//
// The metric column set must be supplied up front (records that failed carry
// no metrics, so it cannot be inferred from an arbitrary first record);
// failed records leave their metric cells empty. Records whose param keys
// differ from the first record's are an error.
type CSVSink struct {
	w         *csv.Writer
	metrics   []string
	paramKeys []string
	wroteHdr  bool
}

// NewCSVSink returns a CSV sink with the given metric columns.
func NewCSVSink(w io.Writer, metricNames []string) *CSVSink {
	return &CSVSink{w: csv.NewWriter(w), metrics: metricNames}
}

// Write implements Sink.
func (s *CSVSink) Write(r Record) error {
	if !s.wroteHdr {
		s.paramKeys = make([]string, 0, len(r.Job.Params))
		hdr := []string{"index", "job"}
		for _, p := range r.Job.Params {
			s.paramKeys = append(s.paramKeys, p.Key)
			hdr = append(hdr, p.Key)
		}
		hdr = append(hdr, s.metrics...)
		hdr = append(hdr, "err", "panic")
		if err := s.w.Write(hdr); err != nil {
			return err
		}
		s.wroteHdr = true
	}
	if len(r.Job.Params) != len(s.paramKeys) {
		return fmt.Errorf("harness: csv: record %d has %d params, header has %d", r.Job.Index, len(r.Job.Params), len(s.paramKeys))
	}
	row := make([]string, 0, 4+len(s.paramKeys)+len(s.metrics))
	row = append(row, strconv.Itoa(r.Job.Index), r.Job.Name)
	for i, p := range r.Job.Params {
		if p.Key != s.paramKeys[i] {
			return fmt.Errorf("harness: csv: record %d param %q does not match header column %q", r.Job.Index, p.Key, s.paramKeys[i])
		}
		row = append(row, p.Value)
	}
	for _, name := range s.metrics {
		if r.Failed() {
			row = append(row, "")
			continue
		}
		row = append(row, strconv.FormatFloat(r.Metric(name), 'g', -1, 64))
	}
	row = append(row, r.Err, strconv.FormatBool(r.Panicked))
	return s.w.Write(row)
}

// Flush implements Sink.
func (s *CSVSink) Flush() error {
	s.w.Flush()
	return s.w.Error()
}
