package hashx

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSumDeterministic(t *testing.T) {
	a := Sum([]byte("hello"))
	b := Sum([]byte("hello"))
	if a != b {
		t.Fatal("Sum not deterministic")
	}
	if a == Sum([]byte("world")) {
		t.Fatal("different inputs collide trivially")
	}
}

func TestSumMultiPartEqualsConcat(t *testing.T) {
	if err := quick.Check(func(a, b []byte) bool {
		joined := append(append([]byte(nil), a...), b...)
		return Sum(a, b) == Sum(joined)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSumMatchesFullPrefix(t *testing.T) {
	msg := []byte("lr-seluge")
	full := Full(msg)
	img := Sum(msg)
	if !bytes.Equal(img[:], full[:Size]) {
		t.Fatal("Sum is not the truncation of Full")
	}
}

func TestSumImages(t *testing.T) {
	a, b := Sum([]byte("a")), Sum([]byte("b"))
	got := SumImages(a, b)
	want := Sum(append(a.Bytes(), b.Bytes()...))
	if got != want {
		t.Fatal("SumImages differs from Sum over concatenated bytes")
	}
}

func TestConcatSplitRoundTrip(t *testing.T) {
	imgs := []Image{Sum([]byte("x")), Sum([]byte("y")), Sum([]byte("z"))}
	back := Split(Concat(imgs))
	if len(back) != 3 {
		t.Fatalf("got %d images", len(back))
	}
	for i := range imgs {
		if back[i] != imgs[i] {
			t.Fatalf("image %d mismatch", i)
		}
	}
}

func TestSplitBadLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Split(make([]byte, Size+1))
}

func TestZeroAndIsZero(t *testing.T) {
	if !Zero.IsZero() {
		t.Fatal("Zero.IsZero() false")
	}
	if Sum([]byte("a")).IsZero() {
		t.Fatal("hash of data reported zero")
	}
}

func TestFromBytes(t *testing.T) {
	img := Sum([]byte("q"))
	if FromBytes(img.Bytes()) != img {
		t.Fatal("FromBytes roundtrip failed")
	}
	// Extra bytes beyond Size are ignored.
	if FromBytes(append(img.Bytes(), 0xff)) != img {
		t.Fatal("FromBytes should read only the first Size bytes")
	}
}

func TestStringIsHex(t *testing.T) {
	s := Sum([]byte("a")).String()
	if len(s) != 2*Size {
		t.Fatalf("hex length %d, want %d", len(s), 2*Size)
	}
}
