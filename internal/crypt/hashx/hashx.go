// Package hashx provides the truncated cryptographic "hash images" used
// throughout Seluge and LR-Seluge.
//
// Seluge-style protocols chain packets with 64-bit truncated hashes to keep
// per-packet overhead small (8 bytes per image). This package computes them
// as the first 8 bytes of SHA-256. The truncation length is a protocol
// constant: every node and the base station must agree on it.
package hashx

import (
	"crypto/sha256"
	"encoding/hex"
)

// Size is the length in bytes of a hash image.
const Size = 8

// Image is a truncated hash of a packet or block.
type Image [Size]byte

// Zero is the all-zero image, used as a sentinel for "no hash known".
var Zero Image

// Sum computes the hash image of the concatenation of parts.
func Sum(parts ...[]byte) Image {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	var full [sha256.Size]byte
	h.Sum(full[:0])
	var img Image
	copy(img[:], full[:Size])
	return img
}

// SumImages hashes the concatenation of images, used for Merkle interior
// nodes.
func SumImages(imgs ...Image) Image {
	h := sha256.New()
	for _, im := range imgs {
		h.Write(im[:])
	}
	var full [sha256.Size]byte
	h.Sum(full[:0])
	var img Image
	copy(img[:], full[:Size])
	return img
}

// SumPair hashes the concatenation of exactly two images. It is byte-for-byte
// identical to SumImages(a, b) but allocates nothing: Merkle verification
// runs once per received M0 packet, and the variadic SumImages materializes
// an argument slice per call.
func SumPair(a, b Image) Image {
	var buf [2 * Size]byte
	copy(buf[:Size], a[:])
	copy(buf[Size:], b[:])
	full := sha256.Sum256(buf[:])
	var img Image
	copy(img[:], full[:Size])
	return img
}

// Full computes the untruncated SHA-256 digest, used where the full strength
// is required (signature pre-hash, key chains).
func Full(parts ...[]byte) [sha256.Size]byte {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// Bytes returns the image as a fresh byte slice.
func (im Image) Bytes() []byte { return append([]byte(nil), im[:]...) }

// IsZero reports whether the image is the zero sentinel.
func (im Image) IsZero() bool { return im == Zero }

// String renders the image as lowercase hex.
func (im Image) String() string { return hex.EncodeToString(im[:]) }

// FromBytes parses an image from the first Size bytes of b. It panics if b is
// too short; callers validate packet lengths before parsing.
func FromBytes(b []byte) Image {
	var img Image
	copy(img[:], b[:Size])
	return img
}

// Concat flattens a list of images into a byte slice, the layout of the hash
// page M0 (paper §IV-C: M0 is the concatenation h_{1,1} | ... | h_{1,n}).
func Concat(imgs []Image) []byte {
	out := make([]byte, 0, len(imgs)*Size)
	for _, im := range imgs {
		out = append(out, im[:]...)
	}
	return out
}

// Split parses a concatenation produced by Concat back into images. The
// input length must be a multiple of Size.
func Split(b []byte) []Image {
	if len(b)%Size != 0 {
		panic("hashx: Split input not a multiple of image size")
	}
	out := make([]Image, len(b)/Size)
	for i := range out {
		copy(out[i][:], b[i*Size:])
	}
	return out
}
