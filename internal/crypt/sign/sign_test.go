package sign

import (
	"bytes"
	"testing"
)

func TestSignVerifyRoundTrip(t *testing.T) {
	kp, err := Generate(nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("merkle root bytes")
	sig, err := kp.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig) != SignatureSize {
		t.Fatalf("signature size %d, want %d", len(sig), SignatureSize)
	}
	if !kp.Public().Verify(msg, sig) {
		t.Fatal("genuine signature rejected")
	}
}

func TestVerifyRejectsWrongMessage(t *testing.T) {
	kp, _ := Generate(nil)
	sig, _ := kp.Sign([]byte("a"))
	if kp.Public().Verify([]byte("b"), sig) {
		t.Fatal("signature for different message accepted")
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	kp1, _ := Generate(nil)
	kp2, _ := Generate(nil)
	msg := []byte("m")
	sig, _ := kp1.Sign(msg)
	if kp2.Public().Verify(msg, sig) {
		t.Fatal("signature verified under the wrong key")
	}
}

func TestVerifyRejectsMalformed(t *testing.T) {
	kp, _ := Generate(nil)
	msg := []byte("m")
	sig, _ := kp.Sign(msg)
	pub := kp.Public()

	if pub.Verify(msg, sig[:len(sig)-1]) {
		t.Fatal("truncated signature accepted")
	}
	tampered := append([]byte(nil), sig...)
	tampered[5] ^= 1
	if pub.Verify(msg, tampered) {
		t.Fatal("tampered signature accepted")
	}
	zeroLen := append([]byte(nil), sig...)
	zeroLen[0] = 0
	if pub.Verify(msg, zeroLen) {
		t.Fatal("zero-length inner signature accepted")
	}
	overLen := append([]byte(nil), sig...)
	overLen[0] = SignatureSize
	if pub.Verify(msg, overLen) {
		t.Fatal("overlong inner signature accepted")
	}
}

func TestZeroPublicKeyRejects(t *testing.T) {
	var pk PublicKey
	if pk.Valid() {
		t.Fatal("zero key reported valid")
	}
	if pk.Verify([]byte("m"), make([]byte, SignatureSize)) {
		t.Fatal("zero key verified something")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := GenerateDeterministic(42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateDeterministic(42)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("determinism")
	sig, _ := a.Sign(msg)
	if !b.Public().Verify(msg, sig) {
		t.Fatal("same seed did not reproduce the same key pair")
	}
	c, _ := GenerateDeterministic(43)
	if c.Public().Verify(msg, sig) {
		t.Fatal("different seed verified the signature")
	}
}

func TestSignaturesPadDeterministically(t *testing.T) {
	kp, _ := Generate(nil)
	for i := 0; i < 20; i++ {
		sig, err := kp.Sign([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if len(sig) != SignatureSize {
			t.Fatalf("iteration %d: size %d", i, len(sig))
		}
		inner := int(sig[0])
		// Padding beyond the inner signature must be zero.
		if !bytes.Equal(sig[1+inner:], make([]byte, SignatureSize-1-inner)) {
			t.Fatal("padding not zeroed")
		}
	}
}

func TestDeterministicKeySignsReproducibly(t *testing.T) {
	kp, err := GenerateDeterministic(7)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("merkle root under test")
	sig1, err := kp.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	sig2, err := kp.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sig1, sig2) {
		t.Error("deterministic key produced differing signatures for the same message")
	}
	if !kp.Public().Verify(msg, sig1) {
		t.Error("deterministic signature failed standard verification")
	}
	if kp.Public().Verify([]byte("other message"), sig1) {
		t.Error("signature verified against wrong message")
	}
	// Distinct messages must not reuse the nonce-derived r component.
	sig3, err := kp.Sign([]byte("a different root"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(sig1[:20], sig3[:20]) {
		t.Error("signatures over distinct messages share a prefix; nonce may be reused")
	}
}

func TestRandomizedKeyStillVerifies(t *testing.T) {
	kp, err := Generate(nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("randomized path")
	sig, err := kp.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !kp.Public().Verify(msg, sig) {
		t.Error("randomized signature failed verification")
	}
}
