// Package sign wraps ECDSA P-256 signing of the Merkle-tree root.
//
// The network model (paper §III-A) gives the base station a public/private
// key pair whose public half is preloaded on every node; nodes can afford a
// small number of signature verifications per code image (one, in the common
// case). The paper cites 1.12 s for an ECDSA verification on a Tmote Sky;
// the simulator charges that cost as virtual time (see internal/dissem).
package sign

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math/big"
)

// SignatureSize is the byte budget reserved in the signature packet: one
// length byte plus up to 72 bytes of ASN.1 ECDSA P-256 signature. The wire
// format pads to this fixed size so packet accounting is deterministic.
const SignatureSize = 73

// KeyPair is the base station's signing identity. Pairs created by
// GenerateDeterministic sign with a deterministic nonce so identical runs
// produce byte-identical signature packets; pairs from Generate use the
// standard randomized nonce.
type KeyPair struct {
	priv *ecdsa.PrivateKey
	det  bool
}

// PublicKey is the verification half, preloaded on every sensor node.
type PublicKey struct {
	key *ecdsa.PublicKey
}

// Generate creates a fresh P-256 key pair from the given entropy source. A
// nil source falls back to crypto/rand.
//
//lrlint:effects(rand) fresh entropy is the production key path; simulations use GenerateDeterministic
func Generate(entropy io.Reader) (*KeyPair, error) {
	if entropy == nil {
		entropy = rand.Reader
	}
	priv, err := ecdsa.GenerateKey(elliptic.P256(), entropy)
	if err != nil {
		return nil, fmt.Errorf("sign: key generation: %w", err)
	}
	return &KeyPair{priv: priv}, nil
}

// GenerateDeterministic creates a key pair from a seed, for reproducible
// simulations. The private scalar is derived directly from the seed because
// ecdsa.GenerateKey deliberately randomizes its consumption of the entropy
// stream. It must not be used outside tests and simulation setup: simulated
// identities carry no real secrets and determinism is the point.
func GenerateDeterministic(seed int64) (*KeyPair, error) {
	curve := elliptic.P256()
	var seedBuf [8]byte
	binary.BigEndian.PutUint64(seedBuf[:], uint64(seed))
	digest := sha256.Sum256(append([]byte("lrseluge-deterministic-key"), seedBuf[:]...))
	d := new(big.Int).SetBytes(digest[:])
	nMinus1 := new(big.Int).Sub(curve.Params().N, big.NewInt(1))
	d.Mod(d, nMinus1).Add(d, big.NewInt(1))
	priv := &ecdsa.PrivateKey{
		PublicKey: ecdsa.PublicKey{Curve: curve},
		D:         d,
	}
	priv.PublicKey.X, priv.PublicKey.Y = curve.ScalarBaseMult(d.Bytes())
	return &KeyPair{priv: priv, det: true}, nil
}

// Public returns the verification key.
func (kp *KeyPair) Public() PublicKey { return PublicKey{key: &kp.priv.PublicKey} }

// Sign produces a fixed-size signature over SHA-256(msg). Deterministic key
// pairs yield the same signature for the same message every time (the ECDSA
// nonce is derived from key and digest, RFC 6979 style); randomized pairs
// draw the nonce from crypto/rand.
//
//lrlint:effects(rand) randomized nonces are the production signing path; deterministic pairs never reach crypto/rand
func (kp *KeyPair) Sign(msg []byte) ([]byte, error) {
	digest := sha256.Sum256(msg)
	var sig []byte
	var err error
	if kp.det {
		sig, err = signDeterministic(kp.priv, digest[:])
	} else {
		sig, err = ecdsa.SignASN1(rand.Reader, kp.priv, digest[:])
	}
	if err != nil {
		return nil, fmt.Errorf("sign: %w", err)
	}
	if len(sig) > SignatureSize-1 {
		return nil, fmt.Errorf("sign: signature of %d bytes exceeds wire budget %d", len(sig), SignatureSize-1)
	}
	out := make([]byte, SignatureSize)
	out[0] = byte(len(sig))
	copy(out[1:], sig)
	return out, nil
}

// Verify checks a fixed-size signature produced by Sign.
func (pk PublicKey) Verify(msg, sig []byte) bool {
	if pk.key == nil || len(sig) != SignatureSize {
		return false
	}
	n := int(sig[0])
	if n <= 0 || n > SignatureSize-1 {
		return false
	}
	digest := sha256.Sum256(msg)
	return ecdsa.VerifyASN1(pk.key, digest[:], sig[1:1+n])
}

// Valid reports whether the key is usable (non-zero).
func (pk PublicKey) Valid() bool { return pk.key != nil }

// signDeterministic computes a textbook ECDSA signature with a nonce
// derived from the private scalar and the message digest (the construction
// RFC 6979 standardizes, with a single SHA-256 in place of HMAC-DRBG). The
// crypto/ecdsa API offers no nonce control — ecdsa.SignASN1 always folds in
// fresh entropy, which made every run's signature packets differ and broke
// trace-level reproducibility. Like GenerateDeterministic, this is for
// simulation identities only: the scalar arithmetic is not constant-time.
func signDeterministic(priv *ecdsa.PrivateKey, digest []byte) ([]byte, error) {
	curve := priv.Curve
	n := curve.Params().N
	one := big.NewInt(1)
	nMinus1 := new(big.Int).Sub(n, one)

	h := sha256.New()
	h.Write([]byte("lrseluge-deterministic-nonce"))
	h.Write(priv.D.Bytes())
	h.Write(digest)
	k := new(big.Int).SetBytes(h.Sum(nil))
	k.Mod(k, nMinus1).Add(k, one) // k in [1, n-1]

	z := new(big.Int).SetBytes(digest) // SHA-256 matches the P-256 order size
	for {
		x, _ := curve.ScalarBaseMult(k.Bytes())
		r := new(big.Int).Mod(x, n)
		if r.Sign() != 0 {
			s := new(big.Int).Mul(r, priv.D)
			s.Add(s, z)
			s.Mul(s, new(big.Int).ModInverse(k, n))
			s.Mod(s, n)
			if s.Sign() != 0 {
				return encodeASN1Signature(r, s), nil
			}
		}
		// Degenerate r or s: step the nonce (probability ~2^-256).
		k.Sub(k, one).Mod(k, nMinus1).Add(k, one)
	}
}

// encodeASN1Signature renders SEQUENCE { INTEGER r, INTEGER s } in DER, the
// format ecdsa.VerifyASN1 consumes. P-256 bodies stay under 128 bytes, so
// single-byte lengths suffice.
func encodeASN1Signature(r, s *big.Int) []byte {
	derInt := func(v *big.Int) []byte {
		b := v.Bytes()
		if len(b) == 0 {
			b = []byte{0}
		}
		if b[0]&0x80 != 0 {
			b = append([]byte{0}, b...) // keep the INTEGER positive
		}
		return append([]byte{0x02, byte(len(b))}, b...)
	}
	body := append(derInt(r), derInt(s)...)
	return append([]byte{0x30, byte(len(body))}, body...)
}
