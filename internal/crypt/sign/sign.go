// Package sign wraps ECDSA P-256 signing of the Merkle-tree root.
//
// The network model (paper §III-A) gives the base station a public/private
// key pair whose public half is preloaded on every node; nodes can afford a
// small number of signature verifications per code image (one, in the common
// case). The paper cites 1.12 s for an ECDSA verification on a Tmote Sky;
// the simulator charges that cost as virtual time (see internal/dissem).
package sign

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math/big"
)

// SignatureSize is the byte budget reserved in the signature packet: one
// length byte plus up to 72 bytes of ASN.1 ECDSA P-256 signature. The wire
// format pads to this fixed size so packet accounting is deterministic.
const SignatureSize = 73

// KeyPair is the base station's signing identity.
type KeyPair struct {
	priv *ecdsa.PrivateKey
}

// PublicKey is the verification half, preloaded on every sensor node.
type PublicKey struct {
	key *ecdsa.PublicKey
}

// Generate creates a fresh P-256 key pair from the given entropy source. A
// nil source falls back to crypto/rand.
func Generate(entropy io.Reader) (*KeyPair, error) {
	if entropy == nil {
		entropy = rand.Reader
	}
	priv, err := ecdsa.GenerateKey(elliptic.P256(), entropy)
	if err != nil {
		return nil, fmt.Errorf("sign: key generation: %w", err)
	}
	return &KeyPair{priv: priv}, nil
}

// GenerateDeterministic creates a key pair from a seed, for reproducible
// simulations. The private scalar is derived directly from the seed because
// ecdsa.GenerateKey deliberately randomizes its consumption of the entropy
// stream. It must not be used outside tests and simulation setup: simulated
// identities carry no real secrets and determinism is the point.
func GenerateDeterministic(seed int64) (*KeyPair, error) {
	curve := elliptic.P256()
	var seedBuf [8]byte
	binary.BigEndian.PutUint64(seedBuf[:], uint64(seed))
	digest := sha256.Sum256(append([]byte("lrseluge-deterministic-key"), seedBuf[:]...))
	d := new(big.Int).SetBytes(digest[:])
	nMinus1 := new(big.Int).Sub(curve.Params().N, big.NewInt(1))
	d.Mod(d, nMinus1).Add(d, big.NewInt(1))
	priv := &ecdsa.PrivateKey{
		PublicKey: ecdsa.PublicKey{Curve: curve},
		D:         d,
	}
	priv.PublicKey.X, priv.PublicKey.Y = curve.ScalarBaseMult(d.Bytes())
	return &KeyPair{priv: priv}, nil
}

// Public returns the verification key.
func (kp *KeyPair) Public() PublicKey { return PublicKey{key: &kp.priv.PublicKey} }

// Sign produces a fixed-size signature over SHA-256(msg).
func (kp *KeyPair) Sign(msg []byte) ([]byte, error) {
	digest := sha256.Sum256(msg)
	sig, err := ecdsa.SignASN1(rand.Reader, kp.priv, digest[:])
	if err != nil {
		return nil, fmt.Errorf("sign: %w", err)
	}
	if len(sig) > SignatureSize-1 {
		return nil, fmt.Errorf("sign: signature of %d bytes exceeds wire budget %d", len(sig), SignatureSize-1)
	}
	out := make([]byte, SignatureSize)
	out[0] = byte(len(sig))
	copy(out[1:], sig)
	return out, nil
}

// Verify checks a fixed-size signature produced by Sign.
func (pk PublicKey) Verify(msg, sig []byte) bool {
	if pk.key == nil || len(sig) != SignatureSize {
		return false
	}
	n := int(sig[0])
	if n <= 0 || n > SignatureSize-1 {
		return false
	}
	digest := sha256.Sum256(msg)
	return ecdsa.VerifyASN1(pk.key, digest[:], sig[1:1+n])
}

// Valid reports whether the key is usable (non-zero).
func (pk PublicKey) Valid() bool { return pk.key != nil }
