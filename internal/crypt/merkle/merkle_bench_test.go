package merkle

import (
	"testing"
)

func BenchmarkBuild16(b *testing.B) {
	bs := blocks(16, 40, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(bs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	bs := blocks(16, 40, 2)
	tree, err := Build(bs)
	if err != nil {
		b.Fatal(err)
	}
	proof, err := tree.Proof(5)
	if err != nil {
		b.Fatal(err)
	}
	root := tree.Root()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Verify(root, bs[5], 5, proof) {
			b.Fatal("verify failed")
		}
	}
}
