package merkle

import (
	"math/rand"
	"testing"

	"lrseluge/internal/crypt/hashx"
)

func blocks(n, size int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, size)
		rng.Read(out[i])
	}
	return out
}

func TestBuildRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, 3, 5, 6, 7, 9} {
		if _, err := Build(blocks(n, 8, 1)); err == nil {
			t.Errorf("Build accepted %d leaves", n)
		}
	}
}

func TestAllProofsVerify(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		bs := blocks(n, 16, int64(n))
		tree, err := Build(bs)
		if err != nil {
			t.Fatal(err)
		}
		wantDepth := 0
		for 1<<wantDepth < n {
			wantDepth++
		}
		if tree.Depth() != wantDepth || tree.NumLeaves() != n {
			t.Fatalf("n=%d: depth=%d leaves=%d", n, tree.Depth(), tree.NumLeaves())
		}
		for i := 0; i < n; i++ {
			proof, err := tree.Proof(i)
			if err != nil {
				t.Fatal(err)
			}
			if len(proof) != wantDepth {
				t.Fatalf("proof length %d, want %d", len(proof), wantDepth)
			}
			if !Verify(tree.Root(), bs[i], i, proof) {
				t.Fatalf("n=%d leaf %d failed to verify", n, i)
			}
		}
	}
}

func TestTamperedBlockFails(t *testing.T) {
	bs := blocks(8, 16, 2)
	tree, _ := Build(bs)
	proof, _ := tree.Proof(3)
	bad := append([]byte(nil), bs[3]...)
	bad[0] ^= 1
	if Verify(tree.Root(), bad, 3, proof) {
		t.Fatal("tampered block verified")
	}
}

func TestWrongIndexFails(t *testing.T) {
	bs := blocks(8, 16, 3)
	tree, _ := Build(bs)
	proof, _ := tree.Proof(3)
	if Verify(tree.Root(), bs[3], 4, proof) {
		t.Fatal("valid block verified at the wrong index")
	}
}

func TestTamperedProofFails(t *testing.T) {
	bs := blocks(8, 16, 4)
	tree, _ := Build(bs)
	proof, _ := tree.Proof(0)
	proof[1] = hashx.Sum([]byte("evil"))
	if Verify(tree.Root(), bs[0], 0, proof) {
		t.Fatal("tampered proof verified")
	}
}

func TestWrongRootFails(t *testing.T) {
	bs := blocks(4, 16, 5)
	tree, _ := Build(bs)
	proof, _ := tree.Proof(0)
	if Verify(hashx.Sum([]byte("other")), bs[0], 0, proof) {
		t.Fatal("wrong root verified")
	}
}

func TestVerifyIndexOutOfRange(t *testing.T) {
	bs := blocks(4, 16, 6)
	tree, _ := Build(bs)
	proof, _ := tree.Proof(0)
	if Verify(tree.Root(), bs[0], -1, proof) || Verify(tree.Root(), bs[0], 4, proof) {
		t.Fatal("out-of-range index verified")
	}
}

func TestProofIndexOutOfRange(t *testing.T) {
	tree, _ := Build(blocks(4, 8, 7))
	if _, err := tree.Proof(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := tree.Proof(4); err == nil {
		t.Fatal("too-large index accepted")
	}
}

func TestSingleLeafTree(t *testing.T) {
	bs := blocks(1, 8, 8)
	tree, err := Build(bs)
	if err != nil {
		t.Fatal(err)
	}
	proof, _ := tree.Proof(0)
	if len(proof) != 0 {
		t.Fatal("single-leaf proof should be empty")
	}
	if !Verify(tree.Root(), bs[0], 0, proof) {
		t.Fatal("single-leaf verify failed")
	}
	if tree.Root() != hashx.Sum(bs[0]) {
		t.Fatal("single-leaf root should be the leaf hash")
	}
}

func TestProofSize(t *testing.T) {
	if ProofSize(3) != 3*hashx.Size {
		t.Fatal("ProofSize wrong")
	}
}

func TestDifferentTreesDifferentRoots(t *testing.T) {
	a, _ := Build(blocks(4, 8, 9))
	b, _ := Build(blocks(4, 8, 10))
	if a.Root() == b.Root() {
		t.Fatal("different leaf sets produced the same root")
	}
}
