// Package merkle implements the Merkle hash tree Seluge and LR-Seluge build
// over the encoded blocks of the hash page M0 (paper §IV-C, Fig. 2).
//
// The tree has n0 = 2^d leaves; leaf j is H(block_j). Every M0 packet carries
// its block plus the d sibling images along the path to the root, so a
// receiver that knows the (signed) root can authenticate any M0 packet
// immediately on arrival with d+1 hash evaluations.
package merkle

import (
	"fmt"

	"lrseluge/internal/crypt/hashx"
)

// Tree is a complete binary Merkle hash tree. Immutable after Build.
type Tree struct {
	depth  int
	leaves int
	// levels[0] holds the leaf images (length n0); levels[depth] holds the
	// single root.
	levels [][]hashx.Image
}

// Build constructs a tree over the given blocks. The number of blocks must be
// a power of two and at least one.
func Build(blocks [][]byte) (*Tree, error) {
	n := len(blocks)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("merkle: leaf count %d is not a power of two", n)
	}
	depth := 0
	for 1<<depth < n {
		depth++
	}
	levels := make([][]hashx.Image, depth+1)
	levels[0] = make([]hashx.Image, n)
	for i, b := range blocks {
		levels[0][i] = hashx.Sum(b)
	}
	for lv := 1; lv <= depth; lv++ {
		prev := levels[lv-1]
		cur := make([]hashx.Image, len(prev)/2)
		for i := range cur {
			cur[i] = hashx.SumPair(prev[2*i], prev[2*i+1])
		}
		levels[lv] = cur
	}
	return &Tree{depth: depth, leaves: n, levels: levels}, nil
}

// Depth returns the tree depth d (number of proof images per leaf).
func (t *Tree) Depth() int { return t.depth }

// NumLeaves returns the leaf count n0 = 2^d.
func (t *Tree) NumLeaves() int { return t.leaves }

// Root returns the root image, the value the base station signs.
func (t *Tree) Root() hashx.Image { return t.levels[t.depth][0] }

// Proof returns the sibling images along the path from leaf index to the
// root, ordered bottom-up. The slice has length Depth().
func (t *Tree) Proof(index int) ([]hashx.Image, error) {
	if index < 0 || index >= t.leaves {
		return nil, fmt.Errorf("merkle: leaf index %d out of range [0,%d)", index, t.leaves)
	}
	proof := make([]hashx.Image, 0, t.depth)
	i := index
	for lv := 0; lv < t.depth; lv++ {
		proof = append(proof, t.levels[lv][i^1])
		i >>= 1
	}
	return proof, nil
}

// Verify checks that block is the leaf at index in a tree with the given
// root, using the bottom-up sibling proof. This is the per-packet
// authentication check performed by sensor nodes (paper Eq. before (4)).
func Verify(root hashx.Image, block []byte, index int, proof []hashx.Image) bool {
	if index < 0 || index >= 1<<len(proof) {
		return false
	}
	cur := hashx.Sum(block)
	i := index
	for _, sib := range proof {
		if i&1 == 0 {
			cur = hashx.SumPair(cur, sib)
		} else {
			cur = hashx.SumPair(sib, cur)
		}
		i >>= 1
	}
	return cur == root
}

// ProofSize returns the wire size in bytes of a proof for a tree of the given
// depth.
func ProofSize(depth int) int { return depth * hashx.Size }
