package puzzle

import (
	"testing"
)

func TestChainKeysVerify(t *testing.T) {
	chain, err := NewChain([]byte("seed"), 5)
	if err != nil {
		t.Fatal(err)
	}
	commit := chain.Commitment()
	for v := 1; v <= 5; v++ {
		key, err := chain.Key(v)
		if err != nil {
			t.Fatal(err)
		}
		if !VerifyKey(commit, key, v) {
			t.Fatalf("chain key for version %d failed verification", v)
		}
	}
}

func TestChainKeyWrongVersionFails(t *testing.T) {
	chain, _ := NewChain([]byte("seed"), 5)
	commit := chain.Commitment()
	k2, _ := chain.Key(2)
	if VerifyKey(commit, k2, 1) || VerifyKey(commit, k2, 3) {
		t.Fatal("key verified under the wrong version")
	}
	if VerifyKey(commit, k2, 0) || VerifyKey(commit, k2, -1) {
		t.Fatal("nonpositive version accepted")
	}
}

func TestChainForgedKeyFails(t *testing.T) {
	chain, _ := NewChain([]byte("seed"), 3)
	var forged Key
	forged[0] = 0xde
	if VerifyKey(chain.Commitment(), forged, 1) {
		t.Fatal("forged key verified")
	}
}

func TestChainRangeErrors(t *testing.T) {
	chain, _ := NewChain([]byte("seed"), 3)
	if _, err := chain.Key(0); err == nil {
		t.Fatal("version 0 accepted")
	}
	if _, err := chain.Key(4); err == nil {
		t.Fatal("version beyond chain accepted")
	}
	if _, err := NewChain([]byte("s"), 0); err == nil {
		t.Fatal("zero-length chain accepted")
	}
}

func TestChainDeterministic(t *testing.T) {
	a, _ := NewChain([]byte("same"), 4)
	b, _ := NewChain([]byte("same"), 4)
	if a.Commitment() != b.Commitment() {
		t.Fatal("same seed gave different chains")
	}
	c, _ := NewChain([]byte("other"), 4)
	if a.Commitment() == c.Commitment() {
		t.Fatal("different seeds gave same chain")
	}
}

func TestSolveVerify(t *testing.T) {
	params := Params{Strength: 10}
	chain, _ := NewChain([]byte("s"), 1)
	key, _ := chain.Key(1)
	msg := []byte("signature packet bytes")
	sol, err := Solve(params, msg, key)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(params, msg, key, sol) {
		t.Fatal("solution rejected")
	}
}

func TestVerifyRejectsWrongInputs(t *testing.T) {
	params := Params{Strength: 12}
	chain, _ := NewChain([]byte("s"), 1)
	key, _ := chain.Key(1)
	msg := []byte("m")
	sol, _ := Solve(params, msg, key)

	if Verify(params, []byte("other"), key, sol) {
		t.Fatal("solution verified for a different message")
	}
	var otherKey Key
	otherKey[3] = 7
	if Verify(params, msg, otherKey, sol) {
		t.Fatal("solution verified under a different key")
	}
	// A random wrong solution should almost surely fail at strength 12.
	if Verify(params, msg, key, sol+1) && Verify(params, msg, key, sol+2) && Verify(params, msg, key, sol+3) {
		t.Fatal("multiple wrong solutions verified; puzzle is vacuous")
	}
}

func TestZeroStrengthAlwaysVerifies(t *testing.T) {
	params := Params{Strength: 0}
	var key Key
	if !Verify(params, []byte("m"), key, 12345) {
		t.Fatal("strength-0 puzzle rejected a solution")
	}
}

func TestHigherStrengthHarder(t *testing.T) {
	chain, _ := NewChain([]byte("s"), 1)
	key, _ := chain.Key(1)
	msg := []byte("m")
	solLow, _ := Solve(Params{Strength: 4}, msg, key)
	solHigh, _ := Solve(Params{Strength: 14}, msg, key)
	// A strength-14 solution also satisfies strength 4, not vice versa in
	// general.
	if !Verify(Params{Strength: 4}, msg, key, solHigh) {
		t.Fatal("stronger solution rejected at lower strength")
	}
	_ = solLow
}
