// Package puzzle implements message-specific puzzles, the weak authenticator
// Seluge and LR-Seluge attach to the signature packet (paper §IV-C.3).
//
// Without the puzzle an adversary could flood forged signature packets and
// force nodes into expensive ECDSA verifications. A message-specific puzzle
// makes every forged packet cost the adversary an expensive brute-force
// search while costing the verifier a single hash: the base station releases
// a one-way-chain key K_v for code version v and publishes a solution s such
// that H(msg || K_v || s) has Strength leading zero bits. Nodes hold the
// chain commitment K_0 and can authenticate K_v with v hash evaluations.
package puzzle

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// KeySize is the wire size of a puzzle key.
const KeySize = 8

// SolutionSize is the wire size of a puzzle solution.
const SolutionSize = 8

// Params configures puzzle difficulty.
type Params struct {
	// Strength is the required number of leading zero bits in the puzzle
	// hash. The paper's reference [14] uses strengths around 20+ bits in
	// deployment; tests and simulations use small values so solving stays
	// cheap.
	Strength uint
}

// DefaultParams is a simulation-friendly difficulty: strong enough to
// demonstrate filtering, cheap enough to solve in microseconds.
const DefaultStrength = 12

// ErrUnsolvable is returned when no solution exists within the 64-bit search
// space (practically impossible for sane strengths).
var ErrUnsolvable = errors.New("puzzle: no solution in search space")

// Key is a puzzle key from the base station's one-way key chain.
type Key [KeySize]byte

// Chain is the base station's one-way key chain: K_i = H(K_{i+1}), released
// in increasing version order. Nodes are preloaded with the commitment K_0.
type Chain struct {
	keys []Key // keys[i] is the key for version i; keys[0] is the commitment
}

// NewChain derives a chain of the given length from a seed. Version numbers
// index into [1, length]; version v uses keys[v].
func NewChain(seed []byte, length int) (*Chain, error) {
	if length < 1 {
		return nil, fmt.Errorf("puzzle: chain length %d < 1", length)
	}
	keys := make([]Key, length+1)
	last := sha256.Sum256(append([]byte("lrseluge-puzzle-chain"), seed...))
	copy(keys[length][:], last[:KeySize])
	for i := length - 1; i >= 0; i-- {
		h := sha256.Sum256(keys[i+1][:])
		copy(keys[i][:], h[:KeySize])
	}
	return &Chain{keys: keys}, nil
}

// Commitment returns K_0, the value preloaded on every node.
func (c *Chain) Commitment() Key { return c.keys[0] }

// Key returns the chain key for a code version in [1, len].
func (c *Chain) Key(version int) (Key, error) {
	if version < 1 || version >= len(c.keys) {
		return Key{}, fmt.Errorf("puzzle: version %d outside chain range [1,%d]", version, len(c.keys)-1)
	}
	return c.keys[version], nil
}

// VerifyKey checks that key is the version-th element of the chain with the
// given commitment: hashing it version times must reproduce the commitment.
func VerifyKey(commitment, key Key, version int) bool {
	if version < 1 {
		return false
	}
	cur := key
	for i := 0; i < version; i++ {
		h := sha256.Sum256(cur[:])
		copy(cur[:], h[:KeySize])
	}
	return cur == commitment
}

// Solve brute-forces a solution s with H(msg || key || s) having
// params.Strength leading zero bits. The base station runs this once per
// code image; sensor nodes never do.
func Solve(params Params, msg []byte, key Key) (uint64, error) {
	for s := uint64(0); ; s++ {
		if check(params, msg, key, s) {
			return s, nil
		}
		if s == ^uint64(0) {
			return 0, ErrUnsolvable
		}
	}
}

// Verify checks a puzzle solution with a single hash evaluation. This is the
// cheap test nodes apply before attempting the expensive signature
// verification.
func Verify(params Params, msg []byte, key Key, solution uint64) bool {
	return check(params, msg, key, solution)
}

func check(params Params, msg []byte, key Key, solution uint64) bool {
	var sbuf [SolutionSize]byte
	binary.BigEndian.PutUint64(sbuf[:], solution)
	h := sha256.New()
	h.Write(msg)
	h.Write(key[:])
	h.Write(sbuf[:])
	var digest [sha256.Size]byte
	h.Sum(digest[:0])
	return leadingZeroBits(digest[:]) >= int(params.Strength)
}

func leadingZeroBits(b []byte) int {
	total := 0
	for _, x := range b {
		if x == 0 {
			total += 8
			continue
		}
		total += bits.LeadingZeros8(x)
		break
	}
	return total
}
