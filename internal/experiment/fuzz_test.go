package experiment

import (
	"bytes"
	"testing"
)

// FuzzDecodeSpec fuzzes the spec wire format with the round-trip property
// the content-addressed store depends on: for any input DecodeSpec accepts
// and Normalize validates, Normalize -> CanonicalJSON -> DecodeSpec ->
// Normalize -> CanonicalJSON is the identity, and the derived key is stable
// across the trip. A canonical form that fails to re-decode — or drifts on a
// second pass — would cache results under keys their own envelopes cannot
// reproduce. Inputs the decoder or validator rejects must error cleanly;
// specs are client input, so a panic here is a served 500 on a typo.
func FuzzDecodeSpec(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"protocol":"seluge","runs":2}`))
	f.Add([]byte(`{"seed":42,"protocol":"lr-seluge","loss_p":0.1,"policy":"union"}`))
	f.Add([]byte(`{"schema":1,"protocol":"deluge","receivers":5,"image_kb":4,"quick":true}`))
	f.Add([]byte(`{"loss_model":"gilbert-elliott","loss_p":0.3,"burst_len":4.5}`))
	f.Add([]byte(`{"topology":"grid","density":"tight","receivers":224}`))
	f.Add([]byte(`{"protcol":"typo"}`))
	f.Add([]byte(`{"runs":-1}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSpec(data)
		if err != nil {
			return // rejected without panicking: fine
		}
		norm, err := s.Normalize()
		if err != nil {
			return // invalid spec, cleanly refused: fine
		}
		c1, err := norm.CanonicalJSON()
		if err != nil {
			t.Fatalf("canonicalize normalized spec: %v", err)
		}
		back, err := DecodeSpec(c1)
		if err != nil {
			t.Fatalf("canonical form does not re-decode: %v\n%s", err, c1)
		}
		norm2, err := back.Normalize()
		if err != nil {
			t.Fatalf("canonical form does not re-normalize: %v\n%s", err, c1)
		}
		c2, err := norm2.CanonicalJSON()
		if err != nil {
			t.Fatalf("re-canonicalize: %v", err)
		}
		if !bytes.Equal(c1, c2) {
			t.Fatalf("canonical form drifted on round trip:\n%s\n%s", c1, c2)
		}
		k1, err := norm.Key("fuzz")
		if err != nil {
			t.Fatalf("key normalized spec: %v", err)
		}
		k2, err := norm2.Key("fuzz")
		if err != nil {
			t.Fatalf("key round-tripped spec: %v", err)
		}
		if k1 != k2 {
			t.Fatalf("key drifted on round trip: %s vs %s", k1, k2)
		}
	})
}
