package experiment

import (
	"bytes"
	"testing"

	"lrseluge/internal/core"
	"lrseluge/internal/crypt/puzzle"
	"lrseluge/internal/crypt/sign"
	"lrseluge/internal/dissem"
	"lrseluge/internal/image"
	"lrseluge/internal/packet"
	"lrseluge/internal/sim"
)

// TestLateJoinerCatchesUp exercises the MAINTAIN machinery the paper
// inherits from Deluge: a node that boots long after the dissemination
// finished must still obtain the image from its (now idle) neighbors via
// Trickle advertisements — LR-Seluge's any-node-can-serve property.
func TestLateJoinerCatchesUp(t *testing.T) {
	params := image.Params{PacketPayload: 72, K: 8, N: 12}
	s := Scenario{
		Protocol:   LRSeluge,
		ImageSize:  2048,
		Params:     params,
		Receivers:  3,
		LossP:      0.1,
		ExtraNodes: 1, // reserve a slot for the late joiner
		Seed:       17,
	}
	e, err := build(s)
	if err != nil {
		t.Fatal(err)
	}
	e.run()
	if e.col.Completions() != len(e.nodes) {
		t.Fatalf("setup: initial dissemination incomplete (%d/%d)", e.col.Completions(), len(e.nodes))
	}

	// Boot the late joiner on the reserved slot with the same preloaded
	// security material.
	keyPair, err := sign.GenerateDeterministic(s.Seed ^ 0xec)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := puzzle.NewChain([]byte("lrseluge-experiment"), 8)
	if err != nil {
		t.Fatal(err)
	}
	sigCtx := &dissem.SigContext{
		Pub:        keyPair.Public(),
		Commitment: chain.Commitment(),
		Puzzle:     puzzle.Params{Strength: 8},
		Col:        e.col,
	}
	h, err := core.NewHandler(1, params, sigCtx)
	if err != nil {
		t.Fatal(err)
	}
	lateID := packet.NodeID(4)
	node, err := dissem.NewNode(lateID, e.nw, s.withDefaults().Dissem, h, h.NewPolicy(), 999)
	if err != nil {
		t.Fatal(err)
	}
	node.Start()

	// Give it a few minutes of virtual time: the idle network's Trickle
	// interval has backed off toward IMax (60 s), so discovery can take a
	// couple of intervals.
	e.eng.Run(e.eng.Now() + 10*60*sim.Second)
	if !node.Completed() {
		t.Fatalf("late joiner incomplete: %d/%d units", h.CompleteUnits(), h.TotalUnits())
	}
	got, err := h.ReassembledImage(len(e.imageData))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, e.imageData) {
		t.Fatal("late joiner reconstructed a different image")
	}
}
