package experiment

import (
	"lrseluge/internal/fault"
	"lrseluge/internal/harness"
	"lrseluge/internal/image"
	"lrseluge/internal/sim"
)

// churnPlanSeed separates the fault plan's RNG stream from the channel and
// protocol streams derived from the same run seed.
const churnPlanSeed = 0xfa117

// churnFactory builds a per-run random-churn fault factory over the receiver
// nodes. The base station (node 0) never crashes: the paper's dissemination
// source is mains-powered, and killing it only measures source availability,
// not protocol resilience.
func churnFactory(meanUptime, meanDowntime, horizon sim.Time) func(seed int64, numNodes int) (*fault.Plan, error) {
	return func(seed int64, numNodes int) (*fault.Plan, error) {
		nodes := make([]int, 0, numNodes-1)
		for id := 1; id < numNodes; id++ {
			nodes = append(nodes, id)
		}
		return fault.RandomChurn(fault.ChurnSpec{
			Nodes:        nodes,
			MeanUptime:   meanUptime,
			MeanDowntime: meanDowntime,
			Horizon:      horizon,
			Seed:         seed ^ churnPlanSeed,
		})
	}
}

// outageFactory builds a burst-outage fault factory cutting the links between
// the base station and every receiver on a fixed duty cycle. The train is
// deterministic (staggered per link), so the run seed is unused.
func outageFactory(period, outage, horizon sim.Time) func(seed int64, numNodes int) (*fault.Plan, error) {
	return func(_ int64, numNodes int) (*fault.Plan, error) {
		links := make([][2]int, 0, numNodes-1)
		for id := 1; id < numNodes; id++ {
			links = append(links, [2]int{0, id})
		}
		return fault.BurstOutages(fault.OutageSpec{
			Links:   links,
			Period:  period,
			Outage:  outage,
			Horizon: horizon,
			Bidir:   true,
		})
	}
}

// churnMeanDowntime is the mean node downtime of the churn sweep (a reboot
// plus flash scan on a mote is tens of seconds).
const churnMeanDowntime = 30 * sim.Second

// churnEntries builds the Seluge-vs-LR-Seluge node-churn sweep: receivers
// crash at the given per-node rates (crashes per hour of uptime) and reboot
// after an exponential downtime, retaining flash-resident pages.
func churnEntries(params image.Params, imageSize, receivers int, rates []float64, p float64, horizon sim.Time, runs int, seed int64) []GridEntry {
	entries := make([]GridEntry, 0, 2*len(rates))
	for _, rate := range rates {
		meanUp := sim.Time(float64(3600*sim.Second) / rate)
		entries = append(entries, comparisonEntries(
			"churn="+fmtFloat(rate),
			[]harness.Param{{Key: "crash_per_hour", Value: fmtFloat(rate)}},
			Scenario{
				ImageSize:    imageSize,
				Params:       params,
				Receivers:    receivers,
				LossP:        p,
				Seed:         seed,
				Horizon:      horizon,
				FaultFactory: churnFactory(meanUp, churnMeanDowntime, horizon),
			},
			runs)...)
	}
	return entries
}

// outageEntries builds the Seluge-vs-LR-Seluge link-outage sweep: base-to-
// receiver links go dark for the given duty-cycle fractions of a fixed
// period, modelling periodic interference or duty-cycled radios.
func outageEntries(params image.Params, imageSize, receivers int, duties []float64, period sim.Time, p float64, horizon sim.Time, runs int, seed int64) []GridEntry {
	entries := make([]GridEntry, 0, 2*len(duties))
	for _, duty := range duties {
		outage := sim.Time(float64(period) * duty)
		entries = append(entries, comparisonEntries(
			"outage="+fmtFloat(duty),
			[]harness.Param{{Key: "outage_duty", Value: fmtFloat(duty)}},
			Scenario{
				ImageSize:    imageSize,
				Params:       params,
				Receivers:    receivers,
				LossP:        p,
				Seed:         seed,
				Horizon:      horizon,
				FaultFactory: outageFactory(period, outage, horizon),
			},
			runs)...)
	}
	return entries
}

// ChurnComparison runs the node-churn sweep and pairs the averages per crash
// rate (Seluge vs LR-Seluge), the fault-injection counterpart of Fig. 4.
func ChurnComparison(params image.Params, imageSize, receivers int, rates []float64, p float64, horizon sim.Time, runs int, seed int64) ([]ComparisonPoint, error) {
	avgs, err := RunGrid("churn", churnEntries(params, imageSize, receivers, rates, p, horizon, runs, seed), harness.Config{})
	if err != nil {
		return nil, err
	}
	return comparisonAssemble(rates, avgs), nil
}

// OutageComparison runs the link-outage sweep and pairs the averages per
// duty cycle (Seluge vs LR-Seluge).
func OutageComparison(params image.Params, imageSize, receivers int, duties []float64, period sim.Time, p float64, horizon sim.Time, runs int, seed int64) ([]ComparisonPoint, error) {
	avgs, err := RunGrid("outage", outageEntries(params, imageSize, receivers, duties, period, p, horizon, runs, seed), harness.Config{})
	if err != nil {
		return nil, err
	}
	return comparisonAssemble(duties, avgs), nil
}
