package experiment

import (
	"testing"

	"lrseluge/internal/image"
	"lrseluge/internal/sim"
)

func TestVersionUpgrade(t *testing.T) {
	params := image.Params{PacketPayload: 72, K: 8, N: 12}
	res, err := VersionUpgrade(params, 2048, 5, 0.1, 23)
	if err != nil {
		t.Fatal(err)
	}
	if res.Upgraded != res.Nodes {
		t.Fatalf("only %d/%d nodes upgraded", res.Upgraded, res.Nodes)
	}
	if !res.ImagesOK {
		t.Fatal("version-2 images not intact everywhere")
	}
	if res.UpgradeLatency <= 0 || res.UpgradeLatency > 30*60*sim.Second {
		t.Fatalf("implausible upgrade latency %v", res.UpgradeLatency)
	}
	// Every node verifies one signature per version (plus possibly a few
	// re-verifications from duplicate announcements).
	if res.SigVerifications < int64(res.Nodes) {
		t.Fatalf("too few signature verifications: %d", res.SigVerifications)
	}
}

func TestVersionUpgradeLossless(t *testing.T) {
	params := image.Params{PacketPayload: 72, K: 8, N: 12}
	res, err := VersionUpgrade(params, 1024, 3, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Upgraded != res.Nodes || !res.ImagesOK {
		t.Fatalf("lossless upgrade failed: %+v", res)
	}
}
