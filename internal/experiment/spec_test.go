package experiment

import (
	"encoding/json"
	"sort"
	"strings"
	"testing"
)

// TestSpecDecodeRejectsUnknownFields: a typo in a request body must fail
// loudly, never run (and cache) the default scenario.
func TestSpecDecodeRejectsUnknownFields(t *testing.T) {
	if _, err := DecodeSpec([]byte(`{"protcol":"seluge"}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := DecodeSpec([]byte(`{"protocol":"seluge"}{"runs":2}`)); err == nil {
		t.Fatal("trailing document accepted")
	}
	s, err := DecodeSpec([]byte(`{"protocol":"seluge","runs":2}`))
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if s.Protocol != "seluge" || s.Runs != 2 {
		t.Fatalf("decoded %+v", s)
	}
}

// TestSpecRoundTrip: encode/decode preserves a normalized spec exactly.
func TestSpecRoundTrip(t *testing.T) {
	in := Spec{
		Protocol:  "lr-seluge",
		ImageSize: 4096,
		Grid:      &GridSpec{Rows: 4, Cols: 4, Density: "tight"},
		Noise:     "heavy",
		Seed:      7,
		Runs:      3,
	}
	n, err := in.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSpec(buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Grid == nil || *back.Grid != *n.Grid {
		t.Fatalf("grid lost: %+v", back.Grid)
	}
	g1, g2 := *n.Grid, *back.Grid
	n.Grid, back.Grid = nil, nil
	if n != back || g1 != g2 {
		t.Fatalf("round trip changed spec:\n in=%+v grid=%+v\nout=%+v grid=%+v", n, g1, back, g2)
	}
}

// TestSpecKeyInsensitiveToRepresentation is the regression test of the
// canonicalization contract: two semantically identical specs — different
// JSON field order, defaults omitted vs spelled out — hash to the same key.
func TestSpecKeyInsensitiveToRepresentation(t *testing.T) {
	// Defaults omitted, fields in one order.
	a, err := DecodeSpec([]byte(`{"seed":42,"protocol":"seluge","loss_p":0.1}`))
	if err != nil {
		t.Fatal(err)
	}
	// Same experiment: every default spelled out, different field order.
	b, err := DecodeSpec([]byte(`{
		"runs": 1,
		"image_size": 20480,
		"noise": "bernoulli",
		"packet_payload": 72, "k": 32, "n": 48,
		"policy": "greedy-rr",
		"horizon_sec": 14400,
		"puzzle_strength": 8,
		"receivers": 20,
		"schema": 1,
		"loss_p": 0.1,
		"protocol": "seluge",
		"seed": 42
	}`))
	if err != nil {
		t.Fatal(err)
	}
	ka, err := a.Key("v1")
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.Key("v1")
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		ca, _ := a.CanonicalJSON()
		cb, _ := b.CanonicalJSON()
		t.Fatalf("semantically identical specs hash differently:\n%s -> %s\n%s -> %s", ca, ka, cb, kb)
	}

	// Any semantic change must change the key.
	c := b
	c.LossP = 0.2
	kc, err := c.Key("v1")
	if err != nil {
		t.Fatal(err)
	}
	if kc == kb {
		t.Fatal("different loss_p produced the same key")
	}
	// And so must the code-version stamp.
	kv2, err := b.Key("v2")
	if err != nil {
		t.Fatal(err)
	}
	if kv2 == kb {
		t.Fatal("different code version produced the same key")
	}
}

// TestSpecCanonicalJSONShape pins the canonical form: compact, sorted keys,
// parseable back to the normalized spec.
func TestSpecCanonicalJSONShape(t *testing.T) {
	s := Spec{Protocol: "lr-seluge", Grid: &GridSpec{Rows: 3, Cols: 5}, Noise: "heavy", Seed: 9}
	cj, err := s.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.ContainsAny(string(cj), " \n\t") {
		t.Fatalf("canonical JSON contains whitespace: %s", cj)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(cj, &m); err != nil {
		t.Fatalf("canonical JSON does not parse: %v\n%s", err, cj)
	}
	// Top-level keys appear in sorted order in the byte stream.
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	last := -1
	for _, k := range keys {
		idx := strings.Index(string(cj), `"`+k+`":`)
		if idx < 0 {
			t.Fatalf("key %q not found literally in %s", k, cj)
		}
		if idx < last {
			t.Fatalf("key %q out of sorted order in %s", k, cj)
		}
		last = idx
	}
	// The canonical bytes decode back to the normalized spec.
	back, err := DecodeSpec(cj)
	if err != nil {
		t.Fatalf("canonical JSON rejected by DecodeSpec: %v", err)
	}
	n, err := s.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if *back.Grid != *n.Grid {
		t.Fatalf("grid mismatch: %+v vs %+v", back.Grid, n.Grid)
	}
	back.Grid, n.Grid = nil, nil
	if back != n {
		t.Fatalf("canonical JSON decodes to %+v, want %+v", back, n)
	}
}

// TestSpecValidation exercises the rejection paths.
func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Schema: 99},
		{Protocol: "zigbee"},
		{ImageSize: -1},
		{PacketPayload: 72, K: 48, N: 32}, // n < k
		{Receivers: -3},
		{Grid: &GridSpec{Rows: 0, Cols: 4}},
		{Grid: &GridSpec{Rows: 4, Cols: 4, Density: "sparse"}},
		{Noise: "quiet"},
		{LossP: 1.5},
		{Policy: "lifo"},
		{PuzzleStrength: 40},
		{HorizonSec: -1},
		{Runs: -2},
	}
	for i, s := range bad {
		if _, err := s.Normalize(); err == nil {
			t.Errorf("case %d: invalid spec %+v accepted", i, s)
		}
	}
}

// TestSpecScenario checks the spec -> Scenario mapping on both topology and
// noise variants, then runs a tiny spec end to end.
func TestSpecScenario(t *testing.T) {
	s := Spec{
		Protocol:  "seluge",
		ImageSize: 2048,
		Receivers: 5,
		LossP:     0.1,
		Seed:      3,
	}
	sc, err := s.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Protocol != Seluge || sc.Receivers != 5 || sc.LossP != 0.1 || sc.Seed != 3 || sc.Graph != nil {
		t.Fatalf("scenario %+v", sc)
	}

	g := Spec{
		Protocol:      "lr-seluge",
		ImageSize:     2 * 1024,
		PacketPayload: 72, K: 8, N: 12,
		Grid:  &GridSpec{Rows: 3, Cols: 3, Density: "tight"},
		Noise: "heavy",
		Seed:  1,
	}
	gsc, err := g.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if gsc.Graph == nil || gsc.Graph.NumNodes() != 9 {
		t.Fatalf("grid scenario graph %+v", gsc.Graph)
	}
	if gsc.LossFactory == nil {
		t.Fatal("heavy noise did not install a loss factory")
	}
	res, err := Run(gsc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Nodes || !res.ImagesOK {
		t.Fatalf("spec-built run incomplete: %+v", res)
	}
}

// TestCellKeys checks that catalog cells key distinctly across sweeps, cell
// positions, quick/full mode and code versions, and identically across
// repeated expansions.
func TestCellKeys(t *testing.T) {
	spec := SweepSpec{Runs: 2, Seed: 1, Quick: true}
	cells, err := SweepCells("smoke", spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("smoke has %d cells, want 2", len(cells))
	}
	again, err := SweepCells("smoke", spec)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i, c := range cells {
		k := c.Key("v1")
		if seen[k] {
			t.Fatalf("duplicate cell key %s", k)
		}
		seen[k] = true
		if got := again[i].Key("v1"); got != k {
			t.Fatalf("cell %d key not stable: %s vs %s", i, k, got)
		}
		if full := (Cell{Sweep: c.Sweep, Index: c.Index, Entry: c.Entry, Spec: SweepSpec{Runs: 2, Seed: 1}}).Key("v1"); full == k {
			t.Fatal("quick and full cells share a key")
		}
		if v2 := c.Key("v2"); v2 == k {
			t.Fatal("code version does not split cell keys")
		}
	}
	if _, err := SweepCells("no-such-sweep", spec); err == nil {
		t.Fatal("unknown sweep accepted")
	}
}
