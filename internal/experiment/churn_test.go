package experiment

import (
	"bytes"
	"testing"

	"lrseluge/internal/fault"
	"lrseluge/internal/harness"
	"lrseluge/internal/sim"
)

// churnScenario is a small one-hop scenario under aggressive random churn:
// receivers crash often enough that several power cycles happen while the
// image is still spreading.
func churnScenario(seed int64) Scenario {
	horizon := 3600 * sim.Second
	return Scenario{
		Protocol:     LRSeluge,
		ImageSize:    2 * 1024,
		Params:       smallParams(),
		Receivers:    4,
		LossP:        0.05,
		Seed:         seed,
		Horizon:      horizon,
		FaultFactory: churnFactory(40*sim.Second, 10*sim.Second, horizon),
	}
}

// TestChurnSameSeedReproducible extends the repo's reproducibility claim to
// fault injection: two builds of the same churn scenario must produce
// byte-identical packet traces, and the runs must actually exercise crashes.
func TestChurnSameSeedReproducible(t *testing.T) {
	res1, trace1 := traceRun(t, churnScenario(42))
	res2, trace2 := traceRun(t, churnScenario(42))

	if res1 != res2 {
		t.Errorf("same seed produced different metrics:\n run1: %+v\n run2: %+v", res1, res2)
	}
	if trace1 != trace2 {
		t.Errorf("same seed produced different packet traces: %x vs %x", trace1, trace2)
	}
	if res1.Crashes == 0 {
		t.Error("churn scenario produced no crashes; the test is vacuous")
	}
	if res1.Reboots == 0 || res1.DowntimeSec <= 0 {
		t.Errorf("reboots/downtime not recorded: %+v", res1)
	}
	if res1.Completed != res1.Nodes {
		t.Errorf("churn run did not complete: %d/%d nodes", res1.Completed, res1.Nodes)
	}
	if !res1.ImagesOK {
		t.Error("reassembled images differ from original")
	}

	// Different seeds draw different churn plans and must diverge.
	_, trace3 := traceRun(t, churnScenario(43))
	if trace1 == trace3 {
		t.Error("different seeds produced identical packet traces under churn")
	}
}

// TestChurnSweepWorkerInvariance checks the harness contract on the churn
// grid: the JSONL record stream is byte-identical for any worker count, and
// the sweep's fault metrics are live.
func TestChurnSweepWorkerInvariance(t *testing.T) {
	horizon := 3600 * sim.Second
	entries := churnEntries(smallParams(), 2*1024, 3, []float64{90}, 0.05, horizon, 2, 5)

	runOnce := func(workers int) ([]AvgResult, []byte) {
		var buf bytes.Buffer
		avgs, err := RunGrid("churn", entries, harness.Config{Workers: workers}, harness.NewJSONLSink(&buf))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return avgs, buf.Bytes()
	}
	avgs1, serial := runOnce(1)
	avgs4, parallel := runOnce(4)

	if !bytes.Equal(serial, parallel) {
		t.Error("JSONL records differ between 1 and 4 workers")
	}
	for i := range avgs1 {
		if avgs1[i] != avgs4[i] {
			t.Errorf("entry %d averages differ between worker counts:\n %+v\n %+v", i, avgs1[i], avgs4[i])
		}
	}
	crashes := 0.0
	for _, a := range avgs1 {
		crashes += a.Crashes
	}
	if crashes == 0 {
		t.Error("churn sweep recorded no crashes")
	}
}

// TestCrashMidPageRecovery is the flash-vs-RAM acceptance test: a node
// crashed in the middle of assembling a page keeps its flash-resident
// completed units, loses exactly the partial page, and after reboot
// re-fetches only the interrupted unit (visible in the re-fetch metric)
// before completing with a byte-correct image.
func TestCrashMidPageRecovery(t *testing.T) {
	s := Scenario{
		Protocol:  LRSeluge,
		ImageSize: 4 * 1024,
		Params:    smallParams(),
		Receivers: 2,
		Seed:      11,
	}
	e, err := build(s)
	if err != nil {
		t.Fatal(err)
	}
	ov := e.nw.InstallFaultOverlay()
	fe, err := fault.NewEngine(e.eng, ov)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range e.nodes {
		fe.Register(int(n.ID()), n)
	}
	for _, n := range e.nodes {
		n.Start()
	}

	// Step the simulation until node 1 is mid-page: at least one image page
	// complete (units 0=sig, 1=M0, 2..=pages) plus a partial next unit.
	h := e.nodes[1].Handler()
	partial := func() int {
		unit := h.CompleteUnits()
		if total := h.TotalUnits(); total > 0 && unit >= total {
			return 0
		}
		held := 0
		for idx := 0; idx < h.PacketsInUnit(unit); idx++ {
			if h.HasPacket(unit, idx) {
				held++
			}
		}
		return held
	}
	// Step over absolute 100 ms targets: Run only advances the clock through
	// executed events, so stepping from Now() would stall before the first
	// scheduled event.
	horizon := 3600 * sim.Second
	for at := 100 * sim.Millisecond; at < horizon; at += 100 * sim.Millisecond {
		e.eng.Run(at)
		if h.CompleteUnits() >= 3 && partial() > 0 {
			break
		}
	}
	flashBefore, ramBefore := h.CompleteUnits(), partial()
	if flashBefore < 3 || ramBefore == 0 {
		t.Fatalf("never reached a mid-page state: complete=%d partial=%d", flashBefore, ramBefore)
	}

	crashAt := e.eng.Now() + sim.Millisecond
	plan := &fault.Plan{Name: "mid-page-crash", Events: []fault.Event{
		{AtSec: crashAt.Seconds(), Kind: fault.NodeCrash, Node: 1},
		{AtSec: (crashAt + 5*sim.Second).Seconds(), Kind: fault.NodeReboot, Node: 1},
	}}
	if err := fe.Install(plan); err != nil {
		t.Fatal(err)
	}

	// Just past the crash: flash retained, RAM wiped.
	e.eng.Run(crashAt + 2*sim.Millisecond)
	if got := e.col.Crashes(); got != 1 {
		t.Fatalf("Crashes = %d, want 1", got)
	}
	if got := h.CompleteUnits(); got != flashBefore {
		t.Fatalf("flash-resident units changed across crash: %d -> %d", flashBefore, got)
	}
	if got := partial(); got != 0 {
		t.Fatalf("partial unit survived the crash: %d packets", got)
	}
	if got := e.col.CrashLostPkts(); got != int64(ramBefore) {
		t.Fatalf("CrashLostPkts = %d, want %d", got, ramBefore)
	}

	// Run to the end: the node recovers, re-fetching only the interrupted
	// unit.
	e.eng.Run(horizon)
	if got := e.col.Completions(); got != len(e.nodes) {
		t.Fatalf("only %d/%d nodes completed after the crash", got, len(e.nodes))
	}
	if got := e.col.RefetchedPkts(); got == 0 {
		t.Fatal("no re-fetched packets recorded for the interrupted unit")
	} else if got > int64(h.PacketsInUnit(flashBefore)) {
		t.Fatalf("RefetchedPkts = %d exceeds the interrupted unit's packet count %d", got, h.PacketsInUnit(flashBefore))
	}
	if e.col.Reboots() != 1 || e.col.TotalDowntime() <= 0 {
		t.Fatalf("reboot accounting wrong: reboots=%d downtime=%v", e.col.Reboots(), e.col.TotalDowntime())
	}
	if e.col.MeanRecoveryLatencySec() <= 0 {
		t.Fatal("recovery latency not recorded")
	}
	for i, r := range e.handlers {
		got, err := r.ReassembledImage(len(e.imageData))
		if err != nil || !bytes.Equal(got, e.imageData) {
			t.Fatalf("node %d image mismatch after recovery: %v", i, err)
		}
	}
}

// TestPartitionHealCompletion checks the partition fault end to end: while
// the network is split the isolated receiver makes no progress (the overlay
// blocks and counts cross-cell deliveries); after the heal it completes.
func TestPartitionHealCompletion(t *testing.T) {
	horizon := 3600 * sim.Second
	res, err := Run(Scenario{
		Protocol:  LRSeluge,
		ImageSize: 2 * 1024,
		Params:    smallParams(),
		Receivers: 2,
		Seed:      17,
		Horizon:   horizon,
		Faults: &fault.Plan{Name: "split", Events: []fault.Event{
			{AtSec: 0.5, Kind: fault.Partition, Groups: [][]int{{0, 1}, {2}}},
			{AtSec: 60, Kind: fault.Heal},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Nodes || !res.ImagesOK {
		t.Fatalf("network did not recover from the partition: %+v", res)
	}
	if res.FaultDrops == 0 {
		t.Error("partition blocked no deliveries; the test is vacuous")
	}
	if res.Latency.Seconds() < 60 {
		t.Errorf("completion at %vs predates the heal at 60s", res.Latency.Seconds())
	}
}
