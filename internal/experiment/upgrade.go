package experiment

import (
	"bytes"
	"fmt"

	"lrseluge/internal/core"
	"lrseluge/internal/crypt/puzzle"
	"lrseluge/internal/crypt/sign"
	"lrseluge/internal/dissem"
	"lrseluge/internal/image"
	"lrseluge/internal/metrics"
	"lrseluge/internal/packet"
	"lrseluge/internal/radio"
	"lrseluge/internal/sim"
	"lrseluge/internal/topo"
)

// UpgradeResult reports a secure version-upgrade experiment: a network in
// steady state on version 1 is reprogrammed to version 2.
type UpgradeResult struct {
	Nodes int

	// V1Latency is the initial dissemination latency of version 1.
	V1Latency sim.Time
	// UpgradeLatency is the time from injecting version 2 at the base
	// station until every node runs it.
	UpgradeLatency sim.Time
	// UpgradeBytes is the communication spent on the upgrade phase.
	UpgradeBytes int64
	// Upgraded counts nodes that completed version 2.
	Upgraded int
	// ImagesOK is true when every node's version-2 image matches.
	ImagesOK bool
	// SigVerifications across both phases (each node verifies one
	// signature per version).
	SigVerifications int64
}

// VersionUpgrade disseminates a version-1 image with LR-Seluge, then
// injects a version-2 image at the base station and measures the secure
// upgrade: stale nodes only discard their state after the new version's
// signature (bound to the puzzle key chain) verifies.
func VersionUpgrade(params image.Params, imageSize, receivers int, lossP float64, seed int64) (UpgradeResult, error) {
	var out UpgradeResult
	if err := params.Validate(); err != nil {
		return out, err
	}
	keyPair, err := sign.GenerateDeterministic(seed ^ 0xec)
	if err != nil {
		return out, err
	}
	chain, err := puzzle.NewChain([]byte("lrseluge-upgrade"), 8)
	if err != nil {
		return out, err
	}
	pp := puzzle.Params{Strength: 8}

	imgV1 := image.Random(imageSize, seed^0x11)
	imgV2 := image.Random(imageSize, seed^0x22)
	objV1, err := core.Build(core.BuildInput{Version: 1, Image: imgV1, Params: params, Key: keyPair, Chain: chain, Puzzle: pp})
	if err != nil {
		return out, err
	}
	objV2, err := core.Build(core.BuildInput{Version: 2, Image: imgV2, Params: params, Key: keyPair, Chain: chain, Puzzle: pp})
	if err != nil {
		return out, err
	}

	eng := sim.New()
	col := metrics.New()
	graph, err := topo.Complete(receivers + 1)
	if err != nil {
		return out, err
	}
	var loss radio.LossModel = radio.NoLoss{}
	if lossP > 0 {
		loss = radio.Bernoulli{P: lossP}
	}
	nw, err := radio.New(eng, graph, loss, radio.DefaultConfig(), col, seed^0x5eed)
	if err != nil {
		return out, err
	}

	newSigCtx := func() *dissem.SigContext {
		return &dissem.SigContext{Pub: keyPair.Public(), Commitment: chain.Commitment(), Puzzle: pp, Col: col}
	}

	numNodes := receivers + 1
	out.Nodes = numNodes
	nodes := make([]*dissem.Node, numNodes)
	handlers := make([]func() *core.Handler, numNodes) // current handler accessor

	completedV1 := 0
	completedV2 := 0
	cfg := dissem.DefaultConfig()
	for id := 0; id < numNodes; id++ {
		var h *core.Handler
		if id == 0 {
			h = core.Preload(objV1, newSigCtx())
		} else {
			h, err = core.NewHandler(1, params, newSigCtx())
			if err != nil {
				return out, err
			}
		}
		node, err := dissem.NewNode(packet.NodeID(id), nw, cfg, h, h.NewPolicy(), seed+int64(id)*7919)
		if err != nil {
			return out, err
		}
		node.SetUpgrader(func(version uint16) (dissem.ObjectHandler, dissem.TxPolicy, error) {
			nh, err := core.NewHandler(version, params, newSigCtx())
			if err != nil {
				return nil, nil, err
			}
			return nh, nh.NewPolicy(), nil
		})
		node.SetOnComplete(func(packet.NodeID, sim.Time) {
			switch node.Handler().Version() {
			case 1:
				completedV1++
				if completedV1 == numNodes {
					eng.Stop()
				}
			case 2:
				completedV2++
				if completedV2 == numNodes {
					eng.Stop()
				}
			}
		})
		nodes[id] = node
		handlers[id] = func() *core.Handler { return node.Handler().(*core.Handler) }
	}

	// Phase 1: disseminate version 1.
	for _, n := range nodes {
		n.Start()
	}
	horizon := 4 * 3600 * sim.Second
	eng.Run(horizon)
	if completedV1 != numNodes {
		return out, fmt.Errorf("experiment: version 1 incomplete (%d/%d)", completedV1, numNodes)
	}
	out.V1Latency = col.Latency()

	// Phase 2: inject version 2 at the base station.
	upgradeStart := eng.Now()
	bytesBefore := col.TotalBytes()
	h2 := core.Preload(objV2, newSigCtx())
	nodes[0].Upgrade(h2, h2.NewPolicy())
	completedV2 = 1 // the base is already complete on v2
	eng.Run(upgradeStart + horizon)

	out.Upgraded = completedV2
	out.UpgradeLatency = eng.Now() - upgradeStart
	out.UpgradeBytes = col.TotalBytes() - bytesBefore
	out.SigVerifications = col.SigVerifications()
	out.ImagesOK = true
	for id := 0; id < numNodes; id++ {
		h := handlers[id]()
		if h.Version() != 2 {
			out.ImagesOK = false
			continue
		}
		got, err := h.ReassembledImage(len(imgV2))
		if err != nil || !bytes.Equal(got, imgV2) {
			out.ImagesOK = false
		}
	}
	return out, nil
}
