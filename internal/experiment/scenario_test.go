package experiment

import (
	"testing"

	"lrseluge/internal/image"
	"lrseluge/internal/sim"
)

// smallParams keeps unit counts tiny so integration tests run fast.
func smallParams() image.Params {
	return image.Params{PacketPayload: 72, K: 8, N: 12}
}

func TestRunCompletesAllProtocolsNoLoss(t *testing.T) {
	for _, proto := range []Protocol{Deluge, Seluge, LRSeluge} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			res, err := Run(Scenario{
				Protocol:  proto,
				ImageSize: 2048,
				Params:    smallParams(),
				Receivers: 4,
				Seed:      7,
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Completed != res.Nodes {
				t.Fatalf("completed %d of %d nodes; latency=%v", res.Completed, res.Nodes, res.Latency)
			}
			if !res.ImagesOK {
				t.Fatalf("image verification failed")
			}
			if res.DataPkts == 0 {
				t.Fatalf("no data packets recorded")
			}
		})
	}
}

func TestRunCompletesUnderLoss(t *testing.T) {
	for _, proto := range []Protocol{Seluge, LRSeluge} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			res, err := Run(Scenario{
				Protocol:  proto,
				ImageSize: 2048,
				Params:    smallParams(),
				Receivers: 5,
				LossP:     0.2,
				Seed:      11,
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Completed != res.Nodes {
				t.Fatalf("completed %d of %d nodes; latency=%v", res.Completed, res.Nodes, res.Latency)
			}
			if !res.ImagesOK {
				t.Fatalf("image verification failed")
			}
		})
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	s := Scenario{Protocol: LRSeluge, ImageSize: 1024, Params: smallParams(), Receivers: 3, LossP: 0.1, Seed: 42}
	a, err := Run(s)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := Run(s)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a != b {
		t.Fatalf("same seed produced different results:\n%+v\n%+v", a, b)
	}
}

func TestLRBeatsSelugeAtHighLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run comparison")
	}
	base := Scenario{ImageSize: 4096, Params: smallParams(), Receivers: 10, LossP: 0.3, Seed: 3}
	sel := base
	sel.Protocol = Seluge
	lr := base
	lr.Protocol = LRSeluge
	rs, err := Run(sel)
	if err != nil {
		t.Fatalf("seluge: %v", err)
	}
	rl, err := Run(lr)
	if err != nil {
		t.Fatalf("lr-seluge: %v", err)
	}
	if rs.Completed != rs.Nodes || rl.Completed != rl.Nodes {
		t.Fatalf("incomplete runs: seluge %d/%d, lr %d/%d", rs.Completed, rs.Nodes, rl.Completed, rl.Nodes)
	}
	if rl.DataPkts >= rs.DataPkts {
		t.Errorf("expected LR-Seluge to send fewer data packets at p=0.3: lr=%d seluge=%d", rl.DataPkts, rs.DataPkts)
	}
}

func TestHorizonCapsRuntime(t *testing.T) {
	res, err := Run(Scenario{
		Protocol:  Seluge,
		ImageSize: 4096,
		Params:    smallParams(),
		Receivers: 4,
		LossP:     0.6, // brutal: may not finish within the tiny horizon
		Seed:      5,
		Horizon:   5 * sim.Second,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Latency > 5*sim.Second {
		t.Fatalf("latency %v exceeds horizon", res.Latency)
	}
}
