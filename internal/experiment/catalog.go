package experiment

import (
	"fmt"

	"lrseluge/internal/image"
	"lrseluge/internal/radio"
	"lrseluge/internal/sim"
	"lrseluge/internal/topo"
)

// SweepSpec parameterizes a named sweep from the catalog.
type SweepSpec struct {
	// Runs is the number of seeds averaged per grid entry; must be >= 1.
	Runs int
	// Seed is the base RNG seed of every entry.
	Seed int64
	// Quick shrinks images, grids and axes for a fast smoke pass.
	Quick bool
}

// namedSweep is one catalog entry. The catalog is an ordered slice (not a
// map) so listings are deterministic.
type namedSweep struct {
	name, desc string
	build      func(SweepSpec) ([]GridEntry, error)
}

// dims picks full-scale or quick sweep dimensions.
func (s SweepSpec) dims(full, quick int) int {
	if s.Quick {
		return quick
	}
	return full
}

// imageSize is the default evaluation image (20 KB; 4 KB in quick mode).
func (s SweepSpec) imageSize() int { return s.dims(20, 4) * 1024 }

// sweepCatalog lists every named sweep, in listing order.
func sweepCatalog() []namedSweep {
	return []namedSweep{
		{
			name: "smoke",
			desc: "tiny deterministic sweep (4x4 heavy-noise grid + one-hop) for CI golden diffs",
			build: func(s SweepSpec) ([]GridEntry, error) {
				graph, err := topo.Grid(4, 4, topo.Tight)
				if err != nil {
					return nil, err
				}
				small := image.Params{PacketPayload: 72, K: 8, N: 12}
				return []GridEntry{
					{
						Name: "multihop=4x4",
						Scenario: Scenario{
							Protocol:    LRSeluge,
							ImageSize:   2 * 1024,
							Params:      small,
							Graph:       graph,
							LossFactory: func() radio.LossModel { return radio.HeavyNoise() },
							Seed:        s.Seed,
						},
						Runs: s.Runs,
					},
					{
						Name: "onehop=10",
						Scenario: Scenario{
							Protocol:  Seluge,
							ImageSize: 2 * 1024,
							Params:    small,
							Receivers: 10,
							LossP:     0.1,
							Seed:      s.Seed,
						},
						Runs: s.Runs,
					},
				}, nil
			},
		},
		{
			name: "multihop",
			desc: "Tables II: Seluge vs LR-Seluge on a tight grid under bursty noise",
			build: func(s SweepSpec) ([]GridEntry, error) {
				side := s.dims(15, 7)
				return multihopEntries(image.DefaultParams(), s.imageSize(), topo.Tight, side, side, s.Runs, s.Seed)
			},
		},
		{
			name: "multihop-medium",
			desc: "Tables III: Seluge vs LR-Seluge on a medium-density grid under bursty noise",
			build: func(s SweepSpec) ([]GridEntry, error) {
				side := s.dims(15, 7)
				return multihopEntries(image.DefaultParams(), s.imageSize(), topo.Medium, side, side, s.Runs, s.Seed)
			},
		},
		{
			name: "fig3a",
			desc: "Fig. 3(a): one-page data packets vs loss rate (N=10)",
			build: func(s SweepSpec) ([]GridEntry, error) {
				ps := []float64{0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5}
				if s.Quick {
					ps = []float64{0, 0.1, 0.2, 0.3, 0.4}
				}
				var entries []GridEntry
				for _, p := range ps {
					entries = append(entries,
						fig3Entry(Seluge, image.DefaultParams(), 10, p, s.Runs, s.Seed),
						fig3Entry(LRSeluge, image.DefaultParams(), 10, p, s.Runs, s.Seed))
				}
				return entries, nil
			},
		},
		{
			name: "fig3b",
			desc: "Fig. 3(b): one-page data packets vs receiver count (p=0.2)",
			build: func(s SweepSpec) ([]GridEntry, error) {
				ns := []int{2, 5, 10, 15, 20, 25, 30, 35, 40}
				if s.Quick {
					ns = []int{2, 10, 20, 40}
				}
				var entries []GridEntry
				for _, n := range ns {
					entries = append(entries,
						fig3Entry(Seluge, image.DefaultParams(), n, 0.2, s.Runs, s.Seed),
						fig3Entry(LRSeluge, image.DefaultParams(), n, 0.2, s.Runs, s.Seed))
				}
				return entries, nil
			},
		},
		{
			name: "fig4",
			desc: "Fig. 4: five metrics vs loss rate (N=20)",
			build: func(s SweepSpec) ([]GridEntry, error) {
				ps := []float64{0, 0.01, 0.05, 0.1, 0.2, 0.3, 0.4}
				if s.Quick {
					ps = []float64{0, 0.1, 0.3, 0.4}
				}
				return fig4Entries(image.DefaultParams(), s.imageSize(), 20, ps, s.Runs, s.Seed), nil
			},
		},
		{
			name: "fig5",
			desc: "Fig. 5: five metrics vs receiver count (p=0.1)",
			build: func(s SweepSpec) ([]GridEntry, error) {
				ns := []int{5, 10, 20, 30, 40}
				if s.Quick {
					ns = []int{5, 20, 40}
				}
				return fig5Entries(image.DefaultParams(), s.imageSize(), ns, 0.1, s.Runs, s.Seed), nil
			},
		},
		{
			name: "fig6",
			desc: "Fig. 6: LR-Seluge metrics vs erasure-coding rate n/k (k=32, N=20)",
			build: func(s SweepSpec) ([]GridEntry, error) {
				ns := []int{32, 40, 48, 56, 64, 72}
				ps := []float64{0.05, 0.1, 0.2}
				if s.Quick {
					ns = []int{32, 48, 64}
					ps = []float64{0.1}
				}
				return fig6Entries(image.DefaultParams().PacketPayload, 32, s.imageSize(), 20, ns, ps, s.Runs, s.Seed)
			},
		},
		{
			name: "ablation",
			desc: "scheduler ablation: greedy-RR vs union vs fresh-RR (§IV-D.3)",
			build: func(s SweepSpec) ([]GridEntry, error) {
				return ablationEntries(image.DefaultParams(), s.imageSize()/2, 20, 0.2, s.Runs, s.Seed), nil
			},
		},
		{
			name: "churn",
			desc: "node churn: Seluge vs LR-Seluge latency/overhead vs crash rate (flash-retained pages)",
			build: func(s SweepSpec) ([]GridEntry, error) {
				rates := []float64{6, 12, 30, 60}
				if s.Quick {
					rates = []float64{12, 60}
				}
				horizon := sim.Time(s.dims(4, 1)) * 3600 * sim.Second
				return churnEntries(image.DefaultParams(), s.imageSize(), s.dims(20, 5), rates, 0.1, horizon, s.Runs, s.Seed), nil
			},
		},
		{
			name: "outage",
			desc: "link outages: Seluge vs LR-Seluge vs base-link outage duty cycle (60 s period)",
			build: func(s SweepSpec) ([]GridEntry, error) {
				duties := []float64{0.1, 0.25, 0.5}
				if s.Quick {
					duties = []float64{0.1, 0.5}
				}
				horizon := sim.Time(s.dims(4, 1)) * 3600 * sim.Second
				return outageEntries(image.DefaultParams(), s.imageSize(), s.dims(20, 5), duties, 60*sim.Second, 0.1, horizon, s.Runs, s.Seed), nil
			},
		},
	}
}

// SweepNames returns the catalog's sweep names in listing order.
func SweepNames() []string {
	cat := sweepCatalog()
	out := make([]string, len(cat))
	for i, s := range cat {
		out[i] = s.name
	}
	return out
}

// SweepDescription returns the one-line description of a named sweep ("" if
// unknown).
func SweepDescription(name string) string {
	for _, s := range sweepCatalog() {
		if s.name == name {
			return s.desc
		}
	}
	return ""
}

// NamedSweep builds the grid entries of a catalog sweep.
func NamedSweep(name string, spec SweepSpec) ([]GridEntry, error) {
	if spec.Runs < 1 {
		return nil, fmt.Errorf("experiment: sweep %q: runs must be >= 1", name)
	}
	for _, s := range sweepCatalog() {
		if s.name == name {
			return s.build(spec)
		}
	}
	return nil, fmt.Errorf("experiment: unknown sweep %q (have %v)", name, SweepNames())
}
