package experiment

import (
	"testing"

	"lrseluge/internal/image"
)

func TestSchedulerAblation(t *testing.T) {
	params := image.Params{PacketPayload: 72, K: 8, N: 16}
	res, err := SchedulerAblation(params, 2048, 10, 0.2, 2, 31)
	if err != nil {
		t.Fatal(err)
	}
	for policy, avg := range res {
		if avg.Completed < 1 {
			t.Fatalf("%v: incomplete (%f)", policy, avg.Completed)
		}
		if !avg.ImagesOK {
			t.Fatalf("%v: image corruption", policy)
		}
	}
	greedy := res[GreedyRR]
	union := res[UnionBits]
	if greedy.DataPkts > union.DataPkts*1.1 {
		t.Errorf("greedy scheduler (%f) should not lose badly to union (%f)", greedy.DataPkts, union.DataPkts)
	}
}
