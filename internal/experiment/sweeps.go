package experiment

import (
	"fmt"
	"strconv"

	"lrseluge/internal/analysis"
	"lrseluge/internal/harness"
	"lrseluge/internal/image"
	"lrseluge/internal/radio"
	"lrseluge/internal/topo"
)

// AvgResult is a Result averaged over repeated seeds, with sample standard
// deviations for the headline metrics.
type AvgResult struct {
	Protocol   Protocol
	Runs       int
	Completed  float64 // fraction of nodes completed, averaged
	DataPkts   float64
	PageData   float64
	SnackPkts  float64
	AdvPkts    float64
	SigPkts    float64
	TotalBytes float64
	LatencySec float64
	ImagesOK   bool

	// Sample standard deviations (zero when Runs == 1).
	DataStd    float64
	BytesStd   float64
	LatencyStd float64

	// Fault-injection averages (zero when the sweep has no fault plan).
	Crashes    float64
	Refetched  float64
	FaultDrops float64
	Downtime   float64 // seconds
	Recovery   float64 // mean reboot-to-completion seconds
}

// RunAvg executes a scenario `runs` times with distinct seeds and averages
// the metrics. Runs fan out across a GOMAXPROCS-wide harness worker pool;
// the averages are bit-identical to a serial loop (see internal/harness).
func RunAvg(s Scenario, runs int) (AvgResult, error) {
	return RunAvgParallel(s, runs, 0)
}

// RunAvgParallel is RunAvg with an explicit worker count (0 = GOMAXPROCS,
// 1 = serial). On a failed run the error names the run index and seed.
func RunAvgParallel(s Scenario, runs, workers int) (AvgResult, error) {
	if runs < 1 {
		return AvgResult{}, fmt.Errorf("experiment: runs must be >= 1")
	}
	avgs, err := RunGrid("", []GridEntry{{
		Name:     s.Protocol.String(),
		Scenario: s,
		Runs:     runs,
	}}, harness.Config{Workers: workers})
	if err != nil {
		return AvgResult{}, err
	}
	return avgs[0], nil
}

// fmtFloat renders sweep-axis values for job params and entry names.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Fig3Point is one x-position of Fig. 3: analytical and simulated data-packet
// counts for transmitting ONE page to N one-hop receivers.
type Fig3Point struct {
	X              float64 // loss rate p (Fig 3a) or receiver count N (Fig 3b)
	SelugeAnalysis float64
	ACKLRAnalysis  float64
	SelugeSim      float64
	LRSim          float64
}

// fig3Entry builds the one-page scenario of Fig. 3 for one protocol: each
// protocol gets an image sized to exactly one of ITS pages, and only
// image-page data packets are counted (hash-page and signature excluded),
// matching the paper's "transmission of one page" setup (§VI-A).
func fig3Entry(proto Protocol, params image.Params, receivers int, p float64, runs int, seed int64) GridEntry {
	size := params.SelugePageBytes()
	if proto == LRSeluge {
		size = params.LRPageBytes()
	}
	return GridEntry{
		Name: fmt.Sprintf("p=%s/N=%d", fmtFloat(p), receivers),
		Params: []harness.Param{
			{Key: "p", Value: fmtFloat(p)},
			{Key: "receivers", Value: strconv.Itoa(receivers)},
		},
		Scenario: Scenario{
			Protocol:  proto,
			ImageSize: size,
			Params:    params,
			Receivers: receivers,
			LossP:     p,
			Seed:      seed,
		},
		Runs: runs,
	}
}

// fig3Assemble turns the per-(x, protocol) averages back into Fig3Points,
// enforcing the full-completion requirement of the one-page measurement.
func fig3Assemble(xs []float64, avgs []AvgResult, points []Fig3Point) ([]Fig3Point, error) {
	for i := range xs {
		sel, lr := avgs[2*i], avgs[2*i+1]
		for _, avg := range []AvgResult{sel, lr} {
			if avg.Completed < 1 {
				return nil, fmt.Errorf("experiment: fig3 run incomplete (%.2f) proto=%v x=%v", avg.Completed, avg.Protocol, xs[i])
			}
		}
		points[i].SelugeSim = sel.PageData
		points[i].LRSim = lr.PageData
	}
	return points, nil
}

// Fig3LossSweep reproduces Fig. 3(a): data packets for one page versus the
// packet-loss rate, with N receivers.
func Fig3LossSweep(params image.Params, receivers int, ps []float64, runs int, seed int64) ([]Fig3Point, error) {
	points := make([]Fig3Point, len(ps))
	entries := make([]GridEntry, 0, 2*len(ps))
	for i, p := range ps {
		points[i].X = p
		var err error
		if points[i].SelugeAnalysis, err = analysis.SelugeDataTx(params.K, receivers, p); err != nil {
			return nil, err
		}
		if points[i].ACKLRAnalysis, err = analysis.ACKBasedLRDataTx(params.K, params.N, params.K, receivers, p); err != nil {
			return nil, err
		}
		entries = append(entries,
			fig3Entry(Seluge, params, receivers, p, runs, seed),
			fig3Entry(LRSeluge, params, receivers, p, runs, seed))
	}
	avgs, err := RunGrid("fig3a", entries, harness.Config{})
	if err != nil {
		return nil, err
	}
	return fig3Assemble(ps, avgs, points)
}

// Fig3ReceiverSweep reproduces Fig. 3(b): data packets for one page versus
// the number of receivers, at loss rate p.
func Fig3ReceiverSweep(params image.Params, ns []int, p float64, runs int, seed int64) ([]Fig3Point, error) {
	points := make([]Fig3Point, len(ns))
	xs := make([]float64, len(ns))
	entries := make([]GridEntry, 0, 2*len(ns))
	for i, n := range ns {
		xs[i] = float64(n)
		points[i].X = float64(n)
		var err error
		if points[i].SelugeAnalysis, err = analysis.SelugeDataTx(params.K, n, p); err != nil {
			return nil, err
		}
		if points[i].ACKLRAnalysis, err = analysis.ACKBasedLRDataTx(params.K, params.N, params.K, n, p); err != nil {
			return nil, err
		}
		entries = append(entries,
			fig3Entry(Seluge, params, n, p, runs, seed),
			fig3Entry(LRSeluge, params, n, p, runs, seed))
	}
	avgs, err := RunGrid("fig3b", entries, harness.Config{})
	if err != nil {
		return nil, err
	}
	return fig3Assemble(xs, avgs, points)
}

// ComparisonPoint is one x-position of Figs. 4 and 5: all five paper metrics
// for Seluge and LR-Seluge.
type ComparisonPoint struct {
	X      float64
	Seluge AvgResult
	LR     AvgResult
}

// comparisonEntries expands one x-position of a Seluge-vs-LR-Seluge sweep
// into its two grid entries (Seluge first).
func comparisonEntries(name string, params []harness.Param, base Scenario, runs int) []GridEntry {
	sel := base
	sel.Protocol = Seluge
	lr := base
	lr.Protocol = LRSeluge
	return []GridEntry{
		{Name: name, Params: params, Scenario: sel, Runs: runs},
		{Name: name, Params: params, Scenario: lr, Runs: runs},
	}
}

// comparisonAssemble pairs the per-entry averages back into points.
func comparisonAssemble(xs []float64, avgs []AvgResult) []ComparisonPoint {
	out := make([]ComparisonPoint, len(xs))
	for i, x := range xs {
		out[i] = ComparisonPoint{X: x, Seluge: avgs[2*i], LR: avgs[2*i+1]}
	}
	return out
}

// fig4Entries builds the loss-rate sweep grid of Fig. 4.
func fig4Entries(params image.Params, imageSize, receivers int, ps []float64, runs int, seed int64) []GridEntry {
	entries := make([]GridEntry, 0, 2*len(ps))
	for _, p := range ps {
		entries = append(entries, comparisonEntries(
			"p="+fmtFloat(p),
			[]harness.Param{{Key: "p", Value: fmtFloat(p)}},
			Scenario{ImageSize: imageSize, Params: params, Receivers: receivers, LossP: p, Seed: seed},
			runs)...)
	}
	return entries
}

// Fig4LossImpact reproduces Fig. 4(a)-(e): the five metrics versus the
// packet-loss rate for a 20 KB image and N = 20 one-hop receivers (§VI-B.1).
func Fig4LossImpact(params image.Params, imageSize, receivers int, ps []float64, runs int, seed int64) ([]ComparisonPoint, error) {
	avgs, err := RunGrid("fig4", fig4Entries(params, imageSize, receivers, ps, runs, seed), harness.Config{})
	if err != nil {
		return nil, err
	}
	return comparisonAssemble(ps, avgs), nil
}

// fig5Entries builds the receiver-count sweep grid of Fig. 5.
func fig5Entries(params image.Params, imageSize int, receivers []int, p float64, runs int, seed int64) []GridEntry {
	entries := make([]GridEntry, 0, 2*len(receivers))
	for _, n := range receivers {
		entries = append(entries, comparisonEntries(
			"N="+strconv.Itoa(n),
			[]harness.Param{{Key: "receivers", Value: strconv.Itoa(n)}},
			Scenario{ImageSize: imageSize, Params: params, Receivers: n, LossP: p, Seed: seed},
			runs)...)
	}
	return entries
}

// Fig5DensityImpact reproduces Fig. 5(a)-(e): the five metrics versus the
// number of local receivers at p = 0.1 (§VI-B.2).
func Fig5DensityImpact(params image.Params, imageSize int, receivers []int, p float64, runs int, seed int64) ([]ComparisonPoint, error) {
	avgs, err := RunGrid("fig5", fig5Entries(params, imageSize, receivers, p, runs, seed), harness.Config{})
	if err != nil {
		return nil, err
	}
	xs := make([]float64, len(receivers))
	for i, n := range receivers {
		xs[i] = float64(n)
	}
	return comparisonAssemble(xs, avgs), nil
}

// RatePoint is one (n, p) cell of Fig. 6: LR-Seluge's five metrics at a
// given erasure-coding rate n/k.
type RatePoint struct {
	N    int
	P    float64
	Rate float64
	LR   AvgResult
}

// fig6Entries builds the coding-rate grid of Fig. 6 (outer loop p, inner n,
// matching the figure's presentation order).
func fig6Entries(payload, k, imageSize, receivers int, ns []int, ps []float64, runs int, seed int64) ([]GridEntry, error) {
	entries := make([]GridEntry, 0, len(ns)*len(ps))
	for _, p := range ps {
		for _, n := range ns {
			params := image.Params{PacketPayload: payload, K: k, N: n}
			if err := params.Validate(); err != nil {
				return nil, err
			}
			entries = append(entries, GridEntry{
				Name: fmt.Sprintf("p=%s/n=%d", fmtFloat(p), n),
				Params: []harness.Param{
					{Key: "p", Value: fmtFloat(p)},
					{Key: "n", Value: strconv.Itoa(n)},
				},
				Scenario: Scenario{
					Protocol:  LRSeluge,
					ImageSize: imageSize,
					Params:    params,
					Receivers: receivers,
					LossP:     p,
					Seed:      seed,
				},
				Runs: runs,
			})
		}
	}
	return entries, nil
}

// Fig6RateImpact reproduces Fig. 6(a)-(e): the impact of the erasure-coding
// rate n/k on LR-Seluge, k fixed (paper fixes k = 32), under several loss
// rates (§VI-B.3).
func Fig6RateImpact(payload, k, imageSize, receivers int, ns []int, ps []float64, runs int, seed int64) ([]RatePoint, error) {
	entries, err := fig6Entries(payload, k, imageSize, receivers, ns, ps, runs, seed)
	if err != nil {
		return nil, err
	}
	avgs, err := RunGrid("fig6", entries, harness.Config{})
	if err != nil {
		return nil, err
	}
	out := make([]RatePoint, 0, len(entries))
	i := 0
	for _, p := range ps {
		for _, n := range ns {
			out = append(out, RatePoint{N: n, P: p, Rate: float64(n) / float64(k), LR: avgs[i]})
			i++
		}
	}
	return out, nil
}

// multihopEntries builds the Seluge-vs-LR-Seluge grid comparison of Tables
// II and III, with a fresh bursty channel per run via LossFactory.
func multihopEntries(params image.Params, imageSize int, density topo.GridDensity, rows, cols, runs int, seed int64) ([]GridEntry, error) {
	graph, err := topo.Grid(rows, cols, density)
	if err != nil {
		return nil, err
	}
	if !graph.Connected() {
		return nil, fmt.Errorf("experiment: %v grid is not connected", density)
	}
	base := Scenario{
		ImageSize:   imageSize,
		Params:      params,
		Graph:       graph,
		Seed:        seed,
		LossFactory: func() radio.LossModel { return radio.HeavyNoise() },
	}
	name := fmt.Sprintf("grid=%dx%d/density=%v", rows, cols, density)
	params2 := []harness.Param{
		{Key: "grid", Value: fmt.Sprintf("%dx%d", rows, cols)},
		{Key: "density", Value: fmt.Sprintf("%v", density)},
	}
	return comparisonEntries(name, params2, base, runs), nil
}

// MultiHopComparison reproduces Tables II and III: Seluge versus LR-Seluge
// on a 15x15 grid with bursty (Gilbert-Elliott) noise substituting for the
// paper's meyer-heavy.txt trace (§VI-C, DESIGN.md §5).
func MultiHopComparison(params image.Params, imageSize int, density topo.GridDensity, rows, cols, runs int, seed int64) (selugeRes, lrRes AvgResult, err error) {
	entries, err := multihopEntries(params, imageSize, density, rows, cols, runs, seed)
	if err != nil {
		return AvgResult{}, AvgResult{}, err
	}
	avgs, err := RunGrid("multihop", entries, harness.Config{})
	if err != nil {
		return AvgResult{}, AvgResult{}, err
	}
	return avgs[0], avgs[1], nil
}
