package experiment

import (
	"fmt"
	"math"

	"lrseluge/internal/analysis"
	"lrseluge/internal/image"
	"lrseluge/internal/radio"
	"lrseluge/internal/topo"
)

// AvgResult is a Result averaged over repeated seeds, with sample standard
// deviations for the headline metrics.
type AvgResult struct {
	Protocol   Protocol
	Runs       int
	Completed  float64 // fraction of nodes completed, averaged
	DataPkts   float64
	PageData   float64
	SnackPkts  float64
	AdvPkts    float64
	SigPkts    float64
	TotalBytes float64
	LatencySec float64
	ImagesOK   bool

	// Sample standard deviations (zero when Runs == 1).
	DataStd    float64
	BytesStd   float64
	LatencyStd float64
}

// RunAvg executes a scenario `runs` times with distinct seeds and averages
// the metrics.
func RunAvg(s Scenario, runs int) (AvgResult, error) {
	if runs < 1 {
		return AvgResult{}, fmt.Errorf("experiment: runs must be >= 1")
	}
	out := AvgResult{Protocol: s.Protocol, Runs: runs, ImagesOK: true}
	data := make([]float64, 0, runs)
	bytesSamples := make([]float64, 0, runs)
	latency := make([]float64, 0, runs)
	for i := 0; i < runs; i++ {
		sc := s
		sc.Seed = s.Seed + int64(i)*1000003
		r, err := Run(sc)
		if err != nil {
			return AvgResult{}, err
		}
		out.Completed += float64(r.Completed) / float64(r.Nodes)
		out.DataPkts += float64(r.DataPkts)
		out.PageData += float64(r.PageDataPkts)
		out.SnackPkts += float64(r.SnackPkts)
		out.AdvPkts += float64(r.AdvPkts)
		out.SigPkts += float64(r.SigPkts)
		out.TotalBytes += float64(r.TotalBytes)
		out.LatencySec += r.Latency.Seconds()
		out.ImagesOK = out.ImagesOK && r.ImagesOK
		data = append(data, float64(r.DataPkts))
		bytesSamples = append(bytesSamples, float64(r.TotalBytes))
		latency = append(latency, r.Latency.Seconds())
	}
	f := float64(runs)
	out.Completed /= f
	out.DataPkts /= f
	out.PageData /= f
	out.SnackPkts /= f
	out.AdvPkts /= f
	out.SigPkts /= f
	out.TotalBytes /= f
	out.LatencySec /= f
	out.DataStd = sampleStd(data, out.DataPkts)
	out.BytesStd = sampleStd(bytesSamples, out.TotalBytes)
	out.LatencyStd = sampleStd(latency, out.LatencySec)
	return out, nil
}

// sampleStd returns the sample standard deviation around a known mean.
func sampleStd(xs []float64, mean float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Fig3Point is one x-position of Fig. 3: analytical and simulated data-packet
// counts for transmitting ONE page to N one-hop receivers.
type Fig3Point struct {
	X              float64 // loss rate p (Fig 3a) or receiver count N (Fig 3b)
	SelugeAnalysis float64
	ACKLRAnalysis  float64
	SelugeSim      float64
	LRSim          float64
}

// fig3Sim measures simulated data-packet transmissions for a single page.
// Each protocol gets an image sized to exactly one of ITS pages, and only
// image-page data packets are counted (hash-page and signature excluded),
// matching the paper's "transmission of one page" setup (§VI-A).
func fig3Sim(proto Protocol, params image.Params, receivers int, p float64, runs int, seed int64) (float64, error) {
	size := params.SelugePageBytes()
	if proto == LRSeluge {
		size = params.LRPageBytes()
	}
	avg, err := RunAvg(Scenario{
		Protocol:  proto,
		ImageSize: size,
		Params:    params,
		Receivers: receivers,
		LossP:     p,
		Seed:      seed,
	}, runs)
	if err != nil {
		return 0, err
	}
	if avg.Completed < 1 {
		return 0, fmt.Errorf("experiment: fig3 run incomplete (%.2f) proto=%v p=%.2f", avg.Completed, proto, p)
	}
	return avg.PageData, nil
}

// Fig3LossSweep reproduces Fig. 3(a): data packets for one page versus the
// packet-loss rate, with N receivers.
func Fig3LossSweep(params image.Params, receivers int, ps []float64, runs int, seed int64) ([]Fig3Point, error) {
	out := make([]Fig3Point, 0, len(ps))
	for _, p := range ps {
		pt := Fig3Point{X: p}
		var err error
		if pt.SelugeAnalysis, err = analysis.SelugeDataTx(params.K, receivers, p); err != nil {
			return nil, err
		}
		if pt.ACKLRAnalysis, err = analysis.ACKBasedLRDataTx(params.K, params.N, params.K, receivers, p); err != nil {
			return nil, err
		}
		if pt.SelugeSim, err = fig3Sim(Seluge, params, receivers, p, runs, seed); err != nil {
			return nil, err
		}
		if pt.LRSim, err = fig3Sim(LRSeluge, params, receivers, p, runs, seed); err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// Fig3ReceiverSweep reproduces Fig. 3(b): data packets for one page versus
// the number of receivers, at loss rate p.
func Fig3ReceiverSweep(params image.Params, ns []int, p float64, runs int, seed int64) ([]Fig3Point, error) {
	out := make([]Fig3Point, 0, len(ns))
	for _, n := range ns {
		pt := Fig3Point{X: float64(n)}
		var err error
		if pt.SelugeAnalysis, err = analysis.SelugeDataTx(params.K, n, p); err != nil {
			return nil, err
		}
		if pt.ACKLRAnalysis, err = analysis.ACKBasedLRDataTx(params.K, params.N, params.K, n, p); err != nil {
			return nil, err
		}
		if pt.SelugeSim, err = fig3Sim(Seluge, params, n, p, runs, seed); err != nil {
			return nil, err
		}
		if pt.LRSim, err = fig3Sim(LRSeluge, params, n, p, runs, seed); err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// ComparisonPoint is one x-position of Figs. 4 and 5: all five paper metrics
// for Seluge and LR-Seluge.
type ComparisonPoint struct {
	X      float64
	Seluge AvgResult
	LR     AvgResult
}

// Fig4LossImpact reproduces Fig. 4(a)-(e): the five metrics versus the
// packet-loss rate for a 20 KB image and N = 20 one-hop receivers (§VI-B.1).
func Fig4LossImpact(params image.Params, imageSize, receivers int, ps []float64, runs int, seed int64) ([]ComparisonPoint, error) {
	out := make([]ComparisonPoint, 0, len(ps))
	for _, p := range ps {
		base := Scenario{ImageSize: imageSize, Params: params, Receivers: receivers, LossP: p, Seed: seed}
		pt := ComparisonPoint{X: p}
		var err error
		sc := base
		sc.Protocol = Seluge
		if pt.Seluge, err = RunAvg(sc, runs); err != nil {
			return nil, err
		}
		sc = base
		sc.Protocol = LRSeluge
		if pt.LR, err = RunAvg(sc, runs); err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// Fig5DensityImpact reproduces Fig. 5(a)-(e): the five metrics versus the
// number of local receivers at p = 0.1 (§VI-B.2).
func Fig5DensityImpact(params image.Params, imageSize int, receivers []int, p float64, runs int, seed int64) ([]ComparisonPoint, error) {
	out := make([]ComparisonPoint, 0, len(receivers))
	for _, n := range receivers {
		base := Scenario{ImageSize: imageSize, Params: params, Receivers: n, LossP: p, Seed: seed}
		pt := ComparisonPoint{X: float64(n)}
		var err error
		sc := base
		sc.Protocol = Seluge
		if pt.Seluge, err = RunAvg(sc, runs); err != nil {
			return nil, err
		}
		sc = base
		sc.Protocol = LRSeluge
		if pt.LR, err = RunAvg(sc, runs); err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// RatePoint is one (n, p) cell of Fig. 6: LR-Seluge's five metrics at a
// given erasure-coding rate n/k.
type RatePoint struct {
	N    int
	P    float64
	Rate float64
	LR   AvgResult
}

// Fig6RateImpact reproduces Fig. 6(a)-(e): the impact of the erasure-coding
// rate n/k on LR-Seluge, k fixed (paper fixes k = 32), under several loss
// rates (§VI-B.3).
func Fig6RateImpact(payload, k, imageSize, receivers int, ns []int, ps []float64, runs int, seed int64) ([]RatePoint, error) {
	out := make([]RatePoint, 0, len(ns)*len(ps))
	for _, p := range ps {
		for _, n := range ns {
			params := image.Params{PacketPayload: payload, K: k, N: n}
			if err := params.Validate(); err != nil {
				return nil, err
			}
			avg, err := RunAvg(Scenario{
				Protocol:  LRSeluge,
				ImageSize: imageSize,
				Params:    params,
				Receivers: receivers,
				LossP:     p,
				Seed:      seed,
			}, runs)
			if err != nil {
				return nil, err
			}
			out = append(out, RatePoint{N: n, P: p, Rate: float64(n) / float64(k), LR: avg})
		}
	}
	return out, nil
}

// MultiHopComparison reproduces Tables II and III: Seluge versus LR-Seluge
// on a 15x15 grid with bursty (Gilbert-Elliott) noise substituting for the
// paper's meyer-heavy.txt trace (§VI-C, DESIGN.md §5).
func MultiHopComparison(params image.Params, imageSize int, density topo.GridDensity, rows, cols, runs int, seed int64) (selugeRes, lrRes AvgResult, err error) {
	graph, err := topo.Grid(rows, cols, density)
	if err != nil {
		return AvgResult{}, AvgResult{}, err
	}
	if !graph.Connected() {
		return AvgResult{}, AvgResult{}, fmt.Errorf("experiment: %v grid is not connected", density)
	}
	base := Scenario{
		ImageSize: imageSize,
		Params:    params,
		Graph:     graph,
		Seed:      seed,
	}
	base.LossFactory = func() radio.LossModel { return radio.HeavyNoise() }
	sc := base
	sc.Protocol = Seluge
	selugeRes, err = RunAvg(sc, runs)
	if err != nil {
		return AvgResult{}, AvgResult{}, err
	}
	sc = base
	sc.Protocol = LRSeluge
	lrRes, err = RunAvg(sc, runs)
	if err != nil {
		return AvgResult{}, AvgResult{}, err
	}
	return selugeRes, lrRes, nil
}
