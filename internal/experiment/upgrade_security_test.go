package experiment

import (
	"testing"

	"lrseluge/internal/adversary"
	"lrseluge/internal/core"
	"lrseluge/internal/crypt/puzzle"
	"lrseluge/internal/crypt/sign"
	"lrseluge/internal/dissem"
	"lrseluge/internal/image"
	"lrseluge/internal/packet"
	"lrseluge/internal/sim"
)

// TestForgedUpgradeCannotWipeNodes mounts the nastiest version of the
// upgrade attack: an adversary floods signature packets claiming a NEWER
// version. It cannot know the puzzle chain key for that version (the chain
// is one-way), so the weak authenticator must reject every packet and no
// node may abandon its current image.
func TestForgedUpgradeCannotWipeNodes(t *testing.T) {
	params := image.Params{PacketPayload: 72, K: 8, N: 12}
	s := Scenario{
		Protocol:   LRSeluge,
		ImageSize:  2048,
		Params:     params,
		Receivers:  4,
		LossP:      0,
		ExtraNodes: 1,
		Seed:       37,
	}
	e, err := build(s)
	if err != nil {
		t.Fatal(err)
	}
	// Give every node an upgrader so the attack surface exists.
	keyPair, err := sign.GenerateDeterministic(s.Seed ^ 0xec)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := puzzle.NewChain([]byte("lrseluge-experiment"), 8)
	if err != nil {
		t.Fatal(err)
	}
	newSigCtx := func() *dissem.SigContext {
		return &dissem.SigContext{
			Pub:        keyPair.Public(),
			Commitment: chain.Commitment(),
			Puzzle:     puzzle.Params{Strength: 8},
			Col:        e.col,
		}
	}
	for _, n := range e.nodes {
		n.SetUpgrader(func(version uint16) (dissem.ObjectHandler, dissem.TxPolicy, error) {
			h, err := core.NewHandler(version, params, newSigCtx())
			if err != nil {
				return nil, nil, err
			}
			return h, h.NewPolicy(), nil
		})
	}
	// Flood forged "version 2" signature packets throughout the run. The
	// attacker has the real version-1 chain key (released) but CANNOT have
	// the version-2 key; use the v1 key to make the forgery as strong as
	// possible.
	v1key, err := chain.Key(1)
	if err != nil {
		t.Fatal(err)
	}
	attackerID := packet.NodeID(5) // the reserved ExtraNodes slot (4 receivers + base)
	fl, err := adversary.NewSigFlooder(attackerID, e.nw, 2, 3, 100*sim.Millisecond, true, v1key, puzzle.Params{Strength: 8}, 99)
	if err != nil {
		t.Fatal(err)
	}
	fl.Start()
	res := e.run()

	if fl.Sent() == 0 {
		t.Fatal("flooder never fired")
	}
	if res.Completed != res.Nodes || !res.ImagesOK {
		t.Fatalf("version-1 dissemination disrupted: %d/%d ok=%v", res.Completed, res.Nodes, res.ImagesOK)
	}
	for i, n := range e.nodes {
		if got := n.Handler().Version(); got != 1 {
			t.Fatalf("node %d was wiped to forged version %d", i, got)
		}
	}
	// Every forged newer-version packet must die at the weak check: the v1
	// chain key cannot verify as the v2 key.
	if res.PuzzleRejects == 0 {
		t.Fatal("no puzzle rejections recorded; attack was vacuous")
	}
}

// TestForgedVersionAdvHarmless: a bare advertisement claiming version 99
// must not change any node's state (upgrades require a verified signature).
func TestForgedVersionAdvHarmless(t *testing.T) {
	params := image.Params{PacketPayload: 72, K: 8, N: 12}
	e, err := build(Scenario{
		Protocol:  LRSeluge,
		ImageSize: 1024,
		Params:    params,
		Receivers: 3,
		Seed:      41,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range e.nodes {
		n.Start()
	}
	// Deliver forged advs directly into every node mid-run.
	for i := 0; i < 20; i++ {
		e.eng.Schedule(sim.Time(i)*500*sim.Millisecond, func() {
			for _, n := range e.nodes {
				n.HandlePacket(99, &packet.Adv{Src: 99, Version: 99, Units: 250, Total: 250})
			}
		})
	}
	e.eng.Run(e.scenario.withDefaults().Horizon)
	for i, n := range e.nodes {
		if !n.Completed() {
			t.Fatalf("node %d failed to complete under forged version advs", i)
		}
		if n.Handler().Version() != 1 {
			t.Fatalf("node %d changed version from a bare advertisement", i)
		}
	}
}
