package experiment

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lrseluge/internal/image"
	"lrseluge/internal/radio"
	"lrseluge/internal/sim"
)

// TestRandomScenariosProperty is the system-level invariant: for ANY sane
// parameter combination, dissemination terminates with every node holding
// the exact image bytes, for all three protocols.
func TestRandomScenariosProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(9)         // 2..10
		n := k + rng.Intn(9)         // k..k+8
		receivers := 2 + rng.Intn(7) // 2..8
		lossP := rng.Float64() * 0.3
		size := 512 + rng.Intn(2048)
		proto := Protocol(rng.Intn(3))
		params := image.Params{PacketPayload: 72, K: k, N: n}
		if params.Validate() != nil {
			return true // skip infeasible geometry
		}
		res, err := Run(Scenario{
			Protocol:  proto,
			ImageSize: size,
			Params:    params,
			Receivers: receivers,
			LossP:     lossP,
			Seed:      seed,
		})
		if err != nil {
			t.Logf("seed %d (proto=%v k=%d n=%d N=%d p=%.2f): %v", seed, proto, k, n, receivers, lossP, err)
			return false
		}
		if res.Completed != res.Nodes || !res.ImagesOK {
			t.Logf("seed %d (proto=%v k=%d n=%d N=%d p=%.2f size=%d): completed=%d/%d imagesOK=%v",
				seed, proto, k, n, receivers, lossP, size, res.Completed, res.Nodes, res.ImagesOK)
			return false
		}
		if res.ForgedAccepted != 0 {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestTraceLossScenario exercises the trace-replay channel end to end.
func TestTraceLossScenario(t *testing.T) {
	params := image.Params{PacketPayload: 72, K: 8, N: 12}
	res, err := Run(Scenario{
		Protocol:  LRSeluge,
		ImageSize: 2048,
		Params:    params,
		Receivers: 4,
		Loss:      radio.TraceLoss{Trace: radio.SyntheticHeavyTrace(600, 100*sim.Millisecond, 7)},
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Nodes || !res.ImagesOK {
		t.Fatalf("trace-loss run failed: %+v", res)
	}
	if res.ChannelLosses == 0 {
		t.Fatal("trace produced no losses; vacuous")
	}
}

// TestWireCheckMode runs full disseminations where every delivered packet is
// forced through its wire format: the protocols must work on exactly what
// the marshaled bytes carry.
func TestWireCheckMode(t *testing.T) {
	rcfg := radio.DefaultConfig()
	rcfg.WireCheck = true
	for _, proto := range []Protocol{Deluge, Seluge, LRSeluge} {
		res, err := Run(Scenario{
			Protocol:  proto,
			ImageSize: 2048,
			Params:    image.Params{PacketPayload: 72, K: 8, N: 12},
			Receivers: 4,
			LossP:     0.15,
			Radio:     rcfg,
			Seed:      13,
		})
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if res.Completed != res.Nodes || !res.ImagesOK {
			t.Fatalf("%v under wire-check: completed=%d/%d ok=%v", proto, res.Completed, res.Nodes, res.ImagesOK)
		}
	}
}

// TestRatelessDelugeEndToEnd runs the insecure rateless baseline end to end
// under loss.
func TestRatelessDelugeEndToEnd(t *testing.T) {
	for _, p := range []float64{0, 0.2} {
		res, err := Run(Scenario{
			Protocol:  RatelessDeluge,
			ImageSize: 4096,
			Params:    image.Params{PacketPayload: 72, K: 8, N: 8},
			Receivers: 6,
			LossP:     p,
			Seed:      29,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Completed != res.Nodes || !res.ImagesOK {
			t.Fatalf("p=%.1f: completed=%d/%d ok=%v", p, res.Completed, res.Nodes, res.ImagesOK)
		}
		if res.SigPkts != 0 || res.SigVerifications != 0 {
			t.Fatal("rateless baseline used signature machinery")
		}
	}
}
