package experiment

import (
	"testing"

	"lrseluge/internal/image"
)

func TestAttackResilience(t *testing.T) {
	params := image.Params{PacketPayload: 72, K: 8, N: 12}
	report, err := AttackResilience(params, 2048, 5, 0.1, 21)
	if err != nil {
		t.Fatal(err)
	}

	// Forged-data injection: every forged packet rejected, dissemination
	// completes, images intact (the paper's code-image integrity claim).
	if report.InjectionForged == 0 {
		t.Fatal("injector never fired; scenario vacuous")
	}
	if report.Injection.ForgedAccepted != 0 {
		t.Fatalf("%d forged packets accepted", report.Injection.ForgedAccepted)
	}
	if report.Injection.AuthDrops == 0 {
		t.Fatal("no authentication drops recorded despite injection")
	}
	if report.Injection.Completed != report.Injection.Nodes || !report.Injection.ImagesOK {
		t.Fatalf("dissemination failed under injection: %d/%d ok=%v",
			report.Injection.Completed, report.Injection.Nodes, report.Injection.ImagesOK)
	}

	// Weak signature flood: filtered by the puzzle, no extra verifications
	// beyond roughly one per node.
	if report.SigFloodSent == 0 || report.SigFlood.PuzzleRejects == 0 {
		t.Fatalf("sig flood vacuous: sent=%d rejects=%d", report.SigFloodSent, report.SigFlood.PuzzleRejects)
	}
	maxLegit := int64(report.SigFlood.Nodes + 2)
	if report.SigFlood.SigVerifications > maxLegit {
		t.Fatalf("weak flood forced %d verifications (> %d legit)", report.SigFlood.SigVerifications, maxLegit)
	}
	if report.SigFlood.Completed != report.SigFlood.Nodes {
		t.Fatal("dissemination failed under weak sig flood")
	}

	// Strong flood (brute-forced puzzles): costs verifications but the
	// image still disseminates and no forgery is accepted.
	if report.SigFloodStrong.SigVerifications <= maxLegit {
		t.Fatalf("strong flood should force extra verifications, got %d", report.SigFloodStrong.SigVerifications)
	}
	if report.SigFloodStrong.Completed != report.SigFloodStrong.Nodes || !report.SigFloodStrong.ImagesOK {
		t.Fatal("dissemination failed under strong sig flood")
	}
	if report.SigFloodStrong.ForgedAccepted != 0 {
		t.Fatal("forged signature accepted under strong flood")
	}

	// Denial of receipt: the defense must cut the victim's transmissions.
	if report.DoRVictimTxDefense >= report.DoRVictimTxNoDefense {
		t.Fatalf("defense did not reduce victim load: %d vs %d",
			report.DoRVictimTxDefense, report.DoRVictimTxNoDefense)
	}
}
