// Package experiment builds and runs the paper's evaluation scenarios
// (§VI): one-hop neighborhoods with application-layer Bernoulli losses,
// multi-hop grids with bursty noise, and adversarial variants, producing the
// metrics of every figure and table.
package experiment

import (
	"bytes"
	"fmt"

	"lrseluge/internal/core"
	"lrseluge/internal/crypt/puzzle"
	"lrseluge/internal/crypt/sign"
	"lrseluge/internal/deluge"
	"lrseluge/internal/dissem"
	"lrseluge/internal/fault"
	"lrseluge/internal/harness"
	"lrseluge/internal/image"
	"lrseluge/internal/metrics"
	"lrseluge/internal/packet"
	"lrseluge/internal/radio"
	"lrseluge/internal/rateless"
	"lrseluge/internal/seluge"
	"lrseluge/internal/sim"
	"lrseluge/internal/topo"
	"lrseluge/internal/trace"
)

// Protocol selects the dissemination scheme under test.
type Protocol int

// Protocols.
const (
	Deluge Protocol = iota
	Seluge
	LRSeluge
	// RatelessDeluge is the loss-resilient-but-insecure related-work
	// baseline (Rateless Deluge / SYNAPSE style, LT-coded pages).
	RatelessDeluge
)

// LRPolicy selects the transmission scheduling policy used by LR-Seluge
// servers (ablation of §IV-D.3).
type LRPolicy int

// LR-Seluge scheduling policies.
const (
	// GreedyRR is the paper's greedy round-robin tracking-table scheduler.
	GreedyRR LRPolicy = iota
	// UnionBits transmits the union of requested bit vectors (what Deluge
	// and Seluge do).
	UnionBits
	// FreshRR ignores requested indices and serves fresh encoded packets
	// round-robin (what rateless schemes do).
	FreshRR
)

// String implements fmt.Stringer.
func (p LRPolicy) String() string {
	switch p {
	case GreedyRR:
		return "greedy-rr"
	case UnionBits:
		return "union"
	case FreshRR:
		return "fresh-rr"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case Deluge:
		return "Deluge"
	case Seluge:
		return "Seluge"
	case LRSeluge:
		return "LR-Seluge"
	case RatelessDeluge:
		return "Rateless-Deluge"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// Scenario describes one simulation run. Zero-valued optional fields get
// paper-faithful defaults.
type Scenario struct {
	Protocol Protocol

	// Image is the code image; if nil a deterministic pseudo-random image
	// of ImageSize bytes is generated. ImageSize defaults to 20 KB (§VI-B).
	Image     []byte
	ImageSize int

	// Params is the packet/coding geometry; zero value means defaults
	// (payload 72 B, k = 32, n = 48).
	Params image.Params

	// Graph is the topology; nil means a fully-connected one-hop
	// neighborhood of Receivers+1 nodes with node 0 the base station.
	Graph     *topo.Graph
	Receivers int

	// Loss overrides the loss model; if nil, a Bernoulli model with LossP
	// is used (the one-hop emulation strategy of §VI-A). For stateful
	// models (Gilbert-Elliott) prefer LossFactory so repeated runs get
	// fresh channel state.
	Loss        radio.LossModel
	LossFactory func() radio.LossModel
	LossP       float64

	// Radio and Dissem tune the physical layer and protocol timers; zero
	// values mean defaults.
	Radio  radio.Config
	Dissem dissem.Config

	// PuzzleStrength is the weak-authenticator difficulty in leading zero
	// bits (simulation default 8: cheap for the base station, still
	// demonstrably filtering).
	PuzzleStrength uint

	// LRPolicy selects LR-Seluge's transmission scheduling policy, for the
	// ablation of the paper's greedy round-robin scheduler (§IV-D.3).
	LRPolicy LRPolicy

	// ExtraNodes reserves this many trailing topology slots for
	// adversaries (or other non-protocol receivers) attached by the
	// caller; no protocol node is created for them.
	ExtraNodes int

	// Faults, when set, is a fault plan installed before the run starts:
	// node crashes/reboots, link outages, partitions (see internal/fault).
	// For per-run plans in swept grids prefer FaultFactory, which receives
	// the run's derived seed so repeated runs get independent fault timing.
	Faults *fault.Plan

	// FaultFactory, when set, builds the fault plan at run time from the
	// run's seed and the protocol-node count (adversary slots excluded).
	// Takes precedence over Faults.
	FaultFactory func(seed int64, numNodes int) (*fault.Plan, error)

	// Trace, when set, receives the run's protocol event stream (see
	// internal/trace). The sink is flushed when Run returns; a flush error
	// fails the run. Nil (the default) disables tracing entirely — no event
	// is constructed and the simulation byte-stream is unchanged.
	Trace trace.Sink

	// Seed makes the run reproducible.
	Seed int64

	// Horizon caps virtual time; runs not finished by then report partial
	// completion. Default 4 simulated hours.
	Horizon sim.Time
}

// Result carries the metrics the paper reports for a run.
type Result struct {
	Protocol  Protocol
	Nodes     int
	Completed int

	DataPkts  int64
	SnackPkts int64
	AdvPkts   int64
	SigPkts   int64
	// PageDataPkts counts data transmissions of image-page units only
	// (excluding the hash page), the quantity in Fig. 3.
	PageDataPkts int64

	TotalBytes int64
	Latency    sim.Time

	AuthDrops        int64
	PuzzleRejects    int64
	SigVerifications int64
	ForgedAccepted   int64
	ChannelLosses    int64

	// Fault-injection outcomes (zero when the scenario has no fault plan).
	Crashes       int64
	Reboots       int64
	CrashLostPkts int64
	RefetchedPkts int64
	FaultDrops    int64
	DowntimeSec   float64
	// RecoverySec is the mean reboot-to-completion latency over nodes that
	// completed after rebooting.
	RecoverySec float64

	// ImagesOK is true when every completed node reconstructed the exact
	// original image bytes.
	ImagesOK bool

	// Units is the object's total unit count (pages + overhead units).
	Units int
}

// reassembler is implemented by all three protocol handlers.
type reassembler interface {
	ReassembledImage(size int) ([]byte, error)
}

// env is a fully-wired simulation ready to run; attack experiments extend it
// with adversaries before running.
type env struct {
	scenario    Scenario
	eng         *sim.Engine
	col         *metrics.Collector
	nw          *radio.Network
	nodes       []*dissem.Node
	handlers    []reassembler
	baseHandler dissem.ObjectHandler
	imageData   []byte
	units       int
	pageUnit0   int // first image-page unit (0 for Deluge, 2 for secure)
	completed   int

	// Fault injection, wired only when the scenario carries a fault plan.
	faultOv  *radio.FaultOverlay
	faultEng *fault.Engine
}

func (s *Scenario) withDefaults() Scenario {
	out := *s
	if out.ImageSize == 0 {
		out.ImageSize = 20 * 1024
	}
	if out.Params == (image.Params{}) {
		out.Params = image.DefaultParams()
	}
	if out.Receivers == 0 && out.Graph == nil {
		out.Receivers = 20
	}
	if out.Radio == (radio.Config{}) {
		out.Radio = radio.DefaultConfig()
	}
	if out.Dissem.Trickle.IMin == 0 {
		out.Dissem = dissem.DefaultConfig()
	}
	if out.PuzzleStrength == 0 {
		out.PuzzleStrength = 8
	}
	if out.Horizon == 0 {
		out.Horizon = 4 * 3600 * sim.Second
	}
	return out
}

// build wires the full simulation for a scenario.
func build(s Scenario) (*env, error) {
	s = s.withDefaults()
	imgData := s.Image
	if imgData == nil {
		imgData = image.Random(s.ImageSize, s.Seed^0x1337)
	}
	graph := s.Graph
	if graph == nil {
		var err error
		graph, err = topo.Complete(s.Receivers + 1 + s.ExtraNodes)
		if err != nil {
			return nil, err
		}
	}
	loss := s.Loss
	if s.LossFactory != nil {
		loss = s.LossFactory()
	}
	if loss == nil {
		if s.LossP > 0 {
			loss = radio.Bernoulli{P: s.LossP}
		} else {
			loss = radio.NoLoss{}
		}
	}

	eng := sim.New()
	col := metrics.New()
	nw, err := radio.New(eng, graph, loss, s.Radio, col, s.Seed^0x5eed)
	if err != nil {
		return nil, err
	}
	if s.Trace != nil {
		// Install before node construction: dissem nodes capture the
		// network's tracer when they are built.
		tr, err := trace.New(eng, s.Trace)
		if err != nil {
			return nil, err
		}
		nw.SetTracer(tr)
	}

	e := &env{
		scenario:  s,
		eng:       eng,
		col:       col,
		nw:        nw,
		imageData: imgData,
	}

	numNodes := graph.NumNodes() - s.ExtraNodes
	if numNodes < 2 {
		return nil, fmt.Errorf("experiment: topology too small after reserving %d adversary slots", s.ExtraNodes)
	}
	e.nodes = make([]*dissem.Node, 0, numNodes)
	e.handlers = make([]reassembler, 0, numNodes)

	// Security material shared by Seluge and LR-Seluge.
	var (
		keyPair *sign.KeyPair
		chain   *puzzle.Chain
		pparams = puzzle.Params{Strength: s.PuzzleStrength}
	)
	if s.Protocol == Seluge || s.Protocol == LRSeluge {
		keyPair, err = sign.GenerateDeterministic(s.Seed ^ 0xec)
		if err != nil {
			return nil, err
		}
		chain, err = puzzle.NewChain([]byte("lrseluge-experiment"), 8)
		if err != nil {
			return nil, err
		}
	}
	newSigCtx := func() *dissem.SigContext {
		return &dissem.SigContext{
			Pub:        keyPair.Public(),
			Commitment: chain.Commitment(),
			Puzzle:     pparams,
			Col:        col,
		}
	}

	const version = 1
	switch s.Protocol {
	case RatelessDeluge:
		obj, err := rateless.NewObject(version, imgData, s.Params)
		if err != nil {
			return nil, err
		}
		e.units = obj.NumPages()
		e.pageUnit0 = 0
		for id := 0; id < numNodes; id++ {
			var h *rateless.Handler
			if id == 0 {
				h = rateless.Preload(obj)
			} else {
				h, err = rateless.NewHandler(version, s.Params)
				if err != nil {
					return nil, err
				}
			}
			if err := e.addNode(packet.NodeID(id), h, core.NewFreshPolicy(h.PacketsInUnit, h.NeededInUnit)); err != nil {
				return nil, err
			}
		}
	case Deluge:
		obj, err := deluge.NewObject(version, imgData, s.Params)
		if err != nil {
			return nil, err
		}
		e.units = obj.NumPages()
		e.pageUnit0 = 0
		for id := 0; id < numNodes; id++ {
			var h *deluge.Handler
			if id == 0 {
				h = deluge.Preload(obj)
			} else {
				h, err = deluge.NewHandler(version, s.Params)
				if err != nil {
					return nil, err
				}
			}
			if err := e.addNode(packet.NodeID(id), h, deluge.NewPolicy(s.Params)); err != nil {
				return nil, err
			}
		}
	case Seluge:
		obj, err := seluge.Build(seluge.BuildInput{
			Version: version, Image: imgData, Params: s.Params,
			Key: keyPair, Chain: chain, Puzzle: pparams,
		})
		if err != nil {
			return nil, err
		}
		e.units = obj.TotalUnits()
		e.pageUnit0 = 2
		for id := 0; id < numNodes; id++ {
			var h *seluge.Handler
			if id == 0 {
				h = seluge.Preload(obj, newSigCtx())
			} else {
				h, err = seluge.NewHandler(version, s.Params, newSigCtx())
				if err != nil {
					return nil, err
				}
			}
			if err := e.addNode(packet.NodeID(id), h, h.NewPolicy()); err != nil {
				return nil, err
			}
		}
	case LRSeluge:
		obj, err := core.Build(core.BuildInput{
			Version: version, Image: imgData, Params: s.Params,
			Key: keyPair, Chain: chain, Puzzle: pparams,
		})
		if err != nil {
			return nil, err
		}
		e.units = obj.TotalUnits()
		e.pageUnit0 = 2
		for id := 0; id < numNodes; id++ {
			var h *core.Handler
			if id == 0 {
				h = core.Preload(obj, newSigCtx())
			} else {
				h, err = core.NewHandler(version, s.Params, newSigCtx())
				if err != nil {
					return nil, err
				}
			}
			var policy dissem.TxPolicy
			switch s.LRPolicy {
			case UnionBits:
				policy = dissem.NewUnionPolicy(h.PacketsInUnit)
			case FreshRR:
				policy = core.NewFreshPolicy(h.PacketsInUnit, h.NeededInUnit)
			default:
				policy = h.NewPolicy()
			}
			if err := e.addNode(packet.NodeID(id), h, policy); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("experiment: unknown protocol %d", s.Protocol)
	}

	plan := s.Faults
	if s.FaultFactory != nil {
		plan, err = s.FaultFactory(s.Seed, numNodes)
		if err != nil {
			return nil, fmt.Errorf("experiment: fault factory: %w", err)
		}
	}
	if plan != nil {
		e.faultOv = nw.InstallFaultOverlay()
		e.faultEng, err = fault.NewEngine(eng, e.faultOv)
		if err != nil {
			return nil, err
		}
		e.faultEng.SetTracer(nw.Tracer())
		for _, n := range e.nodes {
			e.faultEng.Register(int(n.ID()), n)
		}
		if err := e.faultEng.Install(plan); err != nil {
			return nil, fmt.Errorf("experiment: fault plan: %w", err)
		}
	}
	return e, nil
}

// ablationPolicies is the fixed entry order of the scheduler ablation.
var ablationPolicies = []LRPolicy{GreedyRR, UnionBits, FreshRR}

// ablationEntries builds one grid entry per LR-Seluge scheduling policy.
func ablationEntries(params image.Params, imageSize, receivers int, p float64, runs int, seed int64) []GridEntry {
	entries := make([]GridEntry, 0, len(ablationPolicies))
	for _, policy := range ablationPolicies {
		entries = append(entries, GridEntry{
			Name:   "policy=" + policy.String(),
			Params: []harness.Param{{Key: "policy", Value: policy.String()}},
			Scenario: Scenario{
				Protocol:  LRSeluge,
				ImageSize: imageSize,
				Params:    params,
				Receivers: receivers,
				LossP:     p,
				LRPolicy:  policy,
				Seed:      seed,
			},
			Runs: runs,
		})
	}
	return entries
}

// SchedulerAblation compares LR-Seluge's greedy round-robin scheduler
// against the union-of-bit-vectors and fresh-packet policies on the same
// scenario, isolating the contribution of the paper's TX scheduling
// (§IV-D.3).
func SchedulerAblation(params image.Params, imageSize, receivers int, p float64, runs int, seed int64) (map[LRPolicy]AvgResult, error) {
	avgs, err := RunGrid("ablation", ablationEntries(params, imageSize, receivers, p, runs, seed), harness.Config{})
	if err != nil {
		return nil, err
	}
	out := make(map[LRPolicy]AvgResult, len(ablationPolicies))
	for i, policy := range ablationPolicies {
		out[policy] = avgs[i]
	}
	return out, nil
}

func (e *env) addNode(id packet.NodeID, handler dissem.ObjectHandler, policy dissem.TxPolicy) error {
	node, err := dissem.NewNode(id, e.nw, e.scenario.withDefaults().Dissem, handler, policy, e.scenario.Seed^(int64(id)*0x9e3779b9+1))
	if err != nil {
		return err
	}
	node.SetOnComplete(func(packet.NodeID, sim.Time) {
		e.completed++
		if e.completed == len(e.nodes) {
			e.eng.Stop()
		}
	})
	e.nodes = append(e.nodes, node)
	e.handlers = append(e.handlers, handler.(reassembler))
	if id == 0 {
		e.baseHandler = handler
	}
	return nil
}

// run starts all nodes, executes to completion or horizon, and collects the
// result.
func (e *env) run() Result {
	s := e.scenario.withDefaults()
	for _, n := range e.nodes {
		n.Start()
	}
	e.eng.Run(s.Horizon)

	res := Result{
		Protocol:         s.Protocol,
		Nodes:            len(e.nodes),
		Completed:        e.col.Completions(),
		DataPkts:         e.col.Tx(packet.TypeData),
		SnackPkts:        e.col.Tx(packet.TypeSNACK),
		AdvPkts:          e.col.Tx(packet.TypeAdv),
		SigPkts:          e.col.Tx(packet.TypeSig),
		PageDataPkts:     e.col.DataTxFromUnit(e.pageUnit0),
		TotalBytes:       e.col.TotalBytes(),
		Latency:          e.col.Latency(),
		AuthDrops:        e.col.AuthDrops(),
		PuzzleRejects:    e.col.PuzzleRejects(),
		SigVerifications: e.col.SigVerifications(),
		ForgedAccepted:   e.col.ForgedAccepted(),
		ChannelLosses:    e.col.ChannelLosses(),
		Units:            e.units,
		Crashes:          e.col.Crashes(),
		Reboots:          e.col.Reboots(),
		CrashLostPkts:    e.col.CrashLostPkts(),
		RefetchedPkts:    e.col.RefetchedPkts(),
		DowntimeSec:      e.col.TotalDowntime().Seconds(),
		RecoverySec:      e.col.MeanRecoveryLatencySec(),
		ImagesOK:         true,
	}
	res.FaultDrops = e.col.FaultDrops()
	for _, h := range e.handlers {
		got, err := h.ReassembledImage(len(e.imageData))
		if err != nil || !bytes.Equal(got, e.imageData) {
			res.ImagesOK = false
			break
		}
	}
	return res
}

// Run executes a scenario end to end. When the scenario carries a trace
// sink, the sink is flushed before Run returns and a flush error fails the
// run (the metrics of a run whose trace was silently truncated would be
// unverifiable against the trace).
func Run(s Scenario) (Result, error) {
	e, err := build(s)
	if err != nil {
		return Result{}, err
	}
	res := e.run()
	if s.Trace != nil {
		if err := s.Trace.Flush(); err != nil {
			return Result{}, fmt.Errorf("experiment: trace flush: %w", err)
		}
	}
	return res, nil
}
