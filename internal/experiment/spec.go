package experiment

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"

	"lrseluge/internal/image"
	"lrseluge/internal/radio"
	"lrseluge/internal/sim"
	"lrseluge/internal/topo"
)

// SpecSchemaVersion is the wire-schema version of Spec. Bump it whenever the
// canonical encoding changes meaning: the version participates in the run
// key, so old cached results can never be served against a new schema.
const SpecSchemaVersion = 1

// keyDomain is the hash domain separator of run keys. It pins the key
// derivation itself: changing how keys are built invalidates every old key.
const keyDomain = "lrseluge-run-key-v1"

// GridSpec describes a multi-hop lattice topology in serializable form.
type GridSpec struct {
	Rows int `json:"rows"`
	Cols int `json:"cols"`
	// Density is "tight" or "medium" (topo.GridDensity names).
	Density string `json:"density"`
}

// Spec is the serializable description of one averaged experiment cell: a
// Scenario restricted to fields expressible as plain data, plus the run
// count. It is the request body of lrserved's POST /v1/runs and the input of
// content-addressed run keys.
//
// Spec deliberately covers only the declarative subset of Scenario —
// topologies by shape, channels by named model, no caller-supplied images,
// loss models, fault factories or trace sinks. Everything a Spec can express
// is a pure function of its fields plus the code version, which is exactly
// the property that makes runs cacheable by key.
type Spec struct {
	// Schema must be SpecSchemaVersion (0 on input means "current").
	Schema int `json:"schema"`

	// Protocol is one of "deluge", "seluge", "lr-seluge", "rateless"
	// (default "lr-seluge").
	Protocol string `json:"protocol"`

	// ImageSize is the pseudo-random image size in bytes (default 20 KiB).
	ImageSize int `json:"image_size"`

	// PacketPayload/K/N are the packet and coding geometry (default 72/32/48).
	PacketPayload int `json:"packet_payload"`
	K             int `json:"k"`
	N             int `json:"n"`

	// Receivers sizes the one-hop neighborhood when Grid is nil (default 20).
	Receivers int `json:"receivers"`

	// Grid, when non-nil, selects a rows x cols lattice instead of the
	// one-hop complete topology; Receivers is then ignored.
	Grid *GridSpec `json:"grid"`

	// Noise selects the channel model: "bernoulli" (i.i.d. losses at LossP,
	// the default) or "heavy" (bursty Gilbert-Elliott, fresh state per run).
	Noise string `json:"noise"`

	// LossP is the Bernoulli loss probability (ignored under "heavy").
	LossP float64 `json:"loss_p"`

	// Policy is the LR-Seluge scheduling policy: "greedy-rr" (default),
	// "union", or "fresh-rr".
	Policy string `json:"policy"`

	// PuzzleStrength is the weak-authenticator difficulty in bits (default 8).
	PuzzleStrength int `json:"puzzle_strength"`

	// HorizonSec caps virtual time in simulated seconds (default 4 hours).
	HorizonSec float64 `json:"horizon_sec"`

	// Seed is the base RNG seed; run i uses Seed + i*seedStride.
	Seed int64 `json:"seed"`

	// Runs is the number of seeds averaged (default 1).
	Runs int `json:"runs"`
}

// specProtocols maps wire names onto Protocol values, in canonical order.
var specProtocols = []struct {
	name  string
	proto Protocol
}{
	{"deluge", Deluge},
	{"seluge", Seluge},
	{"lr-seluge", LRSeluge},
	{"rateless", RatelessDeluge},
}

// specPolicies maps wire names onto LRPolicy values. The names are the
// LRPolicy.String() forms, so specs and sweep params agree.
var specPolicies = []struct {
	name   string
	policy LRPolicy
}{
	{"greedy-rr", GreedyRR},
	{"union", UnionBits},
	{"fresh-rr", FreshRR},
}

// DecodeSpec parses a Spec from JSON, rejecting unknown fields so a typo in
// a request body fails loudly instead of silently running the default
// scenario (and caching it under a key the caller did not intend).
func DecodeSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("experiment: decode spec: %w", err)
	}
	// A second document in the body is almost certainly a client bug.
	if dec.More() {
		return Spec{}, fmt.Errorf("experiment: decode spec: trailing data after JSON document")
	}
	return s, nil
}

// Normalize applies the same defaults Scenario.withDefaults would and
// validates every field, returning the fully-explicit spec. Two specs that
// normalize equal describe the same experiment and hash to the same key.
func (s Spec) Normalize() (Spec, error) {
	out := s
	if out.Schema == 0 {
		out.Schema = SpecSchemaVersion
	}
	if out.Schema != SpecSchemaVersion {
		return Spec{}, fmt.Errorf("experiment: spec schema %d unsupported (want %d)", out.Schema, SpecSchemaVersion)
	}
	if out.Protocol == "" {
		out.Protocol = "lr-seluge"
	}
	if _, err := out.protocol(); err != nil {
		return Spec{}, err
	}
	if out.ImageSize == 0 {
		out.ImageSize = 20 * 1024
	}
	if out.ImageSize < 1 {
		return Spec{}, fmt.Errorf("experiment: spec image_size %d must be >= 1", out.ImageSize)
	}
	if out.PacketPayload == 0 && out.K == 0 && out.N == 0 {
		p := image.DefaultParams()
		out.PacketPayload, out.K, out.N = p.PacketPayload, p.K, p.N
	}
	if err := (image.Params{PacketPayload: out.PacketPayload, K: out.K, N: out.N}).Validate(); err != nil {
		return Spec{}, fmt.Errorf("experiment: spec params: %w", err)
	}
	if out.Grid != nil {
		if out.Grid.Rows < 1 || out.Grid.Cols < 1 {
			return Spec{}, fmt.Errorf("experiment: spec grid %dx%d must be at least 1x1", out.Grid.Rows, out.Grid.Cols)
		}
		if out.Grid.Density == "" {
			out.Grid.Density = topo.Tight.String()
		}
		if _, err := out.gridDensity(); err != nil {
			return Spec{}, err
		}
		if out.Grid.Rows*out.Grid.Cols < 2 {
			return Spec{}, fmt.Errorf("experiment: spec grid needs at least 2 nodes")
		}
		out.Receivers = 0 // ignored under a grid; zero it so it cannot split keys
	} else {
		if out.Receivers == 0 {
			out.Receivers = 20
		}
		if out.Receivers < 1 {
			return Spec{}, fmt.Errorf("experiment: spec receivers %d must be >= 1", out.Receivers)
		}
	}
	if out.Noise == "" {
		out.Noise = "bernoulli"
	}
	switch out.Noise {
	case "bernoulli":
		if out.LossP < 0 || out.LossP >= 1 {
			return Spec{}, fmt.Errorf("experiment: spec loss_p %v must be in [0, 1)", out.LossP)
		}
	case "heavy":
		out.LossP = 0 // ignored under heavy noise; zero it so it cannot split keys
	default:
		return Spec{}, fmt.Errorf("experiment: spec noise %q unknown (want bernoulli or heavy)", out.Noise)
	}
	if out.Policy == "" {
		out.Policy = GreedyRR.String()
	}
	if _, err := out.lrPolicy(); err != nil {
		return Spec{}, err
	}
	if out.PuzzleStrength == 0 {
		out.PuzzleStrength = 8
	}
	if out.PuzzleStrength < 1 || out.PuzzleStrength > 32 {
		return Spec{}, fmt.Errorf("experiment: spec puzzle_strength %d must be in [1, 32]", out.PuzzleStrength)
	}
	if out.HorizonSec == 0 {
		out.HorizonSec = (4 * 3600 * sim.Second).Seconds()
	}
	if out.HorizonSec <= 0 {
		return Spec{}, fmt.Errorf("experiment: spec horizon_sec %v must be > 0", out.HorizonSec)
	}
	if out.Runs == 0 {
		out.Runs = 1
	}
	if out.Runs < 1 {
		return Spec{}, fmt.Errorf("experiment: spec runs %d must be >= 1", out.Runs)
	}
	return out, nil
}

func (s Spec) protocol() (Protocol, error) {
	for _, e := range specProtocols {
		if e.name == s.Protocol {
			return e.proto, nil
		}
	}
	return 0, fmt.Errorf("experiment: spec protocol %q unknown (want deluge, seluge, lr-seluge or rateless)", s.Protocol)
}

func (s Spec) lrPolicy() (LRPolicy, error) {
	for _, e := range specPolicies {
		if e.name == s.Policy {
			return e.policy, nil
		}
	}
	return 0, fmt.Errorf("experiment: spec policy %q unknown (want greedy-rr, union or fresh-rr)", s.Policy)
}

func (s Spec) gridDensity() (topo.GridDensity, error) {
	for _, d := range []topo.GridDensity{topo.Tight, topo.Medium} {
		if s.Grid != nil && s.Grid.Density == d.String() {
			return d, nil
		}
	}
	return 0, fmt.Errorf("experiment: spec grid density %q unknown (want tight or medium)", s.Grid.Density)
}

// Scenario converts a spec into a runnable Scenario. The spec is normalized
// first, so the scenario built here is exactly the one the spec's key
// hashes: same defaults, same validation.
func (s Spec) Scenario() (Scenario, error) {
	n, err := s.Normalize()
	if err != nil {
		return Scenario{}, err
	}
	proto, err := n.protocol()
	if err != nil {
		return Scenario{}, err
	}
	policy, err := n.lrPolicy()
	if err != nil {
		return Scenario{}, err
	}
	sc := Scenario{
		Protocol:       proto,
		ImageSize:      n.ImageSize,
		Params:         image.Params{PacketPayload: n.PacketPayload, K: n.K, N: n.N},
		Receivers:      n.Receivers,
		LRPolicy:       policy,
		PuzzleStrength: uint(n.PuzzleStrength),
		Seed:           n.Seed,
		Horizon:        sim.Time(n.HorizonSec * float64(sim.Second)),
	}
	if n.Grid != nil {
		density, err := n.gridDensity()
		if err != nil {
			return Scenario{}, err
		}
		graph, err := topo.Grid(n.Grid.Rows, n.Grid.Cols, density)
		if err != nil {
			return Scenario{}, err
		}
		if !graph.Connected() {
			return Scenario{}, fmt.Errorf("experiment: spec grid %dx%d/%s is not connected", n.Grid.Rows, n.Grid.Cols, n.Grid.Density)
		}
		sc.Graph = graph
	}
	switch n.Noise {
	case "heavy":
		sc.LossFactory = func() radio.LossModel { return radio.HeavyNoise() }
	default:
		sc.LossP = n.LossP
	}
	return sc, nil
}

// CanonicalJSON renders the normalized spec in canonical form: every field
// explicit, object keys sorted bytewise, no insignificant whitespace,
// integers as integers and floats in Go's shortest-round-trip form. Two
// semantically identical specs — regardless of input field order or omitted
// defaults — produce identical bytes, which is what makes the SHA-256 key
// content-addressed rather than representation-addressed.
func (s Spec) CanonicalJSON() ([]byte, error) {
	n, err := s.Normalize()
	if err != nil {
		return nil, err
	}
	var b bytes.Buffer
	b.WriteByte('{')
	// Keys in sorted order, maintained by hand and pinned by a test that
	// re-parses and re-derives the ordering.
	if n.Grid != nil {
		fmt.Fprintf(&b, `"grid":{"cols":%d,"density":%q,"rows":%d},`, n.Grid.Cols, n.Grid.Density, n.Grid.Rows)
	} else {
		b.WriteString(`"grid":null,`)
	}
	fmt.Fprintf(&b, `"horizon_sec":%s,`, canonicalFloat(n.HorizonSec))
	fmt.Fprintf(&b, `"image_size":%d,`, n.ImageSize)
	fmt.Fprintf(&b, `"k":%d,`, n.K)
	fmt.Fprintf(&b, `"loss_p":%s,`, canonicalFloat(n.LossP))
	fmt.Fprintf(&b, `"n":%d,`, n.N)
	fmt.Fprintf(&b, `"noise":%q,`, n.Noise)
	fmt.Fprintf(&b, `"packet_payload":%d,`, n.PacketPayload)
	fmt.Fprintf(&b, `"policy":%q,`, n.Policy)
	fmt.Fprintf(&b, `"protocol":%q,`, n.Protocol)
	fmt.Fprintf(&b, `"puzzle_strength":%d,`, n.PuzzleStrength)
	fmt.Fprintf(&b, `"receivers":%d,`, n.Receivers)
	fmt.Fprintf(&b, `"runs":%d,`, n.Runs)
	fmt.Fprintf(&b, `"schema":%d,`, n.Schema)
	fmt.Fprintf(&b, `"seed":%d`, n.Seed)
	b.WriteByte('}')
	return b.Bytes(), nil
}

// canonicalFloat is the canonical float rendering: Go's shortest form that
// round-trips, identical to what encoding/json emits for float64.
func canonicalFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Key derives the content-addressed run key of a spec under a code version:
// hex SHA-256 over the domain separator, the code-version stamp and the
// canonical JSON (which embeds schema, seed and run count). Determinism of
// the simulator makes this key a complete identity for the averaged result —
// identical (spec, code-version) must produce identical AvgResult bytes, so
// a stored value can be served forever.
func (s Spec) Key(codeVersion string) (string, error) {
	cj, err := s.CanonicalJSON()
	if err != nil {
		return "", err
	}
	return deriveKey(keyDomain, codeVersion, string(cj)), nil
}

// deriveKey hashes length-prefixed parts so no concatenation of fields can
// collide with another split of the same bytes.
func deriveKey(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		var lenBuf [8]byte
		n := len(p)
		for i := 0; i < 8; i++ {
			lenBuf[7-i] = byte(n >> (8 * i))
		}
		h.Write(lenBuf[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Cell is one store-addressable unit of a catalog sweep: a grid entry plus
// enough context (sweep name, catalog dims, entry position) to make its key
// collision-free across sweeps, quick/full modes and catalog revisions
// under one code version.
type Cell struct {
	// Sweep and Index locate the cell in the catalog expansion.
	Sweep string
	Index int
	// Entry is the underlying grid entry (scenario + run count).
	Entry GridEntry
	// Spec is the catalog spec the expansion was built from.
	Spec SweepSpec
}

// SweepCells expands a named catalog sweep into its store-addressable cells.
func SweepCells(name string, spec SweepSpec) ([]Cell, error) {
	entries, err := NamedSweep(name, spec)
	if err != nil {
		return nil, err
	}
	cells := make([]Cell, len(entries))
	for i, e := range entries {
		cells[i] = Cell{Sweep: name, Index: i, Entry: e, Spec: spec}
	}
	return cells, nil
}

// Key derives the cell's content-addressed key. Catalog cells are built by
// code (loss factories, fault factories, topologies), so unlike Spec keys
// they are addressed by their position in the deterministic catalog
// expansion: sweep name, quick flag, runs, base seed, entry index/name,
// protocol and the entry's ordered params. The code-version stamp covers
// catalog edits, exactly as it covers simulator edits for Spec keys.
func (c Cell) Key(codeVersion string) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, `{"entry":%q,`, c.Entry.Name)
	fmt.Fprintf(&b, `"index":%d,`, c.Index)
	b.WriteString(`"params":[`)
	for i, p := range c.Entry.Params {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `[%q,%q]`, p.Key, p.Value)
	}
	b.WriteString(`],`)
	fmt.Fprintf(&b, `"proto":%q,`, c.Entry.Scenario.Protocol.String())
	fmt.Fprintf(&b, `"quick":%v,`, c.Spec.Quick)
	fmt.Fprintf(&b, `"runs":%d,`, c.Entry.Runs)
	fmt.Fprintf(&b, `"schema":%d,`, SpecSchemaVersion)
	fmt.Fprintf(&b, `"seed":%d,`, c.Spec.Seed)
	fmt.Fprintf(&b, `"sweep":%q}`, c.Sweep)
	return deriveKey(keyDomain+"/sweep-cell", codeVersion, b.String())
}
