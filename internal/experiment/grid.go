package experiment

import (
	"fmt"
	"strconv"

	"lrseluge/internal/harness"
	"lrseluge/internal/trace"
)

// Metric names emitted for every run record flowing through the harness.
// The order of MetricNames is the serialization order in every sink.
const (
	MetricCompletedFrac    = "completed_frac"
	MetricDataPkts         = "data_pkts"
	MetricPageDataPkts     = "page_data_pkts"
	MetricSnackPkts        = "snack_pkts"
	MetricAdvPkts          = "adv_pkts"
	MetricSigPkts          = "sig_pkts"
	MetricTotalBytes       = "total_bytes"
	MetricLatencySec       = "latency_sec"
	MetricImagesOK         = "images_ok"
	MetricAuthDrops        = "auth_drops"
	MetricPuzzleRejects    = "puzzle_rejects"
	MetricSigVerifications = "sig_verifications"
	MetricForgedAccepted   = "forged_accepted"
	MetricChannelLosses    = "channel_losses"
	MetricUnits            = "units"
	MetricNodes            = "nodes"
	MetricCrashes          = "crashes"
	MetricReboots          = "reboots"
	MetricCrashLostPkts    = "crash_lost_pkts"
	MetricRefetchedPkts    = "refetched_pkts"
	MetricFaultDrops       = "fault_drops"
	MetricDowntimeSec      = "downtime_sec"
	MetricRecoverySec      = "recovery_sec"
)

// MetricNames returns the per-run metric names in serialization order.
func MetricNames() []string {
	return []string{
		MetricCompletedFrac, MetricDataPkts, MetricPageDataPkts,
		MetricSnackPkts, MetricAdvPkts, MetricSigPkts, MetricTotalBytes,
		MetricLatencySec, MetricImagesOK, MetricAuthDrops,
		MetricPuzzleRejects, MetricSigVerifications, MetricForgedAccepted,
		MetricChannelLosses, MetricUnits, MetricNodes,
		MetricCrashes, MetricReboots, MetricCrashLostPkts,
		MetricRefetchedPkts, MetricFaultDrops, MetricDowntimeSec,
		MetricRecoverySec,
	}
}

// runMetrics flattens a Result into the harness metric vector, in
// MetricNames order.
func runMetrics(r Result) []harness.Metric {
	boolMetric := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	return []harness.Metric{
		{Name: MetricCompletedFrac, Value: float64(r.Completed) / float64(r.Nodes)},
		{Name: MetricDataPkts, Value: float64(r.DataPkts)},
		{Name: MetricPageDataPkts, Value: float64(r.PageDataPkts)},
		{Name: MetricSnackPkts, Value: float64(r.SnackPkts)},
		{Name: MetricAdvPkts, Value: float64(r.AdvPkts)},
		{Name: MetricSigPkts, Value: float64(r.SigPkts)},
		{Name: MetricTotalBytes, Value: float64(r.TotalBytes)},
		{Name: MetricLatencySec, Value: r.Latency.Seconds()},
		{Name: MetricImagesOK, Value: boolMetric(r.ImagesOK)},
		{Name: MetricAuthDrops, Value: float64(r.AuthDrops)},
		{Name: MetricPuzzleRejects, Value: float64(r.PuzzleRejects)},
		{Name: MetricSigVerifications, Value: float64(r.SigVerifications)},
		{Name: MetricForgedAccepted, Value: float64(r.ForgedAccepted)},
		{Name: MetricChannelLosses, Value: float64(r.ChannelLosses)},
		{Name: MetricUnits, Value: float64(r.Units)},
		{Name: MetricNodes, Value: float64(r.Nodes)},
		{Name: MetricCrashes, Value: float64(r.Crashes)},
		{Name: MetricReboots, Value: float64(r.Reboots)},
		{Name: MetricCrashLostPkts, Value: float64(r.CrashLostPkts)},
		{Name: MetricRefetchedPkts, Value: float64(r.RefetchedPkts)},
		{Name: MetricFaultDrops, Value: float64(r.FaultDrops)},
		{Name: MetricDowntimeSec, Value: r.DowntimeSec},
		{Name: MetricRecoverySec, Value: r.RecoverySec},
	}
}

// seedStride separates the derived seeds of consecutive runs of one entry
// (the historical RunAvg constant, kept so averaged numbers stay stable).
const seedStride = 1000003

// GridEntry is one aggregation cell of a sweep: a scenario executed Runs
// times under derived seeds (Scenario.Seed + runIndex*seedStride) and
// averaged into one AvgResult.
//
// Concurrency contract: entries are run on GOMAXPROCS-wide worker pools, so
// a Scenario must not share mutable state across runs — stateful channel
// models must come through Scenario.LossFactory (a fresh model per build),
// never through a shared Scenario.Loss value.
type GridEntry struct {
	// Name labels the entry in job names and error messages, e.g. "p=0.1".
	Name string
	// Params are extra ordered labels serialized into each run record
	// (protocol, run index and seed are appended automatically).
	Params []harness.Param
	// Scenario is the run configuration; its Seed is the entry's base seed.
	Scenario Scenario
	// Runs is the number of seeds to average; must be >= 1.
	Runs int
}

// gridPayload rides along each harness job back to the aggregation step.
type gridPayload struct {
	entry, run int
	scenario   Scenario
}

// gridJobs expands entries × run indices into the flat harness job list, in
// entry order then run order — the canonical merge order of the sweep.
func gridJobs(sweep string, entries []GridEntry) []harness.Job {
	jobs := make([]harness.Job, 0, len(entries))
	for ei, e := range entries {
		for ri := 0; ri < e.Runs; ri++ {
			sc := e.Scenario
			sc.Seed = e.Scenario.Seed + int64(ri)*seedStride
			params := make([]harness.Param, 0, len(e.Params)+4)
			if sweep != "" {
				params = append(params, harness.Param{Key: "sweep", Value: sweep})
			}
			params = append(params, harness.Param{Key: "proto", Value: sc.Protocol.String()})
			params = append(params, e.Params...)
			params = append(params,
				harness.Param{Key: "run", Value: strconv.Itoa(ri)},
				harness.Param{Key: "seed", Value: strconv.FormatInt(sc.Seed, 10)},
			)
			jobs = append(jobs, harness.Job{
				Name:    e.Name + "/run=" + strconv.Itoa(ri),
				Params:  params,
				Payload: gridPayload{entry: ei, run: ri, scenario: sc},
			})
		}
	}
	return jobs
}

// gridRun is the harness RunFunc: one full simulation per job.
func gridRun(j harness.Job) ([]harness.Metric, error) {
	p := j.Payload.(gridPayload)
	r, err := Run(p.scenario)
	if err != nil {
		return nil, err
	}
	return runMetrics(r), nil
}

// GridJobs exposes the job expansion to callers driving harness.Run
// directly (cmd/lrsweep streams records to sinks without aggregating).
func GridJobs(sweep string, entries []GridEntry) []harness.Job {
	return gridJobs(sweep, entries)
}

// GridRunFunc is the harness RunFunc that executes one grid job as a full
// simulation.
var GridRunFunc harness.RunFunc = gridRun

// TracedRunFunc wraps gridRun so every job's simulation streams its protocol
// events to a per-job trace sink. sinkFor is called once per job and returns
// the sink plus a close function invoked after the run (nil close is
// allowed); a close error fails the job. Because every job owns a distinct
// sink, traced sweeps stay worker-count invariant: each trace file's bytes
// depend only on the job's seed, never on pool scheduling.
func TracedRunFunc(sinkFor func(harness.Job) (trace.Sink, func() error, error)) harness.RunFunc {
	return func(j harness.Job) ([]harness.Metric, error) {
		p := j.Payload.(gridPayload)
		sink, closeFn, err := sinkFor(j)
		if err != nil {
			return nil, fmt.Errorf("experiment: trace sink for %s: %w", j.Name, err)
		}
		sc := p.scenario
		sc.Trace = sink
		r, runErr := Run(sc)
		if closeFn != nil {
			if err := closeFn(); err != nil && runErr == nil {
				runErr = fmt.Errorf("experiment: trace close for %s: %w", j.Name, err)
			}
		}
		if runErr != nil {
			return nil, runErr
		}
		return runMetrics(r), nil
	}
}

// RunGrid executes every entry's runs through the harness worker pool and
// aggregates one AvgResult per entry, in entry order. Run records stream to
// the given sinks in deterministic job order; cfg.Workers picks the pool
// width (0 = GOMAXPROCS) without affecting any output byte.
//
// The first failed run (in job order) aborts the sweep with an error naming
// the entry, run index and seed; sink output still covers every record.
func RunGrid(sweep string, entries []GridEntry, cfg harness.Config, sinks ...harness.Sink) ([]AvgResult, error) {
	for i, e := range entries {
		if e.Runs < 1 {
			return nil, fmt.Errorf("experiment: entry %d (%s): runs must be >= 1", i, e.Name)
		}
	}
	recs, err := harness.Run(gridJobs(sweep, entries), gridRun, cfg, sinks...)
	if err != nil {
		return nil, err
	}
	aggs := make([]*harness.Aggregator, len(entries))
	for i := range aggs {
		aggs[i] = harness.NewAggregator()
	}
	for _, r := range recs {
		p := r.Job.Payload.(gridPayload)
		if r.Failed() {
			return nil, fmt.Errorf("experiment: %s: run %d (seed %d) failed: %s",
				entries[p.entry].Name, p.run, p.scenario.Seed, r.Err)
		}
		if err := aggs[p.entry].Write(r); err != nil {
			return nil, err
		}
	}
	out := make([]AvgResult, len(entries))
	for i, e := range entries {
		out[i] = avgFromAggregator(e.Scenario.Protocol, e.Runs, aggs[i])
	}
	return out, nil
}

// avgFromAggregator maps the aggregated metric vector back onto the
// historical AvgResult shape.
func avgFromAggregator(proto Protocol, runs int, a *harness.Aggregator) AvgResult {
	return AvgResult{
		Protocol:   proto,
		Runs:       runs,
		Completed:  a.Mean(MetricCompletedFrac),
		DataPkts:   a.Mean(MetricDataPkts),
		PageData:   a.Mean(MetricPageDataPkts),
		SnackPkts:  a.Mean(MetricSnackPkts),
		AdvPkts:    a.Mean(MetricAdvPkts),
		SigPkts:    a.Mean(MetricSigPkts),
		TotalBytes: a.Mean(MetricTotalBytes),
		LatencySec: a.Mean(MetricLatencySec),
		ImagesOK:   a.Count() > 0 && a.Min(MetricImagesOK) >= 1,
		DataStd:    a.Std(MetricDataPkts),
		BytesStd:   a.Std(MetricTotalBytes),
		LatencyStd: a.Std(MetricLatencySec),
		Crashes:    a.Mean(MetricCrashes),
		Refetched:  a.Mean(MetricRefetchedPkts),
		FaultDrops: a.Mean(MetricFaultDrops),
		Downtime:   a.Mean(MetricDowntimeSec),
		Recovery:   a.Mean(MetricRecoverySec),
	}
}
