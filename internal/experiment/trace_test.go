package experiment

import (
	"bytes"
	"testing"

	"lrseluge/internal/harness"
	"lrseluge/internal/trace"
)

// tracedChurnRun executes the churn scenario with a JSONL trace sink and
// returns the run result plus the trace bytes.
func tracedChurnRun(t *testing.T, seed int64) (Result, []byte) {
	t.Helper()
	var buf bytes.Buffer
	s := churnScenario(seed)
	s.Trace = trace.NewJSONLSink(&buf)
	res, err := Run(s)
	if err != nil {
		t.Fatalf("traced run: %v", err)
	}
	return res, buf.Bytes()
}

// TestTraceSameSeedByteIdentical extends the repo's reproducibility claim to
// the trace subsystem: two runs of the same seeded scenario (with fault
// injection live) must produce byte-identical JSONL traces, and different
// seeds must diverge.
func TestTraceSameSeedByteIdentical(t *testing.T) {
	res1, t1 := tracedChurnRun(t, 42)
	res2, t2 := tracedChurnRun(t, 42)
	if len(t1) == 0 {
		t.Fatal("traced run produced no events")
	}
	if !bytes.Equal(t1, t2) {
		t.Error("same seed produced different trace bytes")
	}
	if res1 != res2 {
		t.Errorf("same seed produced different metrics:\n run1: %+v\n run2: %+v", res1, res2)
	}
	if _, t3 := tracedChurnRun(t, 43); bytes.Equal(t1, t3) {
		t.Error("different seeds produced identical traces")
	}
	// The wire bytes must decode back under the strict reader.
	events, err := trace.ReadAll(bytes.NewReader(t1))
	if err != nil {
		t.Fatalf("trace does not round-trip: %v", err)
	}
	// Liveness floor: a churn run has far more events than its drops alone.
	if int64(len(events)) <= res1.FaultDrops+res1.ChannelLosses {
		t.Fatalf("decoded only %d events for %d drops", len(events), res1.FaultDrops+res1.ChannelLosses)
	}
}

// TestTracingOffLeavesRunUnchanged pins the overhead contract's correctness
// half: attaching a trace sink must not change a single metric, and a run
// with tracing disabled is bit-identical to one that never knew about
// tracing. Result is a flat comparable struct, so == covers every counter.
func TestTracingOffLeavesRunUnchanged(t *testing.T) {
	plain, err := Run(churnScenario(42))
	if err != nil {
		t.Fatal(err)
	}
	counted := churnScenario(42)
	sink := &trace.Count{}
	counted.Trace = sink
	traced, err := Run(counted)
	if err != nil {
		t.Fatal(err)
	}
	if plain != traced {
		t.Errorf("tracing changed the run metrics:\n off: %+v\n  on: %+v", plain, traced)
	}
	if sink.Total() == 0 {
		t.Fatal("counting sink saw no events")
	}
}

// TestFaultDropSingleAttribution cross-checks the two observability channels
// end to end: the drop-reason histogram of the trace must agree exactly with
// the collector's disjoint channel-loss and fault-drop counters.
func TestFaultDropSingleAttribution(t *testing.T) {
	res, raw := tracedChurnRun(t, 42)
	events, err := trace.ReadAll(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var channel, faultDrops int64
	for _, e := range events {
		if e.Kind != trace.KindDrop {
			continue
		}
		switch e.Reason {
		case trace.DropChannel:
			channel++
		case trace.DropFault:
			faultDrops++
		}
	}
	if channel != res.ChannelLosses {
		t.Errorf("trace channel drops = %d, collector = %d", channel, res.ChannelLosses)
	}
	if faultDrops != res.FaultDrops {
		t.Errorf("trace fault drops = %d, collector = %d", faultDrops, res.FaultDrops)
	}
	if res.FaultDrops == 0 || res.ChannelLosses == 0 {
		t.Errorf("attribution test is vacuous: fault_drops=%d channel_losses=%d",
			res.FaultDrops, res.ChannelLosses)
	}
}

// TestTracedRunFuncWorkerInvariance is the per-run trace artifact contract:
// with one sink per job, every job's trace bytes and the merged metric
// records are identical for any worker-pool width.
func TestTracedRunFuncWorkerInvariance(t *testing.T) {
	entries := []GridEntry{
		{Name: "a", Scenario: churnScenario(7), Runs: 2},
		{Name: "b", Scenario: multihopScenario(9), Runs: 1},
	}
	jobs := gridJobs("trace", entries)

	runOnce := func(workers int) ([][]byte, []byte) {
		traces := make([]*bytes.Buffer, len(jobs))
		runFn := TracedRunFunc(func(j harness.Job) (trace.Sink, func() error, error) {
			buf := &bytes.Buffer{}
			traces[j.Index] = buf // each job owns its slot: no cross-job writes
			return trace.NewJSONLSink(buf), nil, nil
		})
		var metricsBuf bytes.Buffer
		recs, err := harness.Run(jobs, runFn, harness.Config{Workers: workers},
			harness.NewJSONLSink(&metricsBuf))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for _, r := range recs {
			if r.Failed() {
				t.Fatalf("workers=%d: %s failed: %s", workers, r.Job.Name, r.Err)
			}
		}
		out := make([][]byte, len(traces))
		for i, b := range traces {
			out[i] = b.Bytes()
		}
		return out, metricsBuf.Bytes()
	}

	serialTraces, serialMetrics := runOnce(1)
	parallelTraces, parallelMetrics := runOnce(4)
	if !bytes.Equal(serialMetrics, parallelMetrics) {
		t.Error("metric records differ between 1 and 4 workers")
	}
	for i := range jobs {
		if len(serialTraces[i]) == 0 {
			t.Fatalf("job %d produced an empty trace", i)
		}
		if !bytes.Equal(serialTraces[i], parallelTraces[i]) {
			t.Errorf("job %d trace differs between 1 and 4 workers", i)
		}
	}
}
