package experiment

import (
	"fmt"

	"lrseluge/internal/adversary"
	"lrseluge/internal/crypt/puzzle"
	"lrseluge/internal/dissem"
	"lrseluge/internal/image"
	"lrseluge/internal/packet"
	"lrseluge/internal/sim"
)

// AttackReport summarizes the adversarial experiments validating the
// security claims of §IV-E.
type AttackReport struct {
	// Injection: LR-Seluge under continuous forged-data injection. Every
	// forged packet must be rejected (ForgedAccepted == 0) while the
	// dissemination still completes with intact images.
	Injection       Result
	InjectionForged int64

	// SigFlood: forged signature packets WITHOUT valid puzzles — they must
	// all die at the one-hash weak-authenticator check (PuzzleRejects)
	// without triggering expensive verifications beyond the legitimate
	// ones.
	SigFlood     Result
	SigFloodSent int64

	// SigFloodStrong: the strongest flooder, which brute-forces a valid
	// puzzle per packet using the released chain key. Each such packet
	// costs the ATTACKER a search but the verifier at most one signature
	// verification; the genuine image still disseminates.
	SigFloodStrong     Result
	SigFloodStrongSent int64

	// Denial of receipt: transmissions made by the victim (base station)
	// while a SNACK-flooding neighbor denies all receipt, without and with
	// the SNACK-serve-limit defense.
	DoRVictimTxNoDefense int64
	DoRVictimTxDefense   int64
}

// attackInterval paces the adversaries: aggressive relative to protocol
// timers but not so dense that the simulation is all attack events.
const attackInterval = 100 * sim.Millisecond

// AttackResilience runs the three adversarial scenarios against LR-Seluge.
func AttackResilience(params image.Params, imageSize, receivers int, lossP float64, seed int64) (AttackReport, error) {
	var report AttackReport

	// 1. Forged data injection.
	{
		s := Scenario{
			Protocol:   LRSeluge,
			ImageSize:  imageSize,
			Params:     params,
			Receivers:  receivers,
			LossP:      lossP,
			ExtraNodes: 1,
			Seed:       seed,
		}
		e, err := build(s)
		if err != nil {
			return report, err
		}
		attackerID := packet.NodeID(receivers + 1)
		inj, err := adversary.NewInjector(attackerID, e.nw, attackInterval, seed^0xbad)
		if err != nil {
			return report, err
		}
		for _, n := range e.nodes {
			n.SetForgedSource(func(id packet.NodeID) bool { return id == attackerID })
		}
		inj.Start()
		report.Injection = e.run()
		report.InjectionForged = inj.Sent()
	}

	// 2. Signature flooding without valid puzzles.
	{
		res, sent, err := runSigFlood(params, imageSize, receivers, lossP, seed, false)
		if err != nil {
			return report, err
		}
		report.SigFlood = res
		report.SigFloodSent = sent
	}

	// 3. Signature flooding WITH brute-forced puzzles (strongest attacker).
	{
		res, sent, err := runSigFlood(params, imageSize, receivers, lossP, seed, true)
		if err != nil {
			return report, err
		}
		report.SigFloodStrong = res
		report.SigFloodStrongSent = sent
	}

	// 4. Denial of receipt, without and with the serve-limit defense.
	{
		noDef, err := runDoR(params, imageSize, receivers, lossP, seed, 0)
		if err != nil {
			return report, err
		}
		report.DoRVictimTxNoDefense = noDef
		// The defense threshold: serving one neighbor more than 4x a full
		// unit's worth of packets for a single unit marks it hostile.
		withDef, err := runDoR(params, imageSize, receivers, lossP, seed, 4*params.N)
		if err != nil {
			return report, err
		}
		report.DoRVictimTxDefense = withDef
	}
	return report, nil
}

func runSigFlood(params image.Params, imageSize, receivers int, lossP float64, seed int64, solve bool) (Result, int64, error) {
	s := Scenario{
		Protocol:   LRSeluge,
		ImageSize:  imageSize,
		Params:     params,
		Receivers:  receivers,
		LossP:      lossP,
		ExtraNodes: 1,
		Seed:       seed,
	}
	e, err := build(s)
	if err != nil {
		return Result{}, 0, err
	}
	attackerID := packet.NodeID(receivers + 1)
	var key puzzle.Key
	pparams := puzzle.Params{Strength: s.withDefaults().PuzzleStrength}
	if solve {
		// The released chain key is public knowledge once dissemination
		// begins; rebuild the experiment's chain to obtain it.
		chain, err := puzzle.NewChain([]byte("lrseluge-experiment"), 8)
		if err != nil {
			return Result{}, 0, err
		}
		key, err = chain.Key(1)
		if err != nil {
			return Result{}, 0, err
		}
	}
	fl, err := adversary.NewSigFlooder(attackerID, e.nw, 1, uint8(e.units-2), attackInterval, solve, key, pparams, seed^0xf100d)
	if err != nil {
		return Result{}, 0, err
	}
	fl.Start()
	res := e.run()
	return res, fl.Sent(), nil
}

func runDoR(params image.Params, imageSize, receivers int, lossP float64, seed int64, serveLimit int) (int64, error) {
	cfg := dissem.DefaultConfig()
	cfg.SNACKServeLimit = serveLimit
	s := Scenario{
		Protocol:   LRSeluge,
		ImageSize:  imageSize,
		Params:     params,
		Receivers:  receivers,
		LossP:      lossP,
		ExtraNodes: 1,
		Dissem:     cfg,
		Seed:       seed,
	}
	e, err := build(s)
	if err != nil {
		return 0, err
	}
	attackerID := packet.NodeID(receivers + 1)
	victim := packet.NodeID(0)
	dor, err := adversary.NewDoRAttacker(attackerID, e.nw, victim, 1, e.baseHandler.PacketsInUnit, attackInterval)
	if err != nil {
		return 0, err
	}
	dor.Start()
	e.run()
	if dor.Sent() == 0 {
		return 0, fmt.Errorf("experiment: denial-of-receipt attacker never fired")
	}
	// The attack's energy drain shows after the honest dissemination is
	// done: keep the attacker hammering the victim for a fixed window and
	// measure only the victim's transmissions during it.
	before := e.col.NodeTx(victim)
	e.eng.Run(e.eng.Now() + 120*sim.Second)
	return e.col.NodeTx(victim) - before, nil
}
