package experiment

import (
	"bytes"
	"strings"
	"testing"

	"lrseluge/internal/harness"
	"lrseluge/internal/image"
)

// smokeJSONL runs the catalog's smoke sweep on a pool of the given width
// and returns the JSONL byte stream it produces.
func smokeJSONL(t *testing.T, workers, runs int) []byte {
	t.Helper()
	entries, err := NamedSweep("smoke", SweepSpec{Runs: runs, Seed: 7})
	if err != nil {
		t.Fatalf("NamedSweep: %v", err)
	}
	var buf bytes.Buffer
	if _, err := RunGrid("smoke", entries, harness.Config{Workers: workers}, harness.NewJSONLSink(&buf)); err != nil {
		t.Fatalf("RunGrid(workers=%d): %v", workers, err)
	}
	return buf.Bytes()
}

// TestHarnessWorkerCountInvariance is the subsystem's acceptance test: a
// 2-worker and an 8-worker sweep must produce byte-identical JSONL to the
// serial path. Run under -race via scripts/check.sh.
func TestHarnessWorkerCountInvariance(t *testing.T) {
	const runs = 2
	serial := smokeJSONL(t, 1, runs)
	if len(serial) == 0 {
		t.Fatal("serial sweep produced no output")
	}
	if got := smokeJSONL(t, 2, runs); !bytes.Equal(serial, got) {
		t.Errorf("2-worker sweep diverged from serial output:\nserial: %s\n2-wkr:  %s", serial, got)
	}
	if got := smokeJSONL(t, 8, runs); !bytes.Equal(serial, got) {
		t.Errorf("8-worker sweep diverged from serial output:\nserial: %s\n8-wkr:  %s", serial, got)
	}
}

// TestRunAvgMatchesGridAggregation pins the rewired RunAvg to the
// historical serial math: the aggregated means/stds must be bit-identical
// whether one worker or many executed the runs.
func TestRunAvgMatchesGridAggregation(t *testing.T) {
	s := Scenario{
		Protocol:  LRSeluge,
		ImageSize: 2 * 1024,
		Params:    smallParams(),
		Receivers: 5,
		LossP:     0.2,
		Seed:      11,
	}
	serial, err := RunAvgParallel(s, 3, 1)
	if err != nil {
		t.Fatalf("serial RunAvg: %v", err)
	}
	parallel, err := RunAvgParallel(s, 3, 4)
	if err != nil {
		t.Fatalf("parallel RunAvg: %v", err)
	}
	if serial != parallel {
		t.Errorf("worker count changed the averages:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	if serial.Runs != 3 || !serial.ImagesOK || serial.Completed != 1 {
		t.Errorf("implausible averages: %+v", serial)
	}
	if serial.DataStd == 0 && serial.LatencyStd == 0 {
		t.Error("three distinct seeds produced zero deviation on every metric")
	}
}

// TestRunAvgErrorNamesFailingRun verifies a mid-sweep failure reports which
// run and seed died instead of discarding that context.
func TestRunAvgErrorNamesFailingRun(t *testing.T) {
	// n < k is rejected at build time, so every run fails; the error must
	// name the first one (run 0) and its derived seed.
	s := Scenario{
		Protocol:  LRSeluge,
		ImageSize: 1024,
		Params:    image.Params{PacketPayload: 72, K: 8, N: 4},
		Receivers: 3,
		Seed:      41,
	}
	_, err := RunAvg(s, 3)
	if err == nil {
		t.Fatal("invalid params did not error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "run 0") || !strings.Contains(msg, "seed 41") {
		t.Errorf("error does not name the failing run and seed: %q", msg)
	}
}

// TestNamedSweepUnknown checks catalog misses are reported with the
// available names.
func TestNamedSweepUnknown(t *testing.T) {
	if _, err := NamedSweep("no-such-sweep", SweepSpec{Runs: 1}); err == nil || !strings.Contains(err.Error(), "smoke") {
		t.Errorf("unknown sweep error unhelpful: %v", err)
	}
	if _, err := NamedSweep("smoke", SweepSpec{Runs: 0}); err == nil {
		t.Error("runs=0 accepted")
	}
}

// TestCatalogEntriesBuildable builds every catalog sweep in quick mode and
// sanity-checks the grids without running them.
func TestCatalogEntriesBuildable(t *testing.T) {
	for _, name := range SweepNames() {
		entries, err := NamedSweep(name, SweepSpec{Runs: 2, Seed: 1, Quick: true})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(entries) == 0 {
			t.Errorf("%s: empty grid", name)
		}
		jobs := GridJobs(name, entries)
		if len(jobs) != 2*len(entries) {
			t.Errorf("%s: %d jobs for %d entries at 2 runs", name, len(jobs), len(entries))
		}
		if SweepDescription(name) == "" {
			t.Errorf("%s: missing description", name)
		}
	}
}
