package experiment

import (
	"crypto/sha256"
	"encoding/binary"
	"testing"

	"lrseluge/internal/packet"
	"lrseluge/internal/radio"
	"lrseluge/internal/sim"
	"lrseluge/internal/topo"
)

// traceRun executes a multihop scenario and returns the run metrics together
// with a hash over the complete transmission trace: for every packet, in
// global transmission order, the virtual timestamp, the sender, and the
// exact wire bytes.
func traceRun(t *testing.T, s Scenario) (Result, [sha256.Size]byte) {
	t.Helper()
	e, err := build(s)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	h := sha256.New()
	var hdr [10]byte
	e.nw.SetTxObserver(func(at sim.Time, from packet.NodeID, p packet.Packet) {
		binary.BigEndian.PutUint64(hdr[0:8], uint64(at))
		binary.BigEndian.PutUint16(hdr[8:10], uint16(from))
		h.Write(hdr[:])
		h.Write(p.Marshal())
	})
	res := e.run()
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return res, sum
}

// multihopScenario is a small instance of the paper's multihop evaluation:
// a grid topology with a bursty Gilbert-Elliott channel.
func multihopScenario(seed int64) Scenario {
	graph, err := topo.Grid(4, 4, topo.Tight)
	if err != nil {
		panic(err)
	}
	return Scenario{
		Protocol:    LRSeluge,
		ImageSize:   2 * 1024,
		Params:      smallParams(),
		Graph:       graph,
		LossFactory: func() radio.LossModel { return radio.HeavyNoise() },
		Seed:        seed,
	}
}

// TestSameSeedReproducible is the regression test behind the repo's central
// claim: for a fixed seed, a run is fully reproducible. Two independent
// builds of the same multihop scenario must produce byte-identical packet
// traces and identical metrics. Any wall-clock read, global-rand draw, or
// map-iteration-order leak in the protocol stack breaks this test.
func TestSameSeedReproducible(t *testing.T) {
	const seed = 42
	res1, trace1 := traceRun(t, multihopScenario(seed))
	res2, trace2 := traceRun(t, multihopScenario(seed))

	if res1 != res2 {
		t.Errorf("same seed produced different metrics:\n run1: %+v\n run2: %+v", res1, res2)
	}
	if trace1 != trace2 {
		t.Errorf("same seed produced different packet traces: %x vs %x", trace1, trace2)
	}
	if res1.Completed != res1.Nodes {
		t.Errorf("scenario did not complete: %d/%d nodes", res1.Completed, res1.Nodes)
	}
	if !res1.ImagesOK {
		t.Error("reassembled images differ from original")
	}
}

// TestDifferentSeedsDiverge is the sanity check that the trace hash actually
// captures run behavior: different seeds must yield different traces.
func TestDifferentSeedsDiverge(t *testing.T) {
	_, trace1 := traceRun(t, multihopScenario(1))
	_, trace2 := traceRun(t, multihopScenario(2))
	if trace1 == trace2 {
		t.Error("runs with different seeds produced identical packet traces")
	}
}
