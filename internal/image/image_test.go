package image

import (
	"bytes"
	"testing"
	"testing/quick"

	"lrseluge/internal/crypt/hashx"
)

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		p  Params
		ok bool
	}{
		{DefaultParams(), true},
		{Params{PacketPayload: 72, K: 1, N: 1}, true},
		{Params{PacketPayload: 8, K: 4, N: 8}, false},   // payload too small
		{Params{PacketPayload: 72, K: 0, N: 4}, false},  // k < 1
		{Params{PacketPayload: 72, K: 8, N: 4}, false},  // n < k
		{Params{PacketPayload: 72, K: 2, N: 60}, false}, // no page capacity left
	}
	for i, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Errorf("case %d: err=%v want ok=%v", i, err, c.ok)
		}
	}
}

func TestPageByteArithmetic(t *testing.T) {
	p := Params{PacketPayload: 72, K: 32, N: 48}
	if got := p.DelugePageBytes(); got != 32*72 {
		t.Fatalf("deluge page bytes %d", got)
	}
	if got := p.SelugePageBytes(); got != 32*(72-hashx.Size) {
		t.Fatalf("seluge page bytes %d", got)
	}
	if got := p.LRPageBytes(); got != 32*72-48*hashx.Size {
		t.Fatalf("lr page bytes %d", got)
	}
	// Higher rate => smaller page capacity (the Fig. 6 trade-off).
	higher := Params{PacketPayload: 72, K: 32, N: 64}
	if higher.LRPageBytes() >= p.LRPageBytes() {
		t.Fatal("raising n should shrink per-page image capacity")
	}
}

func TestPagesFor(t *testing.T) {
	if PagesFor(100, 50) != 2 || PagesFor(101, 50) != 3 || PagesFor(1, 50) != 1 {
		t.Fatal("PagesFor wrong")
	}
	if PagesFor(0, 50) != 0 || PagesFor(10, 0) != 0 {
		t.Fatal("degenerate PagesFor wrong")
	}
}

func TestPartitionReassembleRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		size := int(seed%5000) + 1
		if size < 0 {
			size = -size + 1
		}
		data := Random(size, seed)
		pageBytes := 512
		pages, err := Partition(data, pageBytes)
		if err != nil {
			return false
		}
		for _, pg := range pages {
			if len(pg) != pageBytes {
				return false
			}
		}
		back, err := Reassemble(pages, size)
		if err != nil {
			return false
		}
		return bytes.Equal(back, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionErrors(t *testing.T) {
	if _, err := Partition(nil, 10); err == nil {
		t.Fatal("empty image accepted")
	}
	if _, err := Partition([]byte{1}, 0); err == nil {
		t.Fatal("zero page size accepted")
	}
}

func TestBlocksJoinRoundTrip(t *testing.T) {
	page := Random(96, 1)
	blocks, err := Blocks(page, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 8 || len(blocks[0]) != 12 {
		t.Fatalf("blocks shape wrong: %d x %d", len(blocks), len(blocks[0]))
	}
	if !bytes.Equal(Join(blocks), page) {
		t.Fatal("Join(Blocks(page)) != page")
	}
}

func TestBlocksRequiresDivisibility(t *testing.T) {
	if _, err := Blocks(make([]byte, 10), 3); err == nil {
		t.Fatal("non-divisible page accepted")
	}
}

func TestReassembleTooShort(t *testing.T) {
	if _, err := Reassemble([][]byte{{1, 2}}, 5); err == nil {
		t.Fatal("short reassembly accepted")
	}
}

func TestRandomDeterministic(t *testing.T) {
	if !bytes.Equal(Random(64, 9), Random(64, 9)) {
		t.Fatal("Random not deterministic for a seed")
	}
	if bytes.Equal(Random(64, 9), Random(64, 10)) {
		t.Fatal("different seeds produced identical images")
	}
}
