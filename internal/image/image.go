// Package image handles code-image partitioning: image -> fixed-size pages
// -> equal-length blocks (paper §IV-C), plus the per-protocol page-capacity
// arithmetic that determines how many pages a given image needs.
//
// All three protocols transmit packets with the same payload budget; they
// differ in how much of each payload is image bytes:
//
//   - Deluge: the whole payload is image data.
//   - Seluge: each payload embeds one 8-byte hash image of the
//     corresponding next-page packet, leaving payload-8 image bytes.
//   - LR-Seluge: each page appends the n hash images of the next page's
//     encoded packets to the page plaintext before erasure-encoding into n
//     payload-sized blocks, leaving k*payload - n*8 image bytes per page.
//
// This is why higher erasure rates n/k shrink per-page image capacity and
// eventually cost extra pages (the slow rise in the paper's Fig. 6).
package image

import (
	"fmt"
	"math/rand"

	"lrseluge/internal/crypt/hashx"
)

// Params fixes the packet geometry shared by base station and nodes.
type Params struct {
	// PacketPayload is the data bytes carried per packet (block length).
	PacketPayload int
	// K is the number of source blocks per page.
	K int
	// N is the number of encoded packets per page (LR-Seluge; N = K means
	// no redundancy).
	N int
}

// DefaultParams mirrors the evaluation setup: k = 32 source blocks (the
// paper fixes k = 32 in Fig. 6) and n = 48 encoded packets per page. Rate
// 1.5 is the sweet spot of our own Fig. 6 sweep: the first redundancy steps
// buy most of the loss resilience, while higher rates shrink per-page image
// capacity and cost extra pages (the same trade-off the paper reports).
func DefaultParams() Params {
	return Params{PacketPayload: 72, K: 32, N: 48}
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.PacketPayload < 2*hashx.Size {
		return fmt.Errorf("image: payload %d too small (need >= %d)", p.PacketPayload, 2*hashx.Size)
	}
	if p.K < 1 || p.N < p.K || p.N > 255 {
		return fmt.Errorf("image: invalid k=%d n=%d", p.K, p.N)
	}
	if p.LRPageBytes() < 1 {
		return fmt.Errorf("image: k=%d n=%d payload=%d leaves no image capacity per page", p.K, p.N, p.PacketPayload)
	}
	return nil
}

// DelugePageBytes returns image bytes per Deluge page.
func (p Params) DelugePageBytes() int { return p.K * p.PacketPayload }

// SelugePageBytes returns image bytes per Seluge page (one embedded hash
// image per packet).
func (p Params) SelugePageBytes() int { return p.K * (p.PacketPayload - hashx.Size) }

// LRPageBytes returns image bytes per LR-Seluge page (n next-page hash
// images appended to the page plaintext before encoding).
func (p Params) LRPageBytes() int { return p.K*p.PacketPayload - p.N*hashx.Size }

// PagesFor returns how many pages of the given capacity an image of
// imageSize bytes needs.
func PagesFor(imageSize, pageBytes int) int {
	if imageSize <= 0 || pageBytes <= 0 {
		return 0
	}
	return (imageSize + pageBytes - 1) / pageBytes
}

// Partition splits data into pages of pageBytes, zero-padding the final
// page. The result always contains at least one page for non-empty data.
func Partition(data []byte, pageBytes int) ([][]byte, error) {
	if pageBytes <= 0 {
		return nil, fmt.Errorf("image: page size %d must be positive", pageBytes)
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("image: empty image")
	}
	g := PagesFor(len(data), pageBytes)
	pages := make([][]byte, g)
	for i := 0; i < g; i++ {
		page := make([]byte, pageBytes)
		start := i * pageBytes
		end := start + pageBytes
		if end > len(data) {
			end = len(data)
		}
		copy(page, data[start:end])
		pages[i] = page
	}
	return pages, nil
}

// Blocks splits a page into k equal blocks; the page length must divide
// evenly (pages are constructed to guarantee this).
func Blocks(page []byte, k int) ([][]byte, error) {
	if k < 1 || len(page)%k != 0 {
		return nil, fmt.Errorf("image: page of %d bytes not divisible into %d blocks", len(page), k)
	}
	size := len(page) / k
	blocks := make([][]byte, k)
	for i := 0; i < k; i++ {
		blocks[i] = page[i*size : (i+1)*size]
	}
	return blocks, nil
}

// Join concatenates blocks back into a page.
func Join(blocks [][]byte) []byte {
	total := 0
	for _, b := range blocks {
		total += len(b)
	}
	out := make([]byte, 0, total)
	for _, b := range blocks {
		out = append(out, b...)
	}
	return out
}

// Reassemble concatenates pages and trims zero padding back to the original
// image size.
func Reassemble(pages [][]byte, imageSize int) ([]byte, error) {
	joined := Join(pages)
	if len(joined) < imageSize {
		return nil, fmt.Errorf("image: reassembled %d bytes < image size %d", len(joined), imageSize)
	}
	return joined[:imageSize], nil
}

// Random generates a deterministic pseudo-random code image for experiments
// and tests.
func Random(size int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(rng.Intn(256))
	}
	return data
}
