package metrics

import (
	"strings"
	"testing"

	"lrseluge/internal/packet"
	"lrseluge/internal/sim"
)

func TestTxAccounting(t *testing.T) {
	c := New()
	a := &packet.Adv{Src: 1}
	d := &packet.Data{Src: 2, Unit: 3, Index: 7, Payload: make([]byte, 10)}
	c.RecordTx(1, a)
	c.RecordTx(2, d)
	c.RecordTx(2, d)

	if c.Tx(packet.TypeAdv) != 1 || c.Tx(packet.TypeData) != 2 {
		t.Fatal("tx counts wrong")
	}
	if c.TxBytesOf(packet.TypeData) != 2*int64(d.WireSize()) {
		t.Fatal("tx bytes wrong")
	}
	if c.TotalPackets() != 3 {
		t.Fatal("total packets wrong")
	}
	if c.TotalBytes() != int64(a.WireSize())+2*int64(d.WireSize()) {
		t.Fatal("total bytes wrong")
	}
	if c.NodeTx(2) != 2 || c.NodeTx(1) != 1 || c.NodeTx(9) != 0 {
		t.Fatal("per-node counts wrong")
	}
	if c.DataTxForUnit(3) != 2 || c.DataTxForUnit(1) != 0 {
		t.Fatal("per-unit counts wrong")
	}
	if c.DataTxForIndex(3, 7) != 2 || c.DataTxForIndex(3, 8) != 0 {
		t.Fatal("per-index counts wrong")
	}
	if c.DataTxFromUnit(2) != 2 || c.DataTxFromUnit(4) != 0 {
		t.Fatal("from-unit counts wrong")
	}
}

func TestCompletionKeepsFirst(t *testing.T) {
	c := New()
	c.RecordCompletion(4, 10*sim.Second)
	c.RecordCompletion(4, 20*sim.Second)
	c.RecordCompletion(5, 15*sim.Second)
	if c.Completions() != 2 {
		t.Fatal("completion count wrong")
	}
	if got, ok := c.CompletionTime(4); !ok || got != 10*sim.Second {
		t.Fatal("first completion not kept")
	}
	if c.Latency() != 15*sim.Second {
		t.Fatalf("latency %v, want max completion 15s", c.Latency())
	}
}

func TestSecurityCounters(t *testing.T) {
	c := New()
	c.RecordAuthDrop()
	c.RecordAuthDrop()
	c.RecordForgedAccepted()
	c.RecordSigVerification()
	c.RecordPuzzleReject()
	c.RecordChannelLoss()
	if c.AuthDrops() != 2 || c.ForgedAccepted() != 1 || c.SigVerifications() != 1 ||
		c.PuzzleRejects() != 1 || c.ChannelLosses() != 1 {
		t.Fatal("security counters wrong")
	}
}

func TestRxAccounting(t *testing.T) {
	c := New()
	c.RecordRx(&packet.Adv{})
	if c.Rx(packet.TypeAdv) != 1 {
		t.Fatal("rx count wrong")
	}
}

func TestStringSummary(t *testing.T) {
	c := New()
	c.RecordTx(0, &packet.Adv{})
	s := c.String()
	if !strings.Contains(s, "adv") || !strings.Contains(s, "total") {
		t.Fatalf("summary missing fields: %q", s)
	}
	// No fault activity: the fault block stays out of the summary.
	if strings.Contains(s, "faults[") {
		t.Fatalf("fault block rendered without faults: %q", s)
	}
}

// TestStringGolden pins the byte-exact rendering, including the ordering of
// the per-type section and the fault-counter block: both iterate maps, so
// this golden is the regression net for report determinism.
func TestStringGolden(t *testing.T) {
	c := New()
	// Insert packet types in an order that differs from their sort order.
	c.RecordTx(2, &packet.Data{Src: 2, Unit: 1, Index: 0, Payload: make([]byte, 4)})
	c.RecordTx(1, &packet.Adv{Src: 1})
	c.RecordTx(0, &packet.Sig{Src: 0, Signature: make([]byte, 64)})
	c.RecordCompletion(1, 3*sim.Second)

	// Fault activity, with two nodes still down at the end inserted in
	// descending id order to catch map-order leaks.
	c.RecordCrash(7, 1*sim.Second, 3)
	c.RecordCrash(2, 1*sim.Second, 0)
	c.RecordCrash(1, 1*sim.Second, 1)
	c.RecordReboot(1, 2*sim.Second)
	c.RecordRefetch()
	c.RecordFaultDrop()
	c.RecordFaultDrop()

	want := "adv: 1 pkts / 19 B; data: 1 pkts / 26 B; sig: 1 pkts / 115 B; " +
		"total 160 B; latency 3s; completed 1; " +
		"faults[crashes 3 reboots 1 lost_pkts 4 refetched 1 fault_drops 2 downtime 1s still_down 2 7]"
	for i := 0; i < 10; i++ { // map iteration varies per run; render repeatedly
		if got := c.String(); got != want {
			t.Fatalf("iteration %d:\n got %q\nwant %q", i, got, want)
		}
	}
}

func TestFaultDropCounter(t *testing.T) {
	c := New()
	c.RecordFaultDrop()
	c.RecordChannelLoss()
	if c.FaultDrops() != 1 || c.ChannelLosses() != 1 {
		t.Fatalf("fault_drops=%d channel_losses=%d", c.FaultDrops(), c.ChannelLosses())
	}
}

func TestDenseCollectorMatchesMapCollector(t *testing.T) {
	m, d := New(), NewDense(8)
	for _, c := range []*Collector{m, d} {
		c.RecordTx(3, &packet.Adv{Src: 3})
		c.RecordTx(3, &packet.Adv{Src: 3})
		c.RecordTx(5, &packet.Adv{Src: 5})
		c.RecordCompletion(2, 100)
		c.RecordCompletion(2, 50) // first completion wins
		c.RecordCompletion(7, 400)
	}
	if m.NodeTx(3) != d.NodeTx(3) || d.NodeTx(3) != 2 {
		t.Fatalf("NodeTx(3): map %d dense %d", m.NodeTx(3), d.NodeTx(3))
	}
	if m.NodeTx(6) != d.NodeTx(6) || d.NodeTx(6) != 0 {
		t.Fatalf("NodeTx(6): map %d dense %d", m.NodeTx(6), d.NodeTx(6))
	}
	if m.Completions() != d.Completions() || d.Completions() != 2 {
		t.Fatalf("Completions: map %d dense %d", m.Completions(), d.Completions())
	}
	if m.Latency() != d.Latency() || d.Latency() != 400 {
		t.Fatalf("Latency: map %v dense %v", m.Latency(), d.Latency())
	}
	for _, id := range []packet.NodeID{2, 7, 4} {
		mt, mok := m.CompletionTime(id)
		dt, dok := d.CompletionTime(id)
		if mt != dt || mok != dok {
			t.Fatalf("CompletionTime(%d): map (%v,%v) dense (%v,%v)", id, mt, mok, dt, dok)
		}
	}
	if m.String() != d.String() {
		t.Fatalf("String differs:\n map  %s\n dense %s", m, d)
	}
}
