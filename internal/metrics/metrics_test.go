package metrics

import (
	"strings"
	"testing"

	"lrseluge/internal/packet"
	"lrseluge/internal/sim"
)

func TestTxAccounting(t *testing.T) {
	c := New()
	a := &packet.Adv{Src: 1}
	d := &packet.Data{Src: 2, Unit: 3, Index: 7, Payload: make([]byte, 10)}
	c.RecordTx(1, a)
	c.RecordTx(2, d)
	c.RecordTx(2, d)

	if c.Tx(packet.TypeAdv) != 1 || c.Tx(packet.TypeData) != 2 {
		t.Fatal("tx counts wrong")
	}
	if c.TxBytesOf(packet.TypeData) != 2*int64(d.WireSize()) {
		t.Fatal("tx bytes wrong")
	}
	if c.TotalPackets() != 3 {
		t.Fatal("total packets wrong")
	}
	if c.TotalBytes() != int64(a.WireSize())+2*int64(d.WireSize()) {
		t.Fatal("total bytes wrong")
	}
	if c.NodeTx(2) != 2 || c.NodeTx(1) != 1 || c.NodeTx(9) != 0 {
		t.Fatal("per-node counts wrong")
	}
	if c.DataTxForUnit(3) != 2 || c.DataTxForUnit(1) != 0 {
		t.Fatal("per-unit counts wrong")
	}
	if c.DataTxForIndex(3, 7) != 2 || c.DataTxForIndex(3, 8) != 0 {
		t.Fatal("per-index counts wrong")
	}
	if c.DataTxFromUnit(2) != 2 || c.DataTxFromUnit(4) != 0 {
		t.Fatal("from-unit counts wrong")
	}
}

func TestCompletionKeepsFirst(t *testing.T) {
	c := New()
	c.RecordCompletion(4, 10*sim.Second)
	c.RecordCompletion(4, 20*sim.Second)
	c.RecordCompletion(5, 15*sim.Second)
	if c.Completions() != 2 {
		t.Fatal("completion count wrong")
	}
	if got, ok := c.CompletionTime(4); !ok || got != 10*sim.Second {
		t.Fatal("first completion not kept")
	}
	if c.Latency() != 15*sim.Second {
		t.Fatalf("latency %v, want max completion 15s", c.Latency())
	}
}

func TestSecurityCounters(t *testing.T) {
	c := New()
	c.RecordAuthDrop()
	c.RecordAuthDrop()
	c.RecordForgedAccepted()
	c.RecordSigVerification()
	c.RecordPuzzleReject()
	c.RecordChannelLoss()
	if c.AuthDrops() != 2 || c.ForgedAccepted() != 1 || c.SigVerifications() != 1 ||
		c.PuzzleRejects() != 1 || c.ChannelLosses() != 1 {
		t.Fatal("security counters wrong")
	}
}

func TestRxAccounting(t *testing.T) {
	c := New()
	c.RecordRx(&packet.Adv{})
	if c.Rx(packet.TypeAdv) != 1 {
		t.Fatal("rx count wrong")
	}
}

func TestStringSummary(t *testing.T) {
	c := New()
	c.RecordTx(0, &packet.Adv{})
	s := c.String()
	if !strings.Contains(s, "adv") || !strings.Contains(s, "total") {
		t.Fatalf("summary missing fields: %q", s)
	}
}
