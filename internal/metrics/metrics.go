// Package metrics collects the performance measures the paper reports: data,
// SNACK and advertisement packet counts, total communication cost in bytes,
// and dissemination latency (time until every node holds the full image),
// plus security counters for the adversarial experiments.
package metrics

import (
	"fmt"
	"strings"

	"lrseluge/internal/detmap"
	"lrseluge/internal/packet"
	"lrseluge/internal/sim"
)

// Collector accumulates counters for one simulation run. The zero value is
// not ready for use; call New.
type Collector struct {
	txCount map[packet.Type]int64
	txBytes map[packet.Type]int64
	rxCount map[packet.Type]int64

	perNodeTx     map[packet.NodeID]int64
	dataTxByUnit  map[int]int64
	dataTxByIndex map[[2]int]int64 // (unit, index) -> transmissions

	completion map[packet.NodeID]sim.Time

	// Dense mode (NewDense): node-indexed slices replace the per-node maps
	// when ids are dense in [0, n). ~16 B/node instead of two map entries,
	// which matters at 100k nodes. denseDone uses -1 as the "not completed"
	// sentinel; latency and the completion count are maintained incrementally
	// so reporting never rescans the slices.
	denseTx   []int64
	denseDone []sim.Time
	nDone     int
	maxDone   sim.Time

	// Fault-injection counters (see internal/fault).
	crashes       int64
	reboots       int64
	crashLostPkts int64                      // packets of in-progress units lost to crashes (RAM wiped)
	refetched     int64                      // packets re-fetched for crash-interrupted units after reboot
	downtime      sim.Time                   // sum of closed crash->reboot windows
	lastCrash     map[packet.NodeID]sim.Time // open crash windows
	lastReboot    map[packet.NodeID]sim.Time // most recent reboot per node

	// Security counters.
	authDrops        int64 // packets dropped by per-packet authentication
	forgedAccepted   int64 // forged packets accepted (must stay zero)
	sigVerifications int64 // expensive signature verifications performed
	puzzleRejects    int64 // signature packets rejected by the weak authenticator
	channelLosses    int64 // packets dropped by the lossy channel
	faultDrops       int64 // deliveries blocked by the fault overlay
}

// New returns an empty collector.
func New() *Collector {
	return &Collector{
		txCount:       make(map[packet.Type]int64),
		txBytes:       make(map[packet.Type]int64),
		rxCount:       make(map[packet.Type]int64),
		perNodeTx:     make(map[packet.NodeID]int64),
		dataTxByUnit:  make(map[int]int64),
		dataTxByIndex: make(map[[2]int]int64),
		completion:    make(map[packet.NodeID]sim.Time),
		lastCrash:     make(map[packet.NodeID]sim.Time),
		lastReboot:    make(map[packet.NodeID]sim.Time),
	}
}

// NewDense returns a collector whose per-node state is node-indexed slices
// rather than maps, for runs whose node ids are dense in [0, n). Every
// counter and query behaves identically to New; only the memory layout (and
// therefore the feasible network size) changes.
func NewDense(n int) *Collector {
	c := New()
	c.perNodeTx = nil
	c.completion = nil
	c.denseTx = make([]int64, n)
	c.denseDone = make([]sim.Time, n)
	for i := range c.denseDone {
		c.denseDone[i] = -1
	}
	return c
}

// RecordTx accounts one transmission of p by node from.
func (c *Collector) RecordTx(from packet.NodeID, p packet.Packet) {
	c.txCount[p.Kind()]++
	c.txBytes[p.Kind()] += int64(p.WireSize())
	if c.denseTx != nil {
		c.denseTx[from]++
	} else {
		c.perNodeTx[from]++
	}
	if d, ok := p.(*packet.Data); ok {
		c.dataTxByUnit[int(d.Unit)]++
		c.dataTxByIndex[[2]int{int(d.Unit), int(d.Index)}]++
	}
}

// DataTxForIndex returns transmissions of one specific (unit, index) packet,
// used by scheduler diagnostics and ablation benches.
func (c *Collector) DataTxForIndex(u, idx int) int64 {
	return c.dataTxByIndex[[2]int{u, idx}]
}

// DataTxForUnit returns the number of data-packet transmissions for one
// unit, used by Fig. 3 to count page data packets separately from hash-page
// traffic.
func (c *Collector) DataTxForUnit(u int) int64 { return c.dataTxByUnit[u] }

// DataTxFromUnit returns data-packet transmissions for all units >= u.
func (c *Collector) DataTxFromUnit(u int) int64 {
	var total int64
	for unit, n := range c.dataTxByUnit {
		if unit >= u {
			total += n
		}
	}
	return total
}

// RecordRx accounts a successful delivery of p to a node.
func (c *Collector) RecordRx(p packet.Packet) { c.rxCount[p.Kind()]++ }

// RecordChannelLoss accounts a packet dropped by the channel. Channel and
// fault drops are disjoint: every lost delivery is recorded under exactly
// one of the two.
func (c *Collector) RecordChannelLoss() { c.channelLosses++ }

// RecordFaultDrop accounts a delivery blocked by the fault overlay (down
// endpoint, link outage window, or partition boundary).
func (c *Collector) RecordFaultDrop() { c.faultDrops++ }

// RecordAuthDrop accounts a packet rejected by immediate authentication.
func (c *Collector) RecordAuthDrop() { c.authDrops++ }

// RecordForgedAccepted accounts a forged packet that slipped past
// authentication; any nonzero value is a protocol failure.
func (c *Collector) RecordForgedAccepted() { c.forgedAccepted++ }

// RecordSigVerification accounts one expensive signature verification.
func (c *Collector) RecordSigVerification() { c.sigVerifications++ }

// RecordPuzzleReject accounts a signature packet filtered by the weak
// authenticator before any expensive verification.
func (c *Collector) RecordPuzzleReject() { c.puzzleRejects++ }

// RecordCompletion notes that node finished receiving the image at time t.
// Only the first completion per node is kept.
func (c *Collector) RecordCompletion(node packet.NodeID, t sim.Time) {
	if c.denseDone != nil {
		if c.denseDone[node] < 0 {
			c.denseDone[node] = t
			c.nDone++
			if t > c.maxDone {
				c.maxDone = t
			}
		}
		return
	}
	if _, ok := c.completion[node]; !ok {
		c.completion[node] = t
	}
}

// RecordCrash notes that node lost power at time t with lostPkts packets of
// its in-progress unit wiped from RAM (flash-resident completed units are
// retained and not counted).
func (c *Collector) RecordCrash(node packet.NodeID, t sim.Time, lostPkts int) {
	c.crashes++
	c.crashLostPkts += int64(lostPkts)
	c.lastCrash[node] = t
}

// RecordReboot notes that node powered back on at time t, closing its
// downtime window.
func (c *Collector) RecordReboot(node packet.NodeID, t sim.Time) {
	c.reboots++
	if at, ok := c.lastCrash[node]; ok {
		c.downtime += t - at
		delete(c.lastCrash, node)
	}
	c.lastReboot[node] = t
}

// RecordRefetch accounts one packet re-fetched after a reboot for the unit a
// crash interrupted — the price of losing RAM assembly state. Packets of
// flash-retained units are never re-fetched, so this counter measures the
// crash recovery cost directly.
func (c *Collector) RecordRefetch() { c.refetched++ }

// Crashes returns the number of node crashes.
func (c *Collector) Crashes() int64 { return c.crashes }

// Reboots returns the number of node reboots.
func (c *Collector) Reboots() int64 { return c.reboots }

// CrashLostPkts returns the packets wiped from RAM across all crashes.
func (c *Collector) CrashLostPkts() int64 { return c.crashLostPkts }

// RefetchedPkts returns the packets re-fetched for crash-interrupted units.
func (c *Collector) RefetchedPkts() int64 { return c.refetched }

// TotalDowntime returns the summed duration of closed crash->reboot windows
// (a node still down when the run ends contributes nothing).
func (c *Collector) TotalDowntime() sim.Time { return c.downtime }

// MeanRecoveryLatencySec returns the average time from a node's most recent
// reboot to its completion, over nodes that completed after rebooting — the
// fault subsystem's recovery-latency measure. Zero when no node recovered.
func (c *Collector) MeanRecoveryLatencySec() float64 {
	var sum sim.Time
	var n int
	for node, rebootAt := range c.lastReboot {
		// Inlined completion lookup: the map-range body stays call-free so
		// the order-insensitivity proof covers this summation directly.
		var done sim.Time = -1
		if c.denseDone != nil {
			if int(node) < len(c.denseDone) {
				done = c.denseDone[node]
			}
		} else if t, ok := c.completion[node]; ok {
			done = t
		}
		if done >= rebootAt {
			sum += done - rebootAt
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum.Seconds() / float64(n)
}

// Tx returns the number of transmissions of the given type.
func (c *Collector) Tx(t packet.Type) int64 { return c.txCount[t] }

// TxBytesOf returns the bytes transmitted for the given type.
func (c *Collector) TxBytesOf(t packet.Type) int64 { return c.txBytes[t] }

// Rx returns the number of successful deliveries of the given type.
func (c *Collector) Rx(t packet.Type) int64 { return c.rxCount[t] }

// TotalBytes returns the total communication cost in bytes across all packet
// types, the paper's fairness metric (§VI: SNACKs differ in length between
// schemes, so bytes are compared, not just counts).
func (c *Collector) TotalBytes() int64 {
	var total int64
	for _, b := range c.txBytes {
		total += b
	}
	return total
}

// TotalPackets returns the total number of transmissions.
func (c *Collector) TotalPackets() int64 {
	var total int64
	for _, n := range c.txCount {
		total += n
	}
	return total
}

// NodeTx returns the number of transmissions node id made, used by the
// denial-of-receipt experiment to measure victim load.
func (c *Collector) NodeTx(id packet.NodeID) int64 {
	if c.denseTx != nil {
		if int(id) < len(c.denseTx) {
			return c.denseTx[id]
		}
		return 0
	}
	return c.perNodeTx[id]
}

// Completions returns how many nodes have completed.
func (c *Collector) Completions() int {
	if c.denseDone != nil {
		return c.nDone
	}
	return len(c.completion)
}

// CompletionTime returns when node finished, if it did.
func (c *Collector) CompletionTime(node packet.NodeID) (sim.Time, bool) {
	if c.denseDone != nil {
		if int(node) < len(c.denseDone) && c.denseDone[node] >= 0 {
			return c.denseDone[node], true
		}
		return 0, false
	}
	t, ok := c.completion[node]
	return t, ok
}

// Latency returns the overall dissemination latency: the maximum completion
// time over all completed nodes.
func (c *Collector) Latency() sim.Time {
	if c.denseDone != nil {
		return c.maxDone
	}
	var max sim.Time
	for _, t := range c.completion {
		if t > max {
			max = t
		}
	}
	return max
}

// AuthDrops returns the count of authentication rejections.
func (c *Collector) AuthDrops() int64 { return c.authDrops }

// ForgedAccepted returns the count of forged packets accepted.
func (c *Collector) ForgedAccepted() int64 { return c.forgedAccepted }

// SigVerifications returns the count of signature verifications.
func (c *Collector) SigVerifications() int64 { return c.sigVerifications }

// PuzzleRejects returns the count of weak-authenticator rejections.
func (c *Collector) PuzzleRejects() int64 { return c.puzzleRejects }

// ChannelLosses returns the count of channel-dropped packets (fault-blocked
// deliveries are counted separately; see FaultDrops).
func (c *Collector) ChannelLosses() int64 { return c.channelLosses }

// FaultDrops returns the count of deliveries blocked by the fault overlay.
func (c *Collector) FaultDrops() int64 { return c.faultDrops }

// String renders a human-readable summary. All map-derived sections iterate
// in detmap.SortedKeys order, so the rendering is a deterministic function
// of the counters alone.
func (c *Collector) String() string {
	var sb strings.Builder
	for _, t := range detmap.SortedKeys(c.txCount) {
		fmt.Fprintf(&sb, "%s: %d pkts / %d B; ", t, c.txCount[t], c.txBytes[t])
	}
	fmt.Fprintf(&sb, "total %d B; latency %v; completed %d", c.TotalBytes(), c.Latency(), c.Completions())
	if c.crashes > 0 || c.reboots > 0 || c.faultDrops > 0 {
		fmt.Fprintf(&sb, "; faults[crashes %d reboots %d lost_pkts %d refetched %d fault_drops %d downtime %v",
			c.crashes, c.reboots, c.crashLostPkts, c.refetched, c.faultDrops, c.downtime)
		if len(c.lastCrash) > 0 {
			sb.WriteString(" still_down")
			for _, node := range detmap.SortedKeys(c.lastCrash) {
				fmt.Fprintf(&sb, " %d", node)
			}
		}
		sb.WriteString("]")
	}
	return sb.String()
}
