package adversary

import (
	"testing"

	"lrseluge/internal/crypt/puzzle"
	"lrseluge/internal/metrics"
	"lrseluge/internal/packet"
	"lrseluge/internal/radio"
	"lrseluge/internal/sim"
	"lrseluge/internal/topo"
)

type sink struct {
	data  []*packet.Data
	sigs  []*packet.Sig
	snack []*packet.SNACK
	advs  []*packet.Adv
}

func (s *sink) HandlePacket(_ packet.NodeID, p packet.Packet) {
	switch pkt := p.(type) {
	case *packet.Data:
		s.data = append(s.data, pkt)
	case *packet.Sig:
		s.sigs = append(s.sigs, pkt)
	case *packet.SNACK:
		s.snack = append(s.snack, pkt)
	case *packet.Adv:
		s.advs = append(s.advs, pkt)
	}
}

func newNet(t *testing.T, nodes int) (*radio.Network, *sim.Engine) {
	t.Helper()
	eng := sim.New()
	g, err := topo.Complete(nodes)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := radio.New(eng, g, radio.NoLoss{}, radio.DefaultConfig(), metrics.New(), 4)
	if err != nil {
		t.Fatal(err)
	}
	return nw, eng
}

func TestInjectorForgesFromTemplate(t *testing.T) {
	nw, eng := newNet(t, 3)
	victim := &sink{}
	if err := nw.Attach(0, victim); err != nil {
		t.Fatal(err)
	}
	genuineSender := &sink{}
	if err := nw.Attach(1, genuineSender); err != nil {
		t.Fatal(err)
	}
	inj, err := NewInjector(2, nw, 100*sim.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	inj.Start()

	// No template yet: nothing is injected.
	eng.Run(1 * sim.Second)
	if inj.Sent() != 0 {
		t.Fatal("injector fired without a template")
	}

	// A genuine data packet provides the shape.
	genuine := &packet.Data{Src: 1, Version: 1, Unit: 3, Index: 5, Payload: make([]byte, 40)}
	nw.Broadcast(1, genuine)
	eng.Run(5 * sim.Second)
	inj.Stop()
	eng.Run(6 * sim.Second)

	if inj.Sent() == 0 {
		t.Fatal("injector never fired after seeing a template")
	}
	forgedSeen := 0
	for _, d := range victim.data {
		if d.Src == 2 {
			forgedSeen++
			if int(d.Unit) != 3 || len(d.Payload) != 40 {
				t.Fatalf("forgery shape wrong: unit=%d len=%d", d.Unit, len(d.Payload))
			}
		}
	}
	if forgedSeen == 0 {
		t.Fatal("no forgeries delivered")
	}
}

func TestSigFlooderWithoutPuzzles(t *testing.T) {
	nw, eng := newNet(t, 2)
	victim := &sink{}
	if err := nw.Attach(0, victim); err != nil {
		t.Fatal(err)
	}
	fl, err := NewSigFlooder(1, nw, 1, 5, 50*sim.Millisecond, false, puzzle.Key{}, puzzle.Params{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	fl.Start()
	eng.Run(2 * sim.Second)
	fl.Stop()
	eng.Run(3 * sim.Second)
	if fl.Sent() < 10 || len(victim.sigs) < 10 {
		t.Fatalf("flood too weak: sent=%d delivered=%d", fl.Sent(), len(victim.sigs))
	}
	for _, s := range victim.sigs {
		if s.Version != 1 || s.Pages != 5 {
			t.Fatal("flooded sig fields wrong")
		}
	}
}

func TestSigFlooderWithSolvedPuzzles(t *testing.T) {
	chain, err := puzzle.NewChain([]byte("flood"), 2)
	if err != nil {
		t.Fatal(err)
	}
	key, _ := chain.Key(1)
	pp := puzzle.Params{Strength: 6}
	nw, eng := newNet(t, 2)
	victim := &sink{}
	if err := nw.Attach(0, victim); err != nil {
		t.Fatal(err)
	}
	fl, err := NewSigFlooder(1, nw, 1, 5, 100*sim.Millisecond, true, key, pp, 3)
	if err != nil {
		t.Fatal(err)
	}
	fl.Start()
	eng.Run(1 * sim.Second)
	fl.Stop()
	eng.Run(2 * sim.Second)
	if len(victim.sigs) == 0 {
		t.Fatal("no flooded sigs delivered")
	}
	for _, s := range victim.sigs {
		if !puzzle.Verify(pp, s.PuzzleMessage(), s.PuzzleKey, s.PuzzleSol) {
			t.Fatal("strong flooder produced an invalid puzzle")
		}
		if !puzzle.VerifyKey(chain.Commitment(), s.PuzzleKey, 1) {
			t.Fatal("strong flooder used a bogus chain key")
		}
	}
}

func TestDoRAttackerTracksVictim(t *testing.T) {
	nw, eng := newNet(t, 3)
	victim := &sink{}
	if err := nw.Attach(0, victim); err != nil {
		t.Fatal(err)
	}
	if err := nw.Attach(1, &sink{}); err != nil {
		t.Fatal(err)
	}
	dor, err := NewDoRAttacker(2, nw, 0, 1, func(int) int { return 8 }, 100*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	dor.Start()

	// Before any advertisement from the victim the attacker stays silent.
	eng.Run(1 * sim.Second)
	if dor.Sent() != 0 {
		t.Fatal("attacker fired before learning victim state")
	}

	// The victim advertises 3 units; the attacker must request unit 2 with
	// all bits set, addressed to the victim.
	nw.Broadcast(0, &packet.Adv{Src: 0, Version: 1, Units: 3})
	eng.Run(3 * sim.Second)
	dor.Stop()
	eng.Run(4 * sim.Second)

	if dor.Sent() == 0 {
		t.Fatal("attacker never fired")
	}
	found := false
	for _, s := range victim.snack {
		if s.Dest == 0 && int(s.Unit) == 2 && s.Bits.Count() == 8 {
			found = true
		}
	}
	if !found {
		t.Fatal("expected all-ones SNACK for unit 2 addressed to victim")
	}
}
