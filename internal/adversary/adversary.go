// Package adversary implements the attacker models of the paper's threat
// analysis (§III-B, §IV-E): forged data-packet injection (code-image
// integrity / buffer-exhaustion DoS), signature-packet flooding (expensive
// verification DoS), and the denial-of-receipt attack (SNACK flooding to
// deplete a victim's energy).
//
// Adversaries attach to the radio like ordinary nodes but run their own
// logic instead of the dissemination protocol. They are assumed to know all
// public protocol parameters and to overhear all local traffic.
package adversary

import (
	"math/rand"

	"lrseluge/internal/crypt/hashx"
	"lrseluge/internal/crypt/puzzle"
	"lrseluge/internal/packet"
	"lrseluge/internal/radio"
	"lrseluge/internal/sim"
)

// Injector floods forged data packets. It shapes forgeries after overheard
// genuine packets (same unit, index space, payload and proof sizes) with
// corrupted contents — the strongest cheap forgery: everything is right
// except the bytes, so only per-packet authentication can stop it.
type Injector struct {
	id       packet.NodeID
	nw       *radio.Network
	eng      *sim.Engine
	rng      *rand.Rand
	interval sim.Time

	template  *packet.Data
	timer     sim.Timer
	sent      int64
	stopped   bool
	intensity float64
}

// NewInjector creates an injector that transmits one forged packet per
// interval once it has overheard a template.
func NewInjector(id packet.NodeID, nw *radio.Network, interval sim.Time, seed int64) (*Injector, error) {
	a := &Injector{
		id:        id,
		nw:        nw,
		eng:       nw.Engine(),
		rng:       rand.New(rand.NewSource(seed)),
		interval:  interval,
		intensity: 1,
	}
	if err := nw.Attach(id, a); err != nil {
		return nil, err
	}
	return a, nil
}

// Start begins the injection loop.
func (a *Injector) Start() {
	a.timer = a.eng.Schedule(a.interval, a.tick)
}

// Stop halts the injection loop.
func (a *Injector) Stop() {
	a.stopped = true
	a.timer.Stop()
}

// Sent returns the number of forged packets transmitted.
func (a *Injector) Sent() int64 { return a.sent }

// SetIntensity scales the injection rate: the effective interval is the base
// interval divided by intensity, so 2 doubles the flood and 0 pauses it (the
// loop keeps ticking idle at the base interval, ready for the next ramp-up).
// Driven by fault-plan adversary-ramp events to model a time-varying
// attacker.
func (a *Injector) SetIntensity(intensity float64) {
	if intensity < 0 {
		intensity = 0
	}
	a.intensity = intensity
}

// HandlePacket implements radio.Receiver: learn the shape of current
// traffic so forgeries target exactly the unit receivers are assembling.
func (a *Injector) HandlePacket(_ packet.NodeID, p packet.Packet) {
	if d, ok := p.(*packet.Data); ok {
		cp := *d
		cp.Payload = append([]byte(nil), d.Payload...)
		cp.Proof = append([]hashx.Image(nil), d.Proof...)
		a.template = &cp
	}
}

func (a *Injector) tick() {
	if a.stopped {
		return
	}
	if a.intensity <= 0 {
		// Paused by an adversary ramp: tick idle at the base interval so a
		// later ramp-up resumes without rescheduling bookkeeping.
		a.timer = a.eng.Schedule(a.interval, a.tick)
		return
	}
	if a.template != nil {
		f := *a.template
		f.Src = a.id
		// Random index within the unit's packet space and garbage payload:
		// structurally perfect, cryptographically worthless.
		f.Index = a.template.Index
		payload := make([]byte, len(a.template.Payload))
		a.rng.Read(payload)
		f.Payload = payload
		a.nw.Broadcast(a.id, &f)
		a.sent++
	}
	a.timer = a.eng.Schedule(sim.Time(float64(a.interval)/a.intensity), a.tick)
}

// SigFlooder floods forged signature packets to coerce nodes into expensive
// signature verifications. With a valid puzzle key and per-packet puzzle
// solving (SolvePuzzles=true) it models the strongest attacker, who pays a
// brute-force search per packet to defeat the weak authenticator; otherwise
// packets die at the one-hash puzzle check.
type SigFlooder struct {
	id       packet.NodeID
	nw       *radio.Network
	eng      *sim.Engine
	rng      *rand.Rand
	interval sim.Time
	version  uint16
	pages    uint8

	// SolvePuzzles, when true, attaches a valid message-specific puzzle
	// using Key (the released chain key, public once dissemination
	// started).
	solve  bool
	key    puzzle.Key
	params puzzle.Params

	timer   sim.Timer
	sent    int64
	stopped bool
}

// NewSigFlooder creates a signature flooder. key and params are only used
// when solvePuzzles is true.
func NewSigFlooder(id packet.NodeID, nw *radio.Network, version uint16, pages uint8, interval sim.Time, solvePuzzles bool, key puzzle.Key, params puzzle.Params, seed int64) (*SigFlooder, error) {
	a := &SigFlooder{
		id:       id,
		nw:       nw,
		eng:      nw.Engine(),
		rng:      rand.New(rand.NewSource(seed)),
		interval: interval,
		version:  version,
		pages:    pages,
		solve:    solvePuzzles,
		key:      key,
		params:   params,
	}
	if err := nw.Attach(id, a); err != nil {
		return nil, err
	}
	return a, nil
}

// Start begins the flood.
func (a *SigFlooder) Start() { a.timer = a.eng.Schedule(a.interval, a.tick) }

// Stop halts the flood.
func (a *SigFlooder) Stop() {
	a.stopped = true
	a.timer.Stop()
}

// Sent returns the number of forged signature packets transmitted.
func (a *SigFlooder) Sent() int64 { return a.sent }

// HandlePacket implements radio.Receiver (the flooder ignores traffic).
func (a *SigFlooder) HandlePacket(packet.NodeID, packet.Packet) {}

func (a *SigFlooder) tick() {
	if a.stopped {
		return
	}
	s := &packet.Sig{
		Src:       a.id,
		Version:   a.version,
		Pages:     a.pages,
		Signature: make([]byte, 73),
	}
	a.rng.Read(s.Root[:])
	a.rng.Read(s.Signature)
	s.Signature[0] = 70 // plausible ASN.1 length so parsing succeeds
	if a.solve {
		s.PuzzleKey = a.key
		if sol, err := puzzle.Solve(a.params, s.PuzzleMessage(), a.key); err == nil {
			s.PuzzleSol = sol
		}
	} else {
		a.rng.Read(s.PuzzleKey[:])
		s.PuzzleSol = a.rng.Uint64()
	}
	a.nw.Broadcast(a.id, s)
	a.sent++
	a.timer = a.eng.Schedule(a.interval, a.tick)
}

// DoRAttacker mounts the denial-of-receipt attack (paper §IV-E): it keeps
// sending all-ones SNACKs to a victim, denying all receipt, to make the
// victim burn energy retransmitting data packets forever.
type DoRAttacker struct {
	id       packet.NodeID
	nw       *radio.Network
	eng      *sim.Engine
	victim   packet.NodeID
	version  uint16
	sizeOf   func(unit int) int
	interval sim.Time

	victimUnits int
	timer       sim.Timer
	sent        int64
	stopped     bool
}

// NewDoRAttacker creates a denial-of-receipt attacker against victim.
// sizeOf maps units to packet counts (public protocol knowledge).
func NewDoRAttacker(id packet.NodeID, nw *radio.Network, victim packet.NodeID, version uint16, sizeOf func(int) int, interval sim.Time) (*DoRAttacker, error) {
	a := &DoRAttacker{
		id:       id,
		nw:       nw,
		eng:      nw.Engine(),
		victim:   victim,
		version:  version,
		sizeOf:   sizeOf,
		interval: interval,
	}
	if err := nw.Attach(id, a); err != nil {
		return nil, err
	}
	return a, nil
}

// Start begins the SNACK flood.
func (a *DoRAttacker) Start() { a.timer = a.eng.Schedule(a.interval, a.tick) }

// Stop halts the flood.
func (a *DoRAttacker) Stop() {
	a.stopped = true
	a.timer.Stop()
}

// Sent returns the number of SNACKs transmitted.
func (a *DoRAttacker) Sent() int64 { return a.sent }

// HandlePacket implements radio.Receiver: track the victim's advertised
// units so requests always name a unit the victim can serve.
func (a *DoRAttacker) HandlePacket(from packet.NodeID, p packet.Packet) {
	if adv, ok := p.(*packet.Adv); ok && from == a.victim {
		a.victimUnits = int(adv.Units)
	}
}

func (a *DoRAttacker) tick() {
	if a.stopped {
		return
	}
	if a.victimUnits > 0 {
		// Request the newest unit the victim holds, denying every packet.
		unit := a.victimUnits - 1
		bits := packet.NewBitVector(a.sizeOf(unit))
		bits.SetAll()
		a.nw.Broadcast(a.id, &packet.SNACK{
			Src:     a.id,
			Dest:    a.victim,
			Version: a.version,
			Unit:    packet.Unit(unit),
			Bits:    bits,
		})
		a.sent++
	}
	a.timer = a.eng.Schedule(a.interval, a.tick)
}
