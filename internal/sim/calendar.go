package sim

import (
	"math/bits"
	"sort"
)

// calendarQueue is a calendar queue (R. Brown, CACM 1988): events hash into
// buckets by firing time, bucket width adapts to the observed event density,
// and dequeue scans forward from the last popped time one bucket "day" at a
// time, wrapping around the "year" of nbuckets days. With the width tracking
// the mean inter-event gap, schedule and pop are O(1) amortized — the win
// over the O(log n) heap once hundreds of thousands of timers are pending.
//
// Determinism: pop order is a pure function of queue content. Buckets
// partition time, equal timestamps always land in the same bucket, and the
// per-bucket candidate selection takes the minimum (at, seq) — so PopLE
// always returns the unique global minimum, exactly like the heap. Resizes
// rehash deterministically from queue content alone (no randomness, no
// wall clock), and internal layout can never leak into results.
//
// The scan's lower bound (lastAt) must be a true floor over queue content.
// Pops raise it; Push lowers it when a record predates it — which happens
// when a cancelled (lazily deleted) future event was popped for recycling
// while the engine clock, which only advances on live events, lagged behind.
type calendarQueue struct {
	buckets [][]*timer
	mask    int  // len(buckets)-1; bucket count is a power of two
	shift   uint // bucket width is 1<<shift nanoseconds
	n       int
	// occ is a word-level occupancy bitset over buckets (bit i set iff
	// bucket i is nonempty), letting the year scan jump runs of empty days
	// 64 at a time — the protocol's gap distribution is bimodal (dense
	// sub-millisecond bursts separated by long maintenance lulls), so
	// day-by-day stepping across a lull would cost gap/width iterations.
	occ    []uint64
	lastAt Time // time of the most recent successful pop
	// stage drains same-instant bursts in O(1) per pop. Synchronized
	// timers are common at scale (e.g. every node's Trickle rollover lands
	// on the identical nanosecond), piling tens of thousands of events
	// into one bucket at one timestamp; popping them by bucket rescan
	// would be quadratic. When a pop's bucket holds more events at the
	// minimum time, they all move here, sorted by seq once, and pop by
	// index. Invariants: every staged event has at == stageAt == lastAt;
	// no queued event is earlier; stage seqs ascend, and any later push at
	// stageAt carries a larger seq than everything staged (engine seqs are
	// monotone), so appending preserves the order.
	stage    []*timer
	stagePos int
	stageAt  Time
	// scanned counts bucket entries examined (plus bucket days stepped) and
	// pops counts successful dequeues since the last resize; their ratio
	// drives the adaptive re-width below. Both are pure functions of the
	// operation sequence, so the trigger is deterministic.
	scanned int
	pops    int
}

const (
	calMinBuckets = 16
	// Width clamps: 1<<10 ns ~ 1us (dense same-instant bursts) up to
	// 1<<36 ns ~ 69s (sparse maintenance timers).
	calMinShift = 10
	calMaxShift = 36
	// calInitShift starts buckets at ~2ms, the order of the protocol's
	// propagation/backoff delays; the first resize re-estimates from
	// actual content.
	calInitShift = 21
)

func newCalendarQueue() *calendarQueue {
	return &calendarQueue{
		buckets: make([][]*timer, calMinBuckets),
		occ:     make([]uint64, (calMinBuckets+63)/64),
		mask:    calMinBuckets - 1,
		shift:   calInitShift,
	}
}

// Len implements Queue.
func (q *calendarQueue) Len() int { return q.n }

// bucketOf maps a firing time to its bucket index under the current layout.
func (q *calendarQueue) bucketOf(at Time) int {
	return int(uint64(at)>>q.shift) & q.mask
}

// Push implements Queue.
//
//lrlint:hotpath one call per scheduled event
func (q *calendarQueue) Push(ev *timer) {
	if q.n >= 2*len(q.buckets) {
		q.resize(2 * len(q.buckets))
	}
	if q.stagePos < len(q.stage) && ev.at == q.stageAt {
		q.stage = append(q.stage, ev)
		q.n++
		return
	}
	if ev.at < q.lastAt {
		// A push below the floor also invalidates the stage (staged events
		// sit at lastAt and must no longer pop first): spill it back.
		q.unstage()
		q.lastAt = ev.at
	}
	i := q.bucketOf(ev.at)
	q.buckets[i] = append(q.buckets[i], ev)
	q.occ[i>>6] |= 1 << (uint(i) & 63)
	q.n++
}

// unstage returns staged events to their bucket (rare: only a below-floor
// push while a same-instant burst is draining).
func (q *calendarQueue) unstage() {
	for _, ev := range q.stage[q.stagePos:] {
		i := q.bucketOf(ev.at)
		q.buckets[i] = append(q.buckets[i], ev)
		q.occ[i>>6] |= 1 << (uint(i) & 63)
	}
	q.stage = q.stage[:0]
	q.stagePos = 0
}

// PopLE implements Queue.
//
//lrlint:hotpath one call per executed event
func (q *calendarQueue) PopLE(horizon Time) *timer {
	if q.n == 0 {
		return nil
	}
	if q.stagePos < len(q.stage) {
		if q.stageAt > horizon {
			return nil
		}
		ev := q.stage[q.stagePos]
		q.stage[q.stagePos] = nil
		q.stagePos++
		if q.stagePos == len(q.stage) {
			q.stage = q.stage[:0]
			q.stagePos = 0
		}
		q.n--
		q.pops++
		q.lastAt = ev.at
		return ev
	}
	// Adaptive re-width: bucket width is derived from the event spread at
	// resize time, but the spread drifts as the simulation evolves (e.g.
	// Trickle intervals doubling from milliseconds to tens of seconds). A
	// stale width packs many years into each bucket and every pop degrades
	// to a long scan — count-triggered resizes never fire because the
	// pending count is stable. When the mean scan work per pop exceeds its
	// O(1) budget, rehash at the same size to re-derive the width from the
	// current content; requiring a year's worth of pops first amortizes the
	// O(n) rehash to O(1) per pop.
	if q.pops >= len(q.buckets) && q.scanned > 16*q.pops {
		q.resize(len(q.buckets))
	}
	// Scan one year of bucket days starting at the day containing lastAt.
	// The first bucket holding an event inside its current-day window
	// holds the global minimum: days partition time going forward and no
	// queued event predates lastAt.
	width := Time(1) << q.shift
	i := q.bucketOf(q.lastAt)
	top := (q.lastAt>>Time(q.shift) + 1) << Time(q.shift)
	for step := 0; step <= q.mask; {
		j, d := q.nextOccupied(i)
		if j < 0 || step+d > q.mask {
			// No occupied day remains inside this year.
			break
		}
		step += d
		top += width * Time(d)
		i = j
		q.scanned += len(q.buckets[i]) + 1
		if k := q.minInBucketBelow(i, top); k >= 0 {
			return q.take(i, k, horizon)
		}
		i = (i + 1) & q.mask
		step++
		top += width
	}
	q.scanned += q.n
	// Every event lies at least a full year ahead of lastAt (a long idle
	// gap, e.g. only maintenance timers left): fall back to a direct
	// search for the global minimum.
	bi, bj := -1, -1
	var best *timer
	for ii := range q.buckets {
		for jj, ev := range q.buckets[ii] {
			if best == nil || ev.at < best.at || (ev.at == best.at && ev.seq < best.seq) {
				best, bi, bj = ev, ii, jj
			}
		}
	}
	return q.take(bi, bj, horizon)
}

// nextOccupied returns the index of the first nonempty bucket at or after i
// (wrapping) together with the number of buckets stepped to reach it, or
// (-1, 0) when every bucket is empty.
func (q *calendarQueue) nextOccupied(i int) (int, int) {
	nb := q.mask + 1
	w := i >> 6
	if word := q.occ[w] >> (uint(i) & 63); word != 0 {
		d := bits.TrailingZeros64(word)
		return i + d, d
	}
	for k := 1; k <= len(q.occ); k++ {
		wi := w + k
		if wi >= len(q.occ) {
			wi -= len(q.occ)
		}
		if word := q.occ[wi]; word != 0 {
			j := wi<<6 + bits.TrailingZeros64(word)
			d := j - i
			if d <= 0 {
				d += nb
			}
			return j, d
		}
	}
	return -1, 0
}

// minInBucketBelow returns the index of the minimum-(at, seq) event in bucket
// i with at < top, or -1 if the bucket holds none in that window.
func (q *calendarQueue) minInBucketBelow(i int, top Time) int {
	b := q.buckets[i]
	bestIdx := -1
	var best *timer
	for j, ev := range b {
		if ev.at >= top {
			continue
		}
		if best == nil || ev.at < best.at || (ev.at == best.at && ev.seq < best.seq) {
			best, bestIdx = ev, j
		}
	}
	return bestIdx
}

// take removes buckets[i][j] and returns it, unless its time is beyond the
// horizon, in which case the queue is left untouched and take returns nil.
// Further events in the bucket at the same instant move to the stage so the
// burst drains in O(1) per pop instead of by repeated bucket rescans.
func (q *calendarQueue) take(i, j int, horizon Time) *timer {
	ev := q.buckets[i][j]
	if ev.at > horizon {
		return nil
	}
	b := q.buckets[i]
	last := len(b) - 1
	b[j] = b[last]
	b[last] = nil
	b = b[:last]
	// Partition out the rest of the same-instant burst, preserving the
	// bucket's remaining entries in place.
	keep := b[:0]
	for _, e := range b {
		if e.at == ev.at {
			q.stage = append(q.stage, e)
		} else {
			keep = append(keep, e)
		}
	}
	for k := len(keep); k < len(b); k++ {
		b[k] = nil
	}
	q.buckets[i] = keep
	if len(keep) == 0 {
		q.occ[i>>6] &^= 1 << (uint(i) & 63)
	}
	if len(q.stage) > 0 {
		sort.Slice(q.stage, func(a, c int) bool { return q.stage[a].seq < q.stage[c].seq })
		q.stageAt = ev.at
		q.stagePos = 0
	}
	q.n--
	q.pops++
	q.lastAt = ev.at
	if q.n < len(q.buckets)/4 && len(q.buckets) > calMinBuckets {
		q.resize(len(q.buckets) / 2)
	}
	return ev
}

// resize rehashes into newNB buckets, re-estimating the bucket width as ~3x
// the mean inter-event gap of the current content (Brown's rule), clamped to
// [calMinShift, calMaxShift]. The estimate depends only on queue content, so
// resizing is deterministic.
func (q *calendarQueue) resize(newNB int) {
	old := q.buckets
	if q.n > 0 {
		var minAt, maxAt Time
		first := true
		for _, b := range old {
			for _, ev := range b {
				if first {
					minAt, maxAt, first = ev.at, ev.at, false
					continue
				}
				if ev.at < minAt {
					minAt = ev.at
				}
				if ev.at > maxAt {
					maxAt = ev.at
				}
			}
		}
		gap := (maxAt - minAt) * 3 / Time(q.n)
		shift := uint(bits.Len64(uint64(gap)))
		if shift < calMinShift {
			shift = calMinShift
		}
		if shift > calMaxShift {
			shift = calMaxShift
		}
		q.shift = shift
	}
	q.buckets = make([][]*timer, newNB)
	q.occ = make([]uint64, (newNB+63)/64)
	q.mask = newNB - 1
	q.scanned, q.pops = 0, 0
	// Rehash appends are amortized: each pending event moves once per
	// doubling/halving, not per scheduled event, so resize is deliberately
	// not an alloc-hotpath root.
	for _, b := range old {
		for _, ev := range b {
			i := q.bucketOf(ev.at)
			q.buckets[i] = append(q.buckets[i], ev)
			q.occ[i>>6] |= 1 << (uint(i) & 63)
		}
	}
}
