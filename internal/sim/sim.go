// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and an event queue ordered by firing
// time. Events scheduled for the same instant fire in scheduling order, which
// makes runs fully reproducible for a fixed seed. The engine is
// single-threaded by design: protocol code runs inside event callbacks and
// must not block.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a virtual timestamp measured in nanoseconds since the start of the
// simulation. It is deliberately distinct from time.Time: simulated protocols
// must never consult the wall clock.
type Time int64

// Common durations, mirroring the time package for readability at call sites.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond

	// MaxTime is the largest representable virtual time. Run(MaxTime)
	// drains the event queue completely.
	MaxTime Time = math.MaxInt64
)

// Duration converts a standard library duration to virtual time.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the virtual time as a duration.
func (t Time) String() string { return time.Duration(t).String() }

// Timer is a handle to a scheduled event. A Timer may be stopped before it
// fires; stopping an already-fired or already-stopped timer is a no-op.
type Timer struct {
	at      Time
	seq     uint64
	fn      func()
	index   int // heap index, -1 once popped or stopped
	stopped bool
}

// Stop cancels the timer. It reports whether the timer was still pending.
func (t *Timer) Stop() bool {
	if t == nil || t.stopped || t.index < 0 {
		return false
	}
	t.stopped = true
	return true
}

// At reports the virtual time the timer is (or was) scheduled to fire.
func (t *Timer) At() Time { return t.at }

// eventQueue is a min-heap ordered by (time, sequence).
type eventQueue []*Timer

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	t := x.(*Timer)
	t.index = len(*q)
	*q = append(*q, t)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*q = old[:n-1]
	return t
}

// Engine is a discrete-event simulation engine. The zero value is ready to
// use.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	running bool
	stopped bool
	events  uint64
}

// New returns a fresh engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Events returns the number of events executed so far.
func (e *Engine) Events() uint64 { return e.events }

// Pending returns the number of events currently scheduled (including stopped
// timers that have not yet been reaped).
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule arranges for fn to run after the given delay. A negative delay is
// treated as zero. It returns a Timer that may be used to cancel the event.
func (e *Engine) Schedule(delay Time, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At arranges for fn to run at the given absolute virtual time. Times in the
// past are clamped to the present.
func (e *Engine) At(at Time, fn func()) *Timer {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if at < e.now {
		at = e.now
	}
	t := &Timer{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, t)
	return t
}

// Stop makes Run return after the event currently being processed completes.
// It is intended to be called from inside an event callback (for example once
// a simulation-level termination condition is met).
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue drains, the clock
// would pass the until horizon, or Stop is called. It returns the virtual
// time at which execution ceased.
func (e *Engine) Run(until Time) Time {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.queue)
		if next.stopped {
			continue
		}
		e.now = next.at
		e.events++
		next.fn()
	}
	if e.now < until && until != MaxTime && len(e.queue) == 0 {
		// The queue drained before the horizon: advance the clock so
		// repeated Run calls observe monotonic time.
		e.now = until
	}
	return e.now
}

// RunUntilIdle executes every pending event regardless of timestamp.
func (e *Engine) RunUntilIdle() Time { return e.Run(MaxTime) }

// String summarizes engine state, mostly for debugging.
func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{now=%v pending=%d executed=%d}", e.now, len(e.queue), e.events)
}
