// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and an event queue ordered by firing
// time. Events scheduled for the same instant fire in scheduling order, which
// makes runs fully reproducible for a fixed seed. The engine is
// single-threaded by design: protocol code runs inside event callbacks and
// must not block.
//
// Two event-queue implementations sit behind the Queue interface: a binary
// min-heap (the reference) and a calendar queue with O(1) amortized
// schedule/pop for large-scale runs. Both pop events in exactly the same
// (time, sequence) order, so the choice cannot affect simulation results;
// TestQueueEquivalence and FuzzQueueEquivalence pin this.
package sim

import (
	"fmt"
	"math"
	"time"

	"lrseluge/internal/obs"
)

// Time is a virtual timestamp measured in nanoseconds since the start of the
// simulation. It is deliberately distinct from time.Time: simulated protocols
// must never consult the wall clock.
type Time int64

// Common durations, mirroring the time package for readability at call sites.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond

	// MaxTime is the largest representable virtual time. Run(MaxTime)
	// drains the event queue completely.
	MaxTime Time = math.MaxInt64
)

// Duration converts a standard library duration to virtual time.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the virtual time as a duration.
func (t Time) String() string { return time.Duration(t).String() }

// timer is the pooled event record that lives inside the queue. Records are
// recycled through the engine free list once popped (fired or lazily deleted),
// with gen incremented at each recycle so stale Timer handles cannot touch
// the record's next life.
type timer struct {
	at      Time
	seq     uint64
	fn      func()
	eng     *Engine
	gen     uint32
	stopped bool
}

// Timer is a value handle to a scheduled event. The zero value is an inert
// handle: Stop reports false and Active reports false. A Timer may be stopped
// before it fires; stopping an already-fired or already-stopped timer is a
// no-op, even after the underlying record has been recycled for a later
// event (the generation stamp detects staleness).
type Timer struct {
	ev  *timer
	gen uint32
	at  Time
}

// Stop cancels the timer. It reports whether the timer was still pending.
// Cancellation is lazy: the record stays queued until its firing time and is
// discarded (and recycled) when popped.
func (t Timer) Stop() bool {
	ev := t.ev
	if ev == nil || ev.gen != t.gen || ev.stopped {
		return false
	}
	ev.stopped = true
	ev.fn = nil
	ev.eng.live--
	return true
}

// Active reports whether the timer is still scheduled to fire.
func (t Timer) Active() bool {
	return t.ev != nil && t.ev.gen == t.gen && !t.ev.stopped
}

// At reports the virtual time the timer is (or was) scheduled to fire.
func (t Timer) At() Time { return t.at }

// QueueKind selects the event-queue implementation for an Engine.
type QueueKind int

const (
	// HeapQueue is the reference binary min-heap: O(log n) schedule/pop,
	// no tuning parameters.
	HeapQueue QueueKind = iota
	// CalendarQueue is the bucketed calendar queue: O(1) amortized
	// schedule/pop, built for runs with 10k-100k concurrently pending
	// events. Pop order is identical to HeapQueue by construction.
	CalendarQueue
)

// String names the queue kind as accepted by ParseQueueKind.
func (k QueueKind) String() string {
	switch k {
	case HeapQueue:
		return "heap"
	case CalendarQueue:
		return "calendar"
	}
	return fmt.Sprintf("QueueKind(%d)", int(k))
}

// ParseQueueKind parses a queue-kind name ("heap" or "calendar").
func ParseQueueKind(s string) (QueueKind, error) {
	switch s {
	case "heap":
		return HeapQueue, nil
	case "calendar":
		return CalendarQueue, nil
	}
	return 0, fmt.Errorf("sim: unknown queue kind %q (want heap or calendar)", s)
}

// Queue is the engine's event-queue abstraction: a priority queue ordered by
// (time, sequence). Implementations must pop the unique minimum, so every
// Queue yields byte-identical simulations. The element type is unexported;
// implementations live in this package and are selected via QueueKind.
type Queue interface {
	// Push inserts an event record. The engine guarantees ev.at is never
	// earlier than the engine clock, but it may predate the most recently
	// popped record: cancelled future events are popped (for recycling)
	// without advancing the clock.
	Push(ev *timer)
	// PopLE removes and returns the earliest event if its time is at or
	// before horizon, or returns nil (leaving the queue untouched).
	PopLE(horizon Time) *timer
	// Len reports the number of queued records, including lazily deleted
	// (stopped but not yet popped) ones.
	Len() int
}

// Engine is a discrete-event simulation engine. The zero value is ready to
// use and is backed by the heap queue.
type Engine struct {
	now     Time
	seq     uint64
	queue   Queue
	free    []*timer
	live    int
	running bool
	stopped bool
	events  uint64
	obs     *obs.Timers
}

// New returns a fresh engine with the clock at zero, backed by the reference
// heap queue.
func New() *Engine { return &Engine{} }

// NewWithQueue returns a fresh engine backed by the given queue kind.
func NewWithQueue(kind QueueKind) *Engine {
	e := &Engine{}
	if kind == CalendarQueue {
		e.queue = newCalendarQueue()
	} else {
		e.queue = newHeapQueue()
	}
	return e
}

// SetObs installs phase timers for wall-time attribution of queue
// operations and event dispatch. A nil value (the default) disables
// instrumentation; recording methods on a nil *obs.Timers are single-branch
// no-ops, so the hot loops stay unconditional.
func (e *Engine) SetObs(t *obs.Timers) { e.obs = t }

// Obs returns the installed phase timers (nil when disabled).
func (e *Engine) Obs() *obs.Timers { return e.obs }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Events returns the number of events executed so far.
func (e *Engine) Events() uint64 { return e.events }

// Pending returns the number of live (scheduled and not stopped) timers.
// Lazily deleted records still inside the queue are not counted.
func (e *Engine) Pending() int { return e.live }

// Schedule arranges for fn to run after the given delay. A negative delay is
// treated as zero. It returns a Timer that may be used to cancel the event.
//
//lrlint:hotpath one call per scheduled event; must stay allocation-free on the pooled path
func (e *Engine) Schedule(delay Time, fn func()) Timer {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At arranges for fn to run at the given absolute virtual time. Times in the
// past are clamped to the present. Timer records come from a free list, so
// steady-state scheduling does not allocate.
//
//lrlint:hotpath one call per scheduled event; must stay allocation-free on the pooled path
func (e *Engine) At(at Time, fn func()) Timer {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if at < e.now {
		at = e.now
	}
	if e.queue == nil {
		e.queue = newHeapQueue()
	}
	var ev *timer
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &timer{eng: e}
	}
	ev.at = at
	ev.seq = e.seq
	ev.fn = fn
	ev.stopped = false
	e.seq++
	e.live++
	e.obs.StartLeaf(obs.PhaseQueuePush)
	e.queue.Push(ev)
	e.obs.EndLeaf(obs.PhaseQueuePush)
	return Timer{ev: ev, gen: ev.gen, at: at}
}

// recycle returns a popped record to the free list. The generation bump
// invalidates every outstanding handle to the record's previous life.
func (e *Engine) recycle(ev *timer) {
	ev.gen++
	ev.fn = nil
	e.free = append(e.free, ev)
}

// Stop makes Run return after the event currently being processed completes.
// It is intended to be called from inside an event callback (for example once
// a simulation-level termination condition is met).
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue drains, the clock
// would pass the until horizon, or Stop is called. It returns the virtual
// time at which execution ceased.
func (e *Engine) Run(until Time) Time {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	// The dispatch region is ambient: one region per Run slice covering the
	// whole loop, so per-event instrumentation is just the sampled pop leaf
	// (plus whatever regions the callbacks open, which nest inside and
	// account their own time exclusively).
	e.obs.Start(obs.PhaseDispatch)
	for e.queue != nil && !e.stopped {
		e.obs.StartLeaf(obs.PhaseQueuePop)
		ev := e.queue.PopLE(until)
		e.obs.EndLeaf(obs.PhaseQueuePop)
		if ev == nil {
			break
		}
		if ev.stopped {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		e.events++
		e.live--
		fn := ev.fn
		e.recycle(ev)
		fn()
	}
	e.obs.End(obs.PhaseDispatch)
	if e.now < until && until != MaxTime && (e.queue == nil || e.queue.Len() == 0) {
		// The queue drained before the horizon: advance the clock so
		// repeated Run calls observe monotonic time.
		e.now = until
	}
	return e.now
}

// RunUntilIdle executes every pending event regardless of timestamp.
func (e *Engine) RunUntilIdle() Time { return e.Run(MaxTime) }

// String summarizes engine state, mostly for debugging.
func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{now=%v pending=%d executed=%d}", e.now, e.live, e.events)
}
