package sim

import (
	"testing"
	"time"
)

func TestRunExecutesInTimestampOrder(t *testing.T) {
	eng := New()
	var order []int
	eng.Schedule(30*Millisecond, func() { order = append(order, 3) })
	eng.Schedule(10*Millisecond, func() { order = append(order, 1) })
	eng.Schedule(20*Millisecond, func() { order = append(order, 2) })
	eng.RunUntilIdle()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wrong order: %v", order)
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	eng := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		eng.Schedule(Second, func() { order = append(order, i) })
	}
	eng.RunUntilIdle()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of scheduling order: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	eng := New()
	var at Time
	eng.Schedule(5*Second, func() { at = eng.Now() })
	eng.RunUntilIdle()
	if at != 5*Second {
		t.Fatalf("clock at %v, want 5s", at)
	}
	if eng.Now() != 5*Second {
		t.Fatalf("final clock %v, want 5s", eng.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	eng := New()
	var hits int
	var recurse func()
	recurse = func() {
		hits++
		if hits < 5 {
			eng.Schedule(Millisecond, recurse)
		}
	}
	eng.Schedule(0, recurse)
	eng.RunUntilIdle()
	if hits != 5 {
		t.Fatalf("got %d hits, want 5", hits)
	}
	if eng.Now() != 4*Millisecond {
		t.Fatalf("clock %v, want 4ms", eng.Now())
	}
}

func TestTimerStop(t *testing.T) {
	eng := New()
	fired := false
	tm := eng.Schedule(Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer should report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	eng.RunUntilIdle()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestStopZeroValueTimerIsSafe(t *testing.T) {
	var tm Timer
	if tm.Stop() {
		t.Fatal("zero-value timer Stop should report false")
	}
	if tm.Active() {
		t.Fatal("zero-value timer should not be active")
	}
}

func TestPendingCountsLiveTimers(t *testing.T) {
	eng := New()
	t1 := eng.Schedule(Second, func() {})
	eng.Schedule(2*Second, func() {})
	eng.Schedule(3*Second, func() {})
	if eng.Pending() != 3 {
		t.Fatalf("pending %d, want 3", eng.Pending())
	}
	t1.Stop()
	if eng.Pending() != 2 {
		t.Fatalf("pending after stop %d, want 2 (stopped timers are not live)", eng.Pending())
	}
	eng.Run(2 * Second)
	if eng.Pending() != 1 {
		t.Fatalf("pending after partial run %d, want 1", eng.Pending())
	}
	eng.RunUntilIdle()
	if eng.Pending() != 0 {
		t.Fatalf("pending after drain %d, want 0", eng.Pending())
	}
}

func TestTimerActive(t *testing.T) {
	eng := New()
	tm := eng.Schedule(Second, func() {})
	if !tm.Active() {
		t.Fatal("scheduled timer should be active")
	}
	tm.Stop()
	if tm.Active() {
		t.Fatal("stopped timer should not be active")
	}
	tm2 := eng.Schedule(Second, func() {})
	eng.RunUntilIdle()
	if tm2.Active() {
		t.Fatal("fired timer should not be active")
	}
}

// TestStaleHandleCannotStopRecycledTimer pins the pooling contract: once a
// timer record fires and is recycled into a new event, handles to its old
// life must no-op.
func TestStaleHandleCannotStopRecycledTimer(t *testing.T) {
	eng := New()
	old := eng.Schedule(Millisecond, func() {})
	eng.RunUntilIdle()
	if old.Stop() {
		t.Fatal("Stop on fired timer should report false")
	}
	fired := false
	fresh := eng.Schedule(Millisecond, func() { fired = true })
	if fresh.ev != old.ev {
		t.Fatal("pool did not recycle the fired record (test assumes a single record)")
	}
	if old.Stop() {
		t.Fatal("stale handle stopped a recycled timer")
	}
	if !fresh.Active() {
		t.Fatal("stale Stop deactivated the recycled timer")
	}
	eng.RunUntilIdle()
	if !fired {
		t.Fatal("recycled timer did not fire")
	}
}

// TestTimerPoolReusesRecords pins the free list: steady-state scheduling
// after warm-up allocates nothing.
func TestTimerPoolReusesRecords(t *testing.T) {
	eng := New()
	fn := func() {}
	// Warm the pool and the queue's backing array.
	for i := 0; i < 64; i++ {
		eng.Schedule(Time(i)*Millisecond, fn)
	}
	eng.RunUntilIdle()
	allocs := testing.AllocsPerRun(100, func() {
		tm := eng.Schedule(Millisecond, fn)
		tm.Stop()
		eng.RunUntilIdle() // reap so the record returns to the pool
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule/stop/run allocated %.1f times per op, want 0", allocs)
	}
}

func TestRunHorizon(t *testing.T) {
	eng := New()
	var fired []int
	eng.Schedule(1*Second, func() { fired = append(fired, 1) })
	eng.Schedule(10*Second, func() { fired = append(fired, 2) })
	eng.Run(5 * Second)
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("horizon violated: %v", fired)
	}
	if eng.Pending() != 1 {
		t.Fatalf("pending %d, want 1", eng.Pending())
	}
	eng.RunUntilIdle()
	if len(fired) != 2 {
		t.Fatalf("second Run did not drain: %v", fired)
	}
}

func TestEngineStop(t *testing.T) {
	eng := New()
	var count int
	for i := 0; i < 10; i++ {
		eng.Schedule(Time(i)*Millisecond, func() {
			count++
			if count == 3 {
				eng.Stop()
			}
		})
	}
	eng.RunUntilIdle()
	if count != 3 {
		t.Fatalf("Stop did not halt execution: count=%d", count)
	}
}

func TestPastEventsClampToNow(t *testing.T) {
	eng := New()
	var at Time
	eng.Schedule(Second, func() {
		eng.At(0, func() { at = eng.Now() }) // in the past
	})
	eng.RunUntilIdle()
	if at != Second {
		t.Fatalf("past event ran at %v, want clamped to 1s", at)
	}
}

func TestNegativeDelayClamps(t *testing.T) {
	eng := New()
	fired := false
	eng.Schedule(-5*Second, func() { fired = true })
	eng.RunUntilIdle()
	if !fired || eng.Now() != 0 {
		t.Fatalf("negative delay mishandled: fired=%v now=%v", fired, eng.Now())
	}
}

func TestEventsCounter(t *testing.T) {
	eng := New()
	for i := 0; i < 7; i++ {
		eng.Schedule(Time(i), func() {})
	}
	eng.RunUntilIdle()
	if eng.Events() != 7 {
		t.Fatalf("events %d, want 7", eng.Events())
	}
}

func TestDurationConversion(t *testing.T) {
	if Duration(1500*time.Millisecond) != 1500*Millisecond {
		t.Fatal("Duration conversion wrong")
	}
	if got := (2500 * Millisecond).Seconds(); got != 2.5 {
		t.Fatalf("Seconds() = %v, want 2.5", got)
	}
}

func TestAtNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nil callback")
		}
	}()
	New().At(0, nil)
}

func TestRunAdvancesToHorizonWhenIdle(t *testing.T) {
	eng := New()
	eng.Run(3 * Second)
	if eng.Now() != 3*Second {
		t.Fatalf("idle Run should advance clock to horizon, got %v", eng.Now())
	}
}
