package sim

import "testing"

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := New()
		for j := 0; j < 1000; j++ {
			eng.Schedule(Time(j%97)*Millisecond, func() {})
		}
		eng.RunUntilIdle()
	}
}

func BenchmarkTimerChurn(b *testing.B) {
	eng := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := eng.Schedule(Second, func() {})
		t.Stop()
		if i%1024 == 0 {
			eng.Run(eng.Now()) // reap stopped timers
		}
	}
}
