package sim

// heapQueue is the reference Queue: a hand-rolled binary min-heap over
// (at, seq). It is hand-rolled rather than container/heap so Push and PopLE
// take the concrete *timer without interface indirection and the sift code
// stays visible to the alloc-hotpath pass.
type heapQueue struct {
	evs []*timer
}

func newHeapQueue() *heapQueue { return &heapQueue{} }

// Len implements Queue.
func (q *heapQueue) Len() int { return len(q.evs) }

func (q *heapQueue) less(i, j int) bool {
	a, b := q.evs[i], q.evs[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Push implements Queue.
//
//lrlint:hotpath one call per scheduled event
func (q *heapQueue) Push(ev *timer) {
	q.evs = append(q.evs, ev)
	q.up(len(q.evs) - 1)
}

// PopLE implements Queue.
//
//lrlint:hotpath one call per executed event
func (q *heapQueue) PopLE(horizon Time) *timer {
	if len(q.evs) == 0 || q.evs[0].at > horizon {
		return nil
	}
	ev := q.evs[0]
	last := len(q.evs) - 1
	q.evs[0] = q.evs[last]
	q.evs[last] = nil
	q.evs = q.evs[:last]
	if last > 0 {
		q.down(0)
	}
	return ev
}

func (q *heapQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.evs[i], q.evs[parent] = q.evs[parent], q.evs[i]
		i = parent
	}
}

func (q *heapQueue) down(i int) {
	n := len(q.evs)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && q.less(r, l) {
			min = r
		}
		if !q.less(min, i) {
			break
		}
		q.evs[i], q.evs[min] = q.evs[min], q.evs[i]
		i = min
	}
}
