package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// runQueueScript drives one engine, built on the given queue kind, with a
// deterministic op stream decoded from data, and returns the full firing log
// plus final engine observables. Identical logs across queue kinds prove the
// queues pop in identical (time, seq) order under scheduling, nested
// scheduling, lazy deletion, and horizon-bounded runs.
func runQueueScript(kind QueueKind, data []byte) []string {
	eng := NewWithQueue(kind)
	var log []string
	var handles []Timer
	nextID := 0
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	for pos < len(data) {
		switch op := next(); op % 5 {
		case 0, 1: // schedule
			id := nextID
			nextID++
			delay := Time(next()) * Millisecond / 3
			handles = append(handles, eng.Schedule(delay, func() {
				log = append(log, fmt.Sprintf("fire %d @%d", id, eng.Now()))
			}))
		case 2: // schedule an event that schedules another on firing
			id := nextID
			nextID++
			delay := Time(next()) * Millisecond
			inner := Time(next()) * Microsecond
			eng.Schedule(delay, func() {
				log = append(log, fmt.Sprintf("outer %d @%d", id, eng.Now()))
				eng.Schedule(inner, func() {
					log = append(log, fmt.Sprintf("inner %d @%d", id, eng.Now()))
				})
			})
		case 3: // stop one outstanding handle (lazy delete)
			if len(handles) > 0 {
				i := int(next()) % len(handles)
				stopped := handles[i].Stop()
				log = append(log, fmt.Sprintf("stop %d %v", i, stopped))
			}
		case 4: // bounded run
			h := eng.Now() + Time(next())*Millisecond/2
			at := eng.Run(h)
			log = append(log, fmt.Sprintf("ran to %d", at))
		}
	}
	at := eng.RunUntilIdle()
	log = append(log, fmt.Sprintf("idle @%d events=%d pending=%d", at, eng.Events(), eng.Pending()))
	return log
}

func diffLogs(t *testing.T, data []byte) {
	t.Helper()
	h := runQueueScript(HeapQueue, data)
	c := runQueueScript(CalendarQueue, data)
	if len(h) != len(c) {
		t.Fatalf("log lengths differ: heap %d vs calendar %d\nheap: %v\ncalendar: %v", len(h), len(c), h, c)
	}
	for i := range h {
		if h[i] != c[i] {
			t.Fatalf("logs diverge at %d: heap %q vs calendar %q", i, h[i], c[i])
		}
	}
}

// TestQueueEquivalence is the deterministic differential test: long random
// op streams must produce identical firing logs under both queues.
func TestQueueEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		data := make([]byte, 400)
		rng.Read(data)
		diffLogs(t, data)
	}
}

// TestQueueEquivalenceBulk pushes enough timers through to force calendar
// resizes in both directions, then checks pop order against the heap.
func TestQueueEquivalenceBulk(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	hq := newHeapQueue()
	cq := newCalendarQueue()
	eng := &Engine{} // records need an engine for the live counter
	var seq uint64
	push := func(at Time) {
		h := &timer{at: at, seq: seq, eng: eng}
		c := &timer{at: at, seq: seq, eng: eng}
		seq++
		hq.Push(h)
		cq.Push(c)
	}
	// Dense phase: 10k events over ~10s, with same-instant bursts.
	for i := 0; i < 10000; i++ {
		at := Time(rng.Intn(10_000)) * Millisecond
		push(at)
		if i%17 == 0 {
			push(at) // duplicate timestamp: seq must break the tie
		}
	}
	var floor Time
	for hq.Len() > 0 {
		h := hq.PopLE(MaxTime)
		c := cq.PopLE(MaxTime)
		if c == nil || h.at != c.at || h.seq != c.seq {
			t.Fatalf("bulk pop diverged: heap (%v,%d) vs calendar %v", h.at, h.seq, c)
		}
		if h.at < floor {
			t.Fatalf("pop order not monotone: %v after %v", h.at, floor)
		}
		floor = h.at
		// Interleave new pushes (never before the pop floor, matching the
		// engine's clamp) to exercise resize-down then resize-up churn.
		if hq.Len() < 100 && seq < 30000 {
			for i := 0; i < 50; i++ {
				push(floor + Time(rng.Intn(5_000_000)))
			}
		}
	}
	if cq.Len() != 0 {
		t.Fatalf("calendar retains %d events after heap drained", cq.Len())
	}
}

// TestCalendarDirectSearchFallback covers the sparse case: the next event
// lies many bucket-years past the last pop, so the year scan gives up and
// the direct search must still find the global minimum.
func TestCalendarDirectSearchFallback(t *testing.T) {
	eng := NewWithQueue(CalendarQueue)
	var order []int
	eng.Schedule(Millisecond, func() { order = append(order, 1) })
	// Far beyond one year of initial buckets (16 buckets x 2ms).
	eng.Schedule(2*Second+Millisecond, func() { order = append(order, 3) })
	eng.Schedule(2*Second, func() { order = append(order, 2) })
	eng.Schedule(3000*Second, func() { order = append(order, 4) })
	eng.RunUntilIdle()
	if len(order) != 4 {
		t.Fatalf("fired %v", order)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("sparse events out of order: %v", order)
		}
	}
	if eng.Now() != 3000*Second {
		t.Fatalf("clock %v, want 3000s", eng.Now())
	}
}

// TestCalendarHorizonLeavesQueueIntact pins PopLE's contract: a pop bounded
// by a horizon before the next event must not disturb queue state.
func TestCalendarHorizonLeavesQueueIntact(t *testing.T) {
	eng := NewWithQueue(CalendarQueue)
	fired := false
	eng.Schedule(10*Second, func() { fired = true })
	for i := 0; i < 5; i++ {
		eng.Run(Time(i) * Second)
		if fired {
			t.Fatal("event fired before its time")
		}
	}
	if eng.Pending() != 1 {
		t.Fatalf("pending %d, want 1", eng.Pending())
	}
	eng.Run(10 * Second)
	if !fired {
		t.Fatal("event never fired")
	}
}

// FuzzQueueEquivalence fuzzes the differential harness: any byte stream must
// produce identical firing logs under heap and calendar queues.
func FuzzQueueEquivalence(f *testing.F) {
	f.Add([]byte("0123456789abcdef"))
	f.Add([]byte("scheduler stop run idle"))
	f.Add([]byte{0, 200, 3, 7, 4, 250, 0, 0, 2, 90, 90, 3, 0, 4, 255})
	f.Add([]byte{2, 255, 255, 2, 0, 1, 4, 1, 0, 128, 3, 1, 3, 2, 4, 64})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			t.Skip()
		}
		diffLogs(t, data)
	})
}
