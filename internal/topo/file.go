package topo

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseNodeFile reads a TinyOS-style topology file: one node per line as
// either "<x> <y>" or "<id> <x> <y>" (ids must then be 0..n-1 in order),
// with '#' comments and blank lines ignored. Nodes within CommRange are
// connected with distance-based base quality, exactly like Grid.
//
// This reproduces the workflow around the paper's
// 15-15-*-mica2-grid.txt files without redistributing them: any file in the
// same shape can be replayed.
func ParseNodeFile(r io.Reader) (*Graph, error) {
	var pos []Point
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		var xs, ys string
		switch len(fields) {
		case 2:
			xs, ys = fields[0], fields[1]
		case 3:
			id, err := strconv.Atoi(fields[0])
			if err != nil || id != len(pos) {
				return nil, fmt.Errorf("topo: line %d: node id %q out of order", line, fields[0])
			}
			xs, ys = fields[1], fields[2]
		default:
			return nil, fmt.Errorf("topo: line %d: want 2 or 3 fields, got %d", line, len(fields))
		}
		x, err := strconv.ParseFloat(xs, 64)
		if err != nil {
			return nil, fmt.Errorf("topo: line %d: bad x %q", line, xs)
		}
		y, err := strconv.ParseFloat(ys, 64)
		if err != nil {
			return nil, fmt.Errorf("topo: line %d: bad y %q", line, ys)
		}
		pos = append(pos, Point{X: x, Y: y})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("topo: %w", err)
	}
	if len(pos) < 2 {
		return nil, fmt.Errorf("topo: file describes %d nodes, need >= 2", len(pos))
	}
	g := &Graph{pos: pos, neighbors: make([][]Link, len(pos))}
	connectByRange(g, CommRange)
	return g, nil
}

// WriteNodeFile emits the graph's positions in "<id> <x> <y>" form,
// readable by ParseNodeFile.
func (g *Graph) WriteNodeFile(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %d nodes, comm range %.1f\n", g.NumNodes(), CommRange)
	for i, p := range g.pos {
		fmt.Fprintf(bw, "%d %g %g\n", i, p.X, p.Y)
	}
	return bw.Flush()
}
