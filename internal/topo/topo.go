// Package topo builds the network topologies used in the paper's
// evaluation: fully-connected one-hop neighborhoods (§VI-A/B) and 15x15
// multi-hop grids at two densities (§VI-C).
//
// The paper's multi-hop experiments use the TinyOS mica2 grid files
// 15-15-tight-mica2-grid.txt and 15-15-medium-mica2-grid.txt. Those files
// are not redistributable here, so Grid reproduces their structure
// parametrically: a 15x15 lattice whose spacing controls density, with a
// distance-dependent base link quality standing in for the empirical
// propagation data (see DESIGN.md §5).
package topo

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Point is a node position in abstract distance units ("feet" in the mica2
// tradition).
type Point struct {
	X, Y float64
}

// Distance returns the Euclidean distance to q.
func (p Point) Distance(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Link is a directed edge with a base delivery quality in (0, 1]. The radio
// layer combines this quality with the experiment's loss model.
type Link struct {
	To      int
	Quality float64
}

// Graph is an immutable connectivity graph over indexed nodes. Node 0 is the
// base station by convention.
type Graph struct {
	pos       []Point
	neighbors [][]Link
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.pos) }

// Position returns node i's coordinates.
func (g *Graph) Position(i int) Point { return g.pos[i] }

// Neighbors returns node i's outgoing links. Callers must not modify the
// returned slice.
func (g *Graph) Neighbors(i int) []Link { return g.neighbors[i] }

// AvgDegree returns the mean neighbor count, the density measure the paper
// varies between its tight and medium grids.
func (g *Graph) AvgDegree() float64 {
	if len(g.pos) == 0 {
		return 0
	}
	total := 0
	for _, ns := range g.neighbors {
		total += len(ns)
	}
	return float64(total) / float64(len(g.pos))
}

// Complete returns a fully-connected graph of n nodes with unit link
// quality: the paper's one-hop scenario where "nodes are placed close enough
// to eliminate packet transmission errors caused by channel impairments"
// (§VI-A) and all loss is injected at the application layer.
func Complete(n int) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topo: complete graph needs >= 2 nodes, got %d", n)
	}
	g := &Graph{pos: make([]Point, n), neighbors: make([][]Link, n)}
	for i := 0; i < n; i++ {
		g.pos[i] = Point{X: math.Cos(2 * math.Pi * float64(i) / float64(n)), Y: math.Sin(2 * math.Pi * float64(i) / float64(n))}
		links := make([]Link, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				links = append(links, Link{To: j, Quality: 1})
			}
		}
		g.neighbors[i] = links
	}
	return g, nil
}

// GridDensity selects the spacing of a Grid, mirroring the paper's two
// exemplary topologies.
type GridDensity int

// Grid densities.
const (
	// Tight is the high-density grid (15-15-tight-mica2-grid analogue).
	Tight GridDensity = iota
	// Medium is the low-density grid (15-15-medium-mica2-grid analogue).
	Medium
)

// String implements fmt.Stringer.
func (d GridDensity) String() string {
	switch d {
	case Tight:
		return "tight"
	case Medium:
		return "medium"
	default:
		return fmt.Sprintf("density(%d)", int(d))
	}
}

// Spacing returns the lattice spacing in distance units.
func (d GridDensity) Spacing() float64 {
	switch d {
	case Tight:
		return 10
	case Medium:
		return 20
	default:
		return 20
	}
}

// CommRange is the nominal radio range used by Grid and RandomDisk.
const CommRange = 30.0

// Grid builds a rows x cols lattice with the given density. Links exist
// between nodes within CommRange; base quality degrades smoothly with
// distance (perfect in the inner half of the range, quadratic falloff
// beyond), a standard abstraction of empirical mica2 connectivity curves.
func Grid(rows, cols int, density GridDensity) (*Graph, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("topo: invalid grid %dx%d", rows, cols)
	}
	spacing := density.Spacing()
	n := rows * cols
	g := &Graph{pos: make([]Point, n), neighbors: make([][]Link, n)}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.pos[r*cols+c] = Point{X: float64(c) * spacing, Y: float64(r) * spacing}
		}
	}
	connectByRange(g, CommRange)
	return g, nil
}

// RandomDisk scatters n nodes uniformly over a side x side square and
// connects nodes within CommRange, the "theoretical propagation model"
// topologies the paper mentions generating with the TinyOS tool.
func RandomDisk(n int, side float64, seed int64) (*Graph, error) {
	if n < 2 || side <= 0 {
		return nil, fmt.Errorf("topo: invalid random topology n=%d side=%f", n, side)
	}
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{pos: make([]Point, n), neighbors: make([][]Link, n)}
	for i := range g.pos {
		g.pos[i] = Point{X: rng.Float64() * side, Y: rng.Float64() * side}
	}
	connectByRange(g, CommRange)
	return g, nil
}

// Disk builds an n-node random-disk topology sized so the expected average
// degree matches targetDegree: a node covers pi*CommRange^2 of the square, so
// side = sqrt(n*pi*CommRange^2/targetDegree) yields ~targetDegree expected
// in-range neighbors (edge effects thin the boundary slightly). This is the
// constructor the large-scale runner uses: callers pick a density, not a
// field size.
func Disk(n int, targetDegree float64, seed int64) (*Graph, error) {
	if targetDegree <= 0 {
		return nil, fmt.Errorf("topo: target degree must be positive, got %f", targetDegree)
	}
	side := math.Sqrt(float64(n) * math.Pi * CommRange * CommRange / targetDegree)
	return RandomDisk(n, side, seed)
}

// connectByRange links every pair of nodes within commRange. Candidates come
// from a uniform grid of commRange-sized cells: a node's neighbors can only
// live in its own cell or the eight surrounding ones, so each node examines
// O(degree) candidates instead of all n. Candidate indices are sorted before
// the distance test, so the emitted link lists are byte-identical
// (To-ascending) to the former all-pairs scan.
func connectByRange(g *Graph, commRange float64) {
	n := len(g.pos)
	type cell struct{ cx, cy int }
	cellOf := func(p Point) cell {
		return cell{cx: int(math.Floor(p.X / commRange)), cy: int(math.Floor(p.Y / commRange))}
	}
	buckets := make(map[cell][]int, n)
	for i, p := range g.pos {
		c := cellOf(p)
		buckets[c] = append(buckets[c], i)
	}
	var cand []int
	for i := 0; i < n; i++ {
		c := cellOf(g.pos[i])
		cand = cand[:0]
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				cand = append(cand, buckets[cell{cx: c.cx + dx, cy: c.cy + dy}]...)
			}
		}
		sort.Ints(cand)
		var links []Link
		for _, j := range cand {
			if j == i {
				continue
			}
			d := g.pos[i].Distance(g.pos[j])
			if d > commRange {
				continue
			}
			links = append(links, Link{To: j, Quality: qualityAt(d, commRange)})
		}
		g.neighbors[i] = links
	}
}

// qualityAt maps distance to base delivery probability: near-perfect inside
// half the range, quadratic decay to 0.5 at the range edge.
func qualityAt(d, commRange float64) float64 {
	const inner = 0.5
	if d <= inner*commRange {
		return 0.98
	}
	frac := (d - inner*commRange) / ((1 - inner) * commRange)
	return 0.98 * (1 - 0.5*frac*frac)
}

// Connected reports whether every node is reachable from node 0, a sanity
// check experiments run before dissemination.
func (g *Graph) Connected() bool {
	n := len(g.pos)
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, l := range g.neighbors[cur] {
			if !seen[l.To] {
				seen[l.To] = true
				count++
				stack = append(stack, l.To)
			}
		}
	}
	return count == n
}
