package topo

import (
	"fmt"
	"math"
	"testing"
)

func TestCompleteGraph(t *testing.T) {
	g, err := Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5 {
		t.Fatalf("nodes %d", g.NumNodes())
	}
	for i := 0; i < 5; i++ {
		links := g.Neighbors(i)
		if len(links) != 4 {
			t.Fatalf("node %d has %d neighbors", i, len(links))
		}
		for _, l := range links {
			if l.Quality != 1 {
				t.Fatalf("complete graph link quality %f", l.Quality)
			}
			if l.To == i {
				t.Fatal("self-loop")
			}
		}
	}
	if !g.Connected() {
		t.Fatal("complete graph not connected")
	}
}

func TestCompleteTooSmall(t *testing.T) {
	if _, err := Complete(1); err == nil {
		t.Fatal("1-node complete graph accepted")
	}
}

func TestGridDensities(t *testing.T) {
	tight, err := Grid(15, 15, Tight)
	if err != nil {
		t.Fatal(err)
	}
	medium, err := Grid(15, 15, Medium)
	if err != nil {
		t.Fatal(err)
	}
	if tight.NumNodes() != 225 || medium.NumNodes() != 225 {
		t.Fatal("grid size wrong")
	}
	if tight.AvgDegree() <= medium.AvgDegree() {
		t.Fatalf("tight grid (%f) should be denser than medium (%f)", tight.AvgDegree(), medium.AvgDegree())
	}
	if !tight.Connected() || !medium.Connected() {
		t.Fatal("grids must be connected")
	}
	// Medium spacing 20 with range 30: the grid is multi-hop, not a clique.
	if medium.AvgDegree() >= float64(medium.NumNodes()-1) {
		t.Fatal("medium grid should be multi-hop")
	}
}

func TestGridSymmetricLinks(t *testing.T) {
	g, _ := Grid(4, 4, Medium)
	for i := 0; i < g.NumNodes(); i++ {
		for _, l := range g.Neighbors(i) {
			found := false
			for _, back := range g.Neighbors(l.To) {
				if back.To == i {
					found = true
					if back.Quality != l.Quality {
						t.Fatalf("asymmetric link quality %d<->%d", i, l.To)
					}
				}
			}
			if !found {
				t.Fatalf("asymmetric adjacency %d->%d", i, l.To)
			}
		}
	}
}

func TestQualityDecreasesWithDistance(t *testing.T) {
	g, _ := Grid(1, 4, Tight) // nodes at 0, 10, 20, 30
	var q10, q30 float64
	for _, l := range g.Neighbors(0) {
		switch l.To {
		case 1:
			q10 = l.Quality
		case 3:
			q30 = l.Quality
		}
	}
	if q10 == 0 || q30 == 0 {
		t.Fatal("expected links at 10 and 30 units")
	}
	if q30 >= q10 {
		t.Fatalf("quality should fall with distance: q(10)=%f q(30)=%f", q10, q30)
	}
}

func TestGridInvalid(t *testing.T) {
	if _, err := Grid(0, 5, Tight); err == nil {
		t.Fatal("invalid grid accepted")
	}
}

func TestRandomDiskDeterministic(t *testing.T) {
	a, err := RandomDisk(30, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := RandomDisk(30, 100, 7)
	for i := 0; i < 30; i++ {
		if a.Position(i) != b.Position(i) {
			t.Fatal("RandomDisk not deterministic")
		}
	}
	c, _ := RandomDisk(30, 100, 8)
	same := true
	for i := 0; i < 30; i++ {
		if a.Position(i) != c.Position(i) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical layout")
	}
}

func TestRandomDiskInvalid(t *testing.T) {
	if _, err := RandomDisk(1, 100, 1); err == nil {
		t.Fatal("single node accepted")
	}
	if _, err := RandomDisk(10, 0, 1); err == nil {
		t.Fatal("zero side accepted")
	}
}

func TestDistance(t *testing.T) {
	a := Point{X: 0, Y: 0}
	b := Point{X: 3, Y: 4}
	if a.Distance(b) != 5 {
		t.Fatalf("distance %f", a.Distance(b))
	}
}

func TestDensityString(t *testing.T) {
	if Tight.String() != "tight" || Medium.String() != "medium" {
		t.Fatal("density names wrong")
	}
	if Tight.Spacing() >= Medium.Spacing() {
		t.Fatal("tight spacing should be smaller")
	}
}

func TestDisconnectedDetection(t *testing.T) {
	// Two nodes far beyond comm range.
	g, err := RandomDisk(2, 10000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Connected() {
		// Statistically near-impossible at side 10000 with range 30; if it
		// happens the seed placed them together — regenerate mentality not
		// needed, just check the primitive differently.
		t.Skip("nodes happened to land in range")
	}
}

// connectByRangeNaive is the all-pairs reference the grid-bucket index in
// connectByRange must reproduce byte-for-byte.
func connectByRangeNaive(g *Graph, commRange float64) {
	n := len(g.pos)
	for i := 0; i < n; i++ {
		var links []Link
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			d := g.pos[i].Distance(g.pos[j])
			if d > commRange {
				continue
			}
			links = append(links, Link{To: j, Quality: qualityAt(d, commRange)})
		}
		g.neighbors[i] = links
	}
}

func TestConnectByRangeMatchesNaive(t *testing.T) {
	for _, n := range []int{2, 17, 200, 1000} {
		g, err := RandomDisk(n, 200, int64(n))
		if err != nil {
			t.Fatal(err)
		}
		ref := &Graph{pos: g.pos, neighbors: make([][]Link, n)}
		connectByRangeNaive(ref, CommRange)
		for i := 0; i < n; i++ {
			got, want := g.Neighbors(i), ref.neighbors[i]
			if len(got) != len(want) {
				t.Fatalf("n=%d node %d: %d links, want %d", n, i, len(got), len(want))
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("n=%d node %d link %d: %+v, want %+v", n, i, k, got[k], want[k])
				}
			}
		}
	}
}

// BenchmarkConnectByRange pins the spatial index's advantage over the former
// all-pairs scan; at constant density the indexed build is near-linear in n.
func BenchmarkConnectByRange(b *testing.B) {
	for _, n := range []int{250, 1000, 4000} {
		// Side grows with sqrt(n) so node density — and thus average degree —
		// stays constant across sizes.
		g, err := RandomDisk(n, 14*math.Sqrt(float64(n)), int64(n))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("indexed/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				connectByRange(g, CommRange)
			}
		})
		b.Run(fmt.Sprintf("naive/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				connectByRangeNaive(g, CommRange)
			}
		})
	}
}

func TestDiskTargetDegree(t *testing.T) {
	for _, target := range []float64{12, 24} {
		g, err := Disk(4000, target, 7)
		if err != nil {
			t.Fatal(err)
		}
		got := g.AvgDegree()
		// Edge effects thin the boundary; accept a wide but meaningful band.
		if got < target*0.7 || got > target*1.2 {
			t.Errorf("Disk(4000, %v): avg degree %.1f outside [%.1f, %.1f]", target, got, target*0.7, target*1.2)
		}
	}
}

func TestDiskRejectsBadDegree(t *testing.T) {
	if _, err := Disk(100, 0, 1); err == nil {
		t.Fatal("expected error for zero target degree")
	}
}

func TestDiskDeterministic(t *testing.T) {
	a, _ := Disk(500, 16, 3)
	b, _ := Disk(500, 16, 3)
	for i := 0; i < a.NumNodes(); i++ {
		if a.Position(i) != b.Position(i) {
			t.Fatalf("node %d position differs across identical seeds", i)
		}
		la, lb := a.Neighbors(i), b.Neighbors(i)
		if len(la) != len(lb) {
			t.Fatalf("node %d degree differs across identical seeds", i)
		}
	}
}
