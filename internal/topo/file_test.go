package topo

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseNodeFileTwoColumn(t *testing.T) {
	in := `# comment
0 0
10 0

20 0
`
	g, err := ParseNodeFile(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("nodes %d", g.NumNodes())
	}
	if g.Position(1) != (Point{X: 10, Y: 0}) {
		t.Fatalf("position wrong: %+v", g.Position(1))
	}
	// 0 and 1 are 10 apart (within range); 0 and 2 are 20 apart (within
	// range 30); all connected.
	if len(g.Neighbors(0)) != 2 {
		t.Fatalf("node 0 neighbors: %d", len(g.Neighbors(0)))
	}
}

func TestParseNodeFileThreeColumn(t *testing.T) {
	in := "0 0 0\n1 10 0\n2 0 10\n"
	g, err := ParseNodeFile(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || !g.Connected() {
		t.Fatal("three-column parse wrong")
	}
}

func TestParseNodeFileErrors(t *testing.T) {
	cases := []string{
		"",                // no nodes
		"0 0",             // one node
		"0 0 0\n5 10 0\n", // id out of order
		"a b\n",           // bad coordinates
		"1 2 3 4\n",       // too many fields
		"0 0\nnot-a-float 0\n",
	}
	for i, in := range cases {
		if _, err := ParseNodeFile(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: malformed file accepted", i)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	g, err := Grid(3, 3, Medium)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteNodeFile(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseNodeFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() {
		t.Fatal("node count changed in roundtrip")
	}
	for i := 0; i < g.NumNodes(); i++ {
		if back.Position(i) != g.Position(i) {
			t.Fatalf("position %d changed", i)
		}
		if len(back.Neighbors(i)) != len(g.Neighbors(i)) {
			t.Fatalf("adjacency %d changed", i)
		}
	}
}
