package trickle

import (
	"math/rand"
	"testing"

	"lrseluge/internal/sim"
)

func newTrickle(t *testing.T, cfg Config) (*sim.Engine, *Trickle, *int) {
	t.Helper()
	eng := sim.New()
	count := 0
	trk, err := New(eng, rand.New(rand.NewSource(1)), cfg, func() { count++ })
	if err != nil {
		t.Fatal(err)
	}
	return eng, trk, &count
}

func TestFiresWithinFirstInterval(t *testing.T) {
	eng, trk, count := newTrickle(t, Config{IMin: 2 * sim.Second, IMax: 60 * sim.Second, K: 1})
	trk.Start()
	eng.Run(2 * sim.Second)
	if *count != 1 {
		t.Fatalf("fired %d times in first interval, want 1", *count)
	}
}

func TestIntervalDoublesToIMax(t *testing.T) {
	eng, trk, _ := newTrickle(t, Config{IMin: 1 * sim.Second, IMax: 8 * sim.Second, K: 1})
	trk.Start()
	eng.Run(1 * sim.Second)
	if trk.Interval() != 2*sim.Second {
		t.Fatalf("after one interval: %v", trk.Interval())
	}
	eng.Run(3 * sim.Second)
	if trk.Interval() != 4*sim.Second {
		t.Fatalf("after two intervals: %v", trk.Interval())
	}
	eng.Run(100 * sim.Second)
	if trk.Interval() != 8*sim.Second {
		t.Fatalf("interval should cap at IMax: %v", trk.Interval())
	}
}

func TestSuppressionWithK(t *testing.T) {
	eng, trk, count := newTrickle(t, Config{IMin: 2 * sim.Second, IMax: 60 * sim.Second, K: 1})
	trk.Start()
	// Hear a consistent advertisement before the fire point of every
	// interval: the node must stay silent.
	for i := 0; i < 100; i++ {
		eng.Schedule(sim.Time(i)*sim.Second, trk.HearConsistent)
	}
	eng.Run(90 * sim.Second)
	if *count != 0 {
		t.Fatalf("suppression failed: fired %d times", *count)
	}
}

func TestInconsistencyResetsInterval(t *testing.T) {
	eng, trk, _ := newTrickle(t, Config{IMin: 1 * sim.Second, IMax: 64 * sim.Second, K: 1})
	trk.Start()
	eng.Run(20 * sim.Second)
	if trk.Interval() <= 1*sim.Second {
		t.Fatal("interval should have grown")
	}
	var after sim.Time
	eng.Schedule(0, func() {
		trk.HearInconsistent()
		after = trk.Interval()
	})
	eng.Run(21 * sim.Second)
	if after != 1*sim.Second {
		t.Fatalf("inconsistency did not reset interval: %v", after)
	}
}

func TestHearInconsistentAtIMinNoReset(t *testing.T) {
	eng, trk, count := newTrickle(t, Config{IMin: 2 * sim.Second, IMax: 60 * sim.Second, K: 1})
	trk.Start()
	// At IMin already: HearInconsistent must not restart the interval
	// (which would starve the timer forever under constant inconsistency).
	for i := 0; i < 2000; i++ {
		eng.Schedule(sim.Time(i)*sim.Millisecond, trk.HearInconsistent)
	}
	eng.Run(2 * sim.Second)
	if *count != 1 {
		t.Fatalf("fired %d times, want 1", *count)
	}
}

func TestStopSilences(t *testing.T) {
	eng, trk, count := newTrickle(t, Config{IMin: 1 * sim.Second, IMax: 4 * sim.Second, K: 1})
	trk.Start()
	eng.Schedule(500*sim.Millisecond, trk.Stop)
	eng.Run(30 * sim.Second)
	if trk.Running() {
		t.Fatal("still running after Stop")
	}
	if *count > 1 {
		t.Fatalf("fired %d times after early stop", *count)
	}
}

func TestStartIdempotent(t *testing.T) {
	eng, trk, count := newTrickle(t, Config{IMin: 1 * sim.Second, IMax: 4 * sim.Second, K: 1})
	trk.Start()
	trk.Start()
	eng.Run(1 * sim.Second)
	if *count != 1 {
		t.Fatalf("double Start duplicated timers: %d fires", *count)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{IMin: 0, IMax: 10, K: 1},
		{IMin: 10, IMax: 5, K: 1},
		{IMin: 1, IMax: 10, K: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	eng := sim.New()
	if _, err := New(eng, nil, DefaultConfig(), func() {}); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := New(eng, rand.New(rand.NewSource(1)), DefaultConfig(), nil); err == nil {
		t.Fatal("nil transmit accepted")
	}
}

func TestFirePointInSecondHalf(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		eng := sim.New()
		var firedAt sim.Time = -1
		trk, err := New(eng, rand.New(rand.NewSource(seed)), Config{IMin: 10 * sim.Second, IMax: 10 * sim.Second, K: 1}, func() { firedAt = eng.Now() })
		if err != nil {
			t.Fatal(err)
		}
		trk.Start()
		eng.Run(10 * sim.Second)
		if firedAt < 5*sim.Second || firedAt >= 10*sim.Second {
			t.Fatalf("seed %d: fired at %v, want within [5s, 10s)", seed, firedAt)
		}
	}
}
