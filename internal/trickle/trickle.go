// Package trickle implements the Trickle algorithm (Levis et al., RFC 6206
// style) that Deluge, Seluge and LR-Seluge use to pace advertisements
// (paper §IV-D.1): exponentially growing intervals with suppression when
// enough consistent advertisements are overheard, and a reset to the minimum
// interval on inconsistency (a neighbor with different state).
package trickle

import (
	"fmt"
	"math/rand"

	"lrseluge/internal/obs"
	"lrseluge/internal/sim"
)

// Config holds Trickle parameters.
type Config struct {
	// IMin is the minimum interval length.
	IMin sim.Time
	// IMax is the maximum interval length.
	IMax sim.Time
	// K is the redundancy constant: the node suppresses its own
	// transmission when it has heard at least K consistent messages in
	// the current interval.
	K int
}

// DefaultConfig matches Deluge's advertisement pacing (2 s .. 60 s, k = 1).
func DefaultConfig() Config {
	return Config{IMin: 2 * sim.Second, IMax: 60 * sim.Second, K: 1}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.IMin <= 0 || c.IMax < c.IMin || c.K < 1 {
		return fmt.Errorf("trickle: invalid config IMin=%v IMax=%v K=%d", c.IMin, c.IMax, c.K)
	}
	return nil
}

// Trickle is one node's advertisement timer. Not safe for concurrent use;
// like all protocol state it lives inside the single-threaded simulation.
type Trickle struct {
	eng      *sim.Engine
	rng      *rand.Rand
	cfg      Config
	transmit func()

	interval sim.Time
	counter  int
	fire     sim.Timer
	rollover sim.Timer
	running  bool
	obs      *obs.Timers
}

// New creates a stopped Trickle instance that calls transmit when the timer
// fires un-suppressed.
func New(eng *sim.Engine, rng *rand.Rand, cfg Config, transmit func()) (*Trickle, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if eng == nil || rng == nil || transmit == nil {
		return nil, fmt.Errorf("trickle: nil dependency")
	}
	return &Trickle{eng: eng, rng: rng, cfg: cfg, transmit: transmit}, nil
}

// SetObs installs phase timers attributing timer-callback wall time to the
// trickle phase; nil (the default) disables the accounting.
func (t *Trickle) SetObs(ot *obs.Timers) { t.obs = ot }

// Start begins operation at the minimum interval.
func (t *Trickle) Start() {
	if t.running {
		return
	}
	t.running = true
	t.interval = t.cfg.IMin
	t.beginInterval()
}

// Stop cancels all pending timers.
func (t *Trickle) Stop() {
	t.running = false
	t.fire.Stop()
	t.rollover.Stop()
}

// Running reports whether the timer is active.
func (t *Trickle) Running() bool { return t.running }

// Interval returns the current interval length, exposed for tests.
func (t *Trickle) Interval() sim.Time { return t.interval }

// HearConsistent records an overheard advertisement that matches our own
// state, contributing to suppression.
func (t *Trickle) HearConsistent() {
	if t.running {
		t.counter++
	}
}

// HearInconsistent resets the interval to IMin (if not already there),
// making the node advertise quickly while the network disagrees.
func (t *Trickle) HearInconsistent() {
	if !t.running {
		return
	}
	if t.interval > t.cfg.IMin {
		t.Reset()
	}
}

// Reset restarts the current interval at IMin regardless of its length.
func (t *Trickle) Reset() {
	if !t.running {
		return
	}
	t.fire.Stop()
	t.rollover.Stop()
	t.interval = t.cfg.IMin
	t.beginInterval()
}

func (t *Trickle) beginInterval() {
	t.counter = 0
	// Fire at a uniform random point in the second half of the interval.
	half := t.interval / 2
	fireAt := half + sim.Time(t.rng.Int63n(int64(half)+1))
	t.fire = t.eng.Schedule(fireAt, func() {
		t.obs.StartSampled(obs.PhaseTrickle)
		if t.running && t.counter < t.cfg.K {
			t.transmit()
		}
		t.obs.EndSampled(obs.PhaseTrickle)
	})
	t.rollover = t.eng.Schedule(t.interval, func() {
		t.obs.StartSampled(obs.PhaseTrickle)
		if t.running {
			t.interval *= 2
			if t.interval > t.cfg.IMax {
				t.interval = t.cfg.IMax
			}
			t.beginInterval()
		}
		t.obs.EndSampled(obs.PhaseTrickle)
	})
}
