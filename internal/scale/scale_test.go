package scale

import (
	"testing"

	"lrseluge/internal/sim"
)

// baseConfig is a small instance that finishes quickly in tier-1 CI while
// still exercising multi-hop forwarding on a disk graph.
func baseConfig(queue sim.QueueKind) Config {
	return Config{
		Nodes:        40,
		TargetDegree: 12,
		ImageKB:      2,
		Seed:         11,
		Queue:        queue,
		CompactRNG:   true,
		TraceHash:    true,
	}
}

// TestHeapCalendarByteIdentity is the queue-equivalence gate at the full
// protocol level: the same seeded run under the heap and calendar queues
// must produce identical run bytes — the same transmission trace hash and
// the same metrics — not merely the same aggregate outcome.
func TestHeapCalendarByteIdentity(t *testing.T) {
	heap, err := Run(baseConfig(sim.HeapQueue))
	if err != nil {
		t.Fatal(err)
	}
	cal, err := Run(baseConfig(sim.CalendarQueue))
	if err != nil {
		t.Fatal(err)
	}
	if heap.TraceHash == "" || heap.TraceHash != cal.TraceHash {
		t.Errorf("trace hash differs: heap %s calendar %s", heap.TraceHash, cal.TraceHash)
	}
	if heap.Events != cal.Events {
		t.Errorf("event count differs: heap %d calendar %d", heap.Events, cal.Events)
	}
	if heap.Completed != cal.Completed || heap.LatencySec != cal.LatencySec || heap.TotalBytes != cal.TotalBytes {
		t.Errorf("metrics differ: heap %+v calendar %+v", heap, cal)
	}
	if heap.Queue != "heap" || cal.Queue != "calendar" {
		t.Errorf("queue labels: %q, %q", heap.Queue, cal.Queue)
	}
}

func TestRunCompletesAllNodes(t *testing.T) {
	rep, err := Run(baseConfig(sim.CalendarQueue))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != rep.Nodes {
		t.Fatalf("only %d of %d nodes completed", rep.Completed, rep.Nodes)
	}
	if rep.LatencySec <= 0 {
		t.Errorf("non-positive latency %v", rep.LatencySec)
	}
	if rep.BytesPerNode <= 0 {
		t.Errorf("non-positive bytes/node %v", rep.BytesPerNode)
	}
}

func TestProgressStreams(t *testing.T) {
	cfg := baseConfig(sim.CalendarQueue)
	cfg.TraceHash = false
	cfg.SliceEvery = 5 * sim.Second
	var snaps []Snapshot
	cfg.Progress = func(s Snapshot) { snaps = append(snaps, s) }
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots streamed")
	}
	last := snaps[len(snaps)-1]
	if last.Completed != rep.Completed {
		t.Errorf("final snapshot completed %d, report %d", last.Completed, rep.Completed)
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Now < snaps[i-1].Now || snaps[i].Events < snaps[i-1].Events {
			t.Fatalf("snapshots not monotone at %d: %+v then %+v", i, snaps[i-1], snaps[i])
		}
	}
}

// TestHorizonBoundsRun pins that a run which cannot complete (horizon far
// too short for dissemination) still terminates at the horizon. The engine
// clock stops at the last executed event, strictly below the horizon when
// no event lands exactly on it, so the loop must break on the slice bound —
// the old clock-based check spun forever.
func TestHorizonBoundsRun(t *testing.T) {
	cfg := baseConfig(sim.CalendarQueue)
	cfg.TraceHash = false
	cfg.Horizon = 3 * sim.Second
	cfg.SliceEvery = sim.Second
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed >= rep.Nodes {
		t.Fatalf("run completed %d nodes inside a 3s horizon; the test needs an unfinished run", rep.Completed)
	}
}

func TestRunRejectsTinyNetwork(t *testing.T) {
	if _, err := Run(Config{Nodes: 1}); err == nil {
		t.Fatal("expected error for 1-node network")
	}
}

// TestCompactRNGDeterministic pins that compact-RNG runs are reproducible:
// two identical configs yield identical trace hashes.
func TestCompactRNGDeterministic(t *testing.T) {
	a, err := Run(baseConfig(sim.CalendarQueue))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseConfig(sim.CalendarQueue))
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceHash != b.TraceHash {
		t.Fatalf("same config, different trace hashes: %s vs %s", a.TraceHash, b.TraceHash)
	}
}
