package scale

import (
	"bytes"
	"testing"

	"lrseluge/internal/obs"
	"lrseluge/internal/sim"
)

// TestObsDoesNotPerturbRun is the determinism contract: installing phase
// timers, the sampler and the progress board must leave the same-seed run
// byte-identical — same transmission-trace hash, same metrics.
func TestObsDoesNotPerturbRun(t *testing.T) {
	plain, err := Run(baseConfig(sim.CalendarQueue))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(sim.CalendarQueue)
	cfg.Obs = obs.NewTimers()
	cfg.Sampler = obs.NewSampler(&bytes.Buffer{})
	cfg.Board = &obs.Board{}
	cfg.SliceEvery = 5 * sim.Second
	observed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.TraceHash == "" || plain.TraceHash != observed.TraceHash {
		t.Errorf("obs perturbed the run: trace hash %s vs %s", plain.TraceHash, observed.TraceHash)
	}
	if plain.Events != observed.Events || plain.Completed != observed.Completed ||
		plain.LatencySec != observed.LatencySec || plain.TotalBytes != observed.TotalBytes {
		t.Errorf("obs perturbed metrics:\n plain    %+v\n observed %+v", plain, observed)
	}
}

// TestObsAttributionCoverage pins the tentpole acceptance shape: with every
// subsystem instrumented, the attribution table accounts for most of the
// measured wall time. CI shares cores, so the bound here is a loose sanity
// floor; the calibrated >= 80% gate runs in lrscale -obsbench via check.sh.
func TestObsAttributionCoverage(t *testing.T) {
	cfg := baseConfig(sim.CalendarQueue)
	cfg.TraceHash = false
	cfg.Obs = obs.NewTimers()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Obs == nil {
		t.Fatal("Report.Obs missing with Config.Obs set")
	}
	if rep.Obs.WallNS <= 0 || rep.Obs.CoveredNS <= 0 {
		t.Fatalf("empty attribution: %+v", rep.Obs)
	}
	if rep.Obs.CoveredFrac < 0.5 {
		t.Errorf("attribution covers only %.1f%% of wall time", 100*rep.Obs.CoveredFrac)
	}
	seen := map[string]bool{}
	for _, row := range rep.Obs.Phases {
		seen[row.Phase] = true
	}
	// A full dissemination exercises every instrumented subsystem.
	for _, want := range []string{
		"sim.queue.pop", "sim.queue.push", "sim.dispatch", "radio.deliver",
		"crypt.sig-verify", "crypt.puzzle", "crypt.hash-verify",
		"erasure.rs-encode", "erasure.rs-decode", "trickle",
	} {
		if !seen[want] {
			t.Errorf("phase %q missing from attribution table: %+v", want, rep.Obs.Phases)
		}
	}
}

// TestSamplerWiredIntoSlices pins that the scale loop drives the sampler
// once per progress slice with live gauges.
func TestSamplerWiredIntoSlices(t *testing.T) {
	var buf bytes.Buffer
	cfg := baseConfig(sim.CalendarQueue)
	cfg.TraceHash = false
	cfg.SliceEvery = 5 * sim.Second
	cfg.Sampler = obs.NewSampler(&buf)
	board := &obs.Board{}
	cfg.Board = board
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Sampler.Flush(); err != nil {
		t.Fatal(err)
	}
	snaps, err := obs.ReadSnapshots(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots sampled")
	}
	last := snaps[len(snaps)-1]
	if last.Completed != rep.Completed {
		t.Errorf("final snapshot completed %d, report %d", last.Completed, rep.Completed)
	}
	if last.Events == 0 || last.SimNS <= 0 {
		t.Errorf("gauges not wired: %+v", last)
	}
	published, ok := board.Load().(obs.Snapshot)
	if !ok {
		t.Fatalf("board holds %T, want obs.Snapshot", board.Load())
	}
	if published.Events != last.Events {
		t.Errorf("board snapshot events %d, sampler %d", published.Events, last.Events)
	}
}

// TestIncompleteReported is the silent-incompletion regression: a
// horizon-bounded run that cannot finish must carry the missing-node count
// in its report rather than leaving Completed to be eyeballed.
func TestIncompleteReported(t *testing.T) {
	cfg := baseConfig(sim.CalendarQueue)
	cfg.TraceHash = false
	cfg.Horizon = 3 * sim.Second
	cfg.SliceEvery = sim.Second
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed >= rep.Nodes {
		t.Fatalf("run completed inside a 3s horizon; the test needs an unfinished run")
	}
	if rep.Incomplete != rep.Nodes-rep.Completed {
		t.Errorf("Incomplete = %d, want %d", rep.Incomplete, rep.Nodes-rep.Completed)
	}
	if rep.Incomplete == 0 {
		t.Error("Incomplete = 0 on an unfinished run")
	}

	// And a complete run reports zero.
	full, err := Run(baseConfig(sim.CalendarQueue))
	if err != nil {
		t.Fatal(err)
	}
	if full.Incomplete != 0 {
		t.Errorf("complete run reports Incomplete = %d", full.Incomplete)
	}
}
