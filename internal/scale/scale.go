// Package scale runs LR-Seluge dissemination on large random-disk networks
// (up to 100k nodes) and reports engine throughput and memory figures.
//
// It is the benchmark surface behind cmd/lrscale and BENCH_scale.json: a
// thin, allocation-conscious wiring of the same components the experiment
// harness uses (core handlers, the greedy scheduler, the radio layer), but
// with the compact large-run choices turned on — dense node-indexed metrics
// (metrics.NewDense), 8-byte SplitMix RNG state per node
// (dissem.Config.CompactRNG), and a selectable event-queue implementation
// (sim.QueueKind), so heap-vs-calendar runs can be compared for both speed
// and byte identity.
package scale

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"lrseluge/internal/core"
	"lrseluge/internal/crypt/puzzle"
	"lrseluge/internal/crypt/sign"
	"lrseluge/internal/dissem"
	"lrseluge/internal/image"
	"lrseluge/internal/metrics"
	"lrseluge/internal/obs"
	"lrseluge/internal/packet"
	"lrseluge/internal/radio"
	"lrseluge/internal/sim"
	"lrseluge/internal/topo"
)

// Config parameterizes one large-scale run.
type Config struct {
	// Nodes is the total node count including the preloaded base station
	// (node 0). Must be >= 2.
	Nodes int
	// TargetDegree sizes the random-disk field so the expected average
	// degree matches (topo.Disk). Zero means 16.
	TargetDegree float64
	// ImageKB is the image size in KiB. Zero means 8.
	ImageKB int
	// Seed derives every random stream in the run (topology, radio, image,
	// per-node RNGs) exactly as the experiment harness does.
	Seed int64
	// Queue selects the event-queue implementation.
	Queue sim.QueueKind
	// LossP, when positive, applies a Bernoulli loss with that probability.
	LossP float64
	// Horizon bounds virtual time. Zero means 4 simulated hours.
	Horizon sim.Time
	// CompactRNG backs per-node RNGs with 8-byte SplitMix64 state instead
	// of math/rand's ~4.9 KB default. The stream differs from the default,
	// so runs with it on are only comparable to other CompactRNG runs.
	CompactRNG bool
	// TraceHash, when true, hashes every transmission (virtual time,
	// sender, wire bytes) in global order; Report.TraceHash carries the
	// hex digest. Used by the heap-vs-calendar identity gate.
	TraceHash bool
	// SliceEvery is the virtual-time slice between Progress callbacks.
	// Zero means 60 simulated seconds.
	SliceEvery sim.Time
	// Progress, when non-nil, streams a snapshot after each slice, so
	// 100k-node runs report liveness without accumulating per-slice state.
	Progress func(Snapshot)
	// Obs, when non-nil, installs wall-time phase timers through the
	// engine, radio, crypto and codec layers; Report.Obs carries the
	// resulting attribution table. Measurements never feed back into
	// the simulation, so same-seed runs stay byte-identical either way.
	Obs *obs.Timers
	// Sampler, when non-nil, captures one runtime snapshot per progress
	// slice (JSONL; see obs.Sampler).
	Sampler *obs.Sampler
	// Board, when non-nil, receives the latest obs.Snapshot each slice for
	// the live HTTP /progress endpoint.
	Board *obs.Board
}

// Snapshot is one incremental progress observation.
type Snapshot struct {
	// Now is the virtual time of the observation.
	Now sim.Time
	// Completed is how many nodes hold the full image.
	Completed int
	// Events is the cumulative count of executed engine events.
	Events uint64
	// WallElapsed is real time since the run loop started.
	WallElapsed time.Duration
}

// Report is the outcome of one run.
type Report struct {
	Nodes     int     `json:"nodes"`
	AvgDegree float64 `json:"avg_degree"`
	Queue     string  `json:"queue"`
	Completed int     `json:"completed"`
	// Incomplete is Nodes-Completed: how many nodes ended the run without
	// the full image (horizon hit, or isolated nodes). Always emitted so a
	// partial run can never pass for a complete one silently.
	Incomplete   int     `json:"incomplete"`
	LatencySec   float64 `json:"latency_sec"`
	Events       uint64  `json:"events"`
	WallMS       int64   `json:"wall_ms"`
	EventsPerSec float64 `json:"events_per_sec"`
	TotalBytes   int64   `json:"total_bytes"`
	BytesPerNode float64 `json:"bytes_per_node"`
	// PeakRSSKB is the process-wide peak resident set (VmHWM) after the
	// run, in KiB; zero where /proc is unavailable. It is a whole-process
	// high-water mark, not a per-run delta, so compare runs from separate
	// processes only.
	PeakRSSKB int64 `json:"peak_rss_kb"`
	// TraceHash is the hex sha256 over the transmission trace when
	// Config.TraceHash was set, empty otherwise.
	TraceHash string `json:"trace_hash,omitempty"`
	// Obs is the wall-time attribution table when Config.Obs was set.
	Obs *obs.Attribution `json:"obs,omitempty"`
}

func (c Config) withDefaults() Config {
	if c.TargetDegree == 0 {
		c.TargetDegree = 16
	}
	if c.ImageKB == 0 {
		c.ImageKB = 8
	}
	if c.Horizon == 0 {
		c.Horizon = 4 * 3600 * sim.Second
	}
	if c.SliceEvery == 0 {
		c.SliceEvery = 60 * sim.Second
	}
	return c
}

// Run executes one large-scale LR-Seluge dissemination.
//
//lrlint:effects(wallclock,fs) wall-clock time is the reported measurement (events/sec), never simulation input; fs reads /proc for the peak-RSS figure
func Run(cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Nodes < 2 {
		return Report{}, fmt.Errorf("scale: need >= 2 nodes, got %d", cfg.Nodes)
	}

	graph, err := topo.Disk(cfg.Nodes, cfg.TargetDegree, cfg.Seed)
	if err != nil {
		return Report{}, err
	}

	eng := sim.NewWithQueue(cfg.Queue)
	eng.SetObs(cfg.Obs)
	col := metrics.NewDense(cfg.Nodes)
	var loss radio.LossModel = radio.NoLoss{}
	if cfg.LossP > 0 {
		loss = radio.Bernoulli{P: cfg.LossP}
	}
	nw, err := radio.New(eng, graph, loss, radio.DefaultConfig(), col, cfg.Seed^0x5eed)
	if err != nil {
		return Report{}, err
	}
	nw.SetObs(cfg.Obs)

	var hasher interface{ Sum([]byte) []byte }
	if cfg.TraceHash {
		h := sha256.New()
		var hdr [10]byte
		nw.SetTxObserver(func(at sim.Time, from packet.NodeID, p packet.Packet) {
			binary.BigEndian.PutUint64(hdr[0:8], uint64(at))
			binary.BigEndian.PutUint16(hdr[8:10], uint16(from))
			h.Write(hdr[:])
			h.Write(p.Marshal())
		})
		hasher = h
	}

	// Security material, seeded exactly as the experiment harness seeds it.
	keyPair, err := sign.GenerateDeterministic(cfg.Seed ^ 0xec)
	if err != nil {
		return Report{}, err
	}
	chain, err := puzzle.NewChain([]byte("lrseluge-experiment"), 8)
	if err != nil {
		return Report{}, err
	}
	pparams := puzzle.Params{Strength: 8}
	newSigCtx := func() *dissem.SigContext {
		return &dissem.SigContext{
			Pub:        keyPair.Public(),
			Commitment: chain.Commitment(),
			Puzzle:     pparams,
			Col:        col,
			Obs:        cfg.Obs,
		}
	}

	const version = 1
	params := image.DefaultParams()
	obj, err := core.Build(core.BuildInput{
		Version: version,
		Image:   image.Random(cfg.ImageKB*1024, cfg.Seed^0x1337),
		Params:  params,
		Key:     keyPair,
		Chain:   chain,
		Puzzle:  pparams,
	})
	if err != nil {
		return Report{}, err
	}

	dcfg := dissem.DefaultConfig()
	dcfg.CompactRNG = cfg.CompactRNG
	completed := 0
	allDone := false
	nodes := make([]*dissem.Node, 0, cfg.Nodes)
	for id := 0; id < cfg.Nodes; id++ {
		var h *core.Handler
		if id == 0 {
			h = core.Preload(obj, newSigCtx())
		} else {
			h, err = core.NewHandler(version, params, newSigCtx())
			if err != nil {
				return Report{}, err
			}
		}
		node, err := dissem.NewNode(packet.NodeID(id), nw, dcfg, h, h.NewPolicy(), cfg.Seed^(int64(id)*0x9e3779b9+1))
		if err != nil {
			return Report{}, err
		}
		node.SetOnComplete(func(packet.NodeID, sim.Time) {
			completed++
			if completed == cfg.Nodes {
				allDone = true
				eng.Stop()
			}
		})
		nodes = append(nodes, node)
	}

	for _, n := range nodes {
		n.Start()
	}

	start := time.Now()
	for next := cfg.SliceEvery; ; next += cfg.SliceEvery {
		if next > cfg.Horizon {
			next = cfg.Horizon
		}
		now := eng.Run(next)
		if cfg.Progress != nil {
			cfg.Progress(Snapshot{
				Now:         now,
				Completed:   col.Completions(),
				Events:      eng.Events(),
				WallElapsed: time.Since(start),
			})
		}
		if cfg.Sampler != nil || cfg.Board != nil {
			snap := cfg.Sampler.Sample(obs.Gauges{
				SimNS:     int64(now),
				Events:    eng.Events(),
				Pending:   eng.Pending(),
				Completed: col.Completions(),
			})
			cfg.Board.Publish(snap)
		}
		// Break on the slice bound, not the engine clock: Run returns the
		// time of the last executed event, which sits strictly below the
		// horizon whenever no event lands exactly on it (e.g. an isolated
		// node keeps the network from completing and the run must end at
		// the horizon).
		if allDone || next >= cfg.Horizon || eng.Pending() == 0 {
			break
		}
	}
	wall := time.Since(start)

	rep := Report{
		Nodes:        cfg.Nodes,
		AvgDegree:    graph.AvgDegree(),
		Queue:        cfg.Queue.String(),
		Completed:    col.Completions(),
		Incomplete:   cfg.Nodes - col.Completions(),
		LatencySec:   col.Latency().Seconds(),
		Events:       eng.Events(),
		WallMS:       wall.Milliseconds(),
		TotalBytes:   col.TotalBytes(),
		BytesPerNode: float64(col.TotalBytes()) / float64(cfg.Nodes),
		PeakRSSKB:    peakRSSKB(),
	}
	if secs := wall.Seconds(); secs > 0 {
		rep.EventsPerSec = float64(rep.Events) / secs
	}
	if hasher != nil {
		rep.TraceHash = hex.EncodeToString(hasher.Sum(nil))
	}
	if cfg.Obs != nil {
		table := cfg.Obs.Table(int64(wall))
		rep.Obs = &table
	}
	return rep, nil
}

// peakRSSKB reads the process peak resident set (VmHWM) from /proc, in KiB.
// Returns zero on platforms without procfs.
func peakRSSKB() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb
	}
	return 0
}
