// Package detmap provides deterministic map-iteration helpers.
//
// Go randomizes map iteration order on purpose; protocol code that schedules
// events or emits packets while ranging over a map would make simulation
// runs irreproducible even under a fixed seed. The lrlint map-range pass
// (internal/lint) forbids direct map iteration in those packages; these
// helpers are the blessed replacement.
package detmap

import (
	"cmp"
	"slices"
)

// SortedKeys returns the map's keys in ascending order. Iterating
//
//	for _, k := range detmap.SortedKeys(m) { ... m[k] ... }
//
// visits entries in a deterministic order at the cost of one allocation and
// an O(n log n) sort.
func SortedKeys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	keys := make([]K, 0, len(m))
	//lrlint:ignore scan-complexity trip count belongs to the caller's map; each call site is classified where the map is ranged
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}
