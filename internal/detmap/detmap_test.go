package detmap

import (
	"slices"
	"testing"
)

func TestSortedKeysInts(t *testing.T) {
	m := map[int]string{5: "e", 1: "a", 3: "c", 2: "b", 4: "d"}
	for i := 0; i < 50; i++ {
		got := SortedKeys(m)
		if !slices.Equal(got, []int{1, 2, 3, 4, 5}) {
			t.Fatalf("run %d: got %v", i, got)
		}
	}
}

func TestSortedKeysNamedKeyType(t *testing.T) {
	type id uint16
	m := map[id]int{7: 0, 0: 0, 65535: 0}
	if got := SortedKeys(m); !slices.Equal(got, []id{0, 7, 65535}) {
		t.Fatalf("got %v", got)
	}
}

func TestSortedKeysEmptyAndNil(t *testing.T) {
	if got := SortedKeys(map[string]int{}); len(got) != 0 {
		t.Fatalf("empty map: got %v", got)
	}
	var m map[string]int
	if got := SortedKeys(m); len(got) != 0 {
		t.Fatalf("nil map: got %v", got)
	}
}

func TestSortedKeysSingleKey(t *testing.T) {
	if got := SortedKeys(map[string]int{"only": 1}); !slices.Equal(got, []string{"only"}) {
		t.Fatalf("single key: got %v", got)
	}
}

func TestSortedKeysNegativeInts(t *testing.T) {
	m := map[int]bool{-3: true, 0: true, -1: true, 2: true}
	if got := SortedKeys(m); !slices.Equal(got, []int{-3, -1, 0, 2}) {
		t.Fatalf("got %v", got)
	}
}

func TestSortedKeysFloatKeys(t *testing.T) {
	m := map[float64]int{0.5: 0, -1.25: 0, 0: 0, 3.75: 0}
	if got := SortedKeys(m); !slices.Equal(got, []float64{-1.25, 0, 0.5, 3.75}) {
		t.Fatalf("got %v", got)
	}
}

func TestSortedKeysUint8Boundaries(t *testing.T) {
	m := map[uint8]int{255: 0, 0: 0, 128: 0, 1: 0}
	if got := SortedKeys(m); !slices.Equal(got, []uint8{0, 1, 128, 255}) {
		t.Fatalf("got %v", got)
	}
}
