package detmap

import (
	"slices"
	"testing"
)

func TestSortedKeysInts(t *testing.T) {
	m := map[int]string{5: "e", 1: "a", 3: "c", 2: "b", 4: "d"}
	for i := 0; i < 50; i++ {
		got := SortedKeys(m)
		if !slices.Equal(got, []int{1, 2, 3, 4, 5}) {
			t.Fatalf("run %d: got %v", i, got)
		}
	}
}

func TestSortedKeysNamedKeyType(t *testing.T) {
	type id uint16
	m := map[id]int{7: 0, 0: 0, 65535: 0}
	if got := SortedKeys(m); !slices.Equal(got, []id{0, 7, 65535}) {
		t.Fatalf("got %v", got)
	}
}

func TestSortedKeysEmptyAndNil(t *testing.T) {
	if got := SortedKeys(map[string]int{}); len(got) != 0 {
		t.Fatalf("empty map: got %v", got)
	}
	var m map[string]int
	if got := SortedKeys(m); len(got) != 0 {
		t.Fatalf("nil map: got %v", got)
	}
}
