package trace

import (
	"sort"
	"strconv"

	"lrseluge/internal/detmap"
	"lrseluge/internal/sim"
)

// This file holds the pure analysis layer behind cmd/lrtrace: summaries,
// completion extraction, span pairing and trace diffs. Everything operates
// on decoded []Event slices and is deterministic — map iteration goes
// through detmap, output encodings are hand-rolled with fixed field order.

// KindCount is one row of a per-kind histogram.
type KindCount struct {
	Kind Kind
	N    int64
}

// ReasonCount is one row of a drop-reason histogram.
type ReasonCount struct {
	Reason DropReason
	N      int64
}

// Summary aggregates one trace: totals, per-kind counts, the drop-reason
// histogram, and coarse run facts.
type Summary struct {
	SchemaV     int           // schema of the trace (0 when empty)
	Events      int64         // total event count
	Kinds       []KindCount   // nonzero kinds in catalog order
	Drops       []ReasonCount // nonzero drop reasons in catalog order
	Nodes       []int         // distinct node ids, ascending
	FirstAt     sim.Time      // timestamp of the first event
	LastAt      sim.Time      // timestamp of the last event
	Completions int64         // KindComplete events
	Faults      int64         // KindFault events
}

// Summarize reduces a trace to its Summary.
func Summarize(events []Event) Summary {
	var s Summary
	var kinds [kindMax]int64
	var drops [dropReasonMax]int64
	nodes := make(map[int]bool)
	for i, e := range events {
		if i == 0 {
			s.SchemaV = e.SchemaV
			s.FirstAt = e.At
		}
		s.LastAt = e.At
		s.Events++
		if e.Kind > 0 && e.Kind < kindMax {
			kinds[e.Kind]++
		}
		if e.Kind == KindDrop && e.Reason > 0 && e.Reason < dropReasonMax {
			drops[e.Reason]++
		}
		if e.Node != NoNode {
			nodes[e.Node] = true
		}
		if e.Peer != NoNode {
			nodes[e.Peer] = true
		}
	}
	for _, k := range Kinds() {
		if kinds[k] > 0 {
			s.Kinds = append(s.Kinds, KindCount{Kind: k, N: kinds[k]})
		}
	}
	for _, r := range DropReasons() {
		if drops[r] > 0 {
			s.Drops = append(s.Drops, ReasonCount{Reason: r, N: drops[r]})
		}
	}
	s.Nodes = detmap.SortedKeys(nodes)
	s.Completions = kinds[KindComplete]
	s.Faults = kinds[KindFault]
	return s
}

// AppendJSON appends the deterministic JSON rendering of the summary, the
// byte-exact artifact the check.sh trace gate pins against a golden.
func (s Summary) AppendJSON(buf []byte) []byte {
	buf = append(buf, `{"schema":`...)
	buf = strconv.AppendInt(buf, int64(s.SchemaV), 10)
	buf = append(buf, `,"events":`...)
	buf = strconv.AppendInt(buf, s.Events, 10)
	buf = append(buf, `,"nodes":`...)
	buf = strconv.AppendInt(buf, int64(len(s.Nodes)), 10)
	buf = append(buf, `,"first_ns":`...)
	buf = strconv.AppendInt(buf, int64(s.FirstAt), 10)
	buf = append(buf, `,"last_ns":`...)
	buf = strconv.AppendInt(buf, int64(s.LastAt), 10)
	buf = append(buf, `,"completions":`...)
	buf = strconv.AppendInt(buf, s.Completions, 10)
	buf = append(buf, `,"faults":`...)
	buf = strconv.AppendInt(buf, s.Faults, 10)
	buf = append(buf, `,"kinds":{`...)
	for i, kc := range s.Kinds {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, '"')
		buf = append(buf, kc.Kind.String()...)
		buf = append(buf, `":`...)
		buf = strconv.AppendInt(buf, kc.N, 10)
	}
	buf = append(buf, `},"drops":{`...)
	for i, rc := range s.Drops {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, '"')
		buf = append(buf, rc.Reason.String()...)
		buf = append(buf, `":`...)
		buf = strconv.AppendInt(buf, rc.N, 10)
	}
	return append(buf, '}', '}')
}

// Completion is one node's first full-image completion.
type Completion struct {
	Node int
	At   sim.Time
}

// Completions extracts per-node completion times, ascending by time then
// node — already in CDF order.
func Completions(events []Event) []Completion {
	seen := make(map[int]bool)
	var out []Completion
	for _, e := range events {
		if e.Kind != KindComplete || e.Node == NoNode || seen[e.Node] {
			continue
		}
		seen[e.Node] = true
		out = append(out, Completion{Node: e.Node, At: e.At})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// Fetch is one completed span: a page fetch or a signature verification,
// located by node (and unit, for page fetches).
type Fetch struct {
	Node  int
	Unit  int // NoUnit for unit-less spans
	Name  string
	Start sim.Time
	End   sim.Time
}

// Duration returns the span length.
func (f Fetch) Duration() sim.Time { return f.End - f.Start }

// Spans pairs span-begin/span-end events with the given name (every name
// when name is empty), in begin order. Unterminated spans are dropped — a
// run can end mid-fetch.
func Spans(events []Event, name string) []Fetch {
	open := make(map[uint64]Fetch)
	var out []Fetch
	for _, e := range events {
		switch e.Kind {
		case KindSpanBegin:
			if name != "" && e.Name != name {
				continue
			}
			open[e.Span] = Fetch{Node: e.Node, Unit: e.Unit, Name: e.Name, Start: e.At}
		case KindSpanEnd:
			f, ok := open[e.Span]
			if !ok {
				continue
			}
			delete(open, e.Span)
			f.End = e.At
			out = append(out, f)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Diff compares two traces of the same scenario: per-kind and per-drop
// count deltas (b minus a) plus the completion-latency shift.
type Diff struct {
	Kinds       []KindCount   // kinds whose counts differ, catalog order
	Drops       []ReasonCount // drop reasons whose counts differ
	EventsDelta int64
	// LastCompletionDelta is the shift of the final completion time
	// (b - a); negative means b disseminated faster.
	LastCompletionDelta sim.Time
}

// DiffTraces computes the Diff of two event streams.
func DiffTraces(a, b []Event) Diff {
	sa, sb := Summarize(a), Summarize(b)
	var d Diff
	d.EventsDelta = sb.Events - sa.Events

	var ka, kb [kindMax]int64
	for _, kc := range sa.Kinds {
		ka[kc.Kind] = kc.N
	}
	for _, kc := range sb.Kinds {
		kb[kc.Kind] = kc.N
	}
	for _, k := range Kinds() {
		if kb[k] != ka[k] {
			d.Kinds = append(d.Kinds, KindCount{Kind: k, N: kb[k] - ka[k]})
		}
	}

	var ra, rb [dropReasonMax]int64
	for _, rc := range sa.Drops {
		ra[rc.Reason] = rc.N
	}
	for _, rc := range sb.Drops {
		rb[rc.Reason] = rc.N
	}
	for _, r := range DropReasons() {
		if rb[r] != ra[r] {
			d.Drops = append(d.Drops, ReasonCount{Reason: r, N: rb[r] - ra[r]})
		}
	}

	d.LastCompletionDelta = lastCompletion(b) - lastCompletion(a)
	return d
}

// lastCompletion returns the final completion timestamp, 0 when none.
func lastCompletion(events []Event) sim.Time {
	var last sim.Time
	for _, e := range events {
		if e.Kind == KindComplete && e.At > last {
			last = e.At
		}
	}
	return last
}

// FilterNode returns the events touching one node (as subject or peer),
// preserving order.
func FilterNode(events []Event, node int) []Event {
	var out []Event
	for _, e := range events {
		if e.Node == node || e.Peer == node {
			out = append(out, e)
		}
	}
	return out
}
