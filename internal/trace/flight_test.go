package trace

import (
	"testing"
)

// TestRingWrapsRepeatedly drives the ring through several full wraparounds
// and checks the retained window stays exactly the most recent capacity
// events, oldest first, with an accurate dropped counter at every step.
func TestRingWrapsRepeatedly(t *testing.T) {
	const capacity = 4
	r := NewRing(capacity)
	for n := 1; n <= 3*capacity+1; n++ {
		r.Emit(Event{Kind: KindComplete, Node: n})

		wantLen := n
		if wantLen > capacity {
			wantLen = capacity
		}
		if r.Len() != wantLen {
			t.Fatalf("after %d emits: Len() = %d, want %d", n, r.Len(), wantLen)
		}
		wantDropped := uint64(0)
		if n > capacity {
			wantDropped = uint64(n - capacity)
		}
		if r.Dropped() != wantDropped {
			t.Fatalf("after %d emits: Dropped() = %d, want %d", n, r.Dropped(), wantDropped)
		}
		evs := r.Events()
		for i, e := range evs {
			if want := n - wantLen + 1 + i; e.Node != want {
				t.Fatalf("after %d emits: event %d is node %d, want %d (window %v)",
					n, i, e.Node, want, evs)
			}
		}
	}
}

// lineStore is a LineRecorder keeping its own copies, like
// obs.FlightRecorder does.
type lineStore struct {
	lines []string
}

func (l *lineStore) RecordLine(line []byte) { l.lines = append(l.lines, string(line)) }

// TestFlightSinkEncodesLines verifies FlightSink hands the recorder one
// encoded line per event, byte-identical to the JSONL encoding (sans
// newline — the recorder owns framing).
func TestFlightSinkEncodesLines(t *testing.T) {
	events := []Event{
		{SchemaV: 1, At: 1, Kind: KindTx, Node: 0, Peer: NoNode, Unit: NoUnit, Index: NoUnit},
		{SchemaV: 1, At: 2, Kind: KindDrop, Node: 1, Peer: 0, Unit: NoUnit, Index: NoUnit, Reason: DropChannel},
	}
	store := &lineStore{}
	s := NewFlightSink(store)
	for _, e := range events {
		s.Emit(e)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(store.lines) != len(events) {
		t.Fatalf("recorded %d lines, want %d", len(store.lines), len(events))
	}
	for i, e := range events {
		want := string(AppendJSON(nil, e))
		if store.lines[i] != want {
			t.Errorf("line %d = %q, want %q", i, store.lines[i], want)
		}
	}
}
