package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"lrseluge/internal/packet"
	"lrseluge/internal/sim"
)

// JSONL schema (version 1). One flat object per event, one event per line,
// keys in this fixed order with absent fields omitted:
//
//	v    int     schema version (always present)
//	t    int64   virtual timestamp, nanoseconds on the sim clock (always)
//	k    string  event kind (always; see Kinds)
//	n    int     primary node
//	pe   int     peer node
//	pk   string  packet type (adv | snack | data | sig)
//	u    int     unit number
//	i    int     packet index within the unit
//	r    string  drop reason (see DropReasons)
//	from string  state-transition origin (maintain | rx | tx)
//	to   string  state-transition target
//	sp   uint64  span id pairing span-begin/span-end
//	name string  span/machine/fault label
//	x    float64 scalar payload (shortest round-trip formatting)
//
// Numbers are rendered with strconv (shortest round-trip for x), so the
// byte stream is a deterministic function of the event sequence alone.

// AppendJSON appends the one-line JSON encoding of e (without the trailing
// newline) and returns the extended buffer.
func AppendJSON(buf []byte, e Event) []byte {
	buf = append(buf, `{"v":`...)
	buf = strconv.AppendInt(buf, int64(e.SchemaV), 10)
	buf = append(buf, `,"t":`...)
	buf = strconv.AppendInt(buf, int64(e.At), 10)
	buf = append(buf, `,"k":"`...)
	buf = append(buf, e.Kind.String()...)
	buf = append(buf, '"')
	if e.Node != NoNode {
		buf = append(buf, `,"n":`...)
		buf = strconv.AppendInt(buf, int64(e.Node), 10)
	}
	if e.Peer != NoNode {
		buf = append(buf, `,"pe":`...)
		buf = strconv.AppendInt(buf, int64(e.Peer), 10)
	}
	if e.Pkt != 0 {
		buf = append(buf, `,"pk":"`...)
		buf = append(buf, e.Pkt.String()...)
		buf = append(buf, '"')
	}
	if e.Unit != NoUnit {
		buf = append(buf, `,"u":`...)
		buf = strconv.AppendInt(buf, int64(e.Unit), 10)
	}
	if e.Index != NoUnit {
		buf = append(buf, `,"i":`...)
		buf = strconv.AppendInt(buf, int64(e.Index), 10)
	}
	if e.Reason != 0 {
		buf = append(buf, `,"r":"`...)
		buf = append(buf, e.Reason.String()...)
		buf = append(buf, '"')
	}
	if e.From != 0 {
		buf = append(buf, `,"from":"`...)
		buf = append(buf, e.From.String()...)
		buf = append(buf, '"')
	}
	if e.To != 0 {
		buf = append(buf, `,"to":"`...)
		buf = append(buf, e.To.String()...)
		buf = append(buf, '"')
	}
	if e.Span != 0 {
		buf = append(buf, `,"sp":`...)
		buf = strconv.AppendUint(buf, e.Span, 10)
	}
	if e.Name != "" {
		buf = append(buf, `,"name":`...)
		b, err := json.Marshal(e.Name)
		if err != nil {
			b = []byte(`""`) // strings cannot fail to marshal; stay total
		}
		buf = append(buf, b...)
	}
	if e.Value != 0 && !math.IsNaN(e.Value) && !math.IsInf(e.Value, 0) {
		buf = append(buf, `,"x":`...)
		buf = strconv.AppendFloat(buf, e.Value, 'g', -1, 64)
	}
	return append(buf, '}')
}

// parseKind inverts Kind.String for wire values.
func parseKind(s string) (Kind, error) {
	for k := KindTx; k < kindMax; k++ {
		if kindNames[k] == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown event kind %q", s)
}

// parseDropReason inverts DropReason.String for wire values.
func parseDropReason(s string) (DropReason, error) {
	for r := DropChannel; r < dropReasonMax; r++ {
		if dropNames[r] == s {
			return r, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown drop reason %q", s)
}

// parseState inverts State.String for wire values.
func parseState(s string) (State, error) {
	for st := StateMaintain; st < stateMax; st++ {
		if stateNames[st] == s {
			return st, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown state %q", s)
}

// parsePacketType inverts packet.Type.String for wire values.
func parsePacketType(s string) (packet.Type, error) {
	for _, t := range []packet.Type{packet.TypeAdv, packet.TypeSNACK, packet.TypeData, packet.TypeSig} {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown packet type %q", s)
}

// wireEvent mirrors the JSONL schema for decoding; pointers distinguish
// absent from zero.
type wireEvent struct {
	V    *int     `json:"v"`
	T    *int64   `json:"t"`
	K    *string  `json:"k"`
	N    *int     `json:"n"`
	Pe   *int     `json:"pe"`
	Pk   *string  `json:"pk"`
	U    *int     `json:"u"`
	I    *int     `json:"i"`
	R    *string  `json:"r"`
	From *string  `json:"from"`
	To   *string  `json:"to"`
	Sp   *uint64  `json:"sp"`
	Name *string  `json:"name"`
	X    *float64 `json:"x"`
}

// DecodeLine parses one JSONL line produced by AppendJSON. Unknown fields,
// unknown vocabulary and unknown schema versions are errors — the trace
// format is a contract, not a suggestion.
func DecodeLine(line []byte) (Event, error) {
	var w wireEvent
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return Event{}, fmt.Errorf("trace: decode: %w", err)
	}
	if dec.More() {
		return Event{}, fmt.Errorf("trace: decode: trailing data after event")
	}
	if w.V == nil || w.T == nil || w.K == nil {
		return Event{}, fmt.Errorf("trace: decode: missing required field (v, t or k)")
	}
	if *w.V != Schema {
		return Event{}, fmt.Errorf("trace: decode: schema version %d, this build reads %d", *w.V, Schema)
	}
	e := Event{SchemaV: *w.V, At: sim.Time(*w.T), Node: NoNode, Peer: NoNode, Unit: NoUnit, Index: NoUnit}
	var err error
	if e.Kind, err = parseKind(*w.K); err != nil {
		return Event{}, err
	}
	if w.N != nil {
		e.Node = *w.N
	}
	if w.Pe != nil {
		e.Peer = *w.Pe
	}
	if w.Pk != nil {
		if e.Pkt, err = parsePacketType(*w.Pk); err != nil {
			return Event{}, err
		}
	}
	if w.U != nil {
		e.Unit = *w.U
	}
	if w.I != nil {
		e.Index = *w.I
	}
	if w.R != nil {
		if e.Reason, err = parseDropReason(*w.R); err != nil {
			return Event{}, err
		}
	}
	if w.From != nil {
		if e.From, err = parseState(*w.From); err != nil {
			return Event{}, err
		}
	}
	if w.To != nil {
		if e.To, err = parseState(*w.To); err != nil {
			return Event{}, err
		}
	}
	if w.Sp != nil {
		e.Span = *w.Sp
	}
	if w.Name != nil {
		e.Name = *w.Name
	}
	if w.X != nil {
		e.Value = *w.X
	}
	return e, nil
}

// ReadAll decodes a JSONL trace stream, skipping blank lines. It fails on
// the first malformed line, reporting its 1-based number.
func ReadAll(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		e, err := DecodeLine(line)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return out, nil
}
