// Package trace is the simulator's deterministic structured-event subsystem:
// a Tracer records typed protocol events — packet lifecycle, node state
// transitions, unit/page lifecycle, signature/puzzle outcomes, fault
// injections — on the virtual sim clock and streams them to pluggable sinks
// (a bounded in-memory ring, a JSONL writer, a Chrome trace_event exporter).
//
// Determinism contract: a Tracer consumes no randomness and never reads the
// wall clock; every event is stamped with sim.Time from the engine that
// drives the run. Because protocol code is single-threaded inside the event
// loop, the emitted event sequence is a pure function of (scenario, seed) —
// same-seed runs produce byte-identical JSONL traces.
//
// Overhead contract: a nil *Tracer is the disabled tracer. Every recording
// method nil-checks its receiver and returns immediately, so fully
// instrumented protocol code pays one predictable branch per event site when
// tracing is off (benchmarked in bench_test.go; the harness selfbench gates
// the end-to-end cost in BENCH_trace.json).
package trace

import (
	"fmt"

	"lrseluge/internal/packet"
	"lrseluge/internal/sim"
)

// Schema is the event schema version, encoded into every JSONL line as "v".
// Bump it when a field changes meaning; lrtrace refuses schemas it does not
// know.
const Schema = 1

// Kind discriminates event types. String values are the JSONL wire
// vocabulary and must stay stable across releases of the same Schema.
type Kind uint8

// Event kinds.
const (
	// KindTx: a node completed transmitting a packet (the instant the last
	// bit leaves the radio, before delivery fans out to neighbors).
	KindTx Kind = iota + 1
	// KindRx: a packet was delivered to a node (after propagation delay).
	KindRx
	// KindDrop: a packet died — on the channel, at the fault overlay, or
	// inside the receiving node (auth, duplicate, puzzle, stale). Reason
	// carries the exact cause; every drop has exactly one.
	KindDrop
	// KindState: a node's protocol state machine moved between MAINTAIN
	// (advertise), RX (request) and TX (serve). Name labels the machine
	// ("rx" or "tx": Deluge-style nodes can serve while requesting).
	KindState
	// KindUnitFirst: the first packet of a unit was stored at a node.
	KindUnitFirst
	// KindUnitDecodable: enough distinct packets arrived to recover the
	// unit (k' of n for erasure-coded pages; all k for ARQ pages).
	KindUnitDecodable
	// KindUnitVerified: the unit's contents passed authentication.
	KindUnitVerified
	// KindUnitFlashed: the recovered unit was committed to flash (survives
	// a crash from this point on).
	KindUnitFlashed
	// KindSigAccept: a signature packet verified and established the
	// authentication root.
	KindSigAccept
	// KindSigReject: a signature packet failed the expensive verification.
	KindSigReject
	// KindComplete: the node holds the full image (first completion only).
	KindComplete
	// KindFault: a fault-plan event fired (crash/reboot/link/partition/
	// heal/adversary-ramp); Name carries the fault kind.
	KindFault
	// KindSpanBegin / KindSpanEnd bracket an interval (page fetch,
	// signature verification); Span pairs them.
	KindSpanBegin
	KindSpanEnd

	kindMax
)

// kindNames is the wire vocabulary, indexed by Kind.
var kindNames = [kindMax]string{
	KindTx:            "tx",
	KindRx:            "rx",
	KindDrop:          "drop",
	KindState:         "state",
	KindUnitFirst:     "unit-first",
	KindUnitDecodable: "unit-decodable",
	KindUnitVerified:  "unit-verified",
	KindUnitFlashed:   "unit-flashed",
	KindSigAccept:     "sig-accept",
	KindSigReject:     "sig-reject",
	KindComplete:      "complete",
	KindFault:         "fault",
	KindSpanBegin:     "span-begin",
	KindSpanEnd:       "span-end",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k > 0 && k < kindMax {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Kinds lists every event kind in catalog (wire) order.
func Kinds() []Kind {
	out := make([]Kind, 0, int(kindMax)-1)
	for k := KindTx; k < kindMax; k++ {
		out = append(out, k)
	}
	return out
}

// DropReason attributes a KindDrop event to exactly one cause.
type DropReason uint8

// Drop reasons.
const (
	// DropChannel: the lossy channel model dropped the delivery.
	DropChannel DropReason = iota + 1
	// DropFault: the fault overlay blocked the delivery (down endpoint,
	// open link-outage window, or partition boundary).
	DropFault
	// DropAuth: per-packet authentication rejected the packet.
	DropAuth
	// DropDuplicate: an identical packet was already stored.
	DropDuplicate
	// DropPuzzle: the weak authenticator (puzzle) filtered a signature
	// packet before any expensive verification.
	DropPuzzle
	// DropStale: the packet is beyond the next needed unit and cannot be
	// authenticated yet (paper §IV-E page-by-page rule).
	DropStale

	dropReasonMax
)

// dropNames is the wire vocabulary, indexed by DropReason.
var dropNames = [dropReasonMax]string{
	DropChannel:   "channel",
	DropFault:     "fault",
	DropAuth:      "auth",
	DropDuplicate: "duplicate",
	DropPuzzle:    "puzzle",
	DropStale:     "stale",
}

// String implements fmt.Stringer.
func (r DropReason) String() string {
	if r > 0 && r < dropReasonMax {
		return dropNames[r]
	}
	return fmt.Sprintf("reason(%d)", uint8(r))
}

// DropReasons lists every drop reason in catalog (wire) order.
func DropReasons() []DropReason {
	out := make([]DropReason, 0, int(dropReasonMax)-1)
	for r := DropChannel; r < dropReasonMax; r++ {
		out = append(out, r)
	}
	return out
}

// State is a dissemination state-machine state (paper §IV-D / Deluge).
type State uint8

// Protocol states.
const (
	// StateMaintain: advertising via Trickle, no transfer in progress.
	StateMaintain State = iota + 1
	// StateRx: requesting the next unit via SNACKs.
	StateRx
	// StateTx: serving requested packets.
	StateTx

	stateMax
)

// stateNames is the wire vocabulary, indexed by State.
var stateNames = [stateMax]string{
	StateMaintain: "maintain",
	StateRx:       "rx",
	StateTx:       "tx",
}

// String implements fmt.Stringer.
func (s State) String() string {
	if s > 0 && s < stateMax {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// NoNode marks an absent Node/Peer field; NoUnit an absent Unit/Index.
const (
	NoNode = -1
	NoUnit = -1
)

// Event is one trace record. Which fields are meaningful depends on Kind;
// absent int fields hold NoNode/NoUnit, absent enums hold zero, and the
// JSONL encoding omits them (see encode.go for the exact schema).
//
// The timestamp is virtual sim.Time, never wall-clock time.Time — the
// lrlint trace-sim-time rule enforces this structurally.
type Event struct {
	// SchemaV is the schema version the event was encoded under.
	SchemaV int
	// At is the virtual timestamp.
	At sim.Time
	// Kind discriminates the record.
	Kind Kind
	// Node is the primary node: the transmitter for KindTx, the receiver
	// for KindRx/KindDrop, the subject elsewhere. NoNode when absent.
	Node int
	// Peer is the counterpart node (sender on rx/drop, link target on
	// fault link events). NoNode when absent.
	Peer int
	// Pkt is the packet type for packet-lifecycle events (0 when absent).
	Pkt packet.Type
	// Unit and Index locate a packet inside the object (NoUnit when
	// absent).
	Unit  int
	Index int
	// Reason attributes a KindDrop (0 otherwise).
	Reason DropReason
	// From and To carry a KindState transition (0 otherwise).
	From State
	To   State
	// Span pairs KindSpanBegin/KindSpanEnd events (0 otherwise).
	Span uint64
	// Name labels spans ("page-fetch", "sig-verify"), state machines
	// ("rx", "tx") and fault kinds ("node-crash", ...).
	Name string
	// Value carries a scalar payload (adversary-ramp intensity).
	Value float64
}

// Sink consumes the event stream of one run. Emit is called from inside the
// simulation loop (single-threaded); Flush is called once after the run.
type Sink interface {
	Emit(Event)
	Flush() error
}

// Tracer records events for one simulation run. A nil Tracer is the
// disabled tracer: every method is a nil-safe no-op, so instrumented code
// never needs a guard (though hot paths may use Enabled to skip building
// event arguments).
type Tracer struct {
	eng     *sim.Engine
	sink    Sink
	emitted uint64
	spanSeq uint64
}

// New binds a tracer to the engine whose clock stamps every event and the
// sink that consumes them.
func New(eng *sim.Engine, sink Sink) (*Tracer, error) {
	if eng == nil || sink == nil {
		return nil, fmt.Errorf("trace: nil dependency")
	}
	return &Tracer{eng: eng, sink: sink}, nil
}

// Enabled reports whether events are being recorded. Use it to skip
// expensive event-argument construction when tracing is off.
func (t *Tracer) Enabled() bool { return t != nil }

// Emitted returns the number of events recorded so far.
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	return t.emitted
}

// emit stamps and forwards one event. e.Kind must be set by the caller.
func (t *Tracer) emit(e Event) {
	e.SchemaV = Schema
	e.At = t.eng.Now()
	t.emitted++
	t.sink.Emit(e)
}

// packetEvent fills the packet-identity fields shared by Tx/Rx/Drop.
func packetEvent(kind Kind, node, peer int, p packet.Packet) Event {
	e := Event{Kind: kind, Node: node, Peer: peer, Unit: NoUnit, Index: NoUnit}
	if p != nil {
		e.Pkt = p.Kind()
		if d, ok := p.(*packet.Data); ok {
			e.Unit = int(d.Unit)
			e.Index = int(d.Index)
		}
	}
	return e
}

// Tx records a completed transmission by node from.
func (t *Tracer) Tx(from packet.NodeID, p packet.Packet) {
	if t == nil {
		return
	}
	t.emit(packetEvent(KindTx, int(from), NoNode, p))
}

// Rx records a successful delivery of p (sent by from) to node to.
func (t *Tracer) Rx(to, from packet.NodeID, p packet.Packet) {
	if t == nil {
		return
	}
	t.emit(packetEvent(KindRx, int(to), int(from), p))
}

// Drop records the death of p on its way to (or inside) node at, attributed
// to exactly one reason. from is the sender.
func (t *Tracer) Drop(at, from packet.NodeID, p packet.Packet, r DropReason) {
	if t == nil {
		return
	}
	e := packetEvent(KindDrop, int(at), int(from), p)
	e.Reason = r
	t.emit(e)
}

// State records a protocol state transition of the named machine ("rx" or
// "tx") on a node.
func (t *Tracer) State(node packet.NodeID, machine string, from, to State) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindState, Node: int(node), Peer: NoNode,
		Unit: NoUnit, Index: NoUnit, From: from, To: to, Name: machine})
}

// UnitEvent records a unit/page lifecycle milestone (KindUnitFirst,
// KindUnitDecodable, KindUnitVerified, KindUnitFlashed).
func (t *Tracer) UnitEvent(kind Kind, node packet.NodeID, unit int) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: kind, Node: int(node), Peer: NoNode, Unit: unit, Index: NoUnit})
}

// SigResult records the outcome of an expensive signature verification at a
// node (from is the packet's sender).
func (t *Tracer) SigResult(node, from packet.NodeID, ok bool) {
	if t == nil {
		return
	}
	kind := KindSigReject
	if ok {
		kind = KindSigAccept
	}
	t.emit(Event{Kind: kind, Node: int(node), Peer: int(from),
		Pkt: packet.TypeSig, Unit: NoUnit, Index: NoUnit})
}

// Complete records a node's first completion of the full image.
func (t *Tracer) Complete(node packet.NodeID) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindComplete, Node: int(node), Peer: NoNode,
		Unit: NoUnit, Index: NoUnit})
}

// Fault records a fault-plan event firing. kind is the fault vocabulary
// ("node-crash", "link-down", ...); node/peer are NoNode when the fault has
// no node subject; value carries scalar payloads (ramp intensity).
func (t *Tracer) Fault(kind string, node, peer int, value float64) {
	if t == nil {
		return
	}
	t.emit(Event{Kind: KindFault, Node: node, Peer: peer,
		Unit: NoUnit, Index: NoUnit, Name: kind, Value: value})
}

// Span is a begin/end pair in flight. The zero Span (from a nil tracer) is
// inert: End on it is a no-op, so callers never need nil checks.
type Span struct {
	t    *Tracer
	id   uint64
	node int
	unit int
	name string
}

// Begin opens a span (e.g. "page-fetch" for a unit, "sig-verify") on a node
// and records its begin event. Pass NoUnit when the span has no unit.
func (t *Tracer) Begin(node packet.NodeID, name string, unit int) Span {
	if t == nil {
		return Span{}
	}
	t.spanSeq++
	s := Span{t: t, id: t.spanSeq, node: int(node), unit: unit, name: name}
	t.emit(Event{Kind: KindSpanBegin, Node: s.node, Peer: NoNode,
		Unit: unit, Index: NoUnit, Span: s.id, Name: name})
	return s
}

// Active reports whether the span is open and recording.
func (s Span) Active() bool { return s.t != nil }

// End closes the span, recording its end event. End on the zero Span is a
// no-op; a second End records a second end event, so callers must pair.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.emit(Event{Kind: KindSpanEnd, Node: s.node, Peer: NoNode,
		Unit: s.unit, Index: NoUnit, Span: s.id, Name: s.name})
}
