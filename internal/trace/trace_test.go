package trace

import (
	"testing"

	"lrseluge/internal/packet"
	"lrseluge/internal/sim"
)

// TestNilTracerIsSafe exercises every recording method on a nil tracer: the
// disabled tracer must be a total no-op, since instrumented protocol code
// calls it unguarded.
func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports Enabled")
	}
	if tr.Emitted() != 0 {
		t.Fatal("nil tracer reports emitted events")
	}
	p := &packet.Adv{Src: 1}
	tr.Tx(1, p)
	tr.Rx(2, 1, p)
	tr.Drop(2, 1, p, DropChannel)
	tr.State(1, "rx", StateMaintain, StateRx)
	tr.UnitEvent(KindUnitFirst, 1, 0)
	tr.SigResult(1, 0, true)
	tr.Complete(1)
	tr.Fault("node-crash", 1, NoNode, 0)
	sp := tr.Begin(1, "page-fetch", 2)
	if sp.Active() {
		t.Fatal("nil tracer returned an active span")
	}
	sp.End() // must not panic
}

// TestTracerStampsEngineTime verifies every event carries the engine's
// virtual clock at emit time and the schema version.
func TestTracerStampsEngineTime(t *testing.T) {
	eng := sim.New()
	ring := NewRing(16)
	tr, err := New(eng, ring)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Enabled() {
		t.Fatal("constructed tracer not enabled")
	}
	eng.Schedule(5*sim.Second, func() { tr.Complete(3) })
	eng.Schedule(7*sim.Second, func() { tr.Fault("heal", NoNode, NoNode, 0) })
	eng.RunUntilIdle()

	evs := ring.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].At != 5*sim.Second || evs[1].At != 7*sim.Second {
		t.Fatalf("timestamps %v, %v; want 5s, 7s", evs[0].At, evs[1].At)
	}
	for i, e := range evs {
		if e.SchemaV != Schema {
			t.Fatalf("event %d schema %d, want %d", i, e.SchemaV, Schema)
		}
	}
	if evs[1].Node != NoNode {
		t.Fatalf("node-less fault got node %d", evs[1].Node)
	}
	if tr.Emitted() != 2 {
		t.Fatalf("Emitted() = %d, want 2", tr.Emitted())
	}
}

// TestPacketEventFields checks Tx/Rx/Drop populate the packet identity:
// data packets carry (unit, index), others do not.
func TestPacketEventFields(t *testing.T) {
	eng := sim.New()
	ring := NewRing(16)
	tr, _ := New(eng, ring)

	d := &packet.Data{Src: 4, Unit: 3, Index: 7}
	tr.Tx(4, d)
	tr.Rx(5, 4, d)
	a := &packet.Adv{Src: 4}
	tr.Drop(5, 4, a, DropAuth)

	evs := ring.Events()
	tx := evs[0]
	if tx.Kind != KindTx || tx.Node != 4 || tx.Peer != NoNode || tx.Pkt != packet.TypeData || tx.Unit != 3 || tx.Index != 7 {
		t.Fatalf("tx event %+v", tx)
	}
	rx := evs[1]
	if rx.Kind != KindRx || rx.Node != 5 || rx.Peer != 4 || rx.Unit != 3 || rx.Index != 7 {
		t.Fatalf("rx event %+v", rx)
	}
	dr := evs[2]
	if dr.Kind != KindDrop || dr.Reason != DropAuth || dr.Pkt != packet.TypeAdv || dr.Unit != NoUnit || dr.Index != NoUnit {
		t.Fatalf("drop event %+v", dr)
	}
}

// TestSpanPairing verifies Begin/End produce matched span ids carrying the
// node, unit and name on both sides, and that ids are unique per tracer.
func TestSpanPairing(t *testing.T) {
	eng := sim.New()
	ring := NewRing(16)
	tr, _ := New(eng, ring)

	s1 := tr.Begin(1, "page-fetch", 2)
	s2 := tr.Begin(1, "sig-verify", NoUnit)
	eng.Schedule(sim.Second, func() { s2.End(); s1.End() })
	eng.RunUntilIdle()

	evs := ring.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	b1, b2, e2, e1 := evs[0], evs[1], evs[2], evs[3]
	if b1.Span == 0 || b2.Span == 0 || b1.Span == b2.Span {
		t.Fatalf("span ids not unique: %d, %d", b1.Span, b2.Span)
	}
	if e1.Span != b1.Span || e2.Span != b2.Span {
		t.Fatalf("span pairing broken: begin %d/%d end %d/%d", b1.Span, b2.Span, e1.Span, e2.Span)
	}
	if b1.Name != "page-fetch" || e1.Name != "page-fetch" || b1.Unit != 2 || e1.Unit != 2 {
		t.Fatalf("span fields not carried to both sides: %+v / %+v", b1, e1)
	}
	if e1.At != sim.Second || e2.At != sim.Second {
		t.Fatalf("span ends not stamped at end time: %v, %v", e1.At, e2.At)
	}
}

// TestNewRejectsNil pins the constructor contract.
func TestNewRejectsNil(t *testing.T) {
	if _, err := New(nil, NewRing(1)); err == nil {
		t.Fatal("New accepted a nil engine")
	}
	if _, err := New(sim.New(), nil); err == nil {
		t.Fatal("New accepted a nil sink")
	}
}

// TestEnumStrings pins the wire vocabulary: these strings are the schema.
func TestEnumStrings(t *testing.T) {
	wantKinds := []string{"tx", "rx", "drop", "state", "unit-first",
		"unit-decodable", "unit-verified", "unit-flashed", "sig-accept",
		"sig-reject", "complete", "fault", "span-begin", "span-end"}
	kinds := Kinds()
	if len(kinds) != len(wantKinds) {
		t.Fatalf("got %d kinds, want %d", len(kinds), len(wantKinds))
	}
	for i, k := range kinds {
		if k.String() != wantKinds[i] {
			t.Errorf("kind %d = %q, want %q", i, k.String(), wantKinds[i])
		}
	}
	wantReasons := []string{"channel", "fault", "auth", "duplicate", "puzzle", "stale"}
	reasons := DropReasons()
	if len(reasons) != len(wantReasons) {
		t.Fatalf("got %d reasons, want %d", len(reasons), len(wantReasons))
	}
	for i, r := range reasons {
		if r.String() != wantReasons[i] {
			t.Errorf("reason %d = %q, want %q", i, r.String(), wantReasons[i])
		}
	}
	for s, want := range map[State]string{StateMaintain: "maintain", StateRx: "rx", StateTx: "tx"} {
		if s.String() != want {
			t.Errorf("state %d = %q, want %q", s, s.String(), want)
		}
	}
	// Out-of-range values render without panicking.
	if Kind(0).String() == "" || DropReason(200).String() == "" || State(9).String() == "" {
		t.Error("out-of-range enum rendered empty")
	}
}
