package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteChrome renders a trace as Chrome trace_event JSON (the "JSON array
// format"), loadable in chrome://tracing and Perfetto. Each simulated node
// becomes a thread (tid = node id) inside one process, so the UI shows
// per-node timelines; spans map to duration ("B"/"E") events and everything
// else to instant ("i") events with the event's fields as args. Events with
// no node (network-wide faults) land on a synthetic "network" thread.
//
// Timestamps are microseconds of virtual time — Perfetto renders them as if
// they were wall time, which is exactly the per-node pipelining view the
// paper's figures reason about. The output is deterministic: hand-rolled
// field order, no map iteration.
func WriteChrome(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	buf := make([]byte, 0, 256)

	// networkTid groups node-less events; chosen to sort after real nodes.
	const networkTid = 1 << 20

	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	// Name the process and the synthetic network thread so the UI is
	// self-describing.
	meta := fmt.Sprintf(`{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"lrseluge sim"}},`+"\n"+
		`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":"network"}}`, networkTid)
	if _, err := bw.WriteString(meta); err != nil {
		return err
	}

	for _, e := range events {
		buf = buf[:0]
		buf = append(buf, ',', '\n')

		tid := e.Node
		if tid == NoNode {
			tid = networkTid
		}
		switch e.Kind {
		case KindSpanBegin, KindSpanEnd:
			ph := byte('B')
			if e.Kind == KindSpanEnd {
				ph = 'E'
			}
			buf = append(buf, `{"name":`...)
			buf = appendChromeString(buf, e.Name)
			buf = append(buf, `,"ph":"`...)
			buf = append(buf, ph)
			buf = append(buf, '"')
		default:
			buf = append(buf, `{"name":`...)
			buf = appendChromeString(buf, chromeName(e))
			buf = append(buf, `,"ph":"i","s":"t"`...)
		}
		buf = append(buf, `,"pid":1,"tid":`...)
		buf = strconv.AppendInt(buf, int64(tid), 10)
		buf = append(buf, `,"ts":`...)
		// Microseconds with nanosecond fraction preserved.
		buf = strconv.AppendFloat(buf, float64(e.At)/1e3, 'g', -1, 64)
		buf = appendChromeArgs(buf, e)
		buf = append(buf, '}')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// chromeName builds the instant-event display name: the kind plus its most
// distinguishing attribute, so dense timelines stay readable.
func chromeName(e Event) string {
	switch e.Kind {
	case KindTx, KindRx:
		return e.Kind.String() + " " + e.Pkt.String()
	case KindDrop:
		return "drop " + e.Reason.String()
	case KindState:
		return "state " + e.Name + " " + e.From.String() + "→" + e.To.String()
	case KindFault:
		return "fault " + e.Name
	default:
		return e.Kind.String()
	}
}

// appendChromeArgs appends an "args" object carrying the event fields the
// display name does not already show.
func appendChromeArgs(buf []byte, e Event) []byte {
	buf = append(buf, `,"args":{`...)
	n := 0
	field := func(key string, val int64) {
		if n > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, '"')
		buf = append(buf, key...)
		buf = append(buf, `":`...)
		buf = strconv.AppendInt(buf, val, 10)
		n++
	}
	if e.Peer != NoNode {
		field("peer", int64(e.Peer))
	}
	if e.Unit != NoUnit {
		field("unit", int64(e.Unit))
	}
	if e.Index != NoUnit {
		field("index", int64(e.Index))
	}
	if e.Span != 0 {
		field("span", int64(e.Span))
	}
	if e.Value != 0 {
		if n > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, `"value":`...)
		buf = strconv.AppendFloat(buf, e.Value, 'g', -1, 64)
		n++
	}
	return append(buf, '}')
}

// appendChromeString appends a JSON string (spec-correct escaping).
func appendChromeString(buf []byte, s string) []byte {
	b, err := json.Marshal(s)
	if err != nil {
		return append(buf, `""`...)
	}
	return append(buf, b...)
}
