package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestWriteChromeValidJSON verifies the exporter emits a valid trace_event
// JSON array with one entry per event plus the two metadata records, spans
// as B/E pairs and instants with a scope.
func TestWriteChromeValidJSON(t *testing.T) {
	evs := sampleTrace()
	var buf bytes.Buffer
	if err := WriteChrome(&buf, evs); err != nil {
		t.Fatal(err)
	}
	var arr []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil {
		t.Fatalf("exporter produced invalid JSON: %v\n%s", err, buf.String())
	}
	if len(arr) != len(evs)+2 {
		t.Fatalf("got %d records for %d events (+2 metadata)", len(arr), len(evs))
	}
	var begins, ends, instants int
	for _, rec := range arr {
		switch rec["ph"] {
		case "B":
			begins++
			if rec["name"] != "page-fetch" {
				t.Fatalf("span begin name %v", rec["name"])
			}
		case "E":
			ends++
		case "i":
			instants++
			if rec["s"] != "t" {
				t.Fatalf("instant without thread scope: %v", rec)
			}
		case "M":
			continue
		default:
			t.Fatalf("unexpected phase %v", rec["ph"])
		}
		if rec["pid"] != float64(1) {
			t.Fatalf("pid %v", rec["pid"])
		}
		if _, ok := rec["tid"].(float64); !ok {
			t.Fatalf("tid missing: %v", rec)
		}
	}
	if begins != 1 || ends != 1 {
		t.Fatalf("spans: %d begins, %d ends", begins, ends)
	}
	if instants != len(evs)-2 {
		t.Fatalf("%d instants for %d non-span events", instants, len(evs)-2)
	}
}

// TestWriteChromeDeterministic pins byte-identical output for identical
// input.
func TestWriteChromeDeterministic(t *testing.T) {
	evs := sampleTrace()
	var a, b bytes.Buffer
	if err := WriteChrome(&a, evs); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b, evs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same events, different chrome JSON")
	}
}

// TestChromeTimestampsMicroseconds verifies nanosecond sim times land in
// the µs-denominated ts field with the fraction preserved.
func TestChromeTimestampsMicroseconds(t *testing.T) {
	e := mkEvent(1500, KindComplete, 0) // 1500 ns = 1.5 µs
	var buf bytes.Buffer
	if err := WriteChrome(&buf, []Event{e}); err != nil {
		t.Fatal(err)
	}
	var arr []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil {
		t.Fatal(err)
	}
	last := arr[len(arr)-1]
	if last["ts"] != 1.5 {
		t.Fatalf("ts = %v, want 1.5", last["ts"])
	}
}
