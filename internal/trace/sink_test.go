package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"lrseluge/internal/sim"
)

// TestRingDropOldest verifies the bounded ring's eviction policy and the
// dropped-events counter.
func TestRingDropOldest(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Emit(Event{Kind: KindComplete, Node: i})
	}
	if r.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", r.Len())
	}
	if r.Dropped() != 2 {
		t.Fatalf("Dropped() = %d, want 2", r.Dropped())
	}
	evs := r.Events()
	for i, want := range []int{2, 3, 4} {
		if evs[i].Node != want {
			t.Fatalf("retained nodes %v, want [2 3 4]", evs)
		}
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	// Degenerate capacity is clamped, not panicked on.
	r0 := NewRing(0)
	r0.Emit(Event{Kind: KindComplete, Node: 1})
	r0.Emit(Event{Kind: KindComplete, Node: 2})
	if r0.Len() != 1 || r0.Events()[0].Node != 2 || r0.Dropped() != 1 {
		t.Fatalf("clamped ring: len=%d dropped=%d", r0.Len(), r0.Dropped())
	}
}

// TestJSONLSinkDeterminism verifies the byte stream is a pure function of
// the event sequence: two sinks fed the same events produce identical bytes.
func TestJSONLSinkDeterminism(t *testing.T) {
	events := []Event{
		{SchemaV: 1, At: 1, Kind: KindTx, Node: 0, Peer: NoNode, Unit: NoUnit, Index: NoUnit},
		{SchemaV: 1, At: 2, Kind: KindDrop, Node: 1, Peer: 0, Unit: NoUnit, Index: NoUnit, Reason: DropChannel},
		{SchemaV: 1, At: 3, Kind: KindComplete, Node: 1, Peer: NoNode, Unit: NoUnit, Index: NoUnit},
	}
	render := func() string {
		var buf bytes.Buffer
		s := NewJSONLSink(&buf)
		for _, e := range events {
			s.Emit(e)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("same events, different bytes:\n%s\nvs\n%s", a, b)
	}
	if lines := strings.Count(a, "\n"); lines != len(events) {
		t.Fatalf("%d lines for %d events", lines, len(events))
	}
	// The stream reads back to the same events.
	got, err := ReadAll(strings.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
}

// failWriter fails every write after the first n bytes.
type failWriter struct{ budget int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.budget <= 0 {
		return 0, errors.New("disk full")
	}
	w.budget -= len(p)
	return len(p), nil
}

// TestJSONLSinkLatchesError verifies Emit stays total under write failure
// and Flush surfaces the first error.
func TestJSONLSinkLatchesError(t *testing.T) {
	s := NewJSONLSink(&failWriter{budget: 8})
	big := Event{SchemaV: 1, At: 1, Kind: KindFault, Node: NoNode, Peer: NoNode,
		Unit: NoUnit, Index: NoUnit, Name: strings.Repeat("x", 8192)}
	s.Emit(big)
	s.Emit(big) // past the budget; must not panic
	if err := s.Flush(); err == nil {
		t.Fatal("Flush did not surface the write error")
	}
}

// TestCountSink verifies totals and per-kind counts.
func TestCountSink(t *testing.T) {
	var c Count
	c.Emit(Event{Kind: KindTx})
	c.Emit(Event{Kind: KindTx})
	c.Emit(Event{Kind: KindDrop})
	if c.Total() != 3 || c.Of(KindTx) != 2 || c.Of(KindDrop) != 1 || c.Of(KindRx) != 0 {
		t.Fatalf("total=%d tx=%d drop=%d rx=%d", c.Total(), c.Of(KindTx), c.Of(KindDrop), c.Of(KindRx))
	}
	if c.Of(Kind(200)) != 0 {
		t.Fatal("out-of-range kind nonzero")
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestTee verifies fan-out order-preservation and first-error flushing.
func TestTee(t *testing.T) {
	r1, r2 := NewRing(8), NewRing(8)
	var c Count
	tee := NewTee(r1, &c, r2)
	eng := sim.New()
	tr, _ := New(eng, tee)
	tr.Complete(1)
	tr.Complete(2)
	if r1.Len() != 2 || r2.Len() != 2 || c.Total() != 2 {
		t.Fatalf("fan-out missed a sink: %d/%d/%d", r1.Len(), r2.Len(), c.Total())
	}
	if err := tee.Flush(); err != nil {
		t.Fatal(err)
	}
	failing := NewJSONLSink(&failWriter{})
	failing.Emit(Event{SchemaV: 1, At: 0, Kind: KindComplete, Node: 1, Peer: NoNode,
		Unit: NoUnit, Index: NoUnit, Name: strings.Repeat("y", 8192)})
	if err := NewTee(NewRing(1), failing).Flush(); err == nil {
		t.Fatal("tee swallowed a sink flush error")
	}
}
