package trace

import (
	"testing"

	"lrseluge/internal/sim"
)

// mkEvent builds a minimal event with the absent-field sentinels set.
func mkEvent(at sim.Time, k Kind, node int) Event {
	return Event{SchemaV: Schema, At: at, Kind: k, Node: node,
		Peer: NoNode, Unit: NoUnit, Index: NoUnit}
}

// sampleTrace is a small hand-built run: two nodes, drops of two reasons,
// one span, completions out of node order.
func sampleTrace() []Event {
	d1 := mkEvent(2, KindDrop, 1)
	d1.Peer = 0
	d1.Reason = DropChannel
	d2 := mkEvent(3, KindDrop, 1)
	d2.Peer = 0
	d2.Reason = DropFault
	d3 := mkEvent(4, KindDrop, 0)
	d3.Peer = 1
	d3.Reason = DropChannel
	sb := mkEvent(5, KindSpanBegin, 1)
	sb.Unit = 2
	sb.Span = 1
	sb.Name = "page-fetch"
	se := mkEvent(8, KindSpanEnd, 1)
	se.Unit = 2
	se.Span = 1
	se.Name = "page-fetch"
	fa := mkEvent(9, KindFault, NoNode)
	fa.Name = "heal"
	return []Event{
		mkEvent(1, KindTx, 0),
		d1, d2, d3, sb, se, fa,
		mkEvent(10, KindComplete, 1),
		mkEvent(12, KindComplete, 0),
		mkEvent(13, KindComplete, 1), // duplicate completion; ignored
	}
}

// TestSummarize checks totals, histograms, node set and time bounds.
func TestSummarize(t *testing.T) {
	s := Summarize(sampleTrace())
	if s.SchemaV != Schema || s.Events != 10 {
		t.Fatalf("schema=%d events=%d", s.SchemaV, s.Events)
	}
	if s.FirstAt != 1 || s.LastAt != 13 {
		t.Fatalf("bounds [%v, %v]", s.FirstAt, s.LastAt)
	}
	if len(s.Nodes) != 2 || s.Nodes[0] != 0 || s.Nodes[1] != 1 {
		t.Fatalf("nodes %v", s.Nodes)
	}
	if s.Completions != 3 || s.Faults != 1 {
		t.Fatalf("completions=%d faults=%d", s.Completions, s.Faults)
	}
	want := map[Kind]int64{KindTx: 1, KindDrop: 3, KindSpanBegin: 1,
		KindSpanEnd: 1, KindFault: 1, KindComplete: 3}
	if len(s.Kinds) != len(want) {
		t.Fatalf("kind rows %v", s.Kinds)
	}
	for _, kc := range s.Kinds {
		if want[kc.Kind] != kc.N {
			t.Fatalf("kind %v = %d, want %d", kc.Kind, kc.N, want[kc.Kind])
		}
	}
	if len(s.Drops) != 2 || s.Drops[0].Reason != DropChannel || s.Drops[0].N != 2 ||
		s.Drops[1].Reason != DropFault || s.Drops[1].N != 1 {
		t.Fatalf("drops %v", s.Drops)
	}
}

// TestSummaryJSONGolden pins the deterministic JSON rendering byte-exactly.
func TestSummaryJSONGolden(t *testing.T) {
	got := string(Summarize(sampleTrace()).AppendJSON(nil))
	want := `{"schema":1,"events":10,"nodes":2,"first_ns":1,"last_ns":13,` +
		`"completions":3,"faults":1,` +
		`"kinds":{"tx":1,"drop":3,"complete":3,"fault":1,"span-begin":1,"span-end":1},` +
		`"drops":{"channel":2,"fault":1}}`
	if got != want {
		t.Fatalf("summary JSON:\n got %s\nwant %s", got, want)
	}
	// The empty trace renders without panicking.
	empty := string(Summarize(nil).AppendJSON(nil))
	wantEmpty := `{"schema":0,"events":0,"nodes":0,"first_ns":0,"last_ns":0,` +
		`"completions":0,"faults":0,"kinds":{},"drops":{}}`
	if empty != wantEmpty {
		t.Fatalf("empty summary JSON: %s", empty)
	}
}

// TestCompletions checks first-completion dedupe and CDF ordering.
func TestCompletions(t *testing.T) {
	cs := Completions(sampleTrace())
	if len(cs) != 2 {
		t.Fatalf("got %d completions, want 2", len(cs))
	}
	if cs[0].Node != 1 || cs[0].At != 10 || cs[1].Node != 0 || cs[1].At != 12 {
		t.Fatalf("completions %v", cs)
	}
}

// TestSpans checks begin/end pairing, the name filter, and that
// unterminated spans are dropped.
func TestSpans(t *testing.T) {
	evs := sampleTrace()
	// An unterminated span: begin with no end.
	orphan := mkEvent(11, KindSpanBegin, 0)
	orphan.Span = 2
	orphan.Name = "sig-verify"
	evs = append(evs, orphan)

	all := Spans(evs, "")
	if len(all) != 1 {
		t.Fatalf("got %d spans, want 1 (orphan dropped)", len(all))
	}
	f := all[0]
	if f.Node != 1 || f.Unit != 2 || f.Name != "page-fetch" || f.Start != 5 || f.End != 8 {
		t.Fatalf("span %+v", f)
	}
	if f.Duration() != 3 {
		t.Fatalf("duration %v", f.Duration())
	}
	if got := Spans(evs, "sig-verify"); len(got) != 0 {
		t.Fatalf("name filter leaked %v", got)
	}
	if got := Spans(evs, "page-fetch"); len(got) != 1 {
		t.Fatalf("name filter lost the page fetch")
	}
}

// TestDiffTraces checks per-kind deltas, drop deltas and the completion
// shift between a trace and a modified copy.
func TestDiffTraces(t *testing.T) {
	a := sampleTrace()
	b := append(append([]Event{}, a...),
		mkEvent(14, KindTx, 0),
		func() Event {
			e := mkEvent(15, KindDrop, 1)
			e.Reason = DropAuth
			return e
		}(),
	)
	// b's last completion moves later.
	b = append(b, mkEvent(20, KindComplete, 0))

	d := DiffTraces(a, b)
	if d.EventsDelta != 3 {
		t.Fatalf("events delta %d", d.EventsDelta)
	}
	kinds := map[Kind]int64{}
	for _, kc := range d.Kinds {
		kinds[kc.Kind] = kc.N
	}
	if kinds[KindTx] != 1 || kinds[KindDrop] != 1 || kinds[KindComplete] != 1 {
		t.Fatalf("kind deltas %v", d.Kinds)
	}
	if len(d.Drops) != 1 || d.Drops[0].Reason != DropAuth || d.Drops[0].N != 1 {
		t.Fatalf("drop deltas %v", d.Drops)
	}
	if d.LastCompletionDelta != 7 { // 20 - 13 (a's last complete event)
		t.Fatalf("completion delta %v", d.LastCompletionDelta)
	}
	// Self-diff is empty.
	if dd := DiffTraces(a, a); dd.EventsDelta != 0 || len(dd.Kinds) != 0 || len(dd.Drops) != 0 || dd.LastCompletionDelta != 0 {
		t.Fatalf("self-diff nonzero: %+v", dd)
	}
}

// TestFilterNode checks subject-or-peer filtering preserves order.
func TestFilterNode(t *testing.T) {
	evs := FilterNode(sampleTrace(), 0)
	// Node 0 appears as subject (tx, drop at 4, complete) and as peer of
	// the two drops at 2 and 3.
	if len(evs) != 5 {
		t.Fatalf("got %d events for node 0: %+v", len(evs), evs)
	}
	var last sim.Time
	for _, e := range evs {
		if e.At < last {
			t.Fatalf("order not preserved: %v after %v", e.At, last)
		}
		last = e.At
	}
}
