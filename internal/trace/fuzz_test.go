package trace

import (
	"bytes"
	"testing"
)

// FuzzEvent fuzzes the JSONL event codec with the canonicalization
// property: any line DecodeLine accepts must re-encode to a line that
// decodes to the identical Event (the codec is idempotent after one
// round trip, even for lines a tracer would never produce — explicit zero
// fields, shuffled key order). Inputs the decoder rejects must error
// cleanly: trace files are operator artifacts fed to lrtrace, so a panic
// here crashes the CLI on a corrupt file.
//
// The checked-in corpus under testdata/fuzz/FuzzEvent seeds the shapes most
// likely to appear in the wild: every kind, explicit sentinels, unknown
// vocabulary, missing required keys, foreign schema versions and trailing
// garbage.
func FuzzEvent(f *testing.F) {
	f.Add([]byte(`{"v":1,"t":1500000000,"k":"tx","n":2,"pk":"data","u":3,"i":7}`))
	f.Add([]byte(`{"v":1,"t":2,"k":"drop","n":5,"pe":1,"pk":"adv","r":"fault"}`))
	f.Add([]byte(`{"v":1,"t":0,"k":"state","n":9,"from":"maintain","to":"rx","name":"rx"}`))
	f.Add([]byte(`{"v":1,"t":7,"k":"span-begin","n":1,"u":4,"sp":12,"name":"page-fetch"}`))
	f.Add([]byte(`{"v":1,"t":3,"k":"fault","name":"adversary-ramp","x":0.5}`))
	f.Add([]byte(`{"v":1,"t":42,"k":"complete","n":3}`))
	f.Add([]byte(`{"v":1,"t":9,"k":"sig-accept","n":6,"pe":0,"pk":"sig"}`))
	f.Add([]byte(`{"k":"tx","t":0,"v":1,"x":0,"sp":0,"n":-1}`)) // shuffled keys, explicit zeros
	f.Add([]byte(`{"v":999,"t":0,"k":"tx"}`))
	f.Add([]byte(`{"v":1,"t":0,"k":"teleport"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeLine(data)
		if err != nil {
			return // rejected without panicking: fine
		}
		line := AppendJSON(nil, e)
		e2, err := DecodeLine(line)
		if err != nil {
			t.Fatalf("re-encoded line rejected: %v\nline: %s", err, line)
		}
		if e2 != e {
			t.Fatalf("round trip changed the event:\n in  %+v\n out %+v\nline %s", e, e2, line)
		}
		// Full canonicalization: a second encode is byte-identical.
		if line2 := AppendJSON(nil, e2); !bytes.Equal(line, line2) {
			t.Fatalf("encode not canonical:\n %s\n %s", line, line2)
		}
	})
}
