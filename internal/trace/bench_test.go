package trace

import (
	"io"
	"testing"

	"lrseluge/internal/packet"
	"lrseluge/internal/sim"
)

// BenchmarkDisabledTracer measures the cost of an instrumentation site when
// tracing is off: one nil check and an immediate return. This is the price
// every protocol hot path pays by default, so it must stay in the
// fraction-of-a-nanosecond range.
func BenchmarkDisabledTracer(b *testing.B) {
	var tr *Tracer
	p := &packet.Data{Src: 1, Unit: 2, Index: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Tx(1, p)
	}
}

// BenchmarkEmitCount measures tracer throughput into the cheapest sink —
// the events/sec ceiling of the subsystem itself.
func BenchmarkEmitCount(b *testing.B) {
	eng := sim.New()
	var c Count
	tr, _ := New(eng, &c)
	p := &packet.Data{Src: 1, Unit: 2, Index: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Rx(2, 1, p)
	}
}

// BenchmarkEmitJSONL measures end-to-end encode throughput into a discarded
// JSONL stream — the realistic cost of tracing a run to disk, minus the
// disk.
func BenchmarkEmitJSONL(b *testing.B) {
	eng := sim.New()
	s := NewJSONLSink(io.Discard)
	tr, _ := New(eng, s)
	p := &packet.Data{Src: 1, Unit: 2, Index: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Rx(2, 1, p)
	}
	if err := s.Flush(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAppendJSON isolates the encoder.
func BenchmarkAppendJSON(b *testing.B) {
	e := Event{SchemaV: 1, At: 123456789, Kind: KindRx, Node: 7, Peer: 3,
		Pkt: packet.TypeData, Unit: 4, Index: 11}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendJSON(buf[:0], e)
	}
}
