package trace

import (
	"bufio"
	"io"
)

// Ring is a bounded in-memory sink keeping the most recent events:
// drop-oldest on overflow, with a counter of what was lost. Useful for
// post-mortem inspection in tests and for tools that only need the tail.
type Ring struct {
	buf     []Event
	start   int // index of the oldest retained event
	n       int // retained count
	dropped uint64
}

// NewRing returns a ring retaining at most capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Emit implements Sink, evicting the oldest event when full.
func (r *Ring) Emit(e Event) {
	if r.n == len(r.buf) {
		r.buf[r.start] = e
		r.start = (r.start + 1) % len(r.buf)
		r.dropped++
		return
	}
	r.buf[(r.start+r.n)%len(r.buf)] = e
	r.n++
}

// Flush implements Sink; a ring has nothing to flush.
func (r *Ring) Flush() error { return nil }

// Len returns the number of retained events.
func (r *Ring) Len() int { return r.n }

// Dropped returns how many events were evicted to make room.
func (r *Ring) Dropped() uint64 { return r.dropped }

// Events returns the retained events, oldest first, as a fresh slice.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.start+i)%len(r.buf)])
	}
	return out
}

// JSONLSink streams events as JSONL (see encode.go for the schema). The
// byte stream is a deterministic function of the event sequence, so
// same-seed runs produce byte-identical trace files.
type JSONLSink struct {
	w   *bufio.Writer
	buf []byte
	err error // first write error; Flush reports it
}

// NewJSONLSink returns a sink writing JSON lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w), buf: make([]byte, 0, 256)}
}

// Emit implements Sink. Emit cannot return an error (it is called from
// inside the hot simulation loop); the first failure is latched and
// surfaced by Flush.
func (s *JSONLSink) Emit(e Event) {
	if s.err != nil {
		return
	}
	s.buf = AppendJSON(s.buf[:0], e)
	s.buf = append(s.buf, '\n')
	if _, err := s.w.Write(s.buf); err != nil {
		s.err = err
	}
}

// Flush implements Sink, reporting any latched write error.
func (s *JSONLSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// Count discards events and counts them by kind — the cheapest possible
// sink, used to benchmark tracer throughput.
type Count struct {
	total  uint64
	byKind [kindMax]uint64
}

// Emit implements Sink.
func (c *Count) Emit(e Event) {
	c.total++
	if e.Kind > 0 && e.Kind < kindMax {
		c.byKind[e.Kind]++
	}
}

// Flush implements Sink.
func (c *Count) Flush() error { return nil }

// Total returns the number of events seen.
func (c *Count) Total() uint64 { return c.total }

// Of returns the number of events of one kind.
func (c *Count) Of(k Kind) uint64 {
	if k > 0 && k < kindMax {
		return c.byKind[k]
	}
	return 0
}

// LineRecorder receives encoded trace lines; satisfied by
// *obs.FlightRecorder. The interface points this way (trace depends on
// nothing) because obs must stay std-only for the sim engine to import it.
type LineRecorder interface {
	RecordLine(line []byte)
}

// FlightSink encodes each event as a JSON line into a LineRecorder —
// typically an obs.FlightRecorder ring, so a crashed or timed-out run
// leaves its most recent trace events in the post-mortem dump.
type FlightSink struct {
	rec LineRecorder
	buf []byte
}

// NewFlightSink returns a sink recording encoded events into rec.
func NewFlightSink(rec LineRecorder) *FlightSink {
	return &FlightSink{rec: rec, buf: make([]byte, 0, 256)}
}

// Emit implements Sink.
func (s *FlightSink) Emit(e Event) {
	s.buf = AppendJSON(s.buf[:0], e)
	s.rec.RecordLine(s.buf)
}

// Flush implements Sink; the recorder owns persistence.
func (s *FlightSink) Flush() error { return nil }

// Tee fans one event stream out to several sinks in order. Flush flushes
// all of them and returns the first error.
type Tee struct {
	sinks []Sink
}

// NewTee returns a sink duplicating events to each of sinks.
func NewTee(sinks ...Sink) *Tee { return &Tee{sinks: sinks} }

// Emit implements Sink.
func (t *Tee) Emit(e Event) {
	for _, s := range t.sinks {
		s.Emit(e)
	}
}

// Flush implements Sink.
func (t *Tee) Flush() error {
	var first error
	for _, s := range t.sinks {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
