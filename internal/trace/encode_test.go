package trace

import (
	"strings"
	"testing"

	"lrseluge/internal/packet"
	"lrseluge/internal/sim"
)

// encodeLine renders one event as its JSONL line (without newline).
func encodeLine(e Event) string { return string(AppendJSON(nil, e)) }

// TestEncodeGolden pins the exact wire bytes of representative events: the
// JSONL schema is a contract, and these strings are it.
func TestEncodeGolden(t *testing.T) {
	cases := []struct {
		name string
		e    Event
		want string
	}{
		{
			name: "tx data",
			e: Event{SchemaV: 1, At: 1500000000, Kind: KindTx, Node: 2,
				Peer: NoNode, Pkt: packet.TypeData, Unit: 3, Index: 7},
			want: `{"v":1,"t":1500000000,"k":"tx","n":2,"pk":"data","u":3,"i":7}`,
		},
		{
			name: "drop with reason",
			e: Event{SchemaV: 1, At: 2, Kind: KindDrop, Node: 5, Peer: 1,
				Pkt: packet.TypeAdv, Unit: NoUnit, Index: NoUnit, Reason: DropFault},
			want: `{"v":1,"t":2,"k":"drop","n":5,"pe":1,"pk":"adv","r":"fault"}`,
		},
		{
			name: "state transition",
			e: Event{SchemaV: 1, At: 0, Kind: KindState, Node: 9, Peer: NoNode,
				Unit: NoUnit, Index: NoUnit, From: StateMaintain, To: StateRx, Name: "rx"},
			want: `{"v":1,"t":0,"k":"state","n":9,"from":"maintain","to":"rx","name":"rx"}`,
		},
		{
			name: "span begin",
			e: Event{SchemaV: 1, At: 7, Kind: KindSpanBegin, Node: 1, Peer: NoNode,
				Unit: 4, Index: NoUnit, Span: 12, Name: "page-fetch"},
			want: `{"v":1,"t":7,"k":"span-begin","n":1,"u":4,"sp":12,"name":"page-fetch"}`,
		},
		{
			name: "fault with value",
			e: Event{SchemaV: 1, At: 3, Kind: KindFault, Node: NoNode, Peer: NoNode,
				Unit: NoUnit, Index: NoUnit, Name: "adversary-ramp", Value: 0.5},
			want: `{"v":1,"t":3,"k":"fault","name":"adversary-ramp","x":0.5}`,
		},
		{
			name: "complete bare",
			e: Event{SchemaV: 1, At: 42, Kind: KindComplete, Node: 3, Peer: NoNode,
				Unit: NoUnit, Index: NoUnit},
			want: `{"v":1,"t":42,"k":"complete","n":3}`,
		},
	}
	for _, tc := range cases {
		if got := encodeLine(tc.e); got != tc.want {
			t.Errorf("%s:\n got %s\nwant %s", tc.name, got, tc.want)
		}
	}
}

// TestRoundTrip decodes every golden-style event back and compares structs:
// encode and decode are exact inverses on tracer-produced events.
func TestRoundTrip(t *testing.T) {
	events := []Event{
		{SchemaV: 1, At: 1500000000, Kind: KindTx, Node: 2, Peer: NoNode, Pkt: packet.TypeData, Unit: 3, Index: 7},
		{SchemaV: 1, At: 2, Kind: KindDrop, Node: 5, Peer: 1, Pkt: packet.TypeSNACK, Unit: NoUnit, Index: NoUnit, Reason: DropPuzzle},
		{SchemaV: 1, At: 0, Kind: KindState, Node: 9, Peer: NoNode, Unit: NoUnit, Index: NoUnit, From: StateRx, To: StateTx, Name: "tx"},
		{SchemaV: 1, At: 7, Kind: KindSpanEnd, Node: 1, Peer: NoNode, Unit: 4, Index: NoUnit, Span: 12, Name: "page-fetch"},
		{SchemaV: 1, At: 3, Kind: KindFault, Node: 0, Peer: 2, Unit: NoUnit, Index: NoUnit, Name: "link-down", Value: 0},
		{SchemaV: 1, At: 9, Kind: KindSigAccept, Node: 6, Peer: 0, Pkt: packet.TypeSig, Unit: NoUnit, Index: NoUnit},
		{SchemaV: 1, At: 11, Kind: KindUnitFlashed, Node: 6, Peer: NoNode, Unit: 0, Index: NoUnit},
		{SchemaV: 1, At: 13, Kind: KindFault, Node: NoNode, Peer: NoNode, Unit: NoUnit, Index: NoUnit, Name: `quote"back\slash`, Value: -2.25},
	}
	for i, e := range events {
		line := AppendJSON(nil, e)
		got, err := DecodeLine(line)
		if err != nil {
			t.Fatalf("event %d: decode %s: %v", i, line, err)
		}
		if got != e {
			t.Fatalf("event %d round-trip mismatch:\n in  %+v\n out %+v\nline %s", i, e, got, line)
		}
	}
}

// TestDecodeRejects pins the decoder's strictness: unknown fields, unknown
// vocabulary, missing required fields and foreign schema versions all error.
func TestDecodeRejects(t *testing.T) {
	bad := []struct{ name, line string }{
		{"unknown field", `{"v":1,"t":0,"k":"tx","bogus":1}`},
		{"unknown kind", `{"v":1,"t":0,"k":"teleport"}`},
		{"unknown reason", `{"v":1,"t":0,"k":"drop","r":"gremlins"}`},
		{"unknown state", `{"v":1,"t":0,"k":"state","from":"limbo"}`},
		{"unknown packet type", `{"v":1,"t":0,"k":"tx","pk":"pigeon"}`},
		{"missing v", `{"t":0,"k":"tx"}`},
		{"missing t", `{"v":1,"k":"tx"}`},
		{"missing k", `{"v":1,"t":0}`},
		{"future schema", `{"v":999,"t":0,"k":"tx"}`},
		{"trailing data", `{"v":1,"t":0,"k":"tx"} {"v":1,"t":1,"k":"rx"}`},
		{"not json", `tx at 0`},
	}
	for _, tc := range bad {
		if _, err := DecodeLine([]byte(tc.line)); err == nil {
			t.Errorf("%s: decoder accepted %s", tc.name, tc.line)
		}
	}
}

// TestReadAll verifies stream decoding: blank lines skipped, events in
// order, first bad line reported with its number.
func TestReadAll(t *testing.T) {
	in := `{"v":1,"t":1,"k":"complete","n":0}

{"v":1,"t":2,"k":"complete","n":1}
`
	evs, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].Node != 0 || evs[1].Node != 1 {
		t.Fatalf("got %+v", evs)
	}
	if evs[0].At != sim.Time(1) || evs[1].At != sim.Time(2) {
		t.Fatalf("timestamps %v, %v", evs[0].At, evs[1].At)
	}

	_, err = ReadAll(strings.NewReader("{\"v\":1,\"t\":1,\"k\":\"complete\"}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("bad line not located: %v", err)
	}
}

// TestEncodeNonFinite pins that non-finite scalar payloads are omitted
// rather than producing invalid JSON.
func TestEncodeNonFinite(t *testing.T) {
	inf := Event{SchemaV: 1, At: 0, Kind: KindFault, Node: NoNode, Peer: NoNode,
		Unit: NoUnit, Index: NoUnit, Name: "adversary-ramp"}
	inf.Value = 1.0
	inf.Value = inf.Value / 0 // +Inf without a constant-division compile error
	got := encodeLine(inf)
	want := `{"v":1,"t":0,"k":"fault","name":"adversary-ramp"}`
	if got != want {
		t.Fatalf("non-finite value leaked into JSON: %s", got)
	}
	if _, err := DecodeLine([]byte(got)); err != nil {
		t.Fatalf("omitted-value line does not decode: %v", err)
	}
}
