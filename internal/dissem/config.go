package dissem

import (
	"fmt"

	"lrseluge/internal/sim"
	"lrseluge/internal/trickle"
)

// Config holds the protocol timing and defense knobs shared by all three
// protocols.
type Config struct {
	// Trickle paces advertisements in MAINTAIN.
	Trickle trickle.Config

	// RxBackoffMin/Max bound the random delay before sending a SNACK,
	// allowing overhearing-based suppression.
	RxBackoffMin sim.Time
	RxBackoffMax sim.Time

	// RxRetryTimeout is how long a requester waits for progress on the
	// current unit before re-sending its SNACK.
	RxRetryTimeout sim.Time

	// MaxSuppressions caps how many times an own pending SNACK is pushed
	// back by overheard requests before it is sent regardless.
	MaxSuppressions int

	// TxSpacing is extra idle time a server inserts between served data
	// packets on top of radio serialization.
	TxSpacing sim.Time

	// TxJitterMax adds a uniform random delay before each served data
	// packet so concurrent servers overhear (and suppress) each other
	// instead of duplicating transmissions back to back.
	TxJitterMax sim.Time

	// TxAggregationDelay is how long an idle server waits after the first
	// SNACK before transmitting, so requests from several neighbors
	// accumulate in the tracking table and one transmission can satisfy
	// many of them (the round collection the paper's scheduler assumes).
	TxAggregationDelay sim.Time

	// SigVerifyDelay is the virtual cost of one signature verification
	// (1.12 s for ECDSA on a Tmote Sky, paper §III-A [16]).
	SigVerifyDelay sim.Time

	// SNACKServeLimit, when positive, activates the denial-of-receipt
	// defense (paper §IV-E): once a server has transmitted this many data
	// packets of one unit on behalf of a single neighbor, further SNACKs
	// from that neighbor for that unit are ignored.
	SNACKServeLimit int

	// CompactRNG backs the node's random stream with the 8-byte SplitMix64
	// source instead of math/rand's ~4.9 KB default source. The stream (and
	// therefore run bytes) differs from the default, so this is an explicit
	// opt-in used by the large-scale runner, never by the golden-pinned
	// scenarios.
	CompactRNG bool
}

// DefaultConfig returns timings modeled on Deluge over a mica2-class radio.
func DefaultConfig() Config {
	return Config{
		Trickle:            trickle.DefaultConfig(),
		RxBackoffMin:       20 * sim.Millisecond,
		RxBackoffMax:       150 * sim.Millisecond,
		RxRetryTimeout:     350 * sim.Millisecond,
		MaxSuppressions:    6,
		TxSpacing:          2 * sim.Millisecond,
		TxJitterMax:        25 * sim.Millisecond,
		TxAggregationDelay: 250 * sim.Millisecond,
		SigVerifyDelay:     1120 * sim.Millisecond,
		SNACKServeLimit:    0,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Trickle.Validate(); err != nil {
		return err
	}
	if c.RxBackoffMin < 0 || c.RxBackoffMax < c.RxBackoffMin {
		return fmt.Errorf("dissem: invalid RX backoff [%v, %v]", c.RxBackoffMin, c.RxBackoffMax)
	}
	if c.RxRetryTimeout <= 0 {
		return fmt.Errorf("dissem: RxRetryTimeout must be positive, got %v", c.RxRetryTimeout)
	}
	if c.MaxSuppressions < 0 || c.TxSpacing < 0 || c.TxJitterMax < 0 || c.TxAggregationDelay < 0 || c.SigVerifyDelay < 0 || c.SNACKServeLimit < 0 {
		return fmt.Errorf("dissem: negative knob")
	}
	return nil
}
