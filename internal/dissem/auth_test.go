package dissem

import (
	"testing"

	"lrseluge/internal/crypt/hashx"
	"lrseluge/internal/crypt/puzzle"
	"lrseluge/internal/crypt/sign"
	"lrseluge/internal/metrics"
	"lrseluge/internal/packet"
)

func newSigFixture(t *testing.T) (*SigContext, *packet.Sig, *metrics.Collector) {
	t.Helper()
	key, err := sign.GenerateDeterministic(9)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := puzzle.NewChain([]byte("auth-test"), 3)
	if err != nil {
		t.Fatal(err)
	}
	pp := puzzle.Params{Strength: 12}
	col := metrics.New()
	ctx := &SigContext{Pub: key.Public(), Commitment: chain.Commitment(), Puzzle: pp, Col: col}

	s := &packet.Sig{Version: 2, Pages: 7, Root: hashx.Sum([]byte("root"))}
	sigBytes, err := key.Sign(s.SignedMessage())
	if err != nil {
		t.Fatal(err)
	}
	s.Signature = sigBytes
	k, err := chain.Key(2)
	if err != nil {
		t.Fatal(err)
	}
	s.PuzzleKey = k
	sol, err := puzzle.Solve(pp, s.PuzzleMessage(), k)
	if err != nil {
		t.Fatal(err)
	}
	s.PuzzleSol = sol
	return ctx, s, col
}

func TestWeakCheckAcceptsGenuine(t *testing.T) {
	ctx, s, col := newSigFixture(t)
	if !ctx.WeakCheck(s) {
		t.Fatal("genuine packet failed weak check")
	}
	if col.PuzzleRejects() != 0 {
		t.Fatal("spurious puzzle reject")
	}
}

func TestWeakCheckRejectsWrongKey(t *testing.T) {
	ctx, s, col := newSigFixture(t)
	bad := *s
	bad.PuzzleKey[0] ^= 1
	if ctx.WeakCheck(&bad) {
		t.Fatal("forged chain key passed")
	}
	if col.PuzzleRejects() != 1 {
		t.Fatal("reject not counted")
	}
}

func TestWeakCheckRejectsWrongSolution(t *testing.T) {
	ctx, s, _ := newSigFixture(t)
	bad := *s
	bad.PuzzleSol += 12345
	if ctx.WeakCheck(&bad) {
		t.Fatal("wrong solution passed (puzzle too weak for test)")
	}
}

func TestWeakCheckRejectsKeyVersionMismatch(t *testing.T) {
	ctx, s, _ := newSigFixture(t)
	bad := *s
	bad.Version = 1 // key belongs to version 2
	if ctx.WeakCheck(&bad) {
		t.Fatal("key/version mismatch passed")
	}
}

func TestFullVerify(t *testing.T) {
	ctx, s, col := newSigFixture(t)
	if !ctx.FullVerify(s) {
		t.Fatal("genuine signature rejected")
	}
	tampered := *s
	tampered.Root = hashx.Sum([]byte("evil"))
	if ctx.FullVerify(&tampered) {
		t.Fatal("tampered root verified")
	}
	if col.SigVerifications() != 2 {
		t.Fatalf("verifications %d, want 2", col.SigVerifications())
	}
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.RxBackoffMax = bad.RxBackoffMin - 1
	if bad.Validate() == nil {
		t.Fatal("inverted backoff accepted")
	}
	bad = DefaultConfig()
	bad.RxRetryTimeout = 0
	if bad.Validate() == nil {
		t.Fatal("zero retry accepted")
	}
	bad = DefaultConfig()
	bad.SNACKServeLimit = -1
	if bad.Validate() == nil {
		t.Fatal("negative serve limit accepted")
	}
	bad = DefaultConfig()
	bad.Trickle.K = 0
	if bad.Validate() == nil {
		t.Fatal("bad trickle config accepted")
	}
}

func TestIngestResultStrings(t *testing.T) {
	for r, want := range map[IngestResult]string{
		Rejected:        "rejected",
		Stale:           "stale",
		Duplicate:       "duplicate",
		Stored:          "stored",
		UnitComplete:    "unit-complete",
		IngestResult(9): "unknown",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q", r, r.String())
		}
	}
}
