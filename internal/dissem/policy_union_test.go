package dissem

import (
	"testing"

	"lrseluge/internal/packet"
)

func bitsOf(n int, set ...int) packet.BitVector {
	v := packet.NewBitVector(n)
	for _, i := range set {
		v.Set(i, true)
	}
	return v
}

func drain(p TxPolicy) [][2]int {
	var out [][2]int
	for {
		u, idx, ok := p.Next()
		if !ok {
			return out
		}
		out = append(out, [2]int{u, idx})
	}
}

func TestUnionMergesRequests(t *testing.T) {
	p := NewUnionPolicy(func(int) int { return 8 })
	p.OnSNACK(1, 0, bitsOf(8, 0, 2))
	p.OnSNACK(2, 0, bitsOf(8, 2, 5))
	got := drain(p)
	want := [][2]int{{0, 0}, {0, 2}, {0, 5}}
	if len(got) != len(want) {
		t.Fatalf("sent %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sent %v, want %v", got, want)
		}
	}
}

func TestUnionServesLowestUnitFirst(t *testing.T) {
	p := NewUnionPolicy(func(int) int { return 4 })
	p.OnSNACK(1, 3, bitsOf(4, 0))
	p.OnSNACK(2, 1, bitsOf(4, 1))
	got := drain(p)
	if len(got) != 2 || got[0] != [2]int{1, 1} || got[1] != [2]int{3, 0} {
		t.Fatalf("order wrong: %v", got)
	}
}

func TestUnionPendingAndReset(t *testing.T) {
	p := NewUnionPolicy(func(int) int { return 4 })
	if p.Pending() {
		t.Fatal("fresh policy pending")
	}
	p.OnSNACK(1, 0, bitsOf(4, 3))
	if !p.Pending() {
		t.Fatal("not pending after SNACK")
	}
	p.Reset()
	if p.Pending() {
		t.Fatal("pending after Reset")
	}
}

func TestUnionIgnoresMalformedLength(t *testing.T) {
	p := NewUnionPolicy(func(int) int { return 4 })
	p.OnSNACK(1, 0, bitsOf(4, 1))
	p.OnSNACK(2, 0, bitsOf(8, 5)) // wrong length: ignored
	got := drain(p)
	if len(got) != 1 || got[0] != [2]int{0, 1} {
		t.Fatalf("malformed request not ignored: %v", got)
	}
}

func TestUnionDataOverheardSuppressesIndex(t *testing.T) {
	p := NewUnionPolicy(func(int) int { return 4 })
	p.OnSNACK(1, 0, bitsOf(4, 1, 2))
	p.OnDataOverheard(0, 1)
	got := drain(p)
	if len(got) != 1 || got[0] != [2]int{0, 2} {
		t.Fatalf("suppression wrong: %v", got)
	}
	// Overhearing for an unqueued unit must be harmless.
	p.OnDataOverheard(7, 0)
	p.OnDataOverheard(0, 9)
}

func TestUnionReRequestAfterLoss(t *testing.T) {
	p := NewUnionPolicy(func(int) int { return 4 })
	p.OnSNACK(1, 0, bitsOf(4, 0))
	if got := drain(p); len(got) != 1 {
		t.Fatalf("first round: %v", got)
	}
	// The receiver lost it and asks again: must be served again.
	p.OnSNACK(1, 0, bitsOf(4, 0))
	if got := drain(p); len(got) != 1 {
		t.Fatalf("re-request not served: %v", got)
	}
}
