package dissem

import (
	"lrseluge/internal/packet"
	"lrseluge/internal/sim"
)

// Upgrader constructs a fresh handler/policy pair for a newer code version.
// A node only discards its current image state AFTER the new version's
// signature packet verifies (the puzzle key chain binds the version number,
// so an attacker cannot force an upgrade by advertising a bogus version —
// it would need a chain key that hashes to the commitment in `version`
// steps AND a valid signature).
type Upgrader func(version uint16) (ObjectHandler, TxPolicy, error)

// sigAnnounceMinGap rate-limits signature announcements to stale neighbors.
const sigAnnounceMinGap = 2 * sim.Second

// SetUpgrader enables secure version upgrades on this node.
func (n *Node) SetUpgrader(up Upgrader) { n.upgrader = up }

// Upgrade installs a new handler and policy (a newer code version),
// discarding all protocol state of the previous one. It is invoked
// internally once a newer version's signature verifies, and directly by
// test/experiment code to seed the base station with a new image.
func (n *Node) Upgrade(handler ObjectHandler, policy TxPolicy) {
	n.handler = handler
	n.policy = policy
	n.servers = make(map[packet.NodeID]int)
	n.hasAdvertiser = false
	n.requesting = false
	n.suppressions = 0
	n.retries = 0
	n.snackTimer.Stop()
	n.retryTimer.Stop()
	n.txTimer.Stop()
	n.txActive = false
	n.sigPending = false
	n.served = make(map[servedKey]int)
	n.ignored = make(map[servedKey]bool)
	n.completed = false
	// A new version is a new image: its completion must be reported even if
	// the node already latched a completion for the previous version.
	n.reported = false
	n.trk.Reset()
	n.checkComplete()
}

// announceSig broadcasts our signature packet so stale-version neighbors
// can authenticate the new version and begin upgrading (the base station
// "initiates the dissemination process by broadcasting the signature
// packet", paper §IV-E; intermediate nodes repeat it for their own stale
// neighborhoods).
func (n *Node) announceSig() {
	sig := n.handler.SigPacket(n.id)
	if sig == nil {
		return
	}
	now := n.eng.Now()
	if n.lastSigAnnounce != 0 && now-n.lastSigAnnounce < sigAnnounceMinGap {
		return
	}
	n.lastSigAnnounce = now
	n.nw.Broadcast(n.id, sig)
}

// handleNewerSig processes a signature packet for a version above ours:
// verify it with a candidate handler, and only swap state once it checks
// out. Invoked from handleSig.
func (n *Node) handleNewerSig(s *packet.Sig) {
	if n.upgrader == nil || n.sigPending {
		return
	}
	cand, candPolicy, err := n.upgrader(s.Version)
	if err != nil || cand == nil || candPolicy == nil {
		return
	}
	if cand.Version() != s.Version {
		return
	}
	if !cand.PreVerifySig(s) {
		return
	}
	n.sigPending = true
	n.eng.Schedule(n.cfg.SigVerifyDelay, func() {
		n.sigPending = false
		res := cand.IngestSig(s)
		switch res {
		case Rejected:
			n.col.RecordAuthDrop()
		case UnitComplete:
			// The new version is authentic: discard the old image state
			// and start acquiring the new one.
			n.Upgrade(cand, candPolicy)
		}
	})
}
