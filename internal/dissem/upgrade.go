package dissem

import (
	"lrseluge/internal/packet"
	"lrseluge/internal/sim"
	"lrseluge/internal/trace"
)

// Upgrader constructs a fresh handler/policy pair for a newer code version.
// A node only discards its current image state AFTER the new version's
// signature packet verifies (the puzzle key chain binds the version number,
// so an attacker cannot force an upgrade by advertising a bogus version —
// it would need a chain key that hashes to the commitment in `version`
// steps AND a valid signature).
type Upgrader func(version uint16) (ObjectHandler, TxPolicy, error)

// sigAnnounceMinGap rate-limits signature announcements to stale neighbors.
const sigAnnounceMinGap = 2 * sim.Second

// SetUpgrader enables secure version upgrades on this node.
func (n *Node) SetUpgrader(up Upgrader) { n.upgrader = up }

// Upgrade installs a new handler and policy (a newer code version),
// discarding all protocol state of the previous one. It is invoked
// internally once a newer version's signature verifies, and directly by
// test/experiment code to seed the base station with a new image.
func (n *Node) Upgrade(handler ObjectHandler, policy TxPolicy) {
	n.handler = handler
	n.policy = policy
	n.servers.reset()
	n.hasAdvertiser = false
	n.setRequesting(false)
	n.suppressions = 0
	n.retries = 0
	n.snackTimer.Stop()
	n.retryTimer.Stop()
	n.txTimer.Stop()
	n.setTxActive(false)
	n.sigPending = false
	n.sigSpan = trace.Span{}
	n.fetchSpan = trace.Span{}
	n.served = nil
	n.ignored = nil
	n.completed = false
	// A new version is a new image: its completion must be reported even if
	// the node already latched a completion for the previous version.
	n.reported = false
	n.trk.Reset()
	n.checkComplete()
}

// announceSig broadcasts our signature packet so stale-version neighbors
// can authenticate the new version and begin upgrading (the base station
// "initiates the dissemination process by broadcasting the signature
// packet", paper §IV-E; intermediate nodes repeat it for their own stale
// neighborhoods).
func (n *Node) announceSig() {
	sig := n.handler.SigPacket(n.id)
	if sig == nil {
		return
	}
	now := n.eng.Now()
	if n.lastSigAnnounce != 0 && now-n.lastSigAnnounce < sigAnnounceMinGap {
		return
	}
	n.lastSigAnnounce = now
	n.nw.Broadcast(n.id, sig)
}

// handleNewerSig processes a signature packet for a version above ours:
// verify it with a candidate handler, and only swap state once it checks
// out. Invoked from handleSig; from is the forwarding neighbor.
func (n *Node) handleNewerSig(from packet.NodeID, s *packet.Sig) {
	if n.upgrader == nil || n.sigPending {
		return
	}
	cand, candPolicy, err := n.upgrader(s.Version)
	if err != nil || cand == nil || candPolicy == nil {
		return
	}
	if cand.Version() != s.Version {
		return
	}
	if !cand.PreVerifySig(s) {
		n.tr.Drop(n.id, from, s, trace.DropPuzzle)
		return
	}
	n.sigPending = true
	n.sigSpan = n.tr.Begin(n.id, "sig-verify", trace.NoUnit)
	n.eng.Schedule(n.cfg.SigVerifyDelay, func() {
		n.sigPending = false
		n.sigSpan.End()
		n.sigSpan = trace.Span{}
		res := cand.IngestSig(s)
		switch res {
		case Rejected:
			n.col.RecordAuthDrop()
			n.tr.SigResult(n.id, from, false)
		case UnitComplete:
			n.tr.SigResult(n.id, from, true)
			// The new version is authentic: discard the old image state
			// and start acquiring the new one.
			n.Upgrade(cand, candPolicy)
		}
	})
}
