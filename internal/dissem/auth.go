package dissem

import (
	"lrseluge/internal/crypt/puzzle"
	"lrseluge/internal/crypt/sign"
	"lrseluge/internal/metrics"
	"lrseluge/internal/obs"
	"lrseluge/internal/packet"
)

// SigContext bundles the security material preloaded on every node (paper
// §IV-B): the base station's public key, the puzzle key-chain commitment and
// the puzzle difficulty. Seluge and LR-Seluge handlers share it to vet
// signature packets in two stages: a one-hash weak-authenticator check, then
// the expensive signature verification.
type SigContext struct {
	Pub        sign.PublicKey
	Commitment puzzle.Key
	Puzzle     puzzle.Params
	Col        *metrics.Collector
	// Obs, when non-nil, attributes puzzle/signature/hash wall time to the
	// crypt phases; the core handlers share the context's timers too.
	Obs *obs.Timers
}

// WeakCheck performs the cheap filter: the puzzle key must belong to the
// advertised code version of the key chain, and the puzzle solution must be
// valid for this exact signature packet. Forged signature packets fail here
// unless the adversary spends a brute-force search per packet (paper
// §IV-C.3), which is what makes signature-flooding DoS unattractive.
func (c *SigContext) WeakCheck(s *packet.Sig) bool {
	c.Obs.Start(obs.PhasePuzzle)
	ok := puzzle.VerifyKey(c.Commitment, s.PuzzleKey, int(s.Version)) &&
		puzzle.Verify(c.Puzzle, s.PuzzleMessage(), s.PuzzleKey, s.PuzzleSol)
	c.Obs.End(obs.PhasePuzzle)
	if !ok {
		c.reject()
	}
	return ok
}

// FullVerify performs the expensive ECDSA verification over the bound
// (version, pages, root) message and accounts it.
func (c *SigContext) FullVerify(s *packet.Sig) bool {
	if c.Col != nil {
		c.Col.RecordSigVerification()
	}
	c.Obs.Start(obs.PhaseSigVerify)
	ok := c.Pub.Verify(s.SignedMessage(), s.Signature)
	c.Obs.End(obs.PhaseSigVerify)
	return ok
}

func (c *SigContext) reject() {
	if c.Col != nil {
		c.Col.RecordPuzzleReject()
	}
}
