package dissem

import (
	"lrseluge/internal/crypt/puzzle"
	"lrseluge/internal/crypt/sign"
	"lrseluge/internal/metrics"
	"lrseluge/internal/packet"
)

// SigContext bundles the security material preloaded on every node (paper
// §IV-B): the base station's public key, the puzzle key-chain commitment and
// the puzzle difficulty. Seluge and LR-Seluge handlers share it to vet
// signature packets in two stages: a one-hash weak-authenticator check, then
// the expensive signature verification.
type SigContext struct {
	Pub        sign.PublicKey
	Commitment puzzle.Key
	Puzzle     puzzle.Params
	Col        *metrics.Collector
}

// WeakCheck performs the cheap filter: the puzzle key must belong to the
// advertised code version of the key chain, and the puzzle solution must be
// valid for this exact signature packet. Forged signature packets fail here
// unless the adversary spends a brute-force search per packet (paper
// §IV-C.3), which is what makes signature-flooding DoS unattractive.
func (c *SigContext) WeakCheck(s *packet.Sig) bool {
	if !puzzle.VerifyKey(c.Commitment, s.PuzzleKey, int(s.Version)) {
		c.reject()
		return false
	}
	if !puzzle.Verify(c.Puzzle, s.PuzzleMessage(), s.PuzzleKey, s.PuzzleSol) {
		c.reject()
		return false
	}
	return true
}

// FullVerify performs the expensive ECDSA verification over the bound
// (version, pages, root) message and accounts it.
func (c *SigContext) FullVerify(s *packet.Sig) bool {
	if c.Col != nil {
		c.Col.RecordSigVerification()
	}
	return c.Pub.Verify(s.SignedMessage(), s.Signature)
}

func (c *SigContext) reject() {
	if c.Col != nil {
		c.Col.RecordPuzzleReject()
	}
}
